package onex

import (
	"fmt"
	"time"
)

// Match is a similarity-query answer.
type Match struct {
	// SeriesID and Start locate the matched subsequence in the input; the
	// SeriesID is the index of the series in the Build call.
	SeriesID, Start, Length int
	// Distance is the normalized DTW (paper Def. 6) between the query and
	// the match, measured on the normalized data the base indexes.
	Distance float64
	// Values is a copy of the matched (normalized) window.
	Values []float64
}

// String summarizes the match in the paper's (Xp)^i_j notation.
func (m Match) String() string {
	return fmt.Sprintf("(X%d)^%d_%d dist=%.4f", m.SeriesID, m.Length, m.Start, m.Distance)
}

// Occurrence locates one recurrence of a seasonal pattern.
type Occurrence struct {
	SeriesID, Start int
}

// Pattern is a seasonal-similarity answer: a group of mutually similar
// subsequences (every pair within ST by Lemma 1) that recurs.
type Pattern struct {
	// Length is the subsequence length of every occurrence.
	Length int
	// Occurrences lists where the pattern recurs (≥ 2 entries).
	Occurrences []Occurrence
	// Representative is the group's point-wise average shape.
	Representative []float64
}

// Range is a recommended similarity-threshold interval.
type Range struct {
	Low, High float64
}

// Contains reports whether st falls inside the recommendation.
func (r Range) Contains(st float64) bool { return st >= r.Low && st <= r.High }

// String formats the range.
func (r Range) String() string { return fmt.Sprintf("[%.4f, %.4f]", r.Low, r.High) }

// Stats reports base size and construction cost (the quantities of the
// paper's Table 4 and Figs. 5–6).
type Stats struct {
	// Representatives counts the groups across all indexed lengths.
	Representatives int
	// Subsequences counts every indexed subsequence.
	Subsequences int64
	// IndexBytes estimates the resident size of the GTI+LSI structures.
	IndexBytes int64
	// BuildTime is the offline construction time.
	BuildTime time.Duration
	// STHalf and STFinal are the global critical thresholds of the
	// Similarity Parameter Space (Sec. 4.2).
	STHalf, STFinal float64
	// Drift is the fraction of subsequences assigned incrementally
	// (Append/Extend) since the last full offline build — see
	// Options.RebuildDrift.
	Drift float64
	// Rebuilds counts drift-triggered full rebuilds along the base's
	// Append/Extend lineage and LastRebuild records the most recent one's
	// wall-clock cost (zero if none) — the amortized rebuild policy's
	// observability counters. Process-local: snapshots do not persist them.
	Rebuilds    int64
	LastRebuild time.Duration
	// Shards is the serving layout's shard count (1 for unsharded bases)
	// and PerShard describes each shard — see Options.Shards.
	Shards   int
	PerShard []ShardStat
	// Query tallies the online work the base has answered since
	// construction. Process-local: snapshots do not persist it, and
	// Extend/Append/WithThreshold derivatives start a fresh tally.
	Query QueryStats
}

// QueryStats is a base's lifetime online-query work tally.
type QueryStats struct {
	// Queries counts answered queries across every family (match, k-NN,
	// range, seasonal — batch items count individually).
	Queries uint64
	// RepsExamined through MembersTested are the cumulative Q1 BestMatch
	// work counters — the path where the LB_Kim/LB_Keogh pruning cascade
	// operates. The split between PrunedByKim and PrunedByKeogh depends on
	// bound-tightening timing in parallel scans (a hopeless representative
	// is counted under whichever check happened to kill it); the totals are
	// the signal.
	RepsExamined  uint64
	PrunedByKim   uint64
	PrunedByKeogh uint64
	DTWComputed   uint64
	MembersTested uint64
}

// ShardStat describes one shard of a base's serving layout.
type ShardStat struct {
	// Shard is the shard index.
	Shard int
	// Series counts the series routed to the shard.
	Series int
	// Groups counts the shard's restricted similarity groups across lengths
	// (a group whose members span k shards appears in k of these counts).
	Groups int
	// Subsequences counts the indexed subsequences resident in the shard.
	Subsequences int64
	// IndexBytes estimates the shard's GTI+LSI index size.
	IndexBytes int64
}
