// Ablation benchmarks for the design choices DESIGN.md calls out: each
// isolates one Sec. 5.3 optimization so its contribution to query latency is
// measurable. Answers never change for admissible prunes (asserted in the
// query package's tests); these benches quantify the speed side.
package onex

import (
	"testing"

	"onex/internal/core"
	"onex/internal/dataset"
	"onex/internal/dist"
	"onex/internal/grouping"
	"onex/internal/query"
	"onex/internal/ts"
)

// ablationFixture builds one dataset once and engines with/without a knob.
type ablationFixture struct {
	data    *ts.Dataset
	lengths []int
	queries [][]float64
}

func newAblationFixture(b *testing.B) *ablationFixture {
	b.Helper()
	sp := dataset.ECG.Scaled(0.25)
	d := sp.Generate(3)
	if err := d.NormalizeMinMax(); err != nil {
		b.Fatal(err)
	}
	lengths := []int{12, 24, 48, 72, 96}
	var queries [][]float64
	for i := 0; i < 8; i++ {
		l := lengths[i%len(lengths)]
		s := d.Series[(i*3)%d.N()]
		start := (i * 5) % (s.Len() - l + 1)
		q := append([]float64(nil), s.Values[start:start+l]...)
		if i%2 == 1 {
			for j := range q {
				q[j] = q[j]*0.9 + 0.03
			}
		}
		queries = append(queries, q)
	}
	return &ablationFixture{data: d, lengths: lengths, queries: queries}
}

func (f *ablationFixture) engine(b *testing.B, opts query.Options) *core.Engine {
	b.Helper()
	eng, err := core.Build(f.data, core.BuildConfig{
		ST: 0.2, Lengths: f.lengths, Seed: 1,
		Normalize: core.NormalizeNone, Query: opts,
	})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

func (f *ablationFixture) run(b *testing.B, eng *core.Engine, mode query.MatchMode) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Proc.BestMatch(f.queries[i%len(f.queries)], mode); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLowerBounds isolates the LB_Kim → LB_Keogh cascade.
func BenchmarkAblationLowerBounds(b *testing.B) {
	f := newAblationFixture(b)
	b.Run("cascade-on", func(b *testing.B) {
		f.run(b, f.engine(b, query.Options{}), query.MatchExact)
	})
	b.Run("cascade-off", func(b *testing.B) {
		f.run(b, f.engine(b, query.Options{DisableLowerBounds: true}), query.MatchExact)
	})
}

// BenchmarkAblationEarlyStop isolates the Sec. 5.3 any-length stop rule.
func BenchmarkAblationEarlyStop(b *testing.B) {
	f := newAblationFixture(b)
	b.Run("early-stop", func(b *testing.B) {
		f.run(b, f.engine(b, query.Options{}), query.MatchAny)
	})
	b.Run("all-lengths", func(b *testing.B) {
		f.run(b, f.engine(b, query.Options{DisableEarlyStop: true}), query.MatchAny)
	})
}

// BenchmarkAblationPatience isolates the bounded in-group pivot walk.
func BenchmarkAblationPatience(b *testing.B) {
	f := newAblationFixture(b)
	b.Run("patience-32", func(b *testing.B) {
		f.run(b, f.engine(b, query.Options{Patience: 32}), query.MatchExact)
	})
	b.Run("patience-8", func(b *testing.B) {
		f.run(b, f.engine(b, query.Options{Patience: 8}), query.MatchExact)
	})
	b.Run("exhaustive", func(b *testing.B) {
		f.run(b, f.engine(b, query.Options{Patience: -1}), query.MatchExact)
	})
}

// BenchmarkAblationCandidateLimit isolates the fixed member-verification cap.
func BenchmarkAblationCandidateLimit(b *testing.B) {
	f := newAblationFixture(b)
	for _, limit := range []int{1, 8, 64} {
		limit := limit
		b.Run(benchName("limit", limit), func(b *testing.B) {
			f.run(b, f.engine(b, query.Options{CandidateLimit: limit}), query.MatchExact)
		})
	}
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "-0"
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{digits[v%10]}, buf...)
		v /= 10
	}
	return prefix + "-" + string(buf)
}

// BenchmarkAblationBuildWorkers isolates construction parallelism.
func BenchmarkAblationBuildWorkers(b *testing.B) {
	sp := dataset.ECG.Scaled(0.15)
	d := sp.Generate(3)
	if err := d.NormalizeMinMax(); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, 0} { // 0 = GOMAXPROCS
		workers := workers
		b.Run(benchName("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Build(d, core.BuildConfig{
					ST: 0.2, Lengths: []int{12, 24, 48, 72, 96},
					Seed: 1, Workers: workers, Normalize: core.NormalizeNone,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDBARepresentatives contrasts ONEX's point-wise-average
// representatives with DTW-barycenter (DBA) representatives — the design
// debate of Sec. 7 vs Petitjean et al. [21]. Reported metrics: the mean
// member-DTW of each representative strategy and the refinement cost.
func BenchmarkAblationDBARepresentatives(b *testing.B) {
	d := dataset.ECG.Scaled(0.15).Generate(3)
	if err := d.NormalizeMinMax(); err != nil {
		b.Fatal(err)
	}
	gr, err := grouping.Build(d, grouping.Config{ST: 0.25, Lengths: []int{24, 48}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	meanDTW := func(res *grouping.Result) float64 {
		var sum float64
		var n int
		for _, l := range res.Lengths {
			for _, g := range res.ByLength[l].Groups {
				if g.Count() < 2 {
					continue
				}
				seqs := make([][]float64, g.Count())
				for mi, m := range g.Members {
					seqs[mi] = grouping.MemberValues(d, g, m)
				}
				sum += grouping.MeanDTWToCenter(g.Rep, seqs)
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	b.Run("pointwise-average", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = meanDTW(gr)
		}
		b.ReportMetric(v, "meanDTW")
	})
	b.Run("dba-refined", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			refined, err := grouping.RefineRepresentativesDBA(d, gr, 5)
			if err != nil {
				b.Fatal(err)
			}
			v = meanDTW(refined)
		}
		b.ReportMetric(v, "meanDTW")
	})
}

// BenchmarkExtensionElasticDistances compares the per-pair cost of the
// elastic distances the paper's related work weighs (Sec. 7): DTW vs LCSS
// vs ERP, plus plain ED as the floor.
func BenchmarkExtensionElasticDistances(b *testing.B) {
	d := dataset.ECG.Scaled(0.1).Generate(9)
	if err := d.NormalizeMinMax(); err != nil {
		b.Fatal(err)
	}
	x := d.Series[0].Values
	y := d.Series[1].Values
	var w dist.Workspace
	b.Run("ED", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist.ED(x, y)
		}
	})
	b.Run("DTW", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w.DTW(x, y)
		}
	})
	b.Run("LCSS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist.LCSSDistance(x, y, 0.1, -1)
		}
	})
	b.Run("ERP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist.ERP(x, y, 0)
		}
	})
}

// BenchmarkAblationExtendVsRebuild quantifies incremental maintenance: the
// cost of adding 5 series to an existing base vs rebuilding from scratch.
func BenchmarkAblationExtendVsRebuild(b *testing.B) {
	sp := dataset.ItalyPower
	full := sp.Generate(5)
	if err := full.NormalizeMinMax(); err != nil {
		b.Fatal(err)
	}
	from := full.N() - 5
	partial := &ts.Dataset{Name: full.Name}
	for _, s := range full.Series[:from] {
		partial.Append(s.Label, s.Values)
	}
	cfg := core.BuildConfig{ST: 0.2, Seed: 1, Normalize: core.NormalizeNone}
	baseEng, err := core.Build(partial, cfg)
	if err != nil {
		b.Fatal(err)
	}
	newSeries := full.Series[from:]

	b.Run("extend-5-series", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseEng.Extend(newSeries); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild-from-scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(full, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
