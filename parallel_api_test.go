package onex

import (
	"context"
	"math"
	"runtime"
	"sync"
	"testing"
)

// TestBestMatchBatchAPI: the public batch answers must agree query-by-query
// with single BestMatch calls, including per-query failures.
func TestBestMatchBatchAPI(t *testing.T) {
	b := buildFixture(t, Options{Parallelism: 4})
	qs := [][]float64{
		sineSeries(1, 48)[0].Values[:16],
		sineSeries(1, 48)[0].Values[8:24],
		nil,                // empty → per-query error
		{1, math.NaN(), 2}, // non-finite → per-query error
		{0.1, 0.2, 0.3},    // length 3 not indexed → error in exact mode
		sineSeries(1, 48)[0].Values[:24],
	}
	for _, mode := range []MatchMode{MatchExact, MatchAny} {
		rs := b.BestMatchBatch(context.Background(), qs, mode)
		if len(rs) != len(qs) {
			t.Fatalf("mode %d: %d results for %d queries", mode, len(rs), len(qs))
		}
		for i, q := range qs {
			single, err := b.BestMatch(q, mode)
			if (rs[i].Err == nil) != (err == nil) {
				t.Fatalf("mode %d query %d: batch err %v, single err %v", mode, i, rs[i].Err, err)
			}
			if err != nil {
				continue
			}
			got := rs[i].Match
			if got.SeriesID != single.SeriesID || got.Start != single.Start ||
				got.Length != single.Length || math.Abs(got.Distance-single.Distance) > 1e-12 {
				t.Fatalf("mode %d query %d: batch %+v != single %+v", mode, i, got, single)
			}
		}
	}
	if rs := b.BestMatchBatch(context.Background(), nil, MatchAny); len(rs) != 0 {
		t.Fatalf("nil batch: %d results", len(rs))
	}
}

// TestConcurrentBatchExtendSeasonal is the cross-API stress test: one Base
// hammered by concurrent BestMatchBatch, Extend, Seasonal and RangeSearch
// calls from many goroutines. Run under -race (the CI default); the
// assertions are freedom from panics/deadlocks and well-formed answers.
func TestConcurrentBatchExtendSeasonal(t *testing.T) {
	b := buildFixture(t, Options{Parallelism: 4})
	q1 := sineSeries(1, 48)[0].Values[:16]
	q2 := sineSeries(1, 48)[0].Values[16:32]
	qs := [][]float64{q1, q2, nil} // include a malformed one on purpose

	iters := 30
	if testing.Short() {
		iters = 5
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rs := b.BestMatchBatch(context.Background(), qs, MatchAny)
				if len(rs) != len(qs) {
					t.Errorf("short batch: %d", len(rs))
					return
				}
				if rs[0].Err != nil || rs[1].Err != nil || rs[2].Err == nil {
					t.Errorf("batch error pattern wrong: %v %v %v", rs[0].Err, rs[1].Err, rs[2].Err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		cur := b
		for i := 0; i < 6; i++ {
			ext, err := cur.Extend(sineSeries(1, 48))
			if err != nil {
				t.Errorf("extend %d: %v", i, err)
				return
			}
			cur = ext
			// The extended base must answer immediately while the original
			// is still being hammered.
			if _, err := cur.BestMatch(q1, MatchAny); err != nil {
				t.Errorf("extended best match: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := b.Seasonal(0, 16); err != nil {
				t.Errorf("seasonal: %v", err)
				return
			}
			if _, err := b.RangeSearch(q1, 16, b.ST()); err != nil {
				t.Errorf("range: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// FuzzBestMatchBatch feeds arbitrary byte strings decoded into ragged,
// NaN-riddled, empty and oversized query batches: the API must always
// return one positional result per query, never panic or deadlock, and
// flag every malformed query with a per-query error.
func FuzzBestMatchBatch(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0, 0, 0}, uint8(1))
	f.Add([]byte{16, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint8(0))
	f.Add([]byte{3, 255, 0, 1, 2, 8, 7, 6, 5, 4, 3, 2, 1, 0}, uint8(1))
	f.Add([]byte{1, 128, 2, 64, 64, 0, 4, 1, 2, 3, 4}, uint8(0))

	base, err := Build("fuzz", sineSeries(5, 40), Options{ST: 0.25, Lengths: []int{6, 10}, Parallelism: 3})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, raw []byte, modeRaw uint8) {
		mode := MatchMode(int(modeRaw) % 2)
		// Decode raw into a batch: each query starts with a length byte
		// (0 = empty, 255 = nil), followed by that many value bytes; byte
		// values 64/128 decode to NaN/±Inf to exercise non-finite input.
		var qs [][]float64
		for i := 0; i < len(raw); {
			n := int(raw[i])
			i++
			switch n {
			case 255:
				qs = append(qs, nil)
				continue
			case 0:
				qs = append(qs, []float64{})
				continue
			}
			if n > 32 {
				n = n % 33
			}
			q := make([]float64, 0, n)
			for j := 0; j < n && i < len(raw); j, i = j+1, i+1 {
				switch raw[i] {
				case 64:
					q = append(q, math.NaN())
				case 128:
					q = append(q, math.Inf(1))
				case 192:
					q = append(q, math.Inf(-1))
				default:
					q = append(q, float64(raw[i])/51-2.5)
				}
			}
			qs = append(qs, q)
		}
		rs := base.BestMatchBatch(context.Background(), qs, mode)
		if len(rs) != len(qs) {
			t.Fatalf("%d results for %d queries", len(rs), len(qs))
		}
		for i, q := range qs {
			malformed := len(q) == 0
			for _, v := range q {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					malformed = true
				}
			}
			if malformed && rs[i].Err == nil {
				t.Fatalf("malformed query %d (%v) not rejected", i, q)
			}
			if rs[i].Err == nil && rs[i].Match.Length == 0 {
				t.Fatalf("query %d: success with zero match", i)
			}
		}
	})
}

// FuzzParallelismOption drives Options.Parallelism (and Workers) through
// degenerate values — zero, negative, far above NumCPU — asserting the
// build validates cleanly, queries neither panic nor deadlock, and answers
// are identical to the sequential reference.
func FuzzParallelismOption(f *testing.F) {
	f.Add(int64(0), int64(0))
	f.Add(int64(-1), int64(-9999))
	f.Add(int64(1), int64(1))
	f.Add(int64(math.MinInt32), int64(7))
	f.Add(int64(runtime.NumCPU()*16), int64(-3))
	f.Add(int64(255), int64(255))

	series := sineSeries(4, 32)
	ref, err := Build("ref", series, Options{ST: 0.3, Lengths: []int{8, 12}, Parallelism: 1})
	if err != nil {
		f.Fatal(err)
	}
	q := series[0].Values[4:16]
	want, err := ref.BestMatch(q, MatchAny)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, par, workers int64) {
		// Clamp into int range without losing the degenerate shapes.
		p := int(par % (1 << 20))
		w := int(workers % (1 << 20))
		b, err := Build("fuzzed", series, Options{
			ST: 0.3, Lengths: []int{8, 12}, Parallelism: p, Workers: w,
		})
		if err != nil {
			t.Fatalf("Parallelism=%d Workers=%d rejected: %v", p, w, err)
		}
		got, err := b.BestMatch(q, MatchAny)
		if err != nil {
			t.Fatalf("Parallelism=%d: BestMatch: %v", p, err)
		}
		if got.SeriesID != want.SeriesID || got.Start != want.Start ||
			got.Length != want.Length || math.Abs(got.Distance-want.Distance) > 1e-12 {
			t.Fatalf("Parallelism=%d Workers=%d: %+v, want %+v", p, w, got, want)
		}
		rs := b.BestMatchBatch(context.Background(), [][]float64{q, nil}, MatchAny)
		if len(rs) != 2 || rs[0].Err != nil || rs[1].Err == nil {
			t.Fatalf("Parallelism=%d: batch shape wrong: %+v", p, rs)
		}
	})
}
