#!/usr/bin/env sh
# Serve smoke test: boot onex-server on a generated dataset, register a
# second dataset over the v1 API, query both, verify the result cache hits,
# and shut down gracefully. Mirrored by the CI serve-smoke job via
# `make serve-smoke`.
set -eu

ADDR="${ONEX_SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="${TMPDIR:-/tmp}/onex-server-smoke.$$"
SNAPDIR="$(mktemp -d "${TMPDIR:-/tmp}/onex-smoke-snap.XXXXXX")"

cleanup() {
    [ -n "${SERVER_PID:-}" ] && kill "$SERVER_PID" 2>/dev/null || true
    [ -n "${SERVER_PID:-}" ] && wait "$SERVER_PID" 2>/dev/null || true
    rm -rf "$BIN" "$SNAPDIR"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$BIN" ./cmd/onex-server

echo "== start ($ADDR)"
# -legacy keeps the deprecated pre-/v1 endpoints answering (with a
# Deprecation header) so the smoke can cover both surfaces.
"$BIN" -addr "$ADDR" -generate ItalyPower -scale 0.2 -st 0.25 -lengths 6 \
    -snapshot-dir "$SNAPDIR" -legacy &
SERVER_PID=$!

echo "== wait for /healthz"
for i in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died" >&2; exit 1; }
    sleep 0.2
done
curl -sf "$BASE/healthz" | grep -q '"ok"' || { echo "healthz failed" >&2; exit 1; }

check_code() { # method url want [body]
    method=$1; url=$2; want=$3; body=${4:-}
    if [ -n "$body" ]; then
        code=$(curl -s -o /dev/null -w '%{http_code}' -X "$method" -d "$body" "$url")
    else
        code=$(curl -s -o /dev/null -w '%{http_code}' -X "$method" "$url")
    fi
    if [ "$code" != "$want" ]; then
        echo "FAIL: $method $url -> $code (want $want)" >&2
        exit 1
    fi
    echo "ok: $method $url -> $code"
}

echo "== register a second dataset over /v1"
check_code POST "$BASE/v1/datasets" 201 \
    '{"name":"ecg","generator":"ECG","scale":0.05,"st":0.25,"lengths":5,"wait":true}'

echo "== query both datasets"
Q8='[0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5]'
LEGACY_LEN=$(curl -sf "$BASE/stats" | sed 's/.*"lengths":\[\([0-9]*\).*/\1/')
LEGACY_Q=$(awk -v n="$LEGACY_LEN" 'BEGIN{printf "["; for(i=0;i<n;i++){printf "%s0.5", (i?",":"")}; printf "]"}')
check_code POST "$BASE/v1/datasets/ItalyPower/match" 200 "{\"query\":$LEGACY_Q}"
check_code POST "$BASE/v1/datasets/ItalyPower/match" 200 "{\"query\":$LEGACY_Q}"
check_code POST "$BASE/v1/datasets/ecg/match" 200 "{\"query\":$Q8}"
check_code GET "$BASE/v1/datasets" 200
check_code GET "$BASE/v1/stats" 200
check_code POST "$BASE/match" 200 "{\"query\":$LEGACY_Q}"

echo "== legacy endpoints carry the Deprecation header"
curl -sf -D - -o /dev/null "$BASE/stats" | grep -qi '^deprecation: true' \
    || { echo "FAIL: legacy /stats missing Deprecation header" >&2; exit 1; }

echo "== uniform batch endpoint"
check_code POST "$BASE/v1/datasets/ItalyPower/match/batch" 200 \
    "{\"queries\":[{\"query\":$LEGACY_Q},{\"query\":$LEGACY_Q,\"k\":3}]}"

echo "== async job: submit, poll to done"
JOB_ID=$(curl -sf -X POST -d "{\"query\":$LEGACY_Q}" \
    "$BASE/v1/datasets/ItalyPower/match/jobs" | sed 's/.*"id":"\([^"]*\)".*/\1/')
[ -n "$JOB_ID" ] || { echo "FAIL: job submission returned no id" >&2; exit 1; }
for i in $(seq 1 50); do
    STATE=$(curl -sf "$BASE/v1/jobs/$JOB_ID" | sed 's/.*"state":"\([^"]*\)".*/\1/')
    [ "$STATE" = "done" ] && break
    [ "$STATE" = "failed" ] && { echo "FAIL: job failed" >&2; exit 1; }
    sleep 0.1
done
[ "$STATE" = "done" ] || { echo "FAIL: job stuck in state $STATE" >&2; exit 1; }
echo "ok: job $JOB_ID -> done"

echo "== verify the repeated query hit the cache"
curl -sf "$BASE/v1/stats" | grep -q '"hits":0,' && { echo "FAIL: no cache hits" >&2; exit 1; }

echo "== /v1/stats exposes latency histograms and job counters"
STATS=$(curl -sf "$BASE/v1/stats")
echo "$STATS" | grep -q '"latency"' || { echo "FAIL: stats missing latency map" >&2; exit 1; }
echo "$STATS" | grep -q '"p99Millis"' || { echo "FAIL: stats missing latency quantiles" >&2; exit 1; }
echo "$STATS" | grep -q '"submitted":' || { echo "FAIL: stats missing job counters" >&2; exit 1; }

echo "== X-Request-Id: minted when absent, honored when sent"
MINTED=$(curl -sf -D - -o /dev/null "$BASE/healthz" | awk 'tolower($1)=="x-request-id:"{print $2}' | tr -d '\r')
[ -n "$MINTED" ] || { echo "FAIL: no X-Request-Id minted" >&2; exit 1; }
ECHOED=$(curl -sf -D - -o /dev/null -H 'X-Request-Id: smoke-req-1' "$BASE/healthz" \
    | awk 'tolower($1)=="x-request-id:"{print $2}' | tr -d '\r')
[ "$ECHOED" = "smoke-req-1" ] || { echo "FAIL: inbound X-Request-Id not echoed (got '$ECHOED')" >&2; exit 1; }
echo "ok: request ids round-trip"

echo "== /metrics: Prometheus text format sanity"
METRICS=$(curl -sf "$BASE/metrics")
for FAM in onex_http_requests_total onex_cache_lookups_total onex_query_work_total \
    onex_lifecycle_events_total onex_jobs_total onex_http_request_duration_seconds_sum; do
    echo "$METRICS" | grep -q "^$FAM" || { echo "FAIL: /metrics missing $FAM" >&2; exit 1; }
done
# Native histograms must be cumulative (non-decreasing buckets per route)
# and end at the +Inf bucket == _count.
echo "$METRICS" | awk -F'} ' '
    /^onex_http_request_duration_seconds_bucket\{/ {
        route = $1; sub(/,le="[^"]*"/, "", route); val = $2 + 0
        if (route in last && val < last[route]) {
            print "FAIL: bucket decreases in " route; bad = 1; exit 1
        }
        last[route] = val; n++
    }
    /^onex_http_request_duration_seconds_count\{/ {
        route = $1; sub(/_count\{/, "_bucket{", route); val = $2 + 0
        if (last[route] != val) {
            print "FAIL: +Inf bucket != _count for " route; bad = 1; exit 1
        }
        checked++
    }
    END {
        if (bad) exit 1
        if (n == 0 || checked == 0) { print "FAIL: no histogram samples scraped"; exit 1 }
        printf "ok: %d bucket samples monotone, %d routes consistent\n", n, checked
    }
' || exit 1

echo "== error paths return structured JSON with machine-readable codes"
check_code GET "$BASE/v1/datasets/nope" 404
check_code POST "$BASE/v1/datasets" 400 '{"name":"bad","generator":"ECG","bogus":1}'
curl -s "$BASE/v1/datasets/nope" | grep -q '"code":"not_found"' \
    || { echo "FAIL: 404 body missing code field" >&2; exit 1; }

echo "== graceful shutdown (SIGTERM)"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=
echo "serve smoke: PASS"
