#!/usr/bin/env sh
# Observability smoke test: boot onex-server with JSON logging, a tiny
# slow-query threshold and pprof enabled, then verify the tracing surface
# end to end — explain traces on sync queries and jobs, the slow-query
# buffer, the structured request log and the profiling endpoints. Run via
# `make obs-smoke`.
set -eu

ADDR="${ONEX_OBS_SMOKE_ADDR:-127.0.0.1:18081}"
BASE="http://$ADDR"
BIN="${TMPDIR:-/tmp}/onex-server-obs-smoke.$$"
LOG="$(mktemp "${TMPDIR:-/tmp}/onex-obs-smoke-log.XXXXXX")"

cleanup() {
    [ -n "${SERVER_PID:-}" ] && kill "$SERVER_PID" 2>/dev/null || true
    [ -n "${SERVER_PID:-}" ] && wait "$SERVER_PID" 2>/dev/null || true
    rm -rf "$BIN" "$LOG"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$BIN" ./cmd/onex-server

echo "== start ($ADDR, json logs, -slow-query 1us, -pprof)"
# 1µs threshold marks effectively every request slow, so the slow-query
# log path is exercised deterministically.
"$BIN" -addr "$ADDR" -generate ItalyPower -scale 0.2 -st 0.25 -lengths 6 \
    -log-format json -log-level info -slow-query 1us -pprof 2>"$LOG" &
SERVER_PID=$!

echo "== wait for /healthz"
for i in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died; log:" >&2; cat "$LOG" >&2; exit 1; }
    sleep 0.2
done
curl -sf "$BASE/healthz" >/dev/null || { echo "healthz failed" >&2; exit 1; }

LEN=$(curl -sf "$BASE/v1/datasets/ItalyPower/stats" | sed 's/.*"lengths":\[\([0-9]*\).*/\1/')
Q=$(awk -v n="$LEN" 'BEGIN{printf "["; for(i=0;i<n;i++){printf "%s0.5", (i?",":"")}; printf "]"}')

echo "== explain: sync match returns result + trace"
EXPLAIN=$(curl -sf -H 'X-Request-Id: obs-smoke-7' -X POST \
    -d "{\"query\":$Q,\"explain\":true}" "$BASE/v1/datasets/ItalyPower/match")
echo "$EXPLAIN" | grep -q '"result"' || { echo "FAIL: explain lost the result" >&2; exit 1; }
echo "$EXPLAIN" | grep -q '"spans"' || { echo "FAIL: explain trace has no spans" >&2; exit 1; }
echo "$EXPLAIN" | grep -q '"requestId":"obs-smoke-7"' \
    || { echo "FAIL: trace does not carry the inbound request id" >&2; exit 1; }

echo "== explain: ?explain=1 works on seasonal (GET)"
curl -sf "$BASE/v1/datasets/ItalyPower/seasonal?length=$LEN&explain=1" | grep -q '"trace"' \
    || { echo "FAIL: seasonal ?explain=1 returned no trace" >&2; exit 1; }

echo "== explain: single-form job attaches the trace to the result"
JOB_ID=$(curl -sf -X POST -d "{\"query\":$Q,\"explain\":true}" \
    "$BASE/v1/datasets/ItalyPower/match/jobs" | sed 's/.*"id":"\([^"]*\)".*/\1/')
[ -n "$JOB_ID" ] || { echo "FAIL: job submission returned no id" >&2; exit 1; }
for i in $(seq 1 50); do
    JOB=$(curl -sf "$BASE/v1/jobs/$JOB_ID")
    STATE=$(echo "$JOB" | sed 's/.*"state":"\([^"]*\)".*/\1/')
    [ "$STATE" = "done" ] && break
    [ "$STATE" = "failed" ] && { echo "FAIL: job failed: $JOB" >&2; exit 1; }
    sleep 0.1
done
[ "$STATE" = "done" ] || { echo "FAIL: job stuck in state $STATE" >&2; exit 1; }
echo "$JOB" | grep -q '"trace"' || { echo "FAIL: job result has no trace" >&2; exit 1; }

echo "== /v1/debug/slow retains traced queries (job entries tagged)"
SLOW=$(curl -sf "$BASE/v1/debug/slow")
echo "$SLOW" | grep -q '"count":0' && { echo "FAIL: slow buffer empty" >&2; exit 1; }
echo "$SLOW" | grep -q "\"jobId\":\"$JOB_ID\"" \
    || { echo "FAIL: slow buffer has no entry for job $JOB_ID" >&2; exit 1; }

echo "== pprof mounted behind -pprof"
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/debug/pprof/")
[ "$code" = "200" ] || { echo "FAIL: /debug/pprof/ -> $code" >&2; exit 1; }

echo "== structured JSON request log"
# slog flushes per line; the match request above must appear with its
# request id, the slowQuery marker (1µs threshold) and the route.
for i in $(seq 1 20); do
    grep -q '"requestId":"obs-smoke-7"' "$LOG" && break
    sleep 0.1
done
grep -q '"requestId":"obs-smoke-7"' "$LOG" || { echo "FAIL: log missing request id; log:" >&2; cat "$LOG" >&2; exit 1; }
grep -q '"slowQuery":true' "$LOG" || { echo "FAIL: log missing slowQuery marker" >&2; exit 1; }
grep -q '"route":"POST /v1/datasets/{name}/match"' "$LOG" \
    || { echo "FAIL: log missing route pattern" >&2; exit 1; }
grep -q '"dataset":"ItalyPower"' "$LOG" || { echo "FAIL: log missing dataset" >&2; exit 1; }

echo "== graceful shutdown (SIGTERM)"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=
echo "obs smoke: PASS"
