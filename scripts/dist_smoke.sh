#!/usr/bin/env sh
# Distributed smoke test: boot two shard workers and a coordinator whose
# default dataset is served by them, plus two reference servers over the
# identical generated dataset — one sharded in-process (the bit-exactness
# contract: the remote transport must answer byte-identically to the local
# one, range ordering included) and one unsharded (cross-checking the
# order-insensitive families against the monolith). Then kill and restart
# a worker and require the same answers again (the client re-ships the
# shard state). Mirrored by the CI dist-smoke job via `make dist-smoke`.
set -eu

HOST="${ONEX_DIST_HOST:-127.0.0.1}"
MONO_ADDR="$HOST:18090"
W1_ADDR="$HOST:18091"
W2_ADDR="$HOST:18092"
DIST_ADDR="$HOST:18093"
LOCAL_ADDR="$HOST:18094"
BIN="${TMPDIR:-/tmp}/onex-server-dist.$$"
LOGDIR="$(mktemp -d "${TMPDIR:-/tmp}/onex-dist-logs.XXXXXX")"

cleanup() {
    status=$?
    for pid in "${MONO_PID:-}" "${LOCAL_PID:-}" "${DIST_PID:-}" "${W1_PID:-}" "${W2_PID:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    for pid in "${MONO_PID:-}" "${LOCAL_PID:-}" "${DIST_PID:-}" "${W1_PID:-}" "${W2_PID:-}"; do
        [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    done
    if [ "$status" -ne 0 ]; then
        echo "---- server logs (tails) ----" >&2
        for f in "$LOGDIR"/*.log; do
            [ -f "$f" ] || continue
            echo "-- $f" >&2
            tail -20 "$f" >&2
        done
    fi
    rm -rf "$BIN" "$LOGDIR"
}
trap cleanup EXIT INT TERM

wait_healthz() { # addr pid
    addr=$1; pid=$2
    for i in $(seq 1 50); do
        if curl -sf "http://$addr/healthz" >/dev/null 2>&1 \
            || curl -sf "http://$addr/worker/v1/healthz" >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "$pid" 2>/dev/null || { echo "server on $addr died" >&2; exit 1; }
        sleep 0.2
    done
    echo "server on $addr never became healthy" >&2
    exit 1
}

DATASET_FLAGS="-generate ItalyPower -scale 0.2 -st 0.25 -lengths 6 -seed 1"

echo "== build"
go build -o "$BIN" ./cmd/onex-server

echo "== start 2 workers, distributed coordinator, sharded + unsharded references"
"$BIN" -role worker -addr "$W1_ADDR" >"$LOGDIR/w1.log" 2>&1 &
W1_PID=$!
"$BIN" -role worker -addr "$W2_ADDR" >"$LOGDIR/w2.log" 2>&1 &
W2_PID=$!
wait_healthz "$W1_ADDR" "$W1_PID"
wait_healthz "$W2_ADDR" "$W2_PID"

# shellcheck disable=SC2086
"$BIN" -addr "$MONO_ADDR" $DATASET_FLAGS >"$LOGDIR/mono.log" 2>&1 &
MONO_PID=$!
# shellcheck disable=SC2086
"$BIN" -addr "$LOCAL_ADDR" $DATASET_FLAGS -shards 3 >"$LOGDIR/local.log" 2>&1 &
LOCAL_PID=$!
# shellcheck disable=SC2086
"$BIN" -addr "$DIST_ADDR" $DATASET_FLAGS -shards 3 -health-probe 250ms \
    -shard-workers "http://$W1_ADDR,http://$W2_ADDR" >"$LOGDIR/dist.log" 2>&1 &
DIST_PID=$!
wait_healthz "$MONO_ADDR" "$MONO_PID"
wait_healthz "$LOCAL_ADDR" "$LOCAL_PID"
wait_healthz "$DIST_ADDR" "$DIST_PID"

echo "== workers hold the coordinator's shipped shards"
SHARDS1=$(curl -sf "http://$W1_ADDR/worker/v1/healthz" | sed 's/.*"shards":\([0-9]*\).*/\1/')
SHARDS2=$(curl -sf "http://$W2_ADDR/worker/v1/healthz" | sed 's/.*"shards":\([0-9]*\).*/\1/')
TOTAL=$((SHARDS1 + SHARDS2))
[ "$TOTAL" -eq 3 ] || { echo "FAIL: workers hold $TOTAL shards, want 3" >&2; exit 1; }
echo "ok: $SHARDS1 + $SHARDS2 resident shards"

compare() { # refaddr label method path [body]
    refaddr=$1; label=$2; method=$3; path=$4; body=${5:-}
    if [ -n "$body" ]; then
        ref=$(curl -sf -X "$method" -d "$body" "http://$refaddr$path")
        dist=$(curl -sf -X "$method" -d "$body" "http://$DIST_ADDR$path")
    else
        ref=$(curl -sf -X "$method" "http://$refaddr$path")
        dist=$(curl -sf -X "$method" "http://$DIST_ADDR$path")
    fi
    if [ "$ref" != "$dist" ]; then
        echo "FAIL: $label diverged from $refaddr" >&2
        echo "  ref:  $ref" >&2
        echo "  dist: $dist" >&2
        exit 1
    fi
    echo "ok: $label matches $refaddr"
}

Q6='[0.1,0.5,0.9,0.5,0.1,0.5]'
run_mix() {
    # Byte-identical to the in-process sharded engine: the transport contract.
    compare "$LOCAL_ADDR" "match"       POST "/v1/datasets/ItalyPower/match" "{\"query\":$Q6}"
    compare "$LOCAL_ADDR" "knn"         POST "/v1/datasets/ItalyPower/match" "{\"query\":$Q6,\"k\":3}"
    compare "$LOCAL_ADDR" "match exact" POST "/v1/datasets/ItalyPower/match" "{\"query\":$Q6,\"mode\":\"exact\"}"
    compare "$LOCAL_ADDR" "range"       POST "/v1/datasets/ItalyPower/range" "{\"query\":$Q6,\"length\":6,\"radius\":0.3}"
    compare "$LOCAL_ADDR" "range exact" POST "/v1/datasets/ItalyPower/range" "{\"query\":$Q6,\"length\":6,\"radius\":0.3,\"exact\":true}"
    compare "$LOCAL_ADDR" "seasonal"    GET  "/v1/datasets/ItalyPower/seasonal?length=6"
    compare "$LOCAL_ADDR" "recommend"   GET  "/v1/datasets/ItalyPower/recommend?degree=S"
    compare "$LOCAL_ADDR" "match batch" POST "/v1/datasets/ItalyPower/match/batch" \
        "{\"queries\":[{\"query\":$Q6},{\"query\":$Q6,\"k\":2}]}"
    # Order-insensitive families also match the unsharded monolith (range
    # content matches too, but its concatenation order is per-layout).
    compare "$MONO_ADDR" "match vs mono"     POST "/v1/datasets/ItalyPower/match" "{\"query\":$Q6}"
    compare "$MONO_ADDR" "knn vs mono"       POST "/v1/datasets/ItalyPower/match" "{\"query\":$Q6,\"k\":3}"
    compare "$MONO_ADDR" "recommend vs mono" GET  "/v1/datasets/ItalyPower/recommend?degree=S"
}

echo "== query mix: distributed vs local-sharded and unsharded references"
run_mix

echo "== distributed explain carries rpc and worker spans"
# A query run_mix has not cached, so the cascade actually reaches the workers.
QX='[0.9,0.4,0.1,0.4,0.9,0.4]'
EXPLAIN=$(curl -sf -X POST -d "{\"query\":$QX,\"explain\":true}" \
    "http://$DIST_ADDR/v1/datasets/ItalyPower/match")
echo "$EXPLAIN" | grep -q '"transport":"remote"' \
    || { echo "FAIL: distributed explain not tagged remote: $EXPLAIN" >&2; exit 1; }
echo "$EXPLAIN" | grep -q '"name":"rpc-scan"' \
    || { echo "FAIL: distributed explain has no rpc-scan span: $EXPLAIN" >&2; exit 1; }
echo "$EXPLAIN" | grep -q '"name":"worker-scan"' \
    || { echo "FAIL: distributed explain has no folded worker-scan span: $EXPLAIN" >&2; exit 1; }
echo "ok: distributed explain decomposes into rpc + worker spans"

echo "== worker metrics exposition"
WMETRICS=$(curl -sf "http://$W2_ADDR/worker/v1/metrics")
for fam in onex_worker_op_duration_seconds onex_worker_ops_total \
    onex_worker_ships_total onex_worker_resident_shards \
    onex_worker_retained_generations onex_worker_uptime_seconds; do
    echo "$WMETRICS" | grep -q "^# TYPE $fam " \
        || { echo "FAIL: worker /metrics missing family $fam" >&2; exit 1; }
done
echo "$WMETRICS" | awk '
    /^onex_worker_op_duration_seconds_bucket\{op="scan",/ {
        n++; v = $NF + 0
        if (v < prev) { print "bucket decreased: " $0; exit 1 }
        prev = v
    }
    END { if (n == 0) { print "no scan buckets"; exit 1 } }' \
    || { echo "FAIL: worker scan histogram buckets not monotone" >&2; exit 1; }
echo "ok: worker metrics families present, scan buckets monotone"

echo "== coordinator surfaces fleet health"
curl -sf "http://$DIST_ADDR/metrics" | grep -q '^onex_worker_up{' \
    || { echo "FAIL: coordinator /metrics has no onex_worker_up" >&2; exit 1; }
curl -sf "http://$DIST_ADDR/v1/stats" | grep -q "\"url\":\"http://$W1_ADDR\",\"up\":true" \
    || { echo "FAIL: /v1/stats workers section missing or W1 not up" >&2; exit 1; }
echo "ok: onex_worker_up exposed, workers section reports W1 up"

wait_worker_state() { # addr want(true|false)
    addr=$1; want=$2
    for i in $(seq 1 40); do
        if curl -sf "http://$DIST_ADDR/v1/stats" \
            | grep -q "\"url\":\"http://$addr\",\"up\":$want"; then
            return 0
        fi
        sleep 0.3
    done
    echo "FAIL: worker $addr never reported up=$want" >&2
    exit 1
}

echo "== kill worker 1: fleet health flips it down"
kill "$W1_PID"
wait "$W1_PID" 2>/dev/null || true
wait_worker_state "$W1_ADDR" false
echo "ok: W1 reported down after kill"

echo "== restart worker 1 empty at the same address, re-query"
"$BIN" -role worker -addr "$W1_ADDR" >"$LOGDIR/w1b.log" 2>&1 &
W1_PID=$!
wait_healthz "$W1_ADDR" "$W1_PID"
wait_worker_state "$W1_ADDR" true
echo "ok: W1 reported up after restart"
run_mix

echo "== request id propagated to worker log lines"
grep -q 'worker request' "$LOGDIR/w2.log" \
    || { echo "FAIL: worker log has no request lines" >&2; exit 1; }
grep 'worker request' "$LOGDIR/w2.log" | grep -q 'requestId=[0-9a-f]' \
    || { echo "FAIL: worker request lines carry no request id" >&2; exit 1; }
echo "ok: worker logs are tagged with coordinator request ids"

echo "== graceful shutdown"
for pid in "$DIST_PID" "$MONO_PID" "$LOCAL_PID" "$W1_PID" "$W2_PID"; do
    kill -TERM "$pid" 2>/dev/null || true
done
for pid in "$DIST_PID" "$MONO_PID" "$LOCAL_PID" "$W1_PID" "$W2_PID"; do
    wait "$pid" 2>/dev/null || true
done
DIST_PID=; MONO_PID=; LOCAL_PID=; W1_PID=; W2_PID=
echo "dist smoke: PASS"
