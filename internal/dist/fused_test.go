package dist

import (
	"math"
	"math/rand"
	"testing"
)

// twoRowDTW is the pre-optimization kernel, kept verbatim as the reference
// the fused row-pair kernel must match BIT FOR BIT (not within a
// tolerance): the optimization reorders memory traffic, never arithmetic.
func twoRowDTW(q, c []float64, window int, cutoff float64) float64 {
	n, m := len(q), len(c)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return math.Inf(1)
	}
	band := window
	if band >= 0 {
		if d := n - m; d > band || -d > band {
			if d < 0 {
				d = -d
			}
			band = d
		}
	}
	cutoffSq := cutoff * cutoff

	inf := math.Inf(1)
	prev := make([]float64, m+1)
	curr := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		jLo, jHi := 1, m
		if band >= 0 {
			if lo := i - band; lo > jLo {
				jLo = lo
			}
			if hi := i + band; hi < jHi {
				jHi = hi
			}
		}
		curr[jLo-1] = inf
		if jHi < m {
			curr[jHi+1] = inf
		}
		rowMin := inf
		qi := q[i-1]
		for j := jLo; j <= jHi; j++ {
			best := prev[j]
			if v := prev[j-1]; v < best {
				best = v
			}
			if v := curr[j-1]; v < best {
				best = v
			}
			d := qi - c[j-1]
			acc := best + d*d
			curr[j] = acc
			if acc < rowMin {
				rowMin = acc
			}
		}
		if rowMin > cutoffSq {
			return inf
		}
		prev, curr = curr, prev
	}
	return math.Sqrt(prev[m])
}

// TestDTWFusedBitIdentical locks the fused kernel to the two-row reference
// with exact float equality: every (odd/even length) shape, unconstrained
// and banded, infinite and straddling cutoffs, including reuse of one
// workspace across shapes.
func TestDTWFusedBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(271))
	var w Workspace
	abandoned, kept := 0, 0
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(48)
		m := 1 + r.Intn(48)
		a, b := randSeries(r, n), randSeries(r, m)
		window := Unconstrained
		switch trial % 4 {
		case 1:
			window = r.Intn(10) // banded
		case 2:
			window = n + m // wide band: takes the unconstrained fast path
		}
		cutoff := math.Inf(1)
		if trial%2 == 1 {
			exact := twoRowDTW(a, b, window, math.Inf(1))
			cutoff = exact * (0.25 + 1.5*r.Float64())
		}
		want := twoRowDTW(a, b, window, cutoff)
		got := w.DTWEarlyAbandon(a, b, window, cutoff)
		if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
			t.Fatalf("trial %d (n=%d m=%d window=%d cutoff=%v): fused %v != reference %v",
				trial, n, m, window, cutoff, got, want)
		}
		if math.IsInf(want, 1) {
			abandoned++
		} else {
			kept++
		}
	}
	if abandoned == 0 || kept == 0 {
		t.Fatalf("degenerate trial mix: %d abandoned, %d kept", abandoned, kept)
	}
}
