package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestLCSSDistanceGolden(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := LCSSDistance(a, a, 0.01, -1); got != 0 {
		t.Errorf("identical LCSS distance = %v, want 0", got)
	}
	far := []float64{100, 200, 300, 400}
	if got := LCSSDistance(a, far, 0.5, -1); got != 1 {
		t.Errorf("disjoint LCSS distance = %v, want 1", got)
	}
	// Huge epsilon matches everything.
	if got := LCSSDistance(a, far, 1e6, -1); got != 0 {
		t.Errorf("epsilon=∞ LCSS distance = %v, want 0", got)
	}
	// a shares the prefix (1,2) with b under ε=0.1: LCSS=2, min length 3.
	b := []float64{1, 2, 50}
	if got, want := LCSSDistance(a, b, 0.1, -1), 1-2.0/3; math.Abs(got-want) > 1e-12 {
		t.Errorf("prefix LCSS distance = %v, want %v", got, want)
	}
}

func TestLCSSDistanceDeltaWindow(t *testing.T) {
	// The matching pair sits 3 positions apart: visible without a window,
	// invisible with delta=1.
	a := []float64{5, 0, 0, 0}
	b := []float64{0, 0, 0, 5}
	if got := LCSSDistance(a, b, 0.1, -1); got >= 1 {
		t.Errorf("unwindowed LCSS distance = %v, want < 1", got)
	}
	unwindowed := LCSSDistance(a, b, 0.1, -1)
	windowed := LCSSDistance(a, b, 0.1, 1)
	if windowed < unwindowed {
		t.Errorf("delta window increased the common subsequence: %v < %v", windowed, unwindowed)
	}
}

func TestLCSSDistanceRangeAndSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for trial := 0; trial < 100; trial++ {
		a := randSeries(r, 1+r.Intn(25))
		b := randSeries(r, 1+r.Intn(25))
		eps := r.Float64()
		d1 := LCSSDistance(a, b, eps, -1)
		if d1 < 0 || d1 > 1 {
			t.Fatalf("LCSS distance %v outside [0,1]", d1)
		}
		if d2 := LCSSDistance(b, a, eps, -1); math.Abs(d1-d2) > 1e-12 {
			t.Fatalf("LCSS not symmetric: %v vs %v", d1, d2)
		}
	}
}

func TestLCSSDistanceEmpty(t *testing.T) {
	if got := LCSSDistance(nil, nil, 0.1, -1); got != 0 {
		t.Errorf("LCSS(nil,nil) = %v, want 0", got)
	}
	if got := LCSSDistance([]float64{1}, nil, 0.1, -1); got != 1 {
		t.Errorf("LCSS(x,nil) = %v, want 1", got)
	}
}

func TestERPGolden(t *testing.T) {
	a := []float64{1, 2, 3}
	if got := ERP(a, a, 0); got != 0 {
		t.Errorf("ERP(a,a) = %v, want 0", got)
	}
	// Against the empty sequence every point is a gap: Σ|aᵢ−g|.
	if got := ERP(a, nil, 0); got != 6 {
		t.Errorf("ERP(a,∅,0) = %v, want 6", got)
	}
	if got := ERP(nil, a, 1); got != 0+1+2 {
		t.Errorf("ERP(∅,a,1) = %v, want 3", got)
	}
	// One extra point is cheapest as a single gap.
	if got := ERP([]float64{1, 2, 3}, []float64{1, 2, 2, 3}, 0); got != 2 {
		t.Errorf("ERP with one insertion = %v, want 2", got)
	}
}

func TestERPIsAMetric(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 100; trial++ {
		a := randSeries(r, 1+r.Intn(12))
		b := randSeries(r, 1+r.Intn(12))
		c := randSeries(r, 1+r.Intn(12))
		const g = 0
		ab, ba := ERP(a, b, g), ERP(b, a, g)
		if math.Abs(ab-ba) > 1e-9 {
			t.Fatalf("ERP not symmetric: %v vs %v", ab, ba)
		}
		if ab < 0 {
			t.Fatalf("ERP negative: %v", ab)
		}
		ac, cb := ERP(a, c, g), ERP(c, b, g)
		if ab > ac+cb+1e-9 {
			t.Fatalf("ERP triangle violated: d(a,b)=%v > d(a,c)+d(c,b)=%v", ab, ac+cb)
		}
	}
}
