package dist

import (
	"math"
	"testing"
)

// TestZeroVarianceInputs pins the kernel's semantics for constant (zero-
// variance) sequences: every distance and lower bound stays finite — the
// kernel itself never divides by a variance, so constant inputs are ordinary
// values. (Per-window z-normalization, which does divide by σ, lives in
// ts.ZNormalize and maps constant windows to all-zeros by the UCR
// convention; baseline.Trillion applies the same rule inline.)
func TestZeroVarianceInputs(t *testing.T) {
	flat := []float64{3, 3, 3, 3, 3, 3}
	flat2 := []float64{-1, -1, -1, -1, -1, -1}
	wave := []float64{3, 4, 2, 3, 5, 1}

	checkFinite := func(name string, v float64) {
		t.Helper()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v on zero-variance input", name, v)
		}
	}
	if d := ED(flat, flat); d != 0 {
		t.Errorf("ED(flat, flat) = %v, want 0", d)
	}
	if d := NormalizedED(flat, flat); d != 0 {
		t.Errorf("NormalizedED(flat, flat) = %v, want 0", d)
	}
	checkFinite("ED(flat, flat2)", ED(flat, flat2))
	checkFinite("NormalizedED(flat, wave)", NormalizedED(flat, wave))

	var ws Workspace
	if d := ws.DTW(flat, flat); d != 0 {
		t.Errorf("DTW(flat, flat) = %v, want 0", d)
	}
	checkFinite("DTW(flat, wave)", ws.DTW(flat, wave))
	checkFinite("NormalizedDTW(flat, flat2)", NormalizedDTW(flat, flat2))
	checkFinite("LBKim(flat, wave)", LBKim(flat, wave))

	u, l := Envelope(flat, len(flat), nil, nil)
	for i := range u {
		if u[i] != flat[i] || l[i] != flat[i] {
			t.Fatalf("envelope of a constant sequence must collapse onto it (got [%v,%v] at %d)", l[i], u[i], i)
		}
	}
	checkFinite("LBKeogh(wave, flatEnv)", LBKeogh(wave, u, l, math.Inf(1)))

	// The DTW of two constants is √n·|a−b| (every path step pays the same).
	want := math.Sqrt(6) * 4
	if d := ws.DTW(flat, flat2); math.Abs(d-want) > 1e-12 {
		t.Errorf("DTW(flat, flat2) = %v, want %v", d, want)
	}
}
