package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestEDGolden(t *testing.T) {
	if got := ED([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Errorf("ED = %v, want 5", got)
	}
	if got := ED(nil, nil); got != 0 {
		t.Errorf("ED(nil,nil) = %v, want 0", got)
	}
	a := []float64{1.5, -2, 0.25}
	if got := ED(a, a); got != 0 {
		t.Errorf("ED(a,a) = %v, want 0", got)
	}
}

func TestEDPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ED with mismatched lengths did not panic")
		}
	}()
	ED([]float64{1, 2}, []float64{1})
}

func TestNormalizedED(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	b := []float64{1, 1, 1, 1}
	// ED = 2, √L = 2.
	if got := NormalizedED(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("NormalizedED = %v, want 1", got)
	}
	if got := NormalizedED(nil, nil); got != 0 {
		t.Errorf("NormalizedED(nil,nil) = %v, want 0", got)
	}
}

func TestSquaredEDEarlyAbandon(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{1, 2, 2}
	exact := 9.0 // 1 + 4 + 4
	if got := SquaredEDEarlyAbandon(a, b, math.Inf(1)); got != exact {
		t.Errorf("no-cutoff result = %v, want %v", got, exact)
	}
	// A sum equal to the cutoff must survive (group assignment compares ≤).
	if got := SquaredEDEarlyAbandon(a, b, exact); got != exact {
		t.Errorf("cutoff==sum result = %v, want %v", got, exact)
	}
	if got := SquaredEDEarlyAbandon(a, b, exact-0.5); !math.IsInf(got, 1) {
		t.Errorf("cutoff below sum = %v, want +Inf", got)
	}
	// Abandon must trigger mid-scan, not only at the end.
	long := make([]float64, 1000)
	far := make([]float64, 1000)
	for i := range far {
		far[i] = 10
	}
	if got := SquaredEDEarlyAbandon(long, far, 1); !math.IsInf(got, 1) {
		t.Errorf("far sequences = %v, want +Inf", got)
	}
}

func TestSquaredEDEarlyAbandonMatchesED(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(50)
		a, b := randSeries(r, n), randSeries(r, n)
		want := ED(a, b)
		got := SquaredEDEarlyAbandon(a, b, math.Inf(1))
		if math.Abs(math.Sqrt(got)-want) > 1e-9 {
			t.Fatalf("√SquaredED %v != ED %v", math.Sqrt(got), want)
		}
	}
}
