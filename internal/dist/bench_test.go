package dist

import (
	"math"
	"math/rand"
	"testing"
)

func benchPair(n int) (q, c []float64) {
	r := rand.New(rand.NewSource(int64(n)))
	return randSeries(r, n), randSeries(r, n)
}

func BenchmarkED128(b *testing.B) {
	q, c := benchPair(128)
	for i := 0; i < b.N; i++ {
		ED(q, c)
	}
}

func BenchmarkDTW128(b *testing.B) {
	q, c := benchPair(128)
	var w Workspace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.DTW(q, c)
	}
}

func BenchmarkDTWEarlyAbandon128(b *testing.B) {
	q, c := benchPair(128)
	var w Workspace
	cutoff := w.DTW(q, c) * 0.5 // typical pruned verification
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.DTWEarlyAbandon(q, c, Unconstrained, cutoff)
	}
}

func BenchmarkDTWBanded128(b *testing.B) {
	q, c := benchPair(128)
	var w Workspace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.DTWEarlyAbandon(q, c, 8, math.Inf(1))
	}
}

func BenchmarkLBKeogh128(b *testing.B) {
	q, c := benchPair(128)
	u, l := Envelope(c, len(c), nil, nil)
	order := QueryOrder(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LBKeoghOrdered(q, u, l, order, math.Inf(1))
	}
}

func BenchmarkEnvelope1024(b *testing.B) {
	r := rand.New(rand.NewSource(1024))
	x := randSeries(r, 1024)
	var u, l []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, l = Envelope(x, 16, u, l)
	}
}

func BenchmarkDTWPath128(b *testing.B) {
	q, c := benchPair(128)
	for i := 0; i < b.N; i++ {
		DTWPath(q, c)
	}
}
