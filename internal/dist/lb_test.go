package dist

import (
	"math"
	"math/rand"
	"testing"
)

// naiveEnvelope is the direct O(n·r) reference for the deque-based kernel.
func naiveEnvelope(x []float64, r int) (upper, lower []float64) {
	n := len(x)
	upper = make([]float64, n)
	lower = make([]float64, n)
	for i := 0; i < n; i++ {
		lo, hi := i-r, i+r
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		u, l := x[lo], x[lo]
		for j := lo + 1; j <= hi; j++ {
			if x[j] > u {
				u = x[j]
			}
			if x[j] < l {
				l = x[j]
			}
		}
		upper[i], lower[i] = u, l
	}
	return upper, lower
}

func TestEnvelopeMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(60)
		radius := r.Intn(n + 3) // occasionally beyond the full radius
		x := randSeries(r, n)
		wantU, wantL := naiveEnvelope(x, radius)
		gotU, gotL := Envelope(x, radius, nil, nil)
		for i := 0; i < n; i++ {
			if gotU[i] != wantU[i] || gotL[i] != wantL[i] {
				t.Fatalf("trial %d (n=%d r=%d) index %d: got (%v,%v) want (%v,%v)",
					trial, n, radius, i, gotU[i], gotL[i], wantU[i], wantL[i])
			}
		}
	}
}

func TestEnvelopeReusesBuffers(t *testing.T) {
	x := []float64{1, 3, 2, 5, 4}
	u1, l1 := Envelope(x, 1, nil, nil)
	u2, l2 := Envelope(x, 2, u1, l1)
	if &u1[0] != &u2[0] || &l1[0] != &l2[0] {
		t.Error("sufficient-capacity buffers were not reused")
	}
	// A longer input must grow them instead of slicing out of range.
	long := randSeries(rand.New(rand.NewSource(1)), 32)
	u3, l3 := Envelope(long, 4, u2, l2)
	if len(u3) != 32 || len(l3) != 32 {
		t.Errorf("grown envelope lengths %d/%d, want 32", len(u3), len(l3))
	}
}

func TestEnvelopeEmptyAndZeroRadius(t *testing.T) {
	u, l := Envelope(nil, 3, nil, nil)
	if len(u) != 0 || len(l) != 0 {
		t.Error("empty input must yield empty envelopes")
	}
	x := []float64{4, 1, 7}
	u, l = Envelope(x, 0, nil, nil)
	for i := range x {
		if u[i] != x[i] || l[i] != x[i] {
			t.Errorf("radius-0 envelope differs from input at %d", i)
		}
	}
}

func TestQueryOrderIsSortedPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		q := randSeries(r, 1+r.Intn(40))
		order := QueryOrder(q)
		if len(order) != len(q) {
			t.Fatalf("order length %d != %d", len(order), len(q))
		}
		seen := make([]bool, len(q))
		for i, idx := range order {
			if idx < 0 || idx >= len(q) || seen[idx] {
				t.Fatalf("order is not a permutation at %d", i)
			}
			seen[idx] = true
			if i > 0 && math.Abs(q[order[i-1]]) < math.Abs(q[idx])-1e-15 {
				t.Fatalf("order not decreasing by |q| at %d", i)
			}
		}
	}
}

func TestLBKimGolden(t *testing.T) {
	q := []float64{1, 9, 9, 2}
	c := []float64{4, 0, 6}
	// √((1−4)² + (2−6)²) = 5.
	if got := LBKim(q, c); math.Abs(got-5) > 1e-12 {
		t.Errorf("LBKim = %v, want 5", got)
	}
	// Single-point sequences pay the sole cell once, not twice.
	if got := LBKim([]float64{3}, []float64{1}); got != 2 {
		t.Errorf("LBKim singletons = %v, want 2", got)
	}
	if got := LBKim(nil, []float64{1}); got != 0 {
		t.Errorf("LBKim empty = %v, want 0", got)
	}
}

func TestLBKeoghOrderedMatchesUnordered(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(40)
		q := randSeries(r, n)
		c := randSeries(r, n)
		u, l := Envelope(c, r.Intn(n), nil, nil)
		want := LBKeogh(q, u, l, math.Inf(1))
		got := LBKeoghOrdered(q, u, l, QueryOrder(q), math.Inf(1))
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("ordered %v != unordered %v", got, want)
		}
	}
}

func TestLBKeoghEarlyAbandon(t *testing.T) {
	q := []float64{10, 10, 10}
	u := []float64{1, 1, 1}
	l := []float64{0, 0, 0}
	exact := math.Sqrt(3 * 81)
	if got := LBKeogh(q, u, l, math.Inf(1)); math.Abs(got-exact) > 1e-12 {
		t.Errorf("LBKeogh = %v, want %v", got, exact)
	}
	if got := LBKeogh(q, u, l, exact/2); !math.IsInf(got, 1) {
		t.Errorf("cutoff below bound = %v, want +Inf", got)
	}
	if got := LBKeoghOrdered(q, u, l, []int{0, 1, 2}, exact/2); !math.IsInf(got, 1) {
		t.Errorf("ordered cutoff below bound = %v, want +Inf", got)
	}
}

// TestPropertyLowerBoundSandwich verifies, over well more than 100 random
// series pairs, the admissibility chain the Sec. 5.3 pruning cascade
// depends on: LB_Kim ≤ DTW and LB_Keogh ≤ DTW individually, hence the
// cascade's effective bound max(LB_Kim, LB_Keogh) is sandwiched between
// the cheapest bound and the true distance,
//
//	LBKim ≤ max(LBKim, LBKeogh) ≤ DTW.
//
// Note the two bounds are NOT pointwise ordered against each other: for
// q = (0,0), c = (1,0) the full-radius envelope [0,1] swallows q entirely
// (LB_Keogh = 0) while LB_Kim = 1 — which is why the cascade takes the max
// rather than assuming LB_Keogh dominates.
func TestPropertyLowerBoundSandwich(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	var w Workspace
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(40)
		q := randSeries(r, n)
		c := randSeries(r, n)
		if trial%3 == 0 {
			// Correlated pairs keep some distances small so the chain is
			// exercised away from the trivially-large regime too.
			c = append([]float64(nil), q...)
			for i := range c {
				c[i] += 0.1 * r.NormFloat64()
			}
		}
		u, l := Envelope(c, n, nil, nil) // full radius: admissible for unconstrained DTW
		lbKim := LBKim(q, c)
		lbKeogh := LBKeogh(q, u, l, math.Inf(1))
		dtw := w.DTW(q, c)
		cascade := math.Max(lbKim, lbKeogh)
		if lbKim > dtw+1e-9 {
			t.Fatalf("trial %d: LBKim %v > DTW %v", trial, lbKim, dtw)
		}
		if lbKeogh > dtw+1e-9 {
			t.Fatalf("trial %d: LBKeogh %v > DTW %v", trial, lbKeogh, dtw)
		}
		if lbKim > cascade+1e-12 || cascade > dtw+1e-9 {
			t.Fatalf("trial %d: sandwich violated: %v ≤ %v ≤ %v", trial, lbKim, cascade, dtw)
		}
	}
}

// TestPropertyLBKimCrossLength checks LB_Kim's admissibility for pairs of
// different lengths — the regime the query processor uses it in before the
// same-length-only LB_Keogh applies.
func TestPropertyLBKimCrossLength(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	var w Workspace
	for trial := 0; trial < 150; trial++ {
		q := randSeries(r, 1+r.Intn(30))
		c := randSeries(r, 1+r.Intn(30))
		if lb, dtw := LBKim(q, c), w.DTW(q, c); lb > dtw+1e-9 {
			t.Fatalf("trial %d: cross-length LBKim %v > DTW %v", trial, lb, dtw)
		}
	}
}

// TestPropertyLBKeoghBanded checks admissibility of LB_Keogh for banded
// DTW whenever the envelope radius covers the band.
func TestPropertyLBKeoghBanded(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	var w Workspace
	for trial := 0; trial < 150; trial++ {
		n := 2 + r.Intn(30)
		q := randSeries(r, n)
		c := randSeries(r, n)
		window := r.Intn(n)
		radius := window + r.Intn(n-window)
		u, l := Envelope(c, radius, nil, nil)
		lb := LBKeogh(q, u, l, math.Inf(1))
		dtw := w.DTWEarlyAbandon(q, c, window, math.Inf(1))
		if lb > dtw+1e-9 {
			t.Fatalf("trial %d (n=%d w=%d r=%d): LBKeogh %v > banded DTW %v",
				trial, n, window, radius, lb, dtw)
		}
	}
}
