// Package dist implements the similarity-distance kernel of ONEX: the
// Euclidean and Dynamic Time Warping distances of Defs. 2–3 with the
// paper's length normalizations (Defs. 5–6), the Sec. 5.3 pruning
// machinery (warping envelopes, LB_Kim, LB_Keogh, early abandoning), and
// the elastic extras the related-work ablations compare against (LCSS,
// ERP).
//
// Conventions shared by every function in the package:
//
//   - Distances live in "root" space: ED and DTW both return the square
//     root of a sum of squared point differences, so ED(x,y) equals the
//     textbook Euclidean distance and DTW(x,y) ≤ ED(x,y) for same-length
//     inputs (the diagonal is a valid warping path). Lower bounds are
//     returned on the same scale and are directly comparable to DTW
//     values.
//   - Early-abandoning variants take a cutoff on that same scale (or in
//     squared units where the name says so) and return +Inf as soon as
//     the running total proves the result cannot beat the cutoff. A
//     finite return value is always the exact distance.
//   - The Sakoe-Chiba band is expressed as an integer half-width w
//     (|i−j| ≤ w); the Unconstrained sentinel disables it.
package dist

import "math"

// ED returns the Euclidean distance √Σ(aᵢ−bᵢ)² between two equal-length
// sequences (Def. 2).
func ED(a, b []float64) float64 {
	return math.Sqrt(sqED(a, b))
}

// NormalizedED is the length-normalized Euclidean distance ED(a,b)/√n of
// Def. 5 — the scale the similarity threshold ST is stated in.
func NormalizedED(a, b []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	return ED(a, b) / math.Sqrt(float64(len(a)))
}

// SquaredEDEarlyAbandon accumulates Σ(aᵢ−bᵢ)² and abandons as soon as the
// running sum exceeds cutoff (also in squared units), returning +Inf. A
// finite return value is the exact squared Euclidean distance; a sum equal
// to the cutoff is not abandoned.
func SquaredEDEarlyAbandon(a, b []float64, cutoff float64) float64 {
	checkSameLength(len(a), len(b))
	var sum float64
	for i, v := range a {
		d := v - b[i]
		sum += d * d
		if sum > cutoff {
			return math.Inf(1)
		}
	}
	return sum
}

// sqED is the full squared Euclidean distance.
func sqED(a, b []float64) float64 {
	checkSameLength(len(a), len(b))
	var sum float64
	for i, v := range a {
		d := v - b[i]
		sum += d * d
	}
	return sum
}

func checkSameLength(n, m int) {
	if n != m {
		panic("dist: sequence lengths differ")
	}
}
