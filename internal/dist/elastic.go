package dist

import "math"

// LCSSDistance is the Longest-Common-Subsequence dissimilarity:
// 1 − LCSS(x,y)/min(n,m), in [0,1]. Points match when |xᵢ−yⱼ| ≤ epsilon
// and, if delta ≥ 0, additionally |i−j| ≤ delta (the temporal matching
// window; pass a negative delta for no window). One of the elastic
// distances the paper's related work weighs against DTW (Sec. 7).
func LCSSDistance(x, y []float64, epsilon float64, delta int) float64 {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return 1
	}
	prev := make([]int, m+1)
	curr := make([]int, m+1)
	for i := 1; i <= n; i++ {
		xi := x[i-1]
		for j := 1; j <= m; j++ {
			inWindow := delta < 0 || abs(i-j) <= delta
			if inWindow && math.Abs(xi-y[j-1]) <= epsilon {
				curr[j] = prev[j-1] + 1
			} else if prev[j] >= curr[j-1] {
				curr[j] = prev[j]
			} else {
				curr[j] = curr[j-1]
			}
		}
		prev, curr = curr, prev
	}
	shorter := n
	if m < shorter {
		shorter = m
	}
	return 1 - float64(prev[m])/float64(shorter)
}

// ERP is the Edit distance with Real Penalty (Chen & Ng): an L1 edit
// distance where a gap aligns a point against the constant g. Unlike DTW
// it is a metric (it satisfies the triangle inequality), at the price of
// sensitivity to the choice of g; g = 0 is conventional for normalized
// data.
func ERP(x, y []float64, g float64) float64 {
	n, m := len(x), len(y)
	prev := make([]float64, m+1)
	curr := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] + math.Abs(y[j-1]-g)
	}
	for i := 1; i <= n; i++ {
		xi := x[i-1]
		gapX := math.Abs(xi - g)
		curr[0] = prev[0] + gapX
		for j := 1; j <= m; j++ {
			match := prev[j-1] + math.Abs(xi-y[j-1])
			skipX := prev[j] + gapX
			skipY := curr[j-1] + math.Abs(y[j-1]-g)
			best := match
			if skipX < best {
				best = skipX
			}
			if skipY < best {
				best = skipY
			}
			curr[j] = best
		}
		prev, curr = curr, prev
	}
	return prev[m]
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
