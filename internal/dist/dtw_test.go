package dist

import (
	"math"
	"math/rand"
	"testing"
)

// naiveDTW is an independent full-matrix reference implementation: no row
// reuse, no early abandoning, band applied directly — the golden oracle
// for the optimized kernel. window < 0 means unconstrained; like the
// kernel, the band is widened to |n−m| so the corner path stays feasible.
func naiveDTW(a, b []float64, window int) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return math.Inf(1)
	}
	band := window
	if band >= 0 {
		if d := n - m; d > band {
			band = d
		} else if -d > band {
			band = -d
		}
	}
	inf := math.Inf(1)
	acc := make([][]float64, n)
	for i := range acc {
		acc[i] = make([]float64, m)
		for j := range acc[i] {
			acc[i][j] = inf
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if band >= 0 && (i-j > band || j-i > band) {
				continue
			}
			d := a[i] - b[j]
			cost := d * d
			switch {
			case i == 0 && j == 0:
				acc[i][j] = cost
			case i == 0:
				acc[i][j] = acc[i][j-1] + cost
			case j == 0:
				acc[i][j] = acc[i-1][j] + cost
			default:
				best := acc[i-1][j-1]
				if acc[i-1][j] < best {
					best = acc[i-1][j]
				}
				if acc[i][j-1] < best {
					best = acc[i][j-1]
				}
				acc[i][j] = best + cost
			}
		}
	}
	return math.Sqrt(acc[n-1][m-1])
}

func randSeries(r *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func TestDTWGolden(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{0, 1, 2}, []float64{0, 2}, 1},       // warp 1↔2 alignment
		{[]float64{1, 2, 3}, []float64{1, 2, 3}, 0},    // identical
		{[]float64{0, 0}, []float64{3, 4}, 5},          // no warp helps
		{[]float64{5}, []float64{2}, 3},                // single points
		{[]float64{1, 1, 1, 1}, []float64{1}, 0},       // constant collapse
		{[]float64{0, 1, 1, 2}, []float64{0, 1, 2}, 0}, // duplicate absorbed
	}
	for i, c := range cases {
		if got := DTW(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: DTW = %v, want %v", i, got, c.want)
		}
	}
}

func TestDTWMatchesNaiveReference(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var w Workspace
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(40)
		m := 1 + r.Intn(40)
		a, b := randSeries(r, n), randSeries(r, m)
		want := naiveDTW(a, b, Unconstrained)
		if got := w.DTW(a, b); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d m=%d): DTW = %v, naive = %v", trial, n, m, got, want)
		}
		if got := DTW(a, b); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: package DTW = %v, naive = %v", trial, got, want)
		}
	}
}

func TestDTWBandedMatchesNaiveReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var w Workspace
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(30)
		m := 1 + r.Intn(30)
		window := r.Intn(12)
		a, b := randSeries(r, n), randSeries(r, m)
		want := naiveDTW(a, b, window)
		if got := w.DTWEarlyAbandon(a, b, window, math.Inf(1)); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d m=%d w=%d): banded DTW = %v, naive = %v",
				trial, n, m, window, got, want)
		}
	}
}

func TestDTWEarlyAbandonExactOrInf(t *testing.T) {
	// A finite result must be the exact distance; +Inf must only appear
	// when the true distance genuinely exceeds the cutoff.
	r := rand.New(rand.NewSource(11))
	var w Workspace
	abandoned, kept := 0, 0
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(30)
		m := 2 + r.Intn(30)
		a, b := randSeries(r, n), randSeries(r, m)
		want := naiveDTW(a, b, Unconstrained)
		cutoff := want * (0.25 + 1.5*r.Float64()) // straddle the true value
		got := w.DTWEarlyAbandon(a, b, Unconstrained, cutoff)
		if math.IsInf(got, 1) {
			abandoned++
			if want <= cutoff-1e-9 {
				t.Fatalf("trial %d: abandoned although DTW %v ≤ cutoff %v", trial, want, cutoff)
			}
		} else {
			kept++
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: finite result %v != exact %v", trial, got, want)
			}
		}
	}
	if abandoned == 0 || kept == 0 {
		t.Fatalf("degenerate trial mix: %d abandoned, %d kept", abandoned, kept)
	}
}

func TestDTWEarlyAbandonKeepsResultEqualToCutoff(t *testing.T) {
	// Range searches with radius 0 rely on a result exactly at the cutoff
	// surviving: cutoff 0 must still find an identical subsequence.
	var w Workspace
	a := []float64{0.3, 0.7, 0.1}
	if got := w.DTWEarlyAbandon(a, a, Unconstrained, 0); got != 0 {
		t.Errorf("cutoff-0 self distance = %v, want 0", got)
	}
}

func TestDTWSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		a := randSeries(r, 1+r.Intn(25))
		b := randSeries(r, 1+r.Intn(25))
		if d1, d2 := DTW(a, b), DTW(b, a); math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("DTW not symmetric: %v vs %v", d1, d2)
		}
	}
}

func TestDTWAtMostED(t *testing.T) {
	// The diagonal is a valid warping path, so DTW ≤ ED for equal lengths.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(30)
		a, b := randSeries(r, n), randSeries(r, n)
		if dtw, ed := DTW(a, b), ED(a, b); dtw > ed+1e-9 {
			t.Fatalf("DTW %v > ED %v", dtw, ed)
		}
	}
}

func TestWorkspaceReuseAcrossSizes(t *testing.T) {
	// Growing and shrinking candidates must not leave stale state behind.
	r := rand.New(rand.NewSource(9))
	var w Workspace
	for _, n := range []int{50, 5, 80, 1, 33} {
		a := randSeries(r, n)
		b := randSeries(r, n/2+1)
		want := naiveDTW(a, b, Unconstrained)
		if got := w.DTW(a, b); math.Abs(got-want) > 1e-9 {
			t.Fatalf("size %d: reused workspace %v != naive %v", n, got, want)
		}
	}
}

func TestNormalizedDTW(t *testing.T) {
	if d := NormalizedDTWDivisor(6, 10); d != 20 {
		t.Errorf("divisor(6,10) = %v, want 20", d)
	}
	if d := NormalizedDTWDivisor(10, 6); d != 20 {
		t.Errorf("divisor(10,6) = %v, want 20", d)
	}
	a := []float64{0, 1, 2}
	b := []float64{0, 2}
	want := 1.0 / 6 // DTW = 1, divisor = 2·3
	if got := NormalizedDTW(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("NormalizedDTW = %v, want %v", got, want)
	}
}

func TestDTWEmpty(t *testing.T) {
	if d := DTW(nil, nil); d != 0 {
		t.Errorf("DTW(nil,nil) = %v, want 0", d)
	}
	if d := DTW([]float64{1}, nil); !math.IsInf(d, 1) {
		t.Errorf("DTW(x,nil) = %v, want +Inf", d)
	}
}

func TestDTWPathProperties(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(20)
		m := 1 + r.Intn(20)
		a, b := randSeries(r, n), randSeries(r, m)
		path, d := DTWPath(a, b)
		if len(path) == 0 {
			t.Fatal("empty path for non-empty inputs")
		}
		if path[0] != (PathPoint{0, 0}) {
			t.Fatalf("path starts at %v, want (0,0)", path[0])
		}
		if last := path[len(path)-1]; last != (PathPoint{n - 1, m - 1}) {
			t.Fatalf("path ends at %v, want (%d,%d)", last, n-1, m-1)
		}
		var cost float64
		for i, p := range path {
			diff := a[p.I] - b[p.J]
			cost += diff * diff
			if i == 0 {
				continue
			}
			di, dj := p.I-path[i-1].I, p.J-path[i-1].J
			if di < 0 || dj < 0 || di > 1 || dj > 1 || (di == 0 && dj == 0) {
				t.Fatalf("illegal step %v -> %v", path[i-1], p)
			}
		}
		if math.Abs(math.Sqrt(cost)-d) > 1e-9 {
			t.Fatalf("path cost %v != reported %v", math.Sqrt(cost), d)
		}
		if want := naiveDTW(a, b, Unconstrained); math.Abs(d-want) > 1e-9 {
			t.Fatalf("path distance %v != DTW %v", d, want)
		}
	}
}

func TestDTWPathEmpty(t *testing.T) {
	if path, d := DTWPath(nil, []float64{1}); path != nil || d != 0 {
		t.Errorf("DTWPath with empty input = %v, %v", path, d)
	}
}
