package dist

import "math"

// Unconstrained disables the Sakoe-Chiba band: every warping path over the
// full n×m alignment matrix is admitted (the paper's Def. 3 DTW). Pass a
// non-negative half-width w instead to constrain paths to |i−j| ≤ w.
const Unconstrained = -1

// NormalizedDTWDivisor returns the Def. 6 normalization divisor 2·max(n,m)
// for a length-n query and a length-m candidate. Normalized DTW is
// DTW(x,y) divided by this value — the scale the ST/2 retrieval guarantee
// (Lemma 2) is stated in.
func NormalizedDTWDivisor(n, m int) float64 {
	if m > n {
		n = m
	}
	return 2 * float64(n)
}

// NormalizedDTW is the length-normalized DTW of Def. 6:
// DTW(a,b) / (2·max(len(a),len(b))).
func NormalizedDTW(a, b []float64) float64 {
	return DTW(a, b) / NormalizedDTWDivisor(len(a), len(b))
}

// DTW returns the unconstrained Dynamic Time Warping distance of Def. 3:
// the minimum over warping paths P of √Σ_{(i,j)∈P}(aᵢ−bⱼ)². Sequences may
// have different lengths. For scratch reuse across many calls, use
// Workspace.DTW.
func DTW(a, b []float64) float64 {
	var w Workspace
	return w.DTW(a, b)
}

// Workspace holds reusable scratch for the two-row DTW dynamic program so
// tight query loops allocate only once. The zero value is ready to use.
//
// Ownership rule: a Workspace is mutable scratch with no internal locking —
// it must be owned by exactly one goroutine at a time, and a method call
// must complete before ownership may move. Callers that fan work across
// goroutines must give each worker its own Workspace; the supported pattern
// is parallel.WorkspacePool (a sync.Pool whose Get/Put hands out exclusive
// ownership), which is how query.Processor keeps every query race-free by
// construction. Sharing one live Workspace between goroutines is a data
// race even if calls never overlap logically.
type Workspace struct {
	prev, curr []float64
}

// rows returns the two DP rows, each of length n, growing the backing
// arrays only when a larger candidate arrives.
func (w *Workspace) rows(n int) (prev, curr []float64) {
	if cap(w.prev) < n {
		w.prev = make([]float64, n)
		w.curr = make([]float64, n)
	}
	return w.prev[:n], w.curr[:n]
}

// DTW is the unconstrained DTW distance using the workspace's scratch.
func (w *Workspace) DTW(a, b []float64) float64 {
	return w.DTWEarlyAbandon(a, b, Unconstrained, math.Inf(1))
}

// DTWEarlyAbandon computes the Sakoe-Chiba-banded DTW distance with
// UCR-suite-style early abandoning: the O(n·m) dynamic program runs over
// rows of squared costs, and as soon as every cell of a row — i.e. every
// prefix any warping path could extend — is above cutoff², no path can
// finish below cutoff and +Inf is returned. A finite return value is
// always the exact banded DTW distance, even when it is ≥ cutoff.
//
// window is the band half-width (|i−j| ≤ window); Unconstrained disables
// it. When the sequences' lengths differ, the band is widened to at least
// |len(q)−len(c)| so the corner-to-corner path stays feasible.
//
// The unconstrained case — the one every query path issues — runs a cache-
// blocked kernel: two query rows are fused into one pass over the
// candidate. The first row of each pair lives entirely in registers (its
// cells are consumed by the second row within the same iteration), so per
// DP-cell the kernel does half the row stores and half the carried-row
// loads of the plain two-row recurrence; the row slices are re-sliced to
// the candidate's length so the inner loop is free of bounds checks, and
// there are no band clamps or sentinel writes. The result is bit-identical
// to the straightforward two-row recurrence: each cell is still
// min(prev_j, prev_{j−1}, curr_{j−1}) + d² evaluated in the same
// floating-point order, and the fused pass abandons exactly when a per-row
// pass would (it checks the two row minima in row order; computing the
// second row of an abandoned pair is wasted work, never a changed answer).
func (w *Workspace) DTWEarlyAbandon(q, c []float64, window int, cutoff float64) float64 {
	n, m := len(q), len(c)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return math.Inf(1)
	}
	band := window
	if band >= 0 {
		if d := n - m; d > band || -d > band {
			if d < 0 {
				d = -d
			}
			band = d
		}
	}
	cutoffSq := cutoff * cutoff // +Inf cutoff stays +Inf

	inf := math.Inf(1)
	prev, curr := w.rows(m + 1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0

	if band < 0 || band >= n-1+m-1 {
		// Unconstrained fast path: fused row pairs, no clamps, no
		// sentinels. The pair's first row is never stored — its cells flow
		// through registers (diagA/leftA) straight into the second row's
		// recurrence — and the column-0 boundary lives in registers too
		// (leftA/leftB start at +Inf each pass); curr[0] is pinned to +Inf
		// before each swap so prev[0] stays correct for later rows.
		i := 1
		for ; i+1 <= n; i += 2 {
			qa, qb := q[i-1], q[i]
			aMin, bMin := inf, inf
			diagA := prev[0]
			leftA, leftB := inf, inf
			ps := prev[1 : m+1 : m+1]
			ns := curr[1 : m+1 : m+1]
			for jj, cj := range c {
				pj := ps[jj]
				// Row i: min(prev_j, prev_{j−1}, curr_{j−1}) + d².
				best := pj
				if diagA < best {
					best = diagA
				}
				if leftA < best {
					best = leftA
				}
				d := qa - cj
				accA := best + d*d
				if accA < aMin {
					aMin = accA
				}
				// Row i+1: its prev row is row i — the diagonal value
				// curr_{j−1} is leftA (still pre-update), curr_j is accA.
				bestB := accA
				if leftA < bestB {
					bestB = leftA
				}
				if leftB < bestB {
					bestB = leftB
				}
				d = qb - cj
				accB := bestB + d*d
				ns[jj] = accB
				if accB < bMin {
					bMin = accB
				}
				diagA = pj
				leftA = accA
				leftB = accB
			}
			if aMin > cutoffSq || bMin > cutoffSq {
				return inf
			}
			curr[0] = inf
			prev, curr = curr, prev
		}
		if i == n {
			// Odd trailing row: single-row pass, registers carried.
			qa := q[n-1]
			rowMin := inf
			diag := prev[0]
			left := inf
			ps := prev[1 : m+1 : m+1]
			cs := curr[1 : m+1 : m+1]
			for jj, cj := range c {
				pj := ps[jj]
				best := pj
				if diag < best {
					best = diag
				}
				if left < best {
					best = left
				}
				d := qa - cj
				acc := best + d*d
				cs[jj] = acc
				if acc < rowMin {
					rowMin = acc
				}
				diag = pj
				left = acc
			}
			if rowMin > cutoffSq {
				return inf
			}
			prev, curr = curr, prev
		}
		w.prev, w.curr = prev[:cap(prev)], curr[:cap(curr)]
		return math.Sqrt(prev[m])
	}

	for i := 1; i <= n; i++ {
		jLo, jHi := 1, m
		if lo := i - band; lo > jLo {
			jLo = lo
		}
		if hi := i + band; hi < jHi {
			jHi = hi
		}
		// Cells just outside the band must read as unreachable for the
		// next row (which may look one column left or right).
		curr[jLo-1] = inf
		if jHi < m {
			curr[jHi+1] = inf
		}
		rowMin := inf
		qi := q[i-1]
		diag := prev[jLo-1]
		left := inf
		for j := jLo; j <= jHi; j++ {
			pj := prev[j]
			best := pj       // q advances alone
			if diag < best { // both advance
				best = diag
			}
			if left < best { // c advances alone
				best = left
			}
			d := qi - c[j-1]
			acc := best + d*d
			curr[j] = acc
			if acc < rowMin {
				rowMin = acc
			}
			diag = pj
			left = acc
		}
		if rowMin > cutoffSq {
			return inf
		}
		prev, curr = curr, prev
	}
	w.prev, w.curr = prev[:cap(prev)], curr[:cap(curr)]
	return math.Sqrt(prev[m])
}

// PathPoint is one cell of a warping path: the first sequence's index I
// aligned with the second sequence's index J.
type PathPoint struct {
	I, J int
}

// DTWPath returns an optimal unconstrained warping path between a and b —
// from (0,0) to (len(a)−1, len(b)−1), each step advancing I, J, or both —
// together with the DTW distance along it. Ties prefer the diagonal step,
// keeping paths short. Used by DBA to warp member points onto the center.
func DTWPath(a, b []float64) ([]PathPoint, float64) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return nil, 0
	}
	inf := math.Inf(1)
	// Full cumulative matrix with a sentinel row/column of +Inf.
	acc := make([]float64, (n+1)*(m+1))
	for j := 0; j <= m; j++ {
		acc[j] = inf
	}
	for i := 1; i <= n; i++ {
		acc[i*(m+1)] = inf
	}
	acc[0] = 0
	for i := 1; i <= n; i++ {
		row := acc[i*(m+1):]
		up := acc[(i-1)*(m+1):]
		ai := a[i-1]
		for j := 1; j <= m; j++ {
			best := up[j-1] // diagonal
			if up[j] < best {
				best = up[j]
			}
			if row[j-1] < best {
				best = row[j-1]
			}
			d := ai - b[j-1]
			row[j] = best + d*d
		}
	}
	// Backtrack, preferring the diagonal on ties.
	path := make([]PathPoint, 0, n+m-1)
	i, j := n, m
	for i > 1 || j > 1 {
		path = append(path, PathPoint{I: i - 1, J: j - 1})
		diag, upv, left := inf, inf, inf
		if i > 1 && j > 1 {
			diag = acc[(i-1)*(m+1)+j-1]
		}
		if i > 1 {
			upv = acc[(i-1)*(m+1)+j]
		}
		if j > 1 {
			left = acc[i*(m+1)+j-1]
		}
		switch {
		case diag <= upv && diag <= left:
			i, j = i-1, j-1
		case upv <= left:
			i--
		default:
			j--
		}
	}
	path = append(path, PathPoint{I: 0, J: 0})
	// Reverse into forward order.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return path, math.Sqrt(acc[n*(m+1)+m])
}
