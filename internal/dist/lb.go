package dist

import (
	"math"
	"sort"
)

// Envelope returns the warping envelope of x for band half-width r:
// upper[i] = max(x[i−r…i+r]), lower[i] = min(x[i−r…i+r]) with the window
// clamped to the sequence (Keogh & Ratanamahatana). A radius ≥ len(x)−1
// yields the full-radius envelope that is admissible for unconstrained
// DTW. The upper/lower arguments are reused as output buffers when their
// capacity suffices, so hot loops can recompute envelopes without
// allocating; pass nil to allocate fresh slices. Runs in O(n) via
// monotonic deques.
func Envelope(x []float64, r int, upper, lower []float64) ([]float64, []float64) {
	n := len(x)
	upper = ensureLen(upper, n)
	lower = ensureLen(lower, n)
	if n == 0 {
		return upper, lower
	}
	if r < 0 {
		r = 0
	}
	if r > n-1 {
		r = n - 1
	}
	slidingExtremes(x, r, upper, func(a, b float64) bool { return a >= b })
	slidingExtremes(x, r, lower, func(a, b float64) bool { return a <= b })
	return upper, lower
}

// slidingExtremes fills out[i] with the extreme of x[i−r…i+r] under the
// dominance order dom (dom(a,b) true when a may evict b from the deque).
func slidingExtremes(x []float64, r int, out []float64, dom func(a, b float64) bool) {
	n := len(x)
	deque := make([]int, 0, n)
	next := 0
	for i := 0; i < n; i++ {
		hi := i + r
		if hi > n-1 {
			hi = n - 1
		}
		for ; next <= hi; next++ {
			for len(deque) > 0 && dom(x[next], x[deque[len(deque)-1]]) {
				deque = deque[:len(deque)-1]
			}
			deque = append(deque, next)
		}
		for deque[0] < i-r {
			deque = deque[1:]
		}
		out[i] = x[deque[0]]
	}
}

func ensureLen(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// QueryOrder returns the indices of q sorted by decreasing absolute value —
// the UCR-suite visit order for early-abandoning lower bounds: the largest
// |q[i]| are the likeliest to fall outside an envelope, so visiting them
// first accumulates the bound (and triggers the abandon) soonest.
func QueryOrder(q []float64) []int {
	order := make([]int, len(q))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return math.Abs(q[order[a]]) > math.Abs(q[order[b]])
	})
	return order
}

// LBKim is the O(1) first/last lower bound (the UCR suite's LB_KimFL):
// √((q₀−c₀)² + (qₙ−cₘ)²). Every warping path aligns the two heads and the
// two tails, so the bound is admissible for DTW at any band — including
// between sequences of different lengths, which is why the query processor
// applies it before the same-length-only LB_Keogh.
func LBKim(q, c []float64) float64 {
	n, m := len(q), len(c)
	if n == 0 || m == 0 {
		return 0
	}
	head := q[0] - c[0]
	if n == 1 && m == 1 {
		// The single-cell path pays (q₀−c₀)² exactly once.
		return math.Abs(head)
	}
	tail := q[n-1] - c[m-1]
	return math.Sqrt(head*head + tail*tail)
}

// LBKeogh is the Keogh lower bound of DTW between q and a candidate whose
// envelope is (upper, lower): the root of the summed squared excursions of
// q outside the envelope. It is admissible for DTW at band w whenever the
// envelope radius is ≥ w (full radius ⇒ unconstrained DTW) and requires
// len(q) == len(upper) == len(lower). The running sum abandons past
// cutoff², returning +Inf; a finite result is the exact bound.
func LBKeogh(q, upper, lower []float64, cutoff float64) float64 {
	checkSameLength(len(q), len(upper))
	checkSameLength(len(q), len(lower))
	cutoffSq := cutoff * cutoff
	var sum float64
	for i, v := range q {
		if v > upper[i] {
			d := v - upper[i]
			sum += d * d
		} else if v < lower[i] {
			d := lower[i] - v
			sum += d * d
		}
		if sum > cutoffSq {
			return math.Inf(1)
		}
	}
	return math.Sqrt(sum)
}

// LBKeoghOrdered is LBKeogh visiting indices in the given order (use
// QueryOrder(q)) so the largest excursions accumulate first and hopeless
// candidates abandon after a handful of terms.
func LBKeoghOrdered(q, upper, lower []float64, order []int, cutoff float64) float64 {
	checkSameLength(len(q), len(upper))
	checkSameLength(len(q), len(lower))
	cutoffSq := cutoff * cutoff
	var sum float64
	for _, i := range order {
		v := q[i]
		if v > upper[i] {
			d := v - upper[i]
			sum += d * d
		} else if v < lower[i] {
			d := lower[i] - v
			sum += d * d
		}
		if sum > cutoffSq {
			return math.Inf(1)
		}
	}
	return math.Sqrt(sum)
}
