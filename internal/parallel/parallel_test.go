package parallel

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct{ in, want int }{
		{0, procs},
		{-1, procs},
		{-1 << 40, procs},
		{1, 1},
		{7, 7},
		{procs + 1000, procs + 1000}, // > NumCPU is allowed, only oversubscribes
	}
	for _, c := range cases {
		if got := Resolve(c.in); got != c.want {
			t.Errorf("Resolve(%d) = %d, want %d", c.in, got, c.want)
		}
		if Resolve(c.in) < 1 {
			t.Errorf("Resolve(%d) < 1", c.in)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 17, 1000} {
			counts := make([]atomic.Int32, n)
			ForEach(workers, n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForEachNegativeN(t *testing.T) {
	ran := false
	ForEach(4, -3, func(int) { ran = true })
	if ran {
		t.Error("fn ran for negative n")
	}
}

func TestForEachInlineWhenSingleWorker(t *testing.T) {
	// With workers=1 the callback must run on the calling goroutine so the
	// sequential path stays allocation- and synchronization-free. Detect via
	// a goroutine-local side effect: mutate a plain int without a race.
	sum := 0
	ForEach(1, 100, func(i int) { sum += i })
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestMinBoundZeroValueIsInf(t *testing.T) {
	var b MinBound
	if !math.IsInf(b.Load(), 1) {
		t.Fatalf("zero MinBound loads %v, want +Inf", b.Load())
	}
	if !b.Relax(3.5) {
		t.Fatal("Relax from +Inf did not tighten")
	}
	if b.Load() != 3.5 {
		t.Fatalf("bound = %v, want 3.5", b.Load())
	}
}

func TestMinBoundMonotone(t *testing.T) {
	b := NewMinBound(math.Inf(1))
	if b.Relax(5) != true || b.Relax(7) != false || b.Relax(5) != false {
		t.Fatal("Relax tightening logic wrong")
	}
	if b.Load() != 5 {
		t.Fatalf("bound = %v, want 5", b.Load())
	}
	if !b.Relax(2) || b.Load() != 2 {
		t.Fatalf("bound = %v, want 2", b.Load())
	}
}

func TestMinBoundConvergesUnderContention(t *testing.T) {
	b := NewMinBound(math.Inf(1))
	r := rand.New(rand.NewSource(1))
	vals := make([]float64, 4096)
	min := math.Inf(1)
	for i := range vals {
		vals[i] = r.Float64() * 1000
		if vals[i] < min {
			min = vals[i]
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(vals); i += 8 {
				b.Relax(vals[i])
			}
		}(w)
	}
	wg.Wait()
	if b.Load() != min {
		t.Fatalf("bound = %v, want %v", b.Load(), min)
	}
}

func TestWorkspacePoolRoundTrip(t *testing.T) {
	var p WorkspacePool
	w1 := p.Get()
	if w1 == nil {
		t.Fatal("nil workspace")
	}
	// Exercise it so the backing rows are allocated, then recycle.
	if d := w1.DTW([]float64{1, 2, 3}, []float64{1, 2, 3}); d != 0 {
		t.Fatalf("DTW of identical sequences = %v", d)
	}
	p.Put(w1)
	p.Put(nil) // must not panic
	w2 := p.Get()
	if d := w2.DTW([]float64{0, 0}, []float64{1, 1}); math.Abs(d-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("recycled workspace DTW = %v, want √2", d)
	}
	p.Put(w2)
}

func TestWorkspacePoolConcurrent(t *testing.T) {
	var p WorkspacePool
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a := []float64{float64(g), 1, 2, 3}
			for i := 0; i < 200; i++ {
				w := p.Get()
				if d := w.DTW(a, a); d != 0 {
					t.Errorf("self-DTW = %v", d)
				}
				p.Put(w)
			}
		}(g)
	}
	wg.Wait()
}
