// Package parallel holds the small concurrency substrate shared by the
// offline construction (grouping) and the online query processor: worker
// resolution, a bounded index-fanning worker pool, an atomic shared
// best-so-far bound for cross-worker early abandoning, and a sync.Pool of
// DTW workspaces.
//
// Everything here is built so that callers can make parallel execution
// *result-invariant*: ForEach assigns disjoint indices exactly once,
// MinBound only ever tightens monotonically toward the true minimum, and
// workspaces are handed out with single-goroutine ownership. The packages
// on top (grouping, query) arrange their algorithms so that the answer is
// bit-identical for any worker count; this package only supplies the
// mechanics.
package parallel

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"onex/internal/dist"
)

// Resolve normalizes a parallelism knob: values ≤ 0 (the "default" and any
// degenerate negative input) resolve to runtime.GOMAXPROCS(0); positive
// values — including values above NumCPU, which merely oversubscribe — are
// returned as given. The result is always ≥ 1.
func Resolve(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n), fanning the indices across up
// to workers goroutines (workers is passed through Resolve, then capped at
// n). Each index is executed exactly once; the call returns when all have
// finished. With one worker (or n ≤ 1) fn runs inline on the caller's
// goroutine, so the sequential path pays no synchronization.
//
// Indices are handed out by an atomic counter (dynamic load balancing), so
// the *assignment* of index to goroutine is scheduling-dependent — callers
// that need deterministic results must make fn's effect on shared state
// commutative (e.g. write only to slot i of a results slice).
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// MinBound is an atomic, monotonically tightening float64 minimum — the
// shared best-so-far bound that lets early-abandoning prune across workers.
// Construct with NewMinBound; the zero value reads as +Inf.
type MinBound struct {
	// bits stores math.Float64bits(value)+1, so the zero value decodes to
	// +Inf without a constructor having run.
	bits atomic.Uint64
}

// NewMinBound returns a bound starting at v.
func NewMinBound(v float64) *MinBound {
	b := &MinBound{}
	b.bits.Store(math.Float64bits(v) + 1)
	return b
}

// Load returns the current bound.
func (b *MinBound) Load() float64 {
	raw := b.bits.Load()
	if raw == 0 {
		return math.Inf(1)
	}
	return math.Float64frombits(raw - 1)
}

// Relax lowers the bound to v if v is smaller, returning whether it
// tightened. Concurrent Relax calls converge to the minimum of all values
// offered; the bound never loosens.
func (b *MinBound) Relax(v float64) bool {
	for {
		raw := b.bits.Load()
		if raw != 0 && math.Float64frombits(raw-1) <= v {
			return false
		}
		if b.bits.CompareAndSwap(raw, math.Float64bits(v)+1) {
			return true
		}
	}
}

// WorkspacePool is a sync.Pool of dist.Workspace values. A dist.Workspace
// is single-goroutine scratch (see its ownership rule); the pool amortizes
// the row allocations across queries and across the workers of one query
// without ever sharing a live workspace between two goroutines: Get hands
// out exclusive ownership, Put returns it.
//
// The zero value is ready to use and safe for concurrent use.
type WorkspacePool struct {
	pool sync.Pool
}

// Get returns a workspace owned exclusively by the caller until Put.
func (p *WorkspacePool) Get() *dist.Workspace {
	if w, ok := p.pool.Get().(*dist.Workspace); ok {
		return w
	}
	return new(dist.Workspace)
}

// Put returns a workspace to the pool. The caller must not use w after.
func (p *WorkspacePool) Put(w *dist.Workspace) {
	if w != nil {
		p.pool.Put(w)
	}
}
