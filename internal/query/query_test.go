package query

import (
	"math"
	"testing"

	"onex/internal/dataset"
	"onex/internal/dist"
	"onex/internal/grouping"
	"onex/internal/rspace"
	"onex/internal/ts"
)

func buildProcessor(t *testing.T, d *ts.Dataset, st float64, lengths []int, opts Options) *Processor {
	t.Helper()
	gr, err := grouping.Build(d, grouping.Config{ST: st, Lengths: lengths, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rspace.New(d, gr, rspace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func italyProcessor(t *testing.T, lengths []int) *Processor {
	t.Helper()
	d := dataset.ItalyPower.Scaled(0.5).Generate(8)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	return buildProcessor(t, d, 0.2, lengths, Options{})
}

// bruteBest scans every subsequence of the given length for the true best
// normalized DTW — the accuracy ground truth.
func bruteBest(d *ts.Dataset, q []float64, length int) (best float64) {
	best = math.Inf(1)
	var w dist.Workspace
	div := dist.NormalizedDTWDivisor(len(q), length)
	for _, s := range d.Series {
		for j := 0; j+length <= s.Len(); j++ {
			raw := w.DTW(q, s.Values[j:j+length])
			if nd := raw / div; nd < best {
				best = nd
			}
		}
	}
	return best
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil base: want error")
	}
	d := ts.NewDataset("t", [][]float64{{1, 2, 3, 4}})
	gr, _ := grouping.Build(d, grouping.Config{ST: 0.5, Lengths: []int{2}, Seed: 1})
	b, _ := rspace.New(d, gr, rspace.Options{})
	if _, err := New(b, Options{CandidateLimit: -1}); err == nil {
		t.Error("negative candidate limit: want error")
	}
}

func TestBestMatchValidatesQuery(t *testing.T) {
	p := italyProcessor(t, []int{6})
	if _, err := p.BestMatch(nil, MatchExact); err == nil {
		t.Error("empty query: want error")
	}
	if _, err := p.BestMatch([]float64{1, math.NaN()}, MatchExact); err == nil {
		t.Error("NaN query: want error")
	}
	if _, err := p.BestMatch([]float64{1, 2, 3}, MatchMode(42)); err == nil {
		t.Error("bad mode: want error")
	}
}

func TestBestMatchExactUnindexedLength(t *testing.T) {
	p := italyProcessor(t, []int{6})
	if _, err := p.BestMatch(make([]float64, 7), MatchExact); err == nil {
		t.Error("unindexed length: want error")
	}
}

func TestBestMatchExactFindsInDatasetQuery(t *testing.T) {
	p := italyProcessor(t, []int{8})
	d := p.Base().Dataset
	// Promote an existing subsequence to query (the Sec. 6.2.1 "in the
	// dataset" methodology): the true best distance is 0.
	q := append([]float64(nil), d.Series[2].Values[5:13]...)
	m, err := p.BestMatch(q, MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Found() {
		t.Fatal("no match found")
	}
	if m.Length != 8 {
		t.Errorf("match length %d, want 8", m.Length)
	}
	// ONEX is approximate, but an identical subsequence lives in some
	// group; the returned match must be very close to perfect.
	exact := bruteBest(d, q, 8)
	if exact > 1e-9 {
		t.Fatalf("ground truth should be 0, got %v", exact)
	}
	if m.Dist > 0.05 {
		t.Errorf("match dist %v too far from exact 0", m.Dist)
	}
	// The reported location must reproduce the reported distance.
	v := d.Series[m.SeriesID].Values[m.Start : m.Start+m.Length]
	recomputed := dist.NormalizedDTW(q, v)
	if math.Abs(recomputed-m.Dist) > 1e-9 {
		t.Errorf("reported dist %v != recomputed %v", m.Dist, recomputed)
	}
}

func TestBestMatchExactCloseToBruteForce(t *testing.T) {
	p := italyProcessor(t, []int{6, 10})
	d := p.Base().Dataset
	// Out-of-dataset queries: perturbed subsequences.
	for qi, src := range [][2]int{{0, 3}, {3, 7}, {7, 0}} {
		q := append([]float64(nil), d.Series[src[0]].Values[src[1]:src[1]+10]...)
		for i := range q {
			q[i] += 0.03 * math.Sin(float64(i+qi))
		}
		m, err := p.BestMatch(q, MatchExact)
		if err != nil {
			t.Fatal(err)
		}
		exact := bruteBest(d, q, 10)
		if m.Dist < exact-1e-9 {
			t.Fatalf("query %d: ONEX dist %v below exact %v (impossible)", qi, m.Dist, exact)
		}
		if m.Dist > exact+0.05 {
			t.Errorf("query %d: ONEX dist %v much worse than exact %v", qi, m.Dist, exact)
		}
	}
}

func TestBestMatchAny(t *testing.T) {
	p := italyProcessor(t, []int{5, 8, 11})
	d := p.Base().Dataset
	q := append([]float64(nil), d.Series[1].Values[2:10]...) // length 8
	m, tr, err := p.BestMatchTraced(q, MatchAny)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Found() {
		t.Fatal("no match")
	}
	if tr.LengthsVisited == 0 || tr.RepsExamined == 0 || tr.DTWComputed == 0 {
		t.Errorf("trace not populated: %+v", tr)
	}
	// An in-dataset query of an indexed length should stop early
	// (its own length has a rep within ST/2 almost surely).
	if m.Dist > 0.05 {
		t.Errorf("any-match dist %v unexpectedly large", m.Dist)
	}
}

func TestBestMatchAnyQueryLengthNotIndexed(t *testing.T) {
	p := italyProcessor(t, []int{5, 11})
	q := make([]float64, 8) // length 8 not indexed; search falls to 5 and 11
	for i := range q {
		q[i] = 0.5
	}
	m, err := p.BestMatch(q, MatchAny)
	if err != nil {
		t.Fatal(err)
	}
	if m.Length != 5 && m.Length != 11 {
		t.Errorf("match length %d, want 5 or 11", m.Length)
	}
}

func TestDisableEarlyStopVisitsAllLengths(t *testing.T) {
	d := dataset.ItalyPower.Scaled(0.3).Generate(8)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	lengths := []int{5, 8, 11}
	pStop := buildProcessor(t, d, 0.2, lengths, Options{})
	pAll := buildProcessor(t, d, 0.2, lengths, Options{DisableEarlyStop: true})
	q := append([]float64(nil), d.Series[0].Values[0:8]...)
	_, trStop, err := pStop.BestMatchTraced(q, MatchAny)
	if err != nil {
		t.Fatal(err)
	}
	_, trAll, err := pAll.BestMatchTraced(q, MatchAny)
	if err != nil {
		t.Fatal(err)
	}
	if trAll.LengthsVisited != len(lengths) {
		t.Errorf("exhaustive visited %d lengths, want %d", trAll.LengthsVisited, len(lengths))
	}
	if trStop.LengthsVisited > trAll.LengthsVisited {
		t.Errorf("early stop visited more lengths (%d) than exhaustive (%d)",
			trStop.LengthsVisited, trAll.LengthsVisited)
	}
}

func TestLengthOrder(t *testing.T) {
	p := italyProcessor(t, []int{4, 6, 8, 10, 12})
	got := p.lengthOrder(8)
	want := []int{8, 6, 4, 10, 12}
	if len(got) != len(want) {
		t.Fatalf("lengthOrder(8) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lengthOrder(8) = %v, want %v", got, want)
		}
	}
	// Unindexed query length: own length omitted.
	got = p.lengthOrder(7)
	want = []int{6, 4, 8, 10, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lengthOrder(7) = %v, want %v", got, want)
		}
	}
}

func TestCandidateLimit(t *testing.T) {
	d := dataset.ItalyPower.Scaled(0.5).Generate(8)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	pAll := buildProcessor(t, d, 0.2, []int{8}, Options{})
	pOne := buildProcessor(t, d, 0.2, []int{8}, Options{CandidateLimit: 1})
	q := append([]float64(nil), d.Series[4].Values[3:11]...)
	mAll, trAll, err := pAll.BestMatchTraced(q, MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	mOne, trOne, err := pOne.BestMatchTraced(q, MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	if trOne.MembersTested != 1 {
		t.Errorf("limit 1 tested %d members", trOne.MembersTested)
	}
	if trAll.MembersTested < trOne.MembersTested {
		t.Errorf("unlimited tested fewer members (%d) than limited (%d)",
			trAll.MembersTested, trOne.MembersTested)
	}
	if mAll.Dist > mOne.Dist+1e-12 {
		t.Errorf("testing more members worsened the match: %v vs %v", mAll.Dist, mOne.Dist)
	}
}

func TestLowerBoundAblation(t *testing.T) {
	// Disabling the LB cascade must not change the answer, only the work.
	d := dataset.ECG.Scaled(0.1).Generate(2)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	pLB := buildProcessor(t, d, 0.2, []int{24}, Options{})
	pNo := buildProcessor(t, d, 0.2, []int{24}, Options{DisableLowerBounds: true})
	q := append([]float64(nil), d.Series[1].Values[10:34]...)
	mLB, trLB, err := pLB.BestMatchTraced(q, MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	mNo, trNo, err := pNo.BestMatchTraced(q, MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mLB.Dist-mNo.Dist) > 1e-9 {
		t.Errorf("LB cascade changed the answer: %v vs %v", mLB.Dist, mNo.Dist)
	}
	if trNo.PrunedByKim != 0 || trNo.PrunedByKeogh != 0 {
		t.Errorf("disabled cascade still pruned: %+v", trNo)
	}
	if trLB.PrunedByKim+trLB.PrunedByKeogh == 0 {
		t.Log("note: cascade pruned nothing on this workload (allowed, but unusual)")
	}
}

func TestTraceConsistency(t *testing.T) {
	p := italyProcessor(t, []int{8})
	q := append([]float64(nil), p.Base().Dataset.Series[0].Values[0:8]...)
	_, tr, err := p.BestMatchTraced(q, MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	if tr.PrunedByKim+tr.PrunedByKeogh > tr.RepsExamined {
		t.Errorf("pruned more reps than examined: %+v", tr)
	}
	if tr.MembersTested == 0 {
		t.Errorf("no members tested: %+v", tr)
	}
}
