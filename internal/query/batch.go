package query

import "onex/internal/parallel"

// BatchResult pairs one batch query with its outcome: exactly one of Match
// (with Err == nil) or Err is meaningful.
type BatchResult struct {
	Match Match
	Trace Trace
	Err   error
}

// BestMatchBatch answers many similarity queries in one call, fanning the
// queries across the processor's worker pool. The worker budget is split
// between the two parallelism axes: with at least p.workers queries each
// query runs the standard BestMatch pipeline on a single worker
// (cross-query parallelism has the least synchronization), while smaller
// batches give each query the leftover budget as intra-query fan-out so a
// 1-query batch is exactly as fast as a single BestMatch call. The split is
// answer-invariant — every parallelism assignment returns identical
// results, so it is purely a scheduling decision.
//
// Results are positional: out[i] answers qs[i]. Queries are validated
// independently — a ragged, empty or non-finite query yields a per-query
// Err without affecting its neighbours, and a nil or empty batch returns an
// empty slice. BestMatchBatch never panics on malformed input and is safe
// for concurrent use.
func (p *Processor) BestMatchBatch(qs [][]float64, mode MatchMode) []BatchResult {
	out := make([]BatchResult, len(qs))
	if len(qs) == 0 {
		return out
	}
	exec := p.sequential()
	if inner := p.workers / len(qs); inner > 1 {
		cp := *p
		cp.workers = inner
		exec = &cp
	}
	parallel.ForEach(p.workers, len(qs), func(i int) {
		m, tr, err := exec.BestMatchTraced(qs[i], mode)
		out[i] = BatchResult{Match: m, Trace: tr, Err: err}
	})
	return out
}
