package query

import (
	"context"

	"onex/internal/parallel"
)

// BatchResult pairs one batch query with its outcome: exactly one of Match
// (with Err == nil) or Err is meaningful.
type BatchResult struct {
	Match Match
	Trace Trace
	Err   error
}

// KNNQuery is one item of a k-NN batch. K ≤ 1 asks for the single best
// match (identical answer to BestMatch).
type KNNQuery struct {
	Query []float64
	Mode  MatchMode
	K     int
}

// KNNBatchResult is one positional k-NN batch outcome.
type KNNBatchResult struct {
	Matches []Match
	Err     error
}

// RangeQuery is one item of a range batch; Exact selects
// RangeSearchExact semantics.
type RangeQuery struct {
	Query  []float64
	Length int
	Radius float64
	Exact  bool
}

// RangeBatchResult is one positional range batch outcome.
type RangeBatchResult struct {
	Results []RangeResult
	Err     error
}

// SeasonalQuery is one item of a seasonal batch. SeriesID < 0 asks the
// data-driven form (SeasonalAll); otherwise the user-driven form over that
// series.
type SeasonalQuery struct {
	SeriesID int
	Length   int
}

// SeasonalBatchResult is one positional seasonal batch outcome.
type SeasonalBatchResult struct {
	Groups []SeasonalGroup
	Err    error
}

// runBatch is the one batch scaffold every query family shares, at both the
// monolithic and scattered layers. The worker budget splits between the two
// parallelism axes: with at least budget queries each item runs its standard
// single-query pipeline on one worker (cross-query parallelism has the least
// synchronization), while smaller batches hand each item the leftover budget
// as intra-query fan-out — so a 1-item batch is exactly as fast as the
// single call. The split is answer-invariant: every per-item pipeline
// returns identical results at every worker count, so it is purely a
// scheduling decision. Results are positional — out[i] answers qs[i] — with
// per-item errors, and a nil or empty batch returns an empty slice.
func runBatch[Q, R any](budget int, qs []Q, run func(inner int, q Q) R) []R {
	out := make([]R, len(qs))
	if len(qs) == 0 {
		return out
	}
	inner := 1
	if v := budget / len(qs); v > 1 {
		inner = v
	}
	parallel.ForEach(budget, len(qs), func(i int) {
		out[i] = run(inner, qs[i])
	})
	return out
}

// innerExec returns the processor view answering one batch item with the
// given intra-query worker budget.
func (p *Processor) innerExec(inner int) *Processor {
	if inner <= 1 {
		return p.sequential()
	}
	if inner == p.workers {
		return p
	}
	cp := *p
	cp.workers = inner
	return &cp
}

// BestMatchBatch answers many Q1 queries in one call, fanning them across
// the processor's worker pool through the shared batch scaffold (see
// runBatch for the worker split and the positional-errors contract).
// Queries are validated independently — a ragged, empty or non-finite query
// yields a per-query Err without affecting its neighbours. BestMatchBatch
// never panics on malformed input and is safe for concurrent use.
func (p *Processor) BestMatchBatch(qs [][]float64, mode MatchMode) []BatchResult {
	return runBatch(p.workers, qs, func(inner int, q []float64) BatchResult {
		m, tr, err := p.innerExec(inner).BestMatchTraced(q, mode)
		return BatchResult{Match: m, Trace: tr, Err: err}
	})
}

// BestKMatchesBatch answers many k-NN queries positionally (runBatch
// contract); each item equals the corresponding BestKMatches call.
func (p *Processor) BestKMatchesBatch(qs []KNNQuery) []KNNBatchResult {
	return runBatch(p.workers, qs, func(inner int, q KNNQuery) KNNBatchResult {
		k := q.K
		if k < 1 {
			k = 1
		}
		ms, err := p.innerExec(inner).BestKMatches(q.Query, q.Mode, k)
		return KNNBatchResult{Matches: ms, Err: err}
	})
}

// RangeSearchBatch answers many range queries positionally (runBatch
// contract); each item equals the corresponding RangeSearch or
// RangeSearchExact call.
func (p *Processor) RangeSearchBatch(qs []RangeQuery) []RangeBatchResult {
	return runBatch(p.workers, qs, func(inner int, q RangeQuery) RangeBatchResult {
		exec := p.innerExec(inner)
		var (
			rs  []RangeResult
			err error
		)
		if q.Exact {
			rs, err = exec.RangeSearchExact(q.Query, q.Length, q.Radius)
		} else {
			rs, err = exec.RangeSearch(q.Query, q.Length, q.Radius)
		}
		return RangeBatchResult{Results: rs, Err: err}
	})
}

// SeasonalBatch answers many seasonal queries positionally (runBatch
// contract); SeriesID < 0 selects SeasonalAll.
func (p *Processor) SeasonalBatch(qs []SeasonalQuery) []SeasonalBatchResult {
	return runBatch(p.workers, qs, func(inner int, q SeasonalQuery) SeasonalBatchResult {
		exec := p.innerExec(inner)
		var (
			gs  []SeasonalGroup
			err error
		)
		if q.SeriesID < 0 {
			gs, err = exec.SeasonalAll(q.Length)
		} else {
			gs, err = exec.SeasonalSample(q.SeriesID, q.Length)
		}
		return SeasonalBatchResult{Groups: gs, Err: err}
	})
}

// BestMatchBatch answers many Q1 queries across the shards, mirroring
// Processor.BestMatchBatch through the shared runBatch scaffold. ctx stops
// the remaining per-query fan-outs when canceled (items already answered
// keep their results; canceled items carry ctx's error).
func (s *Scatter) BestMatchBatch(ctx context.Context, qs [][]float64, mode MatchMode) []BatchResult {
	return runBatch(s.global.workers, qs, func(inner int, q []float64) BatchResult {
		m, err := s.withWorkers(inner).BestMatch(ctx, q, mode)
		return BatchResult{Match: m, Err: err}
	})
}

// BestKMatchesBatch answers many k-NN queries across the shards,
// positionally (runBatch contract).
func (s *Scatter) BestKMatchesBatch(ctx context.Context, qs []KNNQuery) []KNNBatchResult {
	return runBatch(s.global.workers, qs, func(inner int, q KNNQuery) KNNBatchResult {
		k := q.K
		if k < 1 {
			k = 1
		}
		ms, err := s.withWorkers(inner).BestKMatches(ctx, q.Query, q.Mode, k)
		return KNNBatchResult{Matches: ms, Err: err}
	})
}

// RangeSearchBatch answers many range queries across the shards,
// positionally (runBatch contract).
func (s *Scatter) RangeSearchBatch(ctx context.Context, qs []RangeQuery) []RangeBatchResult {
	return runBatch(s.global.workers, qs, func(inner int, q RangeQuery) RangeBatchResult {
		exec := s.withWorkers(inner)
		var (
			rs  []RangeResult
			err error
		)
		if q.Exact {
			rs, err = exec.RangeSearchExact(ctx, q.Query, q.Length, q.Radius)
		} else {
			rs, err = exec.RangeSearch(ctx, q.Query, q.Length, q.Radius)
		}
		return RangeBatchResult{Results: rs, Err: err}
	})
}

// SeasonalBatch answers many seasonal queries positionally; seasonal
// answers read the global grouping, so this equals the monolithic form.
func (s *Scatter) SeasonalBatch(qs []SeasonalQuery) []SeasonalBatchResult {
	return s.global.SeasonalBatch(qs)
}
