package query

import "onex/internal/obs"

// This file is the only bridge between the query engine and the obs span
// recorder. Tracing is strictly observational: every Observed entry point
// accepts a *obs.Trace that may be nil, and a nil recorder must add zero
// allocations to the hot path (BenchmarkBestMatchObservedNilAllocs). All
// span attributes are deltas between two Trace snapshots, so a span's work
// attrs and the trace-level totals recorded by observe() sum to exactly
// the Trace folded into the lifetime Counters — the invariant that makes
// "explain" output reconcile with /v1/stats deltas.

// add accumulates o into t (merging per-worker or per-group traces).
func (t *Trace) add(o Trace) {
	t.RepsExamined += o.RepsExamined
	t.PrunedByKim += o.PrunedByKim
	t.PrunedByKeogh += o.PrunedByKeogh
	t.DTWComputed += o.DTWComputed
	t.MembersTested += o.MembersTested
	t.LengthsVisited += o.LengthsVisited
}

// spanWork annotates sc with the work performed between two Trace
// snapshots, omitting zero deltas to keep explain output readable.
func spanWork(sc obs.SpanScope, pre, post Trace) obs.SpanScope {
	if d := post.RepsExamined - pre.RepsExamined; d > 0 {
		sc = sc.Attr("repsExamined", int64(d))
	}
	if d := post.PrunedByKim - pre.PrunedByKim; d > 0 {
		sc = sc.Attr("prunedByKim", int64(d))
	}
	if d := post.PrunedByKeogh - pre.PrunedByKeogh; d > 0 {
		sc = sc.Attr("prunedByKeogh", int64(d))
	}
	if d := post.DTWComputed - pre.DTWComputed; d > 0 {
		sc = sc.Attr("dtwComputed", int64(d))
	}
	if d := post.MembersTested - pre.MembersTested; d > 0 {
		sc = sc.Attr("membersTested", int64(d))
	}
	return sc
}

// WorkAttrs returns tr's non-zero cascade counters as span attributes, in
// the same key order spanWork emits. Shard workers use it to annotate the
// span payloads they return over the wire, so a folded worker span carries
// exactly the counters its response Trace contributes to the request's
// "work" roll-up (the delta-agreement invariant extends across processes).
func WorkAttrs(tr Trace) []obs.Attr {
	attrs := make([]obs.Attr, 0, 5)
	if tr.RepsExamined > 0 {
		attrs = append(attrs, obs.Attr{Key: "repsExamined", Value: int64(tr.RepsExamined)})
	}
	if tr.PrunedByKim > 0 {
		attrs = append(attrs, obs.Attr{Key: "prunedByKim", Value: int64(tr.PrunedByKim)})
	}
	if tr.PrunedByKeogh > 0 {
		attrs = append(attrs, obs.Attr{Key: "prunedByKeogh", Value: int64(tr.PrunedByKeogh)})
	}
	if tr.DTWComputed > 0 {
		attrs = append(attrs, obs.Attr{Key: "dtwComputed", Value: int64(tr.DTWComputed)})
	}
	if tr.MembersTested > 0 {
		attrs = append(attrs, obs.Attr{Key: "membersTested", Value: int64(tr.MembersTested)})
	}
	return attrs
}

// observe folds a finished query's Trace into the recorder's trace-level
// work totals — the same Trace the caller folds into Counters.
func observe(rec *obs.Trace, tr Trace) {
	if rec == nil {
		return
	}
	rec.Add("repsExamined", int64(tr.RepsExamined))
	rec.Add("prunedByKim", int64(tr.PrunedByKim))
	rec.Add("prunedByKeogh", int64(tr.PrunedByKeogh))
	rec.Add("dtwComputed", int64(tr.DTWComputed))
	rec.Add("membersTested", int64(tr.MembersTested))
	rec.Add("lengthsVisited", int64(tr.LengthsVisited))
}
