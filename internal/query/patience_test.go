package query

import (
	"math"
	"testing"

	"onex/internal/dataset"
)

func TestPatienceBoundsGroupMining(t *testing.T) {
	d := dataset.ECG.Scaled(0.15).Generate(3)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	// Loose threshold → few, huge groups: the case the patience cut exists
	// for.
	pBounded := buildProcessor(t, d, 0.6, []int{32}, Options{Patience: 8})
	pExhaust := buildProcessor(t, d, 0.6, []int{32}, Options{Patience: -1})

	q := append([]float64(nil), d.Series[1].Values[10:42]...)
	for i := range q {
		q[i] = q[i]*0.9 + 0.05 // out-of-dataset style query
	}
	mB, trB, err := pBounded.BestMatchTraced(q, MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	mE, trE, err := pExhaust.BestMatchTraced(q, MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	if trB.MembersTested >= trE.MembersTested {
		t.Errorf("patience did not reduce work: %d vs %d members", trB.MembersTested, trE.MembersTested)
	}
	// Exhaustive verification can only be equal or better.
	if mE.Dist > mB.Dist+1e-12 {
		t.Errorf("exhaustive %v worse than bounded %v", mE.Dist, mB.Dist)
	}
	// The bounded walk's pivot ordering keeps it close to exhaustive.
	if mB.Dist > mE.Dist+0.05 {
		t.Errorf("bounded walk much worse: %v vs %v", mB.Dist, mE.Dist)
	}
}

func TestPatienceDefaultApplied(t *testing.T) {
	d := dataset.ItalyPower.Scaled(0.3).Generate(2)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	// Patience 0 must behave as DefaultPatience, not unlimited: construct a
	// large single group (huge ST) and verify the member walk stops.
	p := buildProcessor(t, d, 5, []int{8}, Options{})
	total := 0
	for _, g := range p.Base().Entry(8).Groups {
		total += g.Count()
	}
	if total < DefaultPatience*3 {
		t.Skipf("group too small (%d) to exercise the cut", total)
	}
	q := make([]float64, 8)
	for i := range q {
		q[i] = 2 + float64(i) // far from all data → nothing improves
	}
	_, tr, err := p.BestMatchTraced(q, MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MembersTested > 3*DefaultPatience {
		t.Errorf("patience default not applied: tested %d members of %d", tr.MembersTested, total)
	}
}

func TestNegativePatienceIsExhaustive(t *testing.T) {
	d := dataset.ItalyPower.Scaled(0.3).Generate(2)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	p := buildProcessor(t, d, 5, []int{8}, Options{Patience: -1})
	total := 0
	for _, g := range p.Base().Entry(8).Groups {
		total += g.Count()
	}
	q := make([]float64, 8)
	for i := range q {
		q[i] = math.Sin(float64(i))
	}
	_, tr, err := p.BestMatchTraced(q, MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	// With one group (huge ST) and no patience cut, every member is
	// visited.
	if len(p.Base().Entry(8).Groups) == 1 && tr.MembersTested != total {
		t.Errorf("exhaustive walk tested %d of %d members", tr.MembersTested, total)
	}
}
