package query

import "sync/atomic"

// Counters accumulates lifetime work counters across every query a
// processor answers. One Counters instance is shared by a processor and all
// the views derived from it (sequential(), batch executors, a Scatter's
// global processor), so the serving layer reads one coherent tally per
// dataset engine. All methods are safe for concurrent use.
//
// Queries counts every answered call of every family. The bound-pruning
// counters (RepsExamined .. MembersTested) fold in the per-query traces of
// every cascade-running family — Q1 BestMatch, k-NN and range search alike;
// seasonal queries read the grouping without running the cascade and tick
// Queries only. Like Trace, the pruning split between Kim and Keogh depends
// on bound-tightening timing in tightening-bound parallel scans; the totals
// are what to alert on.
type Counters struct {
	queries       atomic.Uint64
	repsExamined  atomic.Uint64
	prunedByKim   atomic.Uint64
	prunedByKeogh atomic.Uint64
	dtwComputed   atomic.Uint64
	membersTested atomic.Uint64
}

// fold adds one query's trace into the tally.
func (c *Counters) fold(tr Trace) {
	if c == nil {
		return
	}
	c.repsExamined.Add(uint64(tr.RepsExamined))
	c.prunedByKim.Add(uint64(tr.PrunedByKim))
	c.prunedByKeogh.Add(uint64(tr.PrunedByKeogh))
	c.dtwComputed.Add(uint64(tr.DTWComputed))
	c.membersTested.Add(uint64(tr.MembersTested))
}

// tick counts one answered query.
func (c *Counters) tick() {
	if c == nil {
		return
	}
	c.queries.Add(1)
}

// CountersSnapshot is a point-in-time copy of a Counters tally, shaped for
// the REST surface.
type CountersSnapshot struct {
	// Queries counts answered queries across every family.
	Queries uint64 `json:"queries"`
	// RepsExamined .. MembersTested are the cumulative Q1 work counters
	// (see Trace for the per-field meaning).
	RepsExamined  uint64 `json:"repsExamined"`
	PrunedByKim   uint64 `json:"prunedByKim"`
	PrunedByKeogh uint64 `json:"prunedByKeogh"`
	DTWComputed   uint64 `json:"dtwComputed"`
	MembersTested uint64 `json:"membersTested"`
}

// Add accumulates o into s (for aggregating engines or datasets).
func (s *CountersSnapshot) Add(o CountersSnapshot) {
	s.Queries += o.Queries
	s.RepsExamined += o.RepsExamined
	s.PrunedByKim += o.PrunedByKim
	s.PrunedByKeogh += o.PrunedByKeogh
	s.DTWComputed += o.DTWComputed
	s.MembersTested += o.MembersTested
}

// Snapshot copies the current tally.
func (c *Counters) Snapshot() CountersSnapshot {
	if c == nil {
		return CountersSnapshot{}
	}
	return CountersSnapshot{
		Queries:       c.queries.Load(),
		RepsExamined:  c.repsExamined.Load(),
		PrunedByKim:   c.prunedByKim.Load(),
		PrunedByKeogh: c.prunedByKeogh.Load(),
		DTWComputed:   c.dtwComputed.Load(),
		MembersTested: c.membersTested.Load(),
	}
}

// Counters returns the processor's shared tally.
func (p *Processor) Counters() *Counters { return p.counters }

// Counters returns the scatter executor's shared tally (held by its global
// processor, so mono and scattered paths account identically).
func (s *Scatter) Counters() *Counters { return s.global.counters }
