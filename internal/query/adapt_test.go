package query

import (
	"math"
	"testing"

	"onex/internal/dataset"
	"onex/internal/grouping"
)

func adaptFixture(t *testing.T) *Processor {
	t.Helper()
	d := dataset.ItalyPower.Scaled(0.4).Generate(6)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	return buildProcessor(t, d, 0.2, []int{5, 9}, Options{})
}

// memberCount sums members across all groups of a length.
func memberCount(p *Processor, length int) int {
	total := 0
	for _, g := range p.Base().Entry(length).Groups {
		total += g.Count()
	}
	return total
}

func TestAdaptValidation(t *testing.T) {
	p := adaptFixture(t)
	for _, st := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := p.AdaptThreshold(st); err == nil {
			t.Errorf("AdaptThreshold(%v): want error", st)
		}
	}
}

func TestAdaptSameThresholdReusesGroups(t *testing.T) {
	p := adaptFixture(t)
	ap, err := p.AdaptThreshold(p.Base().ST)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range p.Base().Lengths {
		if got, want := len(ap.Base().Entry(l).Groups), len(p.Base().Entry(l).Groups); got != want {
			t.Errorf("length %d: %d groups after identity adapt, want %d", l, got, want)
		}
	}
}

func TestAdaptSmallerThresholdSplits(t *testing.T) {
	p := adaptFixture(t)
	ap, err := p.AdaptThreshold(p.Base().ST / 2)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Base().ST != p.Base().ST/2 {
		t.Errorf("adapted ST = %v", ap.Base().ST)
	}
	for _, l := range p.Base().Lengths {
		before := len(p.Base().Entry(l).Groups)
		after := len(ap.Base().Entry(l).Groups)
		if after < before {
			t.Errorf("length %d: splitting reduced groups %d → %d", l, before, after)
		}
		if memberCount(ap, l) != memberCount(p, l) {
			t.Errorf("length %d: members lost in split: %d vs %d",
				l, memberCount(ap, l), memberCount(p, l))
		}
	}
}

func TestAdaptLargerThresholdMerges(t *testing.T) {
	p := adaptFixture(t)
	ap, err := p.AdaptThreshold(p.Base().ST * 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range p.Base().Lengths {
		before := len(p.Base().Entry(l).Groups)
		after := len(ap.Base().Entry(l).Groups)
		if after > before {
			t.Errorf("length %d: merging increased groups %d → %d", l, before, after)
		}
		if memberCount(ap, l) != memberCount(p, l) {
			t.Errorf("length %d: members lost in merge: %d vs %d",
				l, memberCount(ap, l), memberCount(p, l))
		}
	}
}

func TestAdaptHugeThresholdMergesToOneGroup(t *testing.T) {
	p := adaptFixture(t)
	ap, err := p.AdaptThreshold(1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range ap.Base().Lengths {
		if got := len(ap.Base().Entry(l).Groups); got != 1 {
			t.Errorf("length %d: %d groups after huge-ST adapt, want 1", l, got)
		}
	}
}

func TestAdaptSplitRadiusRespected(t *testing.T) {
	// After splitting at ST′, member distances to the new representatives
	// should cluster within ST′/2 (allowing centroid-drift stragglers).
	p := adaptFixture(t)
	stPrime := p.Base().ST / 2
	ap, err := p.AdaptThreshold(stPrime)
	if err != nil {
		t.Fatal(err)
	}
	within, total := 0, 0
	for _, l := range ap.Base().Lengths {
		for _, g := range ap.Base().Entry(l).Groups {
			for _, m := range g.Members {
				total++
				if m.EDToRep <= stPrime/2+1e-9 {
					within++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no members")
	}
	if frac := float64(within) / float64(total); frac < 0.9 {
		t.Errorf("only %.1f%% of members within ST'/2 after split", 100*frac)
	}
}

func TestAdaptedProcessorAnswersQueries(t *testing.T) {
	p := adaptFixture(t)
	d := p.Base().Dataset
	q := append([]float64(nil), d.Series[0].Values[1:10]...)
	for _, stPrime := range []float64{0.1, 0.2, 0.5} {
		ap, err := p.AdaptThreshold(stPrime)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ap.BestMatch(q, MatchExact)
		if err != nil {
			t.Fatalf("ST'=%v: %v", stPrime, err)
		}
		if !m.Found() {
			t.Fatalf("ST'=%v: no match", stPrime)
		}
		// Reported distance must stay reproducible on the adapted view.
		v := d.Series[m.SeriesID].Values[m.Start : m.Start+m.Length]
		if len(v) != 9 {
			t.Fatalf("ST'=%v: match length %d", stPrime, m.Length)
		}
	}
}

func TestAdaptedMembersSorted(t *testing.T) {
	p := adaptFixture(t)
	for _, stPrime := range []float64{0.1, 0.8} {
		ap, err := p.AdaptThreshold(stPrime)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range ap.Base().Lengths {
			for _, g := range ap.Base().Entry(l).Groups {
				for i := 1; i < g.Count(); i++ {
					if g.Members[i-1].EDToRep > g.Members[i].EDToRep {
						t.Fatalf("ST'=%v length %d group %d: members unsorted", stPrime, l, g.ID)
					}
				}
			}
		}
	}
}

func TestAdaptMergedRepIsWeightedAverage(t *testing.T) {
	p := adaptFixture(t)
	ap, err := p.AdaptThreshold(1000) // everything merges
	if err != nil {
		t.Fatal(err)
	}
	d := p.Base().Dataset
	for _, l := range ap.Base().Lengths {
		g := ap.Base().Entry(l).Groups[0]
		avg := make([]float64, l)
		for _, m := range g.Members {
			for i, v := range d.Series[m.SeriesIdx].Values[m.Start : m.Start+l] {
				avg[i] += v
			}
		}
		for i := range avg {
			avg[i] /= float64(g.Count())
			if math.Abs(avg[i]-g.Rep[i]) > 1e-9 {
				t.Fatalf("length %d: merged rep[%d]=%v, want point-wise average %v",
					l, i, g.Rep[i], avg[i])
			}
		}
	}
	var _ = grouping.Member{}
}
