// Package query implements the ONEX online query processor (Algorithm 2,
// Sec. 5): similarity queries over the representative space with time-warped
// matching, seasonal-similarity queries, similarity-threshold
// recommendations, and the varying-threshold group adaptation of Sec. 5.2.
//
// All Sec. 5.3 optimizations are implemented:
//
//   - length ordering for Match=Any: the query's own length first, then
//     decreasing lengths, then increasing;
//   - median-sum representative ordering: scanning starts at the
//     representative whose Dc row-sum is the median and expands alternately
//     left/right through the sum-sorted GTI array;
//   - the cascading lower-bound chain LB_Kim → LB_Keogh (reordered, early
//     abandoning) → early-abandoning DTW against the best-so-far;
//   - the in-group pivot search: members are visited in order of
//     |ED(member, rep) − DTW(query, rep)| over the ED-sorted LSI array.
package query

import (
	"errors"
	"fmt"
	"math"

	"onex/internal/dist"
	"onex/internal/rspace"
)

// MatchMode selects the Q1 MATCH clause.
type MatchMode int

const (
	// MatchExact searches only subsequences of the query's own length.
	MatchExact MatchMode = iota
	// MatchAny searches subsequences of every indexed length.
	MatchAny
)

// Options tunes the processor. The zero value reproduces the paper's
// behaviour.
type Options struct {
	// DisableEarlyStop turns off the Sec. 5.3 stop rule for Match=Any
	// (stop once a representative within ST/2 has been explored) and scans
	// every indexed length instead.
	DisableEarlyStop bool
	// CandidateLimit bounds how many members of the selected group are
	// verified with DTW (pivot-ordered). 0 means no fixed limit; the walk
	// is then bounded by Patience alone.
	CandidateLimit int
	// Patience reproduces the paper's bounded pivot walk (Sec. 5.3: expand
	// from the pivot "until we find the best match"): mining stops after
	// this many consecutive non-improving members. 0 selects
	// DefaultPatience; negative values disable the cut (exhaustive group
	// verification). Large groups at loose thresholds make the exhaustive
	// walk degenerate toward a linear scan, inverting the paper's
	// time-vs-ST trend, so the bounded walk is the default.
	Patience int
	// DisableLowerBounds turns off the LB_Kim/LB_Keogh cascade (for
	// ablation benchmarks); DTW early abandoning remains.
	DisableLowerBounds bool
}

// DefaultPatience is the non-improving-member budget of the in-group pivot
// walk when Options.Patience is 0.
const DefaultPatience = 32

// Processor executes online queries against an immutable base. It is safe
// for concurrent use; per-query scratch lives on the stack of each call.
type Processor struct {
	base *rspace.Base
	opts Options
}

// New builds a processor over a base.
func New(b *rspace.Base, opts Options) (*Processor, error) {
	if b == nil {
		return nil, errors.New("query: nil base")
	}
	if opts.CandidateLimit < 0 {
		return nil, fmt.Errorf("query: negative candidate limit %d", opts.CandidateLimit)
	}
	return &Processor{base: b, opts: opts}, nil
}

// Base returns the underlying base (read-only).
func (p *Processor) Base() *rspace.Base { return p.base }

// Match is a similarity-query answer: the best-matching subsequence found.
type Match struct {
	// SeriesID, Start, Length locate the matched subsequence (Xp)^i_j.
	SeriesID, Start, Length int
	// Dist is the normalized DTW (Def. 6) between query and match — the
	// value the paper's accuracy metric compares.
	Dist float64
	// RawDTW is the unnormalized Def. 3 distance.
	RawDTW float64
	// GroupID identifies the ONEX group the match came from.
	GroupID int
}

// Found reports whether the match is populated (a search over an empty
// length set yields a zero Match with Found()==false).
func (m Match) Found() bool { return m.Length > 0 }

// Trace counts the work a query performed, for the ablation benchmarks.
type Trace struct {
	RepsExamined   int // representatives considered
	PrunedByKim    int // skipped after LB_Kim
	PrunedByKeogh  int // skipped after LB_Keogh
	DTWComputed    int // full or early-abandoned DTW evaluations
	MembersTested  int // group members verified with DTW
	LengthsVisited int // lengths visited in Match=Any mode
}

func validateQuery(q []float64) error {
	if len(q) == 0 {
		return errors.New("query: empty query sequence")
	}
	for i, v := range q {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("query: non-finite value %v at index %d", v, i)
		}
	}
	return nil
}

// BestMatch answers query class I (Q1): the subsequence most similar to q
// under DTW. With MatchExact only subsequences of len(q) are considered and
// an error is returned if that length is not indexed; with MatchAny every
// indexed length is searched in the Sec. 5.3 order.
func (p *Processor) BestMatch(q []float64, mode MatchMode) (Match, error) {
	m, _, err := p.BestMatchTraced(q, mode)
	return m, err
}

// BestMatchTraced is BestMatch plus the work counters.
func (p *Processor) BestMatchTraced(q []float64, mode MatchMode) (Match, Trace, error) {
	var tr Trace
	if err := validateQuery(q); err != nil {
		return Match{}, tr, err
	}
	var ws dist.Workspace
	order := dist.QueryOrder(q)

	switch mode {
	case MatchExact:
		e := p.base.Entry(len(q))
		if e == nil {
			return Match{}, tr, fmt.Errorf("query: length %d not indexed", len(q))
		}
		best := Match{Dist: math.Inf(1)}
		p.searchLength(q, order, e, &ws, &best, &tr)
		if !best.Found() {
			return Match{}, tr, errors.New("query: no candidate found (empty length entry)")
		}
		return best, tr, nil
	case MatchAny:
		lengths := p.lengthOrder(len(q))
		if len(lengths) == 0 {
			return Match{}, tr, errors.New("query: base has no indexed lengths")
		}
		best := Match{Dist: math.Inf(1)}
		for _, l := range lengths {
			tr.LengthsVisited++
			e := p.base.Entry(l)
			repNorm := p.searchLength(q, order, e, &ws, &best, &tr)
			// Sec. 5.3 stop rule: a representative within ST/2 guarantees
			// (Lemma 2) its group's members are within ST of the query.
			if !p.opts.DisableEarlyStop && repNorm <= p.base.ST/2 {
				break
			}
		}
		if !best.Found() {
			return Match{}, tr, errors.New("query: no candidate found")
		}
		return best, tr, nil
	default:
		return Match{}, tr, fmt.Errorf("query: unknown match mode %d", mode)
	}
}

// lengthOrder yields indexed lengths in the paper's search order: the
// query's own length first (if indexed), then strictly smaller lengths in
// decreasing order, then larger lengths in increasing order.
func (p *Processor) lengthOrder(queryLen int) []int {
	ls := p.base.Lengths // ascending
	out := make([]int, 0, len(ls))
	if p.base.Entry(queryLen) != nil {
		out = append(out, queryLen)
	}
	for i := len(ls) - 1; i >= 0; i-- {
		if ls[i] < queryLen {
			out = append(out, ls[i])
		}
	}
	for _, l := range ls {
		if l > queryLen {
			out = append(out, l)
		}
	}
	return out
}

// searchLength finds the best-matching representative of one length (the
// compareRep step of Algorithm 2.A), then mines its group (getKSim),
// updating best in place. It returns the normalized DTW of the chosen
// representative (+Inf if the entry is empty) for the early-stop rule.
func (p *Processor) searchLength(q []float64, order []int, e *rspace.LengthEntry,
	ws *dist.Workspace, best *Match, tr *Trace) float64 {

	if e == nil || len(e.Groups) == 0 {
		return math.Inf(1)
	}
	divisor := dist.NormalizedDTWDivisor(len(q), e.Length)
	sameLen := e.Length == len(q)

	bestRep := -1
	bestRepRaw := math.Inf(1)
	for _, k := range e.MedianOrder {
		tr.RepsExamined++
		rep := e.Groups[k].Rep
		if !p.opts.DisableLowerBounds {
			if dist.LBKim(q, rep) >= bestRepRaw {
				tr.PrunedByKim++
				continue
			}
			if sameLen {
				env := e.Envelopes[k]
				if lb := dist.LBKeoghOrdered(q, env.Upper, env.Lower, order, bestRepRaw); lb >= bestRepRaw {
					tr.PrunedByKeogh++
					continue
				}
			}
		}
		tr.DTWComputed++
		d := ws.DTWEarlyAbandon(q, rep, dist.Unconstrained, bestRepRaw)
		if d < bestRepRaw {
			bestRepRaw = d
			bestRep = k
		}
	}
	if bestRep < 0 {
		return math.Inf(1)
	}
	p.mineGroup(q, e, bestRep, bestRepRaw/divisor, ws, best, tr)
	return bestRepRaw / divisor
}

// mineGroup verifies members of group k against the query in pivot order:
// the LSI array is sorted by ED-to-rep, and the paper starts from the member
// whose ED is closest to DTW(query, rep), expanding alternately to smaller
// and larger EDs. Verified with early-abandoning DTW against the best so
// far.
func (p *Processor) mineGroup(q []float64, e *rspace.LengthEntry, k int, repNormDTW float64,
	ws *dist.Workspace, best *Match, tr *Trace) {

	g := e.Groups[k]
	n := g.Count()
	if n == 0 {
		return
	}
	divisor := dist.NormalizedDTWDivisor(len(q), e.Length)

	// Locate the pivot: first member with EDToRep ≥ repNormDTW (binary
	// search over the sorted LSI array).
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if g.Members[mid].EDToRep < repNormDTW {
			lo = mid + 1
		} else {
			hi = mid
		}
	}

	limit := p.opts.CandidateLimit
	if limit <= 0 || limit > n {
		limit = n
	}
	patience := p.opts.Patience
	if patience == 0 {
		patience = DefaultPatience
	}
	bestRaw := best.Dist * divisor // +Inf-safe: Inf*x = Inf
	left, right := lo-1, lo
	sinceImprove := 0
	for tested := 0; tested < limit; tested++ {
		if patience > 0 && sinceImprove >= patience {
			return
		}
		// Pick the next member whose EDToRep is closest to the pivot value.
		var idx int
		switch {
		case left < 0 && right >= n:
			return
		case left < 0:
			idx, right = right, right+1
		case right >= n:
			idx, left = left, left-1
		case repNormDTW-g.Members[left].EDToRep <= g.Members[right].EDToRep-repNormDTW:
			idx, left = left, left-1
		default:
			idx, right = right, right+1
		}
		m := g.Members[idx]
		v := p.base.MemberValues(g, m)
		tr.MembersTested++
		// LB_Kim is O(1) and admissible for any warping path; it skips the
		// bulk of hopeless members once a good best-so-far exists.
		if !p.opts.DisableLowerBounds && dist.LBKim(q, v) >= bestRaw {
			sinceImprove++
			continue
		}
		tr.DTWComputed++
		d := ws.DTWEarlyAbandon(q, v, dist.Unconstrained, bestRaw)
		if d < bestRaw {
			bestRaw = d
			sinceImprove = 0
			*best = Match{
				SeriesID: m.SeriesIdx,
				Start:    m.Start,
				Length:   e.Length,
				Dist:     d / divisor,
				RawDTW:   d,
				GroupID:  k,
			}
		} else {
			sinceImprove++
		}
	}
}
