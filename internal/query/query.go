// Package query implements the ONEX online query processor (Algorithm 2,
// Sec. 5): similarity queries over the representative space with time-warped
// matching, seasonal-similarity queries, similarity-threshold
// recommendations, and the varying-threshold group adaptation of Sec. 5.2.
//
// All Sec. 5.3 optimizations are implemented:
//
//   - length ordering for Match=Any: the query's own length first, then
//     decreasing lengths, then increasing;
//   - median-sum representative ordering: scanning starts at the
//     representative whose Dc row-sum is the median and expands alternately
//     left/right through the sum-sorted GTI array;
//   - the cascading lower-bound chain LB_Kim → LB_Keogh (reordered, early
//     abandoning) → early-abandoning DTW against the best-so-far;
//   - the in-group pivot search: members are visited in order of
//     |ED(member, rep) − DTW(query, rep)| over the ED-sorted LSI array.
//
// # Parallel execution
//
// Options.Parallelism shards a single query across a bounded worker pool:
// the representative scan of each length fans out with a shared atomic
// best-so-far bound (early abandoning keeps pruning across workers), group
// mining evaluates pivot-walk batches concurrently, and range search shards
// across groups. The parallel paths are constructed to be *answer-invariant*:
// every pruning or patience decision is replayed against deterministic
// bounds, concurrency only decides which DTWs are computed exactly versus
// proven irrelevant, so BestMatch/BestKMatches/RangeSearch return identical
// results for every Parallelism value. Workers change only wall-clock and
// the work-accounting side of Trace: DTWComputed, PrunedByKim and
// PrunedByKeogh depend on bound-tightening timing in the parallel rep scan
// (a rep proven hopeless is counted under whichever check happened to kill
// it), while the decision-level counters — RepsExamined, MembersTested,
// LengthsVisited — are identical at every setting.
package query

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"onex/internal/dist"
	"onex/internal/grouping"
	"onex/internal/obs"
	"onex/internal/parallel"
	"onex/internal/rspace"
)

// MatchMode selects the Q1 MATCH clause.
type MatchMode int

const (
	// MatchExact searches only subsequences of the query's own length.
	MatchExact MatchMode = iota
	// MatchAny searches subsequences of every indexed length.
	MatchAny
)

// Options tunes the processor. The zero value reproduces the paper's
// behaviour.
type Options struct {
	// DisableEarlyStop turns off the Sec. 5.3 stop rule for Match=Any
	// (stop once a representative within ST/2 has been explored) and scans
	// every indexed length instead.
	DisableEarlyStop bool `json:"disableEarlyStop"`
	// CandidateLimit bounds how many members of the selected group are
	// verified with DTW (pivot-ordered). 0 means no fixed limit; the walk
	// is then bounded by Patience alone.
	CandidateLimit int `json:"candidateLimit"`
	// Patience reproduces the paper's bounded pivot walk (Sec. 5.3: expand
	// from the pivot "until we find the best match"): mining stops after
	// this many consecutive non-improving members. 0 selects
	// DefaultPatience; negative values disable the cut (exhaustive group
	// verification). Large groups at loose thresholds make the exhaustive
	// walk degenerate toward a linear scan, inverting the paper's
	// time-vs-ST trend, so the bounded walk is the default.
	Patience int `json:"patience"`
	// DisableLowerBounds turns off the LB_Kim/LB_Keogh cascade (for
	// ablation benchmarks); DTW early abandoning remains.
	DisableLowerBounds bool `json:"disableLowerBounds"`
	// Parallelism bounds the worker fan-out of a single query and of
	// BestMatchBatch. ≤ 0 selects runtime.GOMAXPROCS(0); 1 forces the
	// sequential path; values above NumCPU are accepted and merely
	// oversubscribe. Answers are identical for every setting — see the
	// package documentation.
	Parallelism int `json:"parallelism"`
}

// DefaultPatience is the non-improving-member budget of the in-group pivot
// walk when Options.Patience is 0.
const DefaultPatience = 32

// Processor executes online queries against an immutable base.
//
// Concurrency and workspace ownership: a Processor is safe for any number
// of concurrent query calls. Race freedom is by construction — the base is
// immutable, and every dist.Workspace used by a call is drawn from an
// internal sync.Pool with single-goroutine ownership (each query goroutine,
// and each worker a parallel query fans out to, gets its own workspace and
// returns it before the call completes; workspaces never escape a call and
// are never shared between two live goroutines).
type Processor struct {
	base *rspace.Base
	opts Options
	// workers is the resolved Options.Parallelism (always ≥ 1).
	workers int
	// pool recycles DTW scratch across queries and across the workers of
	// one query. See the ownership rule above and on dist.Workspace.
	pool *parallel.WorkspacePool
	// counters is the lifetime work tally, shared (by pointer) with every
	// view derived from this processor — sequential(), batch executors and
	// threshold adaptations keep accounting against the same instance.
	counters *Counters
}

// New builds a processor over a base.
func New(b *rspace.Base, opts Options) (*Processor, error) {
	if b == nil {
		return nil, errors.New("query: nil base")
	}
	if opts.CandidateLimit < 0 {
		return nil, fmt.Errorf("query: negative candidate limit %d", opts.CandidateLimit)
	}
	return &Processor{
		base:     b,
		opts:     opts,
		workers:  parallel.Resolve(opts.Parallelism),
		pool:     &parallel.WorkspacePool{},
		counters: &Counters{},
	}, nil
}

// sequential returns a view of p that answers each query on the calling
// goroutine alone. BestMatchBatch uses it to parallelize across queries
// instead of within them (identical answers either way).
func (p *Processor) sequential() *Processor {
	if p.workers == 1 {
		return p
	}
	cp := *p
	cp.workers = 1
	return &cp
}

// Base returns the underlying base (read-only).
func (p *Processor) Base() *rspace.Base { return p.base }

// Match is a similarity-query answer: the best-matching subsequence found.
type Match struct {
	// SeriesID, Start, Length locate the matched subsequence (Xp)^i_j.
	SeriesID, Start, Length int
	// Dist is the normalized DTW (Def. 6) between query and match — the
	// value the paper's accuracy metric compares.
	Dist float64
	// RawDTW is the unnormalized Def. 3 distance.
	RawDTW float64
	// GroupID identifies the ONEX group the match came from.
	GroupID int
}

// Found reports whether the match is populated (a search over an empty
// length set yields a zero Match with Found()==false).
func (m Match) Found() bool { return m.Length > 0 }

// Trace counts the work a query performed, for the ablation benchmarks.
// The JSON tags are the shard-transport wire shape (per-call work folds
// back into the coordinator's trace).
type Trace struct {
	RepsExamined   int `json:"repsExamined"`   // representatives considered
	PrunedByKim    int `json:"prunedByKim"`    // skipped after LB_Kim
	PrunedByKeogh  int `json:"prunedByKeogh"`  // skipped after LB_Keogh
	DTWComputed    int `json:"dtwComputed"`    // full or early-abandoned DTW evaluations
	MembersTested  int `json:"membersTested"`  // group members verified with DTW
	LengthsVisited int `json:"lengthsVisited"` // lengths visited in Match=Any mode
}

func validateQuery(q []float64) error {
	if len(q) == 0 {
		return errors.New("query: empty query sequence")
	}
	for i, v := range q {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("query: non-finite value %v at index %d", v, i)
		}
	}
	return nil
}

// BestMatch answers query class I (Q1): the subsequence most similar to q
// under DTW. With MatchExact only subsequences of len(q) are considered and
// an error is returned if that length is not indexed; with MatchAny every
// indexed length is searched in the Sec. 5.3 order.
func (p *Processor) BestMatch(q []float64, mode MatchMode) (Match, error) {
	m, _, err := p.BestMatchTraced(q, mode)
	return m, err
}

// BestMatchTraced is BestMatch plus the work counters.
func (p *Processor) BestMatchTraced(q []float64, mode MatchMode) (Match, Trace, error) {
	return p.BestMatchObserved(q, mode, nil)
}

// BestMatchObserved is BestMatchTraced with optional span recording: a
// non-nil rec receives per-length scan/refine spans plus the query's work
// totals. rec == nil is the hot path and adds zero allocations
// (BenchmarkBestMatchObservedNilAllocs enforces this); tracing only
// observes, so results are bit-identical either way.
func (p *Processor) BestMatchObserved(q []float64, mode MatchMode, rec *obs.Trace) (Match, Trace, error) {
	var tr Trace
	defer func() { p.counters.tick(); p.counters.fold(tr); observe(rec, tr) }()
	if err := validateQuery(q); err != nil {
		return Match{}, tr, err
	}
	ws := p.pool.Get()
	defer p.pool.Put(ws)
	order := dist.QueryOrder(q)

	switch mode {
	case MatchExact:
		e := p.base.Entry(len(q))
		if e == nil {
			return Match{}, tr, fmt.Errorf("query: length %d not indexed", len(q))
		}
		best := Match{Dist: math.Inf(1)}
		p.searchLength(q, order, e, ws, &best, &tr, rec)
		if !best.Found() {
			return Match{}, tr, errors.New("query: no candidate found (empty length entry)")
		}
		return best, tr, nil
	case MatchAny:
		lengths := p.lengthOrder(len(q))
		if len(lengths) == 0 {
			return Match{}, tr, errors.New("query: base has no indexed lengths")
		}
		best := Match{Dist: math.Inf(1)}
		for _, l := range lengths {
			tr.LengthsVisited++
			e := p.base.Entry(l)
			repNorm := p.searchLength(q, order, e, ws, &best, &tr, rec)
			// Sec. 5.3 stop rule: a representative within ST/2 guarantees
			// (Lemma 2) its group's members are within ST of the query.
			if !p.opts.DisableEarlyStop && repNorm <= p.base.ST/2 {
				break
			}
		}
		if !best.Found() {
			return Match{}, tr, errors.New("query: no candidate found")
		}
		return best, tr, nil
	default:
		return Match{}, tr, fmt.Errorf("query: unknown match mode %d", mode)
	}
}

// lengthOrder yields indexed lengths in the paper's search order: the
// query's own length first (if indexed), then strictly smaller lengths in
// decreasing order, then larger lengths in increasing order.
func (p *Processor) lengthOrder(queryLen int) []int {
	ls := p.base.Lengths // ascending
	out := make([]int, 0, len(ls))
	if p.base.Entry(queryLen) != nil {
		out = append(out, queryLen)
	}
	for i := len(ls) - 1; i >= 0; i-- {
		if ls[i] < queryLen {
			out = append(out, ls[i])
		}
	}
	for _, l := range ls {
		if l > queryLen {
			out = append(out, l)
		}
	}
	return out
}

// Parallel-path thresholds. scanParallelMin is the fewest representatives
// worth fanning a scan out for; mineBatchSize is the pivot-walk round size
// of the parallel group miner. mineBatchSize is a fixed constant — never
// derived from the worker count — because the round boundaries define which
// best-so-far snapshot each DTW cutoff uses, and those snapshots are part
// of the (worker-count-invariant) decision replay.
const (
	scanParallelMin = 16
	mineBatchSize   = 32
)

// searchLength finds the best-matching representative of one length (the
// compareRep step of Algorithm 2.A), then mines its group (getKSim),
// updating best in place. It returns the normalized DTW of the chosen
// representative (+Inf if the entry is empty) for the early-stop rule.
// With a non-nil rec, the two stages are recorded as "scan" and "refine"
// spans whose attrs are Trace deltas.
func (p *Processor) searchLength(q []float64, order []int, e *rspace.LengthEntry,
	ws *dist.Workspace, best *Match, tr *Trace, rec *obs.Trace) float64 {

	if e == nil || len(e.Groups) == 0 {
		return math.Inf(1)
	}
	divisor := dist.NormalizedDTWDivisor(len(q), e.Length)
	var sc obs.SpanScope
	var pre Trace
	if rec != nil {
		pre = *tr
		sc = rec.StartSpan("scan")
	}
	bestRep, bestRepRaw := p.scanReps(q, order, e, ws, tr)
	if rec != nil {
		spanWork(sc.Attr("length", int64(e.Length)), pre, *tr).End()
	}
	if bestRep < 0 {
		return math.Inf(1)
	}
	if rec != nil {
		pre = *tr
		sc = rec.StartSpan("refine")
	}
	p.mineGroup(q, e, bestRep, bestRepRaw/divisor, ws, best, tr)
	if rec != nil {
		spanWork(sc.Attr("length", int64(e.Length)).Attr("group", int64(bestRep)), pre, *tr).End()
	}
	return bestRepRaw / divisor
}

// scanReps walks the GTI median order computing the argmin representative
// under DTW with the LB_Kim → LB_Keogh → early-abandoning-DTW cascade.
// With workers > 1 the order is strided across the pool and a shared
// atomic bound keeps early abandoning effective across workers; the scan
// computes the exact minimum either way, and ties on the exact minimum
// distance resolve to the earliest median-order position at every worker
// count. Determinism under ties is why the parallel path prunes strictly
// (> cutoff, where the sequential scan prunes on ≥): a representative whose
// lower bound merely equals the shared bound could still tie the minimum
// from an earlier position, and DTWEarlyAbandon abandons only strictly
// above its cutoff, so every minimum-achieving representative is computed
// exactly and the (distance, position) reduce picks the same winner the
// sequential scan would.
func (p *Processor) scanReps(q []float64, order []int, e *rspace.LengthEntry,
	ws *dist.Workspace, tr *Trace) (bestRep int, bestRepRaw float64) {

	sameLen := e.Length == len(q)
	if p.workers <= 1 || len(e.MedianOrder) < scanParallelMin {
		bestRep = -1
		bestRepRaw = math.Inf(1)
		for _, k := range e.MedianOrder {
			tr.RepsExamined++
			rep := e.Groups[k].Rep
			if !p.opts.DisableLowerBounds {
				if dist.LBKim(q, rep) >= bestRepRaw {
					tr.PrunedByKim++
					continue
				}
				if sameLen {
					env := e.Envelopes[k]
					if lb := dist.LBKeoghOrdered(q, env.Upper, env.Lower, order, bestRepRaw); lb >= bestRepRaw {
						tr.PrunedByKeogh++
						continue
					}
				}
			}
			tr.DTWComputed++
			d := ws.DTWEarlyAbandon(q, rep, dist.Unconstrained, bestRepRaw)
			if d < bestRepRaw {
				bestRepRaw = d
				bestRep = k
			}
		}
		return bestRep, bestRepRaw
	}

	type repBest struct {
		raw float64
		pos int // index into MedianOrder; -1 = none
	}
	workers := p.workers
	if workers > len(e.MedianOrder) {
		workers = len(e.MedianOrder)
	}
	shared := parallel.NewMinBound(math.Inf(1))
	locals := make([]repBest, workers)
	traces := make([]Trace, workers)
	parallel.ForEach(workers, workers, func(w int) {
		lws := p.pool.Get()
		defer p.pool.Put(lws)
		local := repBest{raw: math.Inf(1), pos: -1}
		ltr := &traces[w]
		// Stride assignment: every worker starts near the median (the most
		// promising region), so the shared bound tightens early for all.
		for pos := w; pos < len(e.MedianOrder); pos += workers {
			k := e.MedianOrder[pos]
			ltr.RepsExamined++
			cutoff := local.raw
			if s := shared.Load(); s < cutoff {
				cutoff = s
			}
			rep := e.Groups[k].Rep
			if !p.opts.DisableLowerBounds {
				if dist.LBKim(q, rep) > cutoff {
					ltr.PrunedByKim++
					continue
				}
				if sameLen {
					env := e.Envelopes[k]
					if lb := dist.LBKeoghOrdered(q, env.Upper, env.Lower, order, cutoff); lb > cutoff {
						ltr.PrunedByKeogh++
						continue
					}
				}
			}
			ltr.DTWComputed++
			d := lws.DTWEarlyAbandon(q, rep, dist.Unconstrained, cutoff)
			if d < local.raw {
				local = repBest{raw: d, pos: pos}
				shared.Relax(d)
			}
		}
		locals[w] = local
	})
	win := repBest{raw: math.Inf(1), pos: -1}
	for _, l := range locals {
		if l.pos < 0 {
			continue
		}
		if l.raw < win.raw || (l.raw == win.raw && l.pos < win.pos) {
			win = l
		}
	}
	for _, t := range traces {
		tr.add(t)
	}
	if win.pos < 0 {
		return -1, math.Inf(1)
	}
	return e.MedianOrder[win.pos], win.raw
}

// evalRound concurrently evaluates one fixed-size round of candidates
// against a bound snapshot: lbs[i] receives LB_Kim (0 when lower bounds are
// disabled) and ds[i] the early-abandoning DTW (+Inf when the lower bound
// already proves the candidate cannot beat the bound — the caller's replay
// never reads ds[i] in that case). Items stride across up to p.workers
// goroutines, each owning one pooled workspace for the whole round. The
// return value is how many DTWs actually ran (Trace accounting). Shared by
// mineGroup and the k-NN member verification, whose decision replays both
// consume (lbs, ds) in candidate order.
func (p *Processor) evalRound(q []float64, n int, bound float64,
	valueAt func(int) []float64, lbs, ds []float64) int {

	workers := p.workers
	if workers > n {
		workers = n
	}
	var dtws atomic.Int64
	parallel.ForEach(workers, workers, func(w int) {
		lws := p.pool.Get()
		defer p.pool.Put(lws)
		ran := 0
		for i := w; i < n; i += workers {
			v := valueAt(i)
			lb := 0.0
			if !p.opts.DisableLowerBounds {
				lb = dist.LBKim(q, v)
			}
			lbs[i] = lb
			if lb >= bound {
				ds[i] = math.Inf(1)
				continue
			}
			ds[i] = lws.DTWEarlyAbandon(q, v, dist.Unconstrained, bound)
			ran++
		}
		dtws.Add(int64(ran))
	})
	return int(dtws.Load())
}

// pivotWalk yields LSI member indices in the Sec. 5.3 pivot order: starting
// from the member whose ED-to-rep is closest to pivot (the rep's DTW to the
// query), expanding alternately toward smaller and larger EDs. Next returns
// -1 once the group is exhausted.
type pivotWalk struct {
	members []grouping.Member
	pivot   float64
	left    int
	right   int
}

func newPivotWalk(members []grouping.Member, pivot float64) *pivotWalk {
	// First member with EDToRep ≥ pivot (binary search, LSI is sorted).
	lo, hi := 0, len(members)
	for lo < hi {
		mid := (lo + hi) / 2
		if members[mid].EDToRep < pivot {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &pivotWalk{members: members, pivot: pivot, left: lo - 1, right: lo}
}

func (w *pivotWalk) next() int {
	var idx int
	switch {
	case w.left < 0 && w.right >= len(w.members):
		return -1
	case w.left < 0:
		idx, w.right = w.right, w.right+1
	case w.right >= len(w.members):
		idx, w.left = w.left, w.left-1
	case w.pivot-w.members[w.left].EDToRep <= w.members[w.right].EDToRep-w.pivot:
		idx, w.left = w.left, w.left-1
	default:
		idx, w.right = w.right, w.right+1
	}
	return idx
}

// mineGroup verifies members of group k against the query in pivot order:
// the LSI array is sorted by ED-to-rep, and the paper starts from the member
// whose ED is closest to DTW(query, rep), expanding alternately to smaller
// and larger EDs. Verified with early-abandoning DTW against the best so
// far.
//
// With workers > 1 the walk runs in fixed-size rounds: a round's members
// have their DTWs evaluated concurrently against the best-so-far snapshot
// taken at the round boundary, then the improvement/patience bookkeeping is
// replayed sequentially in walk order. A member whose DTW was abandoned at
// the round bound is provably non-improving at its replay position (the
// running best only tightens within a round), so the replay reaches exactly
// the same decisions — same match, same patience cut — as the sequential
// walk; parallelism only changes how many DTWs run to completion.
func (p *Processor) mineGroup(q []float64, e *rspace.LengthEntry, k int, repNormDTW float64,
	ws *dist.Workspace, best *Match, tr *Trace) {

	g := e.Groups[k]
	n := g.Count()
	if n == 0 {
		return
	}
	divisor := dist.NormalizedDTWDivisor(len(q), e.Length)
	limit := p.opts.CandidateLimit
	if limit <= 0 || limit > n {
		limit = n
	}
	patience := p.opts.Patience
	if patience == 0 {
		patience = DefaultPatience
	}
	walk := newPivotWalk(g.Members, repNormDTW)
	bestRaw := best.Dist * divisor // +Inf-safe: Inf*x = Inf

	record := func(m grouping.Member, d float64) {
		bestRaw = d
		*best = Match{
			SeriesID: m.SeriesIdx,
			Start:    m.Start,
			Length:   e.Length,
			Dist:     d / divisor,
			RawDTW:   d,
			GroupID:  k,
		}
	}

	if p.workers <= 1 || n < 2*mineBatchSize {
		sinceImprove := 0
		for tested := 0; tested < limit; tested++ {
			if patience > 0 && sinceImprove >= patience {
				return
			}
			idx := walk.next()
			if idx < 0 {
				return
			}
			m := g.Members[idx]
			v := p.base.MemberValues(g, m)
			tr.MembersTested++
			// LB_Kim is O(1) and admissible for any warping path; it skips
			// the bulk of hopeless members once a good best-so-far exists.
			if !p.opts.DisableLowerBounds && dist.LBKim(q, v) >= bestRaw {
				sinceImprove++
				continue
			}
			tr.DTWComputed++
			d := ws.DTWEarlyAbandon(q, v, dist.Unconstrained, bestRaw)
			if d < bestRaw {
				sinceImprove = 0
				record(m, d)
			} else {
				sinceImprove++
			}
		}
		return
	}

	idxs := make([]int, 0, mineBatchSize)
	lbs := make([]float64, mineBatchSize)
	ds := make([]float64, mineBatchSize)
	sinceImprove := 0
	tested := 0
	for tested < limit {
		if patience > 0 && sinceImprove >= patience {
			return
		}
		// Collect the next round of members in walk order.
		idxs = idxs[:0]
		for len(idxs) < mineBatchSize && tested+len(idxs) < limit {
			idx := walk.next()
			if idx < 0 {
				break
			}
			idxs = append(idxs, idx)
		}
		if len(idxs) == 0 {
			return
		}
		roundBound := bestRaw
		tr.DTWComputed += p.evalRound(q, len(idxs), roundBound, func(i int) []float64 {
			return p.base.MemberValues(g, g.Members[idxs[i]])
		}, lbs, ds)
		// Replay the bookkeeping sequentially in walk order.
		for i, idx := range idxs {
			if patience > 0 && sinceImprove >= patience {
				return
			}
			m := g.Members[idx]
			tr.MembersTested++
			tested++
			if !p.opts.DisableLowerBounds && lbs[i] >= bestRaw {
				sinceImprove++
				continue
			}
			if d := ds[i]; d < bestRaw {
				sinceImprove = 0
				record(m, d)
			} else {
				sinceImprove++
			}
		}
	}
}
