package query

import (
	"math"
	"testing"

	"onex/internal/dist"
	"onex/internal/ts"
)

func TestRangeSearchExactMatchesBruteForceOnGuaranteedPath(t *testing.T) {
	// radius ≥ ST forces wholesale Lemma 2 admissions; exact mode must
	// still return precisely the brute-force result set with true DTW
	// distances — the Dist=ST upper-bound shortcut must not leak through.
	p := italyProcessor(t, []int{8})
	d := p.Base().Dataset
	for qi, q := range [][]float64{
		append([]float64(nil), d.Series[3].Values[2:10]...),
		append([]float64(nil), d.Series[0].Values[0:8]...),
	} {
		radius := p.Base().ST
		want := bruteRange(p, q, 8, radius)
		res, err := p.RangeSearchExact(q, 8, radius)
		if err != nil {
			t.Fatal(err)
		}
		guaranteed := 0
		got := map[[2]int]float64{}
		for _, r := range res {
			got[[2]int{r.SeriesID, r.Start}] = r.Dist
			if r.Guaranteed {
				guaranteed++
			}
			v := d.Series[r.SeriesID].Values[r.Start : r.Start+8]
			if actual := dist.NormalizedDTW(q, v); math.Abs(actual-r.Dist) > 1e-12 {
				t.Fatalf("query %d: reported Dist %v but true DTW is %v (guaranteed=%v)",
					qi, r.Dist, actual, r.Guaranteed)
			}
		}
		if guaranteed == 0 {
			t.Errorf("query %d: no wholesale admissions at radius=ST — the guaranteed path is untested", qi)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, brute force found %d", qi, len(got), len(want))
		}
		for loc, wd := range want {
			gd, ok := got[loc]
			if !ok {
				t.Fatalf("query %d: missing %v (distance %v)", qi, loc, wd)
			}
			if math.Abs(gd-wd) > 1e-12 {
				t.Fatalf("query %d: %v distance %v, want %v", qi, loc, gd, wd)
			}
		}
	}
}

func TestRangeSearchExactEqualsPlainOutsideGuarantee(t *testing.T) {
	// Below ST no wholesale admission happens, so both modes verify every
	// candidate and must agree exactly.
	p := italyProcessor(t, []int{8})
	d := p.Base().Dataset
	q := append([]float64(nil), d.Series[1].Values[4:12]...)
	radius := p.Base().ST / 2
	plain, err := p.RangeSearch(q, 8, radius)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := p.RangeSearchExact(q, 8, radius)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(exact) {
		t.Fatalf("%d plain vs %d exact results", len(plain), len(exact))
	}
	for i := range plain {
		if plain[i] != exact[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, plain[i], exact[i])
		}
	}
}

func TestConstantQuerySemantics(t *testing.T) {
	// Zero-variance inputs are legal end to end: a constant query passes
	// validation, and every reported distance is finite and exact. The base
	// holds flat plateaus (constant subsequences) to hit the constant-vs-
	// constant case too.
	d := &ts.Dataset{Name: "plateaus"}
	for s := 0; s < 4; s++ {
		v := make([]float64, 40)
		for i := range v {
			switch {
			case i/10%2 == 0:
				v[i] = float64(s) * 0.25 // flat plateau
			default:
				v[i] = math.Sin(float64(i)/3 + float64(s))
			}
		}
		d.Append("", v)
	}
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	p := buildProcessor(t, d, 0.2, []int{8}, Options{})
	flat := make([]float64, 8)
	for i := range flat {
		flat[i] = 0.5
	}
	m, err := p.BestMatch(flat, MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(m.Dist) || math.IsInf(m.Dist, 0) {
		t.Fatalf("constant query produced non-finite distance %v", m.Dist)
	}
	v := p.Base().Dataset.Series[m.SeriesID].Values[m.Start : m.Start+8]
	if want := dist.NormalizedDTW(flat, v); math.Abs(m.Dist-want) > 1e-12 {
		t.Errorf("constant query Dist %v, want %v", m.Dist, want)
	}
	rs, err := p.RangeSearchExact(flat, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if math.IsNaN(r.Dist) || math.IsInf(r.Dist, 0) {
			t.Fatalf("constant range query produced non-finite distance %v", r.Dist)
		}
	}
	if _, err := p.BestKMatches(flat, MatchAny, 3); err != nil {
		t.Fatal(err)
	}
}
