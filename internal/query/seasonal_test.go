package query

import (
	"testing"

	"onex/internal/ts"
)

// repeatingDataset has one series with an exactly repeating motif so
// seasonal queries have a guaranteed recurring pattern.
func repeatingDataset() *ts.Dataset {
	motif := []float64{0, 1, 0, -1}
	var s []float64
	for i := 0; i < 4; i++ {
		s = append(s, motif...)
	}
	ramp := make([]float64, len(s))
	for i := range ramp {
		ramp[i] = float64(i) / float64(len(ramp)) // non-recurring contrast series
	}
	return ts.NewDataset("seasonal", [][]float64{s, ramp})
}

func TestSeasonalSampleFindsRecurringMotif(t *testing.T) {
	d := repeatingDataset()
	p := buildProcessor(t, d, 0.3, []int{4}, Options{})
	groups, err := p.SeasonalSample(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 {
		t.Fatal("no recurring groups found for the motif series")
	}
	// The motif recurs 4 times at stride 4; at least one group must hold
	// several of those occurrences, all from series 0.
	found := false
	for _, g := range groups {
		if len(g.Members) >= 3 {
			found = true
		}
		for _, m := range g.Members {
			if m.SeriesIdx != 0 {
				t.Errorf("SeasonalSample(0) returned member of series %d", m.SeriesIdx)
			}
		}
		if g.Length != 4 {
			t.Errorf("group length %d, want 4", g.Length)
		}
		if len(g.Rep) != 4 {
			t.Errorf("rep length %d, want 4", len(g.Rep))
		}
	}
	if !found {
		t.Error("no group captured ≥3 motif occurrences")
	}
}

func TestSeasonalSampleErrors(t *testing.T) {
	p := buildProcessor(t, repeatingDataset(), 0.3, []int{4}, Options{})
	if _, err := p.SeasonalSample(0, 5); err == nil {
		t.Error("unindexed length: want error")
	}
	if _, err := p.SeasonalSample(-1, 4); err == nil {
		t.Error("negative series: want error")
	}
	if _, err := p.SeasonalSample(99, 4); err == nil {
		t.Error("out-of-range series: want error")
	}
}

func TestSeasonalAll(t *testing.T) {
	p := buildProcessor(t, repeatingDataset(), 0.3, []int{4}, Options{})
	groups, err := p.SeasonalAll(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 {
		t.Fatal("no groups with ≥2 members")
	}
	for _, g := range groups {
		if len(g.Members) < 2 {
			t.Errorf("group %d has %d members, want ≥2", g.GroupID, len(g.Members))
		}
	}
	if _, err := p.SeasonalAll(5); err == nil {
		t.Error("unindexed length: want error")
	}
}

func TestSeasonalSampleNonRecurringSeries(t *testing.T) {
	// The ramp series never repeats a window (strictly increasing values,
	// each window differs) — with a tight threshold it has no recurring
	// groups.
	d := repeatingDataset()
	p := buildProcessor(t, d, 0.01, []int{4}, Options{})
	groups, err := p.SeasonalSample(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Errorf("ramp series reported %d recurring groups at tight ST", len(groups))
	}
}
