package query

import (
	"context"

	"onex/internal/obs"
)

// ShardTransport is the seam between the scatter-gather coordinator
// (Scatter) and one shard's index. Every shard interaction of a sharded
// engine — the per-length representative scans, group-member DTW
// evaluation, range search, stats — crosses this interface, so the same
// coordinator code drives an in-process shard (LocalShard) and a remote
// worker process (internal/shardrpc.Client) interchangeably.
//
// The contract is bit-exactness: for a fixed shard restriction, every
// implementation must return the same float64 bit patterns the in-process
// engine computes, because the coordinator replays the monolithic decision
// procedure (pivot walks, patience cuts, heap pushes, tie rules) against
// these values. Distances that can be ±Inf travel as math.Float64bits
// (JSON cannot carry Inf); finite distances travel as plain float64, which
// Go's encoding/json round-trips exactly (shortest-round-trip encoding).
//
// Implementations must be safe for concurrent calls: the coordinator fans
// one query's per-shard work out on goroutines, and many queries run at
// once.
type ShardTransport interface {
	// Info describes the shard's slice of the layout: which series it
	// holds and which global groups it scans. The coordinator validates
	// the partition against it at assembly.
	Info() ShardInfo
	// ScanBest runs the tightening-bound argmin representative scan over
	// the shard's owned groups of one length (the compareRep step of
	// Algorithm 2.A, restricted to this shard).
	ScanBest(ctx context.Context, req ScanBestRequest) (ScanBestResponse, error)
	// ScanFixed runs the fixed-cutoff representative cascade of the k-NN
	// scan over the shard's owned groups of one length, returning the
	// survivors in ascending global-group order.
	ScanFixed(ctx context.Context, req ScanFixedRequest) (ScanFixedResponse, error)
	// EvalMembers evaluates one round of group members against a bound
	// snapshot: per item, LB_Kim and the early-abandoning DTW — the remote
	// half of the coordinator's round-replay mining (see Processor.evalRound).
	EvalMembers(ctx context.Context, req EvalMembersRequest) (EvalMembersResponse, error)
	// Range answers a range query over the shard's restriction with
	// results remapped to global series/group ids.
	Range(ctx context.Context, req RangeRequest) (RangeResponse, error)
	// Stats reports the shard's resident index population (serving
	// observability; remote transports may serve a cached value).
	Stats() ShardStats
	// Close releases transport resources (idle connections); the zero-cost
	// local transport no-ops.
	Close() error
}

// ShardInfo is a shard's slice of the layout.
type ShardInfo struct {
	// Shard is the shard index within the layout.
	Shard int `json:"shard"`
	// Series lists the global series ids the shard holds, ascending.
	Series []int `json:"series"`
	// Owned maps each indexed length to the global group ids whose
	// representative this shard scans, ascending. Exactly one shard owns
	// each global group.
	Owned map[int][]int `json:"owned"`
}

// ShardStats is one shard's resident index population.
type ShardStats struct {
	// Series counts the series routed to the shard.
	Series int `json:"series"`
	// Groups counts the restricted groups across lengths.
	Groups int `json:"groups"`
	// Subsequences counts the indexed subsequences resident in the shard.
	Subsequences int64 `json:"subsequences"`
	// IndexBytes estimates the shard's GTI+LSI size.
	IndexBytes int64 `json:"indexBytes"`
}

// WorkerObs is the worker-side observability payload riding in each query
// response. WallMicros is always populated by remote workers (one integer,
// cheap enough to pay untraced) so the coordinator can passively attribute
// call wall time to worker compute vs wire overhead. Spans carry the
// worker's own recorded spans — present only when the coordinator asked
// for tracing (the X-Onex-Trace request header) — with StartMicros offsets
// in the worker handler's timebase; the coordinator rebases them into the
// request trace.
//
// The payload is strictly observational: LocalShard leaves Obs nil, and no
// coordinator decision reads it, so answers stay bit-identical across
// transports.
type WorkerObs struct {
	WallMicros int64      `json:"wallMicros"`
	Spans      []obs.Span `json:"spans,omitempty"`
}

// ObsPayload returns the response's worker observability payload (nil for
// local transports). Each query response implements it so transport
// clients can extract the payload generically.
func (r *ScanBestResponse) ObsPayload() *WorkerObs    { return r.Obs }
func (r *ScanFixedResponse) ObsPayload() *WorkerObs   { return r.Obs }
func (r *EvalMembersResponse) ObsPayload() *WorkerObs { return r.Obs }
func (r *RangeResponse) ObsPayload() *WorkerObs       { return r.Obs }

// MemberRef addresses one group member on the wire: the global series id
// and window start (the window length is the request's Length). The member
// values are reconstructed shard-side from the shipped series, bit-exact.
type MemberRef struct {
	Series int `json:"series"`
	Start  int `json:"start"`
}

// ScanBestRequest asks for the argmin representative over the shard's
// owned groups of one length.
type ScanBestRequest struct {
	Length int       `json:"length"`
	Query  []float64 `json:"query"`
	// HintBits is the coordinator's best-so-far bound as Float64bits — an
	// upper cutoff hint for early abandoning. The Scatter coordinator pins
	// it to +Inf for Q1 (the per-length argmin feeds the pivot walk and
	// the Sec. 5.3 early-stop rule, so external pruning would corrupt it),
	// but the protocol carries it for bound-aware scans.
	HintBits uint64 `json:"hintBits"`
	// Workers bounds the shard-side fan-out of the scan (answer-invariant;
	// see Processor.scanReps).
	Workers int `json:"workers"`
}

// ScanBestResponse is the shard-local argmin. BestBits is the raw
// (unnormalized) DTW as Float64bits; ties on bit-equal distances resolve
// to the smallest global group id, matching the monolithic scan order.
type ScanBestResponse struct {
	Found    bool       `json:"found"`
	GroupID  int        `json:"groupId"`
	BestBits uint64     `json:"bestBits"`
	Trace    Trace      `json:"trace"`
	Obs      *WorkerObs `json:"obs,omitempty"`
}

// ScanFixedRequest asks for the fixed-cutoff k-NN representative cascade
// over the shard's owned groups of one length. CutoffBits is the raw
// cutoff (k-th distance × divisor + group radius) as Float64bits — +Inf
// until the heap fills.
type ScanFixedRequest struct {
	Length     int       `json:"length"`
	Query      []float64 `json:"query"`
	CutoffBits uint64    `json:"cutoffBits"`
	Workers    int       `json:"workers"`
}

// FixedHit is one representative that survived the fixed-cutoff cascade.
// Dist is finite (survivors are exactly the non-abandoned DTWs), so it
// travels as a plain float64.
type FixedHit struct {
	GroupID int     `json:"groupId"`
	Dist    float64 `json:"dist"`
}

// ScanFixedResponse lists the surviving representatives in ascending
// global-group order.
type ScanFixedResponse struct {
	Hits  []FixedHit `json:"hits"`
	Trace Trace      `json:"trace"`
	Obs   *WorkerObs `json:"obs,omitempty"`
}

// EvalMembersRequest asks for one round of member evaluations against a
// bound snapshot: per item, LB_Kim and the early-abandoning DTW at
// BoundBits (Float64bits; +Inf while no bound exists). Items reference
// members of ONE global group, all resident on this shard.
type EvalMembersRequest struct {
	Length    int         `json:"length"`
	Query     []float64   `json:"query"`
	BoundBits uint64      `json:"boundBits"`
	Workers   int         `json:"workers"`
	Items     []MemberRef `json:"items"`
}

// EvalMembersResponse carries the round results positionally: LbBits[i]
// and DsBits[i] answer Items[i] (both as Float64bits — ds is +Inf when
// the lower bound already proves the member hopeless or the DTW abandons).
// DTWComputed counts the DTWs that actually ran (Trace accounting).
type EvalMembersResponse struct {
	LbBits      []uint64   `json:"lbBits"`
	DsBits      []uint64   `json:"dsBits"`
	DTWComputed int        `json:"dtwComputed"`
	Obs         *WorkerObs `json:"obs,omitempty"`
}

// RangeRequest asks for a range search over the shard's restriction.
type RangeRequest struct {
	Length  int       `json:"length"`
	Query   []float64 `json:"query"`
	Radius  float64   `json:"radius"`
	Exact   bool      `json:"exact"`
	Workers int       `json:"workers"`
}

// RangeHit is one range result with global ids. Distances are finite
// (results are within the radius; the guaranteed path reports ST).
type RangeHit struct {
	Series     int     `json:"series"`
	Start      int     `json:"start"`
	Dist       float64 `json:"dist"`
	RawDTW     float64 `json:"rawDtw"`
	GroupID    int     `json:"groupId"`
	Guaranteed bool    `json:"guaranteed"`
}

// RangeResponse lists the shard's range results in its group order.
type RangeResponse struct {
	Results []RangeHit `json:"results"`
	Trace   Trace      `json:"trace"`
	Obs     *WorkerObs `json:"obs,omitempty"`
}

// ---- shard shipping -----------------------------------------------------

// ShardSpec is the complete recipe for one shard's index: the shard's
// series (normalized values) plus the restriction of the global grouping
// to those series. A worker rebuilds the exact in-process index from it
// (BuildLocalShard runs the same rspace/query constructors the coordinator
// runs for a local shard, on the same inputs), so remote answers are
// bit-identical to local ones.
//
// Generation identifies one immutable incarnation of the shard's state:
// every maintenance step that touches the shard ships a fresh generation,
// and workers key their resident state by (Dataset, Generation, Shard) —
// the idempotency key that makes shipping and re-shipping safe to retry.
type ShardSpec struct {
	Dataset    string  `json:"dataset"`
	Generation string  `json:"generation"`
	Shard      int     `json:"shard"`
	Shards     int     `json:"shards"`
	ST         float64 `json:"st"`
	DcTopK     int     `json:"dcTopK"`
	// Opts are the query-processor options (parallelism defaults are
	// resolved worker-side).
	Opts    Options      `json:"opts"`
	Series  []SpecSeries `json:"series"`
	Lengths []SpecLength `json:"lengths"`
}

// SpecSeries is one shipped series: its global id and normalized values.
type SpecSeries struct {
	ID     int       `json:"id"`
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

// SpecLength is the restriction of one indexed length to the shard.
type SpecLength struct {
	Length int         `json:"length"`
	Groups []SpecGroup `json:"groups"`
}

// SpecGroup is the restriction of one global group: the shared
// representative, the shard-resident members (global series ids, ED order
// preserved) and whether this shard owns the representative scan.
type SpecGroup struct {
	GlobalID int          `json:"globalId"`
	Owned    bool         `json:"owned"`
	Rep      []float64    `json:"rep"`
	Members  []SpecMember `json:"members"`
}

// SpecMember is one shard-resident member with its global series id and
// the (finite) ED to the group representative.
type SpecMember struct {
	Series  int     `json:"series"`
	Start   int     `json:"start"`
	EDToRep float64 `json:"edToRep"`
}
