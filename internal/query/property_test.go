package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"onex/internal/dist"
	"onex/internal/grouping"
	"onex/internal/rspace"
	"onex/internal/ts"
)

// quickProcessor builds a processor over random data for property tests.
func quickProcessor(seed int64, st float64, lengths []int) (*Processor, *ts.Dataset, error) {
	r := rand.New(rand.NewSource(seed))
	d := &ts.Dataset{Name: "prop"}
	for i := 0; i < 5; i++ {
		v := make([]float64, 16)
		for j := range v {
			v[j] = r.Float64()
		}
		d.Append("", v)
	}
	gr, err := grouping.Build(d, grouping.Config{ST: st, Lengths: lengths, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	b, err := rspace.New(d, gr, rspace.Options{})
	if err != nil {
		return nil, nil, err
	}
	p, err := New(b, Options{})
	if err != nil {
		return nil, nil, err
	}
	return p, d, nil
}

// TestPropertyBestMatchDistanceReproducible: the reported distance always
// equals the normalized DTW between the query and the reported location,
// and is never below the exhaustive minimum.
func TestPropertyBestMatchDistanceReproducible(t *testing.T) {
	f := func(seed int64, qSeed int64) bool {
		p, d, err := quickProcessor(seed, 0.3, []int{6})
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(qSeed))
		q := make([]float64, 6)
		for i := range q {
			q[i] = r.Float64()
		}
		m, err := p.BestMatch(q, MatchExact)
		if err != nil {
			return false
		}
		v := d.Series[m.SeriesID].Values[m.Start : m.Start+6]
		if math.Abs(dist.NormalizedDTW(q, v)-m.Dist) > 1e-9 {
			return false
		}
		// Exhaustive lower bound.
		var w dist.Workspace
		div := dist.NormalizedDTWDivisor(6, 6)
		best := math.Inf(1)
		for _, s := range d.Series {
			for j := 0; j+6 <= s.Len(); j++ {
				if nd := w.DTW(q, s.Values[j:j+6]) / div; nd < best {
					best = nd
				}
			}
		}
		return m.Dist >= best-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyKNNOrderingAndBound: for random queries, BestKMatches returns
// sorted unique results whose first entry is never better than the
// exhaustive best (it is a heuristic, not magic) and never worse than the
// plain BestMatch answer.
func TestPropertyKNNConsistency(t *testing.T) {
	f := func(seed, qSeed int64) bool {
		p, _, err := quickProcessor(seed, 0.3, []int{6})
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(qSeed))
		q := make([]float64, 6)
		for i := range q {
			q[i] = r.Float64()
		}
		ms, err := p.BestKMatches(q, MatchExact, 4)
		if err != nil || len(ms) == 0 {
			return false
		}
		for i := 1; i < len(ms); i++ {
			if ms[i-1].Dist > ms[i].Dist+1e-12 {
				return false
			}
		}
		single, err := p.BestMatch(q, MatchExact)
		if err != nil {
			return false
		}
		return ms[0].Dist <= single.Dist+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAdaptMemberConservation: adapting to any positive ST′ must
// conserve the multiset of indexed subsequences.
func TestPropertyAdaptMemberConservation(t *testing.T) {
	f := func(seed int64, stRaw uint8) bool {
		p, _, err := quickProcessor(seed, 0.3, []int{5})
		if err != nil {
			return false
		}
		stPrime := 0.05 + float64(stRaw%50)/25 // (0.05, 2.05)
		ap, err := p.AdaptThreshold(stPrime)
		if err != nil {
			return false
		}
		count := func(pp *Processor) int {
			total := 0
			for _, g := range pp.Base().Entry(5).Groups {
				total += g.Count()
			}
			return total
		}
		return count(ap) == count(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRangeSearchNeverMisses compares RangeSearch against the
// exhaustive scan on random queries and radii.
func TestPropertyRangeSearchNeverMisses(t *testing.T) {
	f := func(seed, qSeed int64, radRaw uint8) bool {
		p, d, err := quickProcessor(seed, 0.3, []int{6})
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(qSeed))
		q := make([]float64, 6)
		for i := range q {
			q[i] = r.Float64()
		}
		radius := float64(radRaw%40) / 100 // [0, 0.39]
		res, err := p.RangeSearch(q, 6, radius)
		if err != nil {
			return false
		}
		got := map[[2]int]bool{}
		for _, m := range res {
			got[[2]int{m.SeriesID, m.Start}] = true
		}
		var w dist.Workspace
		div := dist.NormalizedDTWDivisor(6, 6)
		for _, s := range d.Series {
			for j := 0; j+6 <= s.Len(); j++ {
				if w.DTW(q, s.Values[j:j+6])/div <= radius && !got[[2]int{s.ID, j}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
