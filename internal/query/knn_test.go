package query

import (
	"math"
	"sort"
	"testing"

	"onex/internal/dist"
)

// bruteKNN is the exhaustive reference: all subsequences of the given
// lengths ranked by normalized DTW.
func bruteKNN(p *Processor, q []float64, lengths []int, k int) []Match {
	var all []Match
	var w dist.Workspace
	d := p.Base().Dataset
	for _, l := range lengths {
		div := dist.NormalizedDTWDivisor(len(q), l)
		for _, s := range d.Series {
			for j := 0; j+l <= s.Len(); j++ {
				raw := w.DTW(q, s.Values[j:j+l])
				all = append(all, Match{SeriesID: s.ID, Start: j, Length: l, Dist: raw / div, RawDTW: raw})
			}
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Dist < all[b].Dist })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestBestKMatchesValidation(t *testing.T) {
	p := italyProcessor(t, []int{6})
	if _, err := p.BestKMatches(make([]float64, 6), MatchExact, 0); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := p.BestKMatches(nil, MatchExact, 3); err == nil {
		t.Error("empty query: want error")
	}
	if _, err := p.BestKMatches(make([]float64, 7), MatchExact, 3); err == nil {
		t.Error("unindexed length: want error")
	}
	if _, err := p.BestKMatches(make([]float64, 6), MatchMode(9), 3); err == nil {
		t.Error("bad mode: want error")
	}
}

func TestBestKMatchesOrderingAndUniqueness(t *testing.T) {
	p := italyProcessor(t, []int{8})
	d := p.Base().Dataset
	q := append([]float64(nil), d.Series[1].Values[4:12]...)
	ms, err := p.BestKMatches(q, MatchExact, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("got %d matches, want 5", len(ms))
	}
	seen := map[[3]int]bool{}
	for i, m := range ms {
		if i > 0 && ms[i-1].Dist > m.Dist+1e-12 {
			t.Fatalf("matches not sorted at %d: %v > %v", i, ms[i-1].Dist, m.Dist)
		}
		key := [3]int{m.SeriesID, m.Start, m.Length}
		if seen[key] {
			t.Fatalf("duplicate match %v", key)
		}
		seen[key] = true
		// Distances must be reproducible from the locations.
		v := d.Series[m.SeriesID].Values[m.Start : m.Start+m.Length]
		if got := dist.NormalizedDTW(q, v); math.Abs(got-m.Dist) > 1e-9 {
			t.Fatalf("match %d distance %v != recomputed %v", i, m.Dist, got)
		}
	}
}

func TestBestKMatchesK1AtLeastAsGoodAsBestMatch(t *testing.T) {
	p := italyProcessor(t, []int{8})
	d := p.Base().Dataset
	q := append([]float64(nil), d.Series[2].Values[3:11]...)
	q[0] += 0.05
	single, err := p.BestMatch(q, MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := p.BestKMatches(q, MatchExact, 1)
	if err != nil {
		t.Fatal(err)
	}
	// k-NN explores at least the 1-NN group (and possibly more), so its
	// top answer can only be equal or better.
	if ks[0].Dist > single.Dist+1e-9 {
		t.Errorf("k=1 result %v worse than BestMatch %v", ks[0].Dist, single.Dist)
	}
}

func TestBestKMatchesNearBruteForce(t *testing.T) {
	p := italyProcessor(t, []int{8})
	d := p.Base().Dataset
	q := append([]float64(nil), d.Series[0].Values[2:10]...)
	for i := range q {
		q[i] += 0.02 * float64(i%3)
	}
	const k = 5
	got, err := p.BestKMatches(q, MatchExact, k)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteKNN(p, q, []int{8}, k)
	// ONEX k-NN is approximate (group-pruned); its k-th distance must stay
	// within a small additive budget of the true k-th distance.
	if got[len(got)-1].Dist > want[len(want)-1].Dist+0.05 {
		t.Errorf("approximate k-th dist %v far above exact %v",
			got[len(got)-1].Dist, want[len(want)-1].Dist)
	}
	// And the top-1 must never be better than the true top-1.
	if got[0].Dist < want[0].Dist-1e-9 {
		t.Errorf("impossible: approx %v better than exact %v", got[0].Dist, want[0].Dist)
	}
}

func TestBestKMatchesAnyLength(t *testing.T) {
	p := italyProcessor(t, []int{5, 8, 11})
	d := p.Base().Dataset
	q := append([]float64(nil), d.Series[3].Values[1:9]...)
	ms, err := p.BestKMatches(q, MatchAny, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 7 {
		t.Fatalf("got %d matches", len(ms))
	}
	lengths := map[int]bool{}
	for _, m := range ms {
		lengths[m.Length] = true
	}
	if len(lengths) < 2 {
		t.Logf("note: all %d matches share one length (allowed)", len(ms))
	}
}

func TestBestKMatchesKLargerThanCandidates(t *testing.T) {
	p := italyProcessor(t, []int{8})
	q := append([]float64(nil), p.Base().Dataset.Series[0].Values[0:8]...)
	ms, err := p.BestKMatches(q, MatchExact, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range p.Base().Entry(8).Groups {
		total += g.Count()
	}
	if len(ms) > total {
		t.Fatalf("returned %d matches from %d candidates", len(ms), total)
	}
	if len(ms) == 0 {
		t.Fatal("no matches")
	}
}

func TestTopKHeap(t *testing.T) {
	h := newTopK(3)
	if !math.IsInf(h.kth(), 1) {
		t.Error("empty heap kth should be +Inf")
	}
	dists := []float64{0.5, 0.2, 0.9, 0.1, 0.7, 0.3}
	for i, d := range dists {
		h.push(Match{SeriesID: i, Length: 1, Dist: d})
	}
	out := h.sorted()
	if len(out) != 3 {
		t.Fatalf("kept %d, want 3", len(out))
	}
	want := []float64{0.1, 0.2, 0.3}
	for i := range want {
		if out[i].Dist != want[i] {
			t.Fatalf("sorted() = %v, want dists %v", out, want)
		}
	}
	if h.kth() != 0.3 {
		t.Errorf("kth = %v, want 0.3", h.kth())
	}
	// Duplicate locations are rejected.
	h.push(Match{SeriesID: 3, Length: 1, Dist: 0.05}) // same loc as the 0.1 entry? SeriesID 3, Start 0, Length 1 — yes
	out = h.sorted()
	if len(out) != 3 || out[0].Dist != 0.1 {
		t.Errorf("duplicate slipped in: %v", out)
	}
}
