package query

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"onex/internal/dist"
	"onex/internal/grouping"
	"onex/internal/rspace"
)

// AdaptThreshold implements Algorithm 2.C / Sec. 5.2: given a new similarity
// threshold ST′ it derives an adapted base from the precomputed groups
// without reclustering the raw data.
//
//   - ST′ == ST: the precomputed groups are returned as-is (a new Base view
//     sharing the group objects).
//   - ST′ <  ST: each group is split by re-running the Algorithm 1 loop over
//     its own members at radius ST′/2 — similarity at ST implies the members
//     are candidates at ST′, so no answer outside the group is possible.
//   - ST′ >  ST: pairs of groups with ST′ − ST ≥ Dc are merged; after each
//     merge the new representative (count-weighted average) and its Dc row
//     are recomputed and the cascade repeats while the condition holds
//     (the paper picks a random qualifying pair; we pick the smallest-Dc
//     pair to make adaptation deterministic, which is one of the paper's
//     admissible choices).
//
// The returned Processor owns a fresh rspace.Base (new GTI/LSI/SP-Space over
// the adapted groups) and leaves the original base untouched.
func (p *Processor) AdaptThreshold(stPrime float64) (*Processor, error) {
	if stPrime <= 0 || math.IsNaN(stPrime) || math.IsInf(stPrime, 0) {
		return nil, fmt.Errorf("query: adapted threshold must be positive, got %v", stPrime)
	}
	st := p.base.ST
	adapted := &grouping.Result{
		ST:       stPrime,
		Lengths:  append([]int(nil), p.base.Lengths...),
		ByLength: make(map[int]*grouping.LengthGroups, len(p.base.Lengths)),
	}
	adapted.TotalSubseq = p.base.TotalSubseq

	for _, l := range p.base.Lengths {
		e := p.base.Entry(l)
		var lg *grouping.LengthGroups
		switch {
		case stPrime == st:
			lg = &grouping.LengthGroups{Length: l, Groups: e.Groups}
		case stPrime < st:
			lg = splitLength(p, e, stPrime)
		default:
			lg = mergeLength(p, e, stPrime-st)
		}
		adapted.ByLength[l] = lg
	}

	nb, err := rspace.New(p.base.Dataset, adapted, rspace.Options{TopK: p.base.TopK})
	if err != nil {
		return nil, err
	}
	return New(nb, p.opts)
}

// splitLength re-clusters each group's members at the smaller radius
// ST′/2 using the same nearest-representative pass as Algorithm 1. Member
// order is a seeded shuffle (seeded by length and group) so adaptation is
// deterministic.
func splitLength(p *Processor, e *rspace.LengthEntry, stPrime float64) *grouping.LengthGroups {
	lg := &grouping.LengthGroups{Length: e.Length}
	radiusSq := float64(e.Length) * stPrime * stPrime / 4
	invSqrtL := 1 / math.Sqrt(float64(e.Length))
	for gi, g := range e.Groups {
		members := append([]grouping.Member(nil), g.Members...)
		r := rand.New(rand.NewSource(int64(e.Length)*1_000_003 + int64(gi)))
		r.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })

		type building struct {
			rep, sum []float64
			members  []grouping.Member
		}
		var subs []*building
		for _, m := range members {
			v := p.base.MemberValues(g, m)
			bestSq := math.Inf(1)
			bestIdx := -1
			for si, sub := range subs {
				cutoff := radiusSq
				if bestSq < cutoff {
					cutoff = bestSq
				}
				sq := dist.SquaredEDEarlyAbandon(v, sub.rep, cutoff)
				if sq < bestSq {
					bestSq = sq
					bestIdx = si
				}
			}
			if bestIdx >= 0 && bestSq <= radiusSq {
				sub := subs[bestIdx]
				sub.members = append(sub.members, m)
				for i, x := range v {
					sub.sum[i] += x
				}
				inv := 1 / float64(len(sub.members))
				for i := range sub.rep {
					sub.rep[i] = sub.sum[i] * inv
				}
			} else {
				subs = append(subs, &building{
					rep:     append([]float64(nil), v...),
					sum:     append([]float64(nil), v...),
					members: []grouping.Member{m},
				})
			}
		}
		for _, sub := range subs {
			ng := &grouping.Group{
				Length:  e.Length,
				ID:      len(lg.Groups),
				Rep:     sub.rep,
				Members: sub.members,
			}
			for mi := range ng.Members {
				m := &ng.Members[mi]
				v := p.base.Dataset.Series[m.SeriesIdx].Values[m.Start : m.Start+e.Length]
				m.EDToRep = dist.ED(v, ng.Rep) * invSqrtL
			}
			sort.Slice(ng.Members, func(a, b int) bool {
				return ng.Members[a].EDToRep < ng.Members[b].EDToRep
			})
			lg.Groups = append(lg.Groups, ng)
		}
	}
	return lg
}

// mergeLength cascades pairwise merges while some pair satisfies
// ST′ − ST ≥ Dc (Algorithm 2.C case 3.2a). delta is ST′ − ST.
func mergeLength(p *Processor, e *rspace.LengthEntry, delta float64) *grouping.LengthGroups {
	type merged struct {
		rep, sum []float64
		count    int
		members  []grouping.Member
	}
	ms := make([]*merged, len(e.Groups))
	for i, g := range e.Groups {
		sum := make([]float64, len(g.Rep))
		for j, v := range g.Rep {
			sum[j] = v * float64(g.Count())
		}
		ms[i] = &merged{
			rep:     append([]float64(nil), g.Rep...),
			sum:     sum,
			count:   g.Count(),
			members: append([]grouping.Member(nil), g.Members...),
		}
	}
	invSqrtL := 1 / math.Sqrt(float64(e.Length))
	dcOf := func(a, b *merged) float64 {
		return dist.ED(a.rep, b.rep) * invSqrtL
	}

	// Cascade: repeatedly merge the closest qualifying pair. O(g³) worst
	// case with small constants; g per length is small by design (Fig. 6).
	for {
		bestA, bestB := -1, -1
		bestDc := math.Inf(1)
		for a := 0; a < len(ms); a++ {
			for b := a + 1; b < len(ms); b++ {
				if dc := dcOf(ms[a], ms[b]); dc <= delta && dc < bestDc {
					bestDc, bestA, bestB = dc, a, b
				}
			}
		}
		if bestA < 0 {
			break
		}
		a, b := ms[bestA], ms[bestB]
		for i := range a.sum {
			a.sum[i] += b.sum[i]
		}
		a.count += b.count
		a.members = append(a.members, b.members...)
		inv := 1 / float64(a.count)
		for i := range a.rep {
			a.rep[i] = a.sum[i] * inv
		}
		ms = append(ms[:bestB], ms[bestB+1:]...)
	}

	lg := &grouping.LengthGroups{Length: e.Length}
	for _, m := range ms {
		ng := &grouping.Group{
			Length:  e.Length,
			ID:      len(lg.Groups),
			Rep:     m.rep,
			Members: m.members,
		}
		for mi := range ng.Members {
			mm := &ng.Members[mi]
			v := p.base.Dataset.Series[mm.SeriesIdx].Values[mm.Start : mm.Start+e.Length]
			mm.EDToRep = dist.ED(v, ng.Rep) * invSqrtL
		}
		sort.Slice(ng.Members, func(x, y int) bool {
			return ng.Members[x].EDToRep < ng.Members[y].EDToRep
		})
		lg.Groups = append(lg.Groups, ng)
	}
	return lg
}
