package query

import (
	"fmt"

	"onex/internal/grouping"
	"onex/internal/obs"
)

// SeasonalGroup is one answer unit of query class II: an ONEX similarity
// group whose listed members recur (all mutually similar, Lemma 1).
type SeasonalGroup struct {
	// Length and GroupID identify the source group G^Length_GroupID.
	Length, GroupID int
	// Members are the recurring subsequences (≥ 2 of them).
	Members []grouping.Member
	// Rep is the group representative, useful for display.
	Rep []float64
}

// SeasonalSample answers the user-driven class II query (Algorithm 2.B,
// queryType=Single): all groups of the given length containing at least two
// subsequences of the sample series — i.e. the sample's recurring intra-
// series similarity patterns.
func (p *Processor) SeasonalSample(seriesID, length int) ([]SeasonalGroup, error) {
	return p.SeasonalSampleObserved(seriesID, length, nil)
}

// SeasonalSampleObserved is SeasonalSample with span recording. Seasonal
// queries read the grouping directly — no lower-bound cascade runs — so
// the span carries enumeration sizes and nothing folds into the work
// counters beyond the Queries tick (its cascade trace is genuinely empty).
func (p *Processor) SeasonalSampleObserved(seriesID, length int, rec *obs.Trace) ([]SeasonalGroup, error) {
	p.counters.tick()
	e := p.base.Entry(length)
	if e == nil {
		return nil, fmt.Errorf("query: length %d not indexed", length)
	}
	if seriesID < 0 || seriesID >= p.base.Dataset.N() {
		return nil, fmt.Errorf("query: series %d out of range [0,%d)", seriesID, p.base.Dataset.N())
	}
	var sc obs.SpanScope
	if rec != nil {
		sc = rec.StartSpan("seasonal")
	}
	var out []SeasonalGroup
	for k, g := range e.Groups {
		var mine []grouping.Member
		for _, m := range g.Members {
			if m.SeriesIdx == seriesID {
				mine = append(mine, m)
			}
		}
		if len(mine) >= 2 {
			out = append(out, SeasonalGroup{Length: length, GroupID: k, Members: mine, Rep: g.Rep})
		}
	}
	if rec != nil {
		seasonalSpan(sc, length, len(e.Groups), out).End()
	}
	return out, nil
}

// SeasonalAll answers the data-driven class II query (Algorithm 2.B,
// queryType=NULL): every group of the given length holding at least two
// subsequences — the dataset's recurring similarity patterns at that scale.
func (p *Processor) SeasonalAll(length int) ([]SeasonalGroup, error) {
	return p.SeasonalAllObserved(length, nil)
}

// SeasonalAllObserved is SeasonalAll with span recording (see
// SeasonalSampleObserved for what seasonal spans carry).
func (p *Processor) SeasonalAllObserved(length int, rec *obs.Trace) ([]SeasonalGroup, error) {
	p.counters.tick()
	e := p.base.Entry(length)
	if e == nil {
		return nil, fmt.Errorf("query: length %d not indexed", length)
	}
	var sc obs.SpanScope
	if rec != nil {
		sc = rec.StartSpan("seasonal")
	}
	var out []SeasonalGroup
	for k, g := range e.Groups {
		if g.Count() >= 2 {
			out = append(out, SeasonalGroup{Length: length, GroupID: k, Members: g.Members, Rep: g.Rep})
		}
	}
	if rec != nil {
		seasonalSpan(sc, length, len(e.Groups), out).End()
	}
	return out, nil
}

// seasonalSpan annotates a seasonal span with its enumeration sizes.
func seasonalSpan(sc obs.SpanScope, length, groups int, out []SeasonalGroup) obs.SpanScope {
	members := 0
	for _, g := range out {
		members += len(g.Members)
	}
	return sc.Attr("length", int64(length)).
		Attr("groupsScanned", int64(groups)).
		Attr("patterns", int64(len(out))).
		Attr("members", int64(members))
}
