package query

import (
	"fmt"
	"math"

	"onex/internal/dist"
	"onex/internal/obs"
	"onex/internal/parallel"
)

// RangeResult is one subsequence returned by a range search.
type RangeResult struct {
	Match
	// Guaranteed is true when the match was admitted through the Lemma 2
	// guarantee (its group representative was within ST/2 of the query)
	// without needing an individual verification. Under RangeSearch,
	// guaranteed results report the ST upper bound in Dist — NOT an exact
	// distance (sorting or re-thresholding on Dist is wrong for them);
	// RangeSearchExact computes their true DTW instead.
	Guaranteed bool
}

// RangeSearch answers range queries (a target class the paper's related
// work highlights, Sec. 7): every subsequence of the given length whose
// normalized DTW (Def. 6) to q is within radius. This is where the paper's
// ED↔DTW triangle inequality pays off directly, in both directions:
//
//   - Admission (Lemma 2): when radius ≥ ST and DTW̄(q, R) ≤ ST/2, every
//     member of R's group is within ST ≤ radius — the whole group is
//     admitted with zero member DTW computations (Guaranteed=true).
//
//   - Pruning (the same path argument, reversed): for an optimal warping
//     path P of DTW(q, y′) — which is also a valid path of the q×R matrix,
//     R and y′ having equal length — Minkowski's inequality gives
//     DTW(q, R) ≤ DTW(q, y′) + √m·ED(R, y′), m = len(q), since a path
//     revisits any column at most m times. Therefore
//     DTW(q, y′) ≥ DTW(q, R) − √m·ED(R, y′): a group whose representative
//     is farther than rawRadius + √m·maxMemberED cannot contain a match and
//     is skipped without touching its members.
//
// Members of the remaining groups are verified individually with
// early-abandoning DTW and carry exact distances; wholesale-admitted members
// carry the ST upper bound in Dist (see RangeResult.Guaranteed). Results are
// unordered.
func (p *Processor) RangeSearch(q []float64, length int, radius float64) ([]RangeResult, error) {
	return p.RangeSearchObserved(q, length, radius, false, nil)
}

// RangeSearchExact is RangeSearch with exact reported distances: members
// admitted wholesale through the Lemma 2 guarantee get their true DTW
// computed (the guarantee still saves the early-abandon cutoff work and the
// admission decision) and are filtered against the radius like every other
// member. The result set is therefore exactly the subsequences whose
// normalized DTW is within radius — independent of how the base happens to
// be grouped — at the cost of one DTW per guaranteed member.
func (p *Processor) RangeSearchExact(q []float64, length int, radius float64) ([]RangeResult, error) {
	return p.RangeSearchObserved(q, length, radius, true, nil)
}

// RangeSearchObserved is the range search with work accounting: the
// cascade's trace folds into the lifetime Counters and, with a non-nil
// rec, a "range-scan" span and the query's work totals are recorded.
// Range work is per-group against a fixed radius, so the counters are
// identical at every Parallelism setting.
func (p *Processor) RangeSearchObserved(q []float64, length int, radius float64,
	exact bool, rec *obs.Trace) ([]RangeResult, error) {

	var tr Trace
	defer func() { p.counters.tick(); p.counters.fold(tr); observe(rec, tr) }()
	return p.rangeSearch(q, length, radius, exact, &tr, rec)
}

// rangeSearch answers one range query, accumulating work into the
// caller-owned tr (the scatter executor passes one tr across every shard
// so the whole query folds into the global tally exactly once).
func (p *Processor) rangeSearch(q []float64, length int, radius float64,
	exact bool, tr *Trace, rec *obs.Trace) ([]RangeResult, error) {

	if err := validateQuery(q); err != nil {
		return nil, err
	}
	if radius < 0 || math.IsNaN(radius) || math.IsInf(radius, 0) {
		return nil, fmt.Errorf("query: invalid range radius %v", radius)
	}
	e := p.base.Entry(length)
	if e == nil {
		return nil, fmt.Errorf("query: length %d not indexed", length)
	}
	divisor := dist.NormalizedDTWDivisor(len(q), length)
	sqrtM := math.Sqrt(float64(len(q)))
	sqrtL := math.Sqrt(float64(length))
	wholesale := radius >= p.base.ST

	var sc obs.SpanScope
	var pre Trace
	if rec != nil {
		pre = *tr
		sc = rec.StartSpan("range-scan")
	}
	// Each group's admission/verification depends only on the query and the
	// fixed radius — never on other groups — so the group loop shards across
	// the worker pool verbatim; per-group result slices are concatenated in
	// group order so the output is identical to the sequential scan (and so
	// are the per-group work counters).
	searchGroup := func(ws *dist.Workspace, k int, tr *Trace) []RangeResult {
		g := e.Groups[k]
		n := g.Count()
		if n == 0 {
			return nil
		}
		var out []RangeResult
		// Widest member deviation in raw-ED units (LSI is sorted ascending).
		maxRawED := g.Members[n-1].EDToRep * sqrtL
		pruneCutoff := radius*divisor + sqrtM*maxRawED
		tr.RepsExamined++
		tr.DTWComputed++
		repRaw := ws.DTWEarlyAbandon(q, g.Rep, dist.Unconstrained, pruneCutoff)
		if math.IsInf(repRaw, 1) {
			return nil // no member can reach the radius
		}

		verifyFrom := 0
		if wholesale && repRaw/divisor <= p.base.ST/2 {
			// Lemma 2 requires ED̄(member, R) ≤ ST/2; representatives drift
			// during construction, so admit exactly the sorted prefix that
			// satisfies the premise and verify any stragglers individually.
			for verifyFrom < n && g.Members[verifyFrom].EDToRep <= p.base.ST/2 {
				m := g.Members[verifyFrom]
				verifyFrom++
				// Reported distance: the Lemma 2 upper bound (exactly ST —
				// not round-tripped through the divisor), or in exact mode
				// the true DTW (the guarantee proves DTW̄ ≤ ST
				// mathematically, so no abandon can fire below the radius),
				// filtered like any verified member so the result set
				// matches a brute-force scan bit for bit.
				nd, d := p.base.ST, p.base.ST*divisor
				if exact {
					v := p.base.MemberValues(g, m)
					tr.MembersTested++
					tr.DTWComputed++
					d = ws.DTWEarlyAbandon(q, v, dist.Unconstrained, radius*divisor)
					nd = d / divisor
					if nd > radius {
						continue
					}
				}
				out = append(out, RangeResult{
					Match: Match{
						SeriesID: m.SeriesIdx,
						Start:    m.Start,
						Length:   length,
						Dist:     nd,
						RawDTW:   d,
						GroupID:  k,
					},
					Guaranteed: true,
				})
			}
		}

		for _, m := range g.Members[verifyFrom:] {
			v := p.base.MemberValues(g, m)
			tr.MembersTested++
			if dist.LBKim(q, v) > radius*divisor {
				tr.PrunedByKim++
				continue
			}
			tr.DTWComputed++
			d := ws.DTWEarlyAbandon(q, v, dist.Unconstrained, radius*divisor)
			if nd := d / divisor; nd <= radius {
				out = append(out, RangeResult{
					Match: Match{
						SeriesID: m.SeriesIdx,
						Start:    m.Start,
						Length:   length,
						Dist:     nd,
						RawDTW:   d,
						GroupID:  k,
					},
				})
			}
		}
		return out
	}

	var out []RangeResult
	if p.workers <= 1 || len(e.Groups) < 4 {
		ws := p.pool.Get()
		for k := range e.Groups {
			out = append(out, searchGroup(ws, k, tr)...)
		}
		p.pool.Put(ws)
	} else {
		perGroup := make([][]RangeResult, len(e.Groups))
		trs := make([]Trace, len(e.Groups))
		parallel.ForEach(p.workers, len(e.Groups), func(k int) {
			ws := p.pool.Get()
			defer p.pool.Put(ws)
			perGroup[k] = searchGroup(ws, k, &trs[k])
		})
		for k, rs := range perGroup {
			tr.add(trs[k])
			out = append(out, rs...)
		}
	}
	if rec != nil {
		spanWork(sc.Attr("length", int64(length)).
			Attr("groups", int64(len(e.Groups))).
			Attr("results", int64(len(out))), pre, *tr).End()
	}
	return out, nil
}
