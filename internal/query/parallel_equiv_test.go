package query

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"onex/internal/grouping"
	"onex/internal/rspace"
	"onex/internal/ts"
)

// equivDataset builds a random-walk dataset whose group structure is rich
// enough to cross the parallel-path thresholds (≥ scanParallelMin reps at
// tight thresholds, ≥ 2·mineBatchSize members per group at loose ones).
func equivDataset(seed int64, n, length int) *ts.Dataset {
	r := rand.New(rand.NewSource(seed))
	d := &ts.Dataset{Name: fmt.Sprintf("equiv-%d", seed)}
	for i := 0; i < n; i++ {
		v := make([]float64, length)
		x := r.Float64()
		for j := range v {
			x += r.NormFloat64() * 0.1
			v[j] = x
		}
		d.Append("", v)
	}
	if err := d.NormalizeMinMax(); err != nil {
		panic(err)
	}
	return d
}

// equivProcessors builds two processors over the same base differing only
// in Parallelism.
func equivProcessors(t *testing.T, d *ts.Dataset, st float64, lengths []int, opts Options) (seq, par *Processor) {
	t.Helper()
	gr, err := grouping.Build(d, grouping.Config{ST: st, Lengths: lengths, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rspace.New(d, gr, rspace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sOpts, pOpts := opts, opts
	sOpts.Parallelism, pOpts.Parallelism = 1, 8
	if seq, err = New(b, sOpts); err != nil {
		t.Fatal(err)
	}
	if par, err = New(b, pOpts); err != nil {
		t.Fatal(err)
	}
	return seq, par
}

// randomQuery draws either an in-dataset window (possibly perturbed) or a
// fresh random walk.
func randomQuery(r *rand.Rand, d *ts.Dataset, length int) []float64 {
	q := make([]float64, length)
	if r.Intn(2) == 0 {
		s := d.Series[r.Intn(d.N())]
		start := r.Intn(s.Len() - length + 1)
		copy(q, s.Values[start:start+length])
		if r.Intn(2) == 0 {
			for i := range q {
				q[i] += r.NormFloat64() * 0.02
			}
		}
		return q
	}
	x := r.Float64()
	for i := range q {
		x += r.NormFloat64() * 0.1
		q[i] = x
	}
	return q
}

func sameMatch(t *testing.T, ctx string, a, b Match) {
	t.Helper()
	if a.SeriesID != b.SeriesID || a.Start != b.Start || a.Length != b.Length || a.GroupID != b.GroupID {
		t.Fatalf("%s: match identity differs: seq=%+v par=%+v", ctx, a, b)
	}
	if math.Abs(a.Dist-b.Dist) > 1e-12 {
		t.Fatalf("%s: distance differs: seq=%v par=%v", ctx, a.Dist, b.Dist)
	}
}

// TestParallelEquivalenceBestMatch drives hundreds of random (dataset,
// query) pairs through Parallelism=1 and Parallelism=8 processors and
// requires identical answers: same subsequence, same group, distance within
// 1e-12. Thresholds are swept from tight (many groups → parallel rep scan)
// to loose (few huge groups → parallel group mining).
func TestParallelEquivalenceBestMatch(t *testing.T) {
	sts := []float64{0.05, 0.15, 0.3, 0.8}
	queries := 0
	for ds := 0; ds < 10; ds++ {
		d := equivDataset(int64(100+ds), 14, 48)
		st := sts[ds%len(sts)]
		seq, par := equivProcessors(t, d, st, []int{8, 12, 20}, Options{})
		r := rand.New(rand.NewSource(int64(900 + ds)))
		for qi := 0; qi < 10; qi++ {
			qlen := []int{8, 12, 20, 15}[qi%4] // 15 is unindexed → MatchAny length walk
			q := randomQuery(r, d, qlen)
			for _, mode := range []MatchMode{MatchExact, MatchAny} {
				ctx := fmt.Sprintf("ds=%d st=%v qlen=%d mode=%d", ds, st, qlen, mode)
				ms, trs, errS := seq.BestMatchTraced(q, mode)
				mp, trp, errP := par.BestMatchTraced(q, mode)
				if (errS == nil) != (errP == nil) {
					t.Fatalf("%s: error divergence: seq=%v par=%v", ctx, errS, errP)
				}
				if errS != nil {
					continue
				}
				sameMatch(t, ctx, ms, mp)
				// The logical walk is identical, so the decision-level
				// counters must agree exactly (only DTWComputed may differ:
				// parallelism affects which DTWs are proven vs computed).
				if trs.MembersTested != trp.MembersTested || trs.RepsExamined != trp.RepsExamined ||
					trs.LengthsVisited != trp.LengthsVisited {
					t.Fatalf("%s: decision counters diverge: seq=%+v par=%+v", ctx, trs, trp)
				}
				queries++
			}
		}
	}
	if queries < 150 {
		t.Fatalf("only %d successful equivalence checks; want hundreds", queries)
	}
}

// TestParallelEquivalenceBestKMatches: identical ordered k-NN result lists
// across parallelism settings.
func TestParallelEquivalenceBestKMatches(t *testing.T) {
	checks := 0
	for ds := 0; ds < 6; ds++ {
		d := equivDataset(int64(300+ds), 12, 40)
		st := []float64{0.08, 0.25, 0.9}[ds%3]
		seq, par := equivProcessors(t, d, st, []int{7, 11}, Options{})
		r := rand.New(rand.NewSource(int64(700 + ds)))
		for qi := 0; qi < 8; qi++ {
			q := randomQuery(r, d, []int{7, 11}[qi%2])
			for _, k := range []int{1, 3, 10} {
				ctx := fmt.Sprintf("ds=%d k=%d qi=%d", ds, k, qi)
				as, errS := seq.BestKMatches(q, MatchAny, k)
				ap, errP := par.BestKMatches(q, MatchAny, k)
				if (errS == nil) != (errP == nil) {
					t.Fatalf("%s: error divergence: seq=%v par=%v", ctx, errS, errP)
				}
				if errS != nil {
					continue
				}
				if len(as) != len(ap) {
					t.Fatalf("%s: result count differs: %d vs %d", ctx, len(as), len(ap))
				}
				for i := range as {
					sameMatch(t, fmt.Sprintf("%s i=%d", ctx, i), as[i], ap[i])
				}
				checks++
			}
		}
	}
	if checks < 100 {
		t.Fatalf("only %d k-NN equivalence checks; want hundreds of result lists", checks)
	}
}

// TestParallelEquivalenceRangeSearch: identical result sets, in identical
// (group-ordered) output order, including the Guaranteed wholesale flags.
func TestParallelEquivalenceRangeSearch(t *testing.T) {
	checks := 0
	for ds := 0; ds < 6; ds++ {
		d := equivDataset(int64(500+ds), 12, 40)
		st := []float64{0.1, 0.3, 0.7}[ds%3]
		seq, par := equivProcessors(t, d, st, []int{9}, Options{})
		r := rand.New(rand.NewSource(int64(800 + ds)))
		for qi := 0; qi < 8; qi++ {
			q := randomQuery(r, d, 9)
			for _, radius := range []float64{st / 2, st, 2 * st} {
				ctx := fmt.Sprintf("ds=%d radius=%v qi=%d", ds, radius, qi)
				rs, errS := seq.RangeSearch(q, 9, radius)
				rp, errP := par.RangeSearch(q, 9, radius)
				if (errS == nil) != (errP == nil) {
					t.Fatalf("%s: error divergence: seq=%v par=%v", ctx, errS, errP)
				}
				if len(rs) != len(rp) {
					t.Fatalf("%s: result count differs: %d vs %d", ctx, len(rs), len(rp))
				}
				for i := range rs {
					if rs[i].Guaranteed != rp[i].Guaranteed {
						t.Fatalf("%s i=%d: Guaranteed flag differs", ctx, i)
					}
					sameMatch(t, fmt.Sprintf("%s i=%d", ctx, i), rs[i].Match, rp[i].Match)
				}
				checks++
			}
		}
	}
	if checks < 100 {
		t.Fatalf("only %d range equivalence checks", checks)
	}
}

// TestParallelEquivalenceHugeGroup pins the batched group-mining path
// specifically: a loose threshold collapses everything into one giant group
// (hundreds of members ≥ 2·mineBatchSize), where patience decisions are the
// part that must replay identically.
func TestParallelEquivalenceHugeGroup(t *testing.T) {
	d := equivDataset(4242, 24, 64)
	for _, patience := range []int{0, 5, -1} {
		seq, par := equivProcessors(t, d, 2.0, []int{16}, Options{Patience: patience})
		if g := seq.Base().Entry(16).Groups; len(g) > 4 {
			t.Fatalf("threshold not loose enough: %d groups", len(g))
		}
		r := rand.New(rand.NewSource(99))
		for qi := 0; qi < 20; qi++ {
			q := randomQuery(r, d, 16)
			ms, trs, errS := seq.BestMatchTraced(q, MatchExact)
			mp, trp, errP := par.BestMatchTraced(q, MatchExact)
			if errS != nil || errP != nil {
				t.Fatalf("patience=%d: unexpected errors %v / %v", patience, errS, errP)
			}
			ctx := fmt.Sprintf("patience=%d qi=%d", patience, qi)
			sameMatch(t, ctx, ms, mp)
			if trs.MembersTested != trp.MembersTested {
				t.Fatalf("%s: patience replay diverged: seq tested %d, par tested %d",
					ctx, trs.MembersTested, trp.MembersTested)
			}
		}
	}
}

// TestParallelEquivalenceExactTies pins the tie-break soundness of the
// parallel rep scan: constant series at ±c around the query produce
// representatives at *bit-identical* DTW distances in different groups, the
// one case where a shared-bound prune could otherwise hide the earlier
// median-order winner from the reduce. The parallel scan must pick the same
// group as the sequential scan on every repetition.
func TestParallelEquivalenceExactTies(t *testing.T) {
	d := &ts.Dataset{Name: "ties"}
	const L = 8
	constant := func(v float64) []float64 {
		s := make([]float64, L)
		for i := range s {
			s[i] = v
		}
		return s
	}
	// Tie pairs symmetric around 0.5, plus decoys so the entry crosses
	// scanParallelMin and the parallel path genuinely runs.
	for _, off := range []float64{0.1, 0.2, 0.3} {
		d.Append("hi", constant(0.5+off))
		d.Append("lo", constant(0.5-off))
	}
	for i := 0; i < 14; i++ {
		d.Append("decoy", constant(1.5+0.2*float64(i)))
	}
	seq, par := equivProcessors(t, d, 0.05, []int{L}, Options{})
	if got := len(seq.Base().Entry(L).Groups); got < scanParallelMin {
		t.Fatalf("only %d groups; parallel scan threshold not reached", got)
	}
	q := constant(0.5)
	want, _, err := seq.BestMatchTraced(q, MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 50; rep++ {
		got, _, err := par.BestMatchTraced(q, MatchExact)
		if err != nil {
			t.Fatal(err)
		}
		if got.GroupID != want.GroupID || got.SeriesID != want.SeriesID || got.Dist != want.Dist {
			t.Fatalf("rep %d: tie resolved differently: par %+v, seq %+v", rep, got, want)
		}
	}
}

// TestBestMatchBatchMatchesSingles: the batch API must agree query-by-query
// with individual BestMatch calls, including per-query validation errors.
func TestBestMatchBatchMatchesSingles(t *testing.T) {
	d := equivDataset(77, 12, 40)
	_, par := equivProcessors(t, d, 0.2, []int{8, 12}, Options{})
	r := rand.New(rand.NewSource(5))
	qs := make([][]float64, 0, 40)
	for i := 0; i < 34; i++ {
		qs = append(qs, randomQuery(r, d, []int{8, 12, 10}[i%3]))
	}
	// Malformed entries must fail individually, never panic.
	qs = append(qs, nil, []float64{}, []float64{1, math.NaN(), 3}, []float64{math.Inf(1)})

	for _, mode := range []MatchMode{MatchExact, MatchAny} {
		rs := par.BestMatchBatch(qs, mode)
		if len(rs) != len(qs) {
			t.Fatalf("batch returned %d results for %d queries", len(rs), len(qs))
		}
		for i, q := range qs {
			want, wantErr := par.BestMatch(q, mode)
			if (rs[i].Err == nil) != (wantErr == nil) {
				t.Fatalf("mode=%d q=%d: batch err %v, single err %v", mode, i, rs[i].Err, wantErr)
			}
			if wantErr != nil {
				continue
			}
			sameMatch(t, fmt.Sprintf("mode=%d q=%d", mode, i), want, rs[i].Match)
		}
	}
	if got := par.BestMatchBatch(nil, MatchAny); len(got) != 0 {
		t.Fatalf("nil batch returned %d results", len(got))
	}
}
