package query

import (
	"context"
	"fmt"
	"math"
	"sort"

	"onex/internal/dist"
	"onex/internal/grouping"
	"onex/internal/parallel"
	"onex/internal/rspace"
	"onex/internal/ts"
)

// LocalShard is the in-process ShardTransport: one shard's restricted
// index (a Processor over the restricted base) plus the local↔global
// translation tables. The sharded engine (internal/shard) wraps each of
// its parts in one; a worker process builds one from a shipped ShardSpec.
// Both construction paths run the same index derivation on the same
// inputs, so every transport response is bit-identical across them — the
// property the remote-equivalence suite enforces.
type LocalShard struct {
	proc  *Processor
	shard int
	// series maps local series index → global series id (ascending).
	series []int
	// localSeries inverts series: global series id → local index.
	localSeries map[int]int
	// globalIDs maps, per length, local group index → global group id.
	globalIDs map[int][]int
	// units lists, per length, the owned scan units sorted by global
	// group id (refreshed parts hold local orders that aren't sorted, so
	// the sort here is what fixes the scan's deterministic tie order).
	units map[int][]localUnit
}

// localUnit is one owned representative to scan.
type localUnit struct {
	local, global int
}

// NewLocalShard wraps an existing shard processor as a transport. series,
// globalIDs and owned are the part's translation tables: series maps local
// series index → global id; per length, globalIDs maps local group index →
// global group id and owned marks the local groups whose representative
// this shard scans.
func NewLocalShard(proc *Processor, shard int, series []int,
	globalIDs map[int][]int, owned map[int][]bool) (*LocalShard, error) {

	if proc == nil {
		return nil, fmt.Errorf("query: nil shard processor")
	}
	if n := proc.base.Dataset.N(); n != len(series) {
		return nil, fmt.Errorf("query: shard %d holds %d series but maps %d", shard, n, len(series))
	}
	ls := &LocalShard{
		proc:        proc,
		shard:       shard,
		series:      series,
		localSeries: make(map[int]int, len(series)),
		globalIDs:   globalIDs,
		units:       make(map[int][]localUnit, len(proc.base.Lengths)),
	}
	for li, gid := range series {
		ls.localSeries[gid] = li
	}
	for _, l := range proc.base.Lengths {
		e := proc.base.Entry(l)
		gids, own := globalIDs[l], owned[l]
		if len(gids) != len(e.Groups) || len(own) != len(e.Groups) {
			return nil, fmt.Errorf("query: shard tables for length %d cover %d/%d of %d groups",
				l, len(own), len(gids), len(e.Groups))
		}
		units := make([]localUnit, 0, len(e.Groups))
		for local, o := range own {
			if o {
				units = append(units, localUnit{local: local, global: gids[local]})
			}
		}
		sort.Slice(units, func(a, b int) bool { return units[a].global < units[b].global })
		ls.units[l] = units
	}
	return ls, nil
}

// BuildLocalShard derives a shard's index from its shipped spec: the
// sub-dataset, the restricted grouping (local ids assigned in spec order)
// and the full GTI/LSI layers — the exact constructors the coordinator
// runs for an in-process shard, on bit-identical inputs, so the resulting
// transport answers bit-identically to a local one.
func BuildLocalShard(spec ShardSpec) (*LocalShard, error) {
	if len(spec.Series) == 0 {
		return nil, fmt.Errorf("query: shard spec has no series")
	}
	data := &ts.Dataset{Name: fmt.Sprintf("%s#%d", spec.Dataset, spec.Shard)}
	series := make([]int, 0, len(spec.Series))
	localOf := make(map[int]int, len(spec.Series))
	for _, s := range spec.Series {
		localOf[s.ID] = len(series)
		series = append(series, s.ID)
		data.Append(s.Label, s.Values)
	}

	res := &grouping.Result{
		ST:       spec.ST,
		Lengths:  make([]int, 0, len(spec.Lengths)),
		ByLength: make(map[int]*grouping.LengthGroups, len(spec.Lengths)),
	}
	globalIDs := make(map[int][]int, len(spec.Lengths))
	owned := make(map[int][]bool, len(spec.Lengths))
	for _, sl := range spec.Lengths {
		res.Lengths = append(res.Lengths, sl.Length)
		lg := &grouping.LengthGroups{Length: sl.Length}
		gids := make([]int, 0, len(sl.Groups))
		own := make([]bool, 0, len(sl.Groups))
		for _, sg := range sl.Groups {
			members := make([]grouping.Member, 0, len(sg.Members))
			for _, m := range sg.Members {
				li, ok := localOf[m.Series]
				if !ok {
					return nil, fmt.Errorf("query: shard spec member references series %d not shipped", m.Series)
				}
				members = append(members, grouping.Member{
					SeriesIdx: li,
					Start:     m.Start,
					EDToRep:   m.EDToRep,
				})
			}
			if len(members) == 0 {
				return nil, fmt.Errorf("query: shard spec group %d of length %d has no members", sg.GlobalID, sl.Length)
			}
			lg.Groups = append(lg.Groups, &grouping.Group{
				Length:  sl.Length,
				ID:      len(lg.Groups),
				Rep:     sg.Rep,
				Members: members,
			})
			gids = append(gids, sg.GlobalID)
			own = append(own, sg.Owned)
			res.TotalSubseq += int64(len(members))
		}
		res.ByLength[sl.Length] = lg
		globalIDs[sl.Length] = gids
		owned[sl.Length] = own
	}

	base, err := rspace.New(data, res, rspace.Options{TopK: spec.DcTopK})
	if err != nil {
		return nil, err
	}
	proc, err := New(base, spec.Opts)
	if err != nil {
		return nil, err
	}
	return NewLocalShard(proc, spec.Shard, series, globalIDs, owned)
}

// Processor exposes the underlying shard processor (the sharded engine's
// maintenance path refreshes indexes through it).
func (ls *LocalShard) Processor() *Processor { return ls.proc }

// Info implements ShardTransport.
func (ls *LocalShard) Info() ShardInfo {
	info := ShardInfo{
		Shard:  ls.shard,
		Series: append([]int(nil), ls.series...),
		Owned:  make(map[int][]int, len(ls.units)),
	}
	for l, units := range ls.units {
		gids := make([]int, len(units))
		for i, u := range units {
			gids[i] = u.global
		}
		info.Owned[l] = gids
	}
	return info
}

// Stats implements ShardTransport.
func (ls *LocalShard) Stats() ShardStats {
	return ShardStats{
		Series:       len(ls.series),
		Groups:       ls.proc.base.TotalGroups(),
		Subsequences: ls.proc.base.TotalSubseq,
		IndexBytes:   ls.proc.base.SizeBytes(),
	}
}

// Close implements ShardTransport (no resources to release in-process).
func (ls *LocalShard) Close() error { return nil }

// reqWorkers resolves a request's worker budget (≥ 1).
func reqWorkers(w int) int {
	if w < 1 {
		return 1
	}
	return w
}

// ScanBest implements ShardTransport: the tightening-bound argmin scan
// over the shard's owned units of one length, in ascending global-group
// order. Pruning is strict (> cutoff) and the reduce breaks distance ties
// toward the smaller global id, so the response is deterministic at every
// worker count — the same guarantees Processor.scanReps' parallel branch
// makes (see the comment there for the argument).
func (ls *LocalShard) ScanBest(ctx context.Context, req ScanBestRequest) (ScanBestResponse, error) {
	if err := ctx.Err(); err != nil {
		return ScanBestResponse{}, err
	}
	if err := validateQuery(req.Query); err != nil {
		return ScanBestResponse{}, err
	}
	e := ls.proc.base.Entry(req.Length)
	if e == nil {
		return ScanBestResponse{}, fmt.Errorf("query: length %d not indexed", req.Length)
	}
	units := ls.units[req.Length]
	var tr Trace
	n := len(units)
	if n == 0 {
		return ScanBestResponse{BestBits: math.Float64bits(math.Inf(1))}, nil
	}
	q := req.Query
	hint := math.Float64frombits(req.HintBits)
	order := dist.QueryOrder(q)
	sameLen := req.Length == len(q)

	type hit struct {
		raw float64
		pos int
	}
	scan := func(lws *dist.Workspace, start, stride int, shared *parallel.MinBound, local *hit, ltr *Trace) {
		for pos := start; pos < n; pos += stride {
			u := units[pos]
			ltr.RepsExamined++
			cutoff := local.raw
			if hint < cutoff {
				cutoff = hint
			}
			if shared != nil {
				if sb := shared.Load(); sb < cutoff {
					cutoff = sb
				}
			}
			rep := e.Groups[u.local].Rep
			if !ls.proc.opts.DisableLowerBounds {
				if dist.LBKim(q, rep) > cutoff {
					ltr.PrunedByKim++
					continue
				}
				if sameLen {
					env := e.Envelopes[u.local]
					if lb := dist.LBKeoghOrdered(q, env.Upper, env.Lower, order, cutoff); lb > cutoff {
						ltr.PrunedByKeogh++
						continue
					}
				}
			}
			ltr.DTWComputed++
			d := lws.DTWEarlyAbandon(q, rep, dist.Unconstrained, cutoff)
			if d < local.raw {
				local.raw, local.pos = d, pos
				if shared != nil {
					shared.Relax(d)
				}
			}
		}
	}

	workers := reqWorkers(req.Workers)
	if workers > n {
		workers = n
	}
	win := hit{raw: math.Inf(1), pos: -1}
	if workers <= 1 || n < scanParallelMin {
		lws := ls.proc.pool.Get()
		scan(lws, 0, 1, nil, &win, &tr)
		ls.proc.pool.Put(lws)
	} else {
		shared := parallel.NewMinBound(math.Inf(1))
		locals := make([]hit, workers)
		traces := make([]Trace, workers)
		parallel.ForEach(workers, workers, func(w int) {
			lws := ls.proc.pool.Get()
			defer ls.proc.pool.Put(lws)
			locals[w] = hit{raw: math.Inf(1), pos: -1}
			scan(lws, w, workers, shared, &locals[w], &traces[w])
		})
		for _, t := range traces {
			tr.add(t)
		}
		for _, l := range locals {
			if l.pos < 0 {
				continue
			}
			if l.raw < win.raw || (l.raw == win.raw && l.pos < win.pos) {
				win = l
			}
		}
	}
	if win.pos < 0 {
		return ScanBestResponse{BestBits: math.Float64bits(math.Inf(1)), Trace: tr}, nil
	}
	return ScanBestResponse{
		Found:    true,
		GroupID:  units[win.pos].global,
		BestBits: math.Float64bits(win.raw),
		Trace:    tr,
	}, nil
}

// ScanFixed implements ShardTransport: the fixed-cutoff k-NN cascade over
// the owned units, survivors returned in ascending global-group order.
// The cutoff cannot tighten during the scan, so the per-unit decisions —
// and the work counters — are identical at every worker count.
func (ls *LocalShard) ScanFixed(ctx context.Context, req ScanFixedRequest) (ScanFixedResponse, error) {
	if err := ctx.Err(); err != nil {
		return ScanFixedResponse{}, err
	}
	if err := validateQuery(req.Query); err != nil {
		return ScanFixedResponse{}, err
	}
	e := ls.proc.base.Entry(req.Length)
	if e == nil {
		return ScanFixedResponse{}, fmt.Errorf("query: length %d not indexed", req.Length)
	}
	units := ls.units[req.Length]
	var tr Trace
	n := len(units)
	if n == 0 {
		return ScanFixedResponse{}, nil
	}
	q := req.Query
	cutoff := math.Float64frombits(req.CutoffBits)
	order := dist.QueryOrder(q)
	sameLen := req.Length == len(q)
	scanOne := func(lws *dist.Workspace, u localUnit, ltr *Trace) (float64, bool) {
		return ls.proc.scanRepFixed(lws, q, order,
			e.Groups[u.local].Rep, e.Envelopes[u.local], sameLen, cutoff, ltr)
	}

	workers := reqWorkers(req.Workers)
	if workers > n {
		workers = n
	}
	var hits []FixedHit
	if workers <= 1 || n < scanParallelMin {
		lws := ls.proc.pool.Get()
		hits = make([]FixedHit, 0, n)
		for _, u := range units {
			if d, ok := scanOne(lws, u, &tr); ok {
				hits = append(hits, FixedHit{GroupID: u.global, Dist: d})
			}
		}
		ls.proc.pool.Put(lws)
	} else {
		found := make([]FixedHit, n)
		kept := make([]bool, n)
		traces := make([]Trace, workers)
		parallel.ForEach(workers, workers, func(w int) {
			lws := ls.proc.pool.Get()
			defer ls.proc.pool.Put(lws)
			for i := w; i < n; i += workers {
				if d, ok := scanOne(lws, units[i], &traces[w]); ok {
					found[i] = FixedHit{GroupID: units[i].global, Dist: d}
					kept[i] = true
				}
			}
		})
		for _, t := range traces {
			tr.add(t)
		}
		hits = make([]FixedHit, 0, n)
		for i, ok := range kept {
			if ok {
				hits = append(hits, found[i])
			}
		}
	}
	return ScanFixedResponse{Hits: hits, Trace: tr}, nil
}

// EvalMembers implements ShardTransport: one round of member evaluations
// against the request's bound snapshot, positionally — the remote half of
// the coordinator's round-replay mining. LB_Kim and the early-abandoning
// DTW depend only on (query, member values, bound), all bit-identical
// across transports, so the response bits are too.
func (ls *LocalShard) EvalMembers(ctx context.Context, req EvalMembersRequest) (EvalMembersResponse, error) {
	if err := ctx.Err(); err != nil {
		return EvalMembersResponse{}, err
	}
	if err := validateQuery(req.Query); err != nil {
		return EvalMembersResponse{}, err
	}
	n := len(req.Items)
	if n == 0 {
		return EvalMembersResponse{}, nil
	}
	windows := make([][]float64, n)
	for i, it := range req.Items {
		li, ok := ls.localSeries[it.Series]
		if !ok {
			return EvalMembersResponse{}, fmt.Errorf("query: member series %d not on shard %d", it.Series, ls.shard)
		}
		values := ls.proc.base.Dataset.Series[li].Values
		if it.Start < 0 || it.Start+req.Length > len(values) {
			return EvalMembersResponse{}, fmt.Errorf("query: member window [%d,%d) outside series %d", it.Start, it.Start+req.Length, it.Series)
		}
		windows[i] = values[it.Start : it.Start+req.Length]
	}
	bound := math.Float64frombits(req.BoundBits)
	lbs := make([]float64, n)
	ds := make([]float64, n)
	exec := ls.proc.innerExec(reqWorkers(req.Workers))
	dtws := exec.evalRound(req.Query, n, bound, func(i int) []float64 { return windows[i] }, lbs, ds)
	resp := EvalMembersResponse{
		LbBits:      make([]uint64, n),
		DsBits:      make([]uint64, n),
		DTWComputed: dtws,
	}
	for i := range lbs {
		resp.LbBits[i] = math.Float64bits(lbs[i])
		resp.DsBits[i] = math.Float64bits(ds[i])
	}
	return resp, nil
}

// Range implements ShardTransport: the monolithic range search over the
// shard's restriction, results remapped to global series/group ids in the
// shard's group order.
func (ls *LocalShard) Range(ctx context.Context, req RangeRequest) (RangeResponse, error) {
	if err := ctx.Err(); err != nil {
		return RangeResponse{}, err
	}
	var tr Trace
	exec := ls.proc.innerExec(reqWorkers(req.Workers))
	rs, err := exec.rangeSearch(req.Query, req.Length, req.Radius, req.Exact, &tr, nil)
	if err != nil {
		return RangeResponse{}, err
	}
	gids := ls.globalIDs[req.Length]
	hits := make([]RangeHit, len(rs))
	for i, r := range rs {
		hits[i] = RangeHit{
			Series:     ls.series[r.SeriesID],
			Start:      r.Start,
			Dist:       r.Dist,
			RawDTW:     r.RawDTW,
			GroupID:    gids[r.GroupID],
			Guaranteed: r.Guaranteed,
		}
	}
	return RangeResponse{Results: hits, Trace: tr}, nil
}
