package query

import (
	"testing"

	"onex/internal/grouping"
	"onex/internal/rspace"
)

// allocProbe builds a small single-length processor and a valid query for
// the allocation guards (Parallelism 1 keeps goroutine machinery out of
// the counted path).
func allocProbe(tb testing.TB) (*Processor, []float64) {
	d := equivDataset(11, 8, 32)
	gr, err := grouping.Build(d, grouping.Config{ST: 0.25, Lengths: []int{8}, Seed: 5})
	if err != nil {
		tb.Fatal(err)
	}
	b, err := rspace.New(d, gr, rspace.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	p, err := New(b, Options{Parallelism: 1})
	if err != nil {
		tb.Fatal(err)
	}
	q := append([]float64(nil), d.Series[2].Values[4:12]...)
	return p, q
}

// TestBestMatchObservedNilAllocs pins the tracing contract: with rec == nil
// the observed entry point must allocate exactly as much as the untraced
// BestMatch — a nil *obs.Trace threads through every stage without boxing
// attrs or growing span slices.
func TestBestMatchObservedNilAllocs(t *testing.T) {
	p, q := allocProbe(t)
	// Warm the workspace pool so steady-state allocations are measured.
	if _, err := p.BestMatch(q, MatchAny); err != nil {
		t.Fatal(err)
	}
	base := testing.AllocsPerRun(100, func() {
		if _, err := p.BestMatch(q, MatchAny); err != nil {
			t.Fatal(err)
		}
	})
	traced := testing.AllocsPerRun(100, func() {
		if _, _, err := p.BestMatchObserved(q, MatchAny, nil); err != nil {
			t.Fatal(err)
		}
	})
	if traced > base {
		t.Fatalf("BestMatchObserved(rec=nil) allocates %.1f/op vs %.1f/op untraced — disabled tracing must be free", traced, base)
	}
}

// BenchmarkBestMatchObservedNilAllocs reports the disabled-tracing hot path
// allocation count (compare against BestMatch in CI diffs).
func BenchmarkBestMatchObservedNilAllocs(b *testing.B) {
	p, q := allocProbe(b)
	if _, _, err := p.BestMatchObserved(q, MatchAny, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.BestMatchObserved(q, MatchAny, nil); err != nil {
			b.Fatal(err)
		}
	}
}
