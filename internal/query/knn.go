package query

import (
	"fmt"
	"math"
	"sort"

	"onex/internal/dist"
	"onex/internal/grouping"
	"onex/internal/obs"
	"onex/internal/parallel"
	"onex/internal/rspace"
)

// BestKMatches answers the k-nearest-neighbour extension of query class I:
// the k subsequences most similar to q under normalized DTW, ordered best
// first. The paper's processor returns the single best match (k=1); k-NN is
// the natural generalization its range/NN-search related work discusses
// (Sec. 7) and falls out of the same group exploration: representatives are
// visited in the Sec. 5.3 order and the k-th best distance replaces the
// best-so-far as the pruning/early-abandon cutoff.
//
// Results can span multiple groups: after mining the best representative's
// group, the processor continues through remaining representatives whose
// lower bounds beat the current k-th distance.
func (p *Processor) BestKMatches(q []float64, mode MatchMode, k int) ([]Match, error) {
	return p.BestKMatchesObserved(q, mode, k, nil)
}

// BestKMatchesObserved is BestKMatches with work accounting: the cascade's
// trace folds into the lifetime Counters (so /v1/stats counts k-NN work,
// not just Q1's) and, with a non-nil rec, per-length scan/refine spans and
// the query's work totals are recorded. Tracing only observes — results
// are bit-identical with rec nil or not.
func (p *Processor) BestKMatchesObserved(q []float64, mode MatchMode, k int, rec *obs.Trace) ([]Match, error) {
	var tr Trace
	defer func() { p.counters.tick(); p.counters.fold(tr); observe(rec, tr) }()
	if k < 1 {
		return nil, fmt.Errorf("query: k must be ≥ 1, got %d", k)
	}
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	ws := p.pool.Get()
	defer p.pool.Put(ws)
	order := dist.QueryOrder(q)
	heap := newTopK(k)

	var lengths []int
	switch mode {
	case MatchExact:
		if p.base.Entry(len(q)) == nil {
			return nil, fmt.Errorf("query: length %d not indexed", len(q))
		}
		lengths = []int{len(q)}
	case MatchAny:
		lengths = p.lengthOrder(len(q))
		if len(lengths) == 0 {
			return nil, fmt.Errorf("query: base has no indexed lengths")
		}
	default:
		return nil, fmt.Errorf("query: unknown match mode %d", mode)
	}

	for _, l := range lengths {
		if mode == MatchAny {
			tr.LengthsVisited++
		}
		p.searchLengthK(q, order, p.base.Entry(l), ws, heap, &tr, rec)
	}
	out := heap.sorted()
	if len(out) == 0 {
		return nil, fmt.Errorf("query: no candidates found")
	}
	return out, nil
}

// searchLengthK mines every group of one length whose representative's
// lower bounds beat the current k-th distance. Unlike the 1-NN path it
// cannot stop at the single best representative: a group whose rep is
// slightly farther can still hold top-k members, so groups are visited in
// increasing rep-DTW order until the rep's own DTW exceeds the k-th
// distance plus the group radius (in raw units) — a heuristic cut mirroring
// the paper's ST/2-based guarantee.
//
// Both phases shard across the worker pool when Parallelism > 1. The rep
// scan's cutoff is constant for the whole length (the heap cannot tighten
// during it), so fanning it out is trivially answer-preserving; member
// verification runs in fixed-size rounds whose heap pushes are replayed in
// member order against the exact distances, reaching the same heap state as
// the sequential scan (see mineGroup for the argument).
func (p *Processor) searchLengthK(q []float64, order []int, e *rspace.LengthEntry,
	ws *dist.Workspace, heap *topK, tr *Trace, rec *obs.Trace) {

	if e == nil || len(e.Groups) == 0 {
		return
	}
	divisor := dist.NormalizedDTWDivisor(len(q), e.Length)
	sameLen := e.Length == len(q)
	radiusRaw := p.base.ST / 2 * math.Sqrt(float64(e.Length)) // group radius in raw-ED units

	var sc obs.SpanScope
	var pre Trace
	if rec != nil {
		pre = *tr
		sc = rec.StartSpan("scan")
	}
	type repDist struct {
		k int
		d float64
	}
	// No heap pushes happen during the rep scan, so the cutoff is fixed for
	// the whole length and the scan parallelizes without changing answers.
	scanCutoff := heap.kth()*divisor + radiusRaw
	scanOne := func(ws *dist.Workspace, k int, ltr *Trace) (float64, bool) {
		return p.scanRepFixed(ws, q, order, e.Groups[k].Rep, e.Envelopes[k], sameLen, scanCutoff, ltr)
	}
	var reps []repDist
	if p.workers <= 1 || len(e.MedianOrder) < scanParallelMin {
		reps = make([]repDist, 0, len(e.Groups))
		for _, k := range e.MedianOrder {
			if d, ok := scanOne(ws, k, tr); ok {
				reps = append(reps, repDist{k: k, d: d})
			}
		}
	} else {
		found := make([]repDist, len(e.MedianOrder))
		kept := make([]bool, len(e.MedianOrder))
		workers := p.workers
		if workers > len(e.MedianOrder) {
			workers = len(e.MedianOrder)
		}
		traces := make([]Trace, workers)
		// Stride positions across workers, one pooled workspace per worker
		// for the whole scan (the cutoff is fixed, so assignment order is
		// irrelevant to the answer — and to the counters).
		parallel.ForEach(workers, workers, func(w int) {
			lws := p.pool.Get()
			defer p.pool.Put(lws)
			for i := w; i < len(e.MedianOrder); i += workers {
				k := e.MedianOrder[i]
				if d, ok := scanOne(lws, k, &traces[w]); ok {
					found[i] = repDist{k: k, d: d}
					kept[i] = true
				}
			}
		})
		for _, t := range traces {
			tr.add(t)
		}
		reps = make([]repDist, 0, len(e.MedianOrder))
		for i, ok := range kept {
			if ok {
				reps = append(reps, found[i])
			}
		}
	}
	if rec != nil {
		spanWork(sc.Attr("length", int64(e.Length)), pre, *tr).End()
	}
	// Stable tie order: by distance, then by median-order position (the
	// order the sequential scan appended in).
	sort.SliceStable(reps, func(a, b int) bool { return reps[a].d < reps[b].d })

	if rec != nil {
		pre = *tr
		sc = rec.StartSpan("refine")
	}
	groups := 0
	var bufs knnBufs // round buffers, allocated on first parallel group
	for _, rd := range reps {
		// Re-check against the (possibly tightened) k-th distance.
		if rd.d > heap.kth()*divisor+radiusRaw {
			break
		}
		groups++
		p.verifyGroupK(q, e.Groups[rd.k], rd.k, e.Length, divisor, heap, ws, &bufs, tr)
	}
	if rec != nil {
		spanWork(sc.Attr("length", int64(e.Length)).Attr("groups", int64(groups)), pre, *tr).End()
	}
}

// scanRepFixed is the fixed-cutoff representative cascade of the k-NN rep
// scan: LB_Kim → (same-length) LB_Keogh → early-abandoning DTW, pruning
// non-strictly (≥) against a cutoff that cannot tighten during the scan.
// It returns the representative's raw DTW and whether it survived, ticking
// tr for the examined rep and for whichever cascade stage resolved it —
// the fixed cutoff makes these counts identical at every worker count.
// Shared by the monolithic per-length search and the scatter-gather
// executor so the k-NN candidate set is structurally identical across
// layouts.
func (p *Processor) scanRepFixed(ws *dist.Workspace, q []float64, order []int,
	rep []float64, env rspace.Envelope, sameLen bool, cutoff float64, tr *Trace) (float64, bool) {

	tr.RepsExamined++
	if !p.opts.DisableLowerBounds {
		if dist.LBKim(q, rep) >= cutoff {
			tr.PrunedByKim++
			return 0, false
		}
		if sameLen {
			if lb := dist.LBKeoghOrdered(q, env.Upper, env.Lower, order, cutoff); lb >= cutoff {
				tr.PrunedByKeogh++
				return 0, false
			}
		}
	}
	tr.DTWComputed++
	d := ws.DTWEarlyAbandon(q, rep, dist.Unconstrained, cutoff)
	return d, !math.IsInf(d, 1)
}

// knnBufs holds the reusable round buffers of the parallel member
// verification; the zero value allocates lazily on the first parallel group.
type knnBufs struct {
	lbs, ds []float64
}

// verifyGroupK verifies every member of one group against the running top-k
// heap: lower-bound prune against the evolving k-th distance, then
// early-abandoning DTW, pushing exact distances that beat the cutoff. The
// parallel path evaluates fixed-size rounds concurrently and replays the
// pushes in member order (see searchLengthK). Shared by the monolithic
// per-length search and the scatter-gather executor (Scatter) — both
// must reach bit-identical heap states, so the decision logic lives here
// once. gid is the group id recorded on pushed matches (the caller's local
// or global numbering). Work ticks into tr; like mineGroup, the split
// between Kim prunes and DTWs depends on round timing in the parallel path
// while MembersTested is worker-invariant.
func (p *Processor) verifyGroupK(q []float64, g *grouping.Group, gid, length int,
	divisor float64, heap *topK, ws *dist.Workspace, bufs *knnBufs, tr *Trace) {

	push := func(m grouping.Member, d float64) {
		heap.push(Match{
			SeriesID: m.SeriesIdx,
			Start:    m.Start,
			Length:   length,
			Dist:     d / divisor,
			RawDTW:   d,
			GroupID:  gid,
		})
	}
	if p.workers <= 1 || g.Count() < 2*mineBatchSize {
		for _, m := range g.Members {
			v := p.base.MemberValues(g, m)
			cutoff := heap.kth() * divisor
			tr.MembersTested++
			if !p.opts.DisableLowerBounds && dist.LBKim(q, v) >= cutoff {
				tr.PrunedByKim++
				continue
			}
			tr.DTWComputed++
			d := ws.DTWEarlyAbandon(q, v, dist.Unconstrained, cutoff)
			if math.IsInf(d, 1) {
				continue
			}
			push(m, d)
		}
		return
	}
	if bufs.ds == nil {
		bufs.ds = make([]float64, mineBatchSize)
		bufs.lbs = make([]float64, mineBatchSize)
	}
	for off := 0; off < g.Count(); off += mineBatchSize {
		end := off + mineBatchSize
		if end > g.Count() {
			end = g.Count()
		}
		batch := g.Members[off:end]
		roundCutoff := heap.kth() * divisor
		tr.DTWComputed += p.evalRound(q, len(batch), roundCutoff, func(i int) []float64 {
			return p.base.MemberValues(g, batch[i])
		}, bufs.lbs, bufs.ds)
		// Replay pushes in member order: a distance abandoned at the
		// round cutoff is ≥ the (only-tightening) running k-th and could
		// never enter the heap.
		for i, m := range batch {
			cutoff := heap.kth() * divisor
			tr.MembersTested++
			if !p.opts.DisableLowerBounds && bufs.lbs[i] >= cutoff {
				tr.PrunedByKim++
				continue
			}
			if d := bufs.ds[i]; !math.IsInf(d, 1) && d < roundCutoff {
				if d >= cutoff {
					continue
				}
				push(m, d)
			}
		}
	}
}

// topK keeps the k best matches seen, worst at the root.
type topK struct {
	k       int
	matches []Match // max-heap by Dist
}

func newTopK(k int) *topK { return &topK{k: k} }

// kth returns the current k-th best normalized distance (+Inf until k
// matches accumulated) — the pruning cutoff.
func (t *topK) kth() float64 {
	if len(t.matches) < t.k {
		return math.Inf(1)
	}
	return t.matches[0].Dist
}

func (t *topK) push(m Match) {
	// Reject duplicates of the same subsequence (can arrive via adapted
	// views or repeated mining).
	for _, ex := range t.matches {
		if ex.SeriesID == m.SeriesID && ex.Start == m.Start && ex.Length == m.Length {
			return
		}
	}
	if len(t.matches) < t.k {
		t.matches = append(t.matches, m)
		t.up(len(t.matches) - 1)
		return
	}
	if m.Dist >= t.matches[0].Dist {
		return
	}
	t.matches[0] = m
	t.down(0)
}

func (t *topK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.matches[parent].Dist >= t.matches[i].Dist {
			break
		}
		t.matches[parent], t.matches[i] = t.matches[i], t.matches[parent]
		i = parent
	}
}

func (t *topK) down(i int) {
	n := len(t.matches)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && t.matches[l].Dist > t.matches[largest].Dist {
			largest = l
		}
		if r < n && t.matches[r].Dist > t.matches[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		t.matches[i], t.matches[largest] = t.matches[largest], t.matches[i]
		i = largest
	}
}

// sorted returns the collected matches best-first.
func (t *topK) sorted() []Match {
	out := append([]Match(nil), t.matches...)
	sort.Slice(out, func(a, b int) bool { return out[a].Dist < out[b].Dist })
	return out
}
