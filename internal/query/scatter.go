package query

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"onex/internal/dist"
	"onex/internal/grouping"
	"onex/internal/obs"
	"onex/internal/rspace"
)

// Scatter is the scatter-gather query executor of the intra-dataset sharded
// engine (internal/shard): the dataset's series are hash-partitioned across
// shards, each shard holds the restriction of ONE deterministic global
// grouping to its series (same representatives, same member ED order) with
// its own GTI/LSI index layers, and Scatter re-enacts the monolithic
// Algorithm 2 decision procedure across them.
//
// Every shard interaction crosses the ShardTransport seam, so the same
// coordinator drives in-process shards (LocalShard) and remote worker
// processes (internal/shardrpc.Client) interchangeably. The split of work:
//
//   - the representative scan of a length fans one ScanBest/ScanFixed call
//     per shard (each global group is scanned by exactly one shard — the
//     one holding its nearest member) and merges the per-shard results with
//     the monolithic tie rule (smallest distance, then smallest global
//     group id);
//   - group mining and k-NN member verification replay the global pivot
//     walk / heap bookkeeping at the coordinator, shipping each fixed-size
//     round's DTW work to the members' home shards (EvalMembers) with the
//     current best-so-far bound threaded in the request — the bound hint
//     that keeps early abandoning effective across the wire;
//   - range search runs verbatim on every shard — its admission (Lemma 2
//     premise per member) and per-member verification decisions depend only
//     on the shared global representatives, so the union of shard result
//     sets IS the monolithic result set — and concatenates in shard order;
//   - seasonal queries read the global grouping directly (the coordinator
//     holds it in full).
//
// Answers are therefore identical to the single-engine path over the same
// data, with one caveat: when two representatives tie on the exact DTW to
// the query (bit-equal distances — impossible on continuous data, possible
// with duplicated windows), the monolith breaks the tie by median-scan
// position while Scatter breaks it by global group id, and the mined group
// may differ. Everything downstream of the scan — pivot walks, patience
// cuts, heap states, range admissions — replays decision-for-decision.
type Scatter struct {
	// global answers mining/seasonal bookkeeping against the global
	// grouping; its base carries the global dataset and per-length global
	// group vectors but no scan index (no Dc, envelopes or median order —
	// the per-shard indexes hold those).
	global     *Processor
	transports []ShardTransport
	// infos caches each transport's layout slice (validated at assembly).
	infos []ShardInfo
	// route maps global series id → transports index (the member's home).
	route map[int]int
}

// NewScatter assembles the executor over the shard transports. global must
// hold the full dataset and, per indexed length, the complete global group
// vector (Groups[k].ID == k); the transports must partition the series and
// cover every global group's scan exactly once (Info().Owned).
func NewScatter(global *rspace.Base, opts Options, transports []ShardTransport) (*Scatter, error) {
	gp, err := New(global, opts)
	if err != nil {
		return nil, err
	}
	s := &Scatter{
		global:     gp,
		transports: transports,
		infos:      make([]ShardInfo, len(transports)),
		route:      make(map[int]int, global.Dataset.N()),
	}
	for i, t := range transports {
		s.infos[i] = t.Info()
		for _, sid := range s.infos[i].Series {
			if prev, dup := s.route[sid]; dup {
				return nil, fmt.Errorf("query: series %d held by shards %d and %d",
					sid, s.infos[prev].Shard, s.infos[i].Shard)
			}
			s.route[sid] = i
		}
	}
	if len(s.route) != global.Dataset.N() {
		return nil, fmt.Errorf("query: shards hold %d of %d series", len(s.route), global.Dataset.N())
	}
	for _, l := range global.Lengths {
		e := global.Entry(l)
		if e == nil {
			return nil, fmt.Errorf("query: scatter length %d has no global entry", l)
		}
		counts := make([]int, len(e.Groups))
		for i := range transports {
			for _, gid := range s.infos[i].Owned[l] {
				if gid < 0 || gid >= len(counts) {
					return nil, fmt.Errorf("query: length %d: owned group %d outside %d global groups",
						l, gid, len(counts))
				}
				counts[gid]++
			}
		}
		for k, c := range counts {
			if c != 1 {
				return nil, fmt.Errorf("query: length %d: global group %d owned %s", l,
					k, map[bool]string{true: "more than once", false: "by no shard"}[c > 1])
			}
		}
	}
	return s, nil
}

// withWorkers returns a view of s whose executor fan-out is bounded to w
// (BestMatchBatch parallelizes across queries instead of within them).
func (s *Scatter) withWorkers(w int) *Scatter {
	if s.global.workers == w {
		return s
	}
	gp := *s.global
	gp.workers = w
	cp := *s
	cp.global = &gp
	return &cp
}

// fanShards runs one call per transport — concurrently past one shard,
// inline for a single shard — and gathers the responses in transport order.
// With a non-nil rec every shard call is recorded as its own span (obs.Trace
// is safe for concurrent span starts), annotated by the caller; the spans
// are what makes `explain` show where a distributed query spent its time.
// The first shard error aborts the query (transport errors are already
// retried below this seam; see internal/shardrpc).
func fanShards[R any](ctx context.Context, s *Scatter, rec *obs.Trace, span string,
	call func(context.Context, ShardTransport) (R, error),
	annotate func(sc obs.SpanScope, r R) obs.SpanScope) ([]R, error) {

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]R, len(s.transports))
	errs := make([]error, len(s.transports))
	one := func(i int) {
		var sc obs.SpanScope
		if rec != nil {
			sc = rec.StartSpan(span)
		}
		r, err := call(ctx, s.transports[i])
		out[i], errs[i] = r, err
		if rec != nil {
			annotate(sc.Attr("shard", int64(s.infos[i].Shard)), r).End()
		}
	}
	if len(s.transports) == 1 {
		one(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(len(s.transports))
		for i := range s.transports {
			go func(i int) { defer wg.Done(); one(i) }(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// BestMatch answers Q1 across the shards — the same search the monolithic
// Processor.BestMatch runs, with the per-length representative scan
// scattered over the shard transports.
func (s *Scatter) BestMatch(ctx context.Context, q []float64, mode MatchMode) (Match, error) {
	return s.BestMatchObserved(ctx, q, mode, nil)
}

// BestMatchObserved is BestMatch with optional span recording (per-shard
// scan spans, per-length refine spans, plus the query's work totals on a
// non-nil rec). Tracing only observes — answers are bit-identical either
// way. A canceled ctx stops the fan-out between lengths and rounds.
func (s *Scatter) BestMatchObserved(ctx context.Context, q []float64, mode MatchMode, rec *obs.Trace) (Match, error) {
	// Remote transports discover the recorder through the context (the rec
	// parameter stops at the coordinator; rpc spans are recorded below the
	// fan-out, including EvalMembers rounds that never see rec). Untraced
	// queries skip the WithValue so the hot path stays allocation-free.
	if rec != nil {
		ctx = obs.ContextWithTrace(ctx, rec)
	}
	var tr Trace
	defer func() { s.global.counters.tick(); s.global.counters.fold(tr); observe(rec, tr) }()
	if err := validateQuery(q); err != nil {
		return Match{}, err
	}

	switch mode {
	case MatchExact:
		e := s.global.base.Entry(len(q))
		if e == nil {
			return Match{}, fmt.Errorf("query: length %d not indexed", len(q))
		}
		best := Match{Dist: math.Inf(1)}
		if _, err := s.searchLength(ctx, q, e, &best, &tr, rec); err != nil {
			return Match{}, err
		}
		if !best.Found() {
			return Match{}, fmt.Errorf("query: no candidate found (empty length entry)")
		}
		return best, nil
	case MatchAny:
		lengths := s.global.lengthOrder(len(q))
		if len(lengths) == 0 {
			return Match{}, fmt.Errorf("query: base has no indexed lengths")
		}
		best := Match{Dist: math.Inf(1)}
		for _, l := range lengths {
			if err := ctx.Err(); err != nil {
				return Match{}, err
			}
			tr.LengthsVisited++
			repNorm, err := s.searchLength(ctx, q, s.global.base.Entry(l), &best, &tr, rec)
			if err != nil {
				return Match{}, err
			}
			// Sec. 5.3 stop rule, on the globally best representative.
			if !s.global.opts.DisableEarlyStop && repNorm <= s.global.base.ST/2 {
				break
			}
		}
		if !best.Found() {
			return Match{}, fmt.Errorf("query: no candidate found")
		}
		return best, nil
	default:
		return Match{}, fmt.Errorf("query: unknown match mode %d", mode)
	}
}

// searchLength scatters one length's representative scan across the shards,
// then mines the winning global group's full (global) member list through
// per-round EvalMembers calls — the same compareRep + getKSim sequence as
// the monolithic searchLength. Work accumulates into the caller-owned tr
// (folded once per query).
//
// The scan request pins its bound hint to +Inf: Q1 needs the exact argmin
// representative (it seeds the pivot walk and the Sec. 5.3 early-stop
// rule), so an external bound could prune the very representative the
// search is after. Each shard still early-abandons against its own
// tightening bound, and the (distance, global id) merge reproduces the
// monolithic tie rule.
func (s *Scatter) searchLength(ctx context.Context, q []float64, e *rspace.LengthEntry,
	best *Match, tr *Trace, rec *obs.Trace) (float64, error) {

	if e == nil || len(e.Groups) == 0 {
		return math.Inf(1), nil
	}
	divisor := dist.NormalizedDTWDivisor(len(q), e.Length)
	req := ScanBestRequest{
		Length:   e.Length,
		Query:    q,
		HintBits: math.Float64bits(math.Inf(1)),
		Workers:  s.global.workers,
	}
	resps, err := fanShards(ctx, s, rec, "shard-scan",
		func(ctx context.Context, t ShardTransport) (ScanBestResponse, error) {
			return t.ScanBest(ctx, req)
		},
		func(sc obs.SpanScope, r ScanBestResponse) obs.SpanScope {
			return spanWork(sc.Attr("length", int64(e.Length)), Trace{}, r.Trace)
		})
	if err != nil {
		return 0, err
	}
	bestID, bestRaw := -1, math.Inf(1)
	for _, resp := range resps {
		tr.add(resp.Trace)
		if !resp.Found {
			continue
		}
		raw := math.Float64frombits(resp.BestBits)
		if raw < bestRaw || (raw == bestRaw && resp.GroupID < bestID) {
			bestID, bestRaw = resp.GroupID, raw
		}
	}
	if bestID < 0 {
		return math.Inf(1), nil
	}
	var sc obs.SpanScope
	var pre Trace
	if rec != nil {
		pre = *tr
		sc = rec.StartSpan("refine")
	}
	err = s.mineGroupScattered(ctx, q, e, bestID, bestRaw/divisor, best, tr)
	if rec != nil {
		spanWork(sc.Attr("length", int64(e.Length)).Attr("group", int64(bestID)), pre, *tr).End()
	}
	if err != nil {
		return 0, err
	}
	return bestRaw / divisor, nil
}

// evalRoundScattered is Processor.evalRound over the transport seam: the
// round's members partition by home shard, each shard evaluates its slice
// against the same bound snapshot (LB_Kim plus early-abandoning DTW depend
// only on (query, member, bound), so the partition cannot change a single
// bit), and the results scatter back positionally. Returns how many DTWs
// actually ran shard-side (Trace accounting).
func (s *Scatter) evalRoundScattered(ctx context.Context, q []float64, length int,
	batch []grouping.Member, bound float64, lbs, ds []float64) (int, error) {

	if err := ctx.Err(); err != nil {
		return 0, err
	}
	type part struct {
		transport int
		items     []MemberRef
		pos       []int
		resp      EvalMembersResponse
		err       error
	}
	parts := make([]*part, 0, 2)
	byTransport := make(map[int]*part, 2)
	for i, m := range batch {
		ti, ok := s.route[m.SeriesIdx]
		if !ok {
			return 0, fmt.Errorf("query: member series %d not routed to any shard", m.SeriesIdx)
		}
		p := byTransport[ti]
		if p == nil {
			p = &part{transport: ti}
			byTransport[ti] = p
			parts = append(parts, p)
		}
		p.items = append(p.items, MemberRef{Series: m.SeriesIdx, Start: m.Start})
		p.pos = append(p.pos, i)
	}
	call := func(p *part) {
		p.resp, p.err = s.transports[p.transport].EvalMembers(ctx, EvalMembersRequest{
			Length:    length,
			Query:     q,
			BoundBits: math.Float64bits(bound),
			Workers:   s.global.workers,
			Items:     p.items,
		})
	}
	if len(parts) == 1 {
		call(parts[0])
	} else {
		var wg sync.WaitGroup
		wg.Add(len(parts))
		for _, p := range parts {
			go func(p *part) { defer wg.Done(); call(p) }(p)
		}
		wg.Wait()
	}
	dtws := 0
	for _, p := range parts {
		if p.err != nil {
			return 0, p.err
		}
		if len(p.resp.LbBits) != len(p.items) || len(p.resp.DsBits) != len(p.items) {
			return 0, fmt.Errorf("query: shard %d answered %d/%d of %d member evals",
				s.infos[p.transport].Shard, len(p.resp.LbBits), len(p.resp.DsBits), len(p.items))
		}
		for j, pos := range p.pos {
			lbs[pos] = math.Float64frombits(p.resp.LbBits[j])
			ds[pos] = math.Float64frombits(p.resp.DsBits[j])
		}
		dtws += p.resp.DTWComputed
	}
	return dtws, nil
}

// mineGroupScattered is Processor.mineGroup with every DTW shipped to the
// members' home shards: the pivot walk, patience bookkeeping and best
// updates replay at the coordinator in fixed-size rounds, each round's
// members evaluated shard-side against the best-so-far snapshot taken at
// the round boundary. The round replay reaches exactly the sequential
// walk's decisions for ANY batch partition (a member abandoned at the round
// bound is provably non-improving at its replay position — the running best
// only tightens within a round), so the scattered miner always runs the
// round path; worker count and shard layout change only which DTWs run to
// completion, never the match.
func (s *Scatter) mineGroupScattered(ctx context.Context, q []float64, e *rspace.LengthEntry,
	k int, repNormDTW float64, best *Match, tr *Trace) error {

	g := e.Groups[k]
	n := g.Count()
	if n == 0 {
		return nil
	}
	divisor := dist.NormalizedDTWDivisor(len(q), e.Length)
	limit := s.global.opts.CandidateLimit
	if limit <= 0 || limit > n {
		limit = n
	}
	patience := s.global.opts.Patience
	if patience == 0 {
		patience = DefaultPatience
	}
	walk := newPivotWalk(g.Members, repNormDTW)
	bestRaw := best.Dist * divisor // +Inf-safe: Inf*x = Inf

	record := func(m grouping.Member, d float64) {
		bestRaw = d
		*best = Match{
			SeriesID: m.SeriesIdx,
			Start:    m.Start,
			Length:   e.Length,
			Dist:     d / divisor,
			RawDTW:   d,
			GroupID:  k,
		}
	}

	batch := make([]grouping.Member, 0, mineBatchSize)
	lbs := make([]float64, mineBatchSize)
	ds := make([]float64, mineBatchSize)
	sinceImprove := 0
	tested := 0
	for tested < limit {
		if patience > 0 && sinceImprove >= patience {
			return nil
		}
		// Collect the next round of members in walk order.
		batch = batch[:0]
		for len(batch) < mineBatchSize && tested+len(batch) < limit {
			idx := walk.next()
			if idx < 0 {
				break
			}
			batch = append(batch, g.Members[idx])
		}
		if len(batch) == 0 {
			return nil
		}
		dtws, err := s.evalRoundScattered(ctx, q, e.Length, batch, bestRaw, lbs, ds)
		if err != nil {
			return err
		}
		tr.DTWComputed += dtws
		// Replay the bookkeeping sequentially in walk order.
		for i, m := range batch {
			if patience > 0 && sinceImprove >= patience {
				return nil
			}
			tr.MembersTested++
			tested++
			if !s.global.opts.DisableLowerBounds && lbs[i] >= bestRaw {
				sinceImprove++
				continue
			}
			if d := ds[i]; d < bestRaw {
				sinceImprove = 0
				record(m, d)
			} else {
				sinceImprove++
			}
		}
	}
	return nil
}

// BestKMatches answers k-NN across the shards: per length, the fixed-cutoff
// representative scan scatters over the shard transports, then the groups
// are verified in increasing rep-DTW order against the global member lists —
// the same procedure as the monolithic searchLengthK, heap bookkeeping
// included.
func (s *Scatter) BestKMatches(ctx context.Context, q []float64, mode MatchMode, k int) ([]Match, error) {
	return s.BestKMatchesObserved(ctx, q, mode, k, nil)
}

// BestKMatchesObserved is BestKMatches with optional span recording. The
// scan cutoff is fixed per length (and travels in the request as the bound
// hint), so the candidate set is identical at every worker count and shard
// layout.
func (s *Scatter) BestKMatchesObserved(ctx context.Context, q []float64, mode MatchMode, k int, rec *obs.Trace) ([]Match, error) {
	if rec != nil {
		ctx = obs.ContextWithTrace(ctx, rec)
	}
	var tr Trace
	defer func() { s.global.counters.tick(); s.global.counters.fold(tr); observe(rec, tr) }()
	if k < 1 {
		return nil, fmt.Errorf("query: k must be ≥ 1, got %d", k)
	}
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	heap := newTopK(k)

	var lengths []int
	switch mode {
	case MatchExact:
		if s.global.base.Entry(len(q)) == nil {
			return nil, fmt.Errorf("query: length %d not indexed", len(q))
		}
		lengths = []int{len(q)}
	case MatchAny:
		lengths = s.global.lengthOrder(len(q))
		if len(lengths) == 0 {
			return nil, fmt.Errorf("query: base has no indexed lengths")
		}
	default:
		return nil, fmt.Errorf("query: unknown match mode %d", mode)
	}

	for _, l := range lengths {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if mode == MatchAny {
			tr.LengthsVisited++
		}
		if err := s.searchLengthK(ctx, q, s.global.base.Entry(l), heap, &tr, rec); err != nil {
			return nil, err
		}
	}
	out := heap.sorted()
	if len(out) == 0 {
		return nil, fmt.Errorf("query: no candidates found")
	}
	return out, nil
}

// searchLengthK is the scattered form of Processor.searchLengthK: the rep
// scan's cutoff is fixed for the whole length (no heap pushes can happen
// during it), so fanning it across the shards is answer-preserving; member
// verification then replays at the coordinator with per-round EvalMembers
// calls.
func (s *Scatter) searchLengthK(ctx context.Context, q []float64, e *rspace.LengthEntry,
	heap *topK, tr *Trace, rec *obs.Trace) error {

	if e == nil || len(e.Groups) == 0 {
		return nil
	}
	divisor := dist.NormalizedDTWDivisor(len(q), e.Length)
	radiusRaw := s.global.base.ST / 2 * math.Sqrt(float64(e.Length))

	// No heap pushes happen during the rep scan, so the cutoff is fixed for
	// the whole length and the fan-out cannot change answers — or counters.
	req := ScanFixedRequest{
		Length:     e.Length,
		Query:      q,
		CutoffBits: math.Float64bits(heap.kth()*divisor + radiusRaw),
		Workers:    s.global.workers,
	}
	resps, err := fanShards(ctx, s, rec, "shard-scan",
		func(ctx context.Context, t ShardTransport) (ScanFixedResponse, error) {
			return t.ScanFixed(ctx, req)
		},
		func(sc obs.SpanScope, r ScanFixedResponse) obs.SpanScope {
			return spanWork(sc.Attr("length", int64(e.Length)), Trace{}, r.Trace)
		})
	if err != nil {
		return err
	}
	type repDist struct {
		global int
		d      float64
	}
	var reps []repDist
	for _, resp := range resps {
		tr.add(resp.Trace)
		for _, h := range resp.Hits {
			reps = append(reps, repDist{global: h.GroupID, d: h.Dist})
		}
	}
	// Monolithic tie order: ascending global id (each shard's hits already
	// are; the shards partition the ids), then stable by distance.
	sort.Slice(reps, func(a, b int) bool { return reps[a].global < reps[b].global })
	sort.SliceStable(reps, func(a, b int) bool { return reps[a].d < reps[b].d })

	var sc obs.SpanScope
	var pre Trace
	if rec != nil {
		pre = *tr
		sc = rec.StartSpan("refine")
	}
	groups := 0
	var bufs knnBufs
	var verr error
	for _, rd := range reps {
		// Re-check against the (possibly tightened) k-th distance.
		if rd.d > heap.kth()*divisor+radiusRaw {
			break
		}
		groups++
		if verr = s.verifyGroupKScattered(ctx, q, e.Groups[rd.global], rd.global, e.Length, divisor, heap, &bufs, tr); verr != nil {
			break
		}
	}
	if rec != nil {
		spanWork(sc.Attr("length", int64(e.Length)).Attr("groups", int64(groups)), pre, *tr).End()
	}
	return verr
}

// verifyGroupKScattered is Processor.verifyGroupK with each round's DTWs
// shipped to the members' home shards. The heap replay is verbatim (same
// inequalities, same push order), so the scattered heap passes through
// exactly the monolithic states; like the scattered miner it always runs
// the round path, which is answer-equal to the sequential branch for any
// round size.
func (s *Scatter) verifyGroupKScattered(ctx context.Context, q []float64, g *grouping.Group,
	gid, length int, divisor float64, heap *topK, bufs *knnBufs, tr *Trace) error {

	if bufs.ds == nil {
		bufs.ds = make([]float64, mineBatchSize)
		bufs.lbs = make([]float64, mineBatchSize)
	}
	for off := 0; off < g.Count(); off += mineBatchSize {
		end := off + mineBatchSize
		if end > g.Count() {
			end = g.Count()
		}
		batch := g.Members[off:end]
		roundCutoff := heap.kth() * divisor
		dtws, err := s.evalRoundScattered(ctx, q, length, batch, roundCutoff, bufs.lbs, bufs.ds)
		if err != nil {
			return err
		}
		tr.DTWComputed += dtws
		// Replay pushes in member order: a distance abandoned at the
		// round cutoff is ≥ the (only-tightening) running k-th and could
		// never enter the heap.
		for i, m := range batch {
			cutoff := heap.kth() * divisor
			tr.MembersTested++
			if !s.global.opts.DisableLowerBounds && bufs.lbs[i] >= cutoff {
				tr.PrunedByKim++
				continue
			}
			if d := bufs.ds[i]; !math.IsInf(d, 1) && d < roundCutoff {
				if d >= cutoff {
					continue
				}
				heap.push(Match{
					SeriesID: m.SeriesIdx,
					Start:    m.Start,
					Length:   length,
					Dist:     d / divisor,
					RawDTW:   d,
					GroupID:  gid,
				})
			}
		}
	}
	return nil
}

// RangeSearch scatters a range query: each shard answers it over its
// restriction with the monolithic code path and the per-shard result slices
// concatenate in shard order, remapped to global series/group ids. The
// result SET equals the monolithic one exactly (admission and verification
// decide per member against the shared global representative); only the
// slice order differs, and range results are documented as unordered.
func (s *Scatter) RangeSearch(ctx context.Context, q []float64, length int, radius float64) ([]RangeResult, error) {
	return s.RangeSearchObserved(ctx, q, length, radius, false, nil)
}

// RangeSearchExact is RangeSearch with exact distances on the Lemma 2
// guaranteed path, scattered the same way.
func (s *Scatter) RangeSearchExact(ctx context.Context, q []float64, length int, radius float64) ([]RangeResult, error) {
	return s.RangeSearchObserved(ctx, q, length, radius, true, nil)
}

// RangeSearchObserved is the scattered range search with work accounting:
// the per-shard traces fold into one query trace and into the GLOBAL
// counters exactly once (the shard indexes' own counters are not touched —
// the scatter executor owns the tally). With a non-nil rec each shard call
// gets a "shard-range" span. Shards run concurrently: unlike the in-process
// engine, remote shards spend their worker budgets on separate hosts.
func (s *Scatter) RangeSearchObserved(ctx context.Context, q []float64, length int, radius float64,
	exact bool, rec *obs.Trace) ([]RangeResult, error) {

	if rec != nil {
		ctx = obs.ContextWithTrace(ctx, rec)
	}
	var tr Trace
	defer func() { s.global.counters.tick(); s.global.counters.fold(tr); observe(rec, tr) }()
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	if radius < 0 || math.IsNaN(radius) || math.IsInf(radius, 0) {
		return nil, fmt.Errorf("query: invalid range radius %v", radius)
	}
	if s.global.base.Entry(length) == nil {
		return nil, fmt.Errorf("query: length %d not indexed", length)
	}
	req := RangeRequest{
		Length:  length,
		Query:   q,
		Radius:  radius,
		Exact:   exact,
		Workers: s.global.workers,
	}
	resps, err := fanShards(ctx, s, rec, "shard-range",
		func(ctx context.Context, t ShardTransport) (RangeResponse, error) {
			return t.Range(ctx, req)
		},
		func(sc obs.SpanScope, r RangeResponse) obs.SpanScope {
			return spanWork(sc.Attr("results", int64(len(r.Results))), Trace{}, r.Trace)
		})
	if err != nil {
		return nil, err
	}
	var out []RangeResult
	for _, resp := range resps {
		tr.add(resp.Trace)
		for _, h := range resp.Results {
			out = append(out, RangeResult{
				Match: Match{
					SeriesID: h.Series,
					Start:    h.Start,
					Length:   length,
					Dist:     h.Dist,
					RawDTW:   h.RawDTW,
					GroupID:  h.GroupID,
				},
				Guaranteed: h.Guaranteed,
			})
		}
	}
	return out, nil
}

// SeasonalSample answers the user-driven class II query from the global
// grouping — identical to the monolithic answer, group ids included.
func (s *Scatter) SeasonalSample(seriesID, length int) ([]SeasonalGroup, error) {
	return s.global.SeasonalSample(seriesID, length)
}

// SeasonalSampleObserved is SeasonalSample with span recording.
func (s *Scatter) SeasonalSampleObserved(seriesID, length int, rec *obs.Trace) ([]SeasonalGroup, error) {
	return s.global.SeasonalSampleObserved(seriesID, length, rec)
}

// SeasonalAll answers the data-driven class II query from the global
// grouping.
func (s *Scatter) SeasonalAll(length int) ([]SeasonalGroup, error) {
	return s.global.SeasonalAll(length)
}

// SeasonalAllObserved is SeasonalAll with span recording.
func (s *Scatter) SeasonalAllObserved(length int, rec *obs.Trace) ([]SeasonalGroup, error) {
	return s.global.SeasonalAllObserved(length, rec)
}
