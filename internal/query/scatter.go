package query

import (
	"fmt"
	"math"
	"sort"

	"onex/internal/dist"
	"onex/internal/obs"
	"onex/internal/parallel"
	"onex/internal/rspace"
)

// Scatter is the scatter-gather query executor of the intra-dataset sharded
// engine (internal/shard): the dataset's series are hash-partitioned across
// shards, each shard holds the restriction of ONE deterministic global
// grouping to its series (same representatives, same member ED order) with
// its own GTI/LSI index layers, and Scatter re-enacts the monolithic
// Algorithm 2 decision procedure across them.
//
// The split of work:
//
//   - the representative scan of a length fans out across the shard-owned
//     group units (each global group is scanned by exactly one shard — the
//     one holding its nearest member) with a shared atomic best-so-far
//     bound, so early abandoning keeps pruning globally;
//   - group mining and k-NN member verification replay the global pivot
//     walk / heap bookkeeping against the global member lists (the shards'
//     member lists are restrictions of these, so the values live in shared
//     memory) using the exact code paths of the monolithic processor;
//   - range search runs verbatim on every shard — its admission (Lemma 2
//     premise per member) and per-member verification decisions depend only
//     on the shared global representatives, so the union of shard result
//     sets IS the monolithic result set — and concatenates in shard order;
//   - seasonal queries read the global grouping directly.
//
// Answers are therefore identical to the single-engine path over the same
// data, with one caveat: when two representatives tie on the exact DTW to
// the query (bit-equal distances — impossible on continuous data, possible
// with duplicated windows), the monolith breaks the tie by median-scan
// position while Scatter breaks it by global group id, and the mined group
// may differ. Everything downstream of the scan — pivot walks, patience
// cuts, heap states, range admissions — replays decision-for-decision.
type Scatter struct {
	// global answers mining/seasonal work against the global grouping; its
	// base carries the global dataset and per-length global group vectors
	// but no scan index (no Dc, envelopes or median order — the per-shard
	// entries hold those).
	global *Processor
	shards []ShardView
	// units flattens the shard-owned scan work per length, sorted by global
	// group id; units[l][k].global == k once validated.
	units map[int][]scanUnit
}

// ShardView is one shard's contribution to a Scatter: its processor (over
// the restricted base) plus the tables mapping its local numbering back to
// the global one.
type ShardView struct {
	// Proc is the shard's query processor over its restricted base.
	Proc *Processor
	// Series maps local series index → global series id.
	Series []int
	// GlobalIDs maps, per length, local group index → global group id.
	GlobalIDs map[int][]int
	// Owned marks, per length, the local groups whose representative this
	// shard scans (exactly one shard owns each global group).
	Owned map[int][]bool
}

// scanUnit is one shard-resident representative to scan: the owning shard's
// length entry (representative, envelope) plus its local and global ids.
type scanUnit struct {
	entry  *rspace.LengthEntry
	local  int
	global int
}

// NewScatter assembles the executor. global must hold the full dataset and,
// per indexed length, the complete global group vector (Groups[k].ID == k);
// the shard views must cover every global group exactly once through their
// Owned tables.
func NewScatter(global *rspace.Base, opts Options, shards []ShardView) (*Scatter, error) {
	gp, err := New(global, opts)
	if err != nil {
		return nil, err
	}
	s := &Scatter{
		global: gp,
		shards: shards,
		units:  make(map[int][]scanUnit, len(global.Lengths)),
	}
	for _, l := range global.Lengths {
		e := global.Entry(l)
		if e == nil {
			return nil, fmt.Errorf("query: scatter length %d has no global entry", l)
		}
		units := make([]scanUnit, 0, len(e.Groups))
		for _, sv := range shards {
			se := sv.Proc.base.Entry(l)
			if se == nil {
				return nil, fmt.Errorf("query: shard is missing length %d", l)
			}
			owned, gids := sv.Owned[l], sv.GlobalIDs[l]
			if len(owned) != len(se.Groups) || len(gids) != len(se.Groups) {
				return nil, fmt.Errorf("query: shard tables for length %d cover %d/%d of %d groups",
					l, len(owned), len(gids), len(se.Groups))
			}
			for local, own := range owned {
				if own {
					units = append(units, scanUnit{entry: se, local: local, global: gids[local]})
				}
			}
		}
		sort.Slice(units, func(a, b int) bool { return units[a].global < units[b].global })
		if len(units) != len(e.Groups) {
			return nil, fmt.Errorf("query: length %d: %d owned units for %d global groups", l, len(units), len(e.Groups))
		}
		for k, u := range units {
			if u.global != k {
				return nil, fmt.Errorf("query: length %d: global group %d owned %s", l,
					k, map[bool]string{true: "more than once", false: "by no shard"}[u.global < k])
			}
		}
		s.units[l] = units
	}
	return s, nil
}

// withWorkers returns a view of s whose executor fan-out is bounded to w
// (BestMatchBatch parallelizes across queries instead of within them).
func (s *Scatter) withWorkers(w int) *Scatter {
	if s.global.workers == w {
		return s
	}
	gp := *s.global
	gp.workers = w
	cp := *s
	cp.global = &gp
	return &cp
}

// BestMatch answers Q1 across the shards — the same search the monolithic
// Processor.BestMatch runs, with the per-length representative scan
// scattered over the shard-owned units.
func (s *Scatter) BestMatch(q []float64, mode MatchMode) (Match, error) {
	return s.BestMatchObserved(q, mode, nil)
}

// BestMatchObserved is BestMatch with optional span recording (per-length
// scan/refine spans plus the query's work totals on a non-nil rec).
// Tracing only observes — answers are bit-identical either way.
func (s *Scatter) BestMatchObserved(q []float64, mode MatchMode, rec *obs.Trace) (Match, error) {
	var tr Trace
	defer func() { s.global.counters.tick(); s.global.counters.fold(tr); observe(rec, tr) }()
	if err := validateQuery(q); err != nil {
		return Match{}, err
	}
	ws := s.global.pool.Get()
	defer s.global.pool.Put(ws)
	order := dist.QueryOrder(q)

	switch mode {
	case MatchExact:
		e := s.global.base.Entry(len(q))
		if e == nil {
			return Match{}, fmt.Errorf("query: length %d not indexed", len(q))
		}
		best := Match{Dist: math.Inf(1)}
		s.searchLength(q, order, e, ws, &best, &tr, rec)
		if !best.Found() {
			return Match{}, fmt.Errorf("query: no candidate found (empty length entry)")
		}
		return best, nil
	case MatchAny:
		lengths := s.global.lengthOrder(len(q))
		if len(lengths) == 0 {
			return Match{}, fmt.Errorf("query: base has no indexed lengths")
		}
		best := Match{Dist: math.Inf(1)}
		for _, l := range lengths {
			tr.LengthsVisited++
			repNorm := s.searchLength(q, order, s.global.base.Entry(l), ws, &best, &tr, rec)
			// Sec. 5.3 stop rule, on the globally best representative.
			if !s.global.opts.DisableEarlyStop && repNorm <= s.global.base.ST/2 {
				break
			}
		}
		if !best.Found() {
			return Match{}, fmt.Errorf("query: no candidate found")
		}
		return best, nil
	default:
		return Match{}, fmt.Errorf("query: unknown match mode %d", mode)
	}
}

// searchLength scatters one length's representative scan across the shard
// units, then mines the winning global group's full (global) member list —
// the same compareRep + getKSim sequence as the monolithic searchLength.
// Work accumulates into the caller-owned tr (folded once per query).
func (s *Scatter) searchLength(q []float64, order []int, e *rspace.LengthEntry,
	ws *dist.Workspace, best *Match, tr *Trace, rec *obs.Trace) float64 {

	if e == nil || len(e.Groups) == 0 {
		return math.Inf(1)
	}
	divisor := dist.NormalizedDTWDivisor(len(q), e.Length)
	var sc obs.SpanScope
	var pre Trace
	if rec != nil {
		pre = *tr
		sc = rec.StartSpan("scan")
	}
	bestID, bestRaw := s.scanUnits(q, order, e.Length, s.units[e.Length], tr)
	if rec != nil {
		spanWork(sc.Attr("length", int64(e.Length)).Attr("shards", int64(len(s.shards))), pre, *tr).End()
	}
	if bestID < 0 {
		return math.Inf(1)
	}
	if rec != nil {
		pre = *tr
		sc = rec.StartSpan("refine")
	}
	s.global.mineGroup(q, e, bestID, bestRaw/divisor, ws, best, tr)
	if rec != nil {
		spanWork(sc.Attr("length", int64(e.Length)).Attr("group", int64(bestID)), pre, *tr).End()
	}
	return bestRaw / divisor
}

// scanUnits computes the argmin representative over the shard-owned units
// under the LB_Kim → LB_Keogh → early-abandoning-DTW cascade, with a shared
// atomic bound across workers. The scan is exact: pruning is strict
// (> cutoff), so every minimum-achieving representative is computed fully
// and the (distance, global id) reduce is deterministic at every worker
// count — ties on bit-equal distances resolve to the smallest global group
// id.
//
// This is the tightening-bound twin of Processor.scanReps' parallel branch
// (query.go) with the median-order stride replaced by the unit list; any
// change to either cascade's pruning inequalities or cutoff arithmetic must
// mirror the other, or layout equivalence breaks — the internal/shard
// property suite enforces this.
func (s *Scatter) scanUnits(q []float64, order []int, length int, units []scanUnit, tr *Trace) (int, float64) {
	n := len(units)
	if n == 0 {
		return -1, math.Inf(1)
	}
	sameLen := length == len(q)
	type hit struct {
		raw float64
		pos int
	}
	scan := func(lws *dist.Workspace, start, stride int, shared *parallel.MinBound, local *hit, ltr *Trace) {
		for pos := start; pos < n; pos += stride {
			u := units[pos]
			ltr.RepsExamined++
			cutoff := local.raw
			if shared != nil {
				if sb := shared.Load(); sb < cutoff {
					cutoff = sb
				}
			}
			rep := u.entry.Groups[u.local].Rep
			if !s.global.opts.DisableLowerBounds {
				if dist.LBKim(q, rep) > cutoff {
					ltr.PrunedByKim++
					continue
				}
				if sameLen {
					env := u.entry.Envelopes[u.local]
					if lb := dist.LBKeoghOrdered(q, env.Upper, env.Lower, order, cutoff); lb > cutoff {
						ltr.PrunedByKeogh++
						continue
					}
				}
			}
			ltr.DTWComputed++
			d := lws.DTWEarlyAbandon(q, rep, dist.Unconstrained, cutoff)
			if d < local.raw {
				local.raw, local.pos = d, pos
				if shared != nil {
					shared.Relax(d)
				}
			}
		}
	}

	workers := s.global.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < scanParallelMin {
		lws := s.global.pool.Get()
		defer s.global.pool.Put(lws)
		local := hit{raw: math.Inf(1), pos: -1}
		scan(lws, 0, 1, nil, &local, tr)
		if local.pos < 0 {
			return -1, math.Inf(1)
		}
		return units[local.pos].global, local.raw
	}
	shared := parallel.NewMinBound(math.Inf(1))
	locals := make([]hit, workers)
	traces := make([]Trace, workers)
	parallel.ForEach(workers, workers, func(w int) {
		lws := s.global.pool.Get()
		defer s.global.pool.Put(lws)
		locals[w] = hit{raw: math.Inf(1), pos: -1}
		scan(lws, w, workers, shared, &locals[w], &traces[w])
	})
	for _, t := range traces {
		tr.add(t)
	}
	win := hit{raw: math.Inf(1), pos: -1}
	for _, l := range locals {
		if l.pos < 0 {
			continue
		}
		if l.raw < win.raw || (l.raw == win.raw && l.pos < win.pos) {
			win = l
		}
	}
	if win.pos < 0 {
		return -1, math.Inf(1)
	}
	return units[win.pos].global, win.raw
}

// BestKMatches answers k-NN across the shards: per length, the fixed-cutoff
// representative scan scatters over the shard units, then the groups are
// verified in increasing rep-DTW order against the global member lists —
// the same procedure as the monolithic searchLengthK, heap bookkeeping
// included.
func (s *Scatter) BestKMatches(q []float64, mode MatchMode, k int) ([]Match, error) {
	return s.BestKMatchesObserved(q, mode, k, nil)
}

// BestKMatchesObserved is BestKMatches with optional span recording. The
// scan cutoff is fixed per length, so the work counters are identical at
// every worker count and shard layout for the decision-level fields.
func (s *Scatter) BestKMatchesObserved(q []float64, mode MatchMode, k int, rec *obs.Trace) ([]Match, error) {
	var tr Trace
	defer func() { s.global.counters.tick(); s.global.counters.fold(tr); observe(rec, tr) }()
	if k < 1 {
		return nil, fmt.Errorf("query: k must be ≥ 1, got %d", k)
	}
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	ws := s.global.pool.Get()
	defer s.global.pool.Put(ws)
	order := dist.QueryOrder(q)
	heap := newTopK(k)

	var lengths []int
	switch mode {
	case MatchExact:
		if s.global.base.Entry(len(q)) == nil {
			return nil, fmt.Errorf("query: length %d not indexed", len(q))
		}
		lengths = []int{len(q)}
	case MatchAny:
		lengths = s.global.lengthOrder(len(q))
		if len(lengths) == 0 {
			return nil, fmt.Errorf("query: base has no indexed lengths")
		}
	default:
		return nil, fmt.Errorf("query: unknown match mode %d", mode)
	}

	for _, l := range lengths {
		if mode == MatchAny {
			tr.LengthsVisited++
		}
		s.searchLengthK(q, order, s.global.base.Entry(l), ws, heap, &tr, rec)
	}
	out := heap.sorted()
	if len(out) == 0 {
		return nil, fmt.Errorf("query: no candidates found")
	}
	return out, nil
}

// searchLengthK is the scattered form of Processor.searchLengthK: the rep
// scan's cutoff is fixed for the whole length (no heap pushes can happen
// during it), so fanning it across the shard units is answer-preserving;
// member verification then replays on the global member lists through the
// shared verifyGroupK.
func (s *Scatter) searchLengthK(q []float64, order []int, e *rspace.LengthEntry,
	ws *dist.Workspace, heap *topK, tr *Trace, rec *obs.Trace) {

	if e == nil || len(e.Groups) == 0 {
		return
	}
	units := s.units[e.Length]
	divisor := dist.NormalizedDTWDivisor(len(q), e.Length)
	sameLen := e.Length == len(q)
	radiusRaw := s.global.base.ST / 2 * math.Sqrt(float64(e.Length))

	scanCutoff := heap.kth()*divisor + radiusRaw
	scanOne := func(lws *dist.Workspace, u scanUnit, ltr *Trace) (float64, bool) {
		return s.global.scanRepFixed(lws, q, order,
			u.entry.Groups[u.local].Rep, u.entry.Envelopes[u.local], sameLen, scanCutoff, ltr)
	}

	var sc obs.SpanScope
	var pre Trace
	if rec != nil {
		pre = *tr
		sc = rec.StartSpan("scan")
	}
	type repDist struct {
		global int
		d      float64
	}
	n := len(units)
	var reps []repDist
	workers := s.global.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < scanParallelMin {
		reps = make([]repDist, 0, n)
		for _, u := range units {
			if d, ok := scanOne(ws, u, tr); ok {
				reps = append(reps, repDist{global: u.global, d: d})
			}
		}
	} else {
		found := make([]repDist, n)
		kept := make([]bool, n)
		traces := make([]Trace, workers)
		parallel.ForEach(workers, workers, func(w int) {
			lws := s.global.pool.Get()
			defer s.global.pool.Put(lws)
			for i := w; i < n; i += workers {
				if d, ok := scanOne(lws, units[i], &traces[w]); ok {
					found[i] = repDist{global: units[i].global, d: d}
					kept[i] = true
				}
			}
		})
		for _, t := range traces {
			tr.add(t)
		}
		reps = make([]repDist, 0, n)
		for i, ok := range kept {
			if ok {
				reps = append(reps, found[i])
			}
		}
	}
	if rec != nil {
		spanWork(sc.Attr("length", int64(e.Length)).Attr("shards", int64(len(s.shards))), pre, *tr).End()
	}
	// Stable tie order: by distance, then by global group id (units are in
	// global-id order, so stability gives exactly that).
	sort.SliceStable(reps, func(a, b int) bool { return reps[a].d < reps[b].d })

	if rec != nil {
		pre = *tr
		sc = rec.StartSpan("refine")
	}
	groups := 0
	var bufs knnBufs
	for _, rd := range reps {
		// Re-check against the (possibly tightened) k-th distance.
		if rd.d > heap.kth()*divisor+radiusRaw {
			break
		}
		groups++
		s.global.verifyGroupK(q, e.Groups[rd.global], rd.global, e.Length, divisor, heap, ws, &bufs, tr)
	}
	if rec != nil {
		spanWork(sc.Attr("length", int64(e.Length)).Attr("groups", int64(groups)), pre, *tr).End()
	}
}

// RangeSearch scatters a range query: each shard answers it over its
// restriction with the monolithic code path and the per-shard result slices
// concatenate in shard order, remapped to global series/group ids. The
// result SET equals the monolithic one exactly (admission and verification
// decide per member against the shared global representative); only the
// slice order differs, and range results are documented as unordered.
func (s *Scatter) RangeSearch(q []float64, length int, radius float64) ([]RangeResult, error) {
	return s.RangeSearchObserved(q, length, radius, false, nil)
}

// RangeSearchExact is RangeSearch with exact distances on the Lemma 2
// guaranteed path, scattered the same way.
func (s *Scatter) RangeSearchExact(q []float64, length int, radius float64) ([]RangeResult, error) {
	return s.RangeSearchObserved(q, length, radius, true, nil)
}

// RangeSearchObserved is the scattered range search with work accounting:
// one shared trace accumulates across the shard passes and folds into the
// GLOBAL counters exactly once (the shard processors' own counters are not
// touched — the scatter executor owns the tally). With a non-nil rec each
// shard pass gets a "shard-range" span.
func (s *Scatter) RangeSearchObserved(q []float64, length int, radius float64,
	exact bool, rec *obs.Trace) ([]RangeResult, error) {

	var tr Trace
	defer func() { s.global.counters.tick(); s.global.counters.fold(tr); observe(rec, tr) }()
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	if radius < 0 || math.IsNaN(radius) || math.IsInf(radius, 0) {
		return nil, fmt.Errorf("query: invalid range radius %v", radius)
	}
	if s.global.base.Entry(length) == nil {
		return nil, fmt.Errorf("query: length %d not indexed", length)
	}
	// Shards run sequentially here: each shard's own range search already
	// fans its groups across the worker pool, so the budget is spent at the
	// inner level and the concatenation order stays shard order.
	var out []RangeResult
	for i, sv := range s.shards {
		var sc obs.SpanScope
		var pre Trace
		if rec != nil {
			pre = tr
			sc = rec.StartSpan("shard-range")
		}
		// rec is nil on the inner call: the per-shard span above already
		// covers it, and the shard's work lands in the shared tr.
		rs, err := sv.Proc.rangeSearch(q, length, radius, exact, &tr, nil)
		if err != nil {
			return nil, err
		}
		gids := sv.GlobalIDs[length]
		for j := range rs {
			rs[j].SeriesID = sv.Series[rs[j].SeriesID]
			rs[j].GroupID = gids[rs[j].GroupID]
		}
		out = append(out, rs...)
		if rec != nil {
			spanWork(sc.Attr("shard", int64(i)).Attr("results", int64(len(rs))), pre, tr).End()
		}
	}
	return out, nil
}

// SeasonalSample answers the user-driven class II query from the global
// grouping — identical to the monolithic answer, group ids included.
func (s *Scatter) SeasonalSample(seriesID, length int) ([]SeasonalGroup, error) {
	return s.global.SeasonalSample(seriesID, length)
}

// SeasonalSampleObserved is SeasonalSample with span recording.
func (s *Scatter) SeasonalSampleObserved(seriesID, length int, rec *obs.Trace) ([]SeasonalGroup, error) {
	return s.global.SeasonalSampleObserved(seriesID, length, rec)
}

// SeasonalAll answers the data-driven class II query from the global
// grouping.
func (s *Scatter) SeasonalAll(length int) ([]SeasonalGroup, error) {
	return s.global.SeasonalAll(length)
}

// SeasonalAllObserved is SeasonalAll with span recording.
func (s *Scatter) SeasonalAllObserved(length int, rec *obs.Trace) ([]SeasonalGroup, error) {
	return s.global.SeasonalAllObserved(length, rec)
}
