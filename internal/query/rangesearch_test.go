package query

import (
	"math"
	"testing"

	"onex/internal/dataset"
	"onex/internal/dist"
)

// bruteRange is the exhaustive reference range search.
func bruteRange(p *Processor, q []float64, length int, radius float64) map[[2]int]float64 {
	out := map[[2]int]float64{}
	var w dist.Workspace
	div := dist.NormalizedDTWDivisor(len(q), length)
	for _, s := range p.Base().Dataset.Series {
		for j := 0; j+length <= s.Len(); j++ {
			if d := w.DTW(q, s.Values[j:j+length]) / div; d <= radius {
				out[[2]int{s.ID, j}] = d
			}
		}
	}
	return out
}

func TestRangeSearchValidation(t *testing.T) {
	p := italyProcessor(t, []int{8})
	q := make([]float64, 8)
	if _, err := p.RangeSearch(nil, 8, 0.1); err == nil {
		t.Error("empty query: want error")
	}
	if _, err := p.RangeSearch(q, 9, 0.1); err == nil {
		t.Error("unindexed length: want error")
	}
	if _, err := p.RangeSearch(q, 8, -1); err == nil {
		t.Error("negative radius: want error")
	}
	if _, err := p.RangeSearch(q, 8, math.NaN()); err == nil {
		t.Error("NaN radius: want error")
	}
}

func TestRangeSearchSoundness(t *testing.T) {
	// Every verified (non-guaranteed) result must truly lie within the
	// radius; every guaranteed result must lie within max(radius, ST).
	p := italyProcessor(t, []int{8})
	d := p.Base().Dataset
	q := append([]float64(nil), d.Series[2].Values[4:12]...)
	for _, radius := range []float64{0.005, 0.02, 0.3} {
		res, err := p.RangeSearch(q, 8, radius)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			v := d.Series[r.SeriesID].Values[r.Start : r.Start+8]
			actual := dist.NormalizedDTW(q, v)
			bound := radius
			if r.Guaranteed {
				bound = math.Max(radius, p.Base().ST)
			}
			if actual > bound+1e-9 {
				t.Fatalf("radius %v: result %v at actual distance %v exceeds bound %v (guaranteed=%v)",
					radius, r.Match, actual, bound, r.Guaranteed)
			}
		}
	}
}

func TestRangeSearchCompleteness(t *testing.T) {
	// No subsequence within the radius may be missed (the pruning bound
	// must be admissible). Guaranteed results count as found.
	p := italyProcessor(t, []int{8})
	d := p.Base().Dataset
	q := append([]float64(nil), d.Series[0].Values[1:9]...)
	for i := range q {
		q[i] += 0.01 * float64(i%2)
	}
	for _, radius := range []float64{0.001, 0.01, 0.05} {
		want := bruteRange(p, q, 8, radius)
		res, err := p.RangeSearch(q, 8, radius)
		if err != nil {
			t.Fatal(err)
		}
		got := map[[2]int]bool{}
		for _, r := range res {
			got[[2]int{r.SeriesID, r.Start}] = true
		}
		for loc := range want {
			if !got[loc] {
				t.Fatalf("radius %v: missed subsequence %v at distance %v",
					radius, loc, want[loc])
			}
		}
	}
}

func TestRangeSearchWholesaleAdmission(t *testing.T) {
	// With radius ≥ ST and an in-dataset query, some group should be
	// admitted via Lemma 2 without member verification.
	p := italyProcessor(t, []int{8})
	d := p.Base().Dataset
	q := append([]float64(nil), d.Series[3].Values[2:10]...)
	res, err := p.RangeSearch(q, 8, p.Base().ST)
	if err != nil {
		t.Fatal(err)
	}
	guaranteed := 0
	for _, r := range res {
		if r.Guaranteed {
			guaranteed++
			if r.Dist != p.Base().ST {
				t.Errorf("guaranteed result carries Dist %v, want the ST bound %v", r.Dist, p.Base().ST)
			}
		}
	}
	if guaranteed == 0 {
		t.Error("no wholesale admissions for an in-dataset query at radius=ST")
	}
}

func TestRangeSearchZeroRadius(t *testing.T) {
	// Radius 0 returns exactly the identical subsequences.
	p := italyProcessor(t, []int{8})
	d := p.Base().Dataset
	q := append([]float64(nil), d.Series[1].Values[5:13]...)
	res, err := p.RangeSearch(q, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	foundSelf := false
	for _, r := range res {
		if r.SeriesID == 1 && r.Start == 5 {
			foundSelf = true
		}
		if r.Dist > 1e-9 {
			t.Errorf("radius-0 result at distance %v", r.Dist)
		}
	}
	if !foundSelf {
		t.Error("radius-0 search missed the query's own occurrence")
	}
}

func TestRangeSearchFarQueryEmpty(t *testing.T) {
	p := italyProcessor(t, []int{8})
	q := make([]float64, 8)
	for i := range q {
		q[i] = 50 // far outside the normalized [0,1] data
	}
	res, err := p.RangeSearch(q, 8, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("far query returned %d results", len(res))
	}
}

func TestRangeSearchPruningSavesWork(t *testing.T) {
	// Statistical check that the representative-level prune actually
	// triggers: a tight radius should touch far fewer members than exist.
	d := dataset.ECG.Scaled(0.15).Generate(6)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	p := buildProcessor(t, d, 0.2, []int{24}, Options{})
	q := append([]float64(nil), d.Series[0].Values[10:34]...)
	res, err := p.RangeSearch(q, 24, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range p.Base().Entry(24).Groups {
		total += g.Count()
	}
	if len(res) >= total {
		t.Errorf("tight radius returned %d of %d members", len(res), total)
	}
}
