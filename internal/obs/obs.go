// Package obs provides the request-scoped observability primitives shared
// by the HTTP layer and the query engine: a nil-safe span-recording Trace
// threaded hub → scatter → processor, a bounded keep-the-slowest log
// backing GET /v1/debug/slow, and request-ID plumbing.
//
// The package is a stdlib-only leaf: it is imported by internal/query,
// internal/hub and internal/api and imports none of them. Every method on
// *Trace and SpanScope is safe on a nil/zero receiver and does no work
// there — engine hot paths thread rec==nil when tracing is off, so the
// disabled path stays allocation-free (guarded by
// BenchmarkBestMatchObservedNilAllocs in internal/query).
package obs

import (
	"sync"
	"time"
)

// Attr is one integer annotation on a span ("repsExamined": 412). Fixed
// int64 values keep recording free of interface boxing.
type Attr struct {
	Key   string `json:"key"`
	Value int64  `json:"value"`
}

// Span is one recorded stage of a request (cache lookup, per-shard rep
// scan, refinement, merge). Times are microsecond offsets from the trace
// start so a trace serializes compactly and is immune to wall-clock
// adjustments mid-request.
type Span struct {
	Name        string `json:"name"`
	StartMicros int64  `json:"startMicros"`
	DurMicros   int64  `json:"durationMicros"`
	Attrs       []Attr `json:"attrs,omitempty"`
}

// Trace accumulates spans and work counters for one request. A nil *Trace
// is the disabled state: every method no-ops, so engine code threads the
// pointer unconditionally instead of branching on a flag. All methods are
// safe for concurrent use (parallel scan workers may annotate spans).
type Trace struct {
	mu    sync.Mutex
	id    string
	start time.Time
	spans []Span
	work  map[string]int64
}

// NewTrace starts a trace identified by the given request ID.
func NewTrace(requestID string) *Trace {
	return &Trace{id: requestID, start: time.Now()}
}

// RequestID returns the ID the trace was created with ("" on nil).
func (t *Trace) RequestID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a named span and returns its scope. The scope is a value
// type (no allocation on the disabled path) and is inert when t is nil.
func (t *Trace) StartSpan(name string) SpanScope {
	if t == nil {
		return SpanScope{}
	}
	t.mu.Lock()
	idx := len(t.spans)
	t.spans = append(t.spans, Span{Name: name, StartMicros: time.Since(t.start).Microseconds()})
	t.mu.Unlock()
	return SpanScope{t: t, idx: idx}
}

// Add accumulates a trace-level work counter — the roll-up the API returns
// as the trace's "work" section. The engine folds exactly the same
// per-query Trace it folds into its lifetime counters, so these totals sum
// consistently with /v1/stats deltas.
func (t *Trace) Add(key string, v int64) {
	if t == nil || v == 0 {
		return
	}
	t.mu.Lock()
	if t.work == nil {
		t.work = make(map[string]int64, 8)
	}
	t.work[key] += v
	t.mu.Unlock()
}

// ElapsedMicros returns microseconds elapsed since the trace started (0 on
// nil) — the rebasing anchor when folding span payloads recorded in a
// remote process's own timebase (see AddSpan).
func (t *Trace) ElapsedMicros() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.start).Microseconds()
}

// AddSpan appends a fully-formed span. StartMicros must already be an
// offset in this trace's timebase: callers folding a remote payload rebase
// each span by the ElapsedMicros anchor captured when the remote call
// began. The trace takes ownership of the span's Attrs slice. No-op on nil.
func (t *Trace) AddSpan(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// SpanScope annotates and ends one open span. The zero value is inert.
type SpanScope struct {
	t   *Trace
	idx int
}

// Attr appends an integer attribute to the span and returns the scope for
// chaining. Fixed arity (no variadic) keeps the disabled path free of
// slice allocation.
func (s SpanScope) Attr(key string, v int64) SpanScope {
	if s.t == nil {
		return s
	}
	s.t.mu.Lock()
	sp := &s.t.spans[s.idx]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Value: v})
	s.t.mu.Unlock()
	return s
}

// End stamps the span's duration.
func (s SpanScope) End() {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	sp := &s.t.spans[s.idx]
	sp.DurMicros = time.Since(s.t.start).Microseconds() - sp.StartMicros
	s.t.mu.Unlock()
}

// View is the serializable form of a trace: what "explain": true returns
// and what /v1/debug/slow retains.
type View struct {
	RequestID      string           `json:"requestId,omitempty"`
	DurationMicros int64            `json:"durationMicros"`
	Spans          []Span           `json:"spans"`
	Work           map[string]int64 `json:"work,omitempty"`
}

// Snapshot freezes the trace into its view. Attribute slices and the work
// map are deep-copied so a retained view (slow log) never aliases a trace
// that might still be written. Nil yields the zero view.
func (t *Trace) Snapshot() View {
	if t == nil {
		return View{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v := View{
		RequestID:      t.id,
		DurationMicros: time.Since(t.start).Microseconds(),
		Spans:          append([]Span(nil), t.spans...),
	}
	for i := range v.Spans {
		if len(v.Spans[i].Attrs) > 0 {
			v.Spans[i].Attrs = append([]Attr(nil), v.Spans[i].Attrs...)
		}
	}
	if len(t.work) > 0 {
		v.Work = make(map[string]int64, len(t.work))
		for k, val := range t.work {
			v.Work[k] = val
		}
	}
	return v
}
