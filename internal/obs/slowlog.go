package obs

import (
	"sort"
	"sync"
	"time"
)

// SlowEntry is one retained slow query: where it ran, how long it took,
// and the full trace explaining why.
type SlowEntry struct {
	RequestID string `json:"requestId"`
	Route     string `json:"route"`
	Dataset   string `json:"dataset,omitempty"`
	Family    string `json:"family"`
	JobID     string `json:"jobId,omitempty"`
	// Transport is the dataset's shard transport kind ("local" or
	// "remote"); Workers lists the shard-worker addresses when remote — so
	// distributed entries are distinguishable at a glance.
	Transport      string    `json:"transport,omitempty"`
	Workers        []string  `json:"workers,omitempty"`
	Time           time.Time `json:"time"`
	DurationMicros int64     `json:"durationMicros"`
	Trace          View      `json:"trace"`
}

// SlowLog retains the N slowest queries seen so far under a mutex: Record
// replaces the current minimum once full, Snapshot returns entries sorted
// slowest first. Memory is bounded by the capacity; recording is O(N) with
// small fixed N, negligible next to any query worth retaining.
type SlowLog struct {
	mu      sync.Mutex
	cap     int
	entries []SlowEntry
}

// NewSlowLog returns a log retaining the `capacity` slowest queries.
func NewSlowLog(capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{cap: capacity}
}

// Record offers one finished query to the log. It is kept if the log has
// room or if it is slower than the current fastest retained entry.
func (l *SlowLog) Record(e SlowEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
		return
	}
	minI := 0
	for i := 1; i < len(l.entries); i++ {
		if l.entries[i].DurationMicros < l.entries[minI].DurationMicros {
			minI = i
		}
	}
	if e.DurationMicros > l.entries[minI].DurationMicros {
		l.entries[minI] = e
	}
}

// Snapshot returns the retained entries sorted slowest first.
func (l *SlowLog) Snapshot() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := append([]SlowEntry(nil), l.entries...)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DurationMicros > out[j].DurationMicros })
	return out
}
