package obs

import (
	"crypto/rand"
	"encoding/hex"
)

// NewRequestID returns a fresh 16-hex-char request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// A rand failure is not worth failing the request over; a fixed
		// fallback still lets the response carry *an* ID.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// SanitizeRequestID validates an inbound X-Request-Id so untrusted input
// cannot inject header/log noise: printable ASCII without spaces, at most
// 128 bytes. Returns "" when unusable (caller then generates a fresh ID).
func SanitizeRequestID(id string) string {
	if id == "" || len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if c := id[i]; c <= ' ' || c > '~' {
			return ""
		}
	}
	return id
}
