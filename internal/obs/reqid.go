package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// ctxKey is the private context-key namespace for request-scoped values.
type ctxKey int

const (
	requestIDKey ctxKey = iota
	traceKey
)

// ContextWithTrace returns a context carrying the live trace recorder, for
// layers below the rec-threading seam (shard transports) that only see a
// context. A nil trace returns ctx unchanged.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey, t)
}

// TraceFromContext returns the trace stored by ContextWithTrace, or nil
// when the request is untraced.
func TraceFromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// ContextWithRequestID returns a context carrying the request id, for
// propagation across API boundaries (HTTP middleware → engine → shard
// transports). An empty id returns ctx unchanged.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFromContext returns the request id stored by
// ContextWithRequestID, or "" when none is set.
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// NewRequestID returns a fresh 16-hex-char request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// A rand failure is not worth failing the request over; a fixed
		// fallback still lets the response carry *an* ID.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// SanitizeRequestID validates an inbound X-Request-Id so untrusted input
// cannot inject header/log noise: printable ASCII without spaces, at most
// 128 bytes. Returns "" when unusable (caller then generates a fresh ID).
func SanitizeRequestID(id string) string {
	if id == "" || len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if c := id[i]; c <= ' ' || c > '~' {
			return ""
		}
	}
	return id
}
