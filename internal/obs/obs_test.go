package obs

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	sc := tr.StartSpan("scan")
	sc = sc.Attr("reps", 7)
	sc.End()
	tr.Add("dtw", 3)
	if got := tr.RequestID(); got != "" {
		t.Fatalf("nil RequestID = %q", got)
	}
	v := tr.Snapshot()
	if v.RequestID != "" || len(v.Spans) != 0 || v.Work != nil {
		t.Fatalf("nil Snapshot = %+v", v)
	}
}

func TestNilTraceAllocFree(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(100, func() {
		sc := tr.StartSpan("scan")
		sc = sc.Attr("reps", 7)
		sc.End()
		tr.Add("dtw", 3)
	})
	if allocs != 0 {
		t.Fatalf("nil trace path allocates %.1f per op, want 0", allocs)
	}
}

func TestTraceSpansAndWork(t *testing.T) {
	tr := NewTrace("req-1")
	s1 := tr.StartSpan("cache").Attr("hit", 0)
	s1.End()
	s2 := tr.StartSpan("scan").Attr("reps", 12).Attr("dtw", 4)
	s2.End()
	tr.Add("repsExamined", 12)
	tr.Add("repsExamined", 3)
	tr.Add("dtwComputed", 4)
	tr.Add("zero", 0) // zero deltas must not create keys

	v := tr.Snapshot()
	if v.RequestID != "req-1" {
		t.Fatalf("RequestID = %q", v.RequestID)
	}
	if len(v.Spans) != 2 || v.Spans[0].Name != "cache" || v.Spans[1].Name != "scan" {
		t.Fatalf("spans = %+v", v.Spans)
	}
	if len(v.Spans[1].Attrs) != 2 || v.Spans[1].Attrs[0] != (Attr{"reps", 12}) {
		t.Fatalf("scan attrs = %+v", v.Spans[1].Attrs)
	}
	if v.Work["repsExamined"] != 15 || v.Work["dtwComputed"] != 4 {
		t.Fatalf("work = %+v", v.Work)
	}
	if _, ok := v.Work["zero"]; ok {
		t.Fatalf("zero-valued Add created a work key: %+v", v.Work)
	}
	if v.Spans[0].StartMicros < 0 || v.Spans[1].StartMicros < v.Spans[0].StartMicros {
		t.Fatalf("span offsets not monotone: %+v", v.Spans)
	}
	if _, err := json.Marshal(v); err != nil {
		t.Fatalf("view not serializable: %v", err)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	tr := NewTrace("r")
	sc := tr.StartSpan("scan").Attr("a", 1)
	v := tr.Snapshot()
	sc.Attr("b", 2).End()
	tr.Add("late", 1)
	if len(v.Spans[0].Attrs) != 1 {
		t.Fatalf("snapshot aliased live attrs: %+v", v.Spans[0].Attrs)
	}
	if v.Work != nil {
		t.Fatalf("snapshot aliased live work map: %+v", v.Work)
	}
}

func TestSlowLogKeepsSlowest(t *testing.T) {
	l := NewSlowLog(3)
	for _, d := range []int64{10, 50, 20, 5, 80, 30} {
		l.Record(SlowEntry{DurationMicros: d, Time: time.Now()})
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d entries, want 3", len(got))
	}
	want := []int64{80, 50, 30}
	for i, e := range got {
		if e.DurationMicros != want[i] {
			t.Fatalf("entry %d = %d, want %d (all: %+v)", i, e.DurationMicros, want[i], got)
		}
	}
}

func TestSlowLogNilAndTinyCap(t *testing.T) {
	var l *SlowLog
	l.Record(SlowEntry{DurationMicros: 1})
	if got := l.Snapshot(); got != nil {
		t.Fatalf("nil SlowLog snapshot = %+v", got)
	}
	l2 := NewSlowLog(0) // clamps to 1
	l2.Record(SlowEntry{DurationMicros: 1})
	l2.Record(SlowEntry{DurationMicros: 9})
	l2.Record(SlowEntry{DurationMicros: 4})
	got := l2.Snapshot()
	if len(got) != 1 || got[0].DurationMicros != 9 {
		t.Fatalf("cap-1 snapshot = %+v", got)
	}
}

func TestAddSpanAndElapsed(t *testing.T) {
	var nilTr *Trace
	nilTr.AddSpan(Span{Name: "x"}) // must not panic
	if got := nilTr.ElapsedMicros(); got != 0 {
		t.Fatalf("nil ElapsedMicros = %d", got)
	}

	tr := NewTrace("r")
	time.Sleep(time.Millisecond)
	if e := tr.ElapsedMicros(); e <= 0 {
		t.Fatalf("ElapsedMicros = %d after sleeping", e)
	}
	tr.AddSpan(Span{Name: "worker-scan", StartMicros: 5, DurMicros: 9,
		Attrs: []Attr{{Key: "dtwComputed", Value: 3}}})
	v := tr.Snapshot()
	if len(v.Spans) != 1 || v.Spans[0].Name != "worker-scan" || v.Spans[0].DurMicros != 9 {
		t.Fatalf("spans = %+v", v.Spans)
	}
	if len(v.Spans[0].Attrs) != 1 || v.Spans[0].Attrs[0] != (Attr{"dtwComputed", 3}) {
		t.Fatalf("attrs = %+v", v.Spans[0].Attrs)
	}
}

func TestContextWithTrace(t *testing.T) {
	ctx := context.Background()
	if got := TraceFromContext(ctx); got != nil {
		t.Fatalf("empty ctx trace = %v", got)
	}
	if got := ContextWithTrace(ctx, nil); got != ctx {
		t.Fatal("nil trace should return ctx unchanged")
	}
	tr := NewTrace("r")
	if got := TraceFromContext(ContextWithTrace(ctx, tr)); got != tr {
		t.Fatalf("round-tripped trace = %v, want %v", got, tr)
	}
}

func TestRequestIDHelpers(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Fatalf("NewRequestID: %q vs %q", a, b)
	}
	cases := map[string]string{
		"abc-123":                 "abc-123",
		"":                        "",
		"has space":               "",
		"ctrl\x01char":            "",
		"unicode-é":               "",
		"ok_ID.v2/trace":          "ok_ID.v2/trace",
		string(make([]byte, 200)): "",
	}
	for in, want := range cases {
		if got := SanitizeRequestID(in); got != want {
			t.Errorf("SanitizeRequestID(%q) = %q, want %q", in, got, want)
		}
	}
}
