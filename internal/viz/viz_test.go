package viz

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparkline(t *testing.T) {
	got := Sparkline([]float64{0, 1})
	if utf8.RuneCountInString(got) != 2 {
		t.Fatalf("rune count = %d, want 2", utf8.RuneCountInString(got))
	}
	runes := []rune(got)
	if runes[0] != '▁' || runes[1] != '█' {
		t.Errorf("Sparkline(0,1) = %q, want lowest+highest glyphs", got)
	}
	if Sparkline(nil) != "" {
		t.Error("empty input should render empty")
	}
	// Constant series renders mid-height without panicking.
	flat := Sparkline([]float64{5, 5, 5})
	if utf8.RuneCountInString(flat) != 3 {
		t.Errorf("flat series = %q", flat)
	}
}

func TestSparklineMonotone(t *testing.T) {
	// A ramp must render non-decreasing glyph heights.
	ramp := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	got := []rune(Sparkline(ramp))
	rank := map[rune]int{}
	for i, r := range sparkRunes {
		rank[r] = i
	}
	for i := 1; i < len(got); i++ {
		if rank[got[i]] < rank[got[i-1]] {
			t.Fatalf("ramp rendered non-monotonically: %q", string(got))
		}
	}
}

func TestSparklineScaledClamps(t *testing.T) {
	// Values outside [lo,hi] clamp to the extreme glyphs instead of
	// panicking.
	got := []rune(SparklineScaled([]float64{-10, 0.5, 10}, 0, 1))
	if got[0] != '▁' || got[2] != '█' {
		t.Errorf("clamping failed: %q", string(got))
	}
}

func TestPlot(t *testing.T) {
	out := Plot([]float64{0, 1, 2, 3, 2, 1, 0}, 7, 4)
	if out == "" {
		t.Fatal("empty plot")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // 4 rows + axis
		t.Fatalf("plot has %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "*") {
		t.Error("plot contains no points")
	}
	if !strings.Contains(lines[0], "3.000") || !strings.Contains(lines[3], "0.000") {
		t.Errorf("axis labels missing:\n%s", out)
	}
	if Plot(nil, 10, 4) != "" || Plot([]float64{1}, 0, 4) != "" {
		t.Error("degenerate plots should be empty")
	}
}

func TestPlotResamplesLongSeries(t *testing.T) {
	long := make([]float64, 1000)
	for i := range long {
		long[i] = float64(i % 50)
	}
	out := Plot(long, 40, 6)
	lines := strings.Split(out, "\n")
	// Every plot row must be the label + "|" + ≤40 columns.
	for _, l := range lines {
		if i := strings.IndexByte(l, '|'); i >= 0 && len(l)-i-1 > 40 {
			t.Fatalf("row wider than 40 columns: %q", l)
		}
	}
}

func TestCompare(t *testing.T) {
	out := Compare([]float64{0, 1, 0}, []float64{0, 0.9, 0.1}, 0.123)
	if !strings.Contains(out, "query") || !strings.Contains(out, "match") {
		t.Errorf("Compare output missing labels:\n%s", out)
	}
	if !strings.Contains(out, "0.1230") {
		t.Errorf("Compare output missing distance:\n%s", out)
	}
}

func TestResample(t *testing.T) {
	out := resample([]float64{1, 1, 3, 3}, 2)
	if len(out) != 2 || out[0] != 1 || out[1] != 3 {
		t.Errorf("resample = %v, want [1 3]", out)
	}
	same := []float64{1, 2}
	if got := resample(same, 5); &got[0] != &same[0] {
		t.Error("short input should be returned as-is")
	}
}
