// Package viz renders time series as terminal text: one-line sparklines for
// compact listings and multi-row block plots for inspecting matches — the
// terminal stand-in for the paper's Qt charting frontend.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// sparkRunes are the eighth-block glyphs, shortest to tallest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders x as a single line of block glyphs, scaled to the
// series' own min/max. Constant or empty series render as mid-height bars.
func Sparkline(x []float64) string {
	if len(x) == 0 {
		return ""
	}
	min, max := minMax(x)
	var b strings.Builder
	b.Grow(len(x) * 3) // runes are 3 bytes each
	span := max - min
	for _, v := range x {
		idx := len(sparkRunes) / 2
		if span > 0 {
			idx = int((v - min) / span * float64(len(sparkRunes)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// SparklineScaled renders x against an explicit [lo, hi] range so several
// series can share one scale (e.g. a query next to its match).
func SparklineScaled(x []float64, lo, hi float64) string {
	if len(x) == 0 {
		return ""
	}
	var b strings.Builder
	b.Grow(len(x) * 3)
	span := hi - lo
	for _, v := range x {
		idx := len(sparkRunes) / 2
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkRunes)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Plot renders x as a rows×width character plot with axis labels. Values
// are column-averaged down to width points when the series is longer.
func Plot(x []float64, width, rows int) string {
	if len(x) == 0 || width < 1 || rows < 1 {
		return ""
	}
	cols := resample(x, width)
	min, max := minMax(cols)
	span := max - min
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(cols)))
	}
	for c, v := range cols {
		row := 0
		if span > 0 {
			row = int((v - min) / span * float64(rows-1))
		}
		grid[rows-1-row][c] = '*'
	}
	var b strings.Builder
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.3f ", max)
		case rows - 1:
			label = fmt.Sprintf("%7.3f ", min)
		}
		b.WriteString(label)
		b.WriteString("|")
		b.Write(line)
		b.WriteString("\n")
	}
	b.WriteString(strings.Repeat(" ", 8))
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", len(cols)))
	b.WriteString("\n")
	return b.String()
}

// Compare renders a query and a match on one shared scale, labelled.
func Compare(query, match []float64, dist float64) string {
	lo := math.Min(minOf(query), minOf(match))
	hi := math.Max(maxOf(query), maxOf(match))
	var b strings.Builder
	fmt.Fprintf(&b, "query  %s\n", SparklineScaled(query, lo, hi))
	fmt.Fprintf(&b, "match  %s  (dist %.4f)\n", SparklineScaled(match, lo, hi), dist)
	return b.String()
}

// resample column-averages x down to width points (or returns it as-is).
func resample(x []float64, width int) []float64 {
	if len(x) <= width {
		return x
	}
	out := make([]float64, width)
	for c := 0; c < width; c++ {
		lo := c * len(x) / width
		hi := (c + 1) * len(x) / width
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for _, v := range x[lo:hi] {
			sum += v
		}
		out[c] = sum / float64(hi-lo)
	}
	return out
}

func minMax(x []float64) (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range x {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

func minOf(x []float64) float64 { m, _ := minMax(x); return m }
func maxOf(x []float64) float64 { _, m := minMax(x); return m }
