package shard

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"
	"time"

	"onex/internal/obs"
	"onex/internal/query"
	"onex/internal/rspace"
)

// ---- queries -----------------------------------------------------------
//
// Query methods take a context: a sharded engine fans per-shard work out
// through its ShardTransports (goroutines in-process, HTTP calls when the
// layout is remote), and a canceled or timed-out ctx stops the remaining
// fan-out between rounds. Cancellation only ever abandons work — an answer
// returned despite a racing cancel is still exact. The unsharded backend
// answers synchronously in-process and ignores ctx. Seasonal queries read
// the global grouping at the coordinator and take no ctx.

// BestMatch answers Q1 — scattered across shards when the layout is sharded,
// on the embedded single engine otherwise. Answers are identical either way.
func (e *Engine) BestMatch(ctx context.Context, q []float64, mode query.MatchMode) (query.Match, error) {
	if e.mono != nil {
		return e.mono.Proc.BestMatch(q, mode)
	}
	return e.scatter.BestMatch(ctx, q, mode)
}

// BestMatchObserved is BestMatch with optional span/work recording on a
// non-nil rec (nil rec adds no overhead; answers are identical either way).
func (e *Engine) BestMatchObserved(ctx context.Context, q []float64, mode query.MatchMode, rec *obs.Trace) (query.Match, error) {
	if e.mono != nil {
		m, _, err := e.mono.Proc.BestMatchObserved(q, mode, rec)
		return m, err
	}
	return e.scatter.BestMatchObserved(ctx, q, mode, rec)
}

// BestMatchBatch answers many Q1 queries positionally with per-query errors.
func (e *Engine) BestMatchBatch(ctx context.Context, qs [][]float64, mode query.MatchMode) []query.BatchResult {
	if e.mono != nil {
		return e.mono.Proc.BestMatchBatch(qs, mode)
	}
	return e.scatter.BestMatchBatch(ctx, qs, mode)
}

// BestKMatches answers the k-NN generalization of Q1.
func (e *Engine) BestKMatches(ctx context.Context, q []float64, mode query.MatchMode, k int) ([]query.Match, error) {
	if e.mono != nil {
		return e.mono.Proc.BestKMatches(q, mode, k)
	}
	return e.scatter.BestKMatches(ctx, q, mode, k)
}

// BestKMatchesObserved is BestKMatches with optional span/work recording.
func (e *Engine) BestKMatchesObserved(ctx context.Context, q []float64, mode query.MatchMode, k int, rec *obs.Trace) ([]query.Match, error) {
	if e.mono != nil {
		return e.mono.Proc.BestKMatchesObserved(q, mode, k, rec)
	}
	return e.scatter.BestKMatchesObserved(ctx, q, mode, k, rec)
}

// BestKMatchesBatch answers many k-NN queries positionally with per-query
// errors; each item equals the corresponding BestKMatches call.
func (e *Engine) BestKMatchesBatch(ctx context.Context, qs []query.KNNQuery) []query.KNNBatchResult {
	if e.mono != nil {
		return e.mono.Proc.BestKMatchesBatch(qs)
	}
	return e.scatter.BestKMatchesBatch(ctx, qs)
}

// RangeSearchBatch answers many range queries positionally with per-query
// errors; each item equals the corresponding RangeSearch(Exact) call.
func (e *Engine) RangeSearchBatch(ctx context.Context, qs []query.RangeQuery) []query.RangeBatchResult {
	if e.mono != nil {
		return e.mono.Proc.RangeSearchBatch(qs)
	}
	return e.scatter.RangeSearchBatch(ctx, qs)
}

// SeasonalBatch answers many seasonal queries positionally with per-query
// errors; SeriesID < 0 selects the data-driven form.
func (e *Engine) SeasonalBatch(qs []query.SeasonalQuery) []query.SeasonalBatchResult {
	if e.mono != nil {
		return e.mono.Proc.SeasonalBatch(qs)
	}
	return e.scatter.SeasonalBatch(qs)
}

// QueryCounters snapshots the engine's lifetime query work tally (queries
// answered across every family plus the Q1 bound-pruning counters).
func (e *Engine) QueryCounters() query.CountersSnapshot {
	if e.mono != nil {
		return e.mono.Proc.Counters().Snapshot()
	}
	return e.scatter.Counters().Snapshot()
}

// RangeSearch answers a range query (ST-upper-bound distances on the
// guaranteed path).
func (e *Engine) RangeSearch(ctx context.Context, q []float64, length int, radius float64) ([]query.RangeResult, error) {
	if e.mono != nil {
		return e.mono.Proc.RangeSearch(q, length, radius)
	}
	return e.scatter.RangeSearch(ctx, q, length, radius)
}

// RangeSearchExact answers a range query with exact distances everywhere.
func (e *Engine) RangeSearchExact(ctx context.Context, q []float64, length int, radius float64) ([]query.RangeResult, error) {
	if e.mono != nil {
		return e.mono.Proc.RangeSearchExact(q, length, radius)
	}
	return e.scatter.RangeSearchExact(ctx, q, length, radius)
}

// RangeSearchObserved answers a range query with optional span/work
// recording; exact selects the RangeSearchExact distance semantics.
func (e *Engine) RangeSearchObserved(ctx context.Context, q []float64, length int, radius float64, exact bool, rec *obs.Trace) ([]query.RangeResult, error) {
	if e.mono != nil {
		return e.mono.Proc.RangeSearchObserved(q, length, radius, exact, rec)
	}
	return e.scatter.RangeSearchObserved(ctx, q, length, radius, exact, rec)
}

// SeasonalSample answers the user-driven class II query.
func (e *Engine) SeasonalSample(seriesID, length int) ([]query.SeasonalGroup, error) {
	if e.mono != nil {
		return e.mono.Proc.SeasonalSample(seriesID, length)
	}
	return e.scatter.SeasonalSample(seriesID, length)
}

// SeasonalSampleObserved is SeasonalSample with optional span recording.
func (e *Engine) SeasonalSampleObserved(seriesID, length int, rec *obs.Trace) ([]query.SeasonalGroup, error) {
	if e.mono != nil {
		return e.mono.Proc.SeasonalSampleObserved(seriesID, length, rec)
	}
	return e.scatter.SeasonalSampleObserved(seriesID, length, rec)
}

// SeasonalAll answers the data-driven class II query.
func (e *Engine) SeasonalAll(length int) ([]query.SeasonalGroup, error) {
	if e.mono != nil {
		return e.mono.Proc.SeasonalAll(length)
	}
	return e.scatter.SeasonalAll(length)
}

// SeasonalAllObserved is SeasonalAll with optional span recording.
func (e *Engine) SeasonalAllObserved(length int, rec *obs.Trace) ([]query.SeasonalGroup, error) {
	if e.mono != nil {
		return e.mono.Proc.SeasonalAllObserved(length, rec)
	}
	return e.scatter.SeasonalAllObserved(length, rec)
}

// Recommend answers the class III threshold recommendation. The critical
// values come from the ONE global grouping every layout shares — computed
// at assemble time with on-demand inter-representative distances
// (rspace.MergeThresholdsFor), never aggregated from per-shard structures —
// so the recommendation is bit-identical to the unsharded engine's at every
// shard count. length < 0 selects the dataset-global values, mirroring
// rspace.Base.Recommend.
func (e *Engine) Recommend(d rspace.Degree, length int) (lo, hi float64, err error) {
	if e.mono != nil {
		return e.mono.Base.Recommend(d, length)
	}
	half, final, err := e.globalCriticalValues(length)
	if err != nil {
		return 0, 0, err
	}
	switch d {
	case rspace.Strict:
		return 0, half, nil
	case rspace.Medium:
		return half, final, nil
	case rspace.Loose:
		return final, math.Inf(1), nil
	default:
		return 0, 0, errors.New("rspace: unknown similarity degree")
	}
}

// DegreeOf classifies a threshold on the engine's S/M/L scale. The
// classification reads the precomputed dataset-global critical values
// (which exist for every assembled engine, so no error path remains —
// the previous implementation silently discarded a lookup error and
// classified against zero thresholds).
func (e *Engine) DegreeOf(st float64) rspace.Degree {
	if e.mono != nil {
		return e.mono.Base.DegreeOf(st)
	}
	switch {
	case st < e.globalSTHalf:
		return rspace.Strict
	case st < e.globalSTFinal:
		return rspace.Medium
	default:
		return rspace.Loose
	}
}

// globalCriticalValues returns the global grouping's critical thresholds;
// length < 0 selects the dataset-global maxima over lengths.
func (e *Engine) globalCriticalValues(length int) (half, final float64, err error) {
	if length < 0 {
		return e.globalSTHalf, e.globalSTFinal, nil
	}
	half, ok := e.spHalf[length]
	if !ok {
		return 0, 0, errors.New("rspace: length not indexed")
	}
	return half, e.spFinal[length], nil
}

// WithThreshold adapts the engine to a new similarity threshold (Sec. 5.2).
// Sharded layouts refuse: the split/merge adaptation operates on the global
// inter-representative structure the sharded layout partitions away —
// rebuild at the new threshold (or adapt an unsharded base) instead.
func (e *Engine) WithThreshold(stPrime float64) (*Engine, error) {
	if e.mono != nil {
		mono, err := e.mono.WithThreshold(stPrime)
		if err != nil {
			return nil, err
		}
		return &Engine{mono: mono}, nil
	}
	return nil, errors.New("shard: sharded bases cannot adapt thresholds in place; rebuild with the new ST (or adapt an unsharded base)")
}

// ---- accessors ---------------------------------------------------------

// ST returns the build similarity threshold.
func (e *Engine) ST() float64 {
	if e.mono != nil {
		return e.mono.Base.ST
	}
	return e.grouped.ST
}

// Name returns the dataset name.
func (e *Engine) Name() string {
	if e.mono != nil {
		return e.mono.Base.Dataset.Name
	}
	return e.data.Name
}

// NumSeries returns the number of indexed series.
func (e *Engine) NumSeries() int {
	if e.mono != nil {
		return e.mono.Base.Dataset.N()
	}
	return e.data.N()
}

// Lengths returns the indexed subsequence lengths, ascending (a fresh
// slice).
func (e *Engine) Lengths() []int {
	if e.mono != nil {
		return append([]int(nil), e.mono.Base.Lengths...)
	}
	return append([]int(nil), e.grouped.Lengths...)
}

// Window returns the normalized values of one indexed subsequence. The
// slice aliases the engine's (immutable) data; callers must not mutate it.
func (e *Engine) Window(seriesID, start, length int) []float64 {
	if e.mono != nil {
		return e.mono.Base.Dataset.Series[seriesID].Values[start : start+length]
	}
	return e.data.Series[seriesID].Values[start : start+length]
}

// Drift reports the incremental-member fraction since the last full build.
func (e *Engine) Drift() float64 {
	if e.mono != nil {
		return e.mono.Drift()
	}
	return e.grouped.Drift()
}

// BuildTime reports the offline construction cost (or, after a snapshot
// reload, the original build's).
func (e *Engine) BuildTime() time.Duration {
	if e.mono != nil {
		return e.mono.BuildTime
	}
	return e.buildTime
}

// Rebuilds counts drift-triggered full rebuilds along the maintenance
// lineage.
func (e *Engine) Rebuilds() int64 {
	if e.mono != nil {
		return e.mono.Rebuilds()
	}
	return e.rebuilds
}

// LastRebuild is the wall-clock cost of the most recent drift-triggered
// rebuild (zero if none).
func (e *Engine) LastRebuild() time.Duration {
	if e.mono != nil {
		return e.mono.LastRebuild()
	}
	return e.lastRebuild
}

// TotalGroups counts representatives across all lengths.
func (e *Engine) TotalGroups() int {
	if e.mono != nil {
		return e.mono.Base.TotalGroups()
	}
	return e.grouped.TotalGroups()
}

// TotalSubseq counts indexed subsequences.
func (e *Engine) TotalSubseq() int64 {
	if e.mono != nil {
		return e.mono.Base.TotalSubseq
	}
	return e.grouped.TotalSubseq
}

// SizeBytes estimates the resident index size — for a sharded layout, the
// sum of the per-shard GTI+LSI structures (sparse top-k Dc neighbor lists,
// envelopes and scan orders over each shard's restricted group sets).
func (e *Engine) SizeBytes() int64 {
	if e.mono != nil {
		return e.mono.Base.SizeBytes()
	}
	var total int64
	for _, p := range e.parts {
		total += p.transport.Stats().IndexBytes
	}
	return total
}

// STHalf returns the dataset-global half-merge critical threshold, computed
// from the global grouping (bit-identical at every shard count; see
// Recommend).
func (e *Engine) STHalf() float64 {
	if e.mono != nil {
		return e.mono.Base.GlobalSTHalf
	}
	return e.globalSTHalf
}

// STFinal returns the dataset-global all-merge critical threshold.
func (e *Engine) STFinal() float64 {
	if e.mono != nil {
		return e.mono.Base.GlobalSTFinal
	}
	return e.globalSTFinal
}

// ---- shard observability ----------------------------------------------

// Stat describes one shard of the layout.
type Stat struct {
	// Shard is the shard index.
	Shard int
	// Series counts the series routed to this shard.
	Series int
	// Groups counts the restricted groups across lengths (a group spanning
	// k shards appears in k of these counts).
	Groups int
	// Subsequences counts the indexed subsequences resident in the shard.
	Subsequences int64
	// IndexBytes estimates the shard's GTI+LSI size.
	IndexBytes int64
}

// ShardCount reports the serving layout (1 for unsharded engines).
func (e *Engine) ShardCount() int {
	if e.mono != nil {
		return 1
	}
	return e.shards
}

// ShardStats describes each shard of the layout; unsharded engines report
// one shard covering everything.
func (e *Engine) ShardStats() []Stat {
	if e.mono != nil {
		return []Stat{{
			Shard:        0,
			Series:       e.mono.Base.Dataset.N(),
			Groups:       e.mono.Base.TotalGroups(),
			Subsequences: e.mono.Base.TotalSubseq,
			IndexBytes:   e.mono.Base.SizeBytes(),
		}}
	}
	out := make([]Stat, len(e.parts))
	for s, p := range e.parts {
		st := p.transport.Stats()
		out[s] = Stat{
			Shard:        s,
			Series:       st.Series,
			Groups:       st.Groups,
			Subsequences: st.Subsequences,
			IndexBytes:   st.IndexBytes,
		}
	}
	return out
}

// WorkerURLs reports the remote worker processes serving the layout (a
// fresh slice; empty for in-process layouts).
func (e *Engine) WorkerURLs() []string {
	if e.mono != nil {
		return nil
	}
	return append([]string(nil), e.workerURLs...)
}

// Close releases the engine's transport resources (idle worker
// connections). Maintenance steps share unaffected parts — and their
// transports — between engine incarnations, so close only the final engine
// of a lineage, at shutdown.
func (e *Engine) Close() error {
	if e.mono != nil {
		return nil
	}
	var first error
	for _, p := range e.parts {
		if p.transport == nil {
			continue
		}
		if err := p.transport.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// LayoutSignature fingerprints the serving layout — shard count plus each
// shard's series and subsequence population. Serving caches fold it into
// their keys so re-registering the same data under a different shard layout
// can never alias a previous incarnation's entries. O(shards), cheap enough
// to compute per query.
func (e *Engine) LayoutSignature() uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	if e.mono != nil {
		put(uint64(e.mono.Base.Dataset.N()))
		put(uint64(e.mono.Base.TotalSubseq))
		put(1)
		return h.Sum64()
	}
	for _, p := range e.parts {
		put(uint64(len(p.series)))
		put(uint64(p.transport.Stats().Subsequences))
	}
	put(uint64(e.shards))
	return h.Sum64()
}
