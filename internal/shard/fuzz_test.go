package shard

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"onex/internal/core"
	"onex/internal/query"
	"onex/internal/ts"
)

// FuzzShardRouting throws arbitrary shard counts (0, 1, negative, far above
// the series count) and arbitrary ragged append/extend streams at the
// sharded engine and asserts the structural invariants that must hold for
// every input: invalid counts error instead of panicking, valid ones build;
// appends route deterministically and never lose a window (the global
// subsequence accounting stays exact); queries after every step return
// finite distances and in-range identities.
func FuzzShardRouting(f *testing.F) {
	f.Add(int64(1), 4, 2, []byte{0, 7, 255, 3})
	f.Add(int64(2), 1, -3, []byte{1})
	f.Add(int64(3), 9, 1000, []byte{5, 5, 5, 128, 9, 200})
	f.Add(int64(4), 2, 0, []byte{})
	f.Add(int64(5), 7, 7, []byte{250, 251, 252, 0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, seed int64, nSeries, shards int, ops []byte) {
		if nSeries < 1 {
			nSeries = 1
		}
		nSeries = nSeries%10 + 1
		if len(ops) > 24 {
			ops = ops[:24]
		}
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r, nSeries, 18)
		lengths := []int{5, 8}
		cfg := core.BuildConfig{ST: 0.4, Lengths: lengths, Seed: seed, RebuildDrift: -1}

		e, err := Build(d, cfg, shards, nil)
		if shards < 0 {
			if err == nil {
				t.Fatalf("shards=%d: want error", shards)
			}
			return
		}
		if err != nil {
			t.Fatalf("build shards=%d series=%d: %v", shards, nSeries, err)
		}
		want := shards
		if want > d.N() {
			want = d.N()
		}
		if want <= 1 {
			want = 1
		}
		if got := e.ShardCount(); got != want {
			t.Fatalf("ShardCount = %d, want %d", got, want)
		}

		for i, op := range ops {
			if op >= 250 { // occasionally extend instead of appending
				v := make([]float64, 6+int(op)%8)
				x := r.Float64()
				for j := range v {
					x += r.NormFloat64() * 0.2
					v[j] = x
				}
				next, err := e.Extend([]*ts.Series{{Label: "fz", Values: v}})
				if err != nil {
					t.Fatalf("op %d extend: %v", i, err)
				}
				e = next
				continue
			}
			sid := int(op) % e.NumSeries()
			pts := make([]float64, 1+int(op)%5) // ragged batches, incl. single points
			x := r.Float64()
			for j := range pts {
				x += r.NormFloat64() * 0.1
				pts[j] = x
			}
			next, err := e.Append(sid, pts)
			if err != nil {
				t.Fatalf("op %d append sid=%d n=%d: %v", i, sid, len(pts), err)
			}
			e = next

			// Routing is stable: the grown series' shard is a pure function
			// of (sid, shards).
			if e.mono == nil {
				home := ShardOf(sid, e.shards)
				found := false
				for _, gid := range e.parts[home].series {
					if gid == sid {
						found = true
					}
				}
				if !found {
					t.Fatalf("op %d: series %d not resident in its home shard %d", i, sid, home)
				}
			}
		}

		// The engine must account for every window of the final data.
		if got, wantN := e.TotalSubseq(), e.monoOrData().SubseqCount(lengths); got != wantN {
			t.Fatalf("subsequence accounting broken: %d indexed, %d in data", got, wantN)
		}

		// Queries stay well-formed (identities in range, finite distances).
		q := make([]float64, lengths[0])
		x := r.Float64()
		for j := range q {
			x += r.NormFloat64() * 0.2
			q[j] = x
		}
		m, err := e.BestMatch(context.Background(), q, query.MatchAny)
		if err != nil {
			t.Fatalf("post-op BestMatch: %v", err)
		}
		if m.SeriesID < 0 || m.SeriesID >= e.NumSeries() || math.IsNaN(m.Dist) || math.IsInf(m.Dist, 0) {
			t.Fatalf("malformed match %+v over %d series", m, e.NumSeries())
		}
		if w := e.monoOrData().Series[m.SeriesID]; !w.CheckRange(m.Start, m.Length) {
			t.Fatalf("match %+v outside its series (len %d)", m, w.Len())
		}
	})
}
