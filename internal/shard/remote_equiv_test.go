package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"onex/internal/core"
	"onex/internal/query"
	"onex/internal/shardrpc"
	"onex/internal/ts"
)

// The distributed acceptance property: an engine whose shards live in
// remote worker processes must answer the full query mix bit-identically
// to both the in-process sharded engine and the monolith — including while
// workers are killed and restarted mid-query (the client re-ships the
// shard state and retries).

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// swapWorker serves a shardrpc worker whose entire state can be swapped
// for a fresh one — a process restart at a stable address, without the
// port-rebinding races a real listener restart would add to the test.
type swapWorker struct {
	mu sync.Mutex
	h  http.Handler
}

func newSwapWorker() *swapWorker {
	return &swapWorker{h: shardrpc.NewWorker(quietLogger()).Handler()}
}

func (s *swapWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	h.ServeHTTP(w, r)
}

// restart discards all resident shard state, exactly like a worker process
// dying and coming back empty.
func (s *swapWorker) restart() {
	fresh := shardrpc.NewWorker(quietLogger()).Handler()
	s.mu.Lock()
	s.h = fresh
	s.mu.Unlock()
}

// startWorkers boots n restartable worker endpoints and returns their base
// URLs plus the swap handles.
func startWorkers(t *testing.T, n int) ([]string, []*swapWorker) {
	t.Helper()
	urls := make([]string, n)
	swaps := make([]*swapWorker, n)
	for i := range urls {
		sw := newSwapWorker()
		srv := httptest.NewServer(sw)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
		swaps[i] = sw
	}
	return urls, swaps
}

// TestRemoteEquivalence: across parallelism {1,8} and shard counts {1,3},
// a worker-served engine answers the full query mix (best match, k-NN,
// range plain/exact, seasonal, batch, SP-Space guidance) identically to
// the monolith AND to the in-process sharded engine.
func TestRemoteEquivalence(t *testing.T) {
	lengths := []int{8, 12, 16}
	const st = 0.35
	for _, parallelism := range []int{1, 8} {
		for _, shards := range []int{1, 3} {
			t.Run(fmt.Sprintf("p%d_s%d", parallelism, shards), func(t *testing.T) {
				r := rand.New(rand.NewSource(4451))
				d := randomDataset(r, 16, 32)
				cfg := core.BuildConfig{
					ST: st, Lengths: lengths, Seed: 1,
					Workers: parallelism,
					Query:   query.Options{Parallelism: parallelism},
				}
				urls, _ := startWorkers(t, 2)
				mono, err := Build(d, cfg, 1, nil)
				if err != nil {
					t.Fatal(err)
				}
				local, err := Build(d, cfg, shards, nil)
				if err != nil {
					t.Fatal(err)
				}
				remote, err := Build(d, cfg, shards, urls)
				if err != nil {
					t.Fatal(err)
				}
				defer remote.Close()
				if got := remote.ShardCount(); got != max(shards, 1) {
					t.Fatalf("ShardCount = %d, want %d", got, max(shards, 1))
				}
				if ws := remote.WorkerURLs(); len(ws) != 2 {
					t.Fatalf("WorkerURLs = %v, want the 2 configured workers", ws)
				}
				queries := randomQueries(r, d, lengths, 8)
				compareEngines(t, "mono-vs-remote", mono, remote, queries, lengths, st)
				compareEngines(t, "local-vs-remote", local, remote, queries, lengths, st)
			})
		}
	}
}

// TestRemoteMaintenanceEquivalence: Append/Extend on a worker-served engine
// ship fresh generations for the affected shards and keep answering
// identically to the maintained monolith.
func TestRemoteMaintenanceEquivalence(t *testing.T) {
	lengths := []int{8, 12}
	const st = 0.35
	r := rand.New(rand.NewSource(917))
	d := randomDataset(r, 10, 28)
	cfg := core.BuildConfig{
		ST: st, Lengths: lengths, Seed: 1,
		Query: query.Options{Parallelism: 2},
	}
	urls, _ := startWorkers(t, 2)
	mono, err := Build(d, cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := Build(d, cfg, 3, urls)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 4; step++ {
		if step%2 == 0 {
			sid := r.Intn(mono.NumSeries())
			pts := make([]float64, 4+r.Intn(6))
			x := mono.Window(sid, mono.monoOrData().Series[sid].Len()-1, 1)[0]
			for j := range pts {
				x += r.NormFloat64() * 0.05
				pts[j] = x
			}
			m2, err := mono.Append(sid, pts)
			if err != nil {
				t.Fatalf("step %d mono append: %v", step, err)
			}
			r2, err := remote.Append(sid, pts)
			if err != nil {
				t.Fatalf("step %d remote append: %v", step, err)
			}
			mono, remote = m2, r2
		} else {
			v := make([]float64, 24+r.Intn(8))
			x := r.Float64() * 4
			for j := range v {
				x += r.NormFloat64() * 0.5
				v[j] = x
			}
			extra := []*ts.Series{{Label: "new", Values: v}}
			m2, err := mono.Extend(extra)
			if err != nil {
				t.Fatalf("step %d mono extend: %v", step, err)
			}
			r2, err := remote.Extend(extra)
			if err != nil {
				t.Fatalf("step %d remote extend: %v", step, err)
			}
			mono, remote = m2, r2
		}
		queries := randomQueries(r, mono.monoOrData(), lengths, 4)
		compareEngines(t, fmt.Sprintf("step%d", step), mono, remote, queries, lengths, st)
	}
	remote.Close()
}

// TestRemoteWorkerRestart kills and restarts workers while queries are in
// flight: every resident generation is lost, the clients observe
// unknown_generation, re-ship the shard state and retry — and every answer
// still matches the monolith exactly. Run under -race this also exercises
// the client's re-ship serialization.
func TestRemoteWorkerRestart(t *testing.T) {
	lengths := []int{8, 12}
	const st = 0.35
	r := rand.New(rand.NewSource(6007))
	d := randomDataset(r, 12, 28)
	cfg := core.BuildConfig{
		ST: st, Lengths: lengths, Seed: 1,
		Query: query.Options{Parallelism: 4},
	}
	urls, swaps := startWorkers(t, 2)
	mono, err := Build(d, cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := Build(d, cfg, 3, urls)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	queries := randomQueries(r, d, lengths, 6)
	type ref struct {
		m   query.Match
		err bool
	}
	refs := make([]ref, len(queries))
	for i, q := range queries {
		m, err := mono.BestMatch(context.Background(), q, query.MatchAny)
		refs[i] = ref{m: m, err: err != nil}
	}

	const goroutines = 4
	const rounds = 5
	errCh := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for i, q := range queries {
					m, err := remote.BestMatch(context.Background(), q, query.MatchAny)
					if (err != nil) != refs[i].err {
						errCh <- fmt.Errorf("q%d: error diverged under restart: %v", i, err)
						return
					}
					if err != nil {
						continue
					}
					want := refs[i].m
					if m.SeriesID != want.SeriesID || m.Start != want.Start ||
						m.Length != want.Length || m.Dist != want.Dist {
						errCh <- fmt.Errorf("q%d: answer diverged under restart: %+v vs %+v", i, m, want)
						return
					}
				}
			}
			errCh <- nil
		}()
	}
	// Keep killing workers while the query goroutines run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < 6; k++ {
			time.Sleep(20 * time.Millisecond)
			swaps[k%len(swaps)].restart()
		}
	}()
	wg.Wait()
	<-done
	for g := 0; g < goroutines; g++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	// After the dust settles the whole mix still matches.
	compareEngines(t, "post-restart", mono, remote, queries, lengths, st)
}

// TestRemoteWorkerUnavailable: a worker that stays down past the retry
// budget surfaces as shardrpc.ErrUnavailable (the API layer maps it to
// 503), and building against a dead worker fails fast.
func TestRemoteWorkerUnavailable(t *testing.T) {
	lengths := []int{8}
	r := rand.New(rand.NewSource(33))
	d := randomDataset(r, 8, 24)
	cfg := core.BuildConfig{ST: 0.35, Lengths: lengths, Seed: 1}

	sw := newSwapWorker()
	srv := httptest.NewServer(sw)
	remote, err := Build(d, cfg, 2, []string{srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	q := make([]float64, 8)
	copy(q, d.Series[0].Values[:8])
	if _, err := remote.BestMatch(context.Background(), q, query.MatchExact); err != nil {
		t.Fatalf("query with live worker: %v", err)
	}
	srv.Close()
	if _, err := remote.BestMatch(context.Background(), q, query.MatchExact); !errors.Is(err, shardrpc.ErrUnavailable) {
		t.Fatalf("query with dead worker: got %v, want ErrUnavailable", err)
	}

	if _, err := Build(d, cfg, 2, []string{srv.URL}); err == nil {
		t.Fatal("Build against a dead worker should fail fast at shipping")
	}
}
