package shard

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"onex/internal/core"
	"onex/internal/query"
	"onex/internal/rspace"
	"onex/internal/ts"
)

// The acceptance property of the sharded engine: over the same data, a
// Shards=N engine answers BestMatch, BestKMatches, RangeSearch(Exact) and
// both seasonal queries identically (within 1e-12 on distances, exactly on
// identities) to the Shards=1 / plain-core path, at every parallelism, and
// across Append/Extend maintenance interleavings.

const equivTol = 1e-12

// randomDataset builds a ragged random-walk dataset: continuous values, so
// no two distinct windows tie on exact DTW (the only case where scan-order
// tie-breaking could differ between layouts).
func randomDataset(r *rand.Rand, n, baseLen int) *ts.Dataset {
	d := &ts.Dataset{Name: "equiv"}
	for i := 0; i < n; i++ {
		length := baseLen + r.Intn(baseLen/2)
		v := make([]float64, length)
		x := r.Float64() * 10
		for j := range v {
			x += r.NormFloat64()
			v[j] = x
		}
		d.Append(fmt.Sprintf("s%d", i), v)
	}
	return d
}

func randomQueries(r *rand.Rand, d *ts.Dataset, lengths []int, count int) [][]float64 {
	qlens := append(append([]int(nil), lengths...), lengths[0]+1) // one unindexed length
	out := make([][]float64, 0, count)
	for i := 0; i < count; i++ {
		l := qlens[i%len(qlens)]
		q := make([]float64, l)
		if i%2 == 0 {
			s := d.Series[r.Intn(d.N())]
			start := r.Intn(s.Len() - l + 1)
			copy(q, s.Values[start:start+l])
			for j := range q {
				q[j] += r.NormFloat64() * 0.05
			}
		} else {
			x := r.Float64()
			for j := range q {
				x += r.NormFloat64() * 0.3
				q[j] = x
			}
		}
		out = append(out, q)
	}
	return out
}

func matchesEqual(t *testing.T, ctx string, a, b query.Match) {
	t.Helper()
	if a.SeriesID != b.SeriesID || a.Start != b.Start || a.Length != b.Length {
		t.Fatalf("%s: match identity diverged: (%d,%d,%d) vs (%d,%d,%d)",
			ctx, a.SeriesID, a.Start, a.Length, b.SeriesID, b.Start, b.Length)
	}
	if math.Abs(a.Dist-b.Dist) > equivTol {
		t.Fatalf("%s: distance diverged: %v vs %v", ctx, a.Dist, b.Dist)
	}
}

func sortRange(rs []query.RangeResult) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.SeriesID != b.SeriesID {
			return a.SeriesID < b.SeriesID
		}
		return a.Start < b.Start
	})
}

// compareEngines drives the full query mix against both engines and demands
// identical answers.
func compareEngines(t *testing.T, ctx string, mono, sharded *Engine, queries [][]float64, lengths []int, st float64) {
	t.Helper()
	for qi, q := range queries {
		for _, mode := range []query.MatchMode{query.MatchAny, query.MatchExact} {
			mctx := fmt.Sprintf("%s q%d mode%d", ctx, qi, mode)
			am, aerr := mono.BestMatch(context.Background(), q, mode)
			bm, berr := sharded.BestMatch(context.Background(), q, mode)
			if (aerr == nil) != (berr == nil) {
				t.Fatalf("%s: BestMatch error diverged: %v vs %v", mctx, aerr, berr)
			}
			if aerr == nil {
				matchesEqual(t, mctx+" best", am, bm)
			}

			ak, aerr := mono.BestKMatches(context.Background(), q, mode, 4)
			bk, berr := sharded.BestKMatches(context.Background(), q, mode, 4)
			if (aerr == nil) != (berr == nil) {
				t.Fatalf("%s: BestKMatches error diverged: %v vs %v", mctx, aerr, berr)
			}
			if aerr == nil {
				if len(ak) != len(bk) {
					t.Fatalf("%s: k-NN count diverged: %d vs %d", mctx, len(ak), len(bk))
				}
				for i := range ak {
					matchesEqual(t, fmt.Sprintf("%s knn[%d]", mctx, i), ak[i], bk[i])
				}
			}
		}

		// Range searches at a wholesale-admitting radius (> ST) and a
		// verifying one (< ST), both plain and exact.
		length := lengths[qi%len(lengths)]
		rq := q
		if len(rq) != length {
			rq = q[:min(len(q), length)]
			if len(rq) < length {
				continue
			}
		}
		for _, radius := range []float64{st * 1.5, st * 0.6} {
			for _, exact := range []bool{false, true} {
				rctx := fmt.Sprintf("%s q%d range r=%.3f exact=%v", ctx, qi, radius, exact)
				var ar, br []query.RangeResult
				var aerr, berr error
				if exact {
					ar, aerr = mono.RangeSearchExact(context.Background(), rq, length, radius)
					br, berr = sharded.RangeSearchExact(context.Background(), rq, length, radius)
				} else {
					ar, aerr = mono.RangeSearch(context.Background(), rq, length, radius)
					br, berr = sharded.RangeSearch(context.Background(), rq, length, radius)
				}
				if (aerr == nil) != (berr == nil) {
					t.Fatalf("%s: error diverged: %v vs %v", rctx, aerr, berr)
				}
				if aerr != nil {
					continue
				}
				if len(ar) != len(br) {
					t.Fatalf("%s: result count diverged: %d vs %d", rctx, len(ar), len(br))
				}
				sortRange(ar)
				sortRange(br)
				for i := range ar {
					x, y := ar[i], br[i]
					if x.SeriesID != y.SeriesID || x.Start != y.Start || x.Guaranteed != y.Guaranteed {
						t.Fatalf("%s: result %d diverged: %+v vs %+v", rctx, i, x, y)
					}
					if math.Abs(x.Dist-y.Dist) > equivTol {
						t.Fatalf("%s: result %d distance diverged: %v vs %v", rctx, i, x.Dist, y.Dist)
					}
				}
			}
		}
	}

	// Seasonal queries: identical groups, ids, members, order.
	for _, length := range lengths {
		for sid := -1; sid < mono.NumSeries(); sid += 3 {
			var ag, bg []query.SeasonalGroup
			var aerr, berr error
			if sid < 0 {
				ag, aerr = mono.SeasonalAll(length)
				bg, berr = sharded.SeasonalAll(length)
			} else {
				ag, aerr = mono.SeasonalSample(sid, length)
				bg, berr = sharded.SeasonalSample(sid, length)
			}
			sctx := fmt.Sprintf("%s seasonal l=%d sid=%d", ctx, length, sid)
			if (aerr == nil) != (berr == nil) {
				t.Fatalf("%s: error diverged: %v vs %v", sctx, aerr, berr)
			}
			if aerr != nil {
				continue
			}
			if len(ag) != len(bg) {
				t.Fatalf("%s: group count diverged: %d vs %d", sctx, len(ag), len(bg))
			}
			for i := range ag {
				x, y := ag[i], bg[i]
				if x.GroupID != y.GroupID || len(x.Members) != len(y.Members) {
					t.Fatalf("%s: group %d diverged: id %d/%d members %d/%d",
						sctx, i, x.GroupID, y.GroupID, len(x.Members), len(y.Members))
				}
				for j := range x.Members {
					if x.Members[j] != y.Members[j] {
						t.Fatalf("%s: group %d member %d diverged: %+v vs %+v",
							sctx, i, j, x.Members[j], y.Members[j])
					}
				}
			}
		}
	}

	// Batch answers must equal their single-query counterparts across both
	// engines.
	amb := mono.BestMatchBatch(context.Background(), queries, query.MatchAny)
	bmb := sharded.BestMatchBatch(context.Background(), queries, query.MatchAny)
	for i := range amb {
		if (amb[i].Err == nil) != (bmb[i].Err == nil) {
			t.Fatalf("%s: batch[%d] error diverged: %v vs %v", ctx, i, amb[i].Err, bmb[i].Err)
		}
		if amb[i].Err == nil {
			matchesEqual(t, fmt.Sprintf("%s batch[%d]", ctx, i), amb[i].Match, bmb[i].Match)
		}
	}

	// SP-Space guidance surface: bit-identical (==, no tolerance) at every
	// layout — the sharded engine computes the critical values from the one
	// global grouping, not from per-shard aggregates.
	if mono.STHalf() != sharded.STHalf() || mono.STFinal() != sharded.STFinal() {
		t.Fatalf("%s: critical values diverged: (%v,%v) vs (%v,%v)",
			ctx, mono.STHalf(), mono.STFinal(), sharded.STHalf(), sharded.STFinal())
	}
	for _, length := range append([]int{-1, lengths[0] + 1}, lengths...) {
		for _, deg := range []rspace.Degree{rspace.Strict, rspace.Medium, rspace.Loose} {
			alo, ahi, aerr := mono.Recommend(deg, length)
			blo, bhi, berr := sharded.Recommend(deg, length)
			if (aerr == nil) != (berr == nil) {
				t.Fatalf("%s: Recommend(%v,%d) error diverged: %v vs %v", ctx, deg, length, aerr, berr)
			}
			if aerr == nil && (alo != blo || ahi != bhi) {
				t.Fatalf("%s: Recommend(%v,%d) diverged: [%v,%v] vs [%v,%v]",
					ctx, deg, length, alo, ahi, blo, bhi)
			}
		}
	}
	for _, probe := range []float64{0, st * 0.5, mono.STHalf(), mono.STFinal(), st * 3} {
		if a, b := mono.DegreeOf(probe), sharded.DegreeOf(probe); a != b {
			t.Fatalf("%s: DegreeOf(%v) diverged: %v vs %v", ctx, probe, a, b)
		}
	}
}

// TestShardEquivalence is the core property suite: random datasets, both
// parallelism settings, several shard counts, full query mix.
func TestShardEquivalence(t *testing.T) {
	lengths := []int{8, 12, 16}
	const st = 0.35
	for _, parallelism := range []int{1, 8} {
		for _, shards := range []int{2, 3, 5} {
			for seed := int64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("p%d_s%d_seed%d", parallelism, shards, seed), func(t *testing.T) {
					r := rand.New(rand.NewSource(seed * 7717))
					d := randomDataset(r, 18, 32)
					cfg := core.BuildConfig{
						ST: st, Lengths: lengths, Seed: seed,
						Workers: parallelism,
						Query:   query.Options{Parallelism: parallelism},
					}
					mono, err := Build(d, cfg, 1, nil)
					if err != nil {
						t.Fatal(err)
					}
					sharded, err := Build(d, cfg, shards, nil)
					if err != nil {
						t.Fatal(err)
					}
					if got := sharded.ShardCount(); got != shards {
						t.Fatalf("ShardCount = %d, want %d", got, shards)
					}
					queries := randomQueries(r, d, lengths, 10)
					compareEngines(t, "built", mono, sharded, queries, lengths, st)
				})
			}
		}
	}
}

// TestShardEquivalenceMaintenance interleaves Appends and Extends on both
// layouts and re-checks the full query mix after every step — including
// steps that cross the drift threshold and trigger the amortized rebuild.
func TestShardEquivalenceMaintenance(t *testing.T) {
	lengths := []int{8, 12}
	const st = 0.35
	for _, parallelism := range []int{1, 8} {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("p%d_seed%d", parallelism, seed), func(t *testing.T) {
				r := rand.New(rand.NewSource(seed * 40129))
				d := randomDataset(r, 12, 28)
				cfg := core.BuildConfig{
					ST: st, Lengths: lengths, Seed: seed,
					Workers:      parallelism,
					RebuildDrift: 0.2, // make some steps rebuild
					Query:        query.Options{Parallelism: parallelism},
				}
				mono, err := Build(d, cfg, 1, nil)
				if err != nil {
					t.Fatal(err)
				}
				sharded, err := Build(d, cfg, 3, nil)
				if err != nil {
					t.Fatal(err)
				}
				for step := 0; step < 6; step++ {
					if step%2 == 0 {
						sid := r.Intn(mono.NumSeries())
						pts := make([]float64, 4+r.Intn(8))
						x := mono.Window(sid, mono.monoOrData().Series[sid].Len()-1, 1)[0]
						for j := range pts {
							x += r.NormFloat64() * 0.05
							pts[j] = x
						}
						m2, err := mono.Append(sid, pts)
						if err != nil {
							t.Fatalf("step %d mono append: %v", step, err)
						}
						s2, err := sharded.Append(sid, pts)
						if err != nil {
							t.Fatalf("step %d sharded append: %v", step, err)
						}
						mono, sharded = m2, s2
					} else {
						extra := make([]*ts.Series, 1+r.Intn(2))
						for i := range extra {
							v := make([]float64, 20+r.Intn(12))
							x := r.Float64() * 4
							for j := range v {
								x += r.NormFloat64() * 0.5
								v[j] = x
							}
							extra[i] = &ts.Series{Label: "new", Values: v}
						}
						m2, err := mono.Extend(extra)
						if err != nil {
							t.Fatalf("step %d mono extend: %v", step, err)
						}
						s2, err := sharded.Extend(extra)
						if err != nil {
							t.Fatalf("step %d sharded extend: %v", step, err)
						}
						mono, sharded = m2, s2
					}
					if md, sd := mono.Drift(), sharded.Drift(); math.Abs(md-sd) > equivTol {
						t.Fatalf("step %d: drift diverged: %v vs %v", step, md, sd)
					}
					queries := randomQueries(r, mono.monoOrData(), lengths, 6)
					compareEngines(t, fmt.Sprintf("step%d", step), mono, sharded, queries, lengths, st)
				}
				if mono.Rebuilds() == 0 {
					t.Error("maintenance interleaving never crossed the rebuild threshold; weaken RebuildDrift")
				}
				if mono.Rebuilds() != sharded.Rebuilds() {
					t.Errorf("rebuild counters diverged: mono %d, sharded %d", mono.Rebuilds(), sharded.Rebuilds())
				}
			})
		}
	}
}

// monoOrData exposes the engine's normalized dataset to the test harness
// (query generation needs series lengths after maintenance).
func (e *Engine) monoOrData() *ts.Dataset {
	if e.mono != nil {
		return e.mono.Base.Dataset
	}
	return e.data
}
