package shard

import (
	"errors"
	"fmt"
	"time"

	"onex/internal/core"
	"onex/internal/grouping"
	"onex/internal/ts"
)

// Append grows one series in time, routing the maintenance work through the
// series' home shard: the global assignment rule runs once (identical to
// the unsharded path, so answers stay layout-invariant), then only the
// shards holding a touched or new group — plus the home shard, whose data
// grew — re-derive their index layers; every other shard is reused
// wholesale. The amortized rebuild policy applies exactly as in
// core.Engine.Append: crossing Options.RebuildDrift re-runs the full global
// build (pinned to the indexed length set) and re-derives every shard.
func (e *Engine) Append(seriesID int, points []float64) (*Engine, error) {
	if e.mono != nil {
		mono, err := e.mono.Append(seriesID, points)
		if err != nil {
			return nil, err
		}
		return &Engine{mono: mono}, nil
	}
	if len(points) == 0 {
		return nil, errors.New("core: no points to append")
	}
	scaled, err := core.ScaleAppendPoints(e.cfg.Normalize, e.normMin, e.normMax, points)
	if err != nil {
		return nil, err
	}
	work := e.data.CloneShared()
	oldLens := make([]int, work.N())
	for i, s := range work.Series {
		oldLens[i] = s.Len()
	}
	if err := work.AppendPoints(seriesID, scaled); err != nil {
		return nil, err
	}
	var newCount int64
	for _, l := range e.grouped.Lengths {
		lo, hi := work.Series[seriesID].NewWindowStarts(oldLens[seriesID], l)
		newCount += int64(hi - lo)
	}
	return e.maintainOrRebuild(work, newCount, []int{ShardOf(seriesID, e.shards)},
		func() (*grouping.Result, *grouping.Delta, error) {
			return grouping.AppendPoints(work, e.grouped, oldLens, e.maintenanceConfig())
		})
}

// Extend adds series to the base incrementally. New series ids continue
// after the existing ones and hash to their shards without disturbing the
// placement of old series; the global assignment rule runs once and only
// the affected shards re-derive.
func (e *Engine) Extend(newSeries []*ts.Series) (*Engine, error) {
	if e.mono != nil {
		mono, err := e.mono.Extend(newSeries)
		if err != nil {
			return nil, err
		}
		return &Engine{mono: mono}, nil
	}
	if len(newSeries) == 0 {
		return nil, errors.New("core: no series to add")
	}
	work := e.data.CloneShared()
	from := work.N()
	homes := make([]int, 0, len(newSeries))
	for _, s := range newSeries {
		if s == nil || s.Len() == 0 {
			return nil, errors.New("core: empty new series")
		}
		if i := ts.CheckFinite(s.Values); i >= 0 {
			return nil, fmt.Errorf("core: new series has non-finite value %v at index %d", s.Values[i], i)
		}
		values, err := core.ScaleNewSeries(e.cfg.Normalize, e.normMin, e.normMax, s.Values)
		if err != nil {
			return nil, err
		}
		homes = append(homes, ShardOf(work.N(), e.shards))
		work.Append(s.Label, values)
	}
	var newCount int64
	for _, s := range work.Series[from:] {
		for _, l := range e.grouped.Lengths {
			if n := s.Len() - l + 1; n > 0 {
				newCount += int64(n)
			}
		}
	}
	return e.maintainOrRebuild(work, newCount, homes,
		func() (*grouping.Result, *grouping.Delta, error) {
			return grouping.Extend(work, e.grouped, from, e.maintenanceConfig())
		})
}

func (e *Engine) maintenanceConfig() grouping.Config {
	return grouping.Config{
		ST:      e.cfg.ST,
		Seed:    e.cfg.Seed,
		Workers: e.cfg.Workers,
	}
}

// maintainOrRebuild finishes a maintenance step over the grown dataset,
// applying the exact rebuild decision rule of the unsharded engine
// (core.RebuildDue over the global drift counters) so a sharded base
// rebuilds at precisely the same appends a Shards=1 base would. homes lists
// the shards whose data grew; shards holding a touched group join them in
// re-deriving their index layers, everything else is reused.
func (e *Engine) maintainOrRebuild(work *ts.Dataset, newCount int64, homes []int,
	incremental func() (*grouping.Result, *grouping.Delta, error)) (*Engine, error) {

	rebuild := core.RebuildDue(e.cfg.RebuildDrift, e.grouped.TotalSubseq, e.grouped.IncrementalMembers, newCount)
	start := time.Now()
	next := &Engine{
		shards: e.shards, workerURLs: e.workerURLs,
		cfg: e.cfg, normMin: e.normMin, normMax: e.normMax,
		data: work, rebuilds: e.rebuilds, lastRebuild: e.lastRebuild,
	}
	if rebuild {
		gr, err := grouping.Build(work, grouping.Config{
			ST:       e.cfg.ST,
			Lengths:  e.grouped.Lengths, // pinned: the query surface never changes
			Seed:     e.cfg.Seed,
			Workers:  e.cfg.Workers,
			Progress: e.cfg.Progress,
			Cancel:   e.cfg.Cancel,
		})
		if err != nil {
			return nil, err
		}
		next.grouped = gr
		if err := next.assemble(nil, nil, nil); err != nil {
			return nil, err
		}
		next.buildTime = time.Since(start)
		next.rebuilds++
		next.lastRebuild = next.buildTime
		return next, nil
	}

	gr, delta, err := incremental()
	if err != nil {
		return nil, err
	}
	next.grouped = gr
	affected := e.affectedShards(delta, homes)
	if err := next.assemble(e, affected, delta); err != nil {
		return nil, err
	}
	next.buildTime = time.Since(start)
	return next, nil
}

// affectedShards marks the shards a maintenance delta invalidates: the home
// shards (their sub-dataset and restricted member lists grew — new groups'
// members are exclusively new positions, so homes cover them) and every
// shard holding a touched group (its representative moved, so the shard's
// Dc rows, envelope and restricted member order for that group are stale).
// All other shards' state is value-identical to a fresh derivation and is
// reused.
func (e *Engine) affectedShards(delta *grouping.Delta, homes []int) []bool {
	affected := make([]bool, e.shards)
	for _, h := range homes {
		affected[h] = true
	}
	for length, touched := range delta.Touched {
		for _, k := range touched {
			for s, p := range e.parts {
				if !affected[s] && p.has(length, k) {
					affected[s] = true
				}
			}
		}
	}
	return affected
}
