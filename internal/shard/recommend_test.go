package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"onex/internal/core"
	"onex/internal/query"
	"onex/internal/rspace"
)

// TestRecommendExactAcrossShards is the regression test for the sharded
// guidance surface. Before the fix, Recommend/DegreeOf/STHalf/STFinal on a
// sharded layout aggregated the per-shard SP-Spaces (maximum over shards of
// each shard's restricted merge structure) — a different quantity than the
// global grouping's critical values, so the guidance ranges changed with
// the shard count. The fix computes them from the ONE global grouping
// (rspace.MergeThresholdsFor) at assemble time.
//
// The test (a) recomputes the old per-shard aggregation and demands it
// actually differs from the global values on this fixture — proving the
// test would have failed before the fix and guarding its power — and then
// (b) demands the engine's surface is bit-identical to the unsharded one.
func TestRecommendExactAcrossShards(t *testing.T) {
	lengths := []int{8, 12, 16}
	const st = 0.35
	r := rand.New(rand.NewSource(9341))
	d := randomDataset(r, 18, 32)
	cfg := core.BuildConfig{ST: st, Lengths: lengths, Seed: 1, Query: query.Options{}}

	mono, err := Build(d, cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// (a) The pre-fix aggregation: per-length maxima over the shards'
	// restricted merge structures. It must differ from the exact global
	// values for at least one (length, shard count) on this fixture, or the
	// fixture has lost its discriminating power.
	aggregateDiverges := false

	for _, shards := range []int{2, 3, 5} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			sharded, err := Build(d, cfg, shards, nil)
			if err != nil {
				t.Fatal(err)
			}

			for _, l := range lengths {
				var aggHalf float64
				for _, p := range sharded.parts {
					if entry := p.base.Entry(l); entry != nil && entry.STHalf > aggHalf {
						aggHalf = entry.STHalf
					}
				}
				_, exactHalf, err := mono.Recommend(rspace.Strict, l)
				if err != nil {
					t.Fatal(err)
				}
				if aggHalf != exactHalf {
					aggregateDiverges = true
				}
			}

			// (b) The fixed surface is bit-identical to the unsharded engine.
			if sharded.STHalf() != mono.STHalf() || sharded.STFinal() != mono.STFinal() {
				t.Fatalf("critical values diverged: sharded (%v,%v) vs mono (%v,%v)",
					sharded.STHalf(), sharded.STFinal(), mono.STHalf(), mono.STFinal())
			}
			for _, length := range append([]int{-1}, lengths...) {
				for _, deg := range []rspace.Degree{rspace.Strict, rspace.Medium, rspace.Loose} {
					alo, ahi, aerr := mono.Recommend(deg, length)
					blo, bhi, berr := sharded.Recommend(deg, length)
					if aerr != nil || berr != nil {
						t.Fatalf("Recommend(%v,%d) errored: %v / %v", deg, length, aerr, berr)
					}
					if alo != blo || ahi != bhi {
						t.Fatalf("Recommend(%v,%d) diverged: [%v,%v] vs [%v,%v]",
							deg, length, blo, bhi, alo, ahi)
					}
				}
			}
			// Unindexed lengths error on both layouts.
			if _, _, err := sharded.Recommend(rspace.Strict, lengths[0]+1); err == nil {
				t.Fatal("Recommend on an unindexed length should error")
			}
			if _, _, err := sharded.Recommend(rspace.Degree(99), -1); err == nil {
				t.Fatal("Recommend with an unknown degree should error")
			}
		})
	}
	if !aggregateDiverges {
		t.Fatal("fixture too weak: the per-shard aggregate coincides with the global critical values at every (length, shard count) — the pre-fix bug would not be caught")
	}
}

// TestDegreeOfPopulatedThresholds locks the structural fix for the old
// error-swallowing DegreeOf: the classification now reads critical values
// that every assembled engine holds by construction, so a sharded engine
// must classify exactly like the unsharded one — in particular a tiny
// threshold is Strict, which the old code silently turned into a
// classification against zero thresholds (everything Loose) whenever the
// discarded lookup failed.
func TestDegreeOfPopulatedThresholds(t *testing.T) {
	lengths := []int{8, 12}
	const st = 0.35
	r := rand.New(rand.NewSource(4519))
	d := randomDataset(r, 14, 30)
	cfg := core.BuildConfig{ST: st, Lengths: lengths, Seed: 2, Query: query.Options{}}

	mono, err := Build(d, cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Build(d, cfg, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.STHalf() <= 0 || sharded.STFinal() < sharded.STHalf() {
		t.Fatalf("critical values not populated: half=%v final=%v", sharded.STHalf(), sharded.STFinal())
	}
	if got := sharded.DegreeOf(1e-9); got != rspace.Strict {
		t.Fatalf("DegreeOf(1e-9) = %v, want Strict — thresholds unpopulated?", got)
	}
	probes := []float64{0, 1e-9, st / 2, sharded.STHalf(), sharded.STHalf() * 1.000001,
		sharded.STFinal(), sharded.STFinal() * 2}
	for _, p := range probes {
		if a, b := mono.DegreeOf(p), sharded.DegreeOf(p); a != b {
			t.Fatalf("DegreeOf(%v) diverged: mono %v vs sharded %v", p, a, b)
		}
	}
}
