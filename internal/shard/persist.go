package shard

import (
	"io"
	"time"

	"onex/internal/core"
)

// Save serializes the engine as one ONEX base stream: the global
// (normalized) dataset and grouping — exactly the monolithic payload — plus
// the shard count. Per-shard restrictions and index layers are derived
// state and are re-derived on load, the same way the monolithic format
// recomputes its Dc matrices; keeping the snapshot a single stream
// preserves the atomic-rename semantics serving layers (internal/hub)
// depend on.
func (e *Engine) Save(w io.Writer) error {
	if e.mono != nil {
		return e.mono.Save(w)
	}
	return core.EncodeSnapshot(w, &core.Snapshot{
		Shards:    e.shards,
		Cfg:       e.cfg,
		NormMin:   e.normMin,
		NormMax:   e.normMax,
		BuildTime: e.buildTime,
		Dataset:   e.data,
		Grouped:   e.grouped,
	})
}

// Load reopens an engine written by Save, dispatching on the stream's shard
// count: version ≤ 3 snapshots (and version-4 snapshots of unsharded
// engines) load as a plain single engine, sharded snapshots re-derive their
// per-shard index layers from the stored global payload and answer
// identically to the saved engine.
//
// workers is serving-time configuration, never persisted: a non-empty list
// re-ships the re-derived shard state to remote worker processes (fresh
// generations — a coordinator restart is exactly the worker-restart path in
// reverse), so the same snapshot serves in-process or distributed.
func Load(r io.Reader, workers []string) (*Engine, error) {
	snap, err := core.DecodeSnapshot(r)
	if err != nil {
		return nil, err
	}
	if snap.Shards <= 1 && len(workers) == 0 {
		mono, err := core.FromSnapshot(snap)
		if err != nil {
			return nil, err
		}
		return &Engine{mono: mono}, nil
	}
	shards := snap.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > snap.Dataset.N() {
		shards = snap.Dataset.N() // defensive: Build clamps the same way
	}
	e := &Engine{
		shards:     shards,
		workerURLs: append([]string(nil), workers...),
		cfg:        snap.Cfg,
		normMin:    snap.NormMin,
		normMax:    snap.NormMax,
		data:       snap.Dataset,
		grouped:    snap.Grouped,
		savedAt:    snap.SavedAt,
	}
	start := time.Now()
	if err := e.assemble(nil, nil, nil); err != nil {
		return nil, err
	}
	e.buildTime = time.Since(start)
	if snap.BuildTime > 0 {
		// Report the original offline construction cost, not the (much
		// cheaper) shard re-derivation.
		e.buildTime = snap.BuildTime
	}
	return e, nil
}

// SavedAt reports when the engine was serialized (zero if never saved or
// loaded from a version-1 stream).
func (e *Engine) SavedAt() time.Time {
	if e.mono != nil {
		return e.mono.Meta().SavedAt
	}
	return e.savedAt
}
