// Package shard implements the intra-dataset sharded ONEX engine: one
// dataset's series are hash-partitioned across N shards, each holding its
// own GTI/LSI index layers (inter-representative distance matrix, envelopes,
// scan orders) over just its series, built concurrently on the shared worker
// pool and queried by scatter-gather (query.Scatter).
//
// # Why the grouping stays global
//
// ONEX's query semantics are grouping-dependent: BestMatch mines the group
// of the nearest representative, k-NN's cut and walk orders derive from the
// group structure, and seasonal patterns ARE the groups. Truly independent
// per-shard groupings would therefore change answers — Algorithm 1 over a
// subset of the series produces different groups than over the whole
// dataset, and a scatter-gather min-merge over different groupings is a
// different (uncomparable) approximation. This engine instead runs the ONE
// deterministic global grouping every layout shares (the same
// grouping.Build the single-engine path runs — bit-identical for a fixed
// dataset/ST/lengths/seed at every worker count) and partitions everything
// downstream of it by series:
//
//   - each shard gets the sub-dataset of its series (value arrays shared,
//     zero copy) and the restriction of every global group to those series
//     (shared representative, preserved member order and EDs);
//   - the expensive per-length index layers — the sparse top-k Dc neighbor
//     lists, the LB_Keogh envelopes, the scan orders — are built per shard
//     over the restricted group sets, concurrently on the internal/parallel
//     pool;
//   - queries scatter across shards and gather exactly the monolithic
//     decisions (see query.Scatter for the per-query argument), so
//     Shards=1 and Shards=N answer identically;
//   - the SP-Space guidance surface (Recommend, DegreeOf, STHalf/STFinal)
//     is computed from the global grouping at assemble time via
//     rspace.MergeThresholdsFor — Prim's algorithm with on-demand
//     inter-representative distances, O(g) working memory — so it too is
//     bit-identical at every shard count, without materializing a global
//     distance matrix;
//   - incremental maintenance (Append/Extend) runs the global assignment
//     rule once, then refreshes only the shards whose series or groups the
//     step touched; untouched shards are reused wholesale.
//
// Shards(0|1) is the unsharded path: the engine embeds a plain core.Engine
// and forwards, bit-compatible with previous releases.
//
// # Persistence
//
// A sharded engine snapshots as a single version-4 stream carrying the
// global dataset + grouping payload (exactly the monolithic format) plus
// the shard count: per-shard state is derived, like the Dc neighbor lists,
// and is re-derived on load. Version ≤ 3 snapshots load as one shard.
package shard

import (
	"fmt"
	"sort"
	"time"

	"onex/internal/core"
	"onex/internal/grouping"
	"onex/internal/obs"
	"onex/internal/parallel"
	"onex/internal/query"
	"onex/internal/rspace"
	"onex/internal/shardrpc"
	"onex/internal/ts"
)

// Engine is a serving engine over one dataset with a fixed shard layout.
// Like core.Engine it is immutable after construction: Append/Extend/
// WithThreshold return new engines and the receiver stays valid, so any
// number of queries can run concurrently with maintenance swaps.
type Engine struct {
	// mono is the unsharded backend (Shards ≤ 1); when set, every method
	// forwards to it and no sharded state exists.
	mono *core.Engine

	shards int
	// workerURLs, when non-empty, places every shard on a remote worker
	// process (shard s on workerURLs[s%len]); empty keeps shards in-process.
	// The list is serving-time configuration, not persisted state.
	workerURLs       []string
	cfg              core.BuildConfig
	normMin, normMax float64
	// data is the global normalized dataset; shard sub-datasets share its
	// (immutable) value arrays.
	data *ts.Dataset
	// grouped is the global grouping — identical to what the single-engine
	// path builds over the same data.
	grouped *grouping.Result
	parts   []*part
	scatter *query.Scatter

	// spHalf/spFinal are the per-length SP-Space critical thresholds of the
	// ONE global grouping, computed at assemble time with on-demand
	// inter-representative distances (rspace.MergeThresholdsFor) — never
	// from per-shard aggregates, so Recommend/DegreeOf/STHalf/STFinal answer
	// bit-identically to the unsharded engine over the same data.
	spHalf, spFinal map[int]float64
	// globalSTHalf/globalSTFinal are the dataset-wide maxima over lengths,
	// mirroring rspace.Base.GlobalSTHalf/GlobalSTFinal.
	globalSTHalf, globalSTFinal float64

	buildTime   time.Duration
	savedAt     time.Time
	rebuilds    int64
	lastRebuild time.Duration
}

// part is one shard: its series and local↔global translation tables, plus
// the transport the coordinator drives it through. Local parts additionally
// hold the restricted base and its processor (the state behind the
// transport); remote parts hold only the tables — their index lives in the
// worker process, reachable through the transport.
type part struct {
	// series maps local series index → global series id (ascending).
	series []int
	// base/proc back an in-process part; nil when the shard is remote.
	base *rspace.Base
	proc *query.Processor
	// transport is how the scatter coordinator reaches the shard
	// (query.LocalShard in-process, shardrpc.Client remote).
	transport query.ShardTransport
	// gen is the generation nonce of the shipped state (remote parts only):
	// the idempotency key component workers key resident state by.
	gen string
	// globalIDs maps, per length, local group index → global group id. A
	// fresh derivation orders locals by global id; an incremental refresh
	// preserves the previous local order (so index state can be reused) and
	// appends newly-present groups, so the slice is NOT always sorted.
	globalIDs map[int][]int
	// sortedIDs holds the same ids per length in ascending order, for
	// membership tests.
	sortedIDs map[int][]int
	// owned marks, per length, the local groups this shard scans for the
	// global representative phase.
	owned map[int][]bool
}

// has reports whether the part holds global group k of the given length.
// sortedIDs (not globalIDs: an incremental refresh appends newly-present
// groups out of id order) is searched.
func (p *part) has(length, k int) bool {
	ids := p.sortedIDs[length]
	i := sort.SearchInts(ids, k)
	return i < len(ids) && ids[i] == k
}

// ShardOf is the stable series→shard routing function: a splitmix64-style
// mix of the global series id modulo the shard count. It depends only on
// (seriesID, shards), so appends and extensions route deterministically
// across processes and restarts, and new series ids (which continue after
// the existing ones) hash without disturbing the placement of old ones.
func ShardOf(seriesID, shards int) int {
	if shards <= 1 {
		return 0
	}
	z := uint64(seriesID) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(shards))
}

// Build constructs an engine over the dataset with the requested shard
// count. Shards ≤ 1 with no workers selects the unsharded path (a plain
// core.Engine — bit-compatible with previous releases); counts above the
// series count clamp to it (a shard needs at least a chance of holding a
// series); negative counts error. The global grouping runs once on
// cfg.Workers exactly as the unsharded build would, then the per-shard
// index layers are derived concurrently on the same pool.
//
// A non-empty workers list places every shard on a remote worker process
// (shard s on workers[s%len(workers)]): the engine ships each shard's
// series and grouping restriction to its worker at assembly and queries it
// over the shardrpc transport. Answers are bit-identical to the in-process
// layout (the workers rebuild the exact per-shard index from the shipped
// spec); Build fails fast if a worker is unreachable.
func Build(d *ts.Dataset, cfg core.BuildConfig, shards int, workers []string) (*Engine, error) {
	if shards < 0 {
		return nil, fmt.Errorf("shard: shard count must be ≥ 0, got %d", shards)
	}
	if shards <= 1 && len(workers) == 0 {
		mono, err := core.Build(d, cfg)
		if err != nil {
			return nil, err
		}
		return &Engine{mono: mono}, nil
	}
	if shards < 1 {
		shards = 1
	}
	if d != nil && d.N() > 0 && shards > d.N() {
		shards = d.N()
	}
	work, normMin, normMax, err := core.PrepareDataset(d, cfg.Normalize)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	gr, err := grouping.Build(work, grouping.Config{
		ST:       cfg.ST,
		Lengths:  cfg.Lengths,
		Seed:     cfg.Seed,
		Workers:  cfg.Workers,
		Progress: cfg.Progress,
		Cancel:   cfg.Cancel,
	})
	if err != nil {
		return nil, err
	}
	e := &Engine{
		shards: shards, workerURLs: append([]string(nil), workers...),
		cfg: cfg, normMin: normMin, normMax: normMax,
		data: work, grouped: gr,
	}
	if err := e.assemble(nil, nil, nil); err != nil {
		return nil, err
	}
	e.buildTime = time.Since(start)
	return e, nil
}

// assemble derives the per-shard state, the global SP-Space thresholds and
// the scatter executor from the engine's global dataset + grouping. With
// prevE/affected set, shards whose affected flag is false reuse their
// previous part wholesale — valid because an unaffected shard's series
// values are unchanged and every group it holds is value-identical to its
// previous incarnation (incremental maintenance copies untouched groups
// verbatim) — and affected shards refresh incrementally from the
// maintenance delta when one is given (refreshPart), paying index
// recomputation only for touched and new groups instead of a from-scratch
// derivation. The per-length critical thresholds reuse the previous
// engine's values for lengths the delta left untouched (no touched groups,
// no new groups — the group set is then value-identical, so the thresholds
// are too).
func (e *Engine) assemble(prevE *Engine, affected []bool, delta *grouping.Delta) error {
	var prev []*part
	if prevE != nil {
		prev = prevE.parts
	}
	parts := make([]*part, e.shards)
	errs := make([]error, e.shards)
	parallel.ForEach(e.cfg.Workers, e.shards, func(s int) {
		if prev != nil && !affected[s] {
			parts[s] = prev[s]
			return
		}
		if len(e.workerURLs) > 0 {
			// Remote shards ship a fresh generation whenever they change:
			// the worker rebuilds the restricted index from the spec, so no
			// incremental-refresh path exists (or is needed) across the wire.
			parts[s], errs[s] = e.buildRemotePart(s)
			return
		}
		var (
			p   *part
			err error
		)
		if prev != nil && delta != nil {
			p, err = refreshPart(e.data, e.grouped, e.shards, s, e.cfg, prev[s], delta)
		} else {
			p, err = buildPart(e.data, e.grouped, e.shards, s, e.cfg)
		}
		if err == nil {
			p.transport, err = query.NewLocalShard(p.proc, s, p.series, p.globalIDs, p.owned)
		}
		parts[s], errs[s] = p, err
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Exact SP-Space over the global grouping: one Prim pass per length with
	// on-demand distances — O(g) extra memory, never a materialized global
	// matrix. Answers are bit-identical to the unsharded engine because both
	// evaluate the same float expression over the same global groups.
	lengths := e.grouped.Lengths
	halves := make([]float64, len(lengths))
	finals := make([]float64, len(lengths))
	parallel.ForEach(e.cfg.Workers, len(lengths), func(i int) {
		l := lengths[i]
		groups := e.grouped.ByLength[l].Groups
		if prevE != nil && delta != nil &&
			len(delta.Touched[l]) == 0 && delta.PrevGroups[l] == len(groups) {
			halves[i], finals[i] = prevE.spHalf[l], prevE.spFinal[l]
			return
		}
		halves[i], finals[i] = rspace.MergeThresholdsFor(groups, l, e.grouped.ST)
	})
	e.spHalf = make(map[int]float64, len(lengths))
	e.spFinal = make(map[int]float64, len(lengths))
	e.globalSTHalf, e.globalSTFinal = 0, 0
	for i, l := range lengths {
		e.spHalf[l] = halves[i]
		e.spFinal[l] = finals[i]
		if halves[i] > e.globalSTHalf {
			e.globalSTHalf = halves[i]
		}
		if finals[i] > e.globalSTFinal {
			e.globalSTFinal = finals[i]
		}
	}
	transports := make([]query.ShardTransport, e.shards)
	for s, p := range parts {
		transports[s] = p.transport
	}
	globalBase := &rspace.Base{
		Dataset:     e.data,
		ST:          e.grouped.ST,
		Lengths:     append([]int(nil), e.grouped.Lengths...),
		Entries:     make(map[int]*rspace.LengthEntry, len(e.grouped.Lengths)),
		TotalSubseq: e.grouped.TotalSubseq,
	}
	for _, l := range e.grouped.Lengths {
		globalBase.Entries[l] = &rspace.LengthEntry{Length: l, Groups: e.grouped.ByLength[l].Groups}
	}
	sc, err := query.NewScatter(globalBase, e.cfg.Query, transports)
	if err != nil {
		return err
	}
	e.parts = parts
	e.scatter = sc
	return nil
}

// buildPart derives one shard: the sub-dataset of its series (shared value
// arrays), the restriction of every global group to those series (shared
// representative, member order and EDs preserved — restriction of a sorted
// list is sorted), and the full GTI/LSI index layers over the restricted
// group set. Group ownership — which shard scans a representative — goes to
// the shard holding the group's nearest member (Members[0] of the global
// LSI order), a pure function of the global grouping.
func buildPart(data *ts.Dataset, gr *grouping.Result, shards, s int, cfg core.BuildConfig) (*part, error) {
	p := &part{
		globalIDs: make(map[int][]int, len(gr.Lengths)),
		sortedIDs: make(map[int][]int, len(gr.Lengths)),
		owned:     make(map[int][]bool, len(gr.Lengths)),
	}
	localOf := p.collectSeries(data, shards, s)

	res := &grouping.Result{
		ST:       gr.ST,
		Lengths:  append([]int(nil), gr.Lengths...),
		ByLength: make(map[int]*grouping.LengthGroups, len(gr.Lengths)),
	}
	for _, l := range gr.Lengths {
		src := gr.ByLength[l]
		lg := &grouping.LengthGroups{Length: l}
		gids := make([]int, 0, len(src.Groups))
		owned := make([]bool, 0, len(src.Groups))
		for k, g := range src.Groups {
			members := restrictMembers(g, shards, s, localOf)
			if len(members) == 0 {
				continue
			}
			lg.Groups = append(lg.Groups, &grouping.Group{
				Length:  l,
				ID:      len(lg.Groups),
				Rep:     g.Rep, // immutable, shared with the global group
				Members: members,
			})
			gids = append(gids, k)
			owned = append(owned, ShardOf(g.Members[0].SeriesIdx, shards) == s)
			res.TotalSubseq += int64(len(members))
		}
		res.ByLength[l] = lg
		p.globalIDs[l] = gids
		p.sortedIDs[l] = gids // fresh derivations order locals by global id
		p.owned[l] = owned
	}

	base, err := rspace.New(p.sub(data, s), res, rspace.Options{TopK: cfg.DcTopK})
	if err != nil {
		return nil, err
	}
	return p.finish(base, cfg.Query)
}

// buildRemotePart derives one remote shard: the same series routing and
// grouping restriction buildPart computes — but with global series ids, as
// a wire ShardSpec — shipped to the shard's worker under a fresh generation
// nonce. The worker rebuilds the exact restricted index from the spec
// (query.BuildLocalShard runs the constructors buildPart runs, on
// bit-identical inputs), so the remote transport answers bit-identically to
// the in-process one. A shard the hash leaves empty stays in-process (there
// is nothing to ship, and the empty local transport costs nothing).
func (e *Engine) buildRemotePart(s int) (*part, error) {
	p := &part{
		gen:       obs.NewRequestID(),
		globalIDs: make(map[int][]int, len(e.grouped.Lengths)),
		sortedIDs: make(map[int][]int, len(e.grouped.Lengths)),
		owned:     make(map[int][]bool, len(e.grouped.Lengths)),
	}
	p.collectSeries(e.data, e.shards, s)
	if len(p.series) == 0 {
		return e.buildLocalPart(s)
	}
	name := e.data.Name
	if name == "" {
		name = "dataset"
	}
	spec := query.ShardSpec{
		Dataset:    name,
		Generation: p.gen,
		Shard:      s,
		Shards:     e.shards,
		ST:         e.grouped.ST,
		DcTopK:     e.cfg.DcTopK,
		Opts:       e.cfg.Query,
		Series:     make([]query.SpecSeries, 0, len(p.series)),
		Lengths:    make([]query.SpecLength, 0, len(e.grouped.Lengths)),
	}
	for _, id := range p.series {
		spec.Series = append(spec.Series, query.SpecSeries{
			ID:     id,
			Label:  e.data.Series[id].Label,
			Values: e.data.Series[id].Values,
		})
	}
	for _, l := range e.grouped.Lengths {
		src := e.grouped.ByLength[l]
		sl := query.SpecLength{Length: l}
		gids := make([]int, 0, len(src.Groups))
		owned := make([]bool, 0, len(src.Groups))
		for k, g := range src.Groups {
			members := restrictMembersGlobal(g, e.shards, s)
			if len(members) == 0 {
				continue
			}
			own := ShardOf(g.Members[0].SeriesIdx, e.shards) == s
			sl.Groups = append(sl.Groups, query.SpecGroup{
				GlobalID: k,
				Owned:    own,
				Rep:      g.Rep,
				Members:  members,
			})
			gids = append(gids, k)
			owned = append(owned, own)
		}
		spec.Lengths = append(spec.Lengths, sl)
		p.globalIDs[l] = gids
		p.sortedIDs[l] = gids // global iteration order is ascending
		p.owned[l] = owned
	}
	worker := e.workerURLs[s%len(e.workerURLs)]
	client, err := shardrpc.NewClient(worker, spec, shardrpc.ClientOptions{})
	if err != nil {
		return nil, fmt.Errorf("shard: ship shard %d to worker %s: %w", s, worker, err)
	}
	p.transport = client
	return p, nil
}

// buildLocalPart is buildPart plus the transport wrap (the fallback for
// hash-empty shards of a remote layout).
func (e *Engine) buildLocalPart(s int) (*part, error) {
	p, err := buildPart(e.data, e.grouped, e.shards, s, e.cfg)
	if err != nil {
		return nil, err
	}
	p.transport, err = query.NewLocalShard(p.proc, s, p.series, p.globalIDs, p.owned)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// restrictMembersGlobal is restrictMembers on the wire: the restriction of
// one global group's member list to the shard's series, keeping global
// series ids (the worker remaps to its local order, which equals the
// coordinator's — both ascend the same id set).
func restrictMembersGlobal(g *grouping.Group, shards, s int) []query.SpecMember {
	var members []query.SpecMember
	for _, m := range g.Members {
		if ShardOf(m.SeriesIdx, shards) != s {
			continue
		}
		members = append(members, query.SpecMember{
			Series:  m.SeriesIdx,
			Start:   m.Start,
			EDToRep: m.EDToRep,
		})
	}
	return members
}

// collectSeries fills p.series with the shard's series (ascending global
// id) and returns the global→local index map. The sub-dataset itself is
// derived separately (sub) so refreshPart can share this step.
func (p *part) collectSeries(data *ts.Dataset, shards, s int) map[int]int {
	localOf := make(map[int]int)
	for id := range data.Series {
		if ShardOf(id, shards) != s {
			continue
		}
		localOf[id] = len(p.series)
		p.series = append(p.series, id)
	}
	return localOf
}

// sub materializes the shard's sub-dataset: fresh series headers sharing
// the (immutable) global value arrays, local ids in p.series order.
func (p *part) sub(data *ts.Dataset, s int) *ts.Dataset {
	sub := &ts.Dataset{Name: fmt.Sprintf("%s#%d", data.Name, s)}
	for _, id := range p.series {
		sub.Append(data.Series[id].Label, data.Series[id].Values)
	}
	return sub
}

// finish wraps the restricted base with its query processor.
func (p *part) finish(base *rspace.Base, qopts query.Options) (*part, error) {
	proc, err := query.New(base, qopts)
	if err != nil {
		return nil, err
	}
	p.base = base
	p.proc = proc
	return p, nil
}

// restrictMembers filters one global group's member list down to the
// shard's series, remapping to local ids. Restriction of the (ED-sorted)
// global LSI order preserves it.
func restrictMembers(g *grouping.Group, shards, s int, localOf map[int]int) []grouping.Member {
	var members []grouping.Member
	for _, m := range g.Members {
		if ShardOf(m.SeriesIdx, shards) != s {
			continue
		}
		members = append(members, grouping.Member{
			SeriesIdx: localOf[m.SeriesIdx],
			Start:     m.Start,
			EDToRep:   m.EDToRep,
		})
	}
	return members
}

// refreshPart is buildPart's incremental form, run on the shards a
// maintenance delta touched: previously-present groups keep their local
// indices (untouched ones reuse the previous restricted group object
// wholesale — it is value-identical), groups the step touched re-restrict,
// and groups newly present in the shard (touched groups gaining their
// first member here, or brand-new groups) append at the end. The
// prefix-stable local order lets rspace.Refresh reuse every Dc entry and
// envelope not involving a touched or appended group, so the refresh costs
// O(changed·gₛ·L + gₛ²) instead of buildPart's O(gₛ²·L) — and is proven
// bit-identical to a fresh derivation (rspace.Refresh's contract, plus the
// structural equality test in this package).
//
// The shard's series membership only grows (new ids hash in above all old
// ids), so the previous local series order is a prefix of the new one and
// every reused member index stays valid.
func refreshPart(data *ts.Dataset, gr *grouping.Result, shards, s int, cfg core.BuildConfig,
	prev *part, delta *grouping.Delta) (*part, error) {

	p := &part{
		globalIDs: make(map[int][]int, len(gr.Lengths)),
		sortedIDs: make(map[int][]int, len(gr.Lengths)),
		owned:     make(map[int][]bool, len(gr.Lengths)),
	}
	localOf := p.collectSeries(data, shards, s)

	res := &grouping.Result{
		ST:       gr.ST,
		Lengths:  append([]int(nil), gr.Lengths...),
		ByLength: make(map[int]*grouping.LengthGroups, len(gr.Lengths)),
	}
	localDelta := &grouping.Delta{
		PrevGroups: make(map[int]int, len(gr.Lengths)),
		Touched:    make(map[int][]int, len(gr.Lengths)),
	}
	for _, l := range gr.Lengths {
		src := gr.ByLength[l]
		prevIDs := prev.globalIDs[l]
		prevGroups := prev.base.Entry(l).Groups
		touched := make(map[int]bool, len(delta.Touched[l]))
		for _, k := range delta.Touched[l] {
			touched[k] = true
		}

		lg := &grouping.LengthGroups{Length: l}
		gids := make([]int, 0, len(prevIDs))
		owned := make([]bool, 0, len(prevIDs))
		var localTouched []int
		for li, k := range prevIDs {
			g := src.Groups[k]
			rg := prevGroups[li]
			if touched[k] {
				rg = &grouping.Group{
					Length:  l,
					ID:      li,
					Rep:     g.Rep,
					Members: restrictMembers(g, shards, s, localOf),
				}
				localTouched = append(localTouched, li)
			}
			lg.Groups = append(lg.Groups, rg)
			gids = append(gids, k)
			owned = append(owned, ShardOf(g.Members[0].SeriesIdx, shards) == s)
			res.TotalSubseq += int64(len(rg.Members))
		}

		// Only groups whose membership changed can newly enter the shard:
		// touched old groups not present before, and brand-new groups.
		candidates := make([]int, 0, len(delta.Touched[l]))
		for _, k := range delta.Touched[l] {
			if !prev.has(l, k) {
				candidates = append(candidates, k)
			}
		}
		for k := delta.PrevGroups[l]; k < len(src.Groups); k++ {
			candidates = append(candidates, k)
		}
		sort.Ints(candidates)
		for _, k := range candidates {
			g := src.Groups[k]
			members := restrictMembers(g, shards, s, localOf)
			if len(members) == 0 {
				continue
			}
			lg.Groups = append(lg.Groups, &grouping.Group{
				Length:  l,
				ID:      len(lg.Groups),
				Rep:     g.Rep,
				Members: members,
			})
			gids = append(gids, k)
			owned = append(owned, ShardOf(g.Members[0].SeriesIdx, shards) == s)
			res.TotalSubseq += int64(len(members))
		}

		res.ByLength[l] = lg
		p.globalIDs[l] = gids
		sorted := append([]int(nil), gids...)
		sort.Ints(sorted)
		p.sortedIDs[l] = sorted
		p.owned[l] = owned
		localDelta.PrevGroups[l] = len(prevIDs)
		localDelta.Touched[l] = localTouched
	}

	base, err := rspace.Refresh(p.sub(data, s), res, rspace.Options{TopK: cfg.DcTopK}, prev.base, localDelta)
	if err != nil {
		return nil, err
	}
	return p.finish(base, cfg.Query)
}
