package shard

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"onex/internal/core"
	"onex/internal/query"
	"onex/internal/rspace"
	"onex/internal/ts"
)

func TestShardOf(t *testing.T) {
	// Deterministic, in-range, and not degenerate.
	counts := make([]int, 8)
	for id := 0; id < 4096; id++ {
		s := ShardOf(id, 8)
		if s < 0 || s >= 8 {
			t.Fatalf("ShardOf(%d, 8) = %d out of range", id, s)
		}
		if s != ShardOf(id, 8) {
			t.Fatalf("ShardOf(%d, 8) unstable", id)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < 256 || c > 768 { // expect ~512 each; allow wide slack
			t.Errorf("shard %d holds %d of 4096 ids — hash is badly skewed", s, c)
		}
	}
	if ShardOf(42, 1) != 0 || ShardOf(42, 0) != 0 {
		t.Error("degenerate shard counts must route to 0")
	}
}

func TestBuildValidation(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	d := randomDataset(r, 6, 24)
	cfg := core.BuildConfig{ST: 0.3, Lengths: []int{6, 10}, Seed: 1}

	if _, err := Build(d, cfg, -1, nil); err == nil {
		t.Error("negative shard count: want error")
	}
	for _, shards := range []int{0, 1} {
		e, err := Build(d, cfg, shards, nil)
		if err != nil {
			t.Fatal(err)
		}
		if e.ShardCount() != 1 {
			t.Errorf("Shards=%d: ShardCount = %d, want 1 (single-engine path)", shards, e.ShardCount())
		}
	}
	// Counts above the series count clamp to it.
	e, err := Build(d, cfg, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.ShardCount() != d.N() {
		t.Errorf("Shards=100 over %d series: ShardCount = %d, want %d", d.N(), e.ShardCount(), d.N())
	}
}

// TestRestrictionIntegrity checks the derived per-shard state against the
// global grouping: complete member coverage, preserved LSI order, and
// exactly-once group ownership.
func TestRestrictionIntegrity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	d := randomDataset(r, 16, 30)
	cfg := core.BuildConfig{ST: 0.3, Lengths: []int{6, 10, 14}, Seed: 2}
	e, err := Build(d, cfg, 4, nil)
	if err != nil {
		t.Fatal(err)
	}

	var resident int64
	for _, p := range e.parts {
		resident += p.base.TotalSubseq
		for _, l := range e.grouped.Lengths {
			entry := p.base.Entry(l)
			if entry == nil {
				t.Fatalf("shard missing length %d", l)
			}
			for k, g := range entry.Groups {
				gid := p.globalIDs[l][k]
				global := e.grouped.ByLength[l].Groups[gid]
				if &g.Rep[0] != &global.Rep[0] {
					t.Fatalf("length %d local group %d does not share the global representative", l, k)
				}
				for i := 1; i < len(g.Members); i++ {
					if g.Members[i-1].EDToRep > g.Members[i].EDToRep {
						t.Fatalf("length %d group %d: restricted member order not LSI-sorted", l, k)
					}
				}
				for _, m := range g.Members {
					globalSid := p.series[m.SeriesIdx]
					if ShardOf(globalSid, e.shards) != p.shardIndex(e) {
						t.Fatalf("length %d group %d holds foreign series %d", l, k, globalSid)
					}
				}
			}
		}
	}
	if resident != e.grouped.TotalSubseq {
		t.Errorf("resident subsequences %d != global %d", resident, e.grouped.TotalSubseq)
	}

	// Ownership: every global group owned exactly once.
	for _, l := range e.grouped.Lengths {
		owners := make([]int, len(e.grouped.ByLength[l].Groups))
		for _, p := range e.parts {
			for local, own := range p.owned[l] {
				if own {
					owners[p.globalIDs[l][local]]++
				}
			}
		}
		for k, c := range owners {
			if c != 1 {
				t.Errorf("length %d global group %d owned %d times", l, k, c)
			}
		}
	}
}

func (p *part) shardIndex(e *Engine) int {
	for i, q := range e.parts {
		if q == p {
			return i
		}
	}
	return -1
}

// TestEmptyShard forces a layout where some shard receives no series and
// checks the engine still builds and answers.
func TestEmptyShard(t *testing.T) {
	// Find a (series count, shard count) pair with an unoccupied shard.
	n, shards := -1, -1
search:
	for nn := 3; nn <= 8; nn++ {
		for ss := 2; ss <= nn; ss++ {
			occupied := make([]bool, ss)
			for id := 0; id < nn; id++ {
				occupied[ShardOf(id, ss)] = true
			}
			for _, occ := range occupied {
				if !occ {
					n, shards = nn, ss
					break search
				}
			}
		}
	}
	if n < 0 {
		t.Skip("hash occupies every shard for all tested layouts")
	}
	r := rand.New(rand.NewSource(3))
	d := randomDataset(r, n, 26)
	cfg := core.BuildConfig{ST: 0.3, Lengths: []int{6, 10}, Seed: 1}
	e, err := Build(d, cfg, shards, nil)
	if err != nil {
		t.Fatalf("build with empty shard: %v", err)
	}
	mono, err := Build(d, cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := randomQueries(r, d, cfg.Lengths, 6)
	compareEngines(t, "empty-shard", mono, e, queries, cfg.Lengths, cfg.ST)
}

func TestWithThresholdSharded(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	d := randomDataset(r, 8, 24)
	cfg := core.BuildConfig{ST: 0.3, Lengths: []int{6, 10}, Seed: 1}
	mono, err := Build(d, cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mono.WithThreshold(0.5); err != nil {
		t.Errorf("unsharded WithThreshold: %v", err)
	}
	sharded, err := Build(d, cfg, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.WithThreshold(0.5); err == nil {
		t.Error("sharded WithThreshold: want refusal error")
	}
}

func TestLayoutSignature(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	d := randomDataset(r, 12, 24)
	cfg := core.BuildConfig{ST: 0.3, Lengths: []int{6, 10}, Seed: 1}
	sigs := make(map[uint64]int)
	for _, shards := range []int{1, 2, 3, 4} {
		e, err := Build(d, cfg, shards, nil)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := sigs[e.LayoutSignature()]; dup {
			t.Errorf("layouts %d and %d share a signature", prev, shards)
		}
		sigs[e.LayoutSignature()] = shards
	}
	// Growing a shard's population changes the signature too.
	e, err := Build(d, cfg, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := e.Append(0, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if e.LayoutSignature() == grown.LayoutSignature() {
		t.Error("append did not change the layout signature")
	}
}

// TestPersistRoundTrip saves a sharded engine and checks the reload answers
// identically and preserves the layout; a mono engine's stream must load
// with one shard.
func TestPersistRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	d := randomDataset(r, 14, 28)
	lengths := []int{6, 10, 14}
	cfg := core.BuildConfig{ST: 0.3, Lengths: lengths, Seed: 4,
		Query: query.Options{Parallelism: 2}}
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			e, err := Build(d, cfg, shards, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Grow it first so drift survives the round trip too.
			e, err = e.Append(1, []float64{0.5, 0.6, 0.7, 0.65})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := e.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(bytes.NewReader(buf.Bytes()), nil)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.ShardCount() != e.ShardCount() {
				t.Fatalf("reloaded shard count %d, want %d", loaded.ShardCount(), e.ShardCount())
			}
			if loaded.Drift() != e.Drift() {
				t.Errorf("reloaded drift %v, want %v", loaded.Drift(), e.Drift())
			}
			queries := randomQueries(r, loaded.monoOrData(), lengths, 8)
			compareEngines(t, "reload", e, loaded, queries, lengths, cfg.ST)
		})
	}
}

// TestCoreLoadRefusesSharded pins the dispatch: core.Load must not silently
// materialize a sharded stream as a monolith.
func TestCoreLoadRefusesSharded(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	d := randomDataset(r, 8, 24)
	e, err := Build(d, core.BuildConfig{ST: 0.3, Lengths: []int{6, 10}, Seed: 1}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("core.Load accepted a sharded stream")
	}
}

// TestRefreshPartBitIdentical proves the incremental per-shard refresh is a
// pure cost optimization: after maintenance steps, every part of the
// engine must carry exactly the index state a from-scratch derivation over
// the final data would (Dc entries, envelopes, members, SP-Space values),
// modulo the local numbering (the refresh preserves its previous order and
// appends newly-present groups; a fresh derivation orders by global id).
func TestRefreshPartBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	d := randomDataset(r, 14, 26)
	cfg := core.BuildConfig{ST: 0.35, Lengths: []int{6, 10}, Seed: 3, RebuildDrift: -1}
	e, err := Build(d, cfg, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 4; step++ {
		if step%2 == 0 {
			pts := make([]float64, 3+r.Intn(5))
			x := r.Float64()
			for j := range pts {
				x += r.NormFloat64() * 0.1
				pts[j] = x
			}
			if e, err = e.Append(r.Intn(e.NumSeries()), pts); err != nil {
				t.Fatal(err)
			}
		} else {
			v := make([]float64, 18+r.Intn(10))
			x := r.Float64() * 3
			for j := range v {
				x += r.NormFloat64() * 0.4
				v[j] = x
			}
			if e, err = e.Extend([]*ts.Series{{Label: "n", Values: v}}); err != nil {
				t.Fatal(err)
			}
		}
		for s, got := range e.parts {
			want, err := buildPart(e.data, e.grouped, e.shards, s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			comparePartState(t, step, s, got, want)
		}
	}
}

// comparePartState checks two derivations of the same shard hold identical
// index state per global group id.
func comparePartState(t *testing.T, step, s int, got, want *part) {
	t.Helper()
	if got.base.TotalSubseq != want.base.TotalSubseq {
		t.Fatalf("step %d shard %d: subseq %d vs %d", step, s, got.base.TotalSubseq, want.base.TotalSubseq)
	}
	if got.base.GlobalSTHalf != want.base.GlobalSTHalf || got.base.GlobalSTFinal != want.base.GlobalSTFinal {
		t.Fatalf("step %d shard %d: SP-Space diverged", step, s)
	}
	for _, l := range got.base.Lengths {
		ge, we := got.base.Entry(l), want.base.Entry(l)
		if len(ge.Groups) != len(we.Groups) {
			t.Fatalf("step %d shard %d length %d: %d vs %d groups", step, s, l, len(ge.Groups), len(we.Groups))
		}
		if ge.STHalf != we.STHalf || ge.STFinal != we.STFinal {
			t.Fatalf("step %d shard %d length %d: entry SP-Space diverged", step, s, l)
		}
		// Map global id → local index on each side.
		gLoc := map[int]int{}
		for li, k := range got.globalIDs[l] {
			gLoc[k] = li
		}
		for wi, k := range want.globalIDs[l] {
			gi, ok := gLoc[k]
			if !ok {
				t.Fatalf("step %d shard %d length %d: refresh missing global group %d", step, s, l, k)
			}
			gg, wg := ge.Groups[gi], we.Groups[wi]
			if len(gg.Members) != len(wg.Members) {
				t.Fatalf("step %d shard %d length %d group %d: member counts diverged", step, s, l, k)
			}
			for m := range gg.Members {
				if gg.Members[m] != wg.Members[m] {
					t.Fatalf("step %d shard %d length %d group %d member %d: %+v vs %+v",
						step, s, l, k, m, gg.Members[m], wg.Members[m])
				}
			}
			for v := range gg.Rep {
				if gg.Rep[v] != wg.Rep[v] {
					t.Fatalf("step %d shard %d length %d group %d: representative diverged", step, s, l, k)
				}
			}
			for v := range ge.Envelopes[gi].Upper {
				if ge.Envelopes[gi].Upper[v] != we.Envelopes[wi].Upper[v] ||
					ge.Envelopes[gi].Lower[v] != we.Envelopes[wi].Lower[v] {
					t.Fatalf("step %d shard %d length %d group %d: envelope diverged", step, s, l, k)
				}
			}
			if got.owned[l][gi] != want.owned[l][wi] {
				t.Fatalf("step %d shard %d length %d group %d: ownership diverged", step, s, l, k)
			}
			// Sparse Dc row: the retained neighbor distances are a pure
			// function of the row (its k smallest), so the sorted value
			// lists must match bit for bit even though local indices (and
			// hence tie-breaks) differ between the two derivations.
			gds := retainedDists(ge.TopK[gi])
			wds := retainedDists(we.TopK[wi])
			if len(gds) != len(wds) {
				t.Fatalf("step %d shard %d length %d group %d: %d vs %d retained neighbors",
					step, s, l, k, len(gds), len(wds))
			}
			for v := range gds {
				if gds[v] != wds[v] {
					t.Fatalf("step %d shard %d length %d group %d: retained Dc values diverged: %v vs %v",
						step, s, l, k, gds[v], wds[v])
				}
			}
			// And where both sides retain the same global pair, the looked-up
			// values must agree exactly.
			for wj, k2 := range want.globalIDs[l] {
				wd, wok := lookupDc(we, wi, wj)
				gd, gok := lookupDc(ge, gi, gLoc[k2])
				if wok && gok && wd != gd {
					t.Fatalf("step %d shard %d length %d: Dc(%d,%d) diverged: %v vs %v",
						step, s, l, k, k2, gd, wd)
				}
			}
		}
	}
}

// retainedDists returns the distances of a sparse Dc row, sorted ascending.
// The lists are already stored sorted by (distance, index); re-sorting by
// value alone makes the comparison independent of local index assignment.
func retainedDists(row []rspace.Neighbor) []float64 {
	ds := make([]float64, len(row))
	for i, n := range row {
		ds[i] = n.D
	}
	sort.Float64s(ds)
	return ds
}

// lookupDc mirrors the sparse symmetric lookup: Dc(i,j) is known if either
// row retained the other as a neighbor.
func lookupDc(e *rspace.LengthEntry, i, j int) (float64, bool) {
	if i == j {
		return 0, true
	}
	for _, n := range e.TopK[i] {
		if n.To == j {
			return n.D, true
		}
	}
	for _, n := range e.TopK[j] {
		if n.To == i {
			return n.D, true
		}
	}
	return 0, false
}
