package shard

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"onex/internal/core"
	"onex/internal/obs"
	"onex/internal/query"
)

// The distributed tracing contract: recording a trace is strictly
// observational. Turning explain on must not change a single answer bit —
// across transports (in-process vs worker-served), parallelism and shard
// counts, for every query family. Distances are compared as Float64bits
// (exact equality including ±Inf and signed zero), not with a tolerance.

func matchBitsEqual(a, b query.Match) bool {
	return a.SeriesID == b.SeriesID && a.Start == b.Start && a.Length == b.Length &&
		math.Float64bits(a.Dist) == math.Float64bits(b.Dist) &&
		math.Float64bits(a.RawDTW) == math.Float64bits(b.RawDTW)
}

func matchesBitsEqual(a, b []query.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !matchBitsEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func rangeBitsEqual(a, b []query.RangeResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !matchBitsEqual(a[i].Match, b[i].Match) || a[i].Guaranteed != b[i].Guaranteed {
			return false
		}
	}
	return true
}

func seasonalBitsEqual(a, b []query.SeasonalGroup) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Length != b[i].Length || a[i].GroupID != b[i].GroupID ||
			len(a[i].Members) != len(b[i].Members) {
			return false
		}
	}
	return true
}

// TestRemoteObservationalPurity: every query family answers bit-identically
// with tracing off and on, locally and over remote workers, across
// parallelism {1,8} and shard counts {1,3} — and the remote traces actually
// contain the rpc/worker span pairs (tracing is on, not silently skipped).
func TestRemoteObservationalPurity(t *testing.T) {
	lengths := []int{8, 12, 16}
	const st = 0.35
	for _, parallelism := range []int{1, 8} {
		for _, shards := range []int{1, 3} {
			t.Run(fmt.Sprintf("p%d_s%d", parallelism, shards), func(t *testing.T) {
				r := rand.New(rand.NewSource(7717))
				d := randomDataset(r, 14, 32)
				cfg := core.BuildConfig{
					ST: st, Lengths: lengths, Seed: 1,
					Workers: parallelism,
					Query:   query.Options{Parallelism: parallelism},
				}
				urls, _ := startWorkers(t, 2)
				local, err := Build(d, cfg, shards, nil)
				if err != nil {
					t.Fatal(err)
				}
				remote, err := Build(d, cfg, shards, urls)
				if err != nil {
					t.Fatal(err)
				}
				defer remote.Close()

				engines := []struct {
					name string
					eng  *Engine
				}{{"local", local}, {"remote", remote}}
				queries := randomQueries(r, d, lengths, 6)
				ctx := context.Background()
				var remoteSpans []obs.Span

				for qi, q := range queries {
					for _, mode := range []query.MatchMode{query.MatchAny, query.MatchExact} {
						// Reference: local, untraced.
						refM, refErr := local.BestMatchObserved(ctx, q, mode, nil)
						refK, refKErr := local.BestKMatchesObserved(ctx, q, mode, 3, nil)
						for _, e := range engines {
							for _, traced := range []bool{false, true} {
								var rec *obs.Trace
								if traced {
									rec = obs.NewTrace(fmt.Sprintf("purity-%d", qi))
								}
								m, err := e.eng.BestMatchObserved(ctx, q, mode, rec)
								if (err != nil) != (refErr != nil) {
									t.Fatalf("%s traced=%v q%d mode%d: error diverged: %v vs %v",
										e.name, traced, qi, mode, err, refErr)
								}
								if err == nil && !matchBitsEqual(m, refM) {
									t.Fatalf("%s traced=%v q%d mode%d: match diverged: %+v vs %+v",
										e.name, traced, qi, mode, m, refM)
								}
								ms, err := e.eng.BestKMatchesObserved(ctx, q, mode, 3, rec)
								if (err != nil) != (refKErr != nil) {
									t.Fatalf("%s traced=%v q%d mode%d: knn error diverged: %v vs %v",
										e.name, traced, qi, mode, err, refKErr)
								}
								if err == nil && !matchesBitsEqual(ms, refK) {
									t.Fatalf("%s traced=%v q%d mode%d: knn diverged", e.name, traced, qi, mode)
								}
								if traced && e.name == "remote" {
									remoteSpans = append(remoteSpans, rec.Snapshot().Spans...)
								}
							}
						}
					}
					for _, exact := range []bool{false, true} {
						refR, refErr := local.RangeSearchObserved(ctx, q, len(q), st, exact, nil)
						for _, e := range engines {
							for _, traced := range []bool{false, true} {
								var rec *obs.Trace
								if traced {
									rec = obs.NewTrace("purity-range")
								}
								rs, err := e.eng.RangeSearchObserved(ctx, q, len(q), st, exact, rec)
								if (err != nil) != (refErr != nil) {
									t.Fatalf("%s traced=%v q%d exact=%v: range error diverged: %v vs %v",
										e.name, traced, qi, exact, err, refErr)
								}
								if err == nil && !rangeBitsEqual(rs, refR) {
									t.Fatalf("%s traced=%v q%d exact=%v: range diverged", e.name, traced, qi, exact)
								}
								if traced && e.name == "remote" {
									remoteSpans = append(remoteSpans, rec.Snapshot().Spans...)
								}
							}
						}
					}
				}

				refS, refErr := local.SeasonalAllObserved(lengths[0], nil)
				for _, e := range engines {
					for _, traced := range []bool{false, true} {
						var rec *obs.Trace
						if traced {
							rec = obs.NewTrace("purity-seasonal")
						}
						sg, err := e.eng.SeasonalAllObserved(lengths[0], rec)
						if (err != nil) != (refErr != nil) {
							t.Fatalf("%s traced=%v: seasonal error diverged: %v vs %v", e.name, traced, err, refErr)
						}
						if err == nil && !seasonalBitsEqual(sg, refS) {
							t.Fatalf("%s traced=%v: seasonal diverged", e.name, traced)
						}
					}
				}

				var rpcSpans, workerSpans int
				for _, sp := range remoteSpans {
					if strings.HasPrefix(sp.Name, "rpc-") {
						rpcSpans++
					}
					if strings.HasPrefix(sp.Name, "worker-") {
						workerSpans++
					}
				}
				if rpcSpans == 0 || workerSpans == 0 {
					t.Fatalf("traced remote queries recorded %d rpc / %d worker spans — tracing silently off",
						rpcSpans, workerSpans)
				}
			})
		}
	}
}

// TestRemoteWorkerSpanWorkAgreement: the pruning-cascade attrs the worker
// spans carry must sum to exactly the work counters the coordinator trace
// accumulated — the distributed explain decomposition is exact, not
// approximate.
func TestRemoteWorkerSpanWorkAgreement(t *testing.T) {
	lengths := []int{8, 12}
	const st = 0.35
	r := rand.New(rand.NewSource(3301))
	d := randomDataset(r, 12, 30)
	cfg := core.BuildConfig{
		ST: st, Lengths: lengths, Seed: 1,
		Query: query.Options{Parallelism: 2},
	}
	urls, _ := startWorkers(t, 2)
	remote, err := Build(d, cfg, 3, urls)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	queries := randomQueries(r, d, lengths, 5)
	for qi, q := range queries {
		rec := obs.NewTrace(fmt.Sprintf("agree-%d", qi))
		if _, err := remote.BestMatchObserved(context.Background(), q, query.MatchAny, rec); err != nil {
			continue
		}
		v := rec.Snapshot()
		sums := map[string]int64{}
		for _, sp := range v.Spans {
			if !strings.HasPrefix(sp.Name, "worker-") {
				continue
			}
			for _, a := range sp.Attrs {
				sums[a.Key] += a.Value
			}
		}
		// Every cascade counter the coordinator accumulated must equal the sum
		// over worker spans (best-match work happens entirely on workers).
		for _, key := range []string{"repsExamined", "prunedByKim", "prunedByKeogh", "dtwComputed"} {
			if sums[key] != v.Work[key] {
				t.Fatalf("q%d: worker span sum %s=%d != trace work %d (work=%v sums=%v)",
					qi, key, sums[key], v.Work[key], v.Work, sums)
			}
		}
		// membersTested is decision-level: the coordinator's sequential replay
		// can stop at the patience cutoff before crediting every member the
		// workers evaluated, so it is bounded by — not equal to — the batch
		// sizes the worker spans report.
		if v.Work["membersTested"] > sums["membersEvaluated"] {
			t.Fatalf("q%d: membersTested %d exceeds worker-evaluated %d",
				qi, v.Work["membersTested"], sums["membersEvaluated"])
		}
	}
}
