package rspace

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"onex/internal/dataset"
	"onex/internal/grouping"
	"onex/internal/ts"
)

func buildBaseK(t *testing.T, st float64, lengths []int, topK int) *Base {
	t.Helper()
	d := dataset.ItalyPower.Scaled(0.5).Generate(4)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	gr, err := grouping.Build(d, grouping.Config{ST: st, Lengths: lengths, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(d, gr, Options{TopK: topK})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTopKInvariantDerivedState is the rspace half of the exactness
// argument: every quantity the query processor reads — row sums, visit
// orders, merge thresholds, envelopes — must be bit-identical at every
// TopK setting, because all of them derive from the transient dense matrix
// before the top-k cut happens.
func TestTopKInvariantDerivedState(t *testing.T) {
	lengths := []int{5, 8}
	ref := buildBaseK(t, 0.2, lengths, -1) // dense-equivalent retention
	for _, k := range []int{0, 1, 2, DefaultTopK, 1 << 20} {
		b := buildBaseK(t, 0.2, lengths, k)
		if b.GlobalSTHalf != ref.GlobalSTHalf || b.GlobalSTFinal != ref.GlobalSTFinal {
			t.Errorf("TopK=%d: global thresholds differ", k)
		}
		for _, l := range lengths {
			be, re := b.Entry(l), ref.Entry(l)
			if !reflect.DeepEqual(be.Sums, re.Sums) ||
				!reflect.DeepEqual(be.SumOrder, re.SumOrder) ||
				!reflect.DeepEqual(be.MedianOrder, re.MedianOrder) {
				t.Errorf("TopK=%d length %d: scan-order state differs", k, l)
			}
			if be.STHalf != re.STHalf || be.STFinal != re.STFinal {
				t.Errorf("TopK=%d length %d: thresholds differ", k, l)
			}
			if !reflect.DeepEqual(be.Envelopes, re.Envelopes) {
				t.Errorf("TopK=%d length %d: envelopes differ", k, l)
			}
		}
	}
}

func TestTopKEdgeWidths(t *testing.T) {
	lengths := []int{6}
	// k far beyond g: full rows, identical to the dense-equivalent layout.
	wide := buildBaseK(t, 0.2, lengths, 1<<20)
	dense := buildBaseK(t, 0.2, lengths, -1)
	if !reflect.DeepEqual(wide.Entry(6).TopK, dense.Entry(6).TopK) {
		t.Error("k ≥ g does not match the dense-equivalent retention")
	}
	g := len(dense.Entry(6).Groups)
	for k, nbs := range dense.Entry(6).TopK {
		if len(nbs) != g-1 {
			t.Fatalf("dense-equivalent row %d has %d neighbors, want %d", k, len(nbs), g-1)
		}
	}
	// k = 1: exactly one (the nearest) neighbor per row.
	one := buildBaseK(t, 0.2, lengths, 1)
	for k, nbs := range one.Entry(6).TopK {
		if g > 1 && len(nbs) != 1 {
			t.Fatalf("TopK=1 row %d has %d neighbors", k, len(nbs))
		}
		if len(nbs) > 0 && nbs[0] != dense.Entry(6).TopK[k][0] {
			t.Fatalf("TopK=1 row %d nearest %+v != dense nearest %+v", k, nbs[0], dense.Entry(6).TopK[k][0])
		}
	}
}

// TestTopKSingleGroup covers g = 1: no neighbors to retain, thresholds
// degenerate to ST, and the entry still serves queries' scan state.
func TestTopKSingleGroup(t *testing.T) {
	d := ts.NewDataset("one", [][]float64{{0, 1, 2, 3}})
	gr, err := grouping.Build(d, grouping.Config{ST: 10, Lengths: []int{3}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(d, gr, Options{TopK: 4})
	if err != nil {
		t.Fatal(err)
	}
	e := b.Entry(3)
	if len(e.Groups) != 1 {
		t.Skipf("want a single group, got %d", len(e.Groups))
	}
	if len(e.TopK) != 1 || len(e.TopK[0]) != 0 {
		t.Errorf("single group should retain no neighbors: %+v", e.TopK)
	}
	if e.STHalf != b.ST || e.STFinal != b.ST {
		t.Errorf("degenerate thresholds (%v,%v), want (%v,%v)", e.STHalf, e.STFinal, b.ST, b.ST)
	}
	if len(e.MedianOrder) != 1 || e.MedianOrder[0] != 0 {
		t.Errorf("median order %v", e.MedianOrder)
	}
}

// TestTopKTieBreakDeterministic hand-crafts representatives with exactly
// tied Dc values and checks the retained list prefers the lower group
// index — the documented deterministic tie-break.
func TestTopKTieBreakDeterministic(t *testing.T) {
	lg := &grouping.LengthGroups{
		Length: 2,
		Groups: []*grouping.Group{
			{Length: 2, ID: 0, Rep: []float64{0, 0}, Members: []grouping.Member{{}}},
			{Length: 2, ID: 1, Rep: []float64{1, 1}, Members: []grouping.Member{{}}},
			{Length: 2, ID: 2, Rep: []float64{-1, -1}, Members: []grouping.Member{{}}},
			{Length: 2, ID: 3, Rep: []float64{3, 3}, Members: []grouping.Member{{}}},
		},
	}
	// From rep 0: d(0,1) == d(0,2) exactly (symmetric points), d(0,3) larger.
	e := newLengthEntry(lg, 0.1, 2, 1)
	if len(e.TopK[0]) != 1 || e.TopK[0][0].To != 1 {
		t.Fatalf("tied nearest should resolve to the lower index: %+v", e.TopK[0])
	}
	e2 := newLengthEntry(lg, 0.1, 2, 2)
	if len(e2.TopK[0]) != 2 || e2.TopK[0][0].To != 1 || e2.TopK[0][1].To != 2 {
		t.Fatalf("tied pair should list ascending indices: %+v", e2.TopK[0])
	}
	if e2.TopK[0][0].D != e2.TopK[0][1].D {
		t.Fatalf("crafted tie is not a tie: %+v", e2.TopK[0])
	}
	// The tie must also not disturb the derived state across widths.
	if e.STHalf != e2.STHalf || e.STFinal != e2.STFinal {
		t.Error("thresholds depend on retention width under ties")
	}
}

// TestRefreshSparseMatchesNew mirrors TestRefreshMatchesNewBitForBit at
// narrow retention widths: even when the previous entry's lists cover only
// a fraction of the clean pairs, Refresh must reproduce New bit for bit
// (the uncovered pairs recompute the identical EDs).
func TestRefreshSparseMatchesNew(t *testing.T) {
	for _, topK := range []int{1, 2, -1} {
		opts := Options{TopK: topK}
		d := dataset.ItalyPower.Scaled(0.4).Generate(23)
		if err := d.NormalizeMinMax(); err != nil {
			t.Fatal(err)
		}
		prev, err := grouping.Build(d, grouping.Config{ST: 0.2, Lengths: []int{6, 10}, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		prevBase, err := New(d, prev, opts)
		if err != nil {
			t.Fatal(err)
		}
		oldLens := make([]int, d.N())
		for i, s := range d.Series {
			oldLens[i] = s.Len()
		}
		for i, n := range []int{9, 4} {
			src := d.Series[i].Values
			for j := 0; j < n; j++ {
				d.Series[i].AppendPoints(src[j%len(src)] * 0.8)
			}
		}
		gr, delta, err := grouping.AppendPoints(d, prev, oldLens, grouping.Config{ST: 0.2, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := New(d, gr, opts)
		if err != nil {
			t.Fatal(err)
		}
		refreshed, err := Refresh(d, gr, opts, prevBase, delta)
		if err != nil {
			t.Fatal(err)
		}
		for l, fe := range fresh.Entries {
			re := refreshed.Entries[l]
			if !reflect.DeepEqual(fe.TopK, re.TopK) {
				t.Errorf("TopK=%d length %d: neighbor lists differ", topK, l)
			}
			if !reflect.DeepEqual(fe.Sums, re.Sums) || !reflect.DeepEqual(fe.MedianOrder, re.MedianOrder) {
				t.Errorf("TopK=%d length %d: scan-order state differs", topK, l)
			}
			if fe.STHalf != re.STHalf || fe.STFinal != re.STFinal {
				t.Errorf("TopK=%d length %d: thresholds differ", topK, l)
			}
		}
	}
}

// FuzzSparseRefresh drives the sparse representation through arbitrary
// retention widths and ragged append streams: after every maintained step
// the refreshed base must be bit-identical to a fresh derivation at the
// same width, and its derived scan state must match the dense-equivalent
// layout (the exactness claim, fuzzed).
func FuzzSparseRefresh(f *testing.F) {
	f.Add(int64(1), int8(0), []byte{3, 0, 7})
	f.Add(int64(2), int8(1), []byte{1, 1, 1, 1})
	f.Add(int64(3), int8(-1), []byte{9, 250, 4})
	f.Add(int64(4), int8(5), []byte{})
	f.Add(int64(5), int8(127), []byte{128, 2, 64, 33})

	f.Fuzz(func(t *testing.T, seed int64, topK int8, ops []byte) {
		if len(ops) > 12 {
			ops = ops[:12]
		}
		opts := Options{TopK: int(topK)}
		r := rand.New(rand.NewSource(seed))
		d := ts.NewDataset("fz", nil)
		nSeries := 3 + int(seed%3+3)%3
		for s := 0; s < nSeries; s++ {
			v := make([]float64, 10+r.Intn(6))
			x := r.Float64()
			for j := range v {
				x += r.NormFloat64() * 0.3
				v[j] = x
			}
			d.Append("s", v)
		}
		lengths := []int{4, 7}
		cfg := grouping.Config{ST: 0.5, Lengths: lengths, Seed: seed}
		gr, err := grouping.Build(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		base, err := New(d, gr, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, op := range ops {
			oldLens := make([]int, d.N())
			for j, s := range d.Series {
				oldLens[j] = s.Len()
			}
			sid := int(op) % d.N()
			pts := make([]float64, 1+int(op)%4) // ragged batches
			x := r.Float64()
			for j := range pts {
				x += r.NormFloat64() * 0.2
				pts[j] = x
			}
			if err := d.AppendPoints(sid, pts); err != nil {
				t.Fatalf("op %d append: %v", i, err)
			}
			next, delta, err := grouping.AppendPoints(d, gr, oldLens, grouping.Config{ST: 0.5, Seed: seed})
			if err != nil {
				t.Fatalf("op %d grouping: %v", i, err)
			}
			refreshed, err := Refresh(d, next, opts, base, delta)
			if err != nil {
				t.Fatalf("op %d refresh: %v", i, err)
			}
			fresh, err := New(d, next, opts)
			if err != nil {
				t.Fatalf("op %d fresh: %v", i, err)
			}
			dense, err := New(d, next, Options{TopK: -1})
			if err != nil {
				t.Fatalf("op %d dense: %v", i, err)
			}
			for _, l := range lengths {
				fe, re, de := fresh.Entry(l), refreshed.Entry(l), dense.Entry(l)
				if !reflect.DeepEqual(fe.TopK, re.TopK) ||
					!reflect.DeepEqual(fe.Sums, re.Sums) ||
					!reflect.DeepEqual(fe.MedianOrder, re.MedianOrder) ||
					fe.STHalf != re.STHalf || fe.STFinal != re.STFinal {
					t.Fatalf("op %d length %d: refresh diverges from fresh derivation", i, l)
				}
				if !reflect.DeepEqual(fe.Sums, de.Sums) ||
					!reflect.DeepEqual(fe.MedianOrder, de.MedianOrder) ||
					fe.STHalf != de.STHalf || fe.STFinal != de.STFinal {
					t.Fatalf("op %d length %d: sparse derived state diverges from dense", i, l)
				}
				for k, nbs := range fe.TopK {
					for _, nb := range nbs {
						if math.IsNaN(nb.D) || nb.D < 0 || nb.To < 0 || nb.To >= len(fe.Groups) || nb.To == k {
							t.Fatalf("op %d length %d: malformed neighbor %+v in row %d", i, l, nb, k)
						}
					}
				}
			}
			gr, base = next, refreshed
		}
	})
}
