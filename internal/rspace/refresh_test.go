package rspace

import (
	"reflect"
	"testing"

	"onex/internal/dataset"
	"onex/internal/grouping"
	"onex/internal/ts"
)

// refreshFixture builds a base, grows the dataset (points on two series plus
// one whole new series) and returns everything needed to compare Refresh
// against a from-scratch New.
func refreshFixture(t *testing.T) (d *ts.Dataset, prevBase *Base, gr *grouping.Result, delta *grouping.Delta) {
	t.Helper()
	d = dataset.ItalyPower.Scaled(0.4).Generate(23)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	prev, err := grouping.Build(d, grouping.Config{ST: 0.2, Lengths: []int{6, 10}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	prevBase, err = New(d, prev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oldLens := make([]int, d.N())
	for i, s := range d.Series {
		oldLens[i] = s.Len()
	}
	for i, n := range []int{9, 4} {
		src := d.Series[i].Values
		for j := 0; j < n; j++ {
			d.Series[i].AppendPoints(src[j%len(src)] * 0.8)
		}
	}
	gr, delta, err = grouping.AppendPoints(d, prev, oldLens, grouping.Config{ST: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return d, prevBase, gr, delta
}

func TestRefreshMatchesNewBitForBit(t *testing.T) {
	d, prevBase, gr, delta := refreshFixture(t)
	fresh, err := New(d, gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	refreshed, err := Refresh(d, gr, Options{}, prevBase, delta)
	if err != nil {
		t.Fatal(err)
	}
	if len(refreshed.Entries) != len(fresh.Entries) {
		t.Fatalf("entry count %d vs %d", len(refreshed.Entries), len(fresh.Entries))
	}
	for l, fe := range fresh.Entries {
		re := refreshed.Entries[l]
		if re == nil {
			t.Fatalf("length %d missing from refreshed base", l)
		}
		if !reflect.DeepEqual(fe.TopK, re.TopK) {
			t.Errorf("length %d: TopK neighbor lists differ", l)
		}
		if !reflect.DeepEqual(fe.Sums, re.Sums) || !reflect.DeepEqual(fe.SumOrder, re.SumOrder) ||
			!reflect.DeepEqual(fe.MedianOrder, re.MedianOrder) {
			t.Errorf("length %d: sum orders differ", l)
		}
		if !reflect.DeepEqual(fe.Envelopes, re.Envelopes) {
			t.Errorf("length %d: envelopes differ", l)
		}
		if fe.STHalf != re.STHalf || fe.STFinal != re.STFinal {
			t.Errorf("length %d: thresholds (%v,%v) vs (%v,%v)", l, re.STHalf, re.STFinal, fe.STHalf, fe.STFinal)
		}
	}
	if refreshed.GlobalSTHalf != fresh.GlobalSTHalf || refreshed.GlobalSTFinal != fresh.GlobalSTFinal {
		t.Errorf("global thresholds differ: (%v,%v) vs (%v,%v)",
			refreshed.GlobalSTHalf, refreshed.GlobalSTFinal, fresh.GlobalSTHalf, fresh.GlobalSTFinal)
	}
	if refreshed.TotalSubseq != fresh.TotalSubseq {
		t.Errorf("TotalSubseq %d vs %d", refreshed.TotalSubseq, fresh.TotalSubseq)
	}
}

func TestRefreshFallsBackWithoutPrev(t *testing.T) {
	d, _, gr, delta := refreshFixture(t)
	b, err := Refresh(d, gr, Options{}, nil, delta)
	if err != nil || b == nil {
		t.Fatalf("nil prev fallback: %v", err)
	}
	fresh, err := New(d, gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b.Entries[6].TopK, fresh.Entries[6].TopK) {
		t.Error("fallback base differs from New")
	}
}
