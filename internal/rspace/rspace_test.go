package rspace

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"onex/internal/dataset"
	"onex/internal/dist"
	"onex/internal/grouping"
	"onex/internal/ts"
)

func buildBase(t *testing.T, st float64, lengths []int) *Base {
	t.Helper()
	d := dataset.ItalyPower.Scaled(0.5).Generate(4)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	gr, err := grouping.Build(d, grouping.Config{ST: st, Lengths: lengths, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(d, gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, Options{}); err == nil {
		t.Error("want error for nil inputs")
	}
}

func TestEntryLookup(t *testing.T) {
	b := buildBase(t, 0.2, []int{5, 9})
	if e := b.Entry(5); e == nil || e.Length != 5 {
		t.Error("Entry(5) missing")
	}
	if e := b.Entry(6); e != nil {
		t.Error("Entry(6) should be nil")
	}
}

// denseRows recomputes the full Dc matrix of an entry from its groups —
// the reference the sparse resident layout is checked against in tests.
func denseRows(e *LengthEntry) [][]float64 {
	g := len(e.Groups)
	invSqrtL := 1 / math.Sqrt(float64(e.Length))
	dc := make([][]float64, g)
	for k := range dc {
		dc[k] = make([]float64, g)
	}
	for k := 0; k < g; k++ {
		for l := k + 1; l < g; l++ {
			d := dist.ED(e.Groups[k].Rep, e.Groups[l].Rep) * invSqrtL
			dc[k][l] = d
			dc[l][k] = d
		}
	}
	return dc
}

func TestDcTopKProperties(t *testing.T) {
	b := buildBase(t, 0.2, []int{6})
	e := b.Entry(6)
	g := len(e.Groups)
	dc := denseRows(e)
	want := DefaultTopK
	if want > g-1 {
		want = g - 1
	}
	for k := 0; k < g; k++ {
		nbs := e.TopK[k]
		if len(nbs) != want {
			t.Fatalf("row %d: %d neighbors, want %d", k, len(nbs), want)
		}
		for i, nb := range nbs {
			if nb.To == k {
				t.Errorf("row %d keeps its own diagonal", k)
			}
			if nb.D <= 0 {
				t.Errorf("row %d neighbor %d: D = %v, want > 0 for distinct reps", k, nb.To, nb.D)
			}
			if nb.D != dc[k][nb.To] {
				t.Errorf("row %d neighbor %d: D = %v, dense says %v", k, nb.To, nb.D, dc[k][nb.To])
			}
			ref := dist.NormalizedED(e.Groups[k].Rep, e.Groups[nb.To].Rep)
			if math.Abs(nb.D-ref) > 1e-12 {
				t.Errorf("row %d neighbor %d: D = %v, want %v", k, nb.To, nb.D, ref)
			}
			if i > 0 {
				prev := nbs[i-1]
				if nb.D < prev.D || (nb.D == prev.D && nb.To < prev.To) {
					t.Errorf("row %d not sorted by (D, To) at %d", k, i)
				}
			}
		}
		// The retained entries really are the k smallest of the row: no
		// dropped peer may beat the worst kept one (ties resolve by index).
		if len(nbs) > 0 && len(nbs) < g-1 {
			kept := make(map[int]bool, len(nbs))
			for _, nb := range nbs {
				kept[nb.To] = true
			}
			worst := nbs[len(nbs)-1]
			for l := 0; l < g; l++ {
				if l == k || kept[l] {
					continue
				}
				if dc[k][l] < worst.D || (dc[k][l] == worst.D && l < worst.To) {
					t.Errorf("row %d dropped %d (d=%v) but kept %d (d=%v)", k, l, dc[k][l], worst.To, worst.D)
				}
			}
		}
	}
}

func TestDcAtSymmetricLookup(t *testing.T) {
	b := buildBase(t, 0.2, []int{6})
	e := b.Entry(6)
	g := len(e.Groups)
	dc := denseRows(e)
	hits := 0
	for k := 0; k < g; k++ {
		for l := 0; l < g; l++ {
			if l == k {
				continue
			}
			if d, ok := e.dcAt(k, l); ok {
				hits++
				if d != dc[k][l] {
					t.Errorf("dcAt(%d,%d) = %v, dense says %v", k, l, d, dc[k][l])
				}
				if d2, ok2 := e.dcAt(l, k); !ok2 || d2 != d {
					t.Errorf("dcAt(%d,%d) asymmetric: %v/%v vs %v", l, k, d2, ok2, d)
				}
			}
		}
	}
	if hits == 0 && g > 1 {
		t.Error("dcAt never hits despite retained neighbor lists")
	}
}

func TestDistinctRepsAreFartherThanST(t *testing.T) {
	// Construction guarantee: a subsequence farther than ST/2 from every
	// representative founds a new group, so by induction any two reps
	// *started* at distance > ST/2; with drift they may move, but typical
	// pairs remain separated — verify the median inter-rep distance exceeds
	// the grouping radius (sanity of the Dc scale).
	b := buildBase(t, 0.3, []int{8})
	e := b.Entry(8)
	if len(e.Groups) < 2 {
		t.Skip("need ≥2 groups")
	}
	dc := denseRows(e)
	var ds []float64
	for k := 0; k < len(e.Groups); k++ {
		for l := k + 1; l < len(e.Groups); l++ {
			ds = append(ds, dc[k][l])
		}
	}
	above := 0
	for _, d := range ds {
		if d > 0.15 { // ST/2
			above++
		}
	}
	if frac := float64(above) / float64(len(ds)); frac < 0.5 {
		t.Errorf("only %.0f%% of inter-rep distances exceed ST/2", frac*100)
	}
}

func TestSumOrderSorted(t *testing.T) {
	b := buildBase(t, 0.2, []int{7})
	e := b.Entry(7)
	if len(e.SumOrder) != len(e.Groups) {
		t.Fatalf("SumOrder length %d != groups %d", len(e.SumOrder), len(e.Groups))
	}
	seen := map[int]bool{}
	for i, k := range e.SumOrder {
		if seen[k] {
			t.Fatalf("SumOrder repeats %d", k)
		}
		seen[k] = true
		if i > 0 && e.Sums[e.SumOrder[i-1]] > e.Sums[k] {
			t.Fatalf("SumOrder not ascending at %d", i)
		}
	}
}

func TestMedianExpand(t *testing.T) {
	cases := []struct {
		in, want []int
	}{
		{nil, nil},
		{[]int{7}, []int{7}},
		{[]int{1, 2}, []int{2, 1}},
		{[]int{1, 2, 3}, []int{2, 1, 3}},
		{[]int{1, 2, 3, 4, 5}, []int{3, 2, 4, 1, 5}},
	}
	for _, c := range cases {
		got := medianExpand(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("medianExpand(%v) = %v, want %v", c.in, got, c.want)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("medianExpand(%v) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestMedianOrderPrecomputed(t *testing.T) {
	b := buildBase(t, 0.2, []int{7})
	e := b.Entry(7)
	if len(e.MedianOrder) != len(e.Groups) {
		t.Fatalf("MedianOrder length %d != groups %d", len(e.MedianOrder), len(e.Groups))
	}
	seen := map[int]bool{}
	for _, k := range e.MedianOrder {
		if seen[k] {
			t.Fatalf("MedianOrder repeats %d", k)
		}
		seen[k] = true
	}
	if len(e.Groups) > 0 && e.MedianOrder[0] != e.SumOrder[len(e.SumOrder)/2] {
		t.Error("MedianOrder does not start at the median-sum representative")
	}
}

func TestEnvelopesContainRep(t *testing.T) {
	b := buildBase(t, 0.2, []int{6})
	e := b.Entry(6)
	for k, grp := range e.Groups {
		env := e.Envelopes[k]
		if len(env.Upper) != grp.Length || len(env.Lower) != grp.Length {
			t.Fatalf("envelope %d wrong length", k)
		}
		for i := range grp.Rep {
			if env.Lower[i] > grp.Rep[i] || grp.Rep[i] > env.Upper[i] {
				t.Fatalf("envelope %d does not contain rep at %d", k, i)
			}
		}
	}
}

func TestFullRadiusEnvelopeAdmissibleForDTW(t *testing.T) {
	// LB_Keogh with the default full-radius envelopes must lower-bound the
	// unconstrained DTW used online (Sec. 5.3 cascade correctness).
	b := buildBase(t, 0.2, []int{10})
	e := b.Entry(10)
	q := b.Dataset.Series[0].Values[:10]
	var w dist.Workspace
	for k, grp := range e.Groups {
		lb := dist.LBKeogh(q, e.Envelopes[k].Upper, e.Envelopes[k].Lower, math.Inf(1))
		d := w.DTW(q, grp.Rep)
		if lb > d+1e-9 {
			t.Fatalf("group %d: LBKeogh %v > DTW %v", k, lb, d)
		}
	}
}

func TestMergeThresholds(t *testing.T) {
	// Hand-crafted Dc: 4 groups in a line at distances 1,2,4.
	// Kruskal order: (0,1)=1, (1,2)=2, (2,3)=4.
	// components: 4 →(1)→ 3 →(2)→ 2 →(4)→ 1.
	// halfTarget = 2 → STHalf = ST+2; STFinal = ST+4.
	dc := [][]float64{
		{0, 1, 3, 7},
		{1, 0, 2, 6},
		{3, 2, 0, 4},
		{7, 6, 4, 0},
	}
	half, final := mergeThresholds(len(dc), func(k, l int) float64 { return dc[k][l] }, 0.5)
	if math.Abs(half-2.5) > 1e-12 {
		t.Errorf("STHalf = %v, want 2.5", half)
	}
	if math.Abs(final-4.5) > 1e-12 {
		t.Errorf("STFinal = %v, want 4.5", final)
	}
}

func TestMergeThresholdsDegenerate(t *testing.T) {
	never := func(k, l int) float64 { panic("oracle must not be called") }
	if h, f := mergeThresholds(0, never, 0.3); h != 0.3 || f != 0.3 {
		t.Errorf("empty: %v,%v want 0.3,0.3", h, f)
	}
	if h, f := mergeThresholds(1, never, 0.3); h != 0.3 || f != 0.3 {
		t.Errorf("single group: %v,%v want 0.3,0.3", h, f)
	}
	// Two groups: half target is 1, reached by the single merge; both
	// thresholds coincide.
	dc := [][]float64{{0, 2}, {2, 0}}
	h, f := mergeThresholds(len(dc), func(k, l int) float64 { return dc[k][l] }, 0.1)
	if math.Abs(h-2.1) > 1e-12 || math.Abs(f-2.1) > 1e-12 {
		t.Errorf("two groups: %v,%v want 2.1,2.1", h, f)
	}
}

// TestMergeThresholdsMatchKruskal pins the Prim/MST-multiset implementation
// to the direct merge simulation the package used before the sparse layout:
// sort ALL g(g−1)/2 edges, union-find merge, record the edge weights at
// which the component count first reaches ⌈g/2⌉ and 1. Run over seeded
// random symmetric matrices, including heavy ties.
func TestMergeThresholdsMatchKruskal(t *testing.T) {
	kruskal := func(dc [][]float64, st float64) (float64, float64) {
		g := len(dc)
		if g <= 1 {
			return st, st
		}
		type edge struct {
			k, l int
			d    float64
		}
		var edges []edge
		for k := 0; k < g; k++ {
			for l := k + 1; l < g; l++ {
				edges = append(edges, edge{k, l, dc[k][l]})
			}
		}
		sort.Slice(edges, func(a, b int) bool { return edges[a].d < edges[b].d })
		parent := make([]int, g)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		components, halfTarget := g, (g+1)/2
		stHalf, stFinal := st, st
		haveHalf := false
		for _, ed := range edges {
			rk, rl := find(ed.k), find(ed.l)
			if rk == rl {
				continue
			}
			parent[rk] = rl
			components--
			if !haveHalf && components <= halfTarget {
				stHalf = st + ed.d
				haveHalf = true
			}
			if components == 1 {
				stFinal = st + ed.d
				break
			}
		}
		return stHalf, stFinal
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		g := 2 + rng.Intn(12)
		dc := make([][]float64, g)
		for k := range dc {
			dc[k] = make([]float64, g)
		}
		for k := 0; k < g; k++ {
			for l := k + 1; l < g; l++ {
				var d float64
				if rng.Intn(3) == 0 {
					d = float64(1 + rng.Intn(3)) // force tied weights
				} else {
					d = rng.Float64() * 10
				}
				dc[k][l], dc[l][k] = d, d
			}
		}
		wantH, wantF := kruskal(dc, 0.2)
		gotH, gotF := mergeThresholds(g, func(k, l int) float64 { return dc[k][l] }, 0.2)
		if gotH != wantH || gotF != wantF {
			t.Fatalf("trial %d (g=%d): got (%v,%v), kruskal (%v,%v)", trial, g, gotH, gotF, wantH, wantF)
		}
	}
}

func TestMergeThresholdsForMatchesBase(t *testing.T) {
	b := buildBase(t, 0.2, []int{6, 9})
	for _, l := range b.Lengths {
		e := b.Entry(l)
		half, final := MergeThresholdsFor(e.Groups, l, b.ST)
		if half != e.STHalf || final != e.STFinal {
			t.Errorf("length %d: MergeThresholdsFor (%v,%v) != entry (%v,%v)",
				l, half, final, e.STHalf, e.STFinal)
		}
	}
}

func TestSTHalfNeverExceedsSTFinal(t *testing.T) {
	b := buildBase(t, 0.2, nil)
	for _, l := range b.Lengths {
		e := b.Entry(l)
		if e.STHalf > e.STFinal {
			t.Errorf("length %d: STHalf %v > STFinal %v", l, e.STHalf, e.STFinal)
		}
		if e.STHalf < b.ST-1e-12 {
			t.Errorf("length %d: STHalf %v below build ST %v", l, e.STHalf, b.ST)
		}
	}
	if b.GlobalSTHalf > b.GlobalSTFinal {
		t.Errorf("global STHalf %v > STFinal %v", b.GlobalSTHalf, b.GlobalSTFinal)
	}
}

func TestGlobalThresholdsAreMaxima(t *testing.T) {
	b := buildBase(t, 0.2, []int{4, 8, 12})
	var wantHalf, wantFinal float64
	for _, l := range b.Lengths {
		e := b.Entry(l)
		wantHalf = math.Max(wantHalf, e.STHalf)
		wantFinal = math.Max(wantFinal, e.STFinal)
	}
	if b.GlobalSTHalf != wantHalf || b.GlobalSTFinal != wantFinal {
		t.Errorf("global = %v,%v want %v,%v", b.GlobalSTHalf, b.GlobalSTFinal, wantHalf, wantFinal)
	}
}

func TestDegreeAndRecommend(t *testing.T) {
	b := buildBase(t, 0.2, []int{6})
	if d := b.DegreeOf(0); d != Strict {
		t.Errorf("DegreeOf(0) = %v, want S", d)
	}
	if d := b.DegreeOf(b.GlobalSTFinal + 1); d != Loose {
		t.Errorf("DegreeOf(huge) = %v, want L", d)
	}
	lo, hi, err := b.Recommend(Strict, -1)
	if err != nil || lo != 0 || hi != b.GlobalSTHalf {
		t.Errorf("Recommend(S) = %v,%v,%v", lo, hi, err)
	}
	lo, hi, err = b.Recommend(Medium, 6)
	e := b.Entry(6)
	if err != nil || lo != e.STHalf || hi != e.STFinal {
		t.Errorf("Recommend(M,6) = %v,%v,%v", lo, hi, err)
	}
	lo, hi, err = b.Recommend(Loose, -1)
	if err != nil || lo != b.GlobalSTFinal || !math.IsInf(hi, 1) {
		t.Errorf("Recommend(L) = %v,%v,%v", lo, hi, err)
	}
	if _, _, err := b.Recommend(Strict, 999); err == nil {
		t.Error("Recommend on unindexed length should fail")
	}
	if _, _, err := b.Recommend(Degree(42), -1); err == nil {
		t.Error("Recommend with bogus degree should fail")
	}
}

func TestDegreeString(t *testing.T) {
	if Strict.String() != "S" || Medium.String() != "M" || Loose.String() != "L" || Degree(9).String() != "?" {
		t.Error("Degree.String mismatch")
	}
}

func TestSizeBytesPositiveAndMonotone(t *testing.T) {
	small := buildBase(t, 0.2, []int{5})
	big := buildBase(t, 0.2, []int{5, 6, 7, 8})
	if small.SizeBytes() <= 0 {
		t.Error("SizeBytes <= 0")
	}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Errorf("more lengths should grow the index: %d vs %d", big.SizeBytes(), small.SizeBytes())
	}
}

// TestSizeBytesTracksRepresentation walks the actual resident structures and
// asserts the accounting matches them exactly — in particular that the Dc
// term is the retained neighbor lists, not the old hard-coded g² matrix.
func TestSizeBytesTracksRepresentation(t *testing.T) {
	b := buildBase(t, 0.2, []int{5, 8})
	const word = 8
	var want int64
	for _, e := range b.Entries {
		g := int64(len(e.Groups))
		want += g * word     // group id vector
		want += g * word     // sums
		want += 2 * g * word // sum + median orders
		want += 2 * word     // thresholds
		for _, nbs := range e.TopK {
			want += int64(len(nbs)) * 2 * word
		}
		for k, grp := range e.Groups {
			want += int64(grp.Count()) * 3 * word
			want += int64(len(grp.Rep)) * word
			want += int64(len(e.Envelopes[k].Upper)+len(e.Envelopes[k].Lower)) * word
		}
	}
	if got := b.SizeBytes(); got != want {
		t.Errorf("SizeBytes = %d, representation walk says %d", got, want)
	}
}

// TestSizeBytesSubQuadratic pins the memory-diet claim: at a narrow TopK the
// Dc term must be O(g·k), so the per-entry index size minus the LSI terms
// must stay far below the dense g² float cost once g ≫ k.
func TestSizeBytesSubQuadratic(t *testing.T) {
	d := dataset.ItalyPower.Scaled(0.5).Generate(4)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	gr, err := grouping.Build(d, grouping.Config{ST: 0.05, Lengths: []int{6}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(d, gr, Options{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := b.Entry(6)
	g := len(e.Groups)
	if g < 8 {
		t.Skipf("want many groups, got %d", g)
	}
	var dcBytes int64
	for _, nbs := range e.TopK {
		dcBytes += int64(len(nbs)) * 16
	}
	if maxWant := int64(g) * 2 * 16; dcBytes > maxWant {
		t.Errorf("sparse Dc bytes %d exceed O(g·k) bound %d (g=%d)", dcBytes, maxWant, g)
	}
	if dense := int64(g) * int64(g) * 8; dcBytes >= dense {
		t.Errorf("sparse Dc bytes %d not below dense %d (g=%d)", dcBytes, dense, g)
	}
}

func TestTotalGroupsMatchesGrouping(t *testing.T) {
	d := dataset.ItalyPower.Scaled(0.3).Generate(4)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	gr, err := grouping.Build(d, grouping.Config{ST: 0.2, Lengths: []int{4, 6}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(d, gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalGroups() != gr.TotalGroups() {
		t.Errorf("TotalGroups %d != grouping %d", b.TotalGroups(), gr.TotalGroups())
	}
	if b.TotalSubseq != gr.TotalSubseq {
		t.Errorf("TotalSubseq %d != grouping %d", b.TotalSubseq, gr.TotalSubseq)
	}
}

func TestMemberValuesWindow(t *testing.T) {
	d := ts.NewDataset("t", [][]float64{{0, 1, 2, 3, 4}})
	gr, err := grouping.Build(d, grouping.Config{ST: 10, Lengths: []int{3}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(d, gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := b.Entry(3).Groups[0]
	for _, m := range g.Members {
		v := b.MemberValues(g, m)
		if len(v) != 3 || v[0] != float64(m.Start) {
			t.Errorf("MemberValues(%+v) = %v", m, v)
		}
	}
}
