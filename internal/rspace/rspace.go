// Package rspace materializes the ONEX base of Sec. 4: the Representative
// Space (Def. 9) wrapped in the paper's two index layers —
//
//   - the Global Time Index (GTI): per length, the group vector, the
//     pairwise Inter-Representative Distance matrix Dc (Def. 10), the
//     representatives sorted by their Dc row sums (the Sec. 5.3 median-sum
//     search order), and the SThalf/STfinal merge thresholds of the
//     Similarity Parameter Space (Sec. 4.2);
//   - the Local Sequence Index (LSI): per group, members sorted by ED to the
//     representative (built by grouping.finalize), the representative
//     vector, and its LB_Keogh envelope for pruning (Sec. 4.3).
package rspace

import (
	"errors"
	"math"
	"sort"

	"onex/internal/dist"
	"onex/internal/grouping"
	"onex/internal/ts"
)

// Base is the complete in-memory ONEX base for one dataset and one build
// threshold ST. It is immutable after New and safe for concurrent readers.
type Base struct {
	// Dataset is the (normalized) data the base was built over. Group
	// members reference windows of these series.
	Dataset *ts.Dataset
	// ST is the build similarity threshold in normalized-ED units.
	ST float64
	// Lengths lists the indexed subsequence lengths, ascending.
	Lengths []int
	// Entries holds the per-length GTI entry for each indexed length.
	Entries map[int]*LengthEntry
	// GlobalSTHalf and GlobalSTFinal are the dataset-wide critical
	// thresholds: the maxima of the per-length values (Fig. 1).
	GlobalSTHalf, GlobalSTFinal float64
	// TotalSubseq counts all indexed subsequences (Table 4).
	TotalSubseq int64
}

// LengthEntry is one GTI slot: everything the query processor needs for a
// specific subsequence length.
type LengthEntry struct {
	Length int
	// Groups are the ONEX similarity groups of this length; Groups[k].ID==k.
	Groups []*grouping.Group
	// Dc[k][l] is the Inter-Representative Distance (normalized ED) between
	// representatives k and l (Def. 10).
	Dc [][]float64
	// Sums[k] is ΣₗDc[k][l]; SumOrder lists group indices sorted ascending
	// by Sums — the array S_i(k, sum_k) of Sec. 4.3.
	Sums     []float64
	SumOrder []int
	// MedianOrder is SumOrder re-traversed from the median outward
	// (median, median−1, median+1, …) — the Sec. 5.3 representative visit
	// order, precomputed since it is static per entry.
	MedianOrder []int
	// STHalf and STFinal are this length's local critical thresholds: the
	// smallest ST′ at which half of (respectively all) groups have merged.
	STHalf, STFinal float64
	// Envelopes[k] is the LB_Keogh envelope around representative k.
	Envelopes []Envelope
}

// Envelope is an LB_Keogh upper/lower envelope pair around a representative.
type Envelope struct {
	Upper, Lower []float64
}

// Options configures base materialization.
type Options struct {
	// EnvelopeRadius returns the LB_Keogh radius for a given length.
	// nil means full radius (admissible for the paper's unconstrained DTW).
	EnvelopeRadius func(length int) int
}

// New wraps a grouping result with the GTI/LSI index layers.
func New(d *ts.Dataset, gr *grouping.Result, opts Options) (*Base, error) {
	if d == nil || gr == nil {
		return nil, errors.New("rspace: nil dataset or grouping result")
	}
	radius := opts.EnvelopeRadius
	if radius == nil {
		radius = func(length int) int { return length }
	}
	b := &Base{
		Dataset:     d,
		ST:          gr.ST,
		Lengths:     append([]int(nil), gr.Lengths...),
		Entries:     make(map[int]*LengthEntry, len(gr.Lengths)),
		TotalSubseq: gr.TotalSubseq,
	}
	for _, l := range gr.Lengths {
		entry := newLengthEntry(gr.ByLength[l], gr.ST, radius(l))
		b.Entries[l] = entry
		if entry.STHalf > b.GlobalSTHalf {
			b.GlobalSTHalf = entry.STHalf
		}
		if entry.STFinal > b.GlobalSTFinal {
			b.GlobalSTFinal = entry.STFinal
		}
	}
	return b, nil
}

// Refresh wraps an incrementally-maintained grouping result, reusing the
// previous Base's per-length index work for everything the maintenance step
// did not touch: Dc entries between two unchanged groups and the envelopes
// of unchanged representatives are carried over, so only rows/columns
// involving touched or new groups pay distance computations. The result is
// bit-identical to New(d, gr, opts) — Refresh is purely a cost optimization.
// prev must have been built with the same Options; a nil prev or delta falls
// back to New.
func Refresh(d *ts.Dataset, gr *grouping.Result, opts Options, prev *Base, delta *grouping.Delta) (*Base, error) {
	if prev == nil || delta == nil {
		return New(d, gr, opts)
	}
	if d == nil || gr == nil {
		return nil, errors.New("rspace: nil dataset or grouping result")
	}
	radius := opts.EnvelopeRadius
	if radius == nil {
		radius = func(length int) int { return length }
	}
	b := &Base{
		Dataset:     d,
		ST:          gr.ST,
		Lengths:     append([]int(nil), gr.Lengths...),
		Entries:     make(map[int]*LengthEntry, len(gr.Lengths)),
		TotalSubseq: gr.TotalSubseq,
	}
	for _, l := range gr.Lengths {
		var entry *LengthEntry
		prevEntry := prev.Entries[l]
		prevGroups, known := delta.PrevGroups[l]
		if prevEntry == nil || !known {
			entry = newLengthEntry(gr.ByLength[l], gr.ST, radius(l))
		} else {
			entry = refreshLengthEntry(gr.ByLength[l], gr.ST, radius(l),
				prevEntry, prevGroups, delta.Touched[l])
		}
		b.Entries[l] = entry
		if entry.STHalf > b.GlobalSTHalf {
			b.GlobalSTHalf = entry.STHalf
		}
		if entry.STFinal > b.GlobalSTFinal {
			b.GlobalSTFinal = entry.STFinal
		}
	}
	return b, nil
}

func newLengthEntry(lg *grouping.LengthGroups, st float64, envRadius int) *LengthEntry {
	g := len(lg.Groups)
	e := &LengthEntry{
		Length:    lg.Length,
		Groups:    lg.Groups,
		Dc:        make([][]float64, g),
		Sums:      make([]float64, g),
		SumOrder:  make([]int, g),
		Envelopes: make([]Envelope, g),
	}
	invSqrtL := 1 / math.Sqrt(float64(lg.Length))
	for k := range e.Dc {
		e.Dc[k] = make([]float64, g)
	}
	for k := 0; k < g; k++ {
		for l := k + 1; l < g; l++ {
			d := dist.ED(lg.Groups[k].Rep, lg.Groups[l].Rep) * invSqrtL
			e.Dc[k][l] = d
			e.Dc[l][k] = d
		}
	}
	for k, grp := range lg.Groups {
		u, l := dist.Envelope(grp.Rep, envRadius, nil, nil)
		e.Envelopes[k] = Envelope{Upper: u, Lower: l}
	}
	finishEntry(e, st)
	return e
}

// refreshLengthEntry derives one length's entry from its previous
// incarnation after an incremental maintenance step: Dc values between two
// unchanged groups are copied (they were computed from byte-identical
// representatives), envelopes of unchanged groups are reused, and distance
// computations run only for pairs involving a touched or new group — an
// O(changed·g·L + g²) refresh instead of newLengthEntry's O(g²·L).
func refreshLengthEntry(lg *grouping.LengthGroups, st float64, envRadius int,
	prev *LengthEntry, prevGroups int, touched []int) *LengthEntry {

	g := len(lg.Groups)
	dirty := make([]bool, g)
	for k := prevGroups; k < g; k++ {
		dirty[k] = true // new group
	}
	for _, k := range touched {
		dirty[k] = true // representative moved
	}
	e := &LengthEntry{
		Length:    lg.Length,
		Groups:    lg.Groups,
		Dc:        make([][]float64, g),
		Sums:      make([]float64, g),
		SumOrder:  make([]int, g),
		Envelopes: make([]Envelope, g),
	}
	invSqrtL := 1 / math.Sqrt(float64(lg.Length))
	for k := range e.Dc {
		e.Dc[k] = make([]float64, g)
	}
	for k := 0; k < g; k++ {
		for l := k + 1; l < g; l++ {
			var d float64
			if !dirty[k] && !dirty[l] {
				d = prev.Dc[k][l]
			} else {
				d = dist.ED(lg.Groups[k].Rep, lg.Groups[l].Rep) * invSqrtL
			}
			e.Dc[k][l] = d
			e.Dc[l][k] = d
		}
	}
	for k, grp := range lg.Groups {
		if !dirty[k] {
			// The previous envelope was computed from this exact (immutable)
			// representative; sharing the slices is safe.
			e.Envelopes[k] = prev.Envelopes[k]
			continue
		}
		u, l := dist.Envelope(grp.Rep, envRadius, nil, nil)
		e.Envelopes[k] = Envelope{Upper: u, Lower: l}
	}
	finishEntry(e, st)
	return e
}

// finishEntry derives the Dc-dependent state shared by the full and
// incremental builders: row sums, the sum-sorted and median-expanded visit
// orders, and the SP-Space merge thresholds.
func finishEntry(e *LengthEntry, st float64) {
	g := len(e.Groups)
	for k := 0; k < g; k++ {
		var sum float64
		for l := 0; l < g; l++ {
			sum += e.Dc[k][l]
		}
		e.Sums[k] = sum
		e.SumOrder[k] = k
	}
	sort.Slice(e.SumOrder, func(a, b int) bool {
		return e.Sums[e.SumOrder[a]] < e.Sums[e.SumOrder[b]]
	})
	e.MedianOrder = medianExpand(e.SumOrder)
	e.STHalf, e.STFinal = mergeThresholds(e.Dc, st)
}

// medianExpand reorders sum-sorted indices to start at the median and
// alternate left/right (Sec. 5.3's median-representative strategy).
func medianExpand(sumOrder []int) []int {
	n := len(sumOrder)
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	mid := n / 2
	out = append(out, sumOrder[mid])
	for step := 1; len(out) < n; step++ {
		if l := mid - step; l >= 0 {
			out = append(out, sumOrder[l])
		}
		if r := mid + step; r < n {
			out = append(out, sumOrder[r])
		}
	}
	return out
}

// mergeThresholds simulates the Sec. 4.2 merge process: groups k and l merge
// once ST′ ≥ ST + Dc(k,l). Processing edges in increasing Dc order with a
// union-find gives the exact ST′ at which the number of surviving groups
// first reaches ⌈g/2⌉ (STHalf) and 1 (STFinal) — these are minimum-spanning-
// tree edge weights plus ST.
func mergeThresholds(dc [][]float64, st float64) (stHalf, stFinal float64) {
	g := len(dc)
	if g <= 1 {
		return st, st
	}
	type edge struct {
		k, l int
		d    float64
	}
	edges := make([]edge, 0, g*(g-1)/2)
	for k := 0; k < g; k++ {
		for l := k + 1; l < g; l++ {
			edges = append(edges, edge{k, l, dc[k][l]})
		}
	}
	sort.Slice(edges, func(a, b int) bool { return edges[a].d < edges[b].d })

	parent := make([]int, g)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	components := g
	halfTarget := (g + 1) / 2
	stHalf, stFinal = st, st
	haveHalf := g <= 1
	for _, ed := range edges {
		rk, rl := find(ed.k), find(ed.l)
		if rk == rl {
			continue
		}
		parent[rk] = rl
		components--
		if !haveHalf && components <= halfTarget {
			stHalf = st + ed.d
			haveHalf = true
		}
		if components == 1 {
			stFinal = st + ed.d
			break
		}
	}
	if !haveHalf {
		stHalf = stFinal
	}
	return stHalf, stFinal
}

// Entry returns the GTI entry for a length, or nil if the length is not
// indexed — the constant-time getgroups(L) of Algorithm 2.
func (b *Base) Entry(length int) *LengthEntry {
	return b.Entries[length]
}

// TotalGroups returns the total representative count across lengths
// (Fig. 6 / Table 4).
func (b *Base) TotalGroups() int {
	total := 0
	for _, e := range b.Entries {
		total += len(e.Groups)
	}
	return total
}

// SizeBytes estimates the resident size of the index structures, mirroring
// the paper's Table 4 accounting: GTI (group identifier vector, Dc matrix,
// sum array, thresholds) plus LSI (member identifiers with their EDs,
// representative vectors, envelopes).
func (b *Base) SizeBytes() int64 {
	const (
		intSize   = 8
		floatSize = 8
	)
	var total int64
	for _, e := range b.Entries {
		g := int64(len(e.Groups))
		total += g * intSize               // group identifier vector
		total += g * g * floatSize         // Dc matrix
		total += g * (intSize + floatSize) // sum-sorted S_i array
		total += 2 * floatSize             // STHalf, STFinal
		for k, grp := range e.Groups {
			total += int64(grp.Count()) * (2*intSize + floatSize) // member ids + ED
			total += int64(len(grp.Rep)) * floatSize              // representative
			total += int64(len(e.Envelopes[k].Upper)+len(e.Envelopes[k].Lower)) * floatSize
		}
	}
	return total
}

// MemberValues returns the raw window of member m of group g.
func (b *Base) MemberValues(g *grouping.Group, m grouping.Member) []float64 {
	return b.Dataset.Series[m.SeriesIdx].Values[m.Start : m.Start+g.Length]
}

// Degree labels a similarity threshold per the Sec. 4.2 scale:
// Strict below GlobalSTHalf, Medium between the two critical values,
// Loose at or above GlobalSTFinal.
type Degree int

// Similarity degrees (Sec. 4.2).
const (
	Strict Degree = iota
	Medium
	Loose
)

// String implements fmt.Stringer with the paper's S/M/L letters.
func (d Degree) String() string {
	switch d {
	case Strict:
		return "S"
	case Medium:
		return "M"
	case Loose:
		return "L"
	default:
		return "?"
	}
}

// DegreeOf classifies a threshold against the base's global critical values.
func (b *Base) DegreeOf(st float64) Degree {
	switch {
	case st < b.GlobalSTHalf:
		return Strict
	case st < b.GlobalSTFinal:
		return Medium
	default:
		return Loose
	}
}

// Recommend returns the threshold range for a similarity degree (query
// class III, Sec. 5.1). length < 0 uses the global critical values;
// otherwise the length-local ones. The upper bound of Loose is reported as
// +Inf since any larger threshold behaves identically.
func (b *Base) Recommend(d Degree, length int) (lo, hi float64, err error) {
	half, final := b.GlobalSTHalf, b.GlobalSTFinal
	if length >= 0 {
		e := b.Entry(length)
		if e == nil {
			return 0, 0, errors.New("rspace: length not indexed")
		}
		half, final = e.STHalf, e.STFinal
	}
	switch d {
	case Strict:
		return 0, half, nil
	case Medium:
		return half, final, nil
	case Loose:
		return final, math.Inf(1), nil
	default:
		return 0, 0, errors.New("rspace: unknown similarity degree")
	}
}
