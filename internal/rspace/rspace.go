// Package rspace materializes the ONEX base of Sec. 4: the Representative
// Space (Def. 9) wrapped in the paper's two index layers —
//
//   - the Global Time Index (GTI): per length, the group vector, a sparse
//     top-k view of the pairwise Inter-Representative Distance matrix Dc
//     (Def. 10) — each representative's k nearest peers plus its full Dc
//     row sum — the representatives sorted by those row sums (the Sec. 5.3
//     median-sum search order), and the SThalf/STfinal merge thresholds of
//     the Similarity Parameter Space (Sec. 4.2);
//   - the Local Sequence Index (LSI): per group, members sorted by ED to the
//     representative (built by grouping.finalize), the representative
//     vector, and its LB_Keogh envelope for pruning (Sec. 4.3).
//
// # Index memory: the sparse Dc layout and why it is exact
//
// The paper's Table 4 charges O(g²) floats per length for the dense Dc
// matrix, and that term dominates GTI memory at loose thresholds (many
// groups). This package no longer keeps the dense matrix resident. Instead
// each LengthEntry stores, per representative, the TopK nearest other
// representatives (Neighbor lists, ascending by distance, deterministic
// index tie-break) and the exact full row sum — O(g·k) instead of O(g²).
//
// This is NOT an approximation, because no query-time consumer reads
// arbitrary Dc cells:
//
//   - the representative scan (query.scanReps / scanRepFixed) walks
//     MedianOrder, which is derived from the row sums alone;
//   - group mining and k-NN verification (mineGroup / verifyGroupK) walk
//     the per-group ED-sorted member lists and envelopes, never Dc;
//   - the SP-Space guidance surface reads the precomputed STHalf/STFinal.
//
// The dense matrix is therefore only a build-time intermediate. New and
// Refresh materialize it transiently (one O(g²) scratch buffer, released
// before the entry is published), derive the exact sums, visit orders and
// merge thresholds from it, keep the k smallest entries per row, and drop
// the rest. Every derived quantity is bit-identical for every TopK setting
// — the knob (Options.TopK, default DefaultTopK) only trades resident
// memory against how much ED reuse a later incremental Refresh gets: a pair
// absent from both representatives' retained lists must be recomputed. The
// root-level sparse-vs-dense equivalence suite pins the bit-identity claim
// across parallelism and shard layouts.
package rspace

import (
	"errors"
	"math"
	"sort"

	"onex/internal/dist"
	"onex/internal/grouping"
	"onex/internal/ts"
)

// Base is the complete in-memory ONEX base for one dataset and one build
// threshold ST. It is immutable after New and safe for concurrent readers.
type Base struct {
	// Dataset is the (normalized) data the base was built over. Group
	// members reference windows of these series.
	Dataset *ts.Dataset
	// ST is the build similarity threshold in normalized-ED units.
	ST float64
	// Lengths lists the indexed subsequence lengths, ascending.
	Lengths []int
	// Entries holds the per-length GTI entry for each indexed length.
	Entries map[int]*LengthEntry
	// GlobalSTHalf and GlobalSTFinal are the dataset-wide critical
	// thresholds: the maxima of the per-length values (Fig. 1).
	GlobalSTHalf, GlobalSTFinal float64
	// TotalSubseq counts all indexed subsequences (Table 4).
	TotalSubseq int64
	// TopK records the Options.TopK the base was built with, so derived
	// bases (threshold adaptation) inherit the same retention policy.
	TopK int
}

// Neighbor is one retained cell of a representative's Dc row: the peer
// group's index within the same LengthEntry and the Inter-Representative
// Distance to it (normalized ED, Def. 10).
type Neighbor struct {
	To int
	D  float64
}

// LengthEntry is one GTI slot: everything the query processor needs for a
// specific subsequence length.
type LengthEntry struct {
	Length int
	// Groups are the ONEX similarity groups of this length; Groups[k].ID==k.
	Groups []*grouping.Group
	// TopK[k] lists representative k's nearest peers by Dc (Def. 10),
	// ascending by distance with ties broken by peer index — the sparse
	// resident view of the Dc matrix (min(TopK option, g−1) entries per
	// row; see the package docs for the exactness argument).
	TopK [][]Neighbor
	// Sums[k] is the exact ΣₗDc[k][l] over the FULL row (not just the
	// retained neighbors); SumOrder lists group indices sorted ascending by
	// Sums — the array S_i(k, sum_k) of Sec. 4.3.
	Sums     []float64
	SumOrder []int
	// MedianOrder is SumOrder re-traversed from the median outward
	// (median, median−1, median+1, …) — the Sec. 5.3 representative visit
	// order, precomputed since it is static per entry.
	MedianOrder []int
	// STHalf and STFinal are this length's local critical thresholds: the
	// smallest ST′ at which half of (respectively all) groups have merged.
	STHalf, STFinal float64
	// Envelopes[k] is the LB_Keogh envelope around representative k.
	Envelopes []Envelope
}

// Envelope is an LB_Keogh upper/lower envelope pair around a representative.
type Envelope struct {
	Upper, Lower []float64
}

// DefaultTopK is the Dc neighbor-list width used when Options.TopK is 0.
// Entries with g ≤ DefaultTopK+1 groups retain their full rows (so small
// bases are byte-for-byte the dense layout), while large entries shrink
// from O(g²) to O(g·k); 32 also keeps incremental Refresh's ED reuse full
// for the common small-g lengths.
const DefaultTopK = 32

// Options configures base materialization.
type Options struct {
	// EnvelopeRadius returns the LB_Keogh radius for a given length.
	// nil means full radius (admissible for the paper's unconstrained DTW).
	EnvelopeRadius func(length int) int
	// TopK bounds how many nearest Dc entries each representative retains
	// (per row). 0 selects DefaultTopK; negative retains every neighbor
	// (the dense-equivalent layout). Query answers are bit-identical at
	// every setting — see the package docs — so this is purely a resident-
	// memory / refresh-reuse knob.
	TopK int
}

// retain resolves the Options.TopK knob against a row of g groups.
func retain(topK, g int) int {
	if topK == 0 {
		topK = DefaultTopK
	}
	if topK < 0 || topK > g-1 {
		topK = g - 1
	}
	if topK < 0 {
		topK = 0
	}
	return topK
}

// New wraps a grouping result with the GTI/LSI index layers.
func New(d *ts.Dataset, gr *grouping.Result, opts Options) (*Base, error) {
	if d == nil || gr == nil {
		return nil, errors.New("rspace: nil dataset or grouping result")
	}
	radius := opts.EnvelopeRadius
	if radius == nil {
		radius = func(length int) int { return length }
	}
	b := &Base{
		Dataset:     d,
		ST:          gr.ST,
		Lengths:     append([]int(nil), gr.Lengths...),
		Entries:     make(map[int]*LengthEntry, len(gr.Lengths)),
		TotalSubseq: gr.TotalSubseq,
		TopK:        opts.TopK,
	}
	for _, l := range gr.Lengths {
		entry := newLengthEntry(gr.ByLength[l], gr.ST, radius(l), opts.TopK)
		b.Entries[l] = entry
		if entry.STHalf > b.GlobalSTHalf {
			b.GlobalSTHalf = entry.STHalf
		}
		if entry.STFinal > b.GlobalSTFinal {
			b.GlobalSTFinal = entry.STFinal
		}
	}
	return b, nil
}

// Refresh wraps an incrementally-maintained grouping result, reusing the
// previous Base's per-length index work for everything the maintenance step
// did not touch: a Dc value between two unchanged groups is copied whenever
// either group's retained neighbor list still holds it (they were computed
// from byte-identical representatives), and the envelopes of unchanged
// representatives are carried over wholesale. Pairs the sparse lists
// dropped — and every pair involving a touched or new group — recompute.
// The result is bit-identical to New(d, gr, opts): recomputing an ED
// between immutable representatives reproduces the exact bits reuse would
// have copied, so Refresh is purely a cost optimization and the TopK knob
// only changes how much of it is realized. prev must have been built with
// the same Options; a nil prev or delta falls back to New.
func Refresh(d *ts.Dataset, gr *grouping.Result, opts Options, prev *Base, delta *grouping.Delta) (*Base, error) {
	if prev == nil || delta == nil {
		return New(d, gr, opts)
	}
	if d == nil || gr == nil {
		return nil, errors.New("rspace: nil dataset or grouping result")
	}
	radius := opts.EnvelopeRadius
	if radius == nil {
		radius = func(length int) int { return length }
	}
	b := &Base{
		Dataset:     d,
		ST:          gr.ST,
		Lengths:     append([]int(nil), gr.Lengths...),
		Entries:     make(map[int]*LengthEntry, len(gr.Lengths)),
		TotalSubseq: gr.TotalSubseq,
		TopK:        opts.TopK,
	}
	for _, l := range gr.Lengths {
		var entry *LengthEntry
		prevEntry := prev.Entries[l]
		prevGroups, known := delta.PrevGroups[l]
		if prevEntry == nil || !known {
			entry = newLengthEntry(gr.ByLength[l], gr.ST, radius(l), opts.TopK)
		} else {
			entry = refreshLengthEntry(gr.ByLength[l], gr.ST, radius(l), opts.TopK,
				prevEntry, prevGroups, delta.Touched[l])
		}
		b.Entries[l] = entry
		if entry.STHalf > b.GlobalSTHalf {
			b.GlobalSTHalf = entry.STHalf
		}
		if entry.STFinal > b.GlobalSTFinal {
			b.GlobalSTFinal = entry.STFinal
		}
	}
	return b, nil
}

// denseDc is the transient build-time Dc matrix: a flat row-major g×g
// symmetric buffer that exists only inside newLengthEntry /
// refreshLengthEntry and is garbage the moment finishEntry returns. Keeping
// it flat (one allocation) also makes the O(g²) scratch cheap to allocate
// and release per length.
type denseDc struct {
	g int
	v []float64
}

func newDenseDc(g int) denseDc {
	return denseDc{g: g, v: make([]float64, g*g)}
}

func (m denseDc) at(k, l int) float64 { return m.v[k*m.g+l] }

func (m denseDc) set(k, l int, d float64) {
	m.v[k*m.g+l] = d
	m.v[l*m.g+k] = d
}

func newLengthEntry(lg *grouping.LengthGroups, st float64, envRadius, topK int) *LengthEntry {
	g := len(lg.Groups)
	e := &LengthEntry{
		Length:    lg.Length,
		Groups:    lg.Groups,
		Sums:      make([]float64, g),
		SumOrder:  make([]int, g),
		Envelopes: make([]Envelope, g),
	}
	invSqrtL := 1 / math.Sqrt(float64(lg.Length))
	dc := newDenseDc(g)
	for k := 0; k < g; k++ {
		for l := k + 1; l < g; l++ {
			dc.set(k, l, dist.ED(lg.Groups[k].Rep, lg.Groups[l].Rep)*invSqrtL)
		}
	}
	for k, grp := range lg.Groups {
		u, l := dist.Envelope(grp.Rep, envRadius, nil, nil)
		e.Envelopes[k] = Envelope{Upper: u, Lower: l}
	}
	finishEntry(e, st, dc, topK)
	return e
}

// dcAt looks a Dc cell up in the sparse resident layout: k's retained
// neighbor list, then l's (the symmetric value was stored from the same
// float, so either hit returns identical bits). The second return reports
// whether the pair survived the top-k cut.
func (e *LengthEntry) dcAt(k, l int) (float64, bool) {
	for _, nb := range e.TopK[k] {
		if nb.To == l {
			return nb.D, true
		}
	}
	for _, nb := range e.TopK[l] {
		if nb.To == k {
			return nb.D, true
		}
	}
	return 0, false
}

// refreshLengthEntry derives one length's entry from its previous
// incarnation after an incremental maintenance step: Dc values between two
// unchanged groups are copied when either group's retained neighbor list
// still holds them, envelopes of unchanged groups are reused, and distance
// computations run for pairs involving a touched or new group plus the
// clean pairs the sparse layout dropped. With full retention (TopK < 0, or
// g−1 ≤ k) this is the classic O(changed·g·L + g²) refresh; narrower lists
// trade some of that reuse for resident memory, never exactness.
func refreshLengthEntry(lg *grouping.LengthGroups, st float64, envRadius, topK int,
	prev *LengthEntry, prevGroups int, touched []int) *LengthEntry {

	g := len(lg.Groups)
	dirty := make([]bool, g)
	for k := prevGroups; k < g; k++ {
		dirty[k] = true // new group
	}
	for _, k := range touched {
		dirty[k] = true // representative moved
	}
	e := &LengthEntry{
		Length:    lg.Length,
		Groups:    lg.Groups,
		Sums:      make([]float64, g),
		SumOrder:  make([]int, g),
		Envelopes: make([]Envelope, g),
	}
	invSqrtL := 1 / math.Sqrt(float64(lg.Length))
	dc := newDenseDc(g)
	for k := 0; k < g; k++ {
		for l := k + 1; l < g; l++ {
			var d float64
			ok := false
			if !dirty[k] && !dirty[l] && k < prevGroups && l < prevGroups {
				d, ok = prev.dcAt(k, l)
			}
			if !ok {
				d = dist.ED(lg.Groups[k].Rep, lg.Groups[l].Rep) * invSqrtL
			}
			dc.set(k, l, d)
		}
	}
	for k, grp := range lg.Groups {
		if !dirty[k] {
			// The previous envelope was computed from this exact (immutable)
			// representative; sharing the slices is safe.
			e.Envelopes[k] = prev.Envelopes[k]
			continue
		}
		u, l := dist.Envelope(grp.Rep, envRadius, nil, nil)
		e.Envelopes[k] = Envelope{Upper: u, Lower: l}
	}
	finishEntry(e, st, dc, topK)
	return e
}

// finishEntry derives the Dc-dependent state shared by the full and
// incremental builders from the transient dense matrix: exact row sums, the
// sum-sorted and median-expanded visit orders, the SP-Space merge
// thresholds, and the retained top-k neighbor lists. After it returns the
// dense buffer is unreferenced.
func finishEntry(e *LengthEntry, st float64, dc denseDc, topK int) {
	g := len(e.Groups)
	for k := 0; k < g; k++ {
		var sum float64
		for l := 0; l < g; l++ {
			sum += dc.at(k, l)
		}
		e.Sums[k] = sum
		e.SumOrder[k] = k
	}
	sort.Slice(e.SumOrder, func(a, b int) bool {
		return e.Sums[e.SumOrder[a]] < e.Sums[e.SumOrder[b]]
	})
	e.MedianOrder = medianExpand(e.SumOrder)
	e.STHalf, e.STFinal = mergeThresholds(g, dc.at, st)

	keep := retain(topK, g)
	e.TopK = make([][]Neighbor, g)
	if keep == 0 {
		return
	}
	order := make([]int, 0, g-1)
	for k := 0; k < g; k++ {
		order = order[:0]
		for l := 0; l < g; l++ {
			if l != k {
				order = append(order, l)
			}
		}
		row := k * g
		sort.Slice(order, func(a, b int) bool {
			da, db := dc.v[row+order[a]], dc.v[row+order[b]]
			if da != db {
				return da < db
			}
			return order[a] < order[b]
		})
		list := make([]Neighbor, keep)
		for i := 0; i < keep; i++ {
			list[i] = Neighbor{To: order[i], D: dc.v[row+order[i]]}
		}
		e.TopK[k] = list
	}
}

// medianExpand reorders sum-sorted indices to start at the median and
// alternate left/right (Sec. 5.3's median-representative strategy).
func medianExpand(sumOrder []int) []int {
	n := len(sumOrder)
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	mid := n / 2
	out = append(out, sumOrder[mid])
	for step := 1; len(out) < n; step++ {
		if l := mid - step; l >= 0 {
			out = append(out, sumOrder[l])
		}
		if r := mid + step; r < n {
			out = append(out, sumOrder[r])
		}
	}
	return out
}

// mergeThresholds simulates the Sec. 4.2 merge process: groups k and l merge
// once ST′ ≥ ST + Dc(k,l). The critical values are minimum-spanning-tree
// edge weights plus ST: processing MST edges in increasing weight order, the
// number of surviving groups first reaches ⌈g/2⌉ (STHalf) after g−⌈g/2⌉
// merges and 1 (STFinal) at the heaviest MST edge. Prim's algorithm over
// the at(k,l) oracle needs O(g) working memory and at most g²/2 oracle
// calls — and since every MST of a graph has the same edge-weight multiset,
// the result is independent of tie-breaking and of whether the oracle is a
// dense matrix or on-demand distance evaluation (MergeThresholdsFor).
func mergeThresholds(g int, at func(k, l int) float64, st float64) (stHalf, stFinal float64) {
	if g <= 1 {
		return st, st
	}
	w := mstWeights(g, at)
	sort.Float64s(w)
	halfTarget := (g + 1) / 2
	stHalf = st + w[g-halfTarget-1]
	stFinal = st + w[len(w)-1]
	return stHalf, stFinal
}

// mstWeights returns the g−1 minimum-spanning-tree edge weights of the
// complete graph over vertices 0..g−1 with edge weights at(k,l), via Prim's
// algorithm (O(g²) oracle calls, O(g) memory).
func mstWeights(g int, at func(k, l int) float64) []float64 {
	inTree := make([]bool, g)
	best := make([]float64, g)
	for i := range best {
		best[i] = math.Inf(1)
	}
	best[0] = 0
	weights := make([]float64, 0, g-1)
	for it := 0; it < g; it++ {
		u := -1
		for v := 0; v < g; v++ {
			if !inTree[v] && (u < 0 || best[v] < best[u]) {
				u = v
			}
		}
		inTree[u] = true
		if it > 0 {
			weights = append(weights, best[u])
		}
		for v := 0; v < g; v++ {
			if !inTree[v] {
				if d := at(u, v); d < best[v] {
					best[v] = d
				}
			}
		}
	}
	return weights
}

// MergeThresholdsFor computes one length's SP-Space critical values directly
// from a group slice, evaluating Inter-Representative Distances on demand —
// O(g) working memory, no materialized matrix. The distances use the exact
// expression the index builders use, so the result is bit-identical to the
// STHalf/STFinal a Base built over the same groups would report. The
// sharded engine uses this to serve the GLOBAL grouping's guidance surface
// without ever holding the global O(g²) matrix.
func MergeThresholdsFor(groups []*grouping.Group, length int, st float64) (stHalf, stFinal float64) {
	g := len(groups)
	if g <= 1 {
		return st, st
	}
	invSqrtL := 1 / math.Sqrt(float64(length))
	return mergeThresholds(g, func(k, l int) float64 {
		return dist.ED(groups[k].Rep, groups[l].Rep) * invSqrtL
	}, st)
}

// Entry returns the GTI entry for a length, or nil if the length is not
// indexed — the constant-time getgroups(L) of Algorithm 2.
func (b *Base) Entry(length int) *LengthEntry {
	return b.Entries[length]
}

// TotalGroups returns the total representative count across lengths
// (Fig. 6 / Table 4).
func (b *Base) TotalGroups() int {
	total := 0
	for _, e := range b.Entries {
		total += len(e.Groups)
	}
	return total
}

// SizeBytes estimates the resident size of the index structures, mirroring
// the paper's Table 4 accounting with the sparse Dc layout: GTI (group
// identifier vector, retained neighbor lists, row sums, visit orders,
// thresholds) plus LSI (member identifiers with their EDs, representative
// vectors, envelopes). The neighbor lists are counted at their actual
// lengths — O(g·k), no longer the dense g² term.
func (b *Base) SizeBytes() int64 {
	const (
		intSize   = 8
		floatSize = 8
	)
	var total int64
	for _, e := range b.Entries {
		g := int64(len(e.Groups))
		total += g * intSize // group identifier vector
		for _, nbs := range e.TopK {
			total += int64(len(nbs)) * (intSize + floatSize) // sparse Dc rows
		}
		total += g * floatSize   // row sums
		total += 2 * g * intSize // sum-sorted + median-expanded visit orders
		total += 2 * floatSize   // STHalf, STFinal
		for k, grp := range e.Groups {
			total += int64(grp.Count()) * (2*intSize + floatSize) // member ids + ED
			total += int64(len(grp.Rep)) * floatSize              // representative
			total += int64(len(e.Envelopes[k].Upper)+len(e.Envelopes[k].Lower)) * floatSize
		}
	}
	return total
}

// MemberValues returns the raw window of member m of group g.
func (b *Base) MemberValues(g *grouping.Group, m grouping.Member) []float64 {
	return b.Dataset.Series[m.SeriesIdx].Values[m.Start : m.Start+g.Length]
}

// Degree labels a similarity threshold per the Sec. 4.2 scale:
// Strict below GlobalSTHalf, Medium between the two critical values,
// Loose at or above GlobalSTFinal.
type Degree int

// Similarity degrees (Sec. 4.2).
const (
	Strict Degree = iota
	Medium
	Loose
)

// String implements fmt.Stringer with the paper's S/M/L letters.
func (d Degree) String() string {
	switch d {
	case Strict:
		return "S"
	case Medium:
		return "M"
	case Loose:
		return "L"
	default:
		return "?"
	}
}

// DegreeOf classifies a threshold against the base's global critical values.
func (b *Base) DegreeOf(st float64) Degree {
	switch {
	case st < b.GlobalSTHalf:
		return Strict
	case st < b.GlobalSTFinal:
		return Medium
	default:
		return Loose
	}
}

// Recommend returns the threshold range for a similarity degree (query
// class III, Sec. 5.1). length < 0 uses the global critical values;
// otherwise the length-local ones. The upper bound of Loose is reported as
// +Inf since any larger threshold behaves identically.
func (b *Base) Recommend(d Degree, length int) (lo, hi float64, err error) {
	half, final := b.GlobalSTHalf, b.GlobalSTFinal
	if length >= 0 {
		e := b.Entry(length)
		if e == nil {
			return 0, 0, errors.New("rspace: length not indexed")
		}
		half, final = e.STHalf, e.STFinal
	}
	switch d {
	case Strict:
		return 0, half, nil
	case Medium:
		return half, final, nil
	case Loose:
		return final, math.Inf(1), nil
	default:
		return 0, 0, errors.New("rspace: unknown similarity degree")
	}
}
