package dataset

import (
	"strings"
	"testing"
)

// FuzzLoadUCR asserts the parser never panics and never returns a
// structurally invalid dataset, whatever bytes arrive. The seed corpus runs
// as part of the normal test suite; `go test -fuzz=FuzzLoadUCR` explores
// further.
func FuzzLoadUCR(f *testing.F) {
	seeds := []string{
		"",
		"1,2,3",
		"1\t2\t3\n2\t4\t5",
		"1.0000000e+00, 0.5, -0.5",
		"label,notanumber",
		"1,2,3\n\n\n2,4",
		"1," + strings.Repeat("9,", 500) + "9",
		"\x00\x01\x02",
		"1,Inf\n",
		"1,NaN\n",
		strings.Repeat("1,2\n", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		d, err := LoadUCR("fuzz", strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if d.N() == 0 {
			t.Fatal("LoadUCR returned an empty dataset without error")
		}
		for _, s := range d.Series {
			if s.Len() == 0 {
				t.Fatal("LoadUCR produced an empty series without error")
			}
		}
	})
}
