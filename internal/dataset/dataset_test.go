package dataset

import (
	"math"
	"strings"
	"testing"

	"onex/internal/dist"
	"onex/internal/ts"
)

func TestPaperSpecShapesMatchTable4(t *testing.T) {
	// The paper's Table 4 subsequence counts pin down each dataset's N and
	// series length (DESIGN.md §4); verify our specs regenerate those counts.
	cases := []struct {
		spec Spec
		want int64
	}{
		{ItalyPower, 18492 * 67 / 67}, // 67·24·23/2 = 18492
		{Face, 4768400},               // 560·131·130/2
		{Wafer, 11476000},             // 1000·152·151/2
		{Symbols, 78607985},           // 995·398·397/2
	}
	for _, c := range cases {
		t.Run(c.spec.Name, func(t *testing.T) {
			d := c.spec.Generate(1)
			if got := d.SubseqCount(nil); got != c.want {
				t.Errorf("SubseqCount = %d, want %d", got, c.want)
			}
		})
	}
}

func TestGenerateShapesAndDeterminism(t *testing.T) {
	for _, sp := range PaperSpecs {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			small := sp.Scaled(0.02)
			d1 := small.Generate(42)
			d2 := small.Generate(42)
			if d1.N() != small.N {
				t.Fatalf("N = %d, want %d", d1.N(), small.N)
			}
			for i, s := range d1.Series {
				if s.Len() != sp.Length {
					t.Fatalf("series %d length = %d, want %d", i, s.Len(), sp.Length)
				}
				for j, v := range s.Values {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("series %d has non-finite value at %d", i, j)
					}
					if v != d2.Series[i].Values[j] {
						t.Fatalf("generation not deterministic at series %d idx %d", i, j)
					}
				}
			}
			if err := d1.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
		})
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a := ItalyPower.Generate(1)
	b := ItalyPower.Generate(2)
	same := true
	for i := range a.Series[0].Values {
		if a.Series[0].Values[i] != b.Series[0].Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical first series")
	}
}

// Intra-class series must be closer to each other than to other classes on
// average — the property that makes grouping meaningful (DESIGN.md §4).
func TestClassStructureIsClusterable(t *testing.T) {
	for _, sp := range []Spec{ItalyPower, ECG, Wafer, TwoPattern} {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			small := sp
			small.N = 40
			d := small.Generate(7)
			var intra, inter float64
			var nIntra, nInter int
			for i := 0; i < d.N(); i++ {
				for j := i + 1; j < d.N(); j++ {
					dd := dist.DTW(d.Series[i].Values, d.Series[j].Values)
					if d.Series[i].Label == d.Series[j].Label {
						intra += dd
						nIntra++
					} else {
						inter += dd
						nInter++
					}
				}
			}
			if nIntra == 0 || nInter == 0 {
				t.Skip("degenerate class split")
			}
			intra /= float64(nIntra)
			inter /= float64(nInter)
			if intra >= inter {
				t.Errorf("mean intra-class DTW %v >= inter-class %v", intra, inter)
			}
		})
	}
}

func TestScaled(t *testing.T) {
	s := Wafer.Scaled(0.1)
	if s.N != 100 {
		t.Errorf("Scaled(0.1).N = %d, want 100", s.N)
	}
	if s.Length != Wafer.Length {
		t.Errorf("Scaled changed Length to %d", s.Length)
	}
	if tiny := Wafer.Scaled(0.000001); tiny.N != 8 {
		t.Errorf("Scaled floor = %d, want 8", tiny.N)
	}
	if over := Wafer.Scaled(5); over.N != Wafer.N {
		t.Errorf("Scaled(5).N = %d, want %d", over.N, Wafer.N)
	}
}

func TestByName(t *testing.T) {
	sp, ok := ByName("ECG")
	if !ok || sp.Name != "ECG" {
		t.Errorf("ByName(ECG) = %v,%v", sp.Name, ok)
	}
	sl, ok := ByName("StarLightCurves")
	if !ok || sl.N != 9236 || sl.Length != 1024 {
		t.Errorf("ByName(StarLightCurves) = %dx%d,%v", sl.N, sl.Length, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
	if len(Names()) != 7 {
		t.Errorf("Names() = %v, want 7 entries", Names())
	}
}

func TestStarLightClasses(t *testing.T) {
	sp := StarLight(9, 64)
	d := sp.Generate(3)
	if d.N() != 9 {
		t.Fatalf("N = %d", d.N())
	}
	labels := map[string]bool{}
	for _, s := range d.Series {
		labels[s.Label] = true
	}
	if len(labels) != 3 {
		t.Errorf("classes seen = %d, want 3", len(labels))
	}
}

func TestRandomWalk(t *testing.T) {
	d := RandomWalk("stocks", 5, 50).Generate(11)
	if d.N() != 5 || d.Series[0].Len() != 50 {
		t.Fatalf("shape %dx%d", d.N(), d.Series[0].Len())
	}
	// A random walk must actually move.
	s := d.Series[0].Values
	if s[0] == s[len(s)-1] {
		t.Error("random walk did not move")
	}
}

func TestLoadUCR(t *testing.T) {
	const input = `1,0.5,1.5,2.5
2.0000000e+00,3,4,5

1	6	7	8`
	d, err := LoadUCR("toy", strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 3 {
		t.Fatalf("N = %d, want 3", d.N())
	}
	if d.Series[0].Label != "1" || d.Series[1].Label != "2" || d.Series[2].Label != "1" {
		t.Errorf("labels = %q,%q,%q", d.Series[0].Label, d.Series[1].Label, d.Series[2].Label)
	}
	if got := d.Series[1].Values[2]; got != 5 {
		t.Errorf("series 1 value[2] = %v, want 5", got)
	}
	if got := d.Series[2].Values[0]; got != 6 {
		t.Errorf("tab-separated value = %v, want 6", got)
	}
}

func TestLoadUCRErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"label only", "1"},
		{"bad value", "1,abc"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := LoadUCR("bad", strings.NewReader(c.in)); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestGeneratedDatasetNormalizes(t *testing.T) {
	d := ECG.Scaled(0.05).Generate(1)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	min, max := d.MinMax()
	if min < 0 || max > 1 {
		t.Errorf("normalized range [%v,%v] outside [0,1]", min, max)
	}
	var _ *ts.Dataset = d
}
