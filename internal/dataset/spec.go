// Package dataset supplies the evaluation data substrate. The paper runs on
// UCR Time Series Archive datasets, which cannot be redistributed here, so
// this package provides (a) a loader for the UCR file format for users who
// have the archive, and (b) synthetic generators that reproduce each paper
// dataset's exact N×length shape and class structure (noisy variations
// around a small set of class templates — the same structure that makes the
// UCR classification sets clusterable). DESIGN.md §4 documents why this
// substitution preserves the experiments' behaviour.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"onex/internal/ts"
)

// Generator produces one raw series of the given length for the given class,
// using r for all randomness so datasets are reproducible from a seed.
type Generator func(r *rand.Rand, class, length int) []float64

// Spec describes a synthetic dataset family: its shape (N series of Length
// points, paper Table 4), its class count, and its waveform generator.
type Spec struct {
	Name    string
	N       int
	Length  int
	Classes int
	Gen     Generator
}

// Generate materializes the dataset with deterministic randomness, cycling
// classes so every class has ⌈N/Classes⌉ or ⌊N/Classes⌋ members. Values are
// raw; callers normalize (the paper min-max normalizes per dataset).
func (sp Spec) Generate(seed int64) *ts.Dataset {
	r := rand.New(rand.NewSource(seed))
	d := &ts.Dataset{Name: sp.Name}
	for i := 0; i < sp.N; i++ {
		class := i % sp.Classes
		d.Append(fmt.Sprintf("%d", class), sp.Gen(r, class, sp.Length))
	}
	return d
}

// Scaled returns a copy of the spec with N reduced to max(minN, N·frac).
// Length is never scaled: per-length structure (group counts, envelope
// behaviour) is what the experiments exercise, so only cardinality shrinks.
func (sp Spec) Scaled(frac float64) Spec {
	const minN = 8
	n := int(float64(sp.N) * frac)
	if n < minN {
		n = minN
	}
	if n > sp.N {
		n = sp.N
	}
	out := sp
	out.N = n
	return out
}

// The six paper datasets (Table 4 shapes; see DESIGN.md §4 for the
// derivation of each N×Length from the paper's subsequence counts).
var (
	// ItalyPower mirrors ItalyPowerDemand: 67 daily electricity-demand
	// curves of 24 hourly readings, two seasonal classes.
	ItalyPower = Spec{Name: "ItalyPower", N: 67, Length: 24, Classes: 2, Gen: genItalyPower}

	// ECG mirrors ECG200: 200 heartbeats of 96 samples, normal vs abnormal.
	ECG = Spec{Name: "ECG", N: 200, Length: 96, Classes: 2, Gen: genECG}

	// Face mirrors FaceAll: 560 head-profile contours of 131 points,
	// 14 subject classes.
	Face = Spec{Name: "Face", N: 560, Length: 131, Classes: 14, Gen: genFace}

	// Wafer mirrors Wafer: 1000 semiconductor process traces of 152 points,
	// normal vs abnormal.
	Wafer = Spec{Name: "Wafer", N: 1000, Length: 152, Classes: 2, Gen: genWafer}

	// Symbols mirrors Symbols: 995 pen trajectories of 398 points, 6 glyphs.
	Symbols = Spec{Name: "Symbols", N: 995, Length: 398, Classes: 6, Gen: genSymbols}

	// TwoPattern mirrors TwoPatterns: 4000 series of 128 points with the
	// classic four up/down pattern-pair classes.
	TwoPattern = Spec{Name: "TwoPattern", N: 4000, Length: 128, Classes: 4, Gen: genTwoPattern}
)

// PaperSpecs lists the six datasets of Figs. 2, 4–8 and Tables 1–4 in the
// paper's presentation order.
var PaperSpecs = []Spec{ItalyPower, ECG, Face, Wafer, Symbols, TwoPattern}

// StarLight returns the scalability dataset of Fig. 3: StarLightCurves-like
// folded light curves. The paper subsets it to n series of length 100; the
// full archive shape is 9236×1024.
func StarLight(n, length int) Spec {
	return Spec{Name: "StarLightCurves", N: n, Length: length, Classes: 3, Gen: genStarLight}
}

// RandomWalk returns a random-walk dataset, the standard stand-in for stock
// price histories in the finance examples.
func RandomWalk(name string, n, length int) Spec {
	return Spec{Name: name, N: n, Length: length, Classes: 1, Gen: genRandomWalk}
}

// ByName looks up a paper spec (or StarLightCurves at full shape) by name.
func ByName(name string) (Spec, bool) {
	for _, sp := range PaperSpecs {
		if sp.Name == name {
			return sp, true
		}
	}
	if name == "StarLightCurves" {
		return StarLight(9236, 1024), true
	}
	return Spec{}, false
}

// Names returns the registered spec names, sorted.
func Names() []string {
	out := make([]string, 0, len(PaperSpecs)+1)
	for _, sp := range PaperSpecs {
		out = append(out, sp.Name)
	}
	out = append(out, "StarLightCurves")
	sort.Strings(out)
	return out
}
