package dataset

import (
	"math"
	"math/rand"
)

// gaussianBump adds amplitude·exp(−(i−center)²/(2·width²)) to x.
func gaussianBump(x []float64, center, width, amplitude float64) {
	inv := 1 / (2 * width * width)
	for i := range x {
		d := float64(i) - center
		x[i] += amplitude * math.Exp(-d*d*inv)
	}
}

// addNoise adds iid Gaussian noise with the given standard deviation.
func addNoise(r *rand.Rand, x []float64, sd float64) {
	for i := range x {
		x[i] += r.NormFloat64() * sd
	}
}

// genItalyPower builds a daily electricity-demand curve: a morning and an
// evening consumption peak over a nightly baseline. Class 0 ("winter") has a
// pronounced evening peak; class 1 ("summer") is flatter with a midday
// cooling bump — matching the two-season structure of ItalyPowerDemand.
func genItalyPower(r *rand.Rand, class, length int) []float64 {
	x := make([]float64, length)
	scale := float64(length) / 24 // generator is phrased in "hours"
	base := 0.8 + 0.1*r.NormFloat64()
	for i := range x {
		x[i] = base
	}
	jitter := func(sd float64) float64 { return r.NormFloat64() * sd }
	if class == 0 {
		gaussianBump(x, (8+jitter(0.5))*scale, 1.5*scale, 0.9+0.1*jitter(1))
		gaussianBump(x, (19+jitter(0.5))*scale, 2*scale, 1.4+0.1*jitter(1))
	} else {
		gaussianBump(x, (9+jitter(0.5))*scale, 2*scale, 0.7+0.1*jitter(1))
		gaussianBump(x, (14+jitter(0.7))*scale, 2.5*scale, 0.9+0.1*jitter(1))
		gaussianBump(x, (20+jitter(0.5))*scale, 2*scale, 0.8+0.1*jitter(1))
	}
	addNoise(r, x, 0.05)
	return x
}

// genECG builds one PQRST heartbeat: P wave, sharp QRS complex, T wave.
// Class 1 (abnormal) inverts the T wave and shifts the QRS, the kind of
// morphological anomaly ECG200 separates.
func genECG(r *rand.Rand, class, length int) []float64 {
	x := make([]float64, length)
	n := float64(length)
	shift := r.NormFloat64() * 0.01 * n
	qrsCenter := 0.45*n + shift
	if class == 1 {
		qrsCenter += 0.06 * n
	}
	// P wave.
	gaussianBump(x, 0.25*n+shift, 0.03*n, 0.25+0.05*r.NormFloat64())
	// QRS: Q dip, R spike, S dip.
	gaussianBump(x, qrsCenter-0.04*n, 0.012*n, -0.3+0.05*r.NormFloat64())
	gaussianBump(x, qrsCenter, 0.012*n, 2.2+0.2*r.NormFloat64())
	gaussianBump(x, qrsCenter+0.04*n, 0.015*n, -0.55+0.05*r.NormFloat64())
	// T wave, inverted for the abnormal class.
	tAmp := 0.5 + 0.08*r.NormFloat64()
	if class == 1 {
		tAmp = -tAmp
	}
	gaussianBump(x, 0.72*n+shift, 0.05*n, tAmp)
	addNoise(r, x, 0.03)
	return x
}

// genFace builds a smooth head-profile contour: a class-specific arrangement
// of forehead/nose/mouth/chin bumps along the outline, as in FaceAll.
func genFace(r *rand.Rand, class, length int) []float64 {
	x := make([]float64, length)
	n := float64(length)
	// Class-specific but deterministic feature layout: derive feature
	// positions from the class index, then perturb per series.
	cls := rand.New(rand.NewSource(int64(class)*7919 + 13))
	nFeatures := 3 + cls.Intn(3)
	for f := 0; f < nFeatures; f++ {
		center := (0.1 + 0.8*cls.Float64()) * n
		width := (0.04 + 0.06*cls.Float64()) * n
		amp := 0.5 + cls.Float64()
		if cls.Intn(2) == 0 {
			amp = -amp
		}
		// Per-series perturbation.
		center += r.NormFloat64() * 0.01 * n
		amp *= 1 + 0.1*r.NormFloat64()
		gaussianBump(x, center, width, amp)
	}
	// Slow baseline drift common to face contours.
	phase := 2 * math.Pi * cls.Float64()
	for i := range x {
		x[i] += 0.3 * math.Sin(2*math.Pi*float64(i)/n+phase)
	}
	addNoise(r, x, 0.04)
	return x
}

// genWafer builds a semiconductor process-control trace: flat plateaus
// joined by ramps, with a process spike. The abnormal class (1) has a
// mid-run excursion, as in the Wafer dataset.
func genWafer(r *rand.Rand, class, length int) []float64 {
	x := make([]float64, length)
	n := float64(length)
	levels := []float64{0.2, 1.0, 0.6, 1.2, 0.3}
	edges := []float64{0, 0.15, 0.4, 0.6, 0.85, 1}
	for i := range x {
		pos := float64(i) / n
		seg := 0
		for s := 0; s < len(levels); s++ {
			if pos >= edges[s] && pos < edges[s+1] {
				seg = s
				break
			}
		}
		x[i] = levels[seg]
	}
	// Ramp smoothing: 3-point moving average applied twice.
	for pass := 0; pass < 2; pass++ {
		prev := x[0]
		for i := 1; i < len(x)-1; i++ {
			cur := x[i]
			x[i] = (prev + cur + x[i+1]) / 3
			prev = cur
		}
	}
	// Startup spike.
	gaussianBump(x, 0.05*n, 0.01*n, 0.8+0.1*r.NormFloat64())
	if class == 1 {
		// Fault excursion at a random mid-run position.
		gaussianBump(x, (0.45+0.15*r.Float64())*n, 0.03*n, -0.9+0.1*r.NormFloat64())
	}
	addNoise(r, x, 0.02)
	return x
}

// genSymbols builds a smooth pen-trajectory channel: a low-frequency
// harmonic mixture whose frequencies and phases are glyph(class)-specific.
func genSymbols(r *rand.Rand, class, length int) []float64 {
	x := make([]float64, length)
	n := float64(length)
	cls := rand.New(rand.NewSource(int64(class)*104729 + 7))
	nHarm := 3
	freqs := make([]float64, nHarm)
	phases := make([]float64, nHarm)
	amps := make([]float64, nHarm)
	for h := 0; h < nHarm; h++ {
		freqs[h] = 1 + 3*cls.Float64()
		phases[h] = 2 * math.Pi * cls.Float64()
		amps[h] = 1 / float64(h+1)
	}
	pshift := r.NormFloat64() * 0.15
	ascale := 1 + 0.1*r.NormFloat64()
	for i := range x {
		pos := float64(i) / n
		var v float64
		for h := 0; h < nHarm; h++ {
			v += amps[h] * math.Sin(2*math.Pi*freqs[h]*pos+phases[h]+pshift)
		}
		x[i] = ascale * v
	}
	addNoise(r, x, 0.03)
	return x
}

// genTwoPattern builds the classic TwoPatterns construction: two transient
// patterns — each either upward (low→high) or downward (high→low) — placed
// at random non-overlapping positions over a noise background. The class
// index encodes the pair: 0=UU, 1=UD, 2=DU, 3=DD.
func genTwoPattern(r *rand.Rand, class, length int) []float64 {
	x := make([]float64, length)
	addNoise(r, x, 0.1)
	pattern := func(start int, up bool) {
		width := length / 8
		if width < 2 {
			width = 2
		}
		lo, hi := -1.0, 1.0
		if !up {
			lo, hi = 1.0, -1.0
		}
		for i := 0; i < width && start+i < length; i++ {
			half := width / 2
			if i < half {
				x[start+i] += lo
			} else {
				x[start+i] += hi
			}
		}
	}
	width := length / 8
	firstMax := length/2 - width
	if firstMax < 1 {
		firstMax = 1
	}
	secondMin := length / 2
	secondMax := length - width - 1
	if secondMax < secondMin {
		secondMax = secondMin
	}
	p1 := r.Intn(firstMax)
	p2 := secondMin + r.Intn(secondMax-secondMin+1)
	pattern(p1, class&2 == 0)
	pattern(p2, class&1 == 0)
	return x
}

// genStarLight builds a folded stellar light curve. Three archive classes:
// eclipsing binary (two sharp dips), Cepheid-like sawtooth pulsator, and an
// RR-Lyrae-like asymmetric pulsator.
func genStarLight(r *rand.Rand, class, length int) []float64 {
	x := make([]float64, length)
	n := float64(length)
	phase := r.Float64() * 0.05
	switch class {
	case 0: // eclipsing binary: baseline with primary and secondary eclipses
		for i := range x {
			x[i] = 1
		}
		gaussianBump(x, (0.25+phase)*n, 0.03*n, -0.8+0.05*r.NormFloat64())
		gaussianBump(x, (0.75+phase)*n, 0.03*n, -0.35+0.05*r.NormFloat64())
	case 1: // Cepheid: fast rise, slow decline (sawtooth + harmonic)
		for i := range x {
			pos := math.Mod(float64(i)/n+phase, 1)
			x[i] = 1 - pos + 0.2*math.Sin(4*math.Pi*pos)
		}
	default: // RR Lyrae-like: asymmetric sinusoid mixture
		for i := range x {
			pos := float64(i)/n + phase
			x[i] = math.Sin(2*math.Pi*pos) + 0.4*math.Sin(6*math.Pi*pos+1.3)
		}
	}
	addNoise(r, x, 0.04)
	return x
}

// genRandomWalk builds a unit-step random walk (stock-price stand-in).
func genRandomWalk(r *rand.Rand, _, length int) []float64 {
	x := make([]float64, length)
	v := 0.0
	for i := range x {
		v += r.NormFloat64()
		x[i] = v
	}
	return x
}
