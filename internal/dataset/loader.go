package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"onex/internal/ts"
)

// LoadUCR reads a dataset in the UCR Time Series Archive text format: one
// series per line, fields separated by commas, tabs, or spaces, with the
// first field being the integer class label. Rows may have different
// lengths (variable-length archives); blank lines are skipped.
func LoadUCR(name string, r io.Reader) (*ts.Dataset, error) {
	d := &ts.Dataset{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := splitUCRFields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("dataset: line %d has %d fields, need label plus at least one value", lineNo, len(fields))
		}
		label := fields[0]
		// UCR labels are integers, often formatted as floats ("1.0000000e+00").
		if f, err := strconv.ParseFloat(label, 64); err == nil {
			label = strconv.Itoa(int(f))
		}
		values := make([]float64, 0, len(fields)-1)
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d field %d: %w", lineNo, i+2, err)
			}
			values = append(values, v)
		}
		d.Append(label, values)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading %s: %w", name, err)
	}
	if d.N() == 0 {
		return nil, fmt.Errorf("dataset: %s contains no series", name)
	}
	return d, nil
}

// LoadUCRFile opens path and parses it with LoadUCR, deriving the dataset
// name from the file name.
func LoadUCRFile(path string) (*ts.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		name = path[i+1:]
	}
	if i := strings.IndexByte(name, '.'); i > 0 {
		name = name[:i]
	}
	return LoadUCR(name, f)
}

func splitUCRFields(line string) []string {
	if strings.ContainsRune(line, ',') {
		parts := strings.Split(line, ",")
		out := parts[:0]
		for _, p := range parts {
			if p = strings.TrimSpace(p); p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	return strings.Fields(line)
}
