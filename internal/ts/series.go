// Package ts provides the time-series substrate for ONEX: series and dataset
// types, zero-copy subsequence views, and the normalization schemes used by
// the paper (dataset-level min-max scaling, Sec. 6.1) and by the Trillion
// baseline (per-window z-normalization).
//
// Conventions follow the paper's Definition 1: a subsequence (Xp)^i_j is the
// run of length i starting at 0-based position j of series Xp. All values are
// float64; series inside a Dataset may have different lengths.
package ts

import (
	"errors"
	"fmt"
	"math"
)

// Series is a single time series: an ordered sequence of real values with an
// identifier unique within its Dataset and an optional class label (UCR
// datasets carry one; synthetic generators use it to record the template).
type Series struct {
	// ID is the index of the series within its dataset.
	ID int
	// Label is an optional class label (e.g. the UCR class column).
	Label string
	// Values holds the observations in time order.
	Values []float64
}

// Len returns the number of observations in the series.
func (s *Series) Len() int { return len(s.Values) }

// AppendPoints grows the series in time: the observations are appended after
// the existing ones, always onto a freshly-owned backing array — never in
// place — so growing a series can never write through an array shared with
// another dataset (see Dataset.CloneShared). Existing Subseq views stay
// valid (their windows are unchanged); the new windows a grown series
// exposes are enumerated with NewWindowStarts.
func (s *Series) AppendPoints(points ...float64) {
	owned := make([]float64, 0, len(s.Values)+len(points))
	s.Values = append(append(owned, s.Values...), points...)
}

// NewWindowStarts returns the half-open start range [lo, hi) of the
// length-sized subsequence windows that exist now but did not when the series
// was oldLen points long — exactly the windows overlapping the appended
// suffix. lo == hi when growing past oldLen created no new window of this
// length (series still shorter than length).
func (s *Series) NewWindowStarts(oldLen, length int) (lo, hi int) {
	if length <= 0 || oldLen < 0 {
		panic(fmt.Sprintf("ts: invalid window derivation (oldLen=%d, length=%d)", oldLen, length))
	}
	lo = oldLen - length + 1
	if lo < 0 {
		lo = 0
	}
	hi = len(s.Values) - length + 1
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Sub returns the subsequence view (s)^length_start. It panics if the range
// is out of bounds, mirroring slice semantics; callers that work with
// untrusted indices should validate with CheckRange first.
func (s *Series) Sub(start, length int) Subseq {
	if start < 0 || length <= 0 || start+length > len(s.Values) {
		panic(fmt.Sprintf("ts: subsequence [%d:%d+%d) out of range for series %d of length %d",
			start, start, length, s.ID, len(s.Values)))
	}
	return Subseq{Series: s, Start: start, Length: length}
}

// CheckRange reports whether [start, start+length) is a valid subsequence
// range for the series.
func (s *Series) CheckRange(start, length int) bool {
	return start >= 0 && length > 0 && start+length <= len(s.Values)
}

// Subseq is a zero-copy view of a contiguous run of a parent series. The
// ONEX base stores millions of these, so the representation is deliberately
// three words plus a pointer: no value data is duplicated.
type Subseq struct {
	Series *Series
	Start  int
	Length int
}

// Values returns the underlying data window. The slice aliases the parent
// series; callers must not mutate it.
func (ss Subseq) Values() []float64 {
	return ss.Series.Values[ss.Start : ss.Start+ss.Length]
}

// End returns the exclusive end position of the view in the parent series.
func (ss Subseq) End() int { return ss.Start + ss.Length }

// String implements fmt.Stringer using the paper's (Xp)^i_j notation.
func (ss Subseq) String() string {
	return fmt.Sprintf("(X%d)^%d_%d", ss.Series.ID, ss.Length, ss.Start)
}

// Dataset is a collection of series, optionally normalized. The zero value
// is an empty dataset ready to use.
type Dataset struct {
	// Name identifies the dataset in reports (e.g. "ItalyPower").
	Name string
	// Series holds the member series; Series[i].ID == i is maintained by
	// NewDataset and Append.
	Series []*Series
}

// NewDataset builds a dataset from raw value rows, assigning IDs by position.
func NewDataset(name string, rows [][]float64) *Dataset {
	d := &Dataset{Name: name, Series: make([]*Series, 0, len(rows))}
	for _, row := range rows {
		d.Append("", row)
	}
	return d
}

// Append adds a series, assigning the next ID, and returns it.
func (d *Dataset) Append(label string, values []float64) *Series {
	s := &Series{ID: len(d.Series), Label: label, Values: values}
	d.Series = append(d.Series, s)
	return s
}

// N returns the number of series in the dataset.
func (d *Dataset) N() int { return len(d.Series) }

// AppendPoints grows an existing series of the dataset in time, validating
// the target and the points (streaming ingestion rejects non-finite values at
// the boundary instead of corrupting the index). Like Series.AppendPoints it
// always reallocates onto an owned array, so it is safe on CloneShared
// clones whatever the shared array's spare capacity.
func (d *Dataset) AppendPoints(seriesID int, points []float64) error {
	if seriesID < 0 || seriesID >= len(d.Series) {
		return fmt.Errorf("ts: series %d out of range [0,%d)", seriesID, len(d.Series))
	}
	if len(points) == 0 {
		return errors.New("ts: no points to append")
	}
	if i := CheckFinite(points); i >= 0 {
		return fmt.Errorf("ts: non-finite appended value %v at index %d", points[i], i)
	}
	d.Series[seriesID].AppendPoints(points...)
	return nil
}

// CheckFinite returns the index of the first NaN or ±Inf in values, or -1
// when every value is finite — the shared ingestion-boundary check.
func CheckFinite(values []float64) int {
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return i
		}
	}
	return -1
}

// MaxLen returns the length of the longest series (0 for an empty dataset).
func (d *Dataset) MaxLen() int {
	m := 0
	for _, s := range d.Series {
		if s.Len() > m {
			m = s.Len()
		}
	}
	return m
}

// MinLen returns the length of the shortest series (0 for an empty dataset).
func (d *Dataset) MinLen() int {
	if len(d.Series) == 0 {
		return 0
	}
	m := d.Series[0].Len()
	for _, s := range d.Series[1:] {
		if s.Len() < m {
			m = s.Len()
		}
	}
	return m
}

// SubseqCount returns the total number of subsequences of the given lengths
// across all series — the cardinality the paper's Table 4 reports. A nil
// lengths slice counts every length from 2 to each series' length, matching
// the paper's N·n(n−1)/2 accounting.
func (d *Dataset) SubseqCount(lengths []int) int64 {
	var total int64
	for _, s := range d.Series {
		n := s.Len()
		if lengths == nil {
			// sum over i=2..n of (n-i+1) = n(n-1)/2
			total += int64(n) * int64(n-1) / 2
			continue
		}
		for _, l := range lengths {
			if l >= 1 && l <= n {
				total += int64(n - l + 1)
			}
		}
	}
	return total
}

// Validate checks the dataset for conditions that would corrupt a build:
// no series, empty series, or non-finite values.
func (d *Dataset) Validate() error {
	if len(d.Series) == 0 {
		return errors.New("ts: dataset has no series")
	}
	for _, s := range d.Series {
		if s.Len() == 0 {
			return fmt.Errorf("ts: series %d is empty", s.ID)
		}
		if i := CheckFinite(s.Values); i >= 0 {
			return fmt.Errorf("ts: series %d has non-finite value %v at index %d", s.ID, s.Values[i], i)
		}
	}
	return nil
}

// Clone returns a deep copy of the dataset. Normalization helpers operate on
// copies so the raw data can be retained alongside the normalized view.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{Name: d.Name, Series: make([]*Series, len(d.Series))}
	for i, s := range d.Series {
		v := make([]float64, len(s.Values))
		copy(v, s.Values)
		out.Series[i] = &Series{ID: s.ID, Label: s.Label, Values: v}
	}
	return out
}

// CloneShared returns a copy-on-write clone: fresh Series headers sharing
// the receiver's value arrays. It is the right clone for incremental base
// maintenance, where existing observations are immutable and only appended
// data is new — cloning stays O(series count) instead of O(total points).
// Callers must not mutate existing windows through either dataset; grow
// series only via Dataset.AppendPoints, which always reallocates onto an
// owned array so a shared one is never written.
func (d *Dataset) CloneShared() *Dataset {
	out := &Dataset{Name: d.Name, Series: make([]*Series, len(d.Series))}
	for i, s := range d.Series {
		out.Series[i] = &Series{ID: s.ID, Label: s.Label, Values: s.Values}
	}
	return out
}
