// Package ts provides the time-series substrate for ONEX: series and dataset
// types, zero-copy subsequence views, and the normalization schemes used by
// the paper (dataset-level min-max scaling, Sec. 6.1) and by the Trillion
// baseline (per-window z-normalization).
//
// Conventions follow the paper's Definition 1: a subsequence (Xp)^i_j is the
// run of length i starting at 0-based position j of series Xp. All values are
// float64; series inside a Dataset may have different lengths.
package ts

import (
	"errors"
	"fmt"
	"math"
)

// Series is a single time series: an ordered sequence of real values with an
// identifier unique within its Dataset and an optional class label (UCR
// datasets carry one; synthetic generators use it to record the template).
type Series struct {
	// ID is the index of the series within its dataset.
	ID int
	// Label is an optional class label (e.g. the UCR class column).
	Label string
	// Values holds the observations in time order.
	Values []float64
}

// Len returns the number of observations in the series.
func (s *Series) Len() int { return len(s.Values) }

// Sub returns the subsequence view (s)^length_start. It panics if the range
// is out of bounds, mirroring slice semantics; callers that work with
// untrusted indices should validate with CheckRange first.
func (s *Series) Sub(start, length int) Subseq {
	if start < 0 || length <= 0 || start+length > len(s.Values) {
		panic(fmt.Sprintf("ts: subsequence [%d:%d+%d) out of range for series %d of length %d",
			start, start, length, s.ID, len(s.Values)))
	}
	return Subseq{Series: s, Start: start, Length: length}
}

// CheckRange reports whether [start, start+length) is a valid subsequence
// range for the series.
func (s *Series) CheckRange(start, length int) bool {
	return start >= 0 && length > 0 && start+length <= len(s.Values)
}

// Subseq is a zero-copy view of a contiguous run of a parent series. The
// ONEX base stores millions of these, so the representation is deliberately
// three words plus a pointer: no value data is duplicated.
type Subseq struct {
	Series *Series
	Start  int
	Length int
}

// Values returns the underlying data window. The slice aliases the parent
// series; callers must not mutate it.
func (ss Subseq) Values() []float64 {
	return ss.Series.Values[ss.Start : ss.Start+ss.Length]
}

// End returns the exclusive end position of the view in the parent series.
func (ss Subseq) End() int { return ss.Start + ss.Length }

// String implements fmt.Stringer using the paper's (Xp)^i_j notation.
func (ss Subseq) String() string {
	return fmt.Sprintf("(X%d)^%d_%d", ss.Series.ID, ss.Length, ss.Start)
}

// Dataset is a collection of series, optionally normalized. The zero value
// is an empty dataset ready to use.
type Dataset struct {
	// Name identifies the dataset in reports (e.g. "ItalyPower").
	Name string
	// Series holds the member series; Series[i].ID == i is maintained by
	// NewDataset and Append.
	Series []*Series
}

// NewDataset builds a dataset from raw value rows, assigning IDs by position.
func NewDataset(name string, rows [][]float64) *Dataset {
	d := &Dataset{Name: name, Series: make([]*Series, 0, len(rows))}
	for _, row := range rows {
		d.Append("", row)
	}
	return d
}

// Append adds a series, assigning the next ID, and returns it.
func (d *Dataset) Append(label string, values []float64) *Series {
	s := &Series{ID: len(d.Series), Label: label, Values: values}
	d.Series = append(d.Series, s)
	return s
}

// N returns the number of series in the dataset.
func (d *Dataset) N() int { return len(d.Series) }

// MaxLen returns the length of the longest series (0 for an empty dataset).
func (d *Dataset) MaxLen() int {
	m := 0
	for _, s := range d.Series {
		if s.Len() > m {
			m = s.Len()
		}
	}
	return m
}

// MinLen returns the length of the shortest series (0 for an empty dataset).
func (d *Dataset) MinLen() int {
	if len(d.Series) == 0 {
		return 0
	}
	m := d.Series[0].Len()
	for _, s := range d.Series[1:] {
		if s.Len() < m {
			m = s.Len()
		}
	}
	return m
}

// SubseqCount returns the total number of subsequences of the given lengths
// across all series — the cardinality the paper's Table 4 reports. A nil
// lengths slice counts every length from 2 to each series' length, matching
// the paper's N·n(n−1)/2 accounting.
func (d *Dataset) SubseqCount(lengths []int) int64 {
	var total int64
	for _, s := range d.Series {
		n := s.Len()
		if lengths == nil {
			// sum over i=2..n of (n-i+1) = n(n-1)/2
			total += int64(n) * int64(n-1) / 2
			continue
		}
		for _, l := range lengths {
			if l >= 1 && l <= n {
				total += int64(n - l + 1)
			}
		}
	}
	return total
}

// Validate checks the dataset for conditions that would corrupt a build:
// no series, empty series, or non-finite values.
func (d *Dataset) Validate() error {
	if len(d.Series) == 0 {
		return errors.New("ts: dataset has no series")
	}
	for _, s := range d.Series {
		if s.Len() == 0 {
			return fmt.Errorf("ts: series %d is empty", s.ID)
		}
		for i, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ts: series %d has non-finite value %v at index %d", s.ID, v, i)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the dataset. Normalization helpers operate on
// copies so the raw data can be retained alongside the normalized view.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{Name: d.Name, Series: make([]*Series, len(d.Series))}
	for i, s := range d.Series {
		v := make([]float64, len(s.Values))
		copy(v, s.Values)
		out.Series[i] = &Series{ID: s.ID, Label: s.Label, Values: v}
	}
	return out
}
