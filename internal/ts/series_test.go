package ts

import (
	"math"
	"testing"
)

func TestSeriesSub(t *testing.T) {
	s := &Series{ID: 3, Values: []float64{1, 2, 3, 4, 5}}
	ss := s.Sub(1, 3)
	got := ss.Values()
	want := []float64{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Sub(1,3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sub(1,3)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if ss.End() != 4 {
		t.Errorf("End() = %d, want 4", ss.End())
	}
	if ss.String() != "(X3)^3_1" {
		t.Errorf("String() = %q, want %q", ss.String(), "(X3)^3_1")
	}
}

func TestSeriesSubPanicsOutOfRange(t *testing.T) {
	s := &Series{Values: []float64{1, 2, 3}}
	cases := []struct {
		name          string
		start, length int
	}{
		{"negative start", -1, 2},
		{"zero length", 0, 0},
		{"negative length", 1, -1},
		{"past end", 2, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("Sub(%d,%d) did not panic", c.start, c.length)
				}
			}()
			s.Sub(c.start, c.length)
		})
	}
}

func TestCheckRange(t *testing.T) {
	s := &Series{Values: make([]float64, 10)}
	cases := []struct {
		start, length int
		want          bool
	}{
		{0, 10, true},
		{9, 1, true},
		{0, 1, true},
		{0, 11, false},
		{10, 1, false},
		{-1, 1, false},
		{0, 0, false},
	}
	for _, c := range cases {
		if got := s.CheckRange(c.start, c.length); got != c.want {
			t.Errorf("CheckRange(%d,%d) = %v, want %v", c.start, c.length, got, c.want)
		}
	}
}

func TestDatasetAppendAssignsIDs(t *testing.T) {
	d := &Dataset{Name: "t"}
	a := d.Append("c1", []float64{1})
	b := d.Append("c2", []float64{2, 3})
	if a.ID != 0 || b.ID != 1 {
		t.Errorf("IDs = %d,%d, want 0,1", a.ID, b.ID)
	}
	if d.N() != 2 {
		t.Errorf("N() = %d, want 2", d.N())
	}
}

func TestDatasetMinMaxLen(t *testing.T) {
	d := NewDataset("t", [][]float64{{1, 2, 3}, {1}, {1, 2}})
	if d.MaxLen() != 3 {
		t.Errorf("MaxLen = %d, want 3", d.MaxLen())
	}
	if d.MinLen() != 1 {
		t.Errorf("MinLen = %d, want 1", d.MinLen())
	}
	empty := &Dataset{}
	if empty.MaxLen() != 0 || empty.MinLen() != 0 {
		t.Errorf("empty dataset lens = %d,%d, want 0,0", empty.MaxLen(), empty.MinLen())
	}
}

func TestSubseqCountMatchesPaperFormula(t *testing.T) {
	// The paper counts N·n(n−1)/2 subsequences (lengths 2..n). Table 4's
	// Wafer row: 1000 series × 152·151/2 = 11,476,000.
	rows := make([][]float64, 1000)
	for i := range rows {
		rows[i] = make([]float64, 152)
	}
	d := NewDataset("Wafer", rows)
	if got := d.SubseqCount(nil); got != 11476000 {
		t.Errorf("SubseqCount(nil) = %d, want 11476000", got)
	}
}

func TestSubseqCountExplicitLengths(t *testing.T) {
	d := NewDataset("t", [][]float64{make([]float64, 10), make([]float64, 5)})
	// Length 6: first series has 5 positions, second has none.
	if got := d.SubseqCount([]int{6}); got != 5 {
		t.Errorf("SubseqCount([6]) = %d, want 5", got)
	}
	// Lengths 2 and 3: (9+8) + (4+3) = 24.
	if got := d.SubseqCount([]int{2, 3}); got != 24 {
		t.Errorf("SubseqCount([2,3]) = %d, want 24", got)
	}
	// Out-of-range lengths contribute nothing.
	if got := d.SubseqCount([]int{0, -2, 100}); got != 0 {
		t.Errorf("SubseqCount(bad) = %d, want 0", got)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		d       *Dataset
		wantErr bool
	}{
		{"ok", NewDataset("t", [][]float64{{1, 2}}), false},
		{"empty dataset", &Dataset{}, true},
		{"empty series", NewDataset("t", [][]float64{{}}), true},
		{"NaN", NewDataset("t", [][]float64{{1, math.NaN()}}), true},
		{"+Inf", NewDataset("t", [][]float64{{math.Inf(1)}}), true},
		{"-Inf", NewDataset("t", [][]float64{{math.Inf(-1), 0}}), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.d.Validate()
			if (err != nil) != c.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, c.wantErr)
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := NewDataset("t", [][]float64{{1, 2, 3}})
	c := d.Clone()
	c.Series[0].Values[0] = 99
	if d.Series[0].Values[0] != 1 {
		t.Error("Clone shares value storage with original")
	}
	if c.Name != d.Name || c.N() != d.N() {
		t.Error("Clone lost metadata")
	}
}
