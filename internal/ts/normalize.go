package ts

import (
	"errors"
	"math"
)

// MinMax returns the minimum and maximum value across every series of the
// dataset. It returns (+Inf, -Inf) for an empty dataset so callers can detect
// the degenerate case.
func (d *Dataset) MinMax() (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, s := range d.Series {
		for _, v := range s.Values {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	return min, max
}

// ErrConstantData is returned when normalization is requested but every value
// in the scope (dataset or window) is identical, making the scale undefined.
var ErrConstantData = errors.New("ts: cannot normalize constant data (max == min)")

// NormalizeMinMax rescales every value to [0,1] using the dataset-level
// minimum and maximum, the scheme the paper uses for all experiments
// (Sec. 6.1: x_i → (x_i − min)/(max − min) with min/max over the dataset).
// The dataset is modified in place; use Clone first to keep the raw data.
func (d *Dataset) NormalizeMinMax() error {
	min, max := d.MinMax()
	if math.IsInf(min, 1) {
		return errors.New("ts: cannot normalize empty dataset")
	}
	if max == min {
		return ErrConstantData
	}
	scale := 1 / (max - min)
	for _, s := range d.Series {
		for i, v := range s.Values {
			s.Values[i] = (v - min) * scale
		}
	}
	return nil
}

// NormalizeMinMaxPerSeries rescales each series independently to [0,1].
// Offered for analysts whose series live on unrelated scales (the motivating
// example mixes tax rates with growth percentages); the paper's experiments
// use the dataset-level variant.
func (d *Dataset) NormalizeMinMaxPerSeries() error {
	for _, s := range d.Series {
		min, max := math.Inf(1), math.Inf(-1)
		for _, v := range s.Values {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if math.IsInf(min, 1) || max == min {
			return ErrConstantData
		}
		scale := 1 / (max - min)
		for i, v := range s.Values {
			s.Values[i] = (v - min) * scale
		}
	}
	return nil
}

// ZNormalize writes the z-normalized form of src into dst ((x−μ)/σ) and
// returns dst. If dst is nil or too small a new slice is allocated. A window
// with zero variance normalizes to all zeros rather than NaN, the convention
// the UCR suite uses for constant windows.
func ZNormalize(dst, src []float64) []float64 {
	if cap(dst) < len(src) {
		dst = make([]float64, len(src))
	}
	dst = dst[:len(src)]
	mean, std := MeanStd(src)
	if std == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	inv := 1 / std
	for i, v := range src {
		dst[i] = (v - mean) * inv
	}
	return dst
}

// MeanStd returns the mean and population standard deviation of x.
// Both are 0 for an empty slice.
func MeanStd(x []float64) (mean, std float64) {
	if len(x) == 0 {
		return 0, 0
	}
	var sum, sumSq float64
	for _, v := range x {
		sum += v
		sumSq += v * v
	}
	n := float64(len(x))
	mean = sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 { // guard against catastrophic cancellation
		variance = 0
	}
	return mean, math.Sqrt(variance)
}
