package ts

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNormalizeMinMaxDatasetLevel(t *testing.T) {
	// Per Sec. 6.1 the min/max are dataset-wide, not per series.
	d := NewDataset("t", [][]float64{{0, 10}, {5, 20}})
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0, 0.5}, {0.25, 1}}
	for i, s := range d.Series {
		for j, v := range s.Values {
			if !almostEqual(v, want[i][j], 1e-12) {
				t.Errorf("series %d[%d] = %v, want %v", i, j, v, want[i][j])
			}
		}
	}
}

func TestNormalizeMinMaxErrors(t *testing.T) {
	empty := &Dataset{}
	if err := empty.NormalizeMinMax(); err == nil {
		t.Error("empty dataset: want error")
	}
	constant := NewDataset("t", [][]float64{{3, 3}, {3}})
	if err := constant.NormalizeMinMax(); err != ErrConstantData {
		t.Errorf("constant dataset: got %v, want ErrConstantData", err)
	}
}

func TestNormalizeMinMaxPerSeries(t *testing.T) {
	d := NewDataset("t", [][]float64{{0, 10}, {5, 20}})
	if err := d.NormalizeMinMaxPerSeries(); err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0, 1}, {0, 1}}
	for i, s := range d.Series {
		for j, v := range s.Values {
			if !almostEqual(v, want[i][j], 1e-12) {
				t.Errorf("series %d[%d] = %v, want %v", i, j, v, want[i][j])
			}
		}
	}
	constant := NewDataset("t", [][]float64{{1, 2}, {3, 3}})
	if err := constant.NormalizeMinMaxPerSeries(); err != ErrConstantData {
		t.Errorf("constant series: got %v, want ErrConstantData", err)
	}
}

func TestNormalizeMinMaxRangeProperty(t *testing.T) {
	// After normalization every value is in [0,1] and the extremes are hit.
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		for _, v := range raw {
			// Skip non-finite and near-overflow inputs: max−min must not
			// overflow for the scale to be defined.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				return true
			}
		}
		d := NewDataset("q", [][]float64{raw})
		if err := d.NormalizeMinMax(); err != nil {
			return err == ErrConstantData
		}
		min, max := d.MinMax()
		if min < -1e-12 || max > 1+1e-12 {
			return false
		}
		return almostEqual(min, 0, 1e-9) && almostEqual(max, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZNormalize(t *testing.T) {
	src := []float64{1, 2, 3, 4, 5}
	out := ZNormalize(nil, src)
	mean, std := MeanStd(out)
	if !almostEqual(mean, 0, 1e-12) || !almostEqual(std, 1, 1e-12) {
		t.Errorf("z-normalized mean,std = %v,%v; want 0,1", mean, std)
	}
}

func TestZNormalizeConstantWindow(t *testing.T) {
	out := ZNormalize(nil, []float64{7, 7, 7})
	for i, v := range out {
		if v != 0 {
			t.Errorf("constant window z-norm[%d] = %v, want 0", i, v)
		}
	}
}

func TestZNormalizeReusesBuffer(t *testing.T) {
	buf := make([]float64, 8)
	out := ZNormalize(buf, []float64{1, 2, 3})
	if &out[0] != &buf[0] {
		t.Error("ZNormalize did not reuse the provided buffer")
	}
	if len(out) != 3 {
		t.Errorf("len(out) = %d, want 3", len(out))
	}
}

func TestMeanStd(t *testing.T) {
	cases := []struct {
		in       []float64
		mean, sd float64
	}{
		{nil, 0, 0},
		{[]float64{5}, 5, 0},
		{[]float64{1, 3}, 2, 1},
		{[]float64{2, 4, 4, 4, 5, 5, 7, 9}, 5, 2},
	}
	for _, c := range cases {
		m, s := MeanStd(c.in)
		if !almostEqual(m, c.mean, 1e-12) || !almostEqual(s, c.sd, 1e-12) {
			t.Errorf("MeanStd(%v) = %v,%v; want %v,%v", c.in, m, s, c.mean, c.sd)
		}
	}
}
