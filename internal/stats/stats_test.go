package stats

import (
	"math"
	"testing"
)

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Min(xs) != 1 || Max(xs) != 3 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Mean(nil) != 0 {
		t.Errorf("Mean(nil) = %v", Mean(nil))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max sentinels wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("p<0: want error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("p>100: want error")
	}
	one, err := Percentile([]float64{7}, 99)
	if err != nil || one != 7 {
		t.Errorf("single element percentile = %v, %v", one, err)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestAccuracy(t *testing.T) {
	// Perfect system: accuracy 100.
	got, err := Accuracy([]float64{0.1, 0.2}, []float64{0.1, 0.2})
	if err != nil || got != 100 {
		t.Errorf("perfect accuracy = %v, %v", got, err)
	}
	// Mean error 0.05 → 95.
	got, err = Accuracy([]float64{0.15, 0.25}, []float64{0.1, 0.2})
	if err != nil || math.Abs(got-95) > 1e-9 {
		t.Errorf("accuracy = %v, want 95 (%v)", got, err)
	}
}

func TestAccuracyErrors(t *testing.T) {
	if _, err := Accuracy([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := Accuracy(nil, nil); err == nil {
		t.Error("empty: want error")
	}
	if _, err := Accuracy([]float64{math.NaN()}, []float64{0}); err == nil {
		t.Error("NaN: want error")
	}
	if _, err := Accuracy([]float64{0.1}, []float64{0.5}); err == nil {
		t.Error("system below exact: want error")
	}
	// Tiny negative noise is clamped, not an error.
	got, err := Accuracy([]float64{0.1 - 1e-12}, []float64{0.1})
	if err != nil || got != 100 {
		t.Errorf("noise clamp: %v, %v", got, err)
	}
}
