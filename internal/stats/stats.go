// Package stats holds the small numeric helpers the benchmark harness
// shares: aggregation and the paper's accuracy metric (Sec. 6.2.1).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Min returns the smallest value (+Inf for an empty slice).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, v := range xs {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest value (-Inf for an empty slice).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks. It returns an error for an empty
// input or out-of-range p.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Accuracy computes the paper's solution-accuracy metric: for each query the
// error is the difference between the system's solution distance and the
// exact (brute-force) solution distance; accuracy = (1 − mean(error))·100.
// Distances are the normalized DTW values between each solution and the
// query. Inputs must be equal-length and pairwise valid (system ≥ exact).
func Accuracy(system, exact []float64) (float64, error) {
	if len(system) != len(exact) {
		return 0, fmt.Errorf("stats: accuracy inputs differ in length: %d vs %d", len(system), len(exact))
	}
	if len(system) == 0 {
		return 0, errors.New("stats: accuracy of zero queries")
	}
	var sum float64
	for i := range system {
		if math.IsNaN(system[i]) || math.IsNaN(exact[i]) {
			return 0, fmt.Errorf("stats: NaN distance at query %d", i)
		}
		err := system[i] - exact[i]
		if err < 0 {
			// A "better than exact" distance indicates a measurement bug
			// upstream; clamp tiny negative noise, reject real violations.
			if err < -1e-9 {
				return 0, fmt.Errorf("stats: system distance %v below exact %v at query %d",
					system[i], exact[i], i)
			}
			err = 0
		}
		sum += err
	}
	return (1 - sum/float64(len(system))) * 100, nil
}
