package api

import (
	"testing"
)

// TestRegisterSharded registers a dataset with an explicit shard layout over
// the v1 API and checks the per-shard stats surface plus the hub-wide
// maintenance counters.
func TestRegisterSharded(t *testing.T) {
	_, hs := testServer(t, testConfig())

	resp := doJSON(t, "POST", hs.URL+"/v1/datasets", map[string]any{
		"name": "shardy", "generator": "ECG", "scale": 0.2, "st": 0.3,
		"lengths": 5, "shards": 3, "wait": true,
	}, 201)
	if got := resp["shards"].(float64); got != 3 {
		t.Errorf("register response shards = %v, want 3", got)
	}

	stats := doJSON(t, "GET", hs.URL+"/v1/datasets/shardy/stats", nil, 200)
	if got := stats["shards"].(float64); got != 3 {
		t.Errorf("stats shards = %v, want 3", got)
	}
	shardStats, ok := stats["shardStats"].([]any)
	if !ok || len(shardStats) != 3 {
		t.Fatalf("stats shardStats = %v, want 3 entries", stats["shardStats"])
	}
	series := 0.0
	for _, raw := range shardStats {
		entry := raw.(map[string]any)
		series += entry["series"].(float64)
		if entry["subsequences"].(float64) <= 0 {
			t.Errorf("empty shard stat entry: %v", entry)
		}
	}
	if series != stats["series"].(float64) {
		t.Errorf("per-shard series sum %v != dataset series %v", series, stats["series"])
	}
	if _, ok := stats["drift"]; !ok {
		t.Error("stats missing drift counter")
	}
	if _, ok := stats["rebuilds"]; !ok {
		t.Error("stats missing rebuilds counter")
	}

	hub := doJSON(t, "GET", hs.URL+"/v1/stats", nil, 200)
	maint, ok := hub["hub"].(map[string]any)["maintenance"].(map[string]any)
	if !ok {
		t.Fatal("/v1/stats missing maintenance map")
	}
	entry, ok := maint["shardy"].(map[string]any)
	if !ok {
		t.Fatal("maintenance map missing the sharded dataset")
	}
	if entry["shards"].(float64) != 3 {
		t.Errorf("maintenance shards = %v, want 3", entry["shards"])
	}

	// Querying the sharded dataset works and matches the unsharded default
	// semantics (identity checks live in the engine's own equivalence
	// suite; here we just exercise the HTTP path).
	q := make([]float64, 16)
	for i := range q {
		q[i] = 0.1 * float64(i%5)
	}
	doJSON(t, "POST", hs.URL+"/v1/datasets/shardy/match", map[string]any{"query": q}, 200)
}

// TestRegisterShardsValidation pins the request validation: negative and
// absurd shard counts are client errors.
func TestRegisterShardsValidation(t *testing.T) {
	_, hs := testServer(t, testConfig())
	doJSON(t, "POST", hs.URL+"/v1/datasets", map[string]any{
		"name": "bad", "generator": "ECG", "shards": -1,
	}, 400)
	doJSON(t, "POST", hs.URL+"/v1/datasets", map[string]any{
		"name": "bad", "generator": "ECG", "shards": maxShards + 1,
	}, 400)
	// At the cap is fine (the engine clamps to the series count).
	resp := doJSON(t, "POST", hs.URL+"/v1/datasets", map[string]any{
		"name": "capped", "generator": "ECG", "scale": 0.1, "st": 0.3,
		"lengths": 4, "shards": maxShards, "wait": true,
	}, 201)
	if resp["state"] != "ready" {
		t.Errorf("capped registration state = %v", resp["state"])
	}
	if shards := resp["shards"].(float64); shards <= 0 || shards > maxShards {
		t.Errorf("clamped shards = %v", shards)
	}
}
