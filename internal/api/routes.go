package api

import (
	"net/http"
)

// Routes builds the server's handler tree. Every route is wrapped in the
// latency middleware, so /v1/stats carries one histogram per route pattern.
func (s *Server) Routes() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.timed(pattern, h))
	}

	handle("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	// Versioned multi-dataset surface.
	handle("POST /v1/datasets", s.handleRegister)
	handle("GET /v1/datasets", s.handleList)
	handle("GET /v1/datasets/{name}", s.handleDatasetInfo)
	handle("DELETE /v1/datasets/{name}", s.handleDrop)
	handle("POST /v1/datasets/{name}/match", s.handleMatch)
	handle("POST /v1/datasets/{name}/match/batch", s.handleMatchBatch)
	handle("POST /v1/datasets/{name}/range", s.handleRange)
	handle("POST /v1/datasets/{name}/range/batch", s.handleRangeBatch)
	handle("POST /v1/datasets/{name}/seasonal/batch", s.handleSeasonalBatch)
	handle("POST /v1/datasets/{name}/extend", s.handleExtend)
	handle("POST /v1/datasets/{name}/append", s.handleAppend)
	handle("GET /v1/datasets/{name}/seasonal", s.handleSeasonal)
	handle("GET /v1/datasets/{name}/recommend", s.handleRecommend)
	handle("GET /v1/datasets/{name}/stats", s.handleDatasetStats)
	handle("GET /v1/stats", s.handleHubStats)

	// Observability: Prometheus text exposition and the slow-query buffer.
	handle("GET /metrics", s.handleMetrics)
	handle("GET /v1/debug/slow", s.handleDebugSlow)
	if s.pprof {
		mountPprof(mux)
	}

	// Async jobs: any query family as a pollable, cancelable job.
	handle("POST /v1/datasets/{name}/match/jobs", s.handleMatchJob)
	handle("POST /v1/datasets/{name}/range/jobs", s.handleRangeJob)
	handle("POST /v1/datasets/{name}/seasonal/jobs", s.handleSeasonalJob)
	handle("GET /v1/jobs", s.handleJobList)
	handle("GET /v1/jobs/{id}", s.handleJobGet)
	handle("DELETE /v1/jobs/{id}", s.handleJobCancel)

	// Deprecated pre-/v1 single-dataset endpoints, served by the default
	// dataset behind Config.Legacy; 410 Gone otherwise.
	handle("POST /match", s.deprecated(s.handleMatch))
	handle("POST /range", s.deprecated(s.handleRange))
	handle("GET /seasonal", s.deprecated(s.handleSeasonal))
	handle("GET /recommend", s.deprecated(s.handleRecommend))
	handle("GET /stats", s.deprecated(s.handleLegacyStats))
	return mux
}

// deprecated gates a legacy handler: with Config.Legacy it answers normally
// plus a "Deprecation: true" header (RFC 8594 style); without it the route
// is 410 Gone, pointing clients at the /v1 surface.
func (s *Server) deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.legacy {
			writeErr(w, apiError{http.StatusGone, CodeDeprecated,
				"legacy endpoint disabled; use the /v1 API (or start the server with -legacy)"})
			return
		}
		w.Header().Set("Deprecation", "true")
		h(w, r)
	}
}
