// Package api is the HTTP face of an ONEX hub — the service form of the
// paper's interactive exploration tool, extracted from cmd/onex-server so
// the serving surface is testable and benchmarkable in-process.
//
// The /v1 surface is organized around a uniform request/job model:
//
//   - Every query family (match/k-NN, range, seasonal) has a synchronous
//     endpoint, a batch endpoint sharing one positional-errors envelope
//     ({"queries":[...]} in, {"count","errors","results":[{result|error}]}
//     out), and an asynchronous jobs endpoint (POST …/jobs → 202 + job id,
//     GET /v1/jobs/{id} to poll progress, DELETE to cancel).
//   - Errors are a consistent envelope {"error": message, "code": code}
//     with machine-readable codes (invalid_argument, not_found, not_ready,
//     canceled, …).
//   - Per-endpoint latency histograms and job/cache counters are exposed
//     on GET /v1/stats.
//
// The legacy pre-/v1 single-dataset endpoints (/match, /range, /seasonal,
// /recommend, /stats) are deprecated: they are served only when
// Config.Legacy is set (the -legacy flag) and always answer with a
// "Deprecation: true" header; without the flag they return 410 Gone.
package api

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"onex"
	"onex/internal/hub"
	"onex/internal/jobs"
	"onex/internal/metrics"
	"onex/internal/obs"
	"onex/internal/shardrpc"
)

// DefaultMaxBody caps request bodies at 8 MiB: ~1M-point query vectors.
const DefaultMaxBody = 8 << 20

// maxShards bounds client-requested shard counts (the engine additionally
// clamps to the dataset's series count).
const maxShards = 256

// Config aggregates the server's startup settings (a struct rather than
// flags so tests and benchmarks can build servers directly).
type Config struct {
	// DataPath / Generator, ST, Lengths, Scale and Seed describe the
	// default dataset, registered at startup.
	DataPath, Generator string
	ST                  float64
	Lengths             int
	Scale               float64
	Seed                int64
	// Parallelism is the default dataset's build/query worker fan-out
	// (0 = GOMAXPROCS).
	Parallelism int
	// Shards is the default dataset's intra-dataset shard count
	// (0/1 = unsharded; answers are identical at every count).
	Shards int
	// ShardWorkers lists remote worker base URLs serving the default
	// dataset's shards over the worker protocol (internal/shardrpc); shard s
	// goes to worker s mod len(ShardWorkers). Empty keeps every shard
	// in-process. Answers are bit-identical either way. Operator-controlled
	// like DataPath, so not subject to AllowFS.
	ShardWorkers []string
	SnapshotDir  string
	CacheEntries int
	BuildWorkers int
	MaxBody      int64
	// AllowFS lets v1 registration requests name server filesystem paths
	// (path/snapshot). Off by default: a remote client must not be able to
	// read arbitrary host files. The startup DataPath is unaffected
	// (operator-controlled).
	AllowFS bool
	// Legacy serves the deprecated pre-/v1 endpoints (with a Deprecation
	// header). Off by default; without it they return 410 Gone.
	Legacy bool
	// JobWorkers, MaxJobs and JobTTL tune the async job subsystem
	// (defaults: 2 workers, 1024 jobs, 10 minute result retention).
	JobWorkers int
	MaxJobs    int
	JobTTL     time.Duration
	// Logger receives the structured request log (nil = discard, keeping
	// tests and benchmarks quiet).
	Logger *slog.Logger
	// SlowQuery raises requests at or above this duration to warn-level
	// log lines with a slowQuery marker (0 = no slow threshold).
	SlowQuery time.Duration
	// Pprof mounts the net/http/pprof profiling endpoints under
	// /debug/pprof/. Off by default: profiles expose memory contents.
	Pprof bool
	// HealthProbe sets the background shard-worker health-probe interval
	// (0 = shardrpc.DefaultProbeInterval). Probes only contact workers the
	// fleet registry already knows about, so local-only deployments pay
	// nothing beyond an idle ticker.
	HealthProbe time.Duration
}

// Server is the HTTP face of a hub. Handlers are safe for concurrent use.
type Server struct {
	hub         *hub.Hub
	jobs        *jobs.Manager
	metrics     *metrics.Registry
	defaultName string
	maxBody     int64
	allowFS     bool
	legacy      bool
	started     time.Time

	logger    *slog.Logger
	slowQuery time.Duration
	pprof     bool
	slow      *obs.SlowLog

	reqMu     sync.Mutex
	reqCounts map[reqKey]uint64

	// stopProbes releases this server's hold on the shared shard-worker
	// health-probe loop (see shardrpc.FleetHealth.StartProbes).
	stopProbes func()
}

// New starts a hub, registers the default dataset per cfg and waits for it
// to become ready, mirroring the old single-dataset startup.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	h := hub.New(hub.Config{
		BuildWorkers: cfg.BuildWorkers,
		SnapshotDir:  cfg.SnapshotDir,
		CacheEntries: cfg.CacheEntries,
	})
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		hub: h,
		jobs: jobs.NewManager(jobs.Config{
			Workers: cfg.JobWorkers, MaxJobs: cfg.MaxJobs, TTL: cfg.JobTTL,
		}),
		metrics:   &metrics.Registry{},
		maxBody:   cfg.MaxBody,
		allowFS:   cfg.AllowFS,
		legacy:    cfg.Legacy,
		started:   time.Now(),
		logger:    logger,
		slowQuery: cfg.SlowQuery,
		pprof:     cfg.Pprof,
		slow:      obs.NewSlowLog(slowLogCap),
	}
	shardrpc.Fleet().SetLogger(logger)
	s.stopProbes = shardrpc.Fleet().StartProbes(cfg.HealthProbe)

	spec := hub.Spec{
		Scale: cfg.Scale,
		Seed:  cfg.Seed,
		Opts: onex.Options{ST: cfg.ST, Seed: cfg.Seed, Parallelism: cfg.Parallelism,
			Shards: cfg.Shards, ShardWorkers: cfg.ShardWorkers},
		LengthCount: cfg.Lengths,
	}
	name := cfg.Generator
	if cfg.DataPath != "" {
		spec.Path = cfg.DataPath
		name = DatasetNameFromPath(cfg.DataPath)
	} else {
		spec.Generator = cfg.Generator
	}
	ds, err := h.Register(name, spec)
	if err != nil {
		s.Close()
		return nil, err
	}
	if err := ds.Wait(context.Background()); err != nil {
		s.Close()
		return nil, fmt.Errorf("default dataset %q: %w", name, err)
	}
	s.defaultName = name
	return s, nil
}

// Close aborts in-flight jobs and builds and releases the server's
// resources. Safe to call more than once.
func (s *Server) Close() {
	if s.stopProbes != nil {
		s.stopProbes()
	}
	s.jobs.Close()
	s.hub.Close()
}

// DefaultName returns the name of the dataset registered at startup.
func (s *Server) DefaultName() string { return s.defaultName }

// DefaultInfo returns the default dataset's current Info.
func (s *Server) DefaultInfo() (hub.Info, error) {
	ds, err := s.hub.Get(s.defaultName)
	if err != nil {
		return hub.Info{}, err
	}
	return ds.Info(), nil
}

// Hub exposes the underlying hub (tests and the load benchmark reach
// through it).
func (s *Server) Hub() *hub.Hub { return s.hub }

// DatasetNameFromPath derives a catalog-safe name from a file path.
func DatasetNameFromPath(path string) string {
	base := filepath.Base(path)
	// filepath.Base only understands the host separator; strip Windows-style
	// components regardless of platform.
	if i := strings.LastIndexByte(base, '\\'); i >= 0 {
		base = base[i+1:]
	}
	out := make([]byte, 0, len(base))
	for i := 0; i < len(base); i++ {
		c := base[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 || !isAlnum(out[0]) {
		out = append([]byte{'d'}, out...)
	}
	if len(out) > 64 {
		out = out[:64]
	}
	return string(out)
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// dataset resolves the {name} path value, falling back to the default
// dataset for the legacy unversioned routes.
func (s *Server) dataset(name string) (*hub.Dataset, error) {
	if name == "" {
		name = s.defaultName
	}
	return s.hub.Get(name)
}
