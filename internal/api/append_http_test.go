package api

import (
	"math"
	"net/http"
	"strings"
	"testing"
)

func TestAppendEndpoint(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	base := hs.URL + "/v1/datasets/" + srv.DefaultName()

	before := getJSON(t, base, http.StatusOK)
	beforeSubseq := before["subsequences"].(float64)
	gen := before["generation"].(float64)

	out := postJSON(t, base+"/append", map[string]any{
		"seriesId": 0, "points": []float64{0.4, 0.5, 0.6},
	}, http.StatusOK)
	if got := out["generation"].(float64); got != gen+1 {
		t.Errorf("generation %v after append, want %v", got, gen+1)
	}
	if got := out["subsequences"].(float64); got <= beforeSubseq {
		t.Errorf("subsequences %v after append, want > %v", got, beforeSubseq)
	}

	// Validation.
	postJSON(t, base+"/append", map[string]any{"points": []float64{1}}, http.StatusBadRequest)
	postJSON(t, base+"/append", map[string]any{"seriesId": -1, "points": []float64{1}}, http.StatusBadRequest)
	postJSON(t, base+"/append", map[string]any{"seriesId": 0, "points": []float64{}}, http.StatusBadRequest)
	postJSON(t, base+"/append", map[string]any{"seriesId": 10_000, "points": []float64{1}}, http.StatusBadRequest)
	postJSON(t, base+"/append", map[string]any{"seriesId": 0, "points": []float64{1}, "bogus": 1}, http.StatusBadRequest)
	postJSON(t, hs.URL+"/v1/datasets/nosuch/append", map[string]any{
		"seriesId": 0, "points": []float64{1},
	}, http.StatusNotFound)

	// JSON cannot carry NaN/Inf, so non-finite points are rejected at the
	// decode layer — the kernel's finite-input invariant holds end to end.
	req, err := http.NewRequest(http.MethodPost, base+"/append",
		strings.NewReader(`{"seriesId":0,"points":[NaN]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("NaN point literal: code %d, want 400", resp.StatusCode)
	}
}

func TestRangeExactEndpoint(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	base := hs.URL + "/v1/datasets/" + srv.DefaultName()
	q := queryFor(t, srv)
	info, err := srv.DefaultInfo()
	if err != nil {
		t.Fatal(err)
	}
	st := info.ST

	plain := postJSON(t, base+"/range", map[string]any{
		"query": q, "length": len(q), "radius": st,
	}, http.StatusOK)
	exact := postJSON(t, base+"/range", map[string]any{
		"query": q, "length": len(q), "radius": st, "exact": true,
	}, http.StatusOK)
	if plain["count"].(float64) == 0 {
		t.Fatal("radius=ST range query returned nothing")
	}
	// In exact mode no guaranteed result may carry the ST sentinel distance
	// unless its true DTW happens to equal it; all distances must be finite
	// and within the radius.
	for _, raw := range exact["results"].([]any) {
		r := raw.(map[string]any)
		d := r["distance"].(float64)
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("exact range returned non-finite distance %v", d)
		}
		if d > st+1e-9 {
			t.Fatalf("exact range returned distance %v beyond radius %v", d, st)
		}
	}
	if exact["count"].(float64) > plain["count"].(float64) {
		t.Errorf("exact mode returned more results (%v) than plain (%v)",
			exact["count"], plain["count"])
	}
}

// TestConstantQueryOverHTTP pins the zero-variance semantics at the JSON
// boundary: a constant query is legal and every distance in the response is
// finite (NaN would break the encoder mid-stream).
func TestConstantQueryOverHTTP(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	base := hs.URL + "/v1/datasets/" + srv.DefaultName()
	q := queryFor(t, srv)
	flat := make([]float64, len(q))
	for i := range flat {
		flat[i] = 0.5
	}
	out := postJSON(t, base+"/match", map[string]any{"query": flat, "mode": "exact"}, http.StatusOK)
	d, ok := out["distance"].(float64)
	if !ok || math.IsNaN(d) || math.IsInf(d, 0) {
		t.Fatalf("constant query produced distance %v", out["distance"])
	}
	rng := postJSON(t, base+"/range", map[string]any{
		"query": flat, "length": len(flat), "radius": 2.0, "exact": true,
	}, http.StatusOK)
	for _, raw := range rng["results"].([]any) {
		r := raw.(map[string]any)
		if d := r["distance"].(float64); math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("constant range query produced non-finite distance %v", d)
		}
	}
}
