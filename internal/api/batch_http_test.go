package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// legacyBatchRequest is the deprecated match/batch request shape
// (array-of-arrays queries with one top-level mode), kept as a test type to
// pin backward compatibility.
type legacyBatchRequest struct {
	Queries [][]float64 `json:"queries"`
	Mode    string      `json:"mode,omitempty"`
}

// postJSONRaw posts a body and returns only the status code, verifying the
// response is well-formed JSON (used from racing goroutines where any of
// several codes is acceptable).
func postJSONRaw(client *http.Client, url string, body any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return 0, fmt.Errorf("status %d with malformed body: %w", resp.StatusCode, err)
	}
	return resp.StatusCode, nil
}

func TestV1MatchBatch(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	q := queryFor(t, srv)
	// JSON cannot carry NaN, so the malformed entries a client can actually
	// send are empty and unindexable-length queries (NaN handling is covered
	// by FuzzBestMatchBatch at the API layer).
	bad := []float64{1, 2, 3}
	out := postJSON(t, hs.URL+"/v1/datasets/ItalyPower/match/batch",
		legacyBatchRequest{Queries: [][]float64{q, q, bad, {}}, Mode: "exact"}, http.StatusOK)
	if out["count"].(float64) != 4 {
		t.Fatalf("count = %v", out["count"])
	}
	if out["errors"].(float64) != 2 {
		t.Fatalf("errors = %v, want 2 (unindexed length + empty query)", out["errors"])
	}
	results := out["results"].([]any)
	if len(results) != 4 {
		t.Fatalf("results len = %d", len(results))
	}
	first := results[0].(map[string]any)
	if first["length"].(float64) != float64(len(q)) {
		t.Errorf("result 0 length = %v, want %d", first["length"], len(q))
	}
	if _, hasErr := first["error"]; hasErr {
		t.Errorf("result 0 unexpectedly errored: %v", first["error"])
	}
	// The two results must be identical (same query) and the bad ones carry
	// per-entry errors without failing the request.
	second := results[1].(map[string]any)
	if first["seriesId"] != second["seriesId"] || first["start"] != second["start"] ||
		first["distance"] != second["distance"] {
		t.Errorf("identical queries got different answers: %v vs %v", first, second)
	}
	for i := 2; i < 4; i++ {
		entry := results[i].(map[string]any)
		if entry["error"] == nil || entry["error"] == "" {
			t.Errorf("result %d: missing per-query error: %v", i, entry)
		}
	}
}

func TestV1MatchBatchValidation(t *testing.T) {
	_, hs := testServer(t, testConfig())
	url := hs.URL + "/v1/datasets/ItalyPower/match/batch"
	postJSON(t, url, legacyBatchRequest{Queries: nil}, http.StatusBadRequest)
	postJSON(t, url, legacyBatchRequest{Queries: [][]float64{{1, 2}}, Mode: "fuzzy"}, http.StatusBadRequest)
	postJSON(t, hs.URL+"/v1/datasets/nope/match/batch",
		legacyBatchRequest{Queries: [][]float64{{1, 2}}}, http.StatusNotFound)
	postJSON(t, url, map[string]any{"queries": [][]float64{{1, 2}}, "bogus": 1}, http.StatusBadRequest)
}

// TestV1MatchBatchRacingDrop drives the batch endpoint from several
// goroutines while the dataset is dropped and re-registered: every response
// must be a well-formed 200, 404 (dropped) or 409 (re-register in flight /
// not ready) — never a panic, hang or malformed body.
func TestV1MatchBatchRacingDrop(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	q := queryFor(t, srv)
	url := hs.URL + "/v1/datasets/ItalyPower/match/batch"

	var wg sync.WaitGroup
	stop := make(chan struct{})
	codes := make(chan int, 4096)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := legacyBatchRequest{Queries: [][]float64{q, q}, Mode: "exact"}
				resp, err := postJSONRaw(client, url, req)
				if err != nil {
					t.Errorf("batch request failed: %v", err)
					return
				}
				switch resp {
				case http.StatusOK, http.StatusNotFound, http.StatusConflict,
					http.StatusInternalServerError, http.StatusServiceUnavailable:
				default:
					t.Errorf("unexpected status %d", resp)
				}
				select {
				case codes <- resp:
				default:
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		doJSON(t, http.MethodDelete, hs.URL+"/v1/datasets/ItalyPower", nil, http.StatusOK)
		postJSON(t, hs.URL+"/v1/datasets", registerRequest{
			Name: "ItalyPower", Generator: "ItalyPower", ST: 0.25, Lengths: 6,
			Scale: 0.2, Seed: 1, Wait: true,
		}, http.StatusCreated)
	}
	close(stop)
	wg.Wait()
	close(codes)
	saw := map[int]int{}
	for c := range codes {
		saw[c]++
	}
	if saw[http.StatusOK] == 0 {
		t.Errorf("no successful batch during the race (codes: %v)", saw)
	}
}
