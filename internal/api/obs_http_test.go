package api

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// traceFrom digs the trace object out of an explain-wrapped response.
func traceFrom(t *testing.T, body map[string]any) map[string]any {
	t.Helper()
	tr, ok := body["trace"].(map[string]any)
	if !ok {
		t.Fatalf("response has no trace object: %v", body)
	}
	if _, ok := body["result"]; !ok {
		t.Fatalf("explained response has no result: %v", body)
	}
	return tr
}

// workOf returns the trace's work counter map (possibly nil).
func workOf(tr map[string]any) map[string]any {
	w, _ := tr["work"].(map[string]any)
	return w
}

// queryWork extracts the hub-wide query work tallies from /v1/stats.
func queryWork(t *testing.T, base string) map[string]float64 {
	t.Helper()
	stats := getJSON(t, base+"/v1/stats", http.StatusOK)
	hub, _ := stats["hub"].(map[string]any)
	q, _ := hub["query"].(map[string]any)
	out := make(map[string]float64, len(q))
	for k, v := range q {
		f, _ := v.(float64)
		out[k] = f
	}
	return out
}

// TestExplainTraces drives every query family with explain enabled and
// checks the trace shape, plus the headline consistency property: the
// trace's work counters equal the /v1/stats deltas the query caused.
func TestExplainTraces(t *testing.T) {
	cfg := testConfig()
	cfg.CacheEntries = -1 // every query runs the cascade (no cache short-circuit)
	srv, hs := testServer(t, cfg)
	name := srv.DefaultName()
	q := queryFor(t, srv)

	before := queryWork(t, hs.URL)
	body := postJSON(t, hs.URL+"/v1/datasets/"+name+"/match",
		map[string]any{"query": q, "explain": true}, http.StatusOK)
	after := queryWork(t, hs.URL)

	tr := traceFrom(t, body)
	spans, _ := tr["spans"].([]any)
	if len(spans) == 0 {
		t.Fatal("match trace has no spans")
	}
	work := workOf(tr)
	for _, k := range []string{"repsExamined", "dtwComputed"} {
		delta := after[k] - before[k]
		got, _ := work[k].(float64)
		if math.Abs(got-delta) > 0 {
			t.Errorf("work[%q] = %v, but /v1/stats delta = %v", k, got, delta)
		}
	}
	if after["queries"]-before["queries"] != 1 {
		t.Errorf("queries delta = %v, want 1", after["queries"]-before["queries"])
	}

	// ?explain=1 is equivalent to the body field; k-NN and range also trace.
	body = postJSON(t, hs.URL+"/v1/datasets/"+name+"/match?explain=1",
		map[string]any{"query": q, "k": 3}, http.StatusOK)
	traceFrom(t, body)
	body = postJSON(t, hs.URL+"/v1/datasets/"+name+"/range",
		map[string]any{"query": q, "length": len(q), "radius": 0.5, "explain": true}, http.StatusOK)
	traceFrom(t, body)
	body = getJSON(t, fmt.Sprintf("%s/v1/datasets/%s/seasonal?length=%d&explain=1", hs.URL, name, len(q)),
		http.StatusOK)
	tr = traceFrom(t, body)
	if spans, _ := tr["spans"].([]any); len(spans) == 0 {
		t.Error("seasonal trace has no spans")
	}

	// Without explain the response keeps its original shape.
	body = postJSON(t, hs.URL+"/v1/datasets/"+name+"/match",
		map[string]any{"query": q}, http.StatusOK)
	if _, ok := body["trace"]; ok {
		t.Error("unexplained response leaked a trace")
	}
}

// TestRequestIDRoundTrip checks the middleware mints an id, honors a
// well-formed inbound X-Request-Id, and threads it into the trace.
func TestRequestIDRoundTrip(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	name := srv.DefaultName()

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("no X-Request-Id minted on plain request")
	}

	q := queryFor(t, srv)
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/datasets/"+name+"/match?explain=1",
		strings.NewReader(fmt.Sprintf(`{"query": %s}`, floatsJSON(q))))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "client-chosen-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-chosen-42" {
		t.Errorf("X-Request-Id echoed %q, want client-chosen-42", got)
	}
	if !strings.Contains(string(raw), `"requestId":"client-chosen-42"`) {
		t.Errorf("trace does not carry the inbound request id: %s", raw)
	}
}

func floatsJSON(q []float64) string {
	parts := make([]string, len(q))
	for i, v := range q {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// TestDebugSlow checks queries land in the slow buffer with their traces.
func TestDebugSlow(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	name := srv.DefaultName()
	q := queryFor(t, srv)
	postJSON(t, hs.URL+"/v1/datasets/"+name+"/match", map[string]any{"query": q}, http.StatusOK)

	body := getJSON(t, hs.URL+"/v1/debug/slow", http.StatusOK)
	count, _ := body["count"].(float64)
	if count < 1 {
		t.Fatalf("slow buffer empty after a query: %v", body)
	}
	entries, _ := body["slow"].([]any)
	e, _ := entries[0].(map[string]any)
	if e["family"] == "" || e["dataset"] != name {
		t.Errorf("slow entry missing family/dataset: %v", e)
	}
	if _, ok := e["trace"].(map[string]any); !ok {
		t.Errorf("slow entry has no trace: %v", e)
	}
}

// TestJobExplain checks single-form jobs run traced: with explain the job
// result carries the trace, and the slow log tags the entry with the job id.
func TestJobExplain(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	name := srv.DefaultName()
	q := queryFor(t, srv)

	body := postJSON(t, hs.URL+"/v1/datasets/"+name+"/match/jobs",
		map[string]any{"query": q, "explain": true}, http.StatusAccepted)
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("no job id: %v", body)
	}
	deadline := time.Now().Add(5 * time.Second)
	var job map[string]any
	for {
		job = getJSON(t, hs.URL+"/v1/jobs/"+id, http.StatusOK)
		if st, _ := job["state"].(string); st == "done" || st == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %v", job)
		}
		time.Sleep(5 * time.Millisecond)
	}
	result, _ := job["result"].(map[string]any)
	if result == nil {
		t.Fatalf("job has no result: %v", job)
	}
	traceFrom(t, result)

	slow := getJSON(t, hs.URL+"/v1/debug/slow", http.StatusOK)
	entries, _ := slow["slow"].([]any)
	found := false
	for _, raw := range entries {
		if e, _ := raw.(map[string]any); e != nil && e["jobId"] == id {
			found = true
		}
	}
	if !found {
		t.Errorf("no slow entry tagged with job id %s: %v", id, slow)
	}
}

// TestMetricsExposition scrapes /metrics and validates the Prometheus text
// format properties a scraper relies on: the content type, required
// families, histogram bucket monotonicity and the +Inf bucket == _count
// invariant.
func TestMetricsExposition(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	name := srv.DefaultName()
	q := queryFor(t, srv)
	postJSON(t, hs.URL+"/v1/datasets/"+name+"/match", map[string]any{"query": q}, http.StatusOK)
	postJSON(t, hs.URL+"/v1/datasets/"+name+"/match", map[string]any{"query": q}, http.StatusOK)

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text/plain; version=0.0.4", ct)
	}

	seen := map[string]bool{}
	// route → ordered cumulative bucket values, plus _count per route.
	buckets := map[string][]float64{}
	counts := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 3 && fields[1] == "HELP" {
				seen[fields[2]] = true
			}
			continue
		}
		// Label values may contain spaces ("POST /v1/..."), so the value
		// is whatever follows the final space.
		cut := strings.LastIndexByte(line, ' ')
		if cut < 0 {
			t.Fatalf("sample line %q: no value field", line)
		}
		val, err := strconv.ParseFloat(line[cut+1:], 64)
		if err != nil {
			t.Fatalf("sample line %q: bad value: %v", line, err)
		}
		metric := line[:cut]
		switch {
		case strings.HasPrefix(metric, "onex_http_request_duration_seconds_bucket{"):
			route := labelValue(t, metric, "route")
			buckets[route] = append(buckets[route], val)
		case strings.HasPrefix(metric, "onex_http_request_duration_seconds_count{"):
			counts[labelValue(t, metric, "route")] = val
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for _, fam := range []string{
		"onex_http_request_duration_seconds", "onex_http_requests_total",
		"onex_cache_lookups_total", "onex_query_work_total",
		"onex_lifecycle_events_total", "onex_datasets", "onex_jobs_total",
		"onex_goroutines", "onex_uptime_seconds",
	} {
		if !seen[fam] {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets exposed")
	}
	for route, bs := range buckets {
		for i := 1; i < len(bs); i++ {
			if bs[i] < bs[i-1] {
				t.Errorf("route %s: bucket %d decreases (%v < %v)", route, i, bs[i], bs[i-1])
			}
		}
		if got := bs[len(bs)-1]; got != counts[route] {
			t.Errorf("route %s: +Inf bucket %v != _count %v", route, got, counts[route])
		}
	}
}

// labelValue extracts one label value from a metric sample name.
func labelValue(t *testing.T, metric, label string) string {
	t.Helper()
	i := strings.Index(metric, label+`="`)
	if i < 0 {
		t.Fatalf("metric %q has no %s label", metric, label)
	}
	rest := metric[i+len(label)+2:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		t.Fatalf("metric %q: unterminated %s label", metric, label)
	}
	return rest[:j]
}
