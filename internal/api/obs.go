package api

import (
	"context"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"time"

	"onex/internal/hub"
	"onex/internal/metrics"
	"onex/internal/obs"
	"onex/internal/shardrpc"
)

// slowLogCap bounds the slow-query buffer behind GET /v1/debug/slow.
const slowLogCap = 64

// requestIDFrom returns the request id the middleware minted (or honored
// from an inbound X-Request-Id); "" outside the middleware (tests calling
// handlers directly).
func requestIDFrom(ctx context.Context) string {
	return obs.RequestIDFromContext(ctx)
}

// statusRecorder captures the response status (and the machine-readable
// error code writeErr assigns) so the middleware can log and count it.
// Handlers that never call WriteHeader report 200, like net/http.
type statusRecorder struct {
	http.ResponseWriter
	status  int
	errCode string
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// setErrCode is the interface writeErr feeds the error code back through.
func (r *statusRecorder) setErrCode(code string) { r.errCode = code }

// reqKey labels one cell of the route×status request counter.
type reqKey struct {
	route  string
	status int
}

// countRequest ticks the route×status counter behind /metrics.
func (s *Server) countRequest(route string, status int) {
	s.reqMu.Lock()
	if s.reqCounts == nil {
		s.reqCounts = make(map[reqKey]uint64)
	}
	s.reqCounts[reqKey{route, status}]++
	s.reqMu.Unlock()
}

// requestCounts snapshots the route×status counters in deterministic order.
func (s *Server) requestCounts() ([]reqKey, map[reqKey]uint64) {
	s.reqMu.Lock()
	counts := make(map[reqKey]uint64, len(s.reqCounts))
	keys := make([]reqKey, 0, len(s.reqCounts))
	for k, v := range s.reqCounts {
		counts[k] = v
		keys = append(keys, k)
	}
	s.reqMu.Unlock()
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].route != keys[b].route {
			return keys[a].route < keys[b].route
		}
		return keys[a].status < keys[b].status
	})
	return keys, counts
}

// timed wraps every route: it mints (or honors) the request id, echoes it on
// X-Request-Id, records the route latency histogram and route×status
// counter, and emits one structured request log line — at warn level with a
// slowQuery marker when the request exceeds Config.SlowQuery.
func (s *Server) timed(pattern string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := obs.SanitizeRequestID(r.Header.Get("X-Request-Id"))
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		w.Header().Set("X-Request-Id", reqID)
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r.WithContext(obs.ContextWithRequestID(r.Context(), reqID)))
		d := time.Since(start)
		s.metrics.Observe(pattern, d)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.countRequest(pattern, rec.status)

		attrs := []any{
			"requestId", reqID,
			"method", r.Method,
			"route", pattern,
			"status", rec.status,
			"durMs", float64(d.Microseconds()) / 1e3,
		}
		if name := r.PathValue("name"); name != "" {
			attrs = append(attrs, "dataset", name)
		}
		if rec.errCode != "" {
			attrs = append(attrs, "code", rec.errCode)
		}
		switch {
		case s.slowQuery > 0 && d >= s.slowQuery:
			s.logger.Warn("slow request", append(attrs, "slowQuery", true)...)
		case rec.status >= 500:
			s.logger.Error("request", attrs...)
		default:
			s.logger.Info("request", attrs...)
		}
	}
}

// explainRequested reports the ?explain=1 query-string opt-in (the JSON
// bodies additionally carry an "explain" field; either enables the trace).
func explainRequested(r *http.Request) bool {
	switch r.URL.Query().Get("explain") {
	case "1", "true":
		return true
	}
	return false
}

// transportOf classifies how a dataset's shards are reached: "remote" with
// the worker address set when the base fans out over shardrpc, "local"
// otherwise. A nil dataset (job entries recorded after a drop) is local.
func transportOf(ds *hub.Dataset) (string, []string) {
	if ds != nil {
		if workers := ds.Workers(); len(workers) > 0 {
			return "remote", workers
		}
	}
	return "local", nil
}

// explained wraps a query result with its trace for explain-enabled
// requests: {"result": <the normal response body>, "trace": {...},
// "transport": "local"|"remote"} plus the shard-worker address set when the
// dataset is served over shardrpc.
func explained(result any, tr *obs.Trace, ds *hub.Dataset) any {
	kind, workers := transportOf(ds)
	body := map[string]any{"result": result, "trace": tr.Snapshot(), "transport": kind}
	if len(workers) > 0 {
		body["workers"] = workers
	}
	return body
}

// recordSlow feeds one finished query into the slow-query buffer (which
// keeps only the slowest slowLogCap entries; recording is always cheap).
func (s *Server) recordSlow(route string, ds *hub.Dataset, family, jobID string, tr *obs.Trace) {
	v := tr.Snapshot()
	kind, workers := transportOf(ds)
	var dataset string
	if ds != nil {
		dataset = ds.Name()
	}
	s.slow.Record(obs.SlowEntry{
		RequestID:      v.RequestID,
		Route:          route,
		Dataset:        dataset,
		Family:         family,
		JobID:          jobID,
		Transport:      kind,
		Workers:        workers,
		Time:           time.Now(),
		DurationMicros: v.DurationMicros,
		Trace:          v,
	})
}

// handleDebugSlow serves GET /v1/debug/slow: the retained slowest traced
// queries, slowest first.
func (s *Server) handleDebugSlow(w http.ResponseWriter, _ *http.Request) {
	entries := s.slow.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{"count": len(entries), "slow": entries})
}

// mountPprof exposes the net/http/pprof handlers (Config.Pprof gated —
// profiling endpoints leak memory contents and must be opt-in).
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// handleMetrics serves GET /metrics in Prometheus text exposition format
// 0.0.4 — hand-rolled over the same counters /v1/stats reports, with the
// per-route latency histograms rendered as native cumulative histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	pw := metricsWriter(w, s)
	if err := pw.Err(); err != nil {
		s.logger.Error("metrics exposition", "error", err)
	}
}

// metricsWriter renders every exposed family; split from the handler so the
// sticky-error writer is testable.
func metricsWriter(w io.Writer, s *Server) *metrics.PromWriter {
	pw := metrics.NewPromWriter(w)

	// Per-route latency histograms.
	pw.Header("onex_http_request_duration_seconds", "HTTP request latency by route.", "histogram")
	s.metrics.Each(func(name string, h *metrics.Histogram) {
		pw.Hist("onex_http_request_duration_seconds", []metrics.Label{{Name: "route", Value: name}}, h)
	})

	// Route×status request counter.
	pw.Header("onex_http_requests_total", "HTTP requests by route and status.", "counter")
	keys, counts := s.requestCounts()
	for _, k := range keys {
		pw.Sample("onex_http_requests_total",
			[]metrics.Label{{Name: "route", Value: k.route}, {Name: "status", Value: strconv.Itoa(k.status)}},
			float64(counts[k]))
	}

	hs := s.hub.Stats()

	// Result cache.
	pw.Header("onex_cache_lookups_total", "Query result cache lookups by outcome.", "counter")
	pw.Sample("onex_cache_lookups_total", []metrics.Label{{Name: "outcome", Value: "hit"}}, float64(hs.Cache.Hits))
	pw.Sample("onex_cache_lookups_total", []metrics.Label{{Name: "outcome", Value: "miss"}}, float64(hs.Cache.Misses))
	pw.Header("onex_cache_evictions_total", "Query result cache LRU evictions.", "counter")
	pw.Sample("onex_cache_evictions_total", nil, float64(hs.Cache.Evictions))
	pw.Header("onex_cache_entries", "Query result cache resident entries.", "gauge")
	pw.Sample("onex_cache_entries", nil, float64(hs.Cache.Entries))

	// Query work counters (summed over ready datasets).
	pw.Header("onex_query_work_total", "Online query work by kind (see /v1/stats).", "counter")
	for _, kv := range []struct {
		kind string
		v    uint64
	}{
		{"queries", hs.Query.Queries},
		{"repsExamined", hs.Query.RepsExamined},
		{"prunedByKim", hs.Query.PrunedByKim},
		{"prunedByKeogh", hs.Query.PrunedByKeogh},
		{"dtwComputed", hs.Query.DTWComputed},
		{"membersTested", hs.Query.MembersTested},
	} {
		pw.Sample("onex_query_work_total", []metrics.Label{{Name: "kind", Value: kv.kind}}, float64(kv.v))
	}

	// Lifecycle events.
	pw.Header("onex_lifecycle_events_total", "Dataset lifecycle events since start.", "counter")
	for _, kv := range []struct {
		event string
		v     uint64
	}{
		{"build", hs.Events.Builds},
		{"build_failure", hs.Events.BuildFailures},
		{"extend", hs.Events.Extends},
		{"append", hs.Events.Appends},
		{"rebuild", hs.Events.Rebuilds},
	} {
		pw.Sample("onex_lifecycle_events_total", []metrics.Label{{Name: "event", Value: kv.event}}, float64(kv.v))
	}

	// Dataset states.
	pw.Header("onex_datasets", "Cataloged datasets by lifecycle state.", "gauge")
	states := make([]string, 0, len(hs.ByState))
	for st := range hs.ByState {
		states = append(states, st)
	}
	sort.Strings(states)
	for _, st := range states {
		pw.Sample("onex_datasets", []metrics.Label{{Name: "state", Value: st}}, float64(hs.ByState[st]))
	}

	// Jobs lifecycle.
	js := s.jobs.Stats()
	pw.Header("onex_jobs_total", "Async job lifecycle counters.", "counter")
	for _, kv := range []struct {
		event string
		v     uint64
	}{
		{"submitted", js.Submitted},
		{"rejected", js.Rejected},
		{"done", js.Done},
		{"failed", js.Failed},
		{"canceled", js.Canceled},
		{"evicted", js.Evicted},
	} {
		pw.Sample("onex_jobs_total", []metrics.Label{{Name: "event", Value: kv.event}}, float64(kv.v))
	}

	// Shard-worker fleet health (empty unless remote transports are in use).
	shardrpc.Fleet().WriteProm(pw)

	// Go runtime basics.
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	pw.Header("onex_goroutines", "Current goroutine count.", "gauge")
	pw.Sample("onex_goroutines", nil, float64(runtime.NumGoroutine()))
	pw.Header("onex_heap_alloc_bytes", "Bytes of allocated heap objects.", "gauge")
	pw.Sample("onex_heap_alloc_bytes", nil, float64(mem.HeapAlloc))
	pw.Header("onex_uptime_seconds", "Seconds since the server started.", "gauge")
	pw.Sample("onex_uptime_seconds", nil, time.Since(s.started).Seconds())
	return pw
}
