package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"
)

// benchServer builds a serving stack once per benchmark binary.
func benchServer(tb testing.TB) (*Server, *httptest.Server, []float64) {
	tb.Helper()
	srv, err := New(testConfig())
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(srv.Close)
	hs := httptest.NewServer(srv.Routes())
	tb.Cleanup(hs.Close)
	info, err := srv.DefaultInfo()
	if err != nil {
		tb.Fatal(err)
	}
	l := info.Lengths[len(info.Lengths)/2]
	q := make([]float64, l)
	for i := range q {
		q[i] = 0.5
	}
	return srv, hs, q
}

func postMatch(tb testing.TB, client *http.Client, url string, q []float64) {
	tb.Helper()
	data, err := json.Marshal(matchItem{Query: q})
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		tb.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("match: code %d", resp.StatusCode)
	}
}

// BenchmarkServeMatchCold measures the uncached /match path: every
// iteration perturbs the query so the result cache misses.
func BenchmarkServeMatchCold(b *testing.B) {
	_, hs, q := benchServer(b)
	url := hs.URL + "/v1/datasets/ItalyPower/match"
	client := &http.Client{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qq := append([]float64(nil), q...)
		qq[0] += float64(i) * 1e-9
		postMatch(b, client, url, qq)
	}
}

// BenchmarkServeMatchCached measures the cache-hit /match path: identical
// query every iteration.
func BenchmarkServeMatchCached(b *testing.B) {
	_, hs, q := benchServer(b)
	url := hs.URL + "/v1/datasets/ItalyPower/match"
	client := &http.Client{}
	postMatch(b, client, url, q) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postMatch(b, client, url, q)
	}
}

// TestEmitServeBench writes BENCH_serve.json (cold vs cached /match
// latency over the HTTP stack) when ONEX_BENCH_OUT names the output file;
// `make bench-serve` and the CI serve-smoke job drive it.
func TestEmitServeBench(t *testing.T) {
	out := os.Getenv("ONEX_BENCH_OUT")
	if out == "" {
		t.Skip("set ONEX_BENCH_OUT=<file> to emit the serving benchmark artifact")
	}
	srv, hs, q := benchServer(t)
	url := hs.URL + "/v1/datasets/ItalyPower/match"
	client := &http.Client{}

	const rounds = 60
	measure := func(perturb bool) []time.Duration {
		lat := make([]time.Duration, 0, rounds)
		for i := 0; i < rounds; i++ {
			qq := q
			if perturb {
				qq = append([]float64(nil), q...)
				qq[0] += float64(i+1) * 1e-9
			}
			start := time.Now()
			postMatch(t, client, url, qq)
			lat = append(lat, time.Since(start))
		}
		return lat
	}
	cold := measure(true)
	postMatch(t, client, url, q) // warm the identical-query entry
	cached := measure(false)

	stats := func(lat []time.Duration) (p50, mean float64) {
		sorted := append([]time.Duration(nil), lat...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum time.Duration
		for _, d := range sorted {
			sum += d
		}
		return float64(sorted[len(sorted)/2].Nanoseconds()),
			float64(sum.Nanoseconds()) / float64(len(sorted))
	}
	coldP50, coldMean := stats(cold)
	cachedP50, cachedMean := stats(cached)
	info, err := srv.DefaultInfo()
	if err != nil {
		t.Fatal(err)
	}

	artifact := map[string]any{
		"benchmark":       "serve_match_cold_vs_cached",
		"dataset":         info.Name,
		"representatives": info.Representatives,
		"queryLength":     len(q),
		"rounds":          rounds,
		"coldNsP50":       coldP50,
		"coldNsMean":      coldMean,
		"cachedNsP50":     cachedP50,
		"cachedNsMean":    cachedMean,
		"speedupP50":      coldP50 / cachedP50,
		"cacheHits":       info.CacheHits,
		"cacheMisses":     info.CacheMisses,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("serve bench: cold p50 %.0fns, cached p50 %.0fns (%.1fx) → %s\n",
		coldP50, cachedP50, coldP50/cachedP50, out)
	if info.CacheHits < rounds {
		t.Errorf("cache hits = %d, want ≥ %d (cached rounds must hit)", info.CacheHits, rounds)
	}
}
