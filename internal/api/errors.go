package api

import (
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"

	"onex"
	"onex/internal/hub"
	"onex/internal/jobs"
	"onex/internal/shardrpc"
)

// Machine-readable error codes, carried in every error envelope's "code"
// field (and in per-item batch errors). Clients should branch on these, not
// on the human-readable message.
const (
	CodeInvalidArgument = "invalid_argument" // 400: malformed request or parameters
	CodeForbidden       = "forbidden"        // 403: filesystem sources without -allow-fs
	CodeNotFound        = "not_found"        // 404: unknown dataset or job
	CodeAlreadyExists   = "already_exists"   // 409: dataset name taken
	CodeNotReady        = "not_ready"        // 409: dataset still building
	CodeConflict        = "conflict"         // 409: concurrent maintenance collision
	CodeDeprecated      = "deprecated"       // 410: legacy endpoint without -legacy
	CodeTooLarge        = "too_large"        // 413: body over the size cap
	CodeBuildFailed     = "build_failed"     // 500: dataset build failed
	CodeInternal        = "internal"         // 500: unexpected server-side failure
	CodeUnavailable     = "unavailable"      // 503: shutting down or job table full
	CodeCanceled        = "canceled"         // job canceled via DELETE or shutdown
)

// apiError is an error with a pinned HTTP status and machine code.
type apiError struct {
	status int
	code   string
	msg    string
}

func (e apiError) Error() string { return e.msg }

// badRequest builds the common 400 invalid_argument error.
func badRequest(msg string) apiError {
	return apiError{http.StatusBadRequest, CodeInvalidArgument, msg}
}

// classify maps any error onto its HTTP status and machine code. The
// default is 400/invalid_argument: errors bubbling out of the engine
// (unindexed length, empty query, non-finite values) are client mistakes.
func classify(err error) (status int, code string) {
	var ae apiError
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &ae):
		return ae.status, ae.code
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge, CodeTooLarge
	case errors.Is(err, hub.ErrNotFound):
		return http.StatusNotFound, CodeNotFound
	case errors.Is(err, hub.ErrExists):
		return http.StatusConflict, CodeAlreadyExists
	case errors.Is(err, hub.ErrNotReady):
		return http.StatusConflict, CodeNotReady
	case errors.Is(err, hub.ErrConflict):
		return http.StatusConflict, CodeConflict
	case errors.Is(err, hub.ErrFailed):
		return http.StatusInternalServerError, CodeBuildFailed
	case errors.Is(err, jobs.ErrCanceled):
		return http.StatusServiceUnavailable, CodeCanceled
	case errors.Is(err, jobs.ErrTableFull), errors.Is(err, jobs.ErrClosed),
		errors.Is(err, hub.ErrClosed), errors.Is(err, onex.ErrBuildCanceled),
		errors.Is(err, shardrpc.ErrUnavailable):
		// A shard worker that stays unreachable through the retry budget is a
		// (hopefully transient) serving-infrastructure failure: 503 so clients
		// retry, never 400.
		// A drift-triggered rebuild inside an append/extend handler aborts
		// with ErrBuildCanceled when the hub shuts down mid-request — a
		// server condition, not a client error. Likewise a full job table.
		return http.StatusServiceUnavailable, CodeUnavailable
	}
	return http.StatusBadRequest, CodeInvalidArgument
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Error("onex-server: response encode", "error", err)
	}
}

// writeErr renders err as the uniform {"error", "code"} envelope with the
// status classify assigns. When w is the middleware's status recorder the
// machine code is fed back so the request log line carries it.
func writeErr(w http.ResponseWriter, err error) {
	status, code := classify(err)
	if rec, ok := w.(interface{ setErrCode(string) }); ok {
		rec.setErrCode(code)
	}
	writeJSON(w, status, map[string]string{"error": err.Error(), "code": code})
}
