package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testConfig() Config {
	// Legacy is on so the deprecated-endpoint tests can exercise the old
	// surface; the gating itself is covered by TestLegacyGating.
	return Config{
		Generator: "ItalyPower", ST: 0.25, Lengths: 6, Scale: 0.2, Seed: 1,
		Legacy: true,
	}
}

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv.Routes())
	t.Cleanup(hs.Close)
	return srv, hs
}

// newTestHTTP wires an httptest server around srv without tying srv's
// lifetime to the test (for shutdown-semantics tests that Close early).
func newTestHTTP(t *testing.T, srv *Server) string {
	t.Helper()
	hs := httptest.NewServer(srv.Routes())
	t.Cleanup(hs.Close)
	return hs.URL
}

func doJSON(t *testing.T, method, url string, body any, wantCode int) map[string]any {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: code %d, want %d (body %s)", method, url, resp.StatusCode, wantCode, raw)
	}
	var out map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("%s %s: non-JSON body %q: %v", method, url, raw, err)
		}
	}
	return out
}

func getJSON(t *testing.T, url string, wantCode int) map[string]any {
	t.Helper()
	return doJSON(t, http.MethodGet, url, nil, wantCode)
}

func postJSON(t *testing.T, url string, body any, wantCode int) map[string]any {
	t.Helper()
	return doJSON(t, http.MethodPost, url, body, wantCode)
}

// queryFor returns a query vector of an indexed length of the default
// dataset.
func queryFor(t *testing.T, srv *Server) []float64 {
	t.Helper()
	info, err := srv.DefaultInfo()
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Lengths) == 0 {
		t.Fatal("default dataset has no indexed lengths")
	}
	l := info.Lengths[len(info.Lengths)/2]
	q := make([]float64, l)
	for i := range q {
		q[i] = 0.5
	}
	return q
}

// ---- legacy surface ----------------------------------------------------

func TestServerHealthAndLegacyStats(t *testing.T) {
	_, hs := testServer(t, testConfig())
	health := getJSON(t, hs.URL+"/healthz", http.StatusOK)
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}
	stats := getJSON(t, hs.URL+"/stats", http.StatusOK)
	if stats["dataset"] != "ItalyPower" {
		t.Errorf("stats dataset = %v", stats["dataset"])
	}
	if reps, ok := stats["representatives"].(float64); !ok || reps <= 0 {
		t.Errorf("stats representatives = %v", stats["representatives"])
	}
}

func TestServerLegacyMatch(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	q := queryFor(t, srv)
	out := postJSON(t, hs.URL+"/match", matchItem{Query: q, Mode: "exact"}, http.StatusOK)
	if out["length"].(float64) != float64(len(q)) {
		t.Errorf("match length = %v, want %d", out["length"], len(q))
	}
	out = postJSON(t, hs.URL+"/match", matchItem{Query: q, Mode: "any", K: 3}, http.StatusOK)
	if ms, ok := out["matches"].([]any); !ok || len(ms) != 3 {
		t.Errorf("k-NN returned %v", out)
	}
}

func TestServerLegacyRangeSeasonalRecommend(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	q := queryFor(t, srv)
	l := len(q)
	out := postJSON(t, hs.URL+"/range", rangeItem{Query: q, Length: l, Radius: 0.5}, http.StatusOK)
	if _, ok := out["count"].(float64); !ok {
		t.Errorf("range response: %v", out)
	}
	postJSON(t, hs.URL+"/range", rangeItem{Query: q, Length: l, Radius: -1}, http.StatusBadRequest)

	out = getJSON(t, fmt.Sprintf("%s/seasonal?length=%d", hs.URL, l), http.StatusOK)
	if _, ok := out["count"].(float64); !ok {
		t.Errorf("seasonal response: %v", out)
	}
	getJSON(t, fmt.Sprintf("%s/seasonal?series=0&length=%d", hs.URL, l), http.StatusOK)
	getJSON(t, hs.URL+"/seasonal?length=abc", http.StatusBadRequest)
	getJSON(t, fmt.Sprintf("%s/seasonal?series=xyz&length=%d", hs.URL, l), http.StatusBadRequest)

	out = getJSON(t, hs.URL+"/recommend?degree=S", http.StatusOK)
	if out["degree"] != "S" || out["low"].(float64) != 0 {
		t.Errorf("recommend = %v", out)
	}
	// Loose's +Inf upper bound must arrive as null, not as an encoding
	// failure behind an already-sent 200 (regression: empty body).
	out = getJSON(t, hs.URL+"/recommend?degree=L", http.StatusOK)
	if out["degree"] != "L" || out["low"].(float64) <= 0 || out["high"] != nil {
		t.Errorf("recommend L = %v, want positive low and null high", out)
	}
	getJSON(t, hs.URL+"/recommend?degree=Q", http.StatusBadRequest)
	getJSON(t, hs.URL+"/recommend?degree=M&length=abc", http.StatusBadRequest)
}

// ---- v1 lifecycle ------------------------------------------------------

func TestV1RegisterListQueryDrop(t *testing.T) {
	_, hs := testServer(t, testConfig())

	// Register a second dataset and wait for the build inline.
	out := postJSON(t, hs.URL+"/v1/datasets", registerRequest{
		Name: "ecg", Generator: "ECG", Scale: 0.05, ST: 0.25, Lengths: 5, Seed: 2, Wait: true,
	}, http.StatusCreated)
	if out["state"] != "ready" {
		t.Fatalf("registered dataset state = %v", out["state"])
	}

	list := getJSON(t, hs.URL+"/v1/datasets", http.StatusOK)
	if list["count"].(float64) != 2 {
		t.Errorf("list count = %v, want 2", list["count"])
	}

	info := getJSON(t, hs.URL+"/v1/datasets/ecg", http.StatusOK)
	lengths := info["lengths"].([]any)
	l := int(lengths[len(lengths)/2].(float64))
	q := make([]float64, l)
	for i := range q {
		q[i] = 0.4
	}
	// Query both datasets through the v1 routes.
	postJSON(t, hs.URL+"/v1/datasets/ecg/match", matchItem{Query: q, Mode: "exact"}, http.StatusOK)
	postJSON(t, hs.URL+"/v1/datasets/ecg/range", rangeItem{Query: q, Length: l, Radius: 0.4}, http.StatusOK)
	getJSON(t, fmt.Sprintf("%s/v1/datasets/ecg/seasonal?length=%d", hs.URL, l), http.StatusOK)
	getJSON(t, hs.URL+"/v1/datasets/ecg/recommend?degree=M", http.StatusOK)
	st := getJSON(t, hs.URL+"/v1/datasets/ecg/stats", http.StatusOK)
	if st["name"] != "ecg" || st["state"] != "ready" {
		t.Errorf("dataset stats = %v", st)
	}
	getJSON(t, hs.URL+"/v1/datasets/ItalyPower", http.StatusOK)

	// Drop and verify it is gone.
	doJSON(t, http.MethodDelete, hs.URL+"/v1/datasets/ecg", nil, http.StatusOK)
	getJSON(t, hs.URL+"/v1/datasets/ecg", http.StatusNotFound)
	postJSON(t, hs.URL+"/v1/datasets/ecg/match", matchItem{Query: q}, http.StatusNotFound)
	doJSON(t, http.MethodDelete, hs.URL+"/v1/datasets/ecg", nil, http.StatusNotFound)
}

func TestV1RegisterInlineSeries(t *testing.T) {
	_, hs := testServer(t, testConfig())
	series := make([]seriesJSON, 6)
	for i := range series {
		v := make([]float64, 20)
		for j := range v {
			v[j] = float64((i+1)*j%7) / 7
		}
		series[i] = seriesJSON{Label: "row", Values: v}
	}
	out := postJSON(t, hs.URL+"/v1/datasets", registerRequest{
		Name: "inline", Series: series, ST: 0.3, Lengths: 4, Wait: true,
	}, http.StatusCreated)
	if out["series"].(float64) != 6 {
		t.Errorf("inline series count = %v", out["series"])
	}
}

func TestV1RegisterErrors(t *testing.T) {
	_, hs := testServer(t, testConfig())
	// Missing name.
	postJSON(t, hs.URL+"/v1/datasets", registerRequest{Generator: "ECG"}, http.StatusBadRequest)
	// No source.
	postJSON(t, hs.URL+"/v1/datasets", registerRequest{Name: "x"}, http.StatusBadRequest)
	// Two sources.
	postJSON(t, hs.URL+"/v1/datasets",
		registerRequest{Name: "x", Generator: "ECG",
			Series: []seriesJSON{{Values: []float64{1, 2}}}}, http.StatusBadRequest)
	// Filesystem sources are forbidden unless the server opts in.
	postJSON(t, hs.URL+"/v1/datasets",
		registerRequest{Name: "x", Path: "/etc/passwd"}, http.StatusForbidden)
	postJSON(t, hs.URL+"/v1/datasets",
		registerRequest{Name: "x", Snapshot: "/etc/passwd"}, http.StatusForbidden)
	// Invalid name.
	postJSON(t, hs.URL+"/v1/datasets", registerRequest{Name: "no spaces", Generator: "ECG"}, http.StatusBadRequest)
	// Duplicate of the default dataset.
	postJSON(t, hs.URL+"/v1/datasets",
		registerRequest{Name: "ItalyPower", Generator: "ItalyPower"}, http.StatusConflict)
	// Unknown generator fails the build; with wait the error surfaces as 500.
	postJSON(t, hs.URL+"/v1/datasets",
		registerRequest{Name: "bogus", Generator: "NotADataset", Wait: true}, http.StatusInternalServerError)
	// ... and the dataset reports failed afterwards.
	info := getJSON(t, hs.URL+"/v1/datasets/bogus", http.StatusOK)
	if info["state"] != "failed" {
		t.Errorf("bogus dataset state = %v", info["state"])
	}
	// Queries against the failed dataset return 500.
	postJSON(t, hs.URL+"/v1/datasets/bogus/match", matchItem{Query: []float64{1}}, http.StatusInternalServerError)
}

// ---- validation drift --------------------------------------------------

func TestRequestValidation(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	q := queryFor(t, srv)

	assertErrorShape := func(t *testing.T, resp *http.Response, wantCode int) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("code %d, want %d", resp.StatusCode, wantCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("error body is not JSON: %v", err)
		}
		if msg, ok := out["error"].(string); !ok || msg == "" {
			t.Fatalf(`error body missing "error": %v`, out)
		}
	}

	// Unknown fields are rejected on every JSON endpoint.
	for _, url := range []string{hs.URL + "/match", hs.URL + "/v1/datasets/ItalyPower/match"} {
		resp, err := http.Post(url, "application/json",
			strings.NewReader(`{"query":[1,2],"bogus":true}`))
		if err != nil {
			t.Fatal(err)
		}
		assertErrorShape(t, resp, http.StatusBadRequest)
	}
	resp, err := http.Post(hs.URL+"/v1/datasets", "application/json",
		strings.NewReader(`{"name":"x","generator":"ECG","surprise":1}`))
	if err != nil {
		t.Fatal(err)
	}
	assertErrorShape(t, resp, http.StatusBadRequest)

	// Trailing garbage after the JSON object.
	resp, err = http.Post(hs.URL+"/match", "application/json",
		strings.NewReader(`{"query":[1,2]} extra`))
	if err != nil {
		t.Fatal(err)
	}
	assertErrorShape(t, resp, http.StatusBadRequest)

	// Truncated body.
	resp, err = http.Post(hs.URL+"/match", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	assertErrorShape(t, resp, http.StatusBadRequest)

	// Oversized body → 413.
	srvSmall, hsSmall := testServer(t, func() Config {
		c := testConfig()
		c.MaxBody = 64
		return c
	}())
	_ = srvSmall
	big := make([]float64, 64)
	data, _ := json.Marshal(matchItem{Query: big})
	resp, err = http.Post(hsSmall.URL+"/match", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	assertErrorShape(t, resp, http.StatusRequestEntityTooLarge)

	// Bad mode / negative k.
	postJSON(t, hs.URL+"/match", matchItem{Query: q, Mode: "bogus"}, http.StatusBadRequest)
	postJSON(t, hs.URL+"/match", matchItem{Query: q, K: -1}, http.StatusBadRequest)
	// Empty query.
	postJSON(t, hs.URL+"/match", matchItem{}, http.StatusBadRequest)
	// Wrong method.
	resp, err = http.Get(hs.URL + "/match")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /match: code %d, want 405", resp.StatusCode)
	}
	// Bad purge value.
	doJSON(t, http.MethodDelete, hs.URL+"/v1/datasets/ItalyPower?purge=maybe", nil, http.StatusBadRequest)
	// Empty extend.
	postJSON(t, hs.URL+"/v1/datasets/ItalyPower/extend", extendRequest{}, http.StatusBadRequest)
}

// ---- cache + concurrency (acceptance criteria) -------------------------

func TestV1CacheHitCounters(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	q := queryFor(t, srv)
	for i := 0; i < 3; i++ {
		postJSON(t, hs.URL+"/v1/datasets/ItalyPower/match", matchItem{Query: q}, http.StatusOK)
	}
	stats := getJSON(t, hs.URL+"/v1/stats", http.StatusOK)
	cache := stats["hub"].(map[string]any)["cache"].(map[string]any)
	if hits := cache["hits"].(float64); hits < 2 {
		t.Errorf("hub cache hits = %v, want ≥ 2 (identical repeated /match must be cached)", hits)
	}
	ds := getJSON(t, hs.URL+"/v1/datasets/ItalyPower/stats", http.StatusOK)
	if hits := ds["cacheHits"].(float64); hits < 2 {
		t.Errorf("dataset cache hits = %v, want ≥ 2", hits)
	}
}

func TestV1ConcurrentMatchWhileExtend(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	q := queryFor(t, srv)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	client := &http.Client{}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qq := append([]float64(nil), q...)
				qq[0] += float64(i%5) * 0.01
				data, _ := json.Marshal(matchItem{Query: qq})
				resp, err := client.Post(hs.URL+"/v1/datasets/ItalyPower/match",
					"application/json", bytes.NewReader(data))
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("worker %d: code %d", w, resp.StatusCode)
					return
				}
			}
		}(w)
	}

	newSeries := make([]seriesJSON, 1)
	for e := 0; e < 3; e++ {
		v := make([]float64, 24)
		for j := range v {
			v[j] = float64((e+2)*j%5) / 5
		}
		newSeries[0] = seriesJSON{Label: "new", Values: v}
		postJSON(t, hs.URL+"/v1/datasets/ItalyPower/extend", extendRequest{Series: newSeries}, http.StatusOK)
	}
	close(stop)
	wg.Wait()

	info, err := srv.DefaultInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 3 {
		t.Errorf("generation = %d, want 3 (one per extend)", info.Generation)
	}
}

func TestV1SnapshotDropReload(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.SnapshotDir = dir
	_, hs := testServer(t, cfg)

	out := postJSON(t, hs.URL+"/v1/datasets", registerRequest{
		Name: "snap", Generator: "ItalyPower", Scale: 0.15, ST: 0.25, Lengths: 5, Wait: true,
	}, http.StatusCreated)
	if out["fromSnapshot"] == true {
		t.Fatal("first build claims to come from a snapshot")
	}
	if _, err := os.Stat(filepath.Join(dir, "snap.onex")); err != nil {
		t.Fatalf("snapshot not persisted: %v", err)
	}

	doJSON(t, http.MethodDelete, hs.URL+"/v1/datasets/snap", nil, http.StatusOK)
	out = postJSON(t, hs.URL+"/v1/datasets", registerRequest{
		Name: "snap", Generator: "ItalyPower", Scale: 0.15, ST: 0.25, Lengths: 5, Wait: true,
	}, http.StatusCreated)
	if out["fromSnapshot"] != true {
		t.Error("re-register after drop did not reload the snapshot")
	}

	// purge=true deletes the snapshot; the next build is from scratch.
	doJSON(t, http.MethodDelete, hs.URL+"/v1/datasets/snap?purge=true", nil, http.StatusOK)
	if _, err := os.Stat(filepath.Join(dir, "snap.onex")); !os.IsNotExist(err) {
		t.Errorf("snapshot survived purge: %v", err)
	}
}

func TestV1RegisterFromSnapshotWithAllowFS(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.SnapshotDir = dir
	cfg.AllowFS = true
	_, hs := testServer(t, cfg)

	// The default dataset was snapshotted at startup; re-register it under
	// a new name straight from that file.
	snap := filepath.Join(dir, "ItalyPower.onex")
	if _, err := os.Stat(snap); err != nil {
		t.Fatal(err)
	}
	out := postJSON(t, hs.URL+"/v1/datasets", registerRequest{
		Name: "clone", Snapshot: snap, Wait: true,
	}, http.StatusCreated)
	if out["fromSnapshot"] != true || out["state"] != "ready" {
		t.Errorf("snapshot registration = %v", out)
	}
}

// ---- startup ----------------------------------------------------------

func TestNewServerErrors(t *testing.T) {
	bad := testConfig()
	bad.Generator = "NotADataset"
	if _, err := New(bad); err == nil {
		t.Error("unknown dataset: want error")
	}
	missing := testConfig()
	missing.DataPath = "/no/such/file.tsv"
	if _, err := New(missing); err == nil {
		t.Error("missing file: want error")
	}
	badST := testConfig()
	badST.ST = -1
	if _, err := New(badST); err == nil {
		t.Error("bad ST: want error")
	}
}

func TestDatasetNameFromPath(t *testing.T) {
	cases := map[string]string{
		"/data/ECG200.tsv":      "ECG200.tsv",
		"weird name!!.tsv":      "weird_name__.tsv",
		"/tmp/.hidden":          "d.hidden",
		"C:\\data\\f.tsv":       "f.tsv",
		strings.Repeat("x", 80): strings.Repeat("x", 64),
	}
	for in, want := range cases {
		if got := DatasetNameFromPath(in); got != want {
			t.Errorf("DatasetNameFromPath(%q) = %q, want %q", in, got, want)
		}
	}
}
