package api

import (
	"context"
	"encoding/json"
	"net/http"

	"onex"
	"onex/internal/hub"
	"onex/internal/jobs"
)

// jobChunk is how many batch items a job runs between cancel checks and
// progress updates: big enough to keep the scatter executor's cross-query
// parallelism fed, small enough that a DELETE lands within a few items'
// latency.
const jobChunk = 8

// batchItemOut is one positional result of a batch: exactly one of Result
// (the same JSON the family's single endpoint would return) or Error+Code.
type batchItemOut struct {
	Result any    `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
	Code   string `json:"code,omitempty"`
}

func itemErr(err error) batchItemOut {
	_, code := classify(err)
	return batchItemOut{Error: err.Error(), Code: code}
}

// envelope assembles the uniform batch response.
func envelope(items []batchItemOut) any {
	errs := 0
	for _, it := range items {
		if it.Error != "" {
			errs++
		}
	}
	return map[string]any{"count": len(items), "errors": errs, "results": items}
}

// checkCanceled reports a pending cancel on jc (nil for synchronous
// batches, which are not cancelable).
func checkCanceled(jc *jobs.Context) bool { return jc != nil && jc.Canceled() }

// runMatchBatch executes match/k-NN items through the hub's batch path
// (shared scatter executor and result cache) in jobChunk slices, reporting
// progress and honoring cancellation between slices. ctx carries the
// request id to remote shard workers and bounds their RPCs: synchronous
// handlers pass the request context, job bodies a detached one (the
// originating request ends at the 202).
func runMatchBatch(ctx context.Context, ds *hub.Dataset, items []matchItem, withValues bool, jc *jobs.Context) (any, error) {
	out := make([]batchItemOut, len(items))
	// Validate everything first so a bad item costs nothing.
	qs := make([]onex.KNNQuery, len(items))
	for i, it := range items {
		kq, err := it.toKNN()
		if err != nil {
			out[i] = itemErr(err)
			continue
		}
		qs[i] = kq
	}
	if jc != nil {
		jc.Progress(0, len(items))
	}
	for lo := 0; lo < len(items); lo += jobChunk {
		if checkCanceled(jc) {
			return nil, jobs.ErrCanceled
		}
		hi := min(lo+jobChunk, len(items))
		// Skip already-failed validations inside the chunk.
		chunk := make([]onex.KNNQuery, 0, hi-lo)
		idx := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if out[i].Error == "" {
				chunk = append(chunk, qs[i])
				idx = append(idx, i)
			}
		}
		if len(chunk) > 0 {
			rs, err := ds.KNNBatch(ctx, chunk)
			if err != nil {
				return nil, err
			}
			for j, r := range rs {
				i := idx[j]
				if r.Err != nil {
					out[i] = itemErr(r.Err)
					continue
				}
				out[i] = batchItemOut{Result: matchResult(qs[i].K, r.Matches, withValues)}
			}
		}
		if jc != nil {
			jc.Progress(hi, len(items))
		}
	}
	return envelope(out), nil
}

// runRangeBatch is runMatchBatch for the range family.
func runRangeBatch(ctx context.Context, ds *hub.Dataset, items []rangeItem, jc *jobs.Context) (any, error) {
	out := make([]batchItemOut, len(items))
	qs := make([]onex.RangeQuery, len(items))
	for i, it := range items {
		qs[i] = onex.RangeQuery{Query: it.Query, Length: it.Length, Radius: it.Radius, Exact: it.Exact}
	}
	if jc != nil {
		jc.Progress(0, len(items))
	}
	for lo := 0; lo < len(items); lo += jobChunk {
		if checkCanceled(jc) {
			return nil, jobs.ErrCanceled
		}
		hi := min(lo+jobChunk, len(items))
		rs, err := ds.RangeBatch(ctx, qs[lo:hi])
		if err != nil {
			return nil, err
		}
		for j, r := range rs {
			if r.Err != nil {
				out[lo+j] = itemErr(r.Err)
				continue
			}
			out[lo+j] = batchItemOut{Result: rangeResult(r.Matches)}
		}
		if jc != nil {
			jc.Progress(hi, len(items))
		}
	}
	return envelope(out), nil
}

// runSeasonalBatch is runMatchBatch for the seasonal family.
func runSeasonalBatch(ds *hub.Dataset, items []seasonalItem, jc *jobs.Context) (any, error) {
	out := make([]batchItemOut, len(items))
	qs := make([]onex.SeasonalQuery, len(items))
	for i, it := range items {
		qs[i] = onex.SeasonalQuery{SeriesID: it.seriesID(), Length: it.Length}
	}
	if jc != nil {
		jc.Progress(0, len(items))
	}
	for lo := 0; lo < len(items); lo += jobChunk {
		if checkCanceled(jc) {
			return nil, jobs.ErrCanceled
		}
		hi := min(lo+jobChunk, len(items))
		rs, err := ds.SeasonalBatch(qs[lo:hi])
		if err != nil {
			return nil, err
		}
		for j, r := range rs {
			if r.Err != nil {
				out[lo+j] = itemErr(r.Err)
				continue
			}
			out[lo+j] = batchItemOut{Result: seasonalResult(r.Patterns)}
		}
		if jc != nil {
			jc.Progress(hi, len(items))
		}
	}
	return envelope(out), nil
}

// ---- HTTP handlers ----------------------------------------------------

// matchBatchRequest is the uniform match batch body. Queries stays raw so
// the handler can also accept the deprecated array-of-arrays shape
// ({"queries": [[…], …], "mode": "…"}) that predates per-item options.
type matchBatchRequest struct {
	Queries json.RawMessage `json:"queries"`
	// Mode is only meaningful for the deprecated shape (items carry their
	// own mode in the uniform shape).
	Mode string `json:"mode"`
}

// legacyBatchEntry preserves the deprecated match/batch per-entry response
// shape: a flattened match with an optional error string.
type legacyBatchEntry struct {
	*matchResponse
	Error string `json:"error,omitempty"`
}

// handleMatchBatch serves POST /v1/datasets/{name}/match/batch. The
// uniform shape is {"queries":[{"query":…,"mode":…,"k":…}, …]}; the
// deprecated {"queries":[[…],…],"mode":…} shape is still accepted (answered
// with a Deprecation header and the old flattened response).
func (s *Server) handleMatchBatch(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	var req matchBatchRequest
	if err := s.decodeStrict(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	withValues := r.URL.Query().Get("values") == "true"

	var items []matchItem
	if err := json.Unmarshal(req.Queries, &items); err != nil {
		// Not the uniform shape — try the deprecated array-of-arrays one.
		var legacy [][]float64
		if err := json.Unmarshal(req.Queries, &legacy); err != nil {
			writeErr(w, badRequest("queries must be an array of query objects"))
			return
		}
		s.legacyMatchBatch(w, r, ds, legacy, req.Mode, withValues)
		return
	}
	if req.Mode != "" {
		writeErr(w, badRequest("top-level mode belongs to the deprecated shape; set mode per item"))
		return
	}
	if len(items) == 0 {
		writeErr(w, badRequest("queries must be non-empty"))
		return
	}
	out, err := runMatchBatch(r.Context(), ds, items, withValues, nil)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// legacyMatchBatch answers the deprecated match/batch shape exactly as
// before the uniform envelope existed.
func (s *Server) legacyMatchBatch(w http.ResponseWriter, r *http.Request, ds *hub.Dataset, queries [][]float64, modeStr string, withValues bool) {
	mode, err := parseMode(modeStr)
	if err != nil {
		writeErr(w, err)
		return
	}
	if len(queries) == 0 {
		writeErr(w, badRequest("queries must be non-empty"))
		return
	}
	rs, err := ds.MatchBatch(r.Context(), queries, mode)
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]legacyBatchEntry, 0, len(rs))
	errors := 0
	for _, br := range rs {
		if br.Err != nil {
			errors++
			out = append(out, legacyBatchEntry{Error: br.Err.Error()})
			continue
		}
		m := toMatchResponse(br.Match, withValues)
		out = append(out, legacyBatchEntry{matchResponse: &m})
	}
	w.Header().Set("Deprecation", "true")
	writeJSON(w, http.StatusOK, map[string]any{
		"count": len(out), "errors": errors, "results": out,
	})
}

type rangeBatchRequest struct {
	Queries []rangeItem `json:"queries"`
}

// handleRangeBatch serves POST /v1/datasets/{name}/range/batch with the
// uniform envelope.
func (s *Server) handleRangeBatch(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	var req rangeBatchRequest
	if err := s.decodeStrict(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, badRequest("queries must be non-empty"))
		return
	}
	out, err := runRangeBatch(r.Context(), ds, req.Queries, nil)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

type seasonalBatchRequest struct {
	Queries []seasonalItem `json:"queries"`
}

// handleSeasonalBatch serves POST /v1/datasets/{name}/seasonal/batch with
// the uniform envelope.
func (s *Server) handleSeasonalBatch(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	var req seasonalBatchRequest
	if err := s.decodeStrict(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, badRequest("queries must be non-empty"))
		return
	}
	out, err := runSeasonalBatch(ds, req.Queries, nil)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}
