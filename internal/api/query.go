package api

import (
	"math"
	"net/http"
	"strconv"
	"time"

	"onex"
	"onex/internal/obs"
	"onex/internal/shardrpc"
)

// matchItem is one match/k-NN query — the body of the single endpoint and
// the per-item shape of the batch and jobs envelopes.
type matchItem struct {
	Query []float64 `json:"query"`
	Mode  string    `json:"mode"` // "any" (default) or "exact"
	K     int       `json:"k"`    // 0/1 = best match; >1 = k-NN
	// Explain returns the query's trace alongside the result (single and
	// single-form job endpoints; accepted but ignored on batch items —
	// batches answer many queries through one engine call and have no
	// per-item trace).
	Explain bool `json:"explain"`
}

func parseMode(s string) (onex.MatchMode, error) {
	switch s {
	case "", "any":
		return onex.MatchAny, nil
	case "exact":
		return onex.MatchExact, nil
	default:
		return 0, badRequest(`mode must be "any" or "exact"`)
	}
}

// toKNN validates the item and converts it to the hub's batch query shape.
func (it matchItem) toKNN() (onex.KNNQuery, error) {
	mode, err := parseMode(it.Mode)
	if err != nil {
		return onex.KNNQuery{}, err
	}
	if it.K < 0 {
		return onex.KNNQuery{}, badRequest("k must be ≥ 0")
	}
	return onex.KNNQuery{Query: it.Query, Mode: mode, K: it.K}, nil
}

type matchResponse struct {
	SeriesID int       `json:"seriesId"`
	Start    int       `json:"start"`
	Length   int       `json:"length"`
	Distance float64   `json:"distance"`
	Values   []float64 `json:"values,omitempty"`
}

func toMatchResponse(m onex.Match, withValues bool) matchResponse {
	r := matchResponse{
		SeriesID: m.SeriesID, Start: m.Start, Length: m.Length, Distance: m.Distance,
	}
	if withValues {
		r.Values = m.Values
	}
	return r
}

// matchResult shapes a match answer exactly like the single endpoint: a
// bare match object for k ≤ 1, {"matches": [...]} for k-NN. Batch items
// and job results reuse it so the async answer is bit-identical to sync.
func matchResult(k int, ms []onex.Match, withValues bool) any {
	if k > 1 {
		out := make([]matchResponse, 0, len(ms))
		for _, m := range ms {
			out = append(out, toMatchResponse(m, withValues))
		}
		return map[string]any{"matches": out}
	}
	return toMatchResponse(ms[0], withValues)
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	var req matchItem
	if err := s.decodeStrict(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	kq, err := req.toKNN()
	if err != nil {
		writeErr(w, err)
		return
	}
	withValues := r.URL.Query().Get("values") == "true"
	tr := obs.NewTrace(requestIDFrom(r.Context()))
	ms, err := ds.MatchObserved(r.Context(), kq.Query, kq.Mode, kq.K, tr)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.recordSlow(r.URL.Path, ds, "match", "", tr)
	body := matchResult(kq.K, ms, withValues)
	if req.Explain || explainRequested(r) {
		body = explained(body, tr, ds)
	}
	writeJSON(w, http.StatusOK, body)
}

// rangeItem is one range query — single body and batch/jobs item shape.
type rangeItem struct {
	Query  []float64 `json:"query"`
	Length int       `json:"length"`
	Radius float64   `json:"radius"`
	// Exact computes true DTW distances for matches admitted through the
	// Lemma 2 guarantee instead of reporting the ST upper bound.
	Exact bool `json:"exact"`
	// Explain returns the query's trace alongside the result (single and
	// single-form job endpoints; accepted but ignored on batch items).
	Explain bool `json:"explain"`
}

type rangeMatchResponse struct {
	matchResponse
	Guaranteed bool `json:"guaranteed"`
}

// rangeResult shapes a range answer exactly like the single endpoint.
func rangeResult(ms []onex.RangeMatch) any {
	out := make([]rangeMatchResponse, 0, len(ms))
	for _, m := range ms {
		out = append(out, rangeMatchResponse{toMatchResponse(m.Match, false), m.Guaranteed})
	}
	return map[string]any{"count": len(out), "results": out}
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	var req rangeItem
	if err := s.decodeStrict(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	tr := obs.NewTrace(requestIDFrom(r.Context()))
	ms, err := ds.RangeObserved(r.Context(), req.Query, req.Length, req.Radius, req.Exact, tr)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.recordSlow(r.URL.Path, ds, "range", "", tr)
	body := rangeResult(ms)
	if req.Explain || explainRequested(r) {
		body = explained(body, tr, ds)
	}
	writeJSON(w, http.StatusOK, body)
}

// seasonalItem is one seasonal query: the batch/jobs item shape (the single
// endpoint takes the same parameters as GET query strings). A nil Series
// (or any negative id) means dataset-wide.
type seasonalItem struct {
	Series *int `json:"series"`
	Length int  `json:"length"`
	// Explain returns the query's trace alongside the result (single-form
	// job endpoint; accepted but ignored on batch items).
	Explain bool `json:"explain"`
}

func (it seasonalItem) seriesID() int {
	if it.Series == nil {
		return -1
	}
	return *it.Series
}

// seasonalResult shapes a seasonal answer exactly like the single endpoint.
func seasonalResult(patterns []onex.Pattern) any {
	return map[string]any{"count": len(patterns), "patterns": patterns}
}

func (s *Server) handleSeasonal(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	q := r.URL.Query()
	length, err := strconv.Atoi(q.Get("length"))
	if err != nil {
		writeErr(w, badRequest("length must be an integer"))
		return
	}
	seriesID := -1 // dataset-wide
	if sid := q.Get("series"); sid != "" {
		if seriesID, err = strconv.Atoi(sid); err != nil || seriesID < 0 {
			writeErr(w, badRequest("series must be a non-negative integer"))
			return
		}
	}
	tr := obs.NewTrace(requestIDFrom(r.Context()))
	patterns, err := ds.SeasonalObserved(seriesID, length, tr)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.recordSlow(r.URL.Path, ds, "seasonal", "", tr)
	body := seasonalResult(patterns)
	if explainRequested(r) {
		body = explained(body, tr, ds)
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	q := r.URL.Query()
	var deg onex.Degree
	switch q.Get("degree") {
	case "S", "s":
		deg = onex.Strict
	case "M", "m":
		deg = onex.Medium
	case "L", "l":
		deg = onex.Loose
	default:
		writeErr(w, badRequest("degree must be S, M or L"))
		return
	}
	length := -1
	if ls := q.Get("length"); ls != "" {
		var err error
		if length, err = strconv.Atoi(ls); err != nil {
			writeErr(w, badRequest("length must be an integer"))
			return
		}
	}
	rng, err := ds.Recommend(deg, length)
	if err != nil {
		writeErr(w, err)
		return
	}
	// Loose's upper bound is +Inf (any larger threshold behaves the same),
	// which JSON cannot carry — report it as null ("unbounded") instead of
	// letting the encoder fail after the 200 header is out.
	var high any
	if !math.IsInf(rng.High, 1) {
		high = rng.High
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"degree": deg.String(), "low": rng.Low, "high": high,
	})
}

// ---- stats ------------------------------------------------------------

func (s *Server) handleDatasetStats(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ds.Info())
}

// handleHubStats serves GET /v1/stats: hub-wide counters (cache hit/miss,
// per-dataset query work tallies including bound-pruning counts), the job
// manager's lifecycle counters, and one latency histogram per route.
func (s *Server) handleHubStats(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{
		"hub":            s.hub.Stats(),
		"jobs":           s.jobs.Stats(),
		"latency":        s.metrics.Snapshot(),
		"defaultDataset": s.defaultName,
		"uptimeSeconds":  time.Since(s.started).Seconds(),
	}
	// Fleet health only appears once at least one shard worker has been
	// contacted, so local-only deployments keep the historical shape.
	if workers := shardrpc.Fleet().Snapshot(); len(workers) > 0 {
		body["workers"] = workers
	}
	writeJSON(w, http.StatusOK, body)
}

// handleLegacyStats preserves the pre-hub /stats response shape for the
// default dataset.
func (s *Server) handleLegacyStats(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	info := ds.Info()
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset":         info.Name,
		"st":              info.ST,
		"representatives": info.Representatives,
		"subsequences":    info.Subsequences,
		"indexBytes":      info.IndexBytes,
		"buildSeconds":    info.BuildSeconds,
		"stHalf":          info.STHalf,
		"stFinal":         info.STFinal,
		"lengths":         info.Lengths,
		"uptimeSeconds":   time.Since(s.started).Seconds(),
	})
}
