package api

import (
	"net/http"
	"testing"
)

// TestLegacyGating pins the deprecation story: without Config.Legacy the
// pre-/v1 endpoints answer 410 Gone with code "deprecated"; with it they
// work but always carry a Deprecation header.
func TestLegacyGating(t *testing.T) {
	cfg := testConfig()
	cfg.Legacy = false
	srv, hs := testServer(t, cfg)
	q := queryFor(t, srv)

	resp, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("legacy /stats without -legacy: code %d, want 410", resp.StatusCode)
	}
	out := postJSON(t, hs.URL+"/match", matchItem{Query: q}, http.StatusGone)
	if out["code"] != CodeDeprecated {
		t.Errorf("gated legacy endpoint code = %v", out["code"])
	}
	// The /v1 surface is unaffected.
	postJSON(t, hs.URL+"/v1/datasets/"+srv.DefaultName()+"/match", matchItem{Query: q}, http.StatusOK)

	// With the flag, legacy answers carry the Deprecation header.
	srv2, hs2 := testServer(t, testConfig())
	_ = srv2
	resp, err = http.Get(hs2.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy /stats with -legacy: code %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy endpoint missing Deprecation header")
	}
}

// TestErrorCodes pins the machine-readable code on each error class.
func TestErrorCodes(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	q := queryFor(t, srv)
	base := hs.URL + "/v1/datasets/" + srv.DefaultName()

	cases := []struct {
		name     string
		resp     map[string]any
		wantCode string
	}{
		{"unknown dataset",
			postJSON(t, hs.URL+"/v1/datasets/nope/match", matchItem{Query: q}, http.StatusNotFound),
			CodeNotFound},
		{"bad mode",
			postJSON(t, base+"/match", matchItem{Query: q, Mode: "zig"}, http.StatusBadRequest),
			CodeInvalidArgument},
		{"duplicate register",
			postJSON(t, hs.URL+"/v1/datasets",
				registerRequest{Name: srv.DefaultName(), Generator: "ECG"}, http.StatusConflict),
			CodeAlreadyExists},
		{"forbidden fs source",
			postJSON(t, hs.URL+"/v1/datasets",
				registerRequest{Name: "fs", Path: "/etc/passwd"}, http.StatusForbidden),
			CodeForbidden},
		{"unknown job",
			getJSON(t, hs.URL+"/v1/jobs/j-0", http.StatusNotFound),
			CodeNotFound},
	}
	for _, c := range cases {
		if c.resp["code"] != c.wantCode {
			t.Errorf("%s: code = %v, want %v", c.name, c.resp["code"], c.wantCode)
		}
		if msg, _ := c.resp["error"].(string); msg == "" {
			t.Errorf("%s: missing error message", c.name)
		}
	}
}

// TestUniformBatchEnvelopes drives the range and seasonal batch endpoints
// plus the uniform match shape (the legacy match shape is covered in
// batch_http_test.go) and checks the shared envelope.
func TestUniformBatchEnvelopes(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	q := queryFor(t, srv)
	base := hs.URL + "/v1/datasets/" + srv.DefaultName()

	out := postJSON(t, base+"/range/batch", map[string]any{"queries": []rangeItem{
		{Query: q, Length: len(q), Radius: 0.5},
		{Query: q, Length: len(q), Radius: 0.5, Exact: true},
		{Query: q, Length: -1, Radius: 0.5},
	}}, http.StatusOK)
	if out["count"].(float64) != 3 || out["errors"].(float64) != 1 {
		t.Fatalf("range batch envelope: %v", out)
	}
	items := out["results"].([]any)
	if items[0].(map[string]any)["result"] == nil {
		t.Error("range batch item 0 missing result")
	}
	if bad := items[2].(map[string]any); bad["code"] != CodeInvalidArgument {
		t.Errorf("range batch bad item: %v", bad)
	}

	out = postJSON(t, base+"/seasonal/batch", map[string]any{"queries": []map[string]any{
		{"length": len(q)},
		{"series": 0, "length": len(q)},
		{"series": 0, "length": -9},
	}}, http.StatusOK)
	if out["count"].(float64) != 3 || out["errors"].(float64) != 1 {
		t.Fatalf("seasonal batch envelope: %v", out)
	}

	// Uniform match shape with per-item options.
	out = postJSON(t, base+"/match/batch", map[string]any{"queries": []matchItem{
		{Query: q, Mode: "exact"},
		{Query: q, K: 3},
		{Query: q, Mode: "warp"},
	}}, http.StatusOK)
	if out["errors"].(float64) != 1 {
		t.Fatalf("uniform match batch envelope: %v", out)
	}
	items = out["results"].([]any)
	if m := items[1].(map[string]any)["result"].(map[string]any); len(m["matches"].([]any)) != 3 {
		t.Errorf("k-NN batch item: %v", items[1])
	}
	if bad := items[2].(map[string]any); bad["code"] != CodeInvalidArgument {
		t.Errorf("bad-mode item: %v", bad)
	}

	// Mixing the top-level legacy mode with uniform items is rejected.
	postJSON(t, base+"/match/batch", map[string]any{
		"queries": []matchItem{{Query: q}}, "mode": "exact",
	}, http.StatusBadRequest)

	// Empty batches are rejected on every family.
	for _, path := range []string{"/match/batch", "/range/batch", "/seasonal/batch"} {
		postJSON(t, base+path, map[string]any{"queries": []any{}}, http.StatusBadRequest)
	}
}

// TestStatsSurface checks /v1/stats exposes the latency histograms keyed
// by route pattern alongside job and cache counters.
func TestStatsSurface(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	q := queryFor(t, srv)
	base := hs.URL + "/v1/datasets/" + srv.DefaultName()

	for i := 0; i < 3; i++ {
		postJSON(t, base+"/match", matchItem{Query: q}, http.StatusOK)
	}
	job := postJSON(t, base+"/match/jobs", matchItem{Query: q}, http.StatusAccepted)
	waitJob(t, hs.URL, job["id"].(string))

	stats := getJSON(t, hs.URL+"/v1/stats", http.StatusOK)
	lat, ok := stats["latency"].(map[string]any)
	if !ok {
		t.Fatal("/v1/stats missing latency map")
	}
	h, ok := lat["POST /v1/datasets/{name}/match"].(map[string]any)
	if !ok {
		t.Fatalf("latency map missing the match route: %v", lat)
	}
	if h["count"].(float64) < 3 {
		t.Errorf("match histogram count = %v, want ≥ 3", h["count"])
	}
	for _, k := range []string{"p50Millis", "p90Millis", "p99Millis", "meanMillis"} {
		if _, ok := h[k]; !ok {
			t.Errorf("histogram missing %s: %v", k, h)
		}
	}
	jm, ok := stats["jobs"].(map[string]any)
	if !ok || jm["submitted"].(float64) < 1 {
		t.Errorf("/v1/stats jobs counters: %v", stats["jobs"])
	}
	hubStats := stats["hub"].(map[string]any)
	if _, ok := hubStats["cache"]; !ok {
		t.Error("/v1/stats hub missing cache counters")
	}
	qc, ok := hubStats["query"].(map[string]any)
	if !ok {
		t.Fatal("/v1/stats hub missing query work counters")
	}
	if qc["queries"].(float64) < 1 {
		t.Errorf("hub query counter = %v", qc["queries"])
	}
}
