package api

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"onex/internal/shardrpc"
)

// distTestServer boots n real shardrpc workers on loopback and a server
// whose default dataset fans out to them.
func distTestServer(t *testing.T, n int) (*Server, *httptest.Server, []string) {
	t.Helper()
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	urls := make([]string, n)
	for i := range urls {
		ws := httptest.NewServer(shardrpc.NewWorker(logger).Handler())
		t.Cleanup(ws.Close)
		urls[i] = ws.URL
	}
	cfg := testConfig()
	cfg.Shards = 2
	cfg.ShardWorkers = urls
	cfg.CacheEntries = -1 // every query runs the cascade
	cfg.HealthProbe = 25 * time.Millisecond
	srv, hs := testServer(t, cfg)
	return srv, hs, urls
}

// TestDistributedExplain: distributed explain responses are tagged with the
// remote transport and worker set, the trace contains the rpc and folded
// worker spans, and the worker spans' cascade attrs agree exactly with both
// the trace work counters and the /v1/stats deltas.
func TestDistributedExplain(t *testing.T) {
	srv, hs, urls := distTestServer(t, 2)
	name := srv.DefaultName()
	q := queryFor(t, srv)

	before := queryWork(t, hs.URL)
	body := postJSON(t, hs.URL+"/v1/datasets/"+name+"/match",
		map[string]any{"query": q, "explain": true}, http.StatusOK)
	after := queryWork(t, hs.URL)

	if got, _ := body["transport"].(string); got != "remote" {
		t.Errorf("transport = %q, want remote", got)
	}
	workers, _ := body["workers"].([]any)
	if len(workers) != len(urls) {
		t.Errorf("workers = %v, want the %d worker URLs", workers, len(urls))
	}

	tr := traceFrom(t, body)
	spans, _ := tr["spans"].([]any)
	var rpcSpans, workerSpans int
	spanSums := map[string]float64{}
	for _, raw := range spans {
		sp, _ := raw.(map[string]any)
		nm, _ := sp["name"].(string)
		switch {
		case strings.HasPrefix(nm, "rpc-"):
			rpcSpans++
		case strings.HasPrefix(nm, "worker-"):
			workerSpans++
			attrs, _ := sp["attrs"].([]any)
			for _, ra := range attrs {
				a, _ := ra.(map[string]any)
				k, _ := a["key"].(string)
				v, _ := a["value"].(float64)
				spanSums[k] += v
			}
		}
	}
	if rpcSpans == 0 || workerSpans == 0 {
		t.Fatalf("distributed trace has %d rpc / %d worker spans: %v", rpcSpans, workerSpans, spans)
	}

	work := workOf(tr)
	for _, k := range []string{"repsExamined", "dtwComputed"} {
		wv, _ := work[k].(float64)
		if delta := after[k] - before[k]; wv != delta {
			t.Errorf("work[%q] = %v, /v1/stats delta = %v", k, wv, delta)
		}
		if spanSums[k] != wv {
			t.Errorf("worker span sum %q = %v, trace work = %v", k, spanSums[k], wv)
		}
	}

	// The slow log tags distributed entries with the transport and workers.
	slow := getJSON(t, hs.URL+"/v1/debug/slow", http.StatusOK)
	entries, _ := slow["slow"].([]any)
	if len(entries) == 0 {
		t.Fatal("slow buffer empty after a distributed query")
	}
	var tagged bool
	for _, raw := range entries {
		e, _ := raw.(map[string]any)
		if e["transport"] == "remote" {
			if ws, _ := e["workers"].([]any); len(ws) == len(urls) {
				tagged = true
			}
		}
	}
	if !tagged {
		t.Errorf("no slow entry tagged transport=remote with the worker set: %v", entries)
	}
}

// TestFleetHealthSurfaces: after distributed traffic, /v1/stats exposes the
// per-worker fleet health and /metrics the onex_worker_* families.
func TestFleetHealthSurfaces(t *testing.T) {
	srv, hs, urls := distTestServer(t, 2)
	name := srv.DefaultName()
	q := queryFor(t, srv)
	postJSON(t, hs.URL+"/v1/datasets/"+name+"/match", map[string]any{"query": q}, http.StatusOK)

	stats := getJSON(t, hs.URL+"/v1/stats", http.StatusOK)
	workers, _ := stats["workers"].([]any)
	if len(workers) == 0 {
		t.Fatalf("/v1/stats has no workers section: %v", stats)
	}
	byURL := map[string]map[string]any{}
	for _, raw := range workers {
		w, _ := raw.(map[string]any)
		u, _ := w["url"].(string)
		byURL[u] = w
	}
	for _, u := range urls {
		w := byURL[u]
		if w == nil {
			t.Fatalf("worker %s missing from /v1/stats workers: %v", u, workers)
		}
		if up, _ := w["up"].(bool); !up {
			t.Errorf("worker %s reported down: %v", u, w)
		}
		if attempts, _ := w["attempts"].(float64); attempts < 1 {
			t.Errorf("worker %s has no recorded attempts: %v", u, w)
		}
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, family := range []string{
		"onex_worker_up", "onex_worker_call_duration_seconds",
		"onex_worker_call_attempts_total", "onex_worker_retries_total",
		"onex_worker_reships_total",
	} {
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("family %s missing from coordinator /metrics", family)
		}
	}
	for _, u := range urls {
		if !strings.Contains(body, `onex_worker_up{worker="`+u+`"} 1`) {
			t.Errorf("onex_worker_up for %s not 1 in:\n%s", u, body)
		}
	}
}

// TestLocalTransportTagging: in-process datasets are tagged local with no
// worker set, keeping the distributed fields from leaking into local runs.
func TestLocalTransportTagging(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	name := srv.DefaultName()
	q := queryFor(t, srv)

	body := postJSON(t, hs.URL+"/v1/datasets/"+name+"/match",
		map[string]any{"query": q, "explain": true}, http.StatusOK)
	if got, _ := body["transport"].(string); got != "local" {
		t.Errorf("transport = %q, want local", got)
	}
	if _, ok := body["workers"]; ok {
		t.Errorf("local explain leaked a workers field: %v", body)
	}

	slow := getJSON(t, hs.URL+"/v1/debug/slow", http.StatusOK)
	entries, _ := slow["slow"].([]any)
	if len(entries) == 0 {
		t.Fatal("slow buffer empty")
	}
	e, _ := entries[0].(map[string]any)
	if e["transport"] != "local" {
		t.Errorf("local slow entry transport = %v", e["transport"])
	}
	if _, ok := e["workers"]; ok {
		t.Errorf("local slow entry leaked workers: %v", e)
	}
}
