package api

import (
	"fmt"
	"net/http"
	"reflect"
	"testing"
	"time"
)

// waitJob polls GET /v1/jobs/{id} until the job reaches a terminal state.
func waitJob(t *testing.T, hsURL, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		out := getJSON(t, hsURL+"/v1/jobs/"+id, http.StatusOK)
		switch out["state"] {
		case "done", "failed", "canceled":
			return out
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not reach a terminal state")
	return nil
}

func TestJobSingleMatchEquivalentToSync(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	q := queryFor(t, srv)
	base := hs.URL + "/v1/datasets/" + srv.DefaultName()

	sync := postJSON(t, base+"/match", matchItem{Query: q, Mode: "exact"}, http.StatusOK)

	job := postJSON(t, base+"/match/jobs", matchItem{Query: q, Mode: "exact"}, http.StatusAccepted)
	id, _ := job["id"].(string)
	if id == "" || job["state"] == "done" && job["result"] == nil {
		t.Fatalf("job submission response: %v", job)
	}
	if job["op"] != "match" || job["dataset"] != srv.DefaultName() {
		t.Errorf("job labels: %v", job)
	}
	done := waitJob(t, hs.URL, id)
	if done["state"] != "done" {
		t.Fatalf("job state = %v (%v)", done["state"], done["error"])
	}
	if done["progress"].(float64) != 1 {
		t.Errorf("done job progress = %v, want 1", done["progress"])
	}
	if !reflect.DeepEqual(done["result"], map[string]any(sync)) {
		t.Errorf("async result differs from sync:\nasync %v\nsync  %v", done["result"], sync)
	}
}

func TestJobBatchEquivalentToSyncBatch(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	q := queryFor(t, srv)
	base := hs.URL + "/v1/datasets/" + srv.DefaultName()

	body := map[string]any{"queries": []matchItem{
		{Query: q, Mode: "exact"},
		{Query: q, Mode: "any", K: 3},
		// Unindexed length under exact mode: per-item error (under "any" it
		// would legitimately match across other indexed lengths).
		{Query: []float64{1, 2, 3}, Mode: "exact"},
	}}
	sync := postJSON(t, base+"/match/batch", body, http.StatusOK)

	job := postJSON(t, base+"/match/jobs", body, http.StatusAccepted)
	done := waitJob(t, hs.URL, job["id"].(string))
	if done["state"] != "done" {
		t.Fatalf("job state = %v (%v)", done["state"], done["error"])
	}
	if !reflect.DeepEqual(done["result"], map[string]any(sync)) {
		t.Errorf("async batch differs from sync batch:\nasync %v\nsync  %v", done["result"], sync)
	}
	res := done["result"].(map[string]any)
	if res["errors"].(float64) != 1 {
		t.Errorf("batch errors = %v, want 1", res["errors"])
	}
	items := res["results"].([]any)
	bad := items[2].(map[string]any)
	if bad["code"] != CodeInvalidArgument || bad["error"] == "" {
		t.Errorf("per-item error envelope = %v", bad)
	}
}

func TestJobRangeAndSeasonalFamilies(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	q := queryFor(t, srv)
	base := hs.URL + "/v1/datasets/" + srv.DefaultName()

	syncRange := postJSON(t, base+"/range",
		rangeItem{Query: q, Length: len(q), Radius: 0.5, Exact: true}, http.StatusOK)
	job := postJSON(t, base+"/range/jobs",
		rangeItem{Query: q, Length: len(q), Radius: 0.5, Exact: true}, http.StatusAccepted)
	done := waitJob(t, hs.URL, job["id"].(string))
	if done["state"] != "done" || !reflect.DeepEqual(done["result"], map[string]any(syncRange)) {
		t.Errorf("range job: state %v, result %v, want %v", done["state"], done["result"], syncRange)
	}

	syncSeasonal := getJSON(t, fmt.Sprintf("%s/seasonal?length=%d", base, len(q)), http.StatusOK)
	job = postJSON(t, base+"/seasonal/jobs", map[string]any{"length": len(q)}, http.StatusAccepted)
	done = waitJob(t, hs.URL, job["id"].(string))
	if done["state"] != "done" || !reflect.DeepEqual(done["result"], map[string]any(syncSeasonal)) {
		t.Errorf("seasonal job: state %v, result %v, want %v", done["state"], done["result"], syncSeasonal)
	}

	// Batch forms of both families.
	rb := postJSON(t, base+"/range/jobs", map[string]any{"queries": []rangeItem{
		{Query: q, Length: len(q), Radius: 0.4},
		{Query: q, Length: -1, Radius: 0.4}, // fails alone
	}}, http.StatusAccepted)
	done = waitJob(t, hs.URL, rb["id"].(string))
	if done["state"] != "done" {
		t.Fatalf("range batch job: %v", done)
	}
	if errs := done["result"].(map[string]any)["errors"].(float64); errs != 1 {
		t.Errorf("range batch errors = %v, want 1", errs)
	}

	sb := postJSON(t, base+"/seasonal/jobs", map[string]any{"queries": []map[string]any{
		{"length": len(q)},
		{"series": 0, "length": len(q)},
	}}, http.StatusAccepted)
	done = waitJob(t, hs.URL, sb["id"].(string))
	if done["state"] != "done" {
		t.Fatalf("seasonal batch job: %v", done)
	}
	if errs := done["result"].(map[string]any)["errors"].(float64); errs != 0 {
		t.Errorf("seasonal batch errors = %v, want 0", errs)
	}
}

func TestJobValidationAndNotFound(t *testing.T) {
	srv, hs := testServer(t, testConfig())
	q := queryFor(t, srv)
	base := hs.URL + "/v1/datasets/" + srv.DefaultName()

	// Validation happens before submission: a bad request never creates a
	// job.
	out := postJSON(t, base+"/match/jobs", matchItem{Query: q, Mode: "bogus"}, http.StatusBadRequest)
	if out["code"] != CodeInvalidArgument {
		t.Errorf("bad mode code = %v", out["code"])
	}
	postJSON(t, base+"/match/jobs", map[string]any{"queries": []matchItem{}}, http.StatusBadRequest)
	postJSON(t, hs.URL+"/v1/datasets/nosuch/match/jobs", matchItem{Query: q}, http.StatusNotFound)
	// The deprecated array-of-arrays shape has no jobs form.
	postJSON(t, base+"/match/jobs", map[string]any{"queries": [][]float64{q}}, http.StatusBadRequest)

	list := getJSON(t, hs.URL+"/v1/jobs", http.StatusOK)
	if list["count"].(float64) != 0 {
		t.Errorf("rejected submissions created jobs: %v", list)
	}

	out = getJSON(t, hs.URL+"/v1/jobs/j-nope", http.StatusNotFound)
	if out["code"] != CodeNotFound {
		t.Errorf("unknown job code = %v", out["code"])
	}
	doJSON(t, http.MethodDelete, hs.URL+"/v1/jobs/j-nope", nil, http.StatusNotFound)

	// A failing query surfaces as a failed job with the uniform error
	// fields.
	job := postJSON(t, base+"/range/jobs", rangeItem{Query: q, Length: -5, Radius: 0.1}, http.StatusAccepted)
	done := waitJob(t, hs.URL, job["id"].(string))
	if done["state"] != "failed" || done["error"] == "" || done["code"] != CodeInvalidArgument {
		t.Errorf("failed job envelope = %v", done)
	}
}

// TestJobCancelOverHTTP pins DELETE semantics: with one worker busy on a
// large batch, a queued job cancels deterministically; canceling a
// terminal job is a no-op that reports the terminal state.
func TestJobCancelOverHTTP(t *testing.T) {
	cfg := testConfig()
	cfg.JobWorkers = 1
	cfg.CacheEntries = -1 // keep the busy job actually computing
	srv, hs := testServer(t, cfg)
	q := queryFor(t, srv)
	base := hs.URL + "/v1/datasets/" + srv.DefaultName()

	// Occupy the single worker with a hefty exact-range batch: a huge
	// radius admits every window, so each item pays exact DTW on the full
	// membership and the batch outlives the next two HTTP round-trips by a
	// wide margin (~140ms of compute vs single-digit-ms round-trips).
	items := make([]rangeItem, 1024)
	for i := range items {
		qq := append([]float64(nil), q...)
		qq[0] += float64(i) * 1e-6
		items[i] = rangeItem{Query: qq, Length: len(q), Radius: 2.0, Exact: true}
	}
	busy := postJSON(t, base+"/range/jobs", map[string]any{"queries": items}, http.StatusAccepted)

	// The second job sits queued behind it; DELETE must cancel it before it
	// ever runs.
	victim := postJSON(t, base+"/match/jobs", matchItem{Query: q}, http.StatusAccepted)
	out := doJSON(t, http.MethodDelete, hs.URL+"/v1/jobs/"+victim["id"].(string), nil, http.StatusOK)
	if out["state"] != "canceled" || out["code"] != CodeCanceled {
		t.Errorf("canceled job envelope = %v", out)
	}

	// Cancel the running batch too: it must land between chunks.
	doJSON(t, http.MethodDelete, hs.URL+"/v1/jobs/"+busy["id"].(string), nil, http.StatusOK)
	done := waitJob(t, hs.URL, busy["id"].(string))
	if done["state"] != "canceled" && done["state"] != "done" {
		t.Fatalf("busy job state = %v after cancel", done["state"])
	}

	// Canceling a terminal job is a no-op.
	fin := postJSON(t, base+"/match/jobs", matchItem{Query: q}, http.StatusAccepted)
	waitJob(t, hs.URL, fin["id"].(string))
	out = doJSON(t, http.MethodDelete, hs.URL+"/v1/jobs/"+fin["id"].(string), nil, http.StatusOK)
	if out["state"] != "done" {
		t.Errorf("cancel of done job flipped state to %v", out["state"])
	}

	stats := getJSON(t, hs.URL+"/v1/stats", http.StatusOK)
	jm := stats["jobs"].(map[string]any)
	if jm["submitted"].(float64) < 3 || jm["canceled"].(float64) < 1 {
		t.Errorf("job counters missing from /v1/stats: %v", jm)
	}
}

// TestJobRacingDropAndShutdown drives jobs against a dataset being dropped
// and a server shutting down: no panic, no hang, every job lands in a
// coherent terminal state.
func TestJobRacingDropAndShutdown(t *testing.T) {
	cfg := testConfig()
	cfg.CacheEntries = -1
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No t.Cleanup(srv.Close): closing is the point of the test.
	hs := newTestHTTP(t, srv)
	info, err := srv.DefaultInfo()
	if err != nil {
		t.Fatal(err)
	}
	l := info.Lengths[len(info.Lengths)/2]
	q := make([]float64, l)
	for i := range q {
		q[i] = 0.5
	}
	base := hs + "/v1/datasets/" + srv.DefaultName()

	items := make([]rangeItem, 64)
	for i := range items {
		qq := append([]float64(nil), q...)
		qq[0] += float64(i) * 1e-6
		items[i] = rangeItem{Query: qq, Length: l, Radius: 0.6, Exact: true}
	}
	job := postJSON(t, base+"/range/jobs", map[string]any{"queries": items}, http.StatusAccepted)

	// Drop the dataset out from under the running job: items answered after
	// the drop carry not_found errors, but the job itself stays coherent.
	doJSON(t, http.MethodDelete, base, nil, http.StatusOK)
	done := waitJob(t, hs, job["id"].(string))
	switch done["state"] {
	case "done", "failed", "canceled":
	default:
		t.Fatalf("job state after drop = %v", done["state"])
	}

	// Now a job in flight when the server closes must come out canceled.
	out := postJSON(t, hs+"/v1/datasets", registerRequest{
		Name: "again", Generator: "ItalyPower", Scale: 0.2, ST: 0.25, Lengths: 6, Seed: 1, Wait: true,
	}, http.StatusCreated)
	if out["state"] != "ready" {
		t.Fatalf("re-register state = %v", out["state"])
	}
	job = postJSON(t, hs+"/v1/datasets/again/range/jobs",
		map[string]any{"queries": items}, http.StatusAccepted)
	id := job["id"].(string)
	srv.Close()
	j, ok := srv.jobs.Get(id)
	if !ok {
		t.Fatal("job vanished on close")
	}
	deadline := time.Now().Add(10 * time.Second)
	for !j.State().Terminal() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	snap := j.Snapshot()
	if snap.State != "canceled" && snap.State != "done" {
		t.Errorf("in-flight job after Close: state %v", snap.State)
	}
}
