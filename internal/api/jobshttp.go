package api

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"

	"onex/internal/jobs"
	"onex/internal/obs"
)

// jobContext builds the context a job body runs under: detached from the
// originating request (which ends at the 202-accepted response) but still
// carrying its request id, so outbound shard-worker calls stay correlated
// with the submission in worker logs.
func jobContext(reqID string) context.Context {
	return obs.ContextWithRequestID(context.Background(), reqID)
}

// jobView is a job snapshot plus the uniform error fields for terminal
// failures — the body of every /v1/jobs response.
type jobView struct {
	jobs.Snapshot
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

func viewJob(j *jobs.Job) jobView {
	snap := j.Snapshot()
	v := jobView{Snapshot: snap}
	if snap.Err != nil {
		v.Error = snap.Err.Error()
		if snap.State == jobs.StateCanceled.String() {
			v.Code = CodeCanceled
		} else {
			_, v.Code = classify(snap.Err)
		}
	}
	return v
}

// submitJob queues run and answers 202 with the job snapshot and a
// Location header for polling.
func (s *Server) submitJob(w http.ResponseWriter, family, dataset string, run func(*jobs.Context) (any, error)) {
	j, err := s.jobs.Submit(family, dataset, run)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID())
	writeJSON(w, http.StatusAccepted, viewJob(j))
}

// jobBody decodes a jobs-endpoint body that is either the family's single
// query shape or its batch shape ({"queries": [...]}). It returns the raw
// message and whether the batch key was present.
func (s *Server) jobBody(w http.ResponseWriter, r *http.Request) (json.RawMessage, bool, error) {
	var probe struct {
		Queries json.RawMessage `json:"queries"`
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		return nil, false, badRequest("invalid JSON: " + err.Error())
	}
	if dec.More() {
		return nil, false, badRequest("invalid JSON: trailing data after request object")
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, false, badRequest("invalid JSON: " + err.Error())
	}
	return raw, probe.Queries != nil, nil
}

// decodeInto strictly re-decodes raw into v (unknown fields rejected).
func decodeInto(raw json.RawMessage, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid JSON: " + err.Error())
	}
	return nil
}

// handleMatchJob serves POST /v1/datasets/{name}/match/jobs: the body is
// either a single match query or the uniform batch envelope; the job's
// result is bit-identical to what the corresponding synchronous endpoint
// would have returned. Progress advances per batch chunk; DELETE cancels
// between chunks.
func (s *Server) handleMatchJob(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	raw, isBatch, err := s.jobBody(w, r)
	if err != nil {
		writeErr(w, err)
		return
	}
	withValues := r.URL.Query().Get("values") == "true"
	if isBatch {
		var req matchBatchRequest
		if err := decodeInto(raw, &req); err != nil {
			writeErr(w, err)
			return
		}
		var items []matchItem
		if err := json.Unmarshal(req.Queries, &items); err != nil {
			writeErr(w, badRequest("queries must be an array of query objects (the deprecated array-of-arrays shape has no jobs form)"))
			return
		}
		if req.Mode != "" {
			writeErr(w, badRequest("top-level mode belongs to the deprecated shape; set mode per item"))
			return
		}
		if len(items) == 0 {
			writeErr(w, badRequest("queries must be non-empty"))
			return
		}
		ctx := jobContext(requestIDFrom(r.Context()))
		s.submitJob(w, "match", ds.Name(), func(jc *jobs.Context) (any, error) {
			return runMatchBatch(ctx, ds, items, withValues, jc)
		})
		return
	}
	var req matchItem
	if err := decodeInto(raw, &req); err != nil {
		writeErr(w, err)
		return
	}
	kq, err := req.toKNN()
	if err != nil {
		writeErr(w, err)
		return
	}
	reqID := requestIDFrom(r.Context())
	route := r.URL.Path
	explain := req.Explain || explainRequested(r)
	s.submitJob(w, "match", ds.Name(), func(jc *jobs.Context) (any, error) {
		return runSingle(jc, func() (any, error) {
			tr := obs.NewTrace(reqID)
			ms, err := ds.MatchObserved(jobContext(reqID), kq.Query, kq.Mode, kq.K, tr)
			if err != nil {
				return nil, err
			}
			s.recordSlow(route, ds, "match", jc.JobID(), tr)
			out := matchResult(kq.K, ms, withValues)
			if explain {
				out = explained(out, tr, ds)
			}
			return out, nil
		})
	})
}

// handleRangeJob serves POST /v1/datasets/{name}/range/jobs (single or
// batch body, same contract as handleMatchJob).
func (s *Server) handleRangeJob(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	raw, isBatch, err := s.jobBody(w, r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if isBatch {
		var req rangeBatchRequest
		if err := decodeInto(raw, &req); err != nil {
			writeErr(w, err)
			return
		}
		if len(req.Queries) == 0 {
			writeErr(w, badRequest("queries must be non-empty"))
			return
		}
		ctx := jobContext(requestIDFrom(r.Context()))
		s.submitJob(w, "range", ds.Name(), func(jc *jobs.Context) (any, error) {
			return runRangeBatch(ctx, ds, req.Queries, jc)
		})
		return
	}
	var req rangeItem
	if err := decodeInto(raw, &req); err != nil {
		writeErr(w, err)
		return
	}
	reqID := requestIDFrom(r.Context())
	route := r.URL.Path
	explain := req.Explain || explainRequested(r)
	s.submitJob(w, "range", ds.Name(), func(jc *jobs.Context) (any, error) {
		return runSingle(jc, func() (any, error) {
			tr := obs.NewTrace(reqID)
			ms, err := ds.RangeObserved(jobContext(reqID), req.Query, req.Length, req.Radius, req.Exact, tr)
			if err != nil {
				return nil, err
			}
			s.recordSlow(route, ds, "range", jc.JobID(), tr)
			out := rangeResult(ms)
			if explain {
				out = explained(out, tr, ds)
			}
			return out, nil
		})
	})
}

// handleSeasonalJob serves POST /v1/datasets/{name}/seasonal/jobs (single
// {"series","length"} or batch body).
func (s *Server) handleSeasonalJob(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	raw, isBatch, err := s.jobBody(w, r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if isBatch {
		var req seasonalBatchRequest
		if err := decodeInto(raw, &req); err != nil {
			writeErr(w, err)
			return
		}
		if len(req.Queries) == 0 {
			writeErr(w, badRequest("queries must be non-empty"))
			return
		}
		s.submitJob(w, "seasonal", ds.Name(), func(jc *jobs.Context) (any, error) {
			return runSeasonalBatch(ds, req.Queries, jc)
		})
		return
	}
	var req seasonalItem
	if err := decodeInto(raw, &req); err != nil {
		writeErr(w, err)
		return
	}
	reqID := requestIDFrom(r.Context())
	route := r.URL.Path
	explain := req.Explain || explainRequested(r)
	s.submitJob(w, "seasonal", ds.Name(), func(jc *jobs.Context) (any, error) {
		return runSingle(jc, func() (any, error) {
			tr := obs.NewTrace(reqID)
			patterns, err := ds.SeasonalObserved(req.seriesID(), req.Length, tr)
			if err != nil {
				return nil, err
			}
			s.recordSlow(route, ds, "seasonal", jc.JobID(), tr)
			out := seasonalResult(patterns)
			if explain {
				out = explained(out, tr, ds)
			}
			return out, nil
		})
	})
}

// runSingle wraps a one-shot query as a job body: progress 0/1 → 1/1, with
// a cancel check before the (uninterruptible) query starts.
func runSingle(jc *jobs.Context, f func() (any, error)) (any, error) {
	jc.Progress(0, 1)
	if jc.Canceled() {
		return nil, jobs.ErrCanceled
	}
	out, err := f()
	if err != nil {
		return nil, err
	}
	jc.Progress(1, 1)
	return out, nil
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	js := s.jobs.List()
	views := make([]jobView, 0, len(js))
	for _, j := range js {
		views = append(views, viewJob(j))
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(views), "jobs": views})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, apiError{http.StatusNotFound, CodeNotFound,
			"unknown job id (results are evicted after their TTL)"})
		return
	}
	writeJSON(w, http.StatusOK, viewJob(j))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeErr(w, apiError{http.StatusNotFound, CodeNotFound,
			"unknown job id (results are evicted after their TTL)"})
		return
	}
	writeJSON(w, http.StatusOK, viewJob(j))
}
