package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"

	"onex"
	"onex/internal/hub"
)

// decodeStrict reads one JSON value: unknown fields are rejected, the body
// is capped at s.maxBody, and trailing garbage is an error.
func (s *Server) decodeStrict(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return err
		}
		return badRequest("invalid JSON: " + err.Error())
	}
	if dec.More() {
		return badRequest("invalid JSON: trailing data after request object")
	}
	return nil
}

type seriesJSON struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

type registerRequest struct {
	Name      string       `json:"name"`
	Generator string       `json:"generator"`
	Path      string       `json:"path"`
	Snapshot  string       `json:"snapshot"`
	Series    []seriesJSON `json:"series"`
	Scale     float64      `json:"scale"`
	Seed      int64        `json:"seed"`
	ST        float64      `json:"st"`
	Lengths   int          `json:"lengths"`
	// Parallelism bounds the dataset's build and query worker fan-out
	// (0 = GOMAXPROCS; answers are identical for every value).
	Parallelism int `json:"parallelism"`
	// Shards hash-partitions the dataset's series across engine shards
	// built concurrently and queried by scatter-gather (0/1 = unsharded;
	// answers are identical at every count — see /v1/datasets/{name}/stats
	// for the per-shard breakdown).
	Shards int `json:"shards"`
	// DcTopK bounds the per-representative sparse retention of the
	// inter-representative distance index (0 = the engine default of 32;
	// negative = dense-equivalent). Purely a memory knob: answers are
	// bit-identical at every setting.
	DcTopK int `json:"dcTopK"`
	// ShardWorkers lists remote worker base URLs serving the dataset's
	// shards over the worker protocol (shard s goes to worker s mod len).
	// Answers stay bit-identical to in-process serving. Like path/snapshot
	// sources, the field makes the server open outbound connections to
	// operator-named addresses and is therefore gated behind -allow-fs.
	ShardWorkers []string `json:"shardWorkers"`
	Wait         bool     `json:"wait"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := s.decodeStrict(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.Name == "" {
		writeErr(w, badRequest("name is required"))
		return
	}
	if req.Parallelism < 0 {
		writeErr(w, badRequest("parallelism must be ≥ 0"))
		return
	}
	// Clamp client-requested fan-out: parallel.Resolve accepts any positive
	// value (it only oversubscribes), but a remote tenant must not be able
	// to make every query spawn thousands of goroutines.
	if limit := 4 * runtime.GOMAXPROCS(0); req.Parallelism > limit {
		req.Parallelism = limit
	}
	if req.Shards < 0 {
		writeErr(w, badRequest("shards must be ≥ 0"))
		return
	}
	// Cap the shard count: the engine clamps to the series count anyway,
	// but a remote tenant must not get to size O(shards) allocations before
	// that clamp is known.
	if req.Shards > maxShards {
		writeErr(w, badRequest(fmt.Sprintf("shards must be ≤ %d", maxShards)))
		return
	}
	if (req.Path != "" || req.Snapshot != "") && !s.allowFS {
		writeErr(w, apiError{http.StatusForbidden, CodeForbidden,
			"filesystem sources (path/snapshot) are disabled; start the server with -allow-fs"})
		return
	}
	if len(req.ShardWorkers) > 0 && !s.allowFS {
		writeErr(w, apiError{http.StatusForbidden, CodeForbidden,
			"shardWorkers is disabled (it opens outbound worker connections); start the server with -allow-fs"})
		return
	}
	for _, u := range req.ShardWorkers {
		if u == "" {
			writeErr(w, badRequest("shardWorkers entries must be non-empty base URLs"))
			return
		}
	}
	st := req.ST
	if st == 0 && req.Snapshot == "" {
		st = 0.2 // the paper's sweet spot (Sec. 6.3)
	}
	lengths := req.Lengths
	if lengths == 0 {
		lengths = 16
	}
	spec := hub.Spec{
		Generator: req.Generator,
		Path:      req.Path,
		Snapshot:  req.Snapshot,
		Scale:     req.Scale,
		Seed:      req.Seed,
		Opts: onex.Options{ST: st, Seed: req.Seed, Parallelism: req.Parallelism,
			Shards: req.Shards, DcTopK: req.DcTopK, ShardWorkers: req.ShardWorkers},
		LengthCount: lengths,
	}
	for _, sr := range req.Series {
		spec.Series = append(spec.Series, onex.Series{Label: sr.Label, Values: sr.Values})
	}
	ds, err := s.hub.Register(req.Name, spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	if req.Wait {
		if err := ds.Wait(r.Context()); err != nil {
			_, code := classify(err)
			writeJSON(w, http.StatusInternalServerError, map[string]any{
				"error": err.Error(), "code": code, "dataset": ds.Info(),
			})
			return
		}
		writeJSON(w, http.StatusCreated, ds.Info())
		return
	}
	writeJSON(w, http.StatusAccepted, ds.Info())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	datasets := s.hub.List()
	infos := make([]hub.Info, 0, len(datasets))
	for _, ds := range datasets {
		infos = append(infos, ds.Info())
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(infos), "datasets": infos})
}

func (s *Server) handleDatasetInfo(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ds.Info())
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	purge := false
	switch v := r.URL.Query().Get("purge"); v {
	case "", "false", "0":
	case "true", "1":
		purge = true
	default:
		writeErr(w, badRequest("purge must be true or false"))
		return
	}
	if err := s.hub.Drop(r.PathValue("name"), purge); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": r.PathValue("name"), "purged": purge})
}

type extendRequest struct {
	Series []seriesJSON `json:"series"`
}

func (s *Server) handleExtend(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	var req extendRequest
	if err := s.decodeStrict(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if len(req.Series) == 0 {
		writeErr(w, badRequest("series must be non-empty"))
		return
	}
	series := make([]onex.Series, 0, len(req.Series))
	for _, sr := range req.Series {
		series = append(series, onex.Series{Label: sr.Label, Values: sr.Values})
	}
	if err := ds.Extend(series); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ds.Info())
}

type appendRequest struct {
	// SeriesID targets an existing series of the dataset (0-based, as
	// reported by match results). A pointer distinguishes "missing" from 0.
	SeriesID *int      `json:"seriesId"`
	Points   []float64 `json:"points"`
}

// handleAppend serves POST /v1/datasets/{name}/append: streaming point
// ingestion onto one existing series. The grown base swaps in atomically
// (generation bump, cache invalidation, re-snapshot); in-flight queries
// keep answering on the previous base.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	var req appendRequest
	if err := s.decodeStrict(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.SeriesID == nil {
		writeErr(w, badRequest("seriesId is required"))
		return
	}
	if *req.SeriesID < 0 {
		writeErr(w, badRequest("seriesId must be ≥ 0"))
		return
	}
	if len(req.Points) == 0 {
		writeErr(w, badRequest("points must be non-empty"))
		return
	}
	if err := ds.Append(*req.SeriesID, req.Points); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ds.Info())
}
