package api

import (
	"fmt"
	"net/http"
	"reflect"
	"testing"
)

// TestAsyncSyncEquivalenceProperty is the acceptance property of the jobs
// redesign: for every query family, the async job path returns exactly the
// answer the synchronous endpoint returns — at every Parallelism and
// Shards setting, with the result cache disabled so both sides actually
// compute.
func TestAsyncSyncEquivalenceProperty(t *testing.T) {
	for _, par := range []int{1, 8} {
		for _, shards := range []int{1, 3} {
			t.Run(fmt.Sprintf("par%d_shards%d", par, shards), func(t *testing.T) {
				cfg := testConfig()
				cfg.Parallelism = par
				cfg.Shards = shards
				cfg.CacheEntries = -1
				srv, hs := testServer(t, cfg)
				q := queryFor(t, srv)
				base := hs.URL + "/v1/datasets/" + srv.DefaultName()

				type family struct {
					name    string
					syncFn  func() map[string]any
					jobPath string
					jobBody any
				}
				families := []family{
					{
						name: "match",
						syncFn: func() map[string]any {
							return postJSON(t, base+"/match", matchItem{Query: q, Mode: "exact"}, http.StatusOK)
						},
						jobPath: base + "/match/jobs",
						jobBody: matchItem{Query: q, Mode: "exact"},
					},
					{
						name:    "knn",
						syncFn:  func() map[string]any { return postJSON(t, base+"/match", matchItem{Query: q, K: 4}, http.StatusOK) },
						jobPath: base + "/match/jobs",
						jobBody: matchItem{Query: q, K: 4},
					},
					{
						name: "range",
						syncFn: func() map[string]any {
							return postJSON(t, base+"/range", rangeItem{Query: q, Length: len(q), Radius: 0.5}, http.StatusOK)
						},
						jobPath: base + "/range/jobs",
						jobBody: rangeItem{Query: q, Length: len(q), Radius: 0.5},
					},
					{
						name: "rangeExact",
						syncFn: func() map[string]any {
							return postJSON(t, base+"/range", rangeItem{Query: q, Length: len(q), Radius: 0.5, Exact: true}, http.StatusOK)
						},
						jobPath: base + "/range/jobs",
						jobBody: rangeItem{Query: q, Length: len(q), Radius: 0.5, Exact: true},
					},
					{
						name: "seasonal",
						syncFn: func() map[string]any {
							return getJSON(t, fmt.Sprintf("%s/seasonal?length=%d", base, len(q)), http.StatusOK)
						},
						jobPath: base + "/seasonal/jobs",
						jobBody: map[string]any{"length": len(q)},
					},
				}
				for _, f := range families {
					sync := f.syncFn()
					job := postJSON(t, f.jobPath, f.jobBody, http.StatusAccepted)
					done := waitJob(t, hs.URL, job["id"].(string))
					if done["state"] != "done" {
						t.Fatalf("%s job: state %v (%v)", f.name, done["state"], done["error"])
					}
					if !reflect.DeepEqual(done["result"], map[string]any(sync)) {
						t.Errorf("%s: async ≠ sync\nasync %v\nsync  %v", f.name, done["result"], sync)
					}
				}

				// Batch path: every positional result equals its single-query
				// answer.
				body := map[string]any{"queries": []matchItem{
					{Query: q, Mode: "exact"}, {Query: q, K: 4},
				}}
				batch := postJSON(t, base+"/match/batch", body, http.StatusOK)
				items := batch["results"].([]any)
				wantExact := families[0].syncFn()
				wantKNN := families[1].syncFn()
				if got := items[0].(map[string]any)["result"]; !reflect.DeepEqual(got, map[string]any(wantExact)) {
					t.Errorf("batch item 0 ≠ single match: %v vs %v", got, wantExact)
				}
				if got := items[1].(map[string]any)["result"]; !reflect.DeepEqual(got, map[string]any(wantKNN)) {
					t.Errorf("batch item 1 ≠ single k-NN: %v vs %v", got, wantKNN)
				}
			})
		}
	}
}
