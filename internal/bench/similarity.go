package bench

import (
	"fmt"
	"time"

	"onex/internal/baseline"
	"onex/internal/core"
	"onex/internal/dataset"
	"onex/internal/dist"
	"onex/internal/query"
	"onex/internal/stats"
)

// SimilarityResult aggregates one dataset's similarity-query experiment —
// the shared measurement behind Fig. 2, Fig. 7/8 ground truths and
// Tables 1–3.
type SimilarityResult struct {
	Dataset string
	// Mean per-query wall time in seconds, any-length search.
	TimeONEX, TimePAA, TimeStd float64
	// Mean per-query wall time, same-length search.
	TimeONEXSame, TimeTrillion float64
	// Accuracy (%) per the Sec. 6.2.1 metric against the exact any-length
	// solution…
	AccONEX, AccPAA, AccTrillionAny float64
	// …and against the exact same-length solution (Table 2).
	AccONEXSame, AccTrillionSame float64
	// ExactAny holds the per-query exact any-length distances (reused by
	// the trade-off experiments).
	ExactAny []float64
	// OnexBuild is the ONEX offline construction time (context for Fig. 5).
	OnexBuild time.Duration
}

// timeIt runs f repeats times and returns the mean seconds per run.
func timeIt(repeats int, f func() error) (float64, error) {
	start := time.Now()
	for i := 0; i < repeats; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds() / float64(repeats), nil
}

// solutionDist is the harness accuracy metric: the DTW between the query
// and the subsequence a system returned, per-point scaled (÷√max(m,n)) so
// errors stay on the normalized-value scale instead of being crushed by the
// Def. 6 ÷2n divisor. Every system is measured identically from the
// location it reports, never from its self-reported score.
func solutionDist(w *Workload, q []float64, seriesID, start, length int) float64 {
	v := w.Data.Series[seriesID].Values[start : start+length]
	return dist.DTW(q, v) / baseline.PerPointScale(len(q), length)
}

// similarity runs (or returns the cached) similarity suite for one dataset.
func (s *Session) similarity(name string) (*SimilarityResult, error) {
	if r, ok := s.simCache[name]; ok {
		return r, nil
	}
	sp, ok := dataset.ByName(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", errUnknownDataset, name)
	}
	s.cfg.progressf("  %s: building workload…", name)
	w, err := buildWorkload(sp, s.cfg)
	if err != nil {
		return nil, err
	}
	r, err := runSimilaritySuite(w, s.cfg)
	if err != nil {
		return nil, err
	}
	s.simCache[name] = r
	return r, nil
}

// runSimilaritySuite executes the Sec. 6.2.1 experiment on one workload:
// every system answers the same queries; times are averaged per query and
// accuracies measured against the brute-force exact solution.
func runSimilaritySuite(w *Workload, cfg Config) (*SimilarityResult, error) {
	// The workload data is already normalized; ONEX must index it as-is so
	// every system searches the identical value space.
	eng, err := core.Build(w.Data, core.BuildConfig{
		ST:        cfg.ST,
		Lengths:   w.Lengths,
		Seed:      cfg.Seed,
		Normalize: core.NormalizeNone,
	})
	if err != nil {
		return nil, err
	}
	bf, err := baseline.NewBruteForce(w.Data)
	if err != nil {
		return nil, err
	}
	tr, err := baseline.NewTrillion(w.Data, baseline.TrillionConfig{})
	if err != nil {
		return nil, err
	}
	paa, err := baseline.NewPAA(w.Data, w.Lengths, 0)
	if err != nil {
		return nil, err
	}

	res := &SimilarityResult{Dataset: w.Name, OnexBuild: eng.BuildTime}
	var (
		exactAny, exactSame               []float64
		onexAny, onexSame, trill, paaD    []float64
		tOnex, tOnexS, tTrill, tPAA, tStd float64
	)
	cfg.progressf("  %s: %d queries × %d systems…", w.Name, len(w.Queries), 5)
	for qi, q := range w.Queries {
		// Ground truths (Standard DTW). The any-length scan is also the
		// timed "STANDARD-DTW" system of Fig. 2.
		var exAny baseline.Match
		sec, err := timeIt(1, func() error { // too slow to repeat
			var e error
			exAny, e = bf.BestMatchScale(q.Values, w.Lengths, baseline.PerPointScale)
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("bruteforce query %d: %w", qi, err)
		}
		tStd += sec
		exSame, err := bf.BestMatchScale(q.Values, []int{len(q.Values)}, baseline.PerPointScale)
		if err != nil {
			return nil, err
		}
		exactAny = append(exactAny, exAny.Dist)
		exactSame = append(exactSame, exSame.Dist)

		// ONEX, any length.
		var m query.Match
		sec, err = timeIt(cfg.Repeats, func() error {
			var e error
			m, e = eng.Proc.BestMatch(q.Values, query.MatchAny)
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("onex any query %d: %w", qi, err)
		}
		tOnex += sec
		onexAny = append(onexAny, solutionDist(w, q.Values, m.SeriesID, m.Start, m.Length))

		// ONEX-S, same length (Table 1/2's restricted mode).
		sec, err = timeIt(cfg.Repeats, func() error {
			var e error
			m, e = eng.Proc.BestMatch(q.Values, query.MatchExact)
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("onex same query %d: %w", qi, err)
		}
		tOnexS += sec
		onexSame = append(onexSame, solutionDist(w, q.Values, m.SeriesID, m.Start, m.Length))

		// Trillion (same length by design).
		var bm baseline.Match
		sec, err = timeIt(cfg.Repeats, func() error {
			var e error
			bm, e = tr.BestMatch(q.Values)
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("trillion query %d: %w", qi, err)
		}
		tTrill += sec
		trill = append(trill, solutionDist(w, q.Values, bm.SeriesID, bm.Start, bm.Length))

		// PAA (PDTW), any length over the same candidate pool.
		sec, err = timeIt(cfg.Repeats, func() error {
			var e error
			bm, e = paa.BestMatch(q.Values)
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("paa query %d: %w", qi, err)
		}
		tPAA += sec
		paaD = append(paaD, solutionDist(w, q.Values, bm.SeriesID, bm.Start, bm.Length))
	}

	nq := float64(len(w.Queries))
	res.TimeONEX = tOnex / nq
	res.TimeONEXSame = tOnexS / nq
	res.TimeTrillion = tTrill / nq
	res.TimePAA = tPAA / nq
	res.TimeStd = tStd / nq
	res.ExactAny = exactAny

	if res.AccONEX, err = stats.Accuracy(onexAny, exactAny); err != nil {
		return nil, err
	}
	if res.AccPAA, err = stats.Accuracy(paaD, exactAny); err != nil {
		return nil, err
	}
	if res.AccTrillionAny, err = stats.Accuracy(trill, exactAny); err != nil {
		return nil, err
	}
	if res.AccONEXSame, err = stats.Accuracy(onexSame, exactSame); err != nil {
		return nil, err
	}
	if res.AccTrillionSame, err = stats.Accuracy(trill, exactSame); err != nil {
		return nil, err
	}
	return res, nil
}

// runFig2 regenerates Fig. 2: mean similarity-query time per system per
// dataset (2a: all four systems; 2b: the ONEX-vs-Trillion zoom).
func runFig2(s *Session) ([]Table, error) {
	names, err := s.selectedDatasets()
	if err != nil {
		return nil, err
	}
	a := Table{
		Title:  "Fig 2a: similarity query time (s), all systems",
		Header: []string{"Dataset", "ONEX", "TRILLION", "PAA", "STANDARD-DTW"},
	}
	b := Table{
		Title:  "Fig 2b: similarity query time (s), ONEX vs TRILLION",
		Header: []string{"Dataset", "ONEX", "TRILLION", "Trillion/ONEX"},
	}
	for _, n := range names {
		r, err := s.similarity(n)
		if err != nil {
			return nil, err
		}
		a.Rows = append(a.Rows, []string{
			n, secs(r.TimeONEX), secs(r.TimeTrillion), secs(r.TimePAA), secs(r.TimeStd),
		})
		b.Rows = append(b.Rows, []string{
			n, secs(r.TimeONEX), secs(r.TimeTrillion), ratio(r.TimeTrillion, r.TimeONEX),
		})
	}
	return []Table{a, b}, nil
}

// runTable1 regenerates Table 1: same-length query time, ONEX-S vs Trillion.
func runTable1(s *Session) ([]Table, error) {
	names, err := s.selectedDatasets()
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  "Table 1: time (s), similarity solution same length as query",
		Header: append([]string{"System"}, names...),
	}
	onexRow := []string{"ONEX-S"}
	trillRow := []string{"Trillion"}
	for _, n := range names {
		r, err := s.similarity(n)
		if err != nil {
			return nil, err
		}
		onexRow = append(onexRow, secs(r.TimeONEXSame))
		trillRow = append(trillRow, secs(r.TimeTrillion))
	}
	t.Rows = [][]string{onexRow, trillRow}
	return []Table{t}, nil
}

// runTable2 regenerates Table 2: same-length accuracy, ONEX-S vs Trillion.
func runTable2(s *Session) ([]Table, error) {
	names, err := s.selectedDatasets()
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  "Table 2: accuracy (%), similarity solution same length as query",
		Header: append([]string{"System"}, names...),
	}
	onexRow := []string{"ONEX-S"}
	trillRow := []string{"Trillion"}
	for _, n := range names {
		r, err := s.similarity(n)
		if err != nil {
			return nil, err
		}
		onexRow = append(onexRow, pct(r.AccONEXSame))
		trillRow = append(trillRow, pct(r.AccTrillionSame))
	}
	t.Rows = [][]string{onexRow, trillRow}
	return []Table{t}, nil
}

// runTable3 regenerates Table 3: any-length accuracy, ONEX vs Trillion vs PAA.
func runTable3(s *Session) ([]Table, error) {
	names, err := s.selectedDatasets()
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  "Table 3: accuracy (%), similarity solution for any length",
		Header: append([]string{"System"}, names...),
	}
	rows := [][]string{{"ONEX"}, {"Trillion"}, {"PAA"}}
	for _, n := range names {
		r, err := s.similarity(n)
		if err != nil {
			return nil, err
		}
		rows[0] = append(rows[0], pct(r.AccONEX))
		rows[1] = append(rows[1], pct(r.AccTrillionAny))
		rows[2] = append(rows[2], pct(r.AccPAA))
	}
	t.Rows = rows
	return []Table{t}, nil
}

func secs(v float64) string { return fmt.Sprintf("%.4g", v) }
func pct(v float64) string  { return fmt.Sprintf("%.2f", v) }
func ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", a/b)
}
