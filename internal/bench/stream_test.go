package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunStreamSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("stream sweep in -short mode")
	}
	rep, tables, err := RunStreamSweep(Config{ST: 0.2, Seed: 1, Scale: 0.5, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) == 0 {
		t.Fatal("sweep produced no points")
	}
	for _, pt := range rep.Points {
		if pt.AppendSeconds <= 0 || pt.RebuildSeconds <= 0 {
			t.Errorf("n=%d: non-positive timings %+v", pt.Series, pt)
		}
		if pt.Drift <= 0 {
			t.Errorf("n=%d: sweep left zero drift (incremental path not exercised)", pt.Series)
		}
	}
	max := 0.0
	for _, pt := range rep.Points {
		if pt.Speedup > max {
			max = pt.Speedup
		}
	}
	if rep.LargestSpeedup != max {
		t.Errorf("LargestSpeedup = %v, want the max %v", rep.LargestSpeedup, max)
	}
	if len(tables) != 1 || len(tables[0].Rows) != len(rep.Points) {
		t.Error("table shape does not match the report")
	}
	var buf bytes.Buffer
	if err := WriteStreamReport(rep, &buf); err != nil {
		t.Fatal(err)
	}
	var round StreamReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if round.LargestSpeedup != rep.LargestSpeedup {
		t.Error("report did not round-trip")
	}
}
