package bench

import (
	"fmt"

	"onex/internal/dataset"
	"onex/internal/stats"
)

// runDatasets regenerates the dataset-statistics table the paper keeps in
// its tech report ("Statistics of our datasets can be found in our Tech
// Report", Sec. 6.1): per dataset the series count, length, class count,
// value range, and total subsequence cardinality, at paper shape.
func runDatasets(s *Session) ([]Table, error) {
	names, err := s.selectedDatasets()
	if err != nil {
		return nil, err
	}
	t := Table{
		Title: "Dataset statistics (paper shapes; tech-report table)",
		Header: []string{"Dataset", "N", "Length", "Classes",
			"Raw min", "Raw max", "Subsequences (all lengths)"},
	}
	for _, name := range names {
		sp, _ := dataset.ByName(name)
		// Generate a small sample to measure the raw value range; the
		// range is a property of the generator, not of N.
		sample := sp.Scaled(0.02).Generate(s.cfg.Seed)
		var lo, hi float64
		first := true
		for _, ser := range sample.Series {
			mn, mx := stats.Min(ser.Values), stats.Max(ser.Values)
			if first {
				lo, hi = mn, mx
				first = false
				continue
			}
			if mn < lo {
				lo = mn
			}
			if mx > hi {
				hi = mx
			}
		}
		// Paper-shape subsequence count without materializing the data:
		// N·L(L−1)/2.
		subseq := int64(sp.N) * int64(sp.Length) * int64(sp.Length-1) / 2
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", sp.N),
			fmt.Sprintf("%d", sp.Length),
			fmt.Sprintf("%d", sp.Classes),
			fmt.Sprintf("%.2f", lo),
			fmt.Sprintf("%.2f", hi),
			fmt.Sprintf("%d", subseq),
		})
	}
	return []Table{t}, nil
}
