package bench

import (
	"math/rand"

	"onex/internal/core"
	"onex/internal/dataset"
)

// runFig4 regenerates Fig. 4: seasonal-similarity query time per dataset for
// the user-driven case (5 random sample series × 5 lengths, averaged) and
// the data-driven case (5 random lengths). Standard DTW, PAA and Trillion
// cannot answer this query class (Sec. 6.2.2), so only ONEX appears.
func runFig4(s *Session) ([]Table, error) {
	names, err := s.selectedDatasets()
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  "Fig 4: seasonal similarity query time (s)",
		Header: []string{"Dataset", "Seasonal-Sample TS", "Seasonal-All TS"},
	}
	const nSeries, nLengths = 5, 5
	for _, name := range names {
		sp, _ := dataset.ByName(name)
		s.cfg.progressf("  %s: seasonal…", name)
		w, err := buildWorkload(sp, s.cfg)
		if err != nil {
			return nil, err
		}
		eng, err := core.Build(w.Data, core.BuildConfig{
			ST:        s.cfg.ST,
			Lengths:   w.Lengths,
			Seed:      s.cfg.Seed,
			Normalize: core.NormalizeNone,
		})
		if err != nil {
			return nil, err
		}
		r := rand.New(rand.NewSource(s.cfg.Seed + 13))
		pickLen := func() int { return w.Lengths[r.Intn(len(w.Lengths))] }

		// User-driven: sample series × lengths.
		var sampleTime float64
		for i := 0; i < nSeries; i++ {
			sid := r.Intn(w.Data.N())
			for j := 0; j < nLengths; j++ {
				l := pickLen()
				sec, err := timeIt(s.cfg.Repeats, func() error {
					_, e := eng.Proc.SeasonalSample(sid, l)
					return e
				})
				if err != nil {
					return nil, err
				}
				sampleTime += sec
			}
		}
		sampleTime /= nSeries * nLengths

		// Data-driven: lengths only.
		var allTime float64
		for j := 0; j < nLengths; j++ {
			l := pickLen()
			sec, err := timeIt(s.cfg.Repeats, func() error {
				_, e := eng.Proc.SeasonalAll(l)
				return e
			})
			if err != nil {
				return nil, err
			}
			allTime += sec
		}
		allTime /= nLengths

		t.Rows = append(t.Rows, []string{name, secs(sampleTime), secs(allTime)})
	}
	return []Table{t}, nil
}
