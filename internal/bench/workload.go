package bench

import (
	"fmt"
	"math/rand"

	"onex/internal/dataset"
	"onex/internal/ts"
)

// benchN is the default bench-scale series count per dataset, chosen so the
// brute-force ground truth stays tractable while every dataset keeps its
// paper series length (per-length structure intact). Full runs use the
// paper cardinalities.
var benchN = map[string]int{
	"ItalyPower": 67, // full paper size — it is tiny
	"ECG":        50,
	"Face":       45,
	"Wafer":      40,
	"Symbols":    14,
	"TwoPattern": 36,
}

// Query is one workload query per the Sec. 6.2.1 methodology.
type Query struct {
	// Values is the query sequence in the workload's normalized space.
	Values []float64
	// InDataset records whether the query still exists verbatim in the
	// searched data (first half) or was taken out (second half, following
	// Fu et al. [13]).
	InDataset bool
}

// Workload is a dataset prepared for the similarity experiments: normalized
// data with the out-of-dataset query sources removed, the indexed length
// set, and the 20-query mix.
type Workload struct {
	Name    string
	Data    *ts.Dataset // normalized; never mutated by experiments
	Lengths []int       // candidate subsequence lengths for every system
	Queries []Query
}

// spreadLengths returns count lengths evenly spread over [2, max]
// (always including the extremes when count ≥ 2).
func spreadLengths(max, count int) []int {
	if max < 2 {
		return nil
	}
	if count <= 1 || count >= max-1 {
		all := make([]int, 0, max-1)
		for l := 2; l <= max; l++ {
			all = append(all, l)
		}
		return all
	}
	out := make([]int, 0, count)
	prev := 0
	for i := 0; i < count; i++ {
		l := 2 + i*(max-2)/(count-1)
		if l != prev {
			out = append(out, l)
			prev = l
		}
	}
	return out
}

// buildWorkload prepares a dataset per the paper's query methodology:
// generate at bench or paper scale, min-max normalize the whole dataset,
// draw half the queries from series that are then removed ("outside the
// dataset"), and the other half from surviving series ("in the dataset").
func buildWorkload(sp dataset.Spec, cfg Config) (*Workload, error) {
	n := sp.N
	if !cfg.Full {
		base, ok := benchN[sp.Name]
		if !ok {
			base = sp.N
		}
		n = int(float64(base) * cfg.Scale)
		if n < 8 {
			n = 8
		}
		if n > sp.N {
			n = sp.N
		}
	}
	spec := sp
	spec.N = n
	d := spec.Generate(cfg.Seed)
	if err := d.NormalizeMinMax(); err != nil {
		return nil, fmt.Errorf("bench: normalizing %s: %w", sp.Name, err)
	}

	lengthCount := cfg.LengthCount
	if cfg.Full {
		lengthCount = sp.Length // all lengths
	}
	lengths := spreadLengths(sp.Length, lengthCount)
	if len(lengths) == 0 {
		return nil, fmt.Errorf("bench: %s series too short", sp.Name)
	}

	nOut := cfg.Queries / 2
	nIn := cfg.Queries - nOut
	if n-nOut < 2 {
		return nil, fmt.Errorf("bench: %s too small for %d out-of-dataset queries", sp.Name, nOut)
	}
	r := rand.New(rand.NewSource(cfg.Seed + 7919))

	// Query lengths cycle across the indexed set so the workload covers a
	// wide range from smallest to largest (Sec. 6.2.1). The shortest
	// indexed length (2) makes a degenerate query; start from the second.
	qLen := func(i int) int {
		usable := lengths
		if len(usable) > 1 {
			usable = usable[1:]
		}
		return usable[(i*len(usable)/cfg.Queries)%len(usable)]
	}

	// Out-of-dataset queries: extract from distinct series, then drop those
	// series from the searched data (Fu et al. [13]). Synthetic datasets
	// contain near-twin series, so removal alone would still leave a
	// verbatim-like copy; a small amplitude/offset jitter turns these into
	// the paper's "designed sequence that might not be present" scenario
	// (Sec. 1.1) while keeping the shape realistic. EXPERIMENTS.md §Workload
	// documents this deviation.
	removed := make(map[int]bool, nOut)
	perm := r.Perm(n)
	var queries []Query
	for i := 0; i < nOut; i++ {
		sid := perm[i]
		removed[sid] = true
		s := d.Series[sid]
		l := qLen(nIn + i)
		if l > s.Len() {
			l = s.Len()
		}
		start := r.Intn(s.Len() - l + 1)
		v := append([]float64(nil), s.Values[start:start+l]...)
		amp := 0.6 + 0.8*r.Float64()
		off := -0.2 + 0.4*r.Float64()
		for j := range v {
			v[j] = v[j]*amp + off
		}
		queries = append(queries, Query{Values: v, InDataset: false})
	}
	kept := &ts.Dataset{Name: d.Name}
	for _, s := range d.Series {
		if !removed[s.ID] {
			kept.Append(s.Label, s.Values)
		}
	}

	// In-dataset queries: promoted subsequences of surviving series.
	inQueries := make([]Query, 0, nIn)
	for i := 0; i < nIn; i++ {
		s := kept.Series[r.Intn(kept.N())]
		l := qLen(i)
		if l > s.Len() {
			l = s.Len()
		}
		start := r.Intn(s.Len() - l + 1)
		inQueries = append(inQueries, Query{
			Values:    append([]float64(nil), s.Values[start:start+l]...),
			InDataset: true,
		})
	}
	// Paper order: the 10 in-dataset queries first, then the 10 removed.
	queries = append(inQueries, queries...)

	return &Workload{Name: sp.Name, Data: kept, Lengths: lengths, Queries: queries}, nil
}
