package bench

import (
	"fmt"
	"time"

	"onex/internal/core"
	"onex/internal/dataset"
)

// stSweep is the similarity-threshold sweep of Figs. 5 and 6.
var stSweep = []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0}

// constructionPoint measures one (dataset, ST) offline build.
type constructionPoint struct {
	buildTime time.Duration
	reps      int
	subseq    int64
	sizeBytes int64
}

func (s *Session) buildPoint(name string, st float64) (constructionPoint, error) {
	sp, ok := dataset.ByName(name)
	if !ok {
		return constructionPoint{}, fmt.Errorf("%w: %q", errUnknownDataset, name)
	}
	w, err := buildWorkload(sp, s.cfg)
	if err != nil {
		return constructionPoint{}, err
	}
	eng, err := core.Build(w.Data, core.BuildConfig{
		ST:        st,
		Lengths:   w.Lengths,
		Seed:      s.cfg.Seed,
		Normalize: core.NormalizeNone,
	})
	if err != nil {
		return constructionPoint{}, err
	}
	return constructionPoint{
		buildTime: eng.BuildTime,
		reps:      eng.Base.TotalGroups(),
		subseq:    eng.Base.TotalSubseq,
		sizeBytes: eng.Base.SizeBytes(),
	}, nil
}

// runFig5 regenerates Fig. 5: offline construction time vs ST per dataset.
func runFig5(s *Session) ([]Table, error) {
	return s.sweepTable(
		"Fig 5: offline construction time (s) varying similarity threshold",
		func(p constructionPoint) string { return secs(p.buildTime.Seconds()) },
	)
}

// runFig6 regenerates Fig. 6: number of representatives vs ST per dataset.
func runFig6(s *Session) ([]Table, error) {
	return s.sweepTable(
		"Fig 6: number of representatives varying similarity threshold",
		func(p constructionPoint) string { return fmt.Sprintf("%d", p.reps) },
	)
}

func (s *Session) sweepTable(title string, cell func(constructionPoint) string) ([]Table, error) {
	names, err := s.selectedDatasets()
	if err != nil {
		return nil, err
	}
	t := Table{Title: title, Header: []string{"Dataset"}}
	for _, st := range stSweep {
		t.Header = append(t.Header, fmt.Sprintf("ST=%.1f", st))
	}
	for _, name := range names {
		row := []string{name}
		for _, st := range stSweep {
			s.cfg.progressf("  %s ST=%.1f…", name, st)
			p, err := s.buildPoint(name, st)
			if err != nil {
				return nil, err
			}
			row = append(row, cell(p))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// runTable4 regenerates Table 4: representatives, total subsequences and
// index size (MB) per dataset at the experiment threshold.
func runTable4(s *Session) ([]Table, error) {
	names, err := s.selectedDatasets()
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  fmt.Sprintf("Table 4: representatives, subsequences and size (MB) at ST=%.2f", s.cfg.ST),
		Header: []string{"DataSet", "Representatives", "Subsequences", "Size in MB"},
	}
	for _, name := range names {
		s.cfg.progressf("  %s: table4 build…", name)
		p, err := s.buildPoint(name, s.cfg.ST)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", p.reps),
			fmt.Sprintf("%d", p.subseq),
			fmt.Sprintf("%.2f", float64(p.sizeBytes)/(1<<20)),
		})
	}
	return []Table{t}, nil
}
