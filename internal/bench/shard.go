package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"onex/internal/core"
	"onex/internal/dataset"
	"onex/internal/query"
	"onex/internal/shard"
	"onex/internal/ts"
)

// ShardReport is the machine-readable payload of the intra-dataset sharding
// sweep (BENCH_shard.json): offline build and query/batch/k-NN timings at
// shard counts 1/2/4/8, over two series populations — a homogeneous one
// (ECG: every series from one template, so groups span every shard — the
// worst case for per-shard index locality) and a heterogeneous one
// (independent random walks: groups localize to their series' home shards —
// the millions-of-distinct-series scenario intra-dataset sharding targets).
// MaxShardGroups vs GlobalGroups is the Dc scale axis: each shard's
// inter-representative matrix is over its own restricted group count.
// Equivalent records that every sharded answer was verified identical to
// the unsharded reference during the sweep — the engine's core property.
// Wall-clock speedups track real hardware parallelism; expect ≈ 1× at
// GOMAXPROCS=1.
type ShardReport struct {
	GeneratedAt string `json:"generatedAt"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"numcpu"`

	Series  int     `json:"series"`
	Lengths []int   `json:"lengths"`
	ST      float64 `json:"st"`
	Seed    int64   `json:"seed"`
	Queries int     `json:"queries"`
	Repeats int     `json:"repeats"`

	Points []ShardPoint `json:"points"`

	// Equivalent records that every sweep answer (BestMatch, batch, k-NN)
	// at every shard count equaled the Shards=1 reference of its population
	// (same subsequence, distance within 1e-12).
	Equivalent bool `json:"equivalent"`

	BestBuildSpeedup float64 `json:"bestBuildSpeedup"`
	BestQuerySpeedup float64 `json:"bestQuerySpeedup"`
	BestBatchSpeedup float64 `json:"bestBatchSpeedup"`
}

// ShardPoint is one sweep setting: a population served at one shard count.
type ShardPoint struct {
	// Population names the series population (ECG or RandomWalk).
	Population string `json:"population"`
	// Shards is the layout (1 = the unsharded reference engine).
	Shards int `json:"shards"`
	// BuildSeconds is the best-of-Repeats offline construction time
	// (global grouping + per-shard index derivation).
	BuildSeconds float64 `json:"buildSeconds"`
	// QueryMillis is the best-of-Repeats mean single-BestMatch latency.
	QueryMillis float64 `json:"queryMillis"`
	// BatchMillis is the best-of-Repeats per-query latency of one
	// BestMatchBatch over the whole workload.
	BatchMillis float64 `json:"batchMillis"`
	// KNNMillis is the best-of-Repeats mean BestKMatches(k=5) latency.
	KNNMillis float64 `json:"knnMillis"`
	// BuildSpeedup/QuerySpeedup/BatchSpeedup are the population's Shards=1
	// wall times divided by this layout's.
	BuildSpeedup float64 `json:"buildSpeedup"`
	QuerySpeedup float64 `json:"querySpeedup"`
	BatchSpeedup float64 `json:"batchSpeedup"`
	// IndexBytes sums the per-shard GTI+LSI footprints. GlobalGroups is the
	// (layout-invariant) global group count; MaxShardGroups and
	// SumShardGroups describe how it spread across shards — the largest
	// per-shard Dc matrix is (MaxShardGroups/GlobalGroups)² of the
	// monolithic one.
	IndexBytes     int64 `json:"indexBytes"`
	GlobalGroups   int   `json:"globalGroups"`
	MaxShardGroups int   `json:"maxShardGroups"`
	SumShardGroups int   `json:"sumShardGroups"`
	ShardSeries    []int `json:"shardSeries"`
	ShardGroups    []int `json:"shardGroups"`
}

// RunShardSweep builds the two populations at shard counts 1/2/4/8 and
// times the offline construction plus the single/batch/k-NN query paths at
// each layout, verifying along the way that every sharded answer equals the
// unsharded one. The human-readable table goes to the returned slice; the
// report is ready for JSON.
func RunShardSweep(cfg Config) (*ShardReport, []Table, error) {
	cfg.fillDefaults()
	n := int(float64(80) * cfg.Scale)
	if n < 64 {
		n = 64
	}
	lengths := []int{32, 48, 64}

	rep := &ShardReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Series:      n,
		Lengths:     lengths,
		ST:          cfg.ST,
		Seed:        cfg.Seed,
		Queries:     cfg.Queries,
		Repeats:     cfg.Repeats,
		Equivalent:  true,
	}

	ecg := dataset.ECG
	if n < ecg.N {
		ecg.N = n
	}
	walkSpec := dataset.RandomWalk("RandomWalk", n, 96)
	for _, spec := range []dataset.Spec{ecg, walkSpec} {
		data := spec.Generate(cfg.Seed)
		if err := data.NormalizeMinMax(); err != nil {
			return nil, nil, err
		}
		pts, err := runShardPopulation(cfg, rep, spec.Name, data, lengths)
		if err != nil {
			return nil, nil, err
		}
		rep.Points = append(rep.Points, pts...)
	}

	for i := range rep.Points {
		pt := &rep.Points[i]
		var base *ShardPoint
		for j := range rep.Points {
			if rep.Points[j].Population == pt.Population && rep.Points[j].Shards == 1 {
				base = &rep.Points[j]
				break
			}
		}
		pt.BuildSpeedup = base.BuildSeconds / pt.BuildSeconds
		pt.QuerySpeedup = base.QueryMillis / pt.QueryMillis
		pt.BatchSpeedup = base.BatchMillis / pt.BatchMillis
		if pt.BuildSpeedup > rep.BestBuildSpeedup {
			rep.BestBuildSpeedup = pt.BuildSpeedup
		}
		if pt.QuerySpeedup > rep.BestQuerySpeedup {
			rep.BestQuerySpeedup = pt.QuerySpeedup
		}
		if pt.BatchSpeedup > rep.BestBatchSpeedup {
			rep.BestBatchSpeedup = pt.BatchSpeedup
		}
	}

	table := Table{
		Title: fmt.Sprintf("Intra-dataset sharding sweep (%d series, GOMAXPROCS=%d)",
			n, rep.GOMAXPROCS),
		Header: []string{"population", "shards", "build s", "query ms", "batch ms", "knn ms", "max shard groups", "index MB"},
	}
	for _, pt := range rep.Points {
		table.Rows = append(table.Rows, []string{
			pt.Population,
			fmt.Sprint(pt.Shards),
			fmt.Sprintf("%.4f", pt.BuildSeconds),
			fmt.Sprintf("%.3f", pt.QueryMillis),
			fmt.Sprintf("%.3f", pt.BatchMillis),
			fmt.Sprintf("%.3f", pt.KNNMillis),
			fmt.Sprintf("%d/%d", pt.MaxShardGroups, pt.GlobalGroups),
			fmt.Sprintf("%.2f", float64(pt.IndexBytes)/(1<<20)),
		})
	}
	return rep, []Table{table}, nil
}

// runShardPopulation sweeps one prepared population across the shard
// counts, verifying every answer against the population's Shards=1
// reference.
func runShardPopulation(cfg Config, rep *ShardReport, name string, data *ts.Dataset, lengths []int) ([]ShardPoint, error) {
	buildCfg := core.BuildConfig{
		ST: cfg.ST, Lengths: lengths, Seed: cfg.Seed,
		Normalize: core.NormalizeNone, // data pre-normalized by the caller
	}
	queries := parallelQueries(data, lengths, cfg.Queries, cfg.Seed)

	type answer struct {
		sid, start, length int
		dist               float64
	}
	check := func(stage string, shards int, ref, got []answer) error {
		if len(ref) != len(got) {
			rep.Equivalent = false
			return fmt.Errorf("bench: %s %s shards=%d: %d answers, want %d", name, stage, shards, len(got), len(ref))
		}
		for i := range got {
			if got[i].sid != ref[i].sid || got[i].start != ref[i].start ||
				got[i].length != ref[i].length || math.Abs(got[i].dist-ref[i].dist) > 1e-12 {
				rep.Equivalent = false
				return fmt.Errorf("bench: %s %s shards=%d: answer %d diverged from unsharded (%+v vs %+v)",
					name, stage, shards, i, got[i], ref[i])
			}
		}
		return nil
	}

	var out []ShardPoint
	var refSingle, refBatch, refKNN []answer
	globalGroups := 0
	for _, shards := range []int{1, 2, 4, 8} {
		if shards > data.N() {
			break
		}
		pt := ShardPoint{Population: name, Shards: shards}

		var eng *shard.Engine
		pt.BuildSeconds = math.Inf(1)
		for r := 0; r < cfg.Repeats; r++ {
			start := time.Now()
			e, err := shard.Build(data, buildCfg, shards, nil)
			if err != nil {
				return nil, fmt.Errorf("bench: %s shard build shards=%d: %w", name, shards, err)
			}
			if s := time.Since(start).Seconds(); s < pt.BuildSeconds {
				pt.BuildSeconds = s
			}
			eng = e
		}
		pt.IndexBytes = eng.SizeBytes()
		for _, st := range eng.ShardStats() {
			pt.ShardSeries = append(pt.ShardSeries, st.Series)
			pt.ShardGroups = append(pt.ShardGroups, st.Groups)
			pt.SumShardGroups += st.Groups
			if st.Groups > pt.MaxShardGroups {
				pt.MaxShardGroups = st.Groups
			}
		}
		if shards == 1 {
			globalGroups = pt.SumShardGroups
		}
		pt.GlobalGroups = globalGroups

		// Single-query latency.
		var single []answer
		secs := math.Inf(1)
		for r := 0; r < cfg.Repeats; r++ {
			single = single[:0]
			start := time.Now()
			for _, q := range queries {
				m, err := eng.BestMatch(context.Background(), q, query.MatchAny)
				if err != nil {
					return nil, fmt.Errorf("bench: %s shard query shards=%d: %w", name, shards, err)
				}
				single = append(single, answer{m.SeriesID, m.Start, m.Length, m.Dist})
			}
			if s := time.Since(start).Seconds(); s < secs {
				secs = s
			}
		}
		pt.QueryMillis = secs * 1000 / float64(len(queries))
		if refSingle == nil {
			refSingle = append([]answer(nil), single...)
		} else if err := check("query", shards, refSingle, single); err != nil {
			return nil, err
		}

		// Batch latency.
		var batch []answer
		secs = math.Inf(1)
		for r := 0; r < cfg.Repeats; r++ {
			batch = batch[:0]
			start := time.Now()
			for _, br := range eng.BestMatchBatch(context.Background(), queries, query.MatchAny) {
				if br.Err != nil {
					return nil, br.Err
				}
				batch = append(batch, answer{br.Match.SeriesID, br.Match.Start, br.Match.Length, br.Match.Dist})
			}
			if s := time.Since(start).Seconds(); s < secs {
				secs = s
			}
		}
		pt.BatchMillis = secs * 1000 / float64(len(queries))
		if refBatch == nil {
			refBatch = append([]answer(nil), batch...)
		} else if err := check("batch", shards, refBatch, batch); err != nil {
			return nil, err
		}

		// k-NN latency, answers verified too.
		var knn []answer
		secs = math.Inf(1)
		for r := 0; r < cfg.Repeats; r++ {
			knn = knn[:0]
			start := time.Now()
			for _, q := range queries {
				ms, err := eng.BestKMatches(context.Background(), q, query.MatchAny, 5)
				if err != nil {
					return nil, fmt.Errorf("bench: %s shard knn shards=%d: %w", name, shards, err)
				}
				for _, m := range ms {
					knn = append(knn, answer{m.SeriesID, m.Start, m.Length, m.Dist})
				}
			}
			if s := time.Since(start).Seconds(); s < secs {
				secs = s
			}
		}
		pt.KNNMillis = secs * 1000 / float64(len(queries))
		if refKNN == nil {
			refKNN = append([]answer(nil), knn...)
		} else if err := check("knn", shards, refKNN, knn); err != nil {
			return nil, err
		}

		out = append(out, pt)
		cfg.progressf("shard: %s shards=%d build %.3fs query %.3fms batch %.3fms knn %.3fms maxShardGroups %d/%d",
			name, shards, pt.BuildSeconds, pt.QueryMillis, pt.BatchMillis, pt.KNNMillis, pt.MaxShardGroups, pt.GlobalGroups)
	}
	return out, nil
}

// WriteShardReport serializes the report as indented JSON.
func WriteShardReport(rep *ShardReport, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
