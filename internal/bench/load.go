package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"onex/internal/api"
	"onex/internal/stats"
)

// LoadReport is the machine-readable payload of the closed-loop serve-load
// sweep (BENCH_load.json): a live onex-server (the real /v1 handler stack —
// router, JSON, metrics middleware, hub, jobs) is driven by C concurrent
// closed-loop clients issuing a fixed mix of sync single queries, uniform
// batches and async jobs, at increasing C. Each point reports achieved
// throughput and client-observed latency quantiles, so the curve shows how
// latency degrades as offered load grows — the capacity planning view the
// per-route histograms on /v1/stats provide in production.
type LoadReport struct {
	GeneratedAt string `json:"generatedAt"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"numcpu"`

	Dataset      string  `json:"dataset"`
	Series       int     `json:"series"`
	ST           float64 `json:"st"`
	Seed         int64   `json:"seed"`
	LevelSeconds float64 `json:"levelSeconds"`

	// Mix is the op weighting every client draws from (closed loop: a
	// client issues its next request only after the previous completes;
	// "job" latency spans submit → terminal poll).
	Mix map[string]int `json:"mix"`

	Points []LoadPoint `json:"points"`

	// PeakThroughput is the best achieved req/s across levels; P99AtPeak is
	// that level's p99 — the headline capacity/latency pair.
	PeakThroughput float64 `json:"peakThroughput"`
	P99AtPeak      float64 `json:"p99AtPeakMillis"`

	// Work is the server-side work the whole sweep induced, scraped from
	// GET /v1/stats after the last level — it ties the client-observed
	// latency curve to the engine work (pruning cascade counters), cache
	// effectiveness and lifecycle/job events behind it.
	Work LoadWork `json:"work"`
}

// LoadWork is the /v1/stats counter snapshot recorded at the end of the
// sweep (the same tallies /metrics exposes to Prometheus).
type LoadWork struct {
	Query  map[string]uint64 `json:"query"`
	Cache  map[string]uint64 `json:"cache"`
	Events map[string]uint64 `json:"events"`
	Jobs   map[string]uint64 `json:"jobs"`
}

// scrapeLoadWork reads GET /v1/stats over the wire (the same surface a
// monitoring agent scrapes) and flattens the counter sections.
func scrapeLoadWork(client *http.Client, baseURL string) (LoadWork, error) {
	resp, err := client.Get(baseURL + "/v1/stats")
	if err != nil {
		return LoadWork{}, fmt.Errorf("bench: scrape /v1/stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return LoadWork{}, fmt.Errorf("bench: scrape /v1/stats: status %d", resp.StatusCode)
	}
	var st struct {
		Hub struct {
			Query  map[string]uint64 `json:"query"`
			Cache  map[string]uint64 `json:"cache"`
			Events map[string]uint64 `json:"events"`
		} `json:"hub"`
		Jobs struct {
			Submitted uint64 `json:"submitted"`
			Rejected  uint64 `json:"rejected"`
			Done      uint64 `json:"done"`
			Failed    uint64 `json:"failed"`
			Canceled  uint64 `json:"canceled"`
			Evicted   uint64 `json:"evicted"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return LoadWork{}, fmt.Errorf("bench: decode /v1/stats: %w", err)
	}
	return LoadWork{
		Query:  st.Hub.Query,
		Cache:  st.Hub.Cache,
		Events: st.Hub.Events,
		Jobs: map[string]uint64{
			"submitted": st.Jobs.Submitted, "rejected": st.Jobs.Rejected,
			"done": st.Jobs.Done, "failed": st.Jobs.Failed,
			"canceled": st.Jobs.Canceled, "evicted": st.Jobs.Evicted,
		},
	}, nil
}

// LoadPoint is one offered-load level: C closed-loop clients.
type LoadPoint struct {
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	Throughput  float64 `json:"throughputRPS"`

	MeanMillis float64 `json:"meanMillis"`
	P50Millis  float64 `json:"p50Millis"`
	P90Millis  float64 `json:"p90Millis"`
	P99Millis  float64 `json:"p99Millis"`

	// ByOp breaks latency out per op class (match, knn, range, seasonal,
	// batch, job).
	ByOp map[string]LoadOpStats `json:"byOp"`
}

// LoadOpStats is one op class's share of a load point.
type LoadOpStats struct {
	Requests  int     `json:"requests"`
	P50Millis float64 `json:"p50Millis"`
	P99Millis float64 `json:"p99Millis"`
}

// loadMix is the fixed op weighting: mostly cheap sync queries, a steady
// trickle of batches and async jobs — the production traffic shape the job
// subsystem is designed to absorb.
var loadMix = []struct {
	op     string
	weight int
}{
	{"match", 4},
	{"knn", 2},
	{"range", 2},
	{"seasonal", 1},
	{"batch", 2},
	{"job", 1},
}

// RunServeLoad boots an in-process server on a generated dataset and sweeps
// closed-loop client counts 1/2/4/8/16, recording client-observed latency
// for every request. cfg.Repeats scales the per-level duration (500ms per
// repeat), cfg.Scale the dataset size.
func RunServeLoad(cfg Config) (*LoadReport, []Table, error) {
	cfg.fillDefaults()
	levelDur := time.Duration(cfg.Repeats) * 500 * time.Millisecond

	srv, err := api.New(api.Config{
		Generator:    "ItalyPower",
		Scale:        0.5 * cfg.Scale,
		ST:           cfg.ST,
		Lengths:      6,
		Seed:         cfg.Seed,
		JobWorkers:   4,
		MaxJobs:      4096,
		JobTTL:       time.Minute,
		CacheEntries: 0, // default cache: a realistic hit/miss mixture
	})
	if err != nil {
		return nil, nil, fmt.Errorf("bench: load server: %w", err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Routes())
	defer hs.Close()

	info, err := srv.DefaultInfo()
	if err != nil {
		return nil, nil, err
	}
	if len(info.Lengths) == 0 {
		return nil, nil, fmt.Errorf("bench: load dataset has no indexed lengths")
	}
	length := info.Lengths[len(info.Lengths)/2]

	rep := &LoadReport{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Dataset:      srv.DefaultName(),
		Series:       info.Series,
		ST:           cfg.ST,
		Seed:         cfg.Seed,
		LevelSeconds: levelDur.Seconds(),
		Mix:          map[string]int{},
	}
	for _, m := range loadMix {
		rep.Mix[m.op] = m.weight
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 64,
	}}
	defer client.CloseIdleConnections()

	for _, c := range []int{1, 2, 4, 8, 16} {
		pt, err := runLoadLevel(client, hs.URL, srv.DefaultName(), length, c, levelDur, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		rep.Points = append(rep.Points, *pt)
		if pt.Throughput > rep.PeakThroughput {
			rep.PeakThroughput = pt.Throughput
			rep.P99AtPeak = pt.P99Millis
		}
		cfg.progressf("load: clients=%d %.0f req/s p50 %.2fms p99 %.2fms errors %d",
			c, pt.Throughput, pt.P50Millis, pt.P99Millis, pt.Errors)
	}

	work, err := scrapeLoadWork(client, hs.URL)
	if err != nil {
		return nil, nil, err
	}
	rep.Work = work
	cfg.progressf("load: observed work queries=%d dtw=%d cache hit/miss=%d/%d jobs done=%d",
		work.Query["queries"], work.Query["dtwComputed"],
		work.Cache["hits"], work.Cache["misses"], work.Jobs["done"])

	table := Table{
		Title: fmt.Sprintf("Closed-loop serve load sweep (%s, %d series, GOMAXPROCS=%d, %.1fs/level)",
			rep.Dataset, rep.Series, rep.GOMAXPROCS, rep.LevelSeconds),
		Header: []string{"clients", "req/s", "p50 ms", "p90 ms", "p99 ms", "mean ms", "errors"},
	}
	for _, pt := range rep.Points {
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(pt.Concurrency),
			fmt.Sprintf("%.0f", pt.Throughput),
			fmt.Sprintf("%.2f", pt.P50Millis),
			fmt.Sprintf("%.2f", pt.P90Millis),
			fmt.Sprintf("%.2f", pt.P99Millis),
			fmt.Sprintf("%.2f", pt.MeanMillis),
			fmt.Sprint(pt.Errors),
		})
	}
	return rep, []Table{table}, nil
}

// loadSample is one client-observed request: op class, wall latency, ok.
type loadSample struct {
	op     string
	millis float64
	ok     bool
}

// runLoadLevel runs c closed-loop clients against the live server for dur
// and aggregates their samples into one LoadPoint.
func runLoadLevel(client *http.Client, baseURL, dataset string, length, c int, dur time.Duration, seed int64) (*LoadPoint, error) {
	base := baseURL + "/v1/datasets/" + dataset
	deadline := time.Now().Add(dur)

	perWorker := make([][]loadSample, c)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919 + int64(c)))
			cl := &loadClient{client: client, base: base, baseURL: baseURL, length: length, rng: rng}
			for time.Now().Before(deadline) {
				perWorker[w] = append(perWorker[w], cl.next())
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	pt := &LoadPoint{Concurrency: c, ByOp: map[string]LoadOpStats{}}
	var all []float64
	byOp := map[string][]float64{}
	for _, ws := range perWorker {
		for _, s := range ws {
			pt.Requests++
			if !s.ok {
				pt.Errors++
				continue
			}
			all = append(all, s.millis)
			byOp[s.op] = append(byOp[s.op], s.millis)
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("bench: load level %d produced no successful requests", c)
	}
	pt.Throughput = float64(pt.Requests) / elapsed
	pt.MeanMillis = stats.Mean(all)
	var err error
	if pt.P50Millis, err = stats.Percentile(all, 50); err != nil {
		return nil, err
	}
	if pt.P90Millis, err = stats.Percentile(all, 90); err != nil {
		return nil, err
	}
	if pt.P99Millis, err = stats.Percentile(all, 99); err != nil {
		return nil, err
	}
	for op, xs := range byOp {
		p50, err := stats.Percentile(xs, 50)
		if err != nil {
			return nil, err
		}
		p99, err := stats.Percentile(xs, 99)
		if err != nil {
			return nil, err
		}
		pt.ByOp[op] = LoadOpStats{Requests: len(xs), P50Millis: p50, P99Millis: p99}
	}
	return pt, nil
}

// loadClient issues one weighted-random request per next() call. Queries
// are perturbed per request so the sweep exercises a cache hit/miss
// mixture rather than a single hot entry.
type loadClient struct {
	client  *http.Client
	base    string
	baseURL string
	length  int
	rng     *rand.Rand
}

func (cl *loadClient) query() []float64 {
	q := make([]float64, cl.length)
	phase := cl.rng.Float64()
	for i := range q {
		q[i] = 0.5 + 0.3*float64(i%7)/7 + 0.05*phase
	}
	return q
}

func (cl *loadClient) next() loadSample {
	pick := cl.rng.Intn(totalLoadWeight())
	op := loadMix[0].op
	for _, m := range loadMix {
		if pick < m.weight {
			op = m.op
			break
		}
		pick -= m.weight
	}
	start := time.Now()
	ok := cl.issue(op)
	return loadSample{op: op, millis: float64(time.Since(start).Microseconds()) / 1000, ok: ok}
}

func totalLoadWeight() int {
	n := 0
	for _, m := range loadMix {
		n += m.weight
	}
	return n
}

// issue performs one request of the given op class and reports success.
func (cl *loadClient) issue(op string) bool {
	switch op {
	case "match":
		return cl.post(cl.base+"/match", map[string]any{"query": cl.query()})
	case "knn":
		return cl.post(cl.base+"/match", map[string]any{"query": cl.query(), "k": 3})
	case "range":
		return cl.post(cl.base+"/range", map[string]any{
			"query": cl.query(), "length": cl.length, "radius": 0.4,
		})
	case "seasonal":
		resp, err := cl.client.Get(fmt.Sprintf("%s/seasonal?length=%d", cl.base, cl.length))
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	case "batch":
		items := make([]map[string]any, 8)
		for i := range items {
			items[i] = map[string]any{"query": cl.query()}
			if i%3 == 1 {
				items[i]["k"] = 3
			}
		}
		return cl.post(cl.base+"/match/batch", map[string]any{"queries": items})
	case "job":
		items := make([]map[string]any, 8)
		for i := range items {
			items[i] = map[string]any{"query": cl.query(), "length": cl.length, "radius": 0.4}
		}
		return cl.job(cl.base+"/range/jobs", map[string]any{"queries": items})
	}
	return false
}

// post issues one JSON POST and reports 2xx.
func (cl *loadClient) post(url string, body any) bool {
	buf, err := json.Marshal(body)
	if err != nil {
		return false
	}
	resp, err := cl.client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// job submits an async job and polls it to a terminal state; the sample's
// latency is the full submit→done wall time a real async client observes.
func (cl *loadClient) job(url string, body any) bool {
	buf, err := json.Marshal(body)
	if err != nil {
		return false
	}
	resp, err := cl.client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return false
	}
	var sub struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		return false
	}
	for i := 0; i < 5000; i++ {
		r, err := cl.client.Get(cl.baseURL + "/v1/jobs/" + sub.ID)
		if err != nil {
			return false
		}
		err = json.NewDecoder(r.Body).Decode(&sub)
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if err != nil || r.StatusCode != http.StatusOK {
			return false
		}
		switch sub.State {
		case "done":
			return true
		case "failed", "canceled":
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// WriteLoadReport serializes the report as indented JSON.
func WriteLoadReport(rep *LoadReport, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
