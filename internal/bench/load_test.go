package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestServeLoadSmoke runs a miniature closed-loop sweep end to end: every
// level must complete without errors and produce monotone sane quantiles,
// and the report must round-trip through its JSON writer.
func TestServeLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load sweep boots a live server")
	}
	rep, tables, err := RunServeLoad(Config{Scale: 0.5, Repeats: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 5 {
		t.Fatalf("points = %d, want 5", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.Requests == 0 {
			t.Errorf("level %d: no requests", pt.Concurrency)
		}
		if pt.Errors != 0 {
			t.Errorf("level %d: %d errored requests", pt.Concurrency, pt.Errors)
		}
		if pt.P50Millis <= 0 || pt.P99Millis < pt.P50Millis || pt.P90Millis > pt.P99Millis {
			t.Errorf("level %d: incoherent quantiles p50=%v p90=%v p99=%v",
				pt.Concurrency, pt.P50Millis, pt.P90Millis, pt.P99Millis)
		}
		if len(pt.ByOp) == 0 {
			t.Errorf("level %d: no per-op breakdown", pt.Concurrency)
		}
	}
	if rep.PeakThroughput <= 0 {
		t.Errorf("peak throughput = %v", rep.PeakThroughput)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 5 {
		t.Errorf("table shape: %+v", tables)
	}

	var buf bytes.Buffer
	if err := WriteLoadReport(rep, &buf); err != nil {
		t.Fatal(err)
	}
	var back LoadReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.PeakThroughput != rep.PeakThroughput || len(back.Points) != len(rep.Points) {
		t.Error("report did not round-trip through JSON")
	}
}
