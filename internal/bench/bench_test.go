package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"onex/internal/dataset"
)

// tinyConfig keeps smoke tests fast: one small dataset, few queries.
func tinyConfig() Config {
	return Config{
		ST:          0.2,
		Seed:        1,
		Scale:       0.3,
		LengthCount: 6,
		Queries:     4,
		Repeats:     1,
		Datasets:    []string{"ItalyPower"},
	}
}

func tinySession(t *testing.T) *Session {
	t.Helper()
	s, err := NewSession(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSessionValidation(t *testing.T) {
	bad := []Config{
		{ST: -1},
		{ST: 0.2, Scale: -2},
		{ST: 0.2, Queries: 1},
	}
	for i, cfg := range bad {
		if _, err := NewSession(cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
	s, err := NewSession(Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Config()
	if c.ST != 0.2 || c.Queries != 20 || c.Repeats != 3 || c.LengthCount != 16 {
		t.Errorf("defaults not filled: %+v", c)
	}
}

func TestSelectedDatasets(t *testing.T) {
	s := tinySession(t)
	names, err := s.selectedDatasets()
	if err != nil || len(names) != 1 || names[0] != "ItalyPower" {
		t.Errorf("selectedDatasets = %v, %v", names, err)
	}
	s2, _ := NewSession(Config{ST: 0.2})
	all, err := s2.selectedDatasets()
	if err != nil || len(all) != 6 {
		t.Errorf("all datasets = %v, %v", all, err)
	}
	s3, _ := NewSession(Config{ST: 0.2, Datasets: []string{"Nope"}})
	if _, err := s3.selectedDatasets(); err == nil {
		t.Error("unknown dataset: want error")
	}
	// Order normalizes to paper order regardless of input order.
	s4, _ := NewSession(Config{ST: 0.2, Datasets: []string{"Wafer", "ECG", "ECG"}})
	got, err := s4.selectedDatasets()
	if err != nil || len(got) != 2 || got[0] != "ECG" || got[1] != "Wafer" {
		t.Errorf("ordering/dedup = %v, %v", got, err)
	}
}

func TestSpreadLengths(t *testing.T) {
	ls := spreadLengths(100, 5)
	if len(ls) != 5 || ls[0] != 2 || ls[len(ls)-1] != 100 {
		t.Errorf("spreadLengths(100,5) = %v", ls)
	}
	for i := 1; i < len(ls); i++ {
		if ls[i] <= ls[i-1] {
			t.Errorf("not strictly increasing: %v", ls)
		}
	}
	if got := spreadLengths(5, 100); len(got) != 4 { // 2,3,4,5
		t.Errorf("spreadLengths(5,100) = %v", got)
	}
	if got := spreadLengths(1, 4); got != nil {
		t.Errorf("spreadLengths(1,4) = %v, want nil", got)
	}
}

func TestBuildWorkloadStructure(t *testing.T) {
	s := tinySession(t)
	sp, ok := dataset.ByName("ItalyPower")
	if !ok {
		t.Fatal("ItalyPower spec missing")
	}
	w, err := buildWorkload(sp, s.Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 4 {
		t.Fatalf("queries = %d, want 4", len(w.Queries))
	}
	nIn, nOut := 0, 0
	for _, q := range w.Queries {
		if len(q.Values) < 2 {
			t.Errorf("degenerate query of length %d", len(q.Values))
		}
		if q.InDataset {
			nIn++
		} else {
			nOut++
		}
	}
	if nIn != 2 || nOut != 2 {
		t.Errorf("in/out split = %d/%d, want 2/2", nIn, nOut)
	}
	// Out-of-dataset sources were removed: 2 series gone.
	wantN := int(float64(benchN["ItalyPower"]) * 0.3)
	if w.Data.N() != wantN-2 {
		t.Errorf("data N = %d, want %d", w.Data.N(), wantN-2)
	}
	// Normalized space.
	min, max := w.Data.MinMax()
	if min < -1e-9 || max > 1+1e-9 {
		t.Errorf("workload data not normalized: [%v, %v]", min, max)
	}
	// Deterministic.
	w2, err := buildWorkload(sp, s.Config())
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Queries {
		if len(w.Queries[i].Values) != len(w2.Queries[i].Values) {
			t.Fatal("workload not deterministic")
		}
		for j := range w.Queries[i].Values {
			if w.Queries[i].Values[j] != w2.Queries[i].Values[j] {
				t.Fatal("workload not deterministic")
			}
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"table1", "table2", "table3", "table4", "datasets"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", got, want)
		}
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) missing", id)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("ByID(fig99) should miss")
	}
}

func TestSimilaritySuiteSmoke(t *testing.T) {
	s := tinySession(t)
	r, err := s.similarity("ItalyPower")
	if err != nil {
		t.Fatal(err)
	}
	if r.Dataset != "ItalyPower" {
		t.Errorf("dataset = %q", r.Dataset)
	}
	for name, v := range map[string]float64{
		"TimeONEX": r.TimeONEX, "TimeTrillion": r.TimeTrillion,
		"TimePAA": r.TimePAA, "TimeStd": r.TimeStd, "TimeONEXSame": r.TimeONEXSame,
	} {
		if v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}
	for name, v := range map[string]float64{
		"AccONEX": r.AccONEX, "AccPAA": r.AccPAA, "AccTrillionAny": r.AccTrillionAny,
		"AccONEXSame": r.AccONEXSame, "AccTrillionSame": r.AccTrillionSame,
	} {
		if v < 0 || v > 100 {
			t.Errorf("%s = %v, outside [0,100]", name, v)
		}
	}
	if len(r.ExactAny) != 4 {
		t.Errorf("ExactAny holds %d entries", len(r.ExactAny))
	}
	// Cache hit returns the identical pointer.
	r2, err := s.similarity("ItalyPower")
	if err != nil || r2 != r {
		t.Error("similarity cache miss on second call")
	}
}

func TestExperimentsSmoke(t *testing.T) {
	// Every registered experiment must run end-to-end on the tiny config
	// and produce non-empty tables.
	s := tinySession(t)
	for _, e := range Experiments {
		if e.ID == "fig3" {
			continue // separate, smaller smoke test below
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 || len(tab.Header) == 0 {
					t.Errorf("table %q empty", tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Header) {
						t.Errorf("table %q: row width %d != header %d", tab.Title, len(row), len(tab.Header))
					}
				}
				var buf bytes.Buffer
				if err := tab.Format(&buf); err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(buf.String(), tab.Title) {
					t.Error("Format dropped the title")
				}
			}
		})
	}
}

func TestFig3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fig3 smoke is the slowest bench test")
	}
	cfg := tinyConfig()
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Patch the size ladder indirectly: tiny config already limits queries;
	// run as-is but accept the cost (N ≤ 500, length 100).
	tables, err := runFig3(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || len(tables[0].Rows) != 5 {
		t.Fatalf("fig3 tables malformed: %d tables", len(tables))
	}
	// Exhaustive-scanner cost must trend upward with N. Per-row times are
	// not monotone: the scan early-abandons against the best-so-far, so a
	// workload whose query has a near-identical match (tight cutoff) is
	// much cheaper than a smaller workload without one. Compare aggregate
	// halves instead, which tracks the N-scaling of the underlying window
	// count without being hostage to per-workload cutoff luck.
	var times []float64
	for _, row := range tables[0].Rows {
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v <= 0 {
			t.Errorf("STANDARD-DTW time %v not positive", v)
		}
		times = append(times, v)
	}
	firstHalf := times[0] + times[1]
	lastHalf := times[len(times)-2] + times[len(times)-1]
	if lastHalf < firstHalf/4 {
		t.Errorf("STANDARD-DTW time collapsed with N: first rows %v, last rows %v", firstHalf, lastHalf)
	}
}

func TestRunAllTinyWritesOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	s := tinySession(t)
	var buf bytes.Buffer
	if err := RunAll(s, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"Fig 2a", "Fig 4", "Fig 5", "Table 4"} {
		if !strings.Contains(out, id) {
			t.Errorf("RunAll output missing %q", id)
		}
	}
}
