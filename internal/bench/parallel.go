package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"onex/internal/core"
	"onex/internal/dataset"
	"onex/internal/query"
	"onex/internal/ts"
)

// ParallelReport is the machine-readable payload of the sequential-vs-
// parallel sweep (BENCH_parallel.json): offline-build, single-query and
// batch timings per worker count, with speedups relative to one worker.
// Speedups track real hardware parallelism — expect ≈ 1× at GOMAXPROCS=1
// and ≥ 2× for query/batch at GOMAXPROCS ≥ 4 (the answers themselves are
// identical at every worker count; Equivalent records that this was
// verified during the sweep).
type ParallelReport struct {
	GeneratedAt string `json:"generatedAt"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"numcpu"`

	Dataset struct {
		Name    string  `json:"name"`
		Series  int     `json:"series"`
		Length  int     `json:"length"`
		Lengths []int   `json:"lengths"`
		ST      float64 `json:"st"`
		Seed    int64   `json:"seed"`
	} `json:"dataset"`
	Queries int `json:"queries"`
	Repeats int `json:"repeats"`

	Build []ParallelPoint `json:"build"`
	Query []ParallelPoint `json:"query"`
	Batch []ParallelPoint `json:"batch"`

	// Equivalent records that every parallel run returned exactly the
	// sequential answers (same subsequence, distance within 1e-12).
	Equivalent bool `json:"equivalent"`

	BestBuildSpeedup float64 `json:"bestBuildSpeedup"`
	BestQuerySpeedup float64 `json:"bestQuerySpeedup"`
	BestBatchSpeedup float64 `json:"bestBatchSpeedup"`
}

// ParallelPoint is one timing sample of the sweep.
type ParallelPoint struct {
	// Workers is the worker count (build Workers or query Parallelism).
	Workers int `json:"workers"`
	// Seconds is the best-of-Repeats wall time of the whole stage.
	Seconds float64 `json:"seconds"`
	// PerOpMillis is Seconds spread over the stage's operations (queries,
	// or 1 for a build).
	PerOpMillis float64 `json:"perOpMillis"`
	// Speedup is the one-worker wall time divided by this one's.
	Speedup float64 `json:"speedup"`
}

// parallelWorkerList returns the sweep's worker counts: 1, 2, 4, … up to
// and including max(4, GOMAXPROCS), deduplicated.
func parallelWorkerList() []int {
	procs := runtime.GOMAXPROCS(0)
	set := map[int]bool{1: true, 2: true, 4: true, procs: true}
	out := make([]int, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// RunParallelSweep measures sequential vs parallel execution of the three
// sharded stages — grouping build, single BestMatch queries, and
// BestMatchBatch — on one synthetic base (ECG scaled to ≥ 64 series),
// verifying along the way that every parallel answer equals the sequential
// one. The human-readable tables go to the returned slice; the report is
// ready for JSON serialization.
func RunParallelSweep(cfg Config) (*ParallelReport, []Table, error) {
	cfg.fillDefaults()
	spec := dataset.ECG
	n := int(float64(80) * cfg.Scale)
	if n < 64 {
		n = 64 // acceptance floor: a ≥ 64-series base
	}
	if n > spec.N {
		n = spec.N
	}
	spec.N = n
	data := spec.Generate(cfg.Seed)
	if err := data.NormalizeMinMax(); err != nil {
		return nil, nil, err
	}
	lengths := []int{32, 48, 64}

	rep := &ParallelReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Queries:     cfg.Queries,
		Repeats:     cfg.Repeats,
	}
	rep.Dataset.Name = spec.Name
	rep.Dataset.Series = n
	rep.Dataset.Length = spec.Length
	rep.Dataset.Lengths = lengths
	rep.Dataset.ST = cfg.ST
	rep.Dataset.Seed = cfg.Seed

	workers := parallelWorkerList()

	// --- offline construction sweep ------------------------------------
	buildCfg := func(w int) core.BuildConfig {
		return core.BuildConfig{ST: cfg.ST, Lengths: lengths, Seed: cfg.Seed, Workers: w}
	}
	var eng *core.Engine
	for _, w := range workers {
		secs := math.Inf(1)
		for r := 0; r < cfg.Repeats; r++ {
			start := time.Now()
			e, err := core.Build(data, buildCfg(w))
			if err != nil {
				return nil, nil, fmt.Errorf("bench: build workers=%d: %w", w, err)
			}
			if s := time.Since(start).Seconds(); s < secs {
				secs = s
			}
			eng = e
		}
		rep.Build = append(rep.Build, ParallelPoint{Workers: w, Seconds: secs, PerOpMillis: secs * 1000})
		cfg.progressf("parallel: build workers=%d %.3fs", w, secs)
	}

	// --- query workload -------------------------------------------------
	queries := parallelQueries(data, lengths, cfg.Queries, cfg.Seed)

	type answer struct {
		sid, start, length int
		dist               float64
	}
	run := func(p int, batch bool) ([]answer, float64, error) {
		proc, err := query.New(eng.Base, query.Options{Parallelism: p})
		if err != nil {
			return nil, 0, err
		}
		var out []answer
		secs := math.Inf(1)
		for r := 0; r < cfg.Repeats; r++ {
			out = out[:0]
			start := time.Now()
			if batch {
				for _, br := range proc.BestMatchBatch(queries, query.MatchAny) {
					if br.Err != nil {
						return nil, 0, br.Err
					}
					out = append(out, answer{br.Match.SeriesID, br.Match.Start, br.Match.Length, br.Match.Dist})
				}
			} else {
				for _, q := range queries {
					m, err := proc.BestMatch(q, query.MatchAny)
					if err != nil {
						return nil, 0, err
					}
					out = append(out, answer{m.SeriesID, m.Start, m.Length, m.Dist})
				}
			}
			if s := time.Since(start).Seconds(); s < secs {
				secs = s
			}
		}
		return out, secs, nil
	}

	var ref []answer
	rep.Equivalent = true
	for _, stage := range []struct {
		name  string
		batch bool
		dst   *[]ParallelPoint
	}{
		{"query", false, &rep.Query},
		{"batch", true, &rep.Batch},
	} {
		for _, w := range workers {
			ans, secs, err := run(w, stage.batch)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: %s workers=%d: %w", stage.name, w, err)
			}
			if ref == nil {
				ref = append([]answer(nil), ans...)
			}
			for i := range ans {
				if ans[i].sid != ref[i].sid || ans[i].start != ref[i].start ||
					ans[i].length != ref[i].length || math.Abs(ans[i].dist-ref[i].dist) > 1e-12 {
					rep.Equivalent = false
					return nil, nil, fmt.Errorf("bench: %s workers=%d: answer %d diverged from sequential (%+v vs %+v)",
						stage.name, w, i, ans[i], ref[i])
				}
			}
			*stage.dst = append(*stage.dst, ParallelPoint{
				Workers:     w,
				Seconds:     secs,
				PerOpMillis: secs * 1000 / float64(len(queries)),
			})
			cfg.progressf("parallel: %s workers=%d %.3fs", stage.name, w, secs)
		}
	}

	fillSpeedups := func(pts []ParallelPoint) float64 {
		best := 0.0
		for i := range pts {
			pts[i].Speedup = pts[0].Seconds / pts[i].Seconds
			if pts[i].Speedup > best {
				best = pts[i].Speedup
			}
		}
		return best
	}
	rep.BestBuildSpeedup = fillSpeedups(rep.Build)
	rep.BestQuerySpeedup = fillSpeedups(rep.Query)
	rep.BestBatchSpeedup = fillSpeedups(rep.Batch)

	table := Table{
		Title:  fmt.Sprintf("Sequential vs parallel sweep (%s×%d, GOMAXPROCS=%d)", spec.Name, n, rep.GOMAXPROCS),
		Header: []string{"stage", "workers", "seconds", "per-op ms", "speedup"},
	}
	for _, st := range []struct {
		name string
		pts  []ParallelPoint
	}{{"build", rep.Build}, {"query", rep.Query}, {"batch", rep.Batch}} {
		for _, pt := range st.pts {
			table.Rows = append(table.Rows, []string{
				st.name, fmt.Sprint(pt.Workers),
				fmt.Sprintf("%.4f", pt.Seconds),
				fmt.Sprintf("%.3f", pt.PerOpMillis),
				fmt.Sprintf("%.2fx", pt.Speedup),
			})
		}
	}
	return rep, []Table{table}, nil
}

// parallelQueries builds the sweep workload: half in-dataset windows
// (perturbed), half out-of-dataset random walks, lengths cycled through the
// indexed set plus one unindexed length to exercise the MatchAny walk.
func parallelQueries(d *ts.Dataset, lengths []int, count int, seed int64) [][]float64 {
	r := rand.New(rand.NewSource(seed * 7919))
	qlens := append(append([]int(nil), lengths...), (lengths[0]+lengths[1])/2)
	out := make([][]float64, 0, count)
	for i := 0; i < count; i++ {
		l := qlens[i%len(qlens)]
		q := make([]float64, l)
		if i%2 == 0 {
			s := d.Series[r.Intn(d.N())]
			start := r.Intn(s.Len() - l + 1)
			copy(q, s.Values[start:start+l])
			for j := range q {
				q[j] += r.NormFloat64() * 0.01
			}
		} else {
			x := r.Float64()
			for j := range q {
				x += r.NormFloat64() * 0.05
				q[j] = x
			}
		}
		out = append(out, q)
	}
	return out
}

// WriteParallelReport serializes the report as indented JSON.
func WriteParallelReport(rep *ParallelReport, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
