package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"time"

	"onex/internal/dist"
)

// KernelReport is the machine-readable payload of the DTW-kernel microbench
// (BENCH_kernel.json): the cache-blocked fused kernel (dist.Workspace.
// DTWEarlyAbandon) against the pre-optimization two-row kernel, single
// goroutine, over sequence lengths 64..1024 with an infinite cutoff (the
// full dynamic program) and a tight one (UCR-style early abandoning, the
// shape pruned query verification runs). Equivalent records that every
// sampled pair returned BIT-identical results from both kernels — the
// optimization reorders memory traffic, never arithmetic.
type KernelReport struct {
	GeneratedAt string `json:"generatedAt"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"numcpu"`

	Pairs   int   `json:"pairs"`
	Repeats int   `json:"repeats"`
	Seed    int64 `json:"seed"`

	Points []KernelPoint `json:"points"`

	// Equivalent records that the fused kernel's result equaled the
	// reference kernel's bit for bit on every (pair, cutoff) sampled.
	Equivalent bool `json:"equivalent"`

	// MinSpeedup/GeoMeanSpeedup summarize Points[].Speedup.
	MinSpeedup     float64 `json:"minSpeedup"`
	GeoMeanSpeedup float64 `json:"geoMeanSpeedup"`
}

// KernelPoint is one sweep setting: a sequence length at one cutoff regime,
// timed over the same random pairs with both kernels.
type KernelPoint struct {
	// Length is the sequence length of both sides of every pair.
	Length int `json:"length"`
	// Cutoff is the abandoning regime: "inf" (full DP) or "tight"
	// (cutoffs straddling the true distance, so some pairs abandon).
	Cutoff string `json:"cutoff"`
	// RefNanos/FusedNanos are best-of-Repeats per-call wall times.
	RefNanos   float64 `json:"refNanos"`
	FusedNanos float64 `json:"fusedNanos"`
	// RefCellsPerSec/FusedCellsPerSec are nominal DP-cell throughputs
	// (n·m cells per pair over wall time). In the tight regime abandoned
	// pairs compute fewer cells than n·m, inflating both numbers equally —
	// both kernels abandon at exactly the same row — so the ratio stays
	// meaningful; compare absolute throughputs on the "inf" rows.
	RefCellsPerSec   float64 `json:"refCellsPerSec"`
	FusedCellsPerSec float64 `json:"fusedCellsPerSec"`
	// Speedup is RefNanos / FusedNanos.
	Speedup float64 `json:"speedup"`
}

// refWorkspace reuses scratch for referenceDTW so the comparison measures
// the kernels, not the allocator.
type refWorkspace struct {
	prev, curr []float64
}

// referenceDTW is the pre-optimization DTW kernel, kept verbatim: the
// two-row dynamic program with per-row band clamps, sentinel writes and
// in-loop three-way reads. It is the timing baseline and the bitwise
// equivalence oracle of the kernel sweep.
func (w *refWorkspace) referenceDTW(q, c []float64, window int, cutoff float64) float64 {
	n, m := len(q), len(c)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return math.Inf(1)
	}
	band := window
	if band >= 0 {
		if d := n - m; d > band || -d > band {
			if d < 0 {
				d = -d
			}
			band = d
		}
	}
	cutoffSq := cutoff * cutoff

	inf := math.Inf(1)
	if cap(w.prev) < m+1 {
		w.prev = make([]float64, m+1)
		w.curr = make([]float64, m+1)
	}
	prev, curr := w.prev[:m+1], w.curr[:m+1]
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		jLo, jHi := 1, m
		if band >= 0 {
			if lo := i - band; lo > jLo {
				jLo = lo
			}
			if hi := i + band; hi < jHi {
				jHi = hi
			}
		}
		curr[jLo-1] = inf
		if jHi < m {
			curr[jHi+1] = inf
		}
		rowMin := inf
		qi := q[i-1]
		for j := jLo; j <= jHi; j++ {
			best := prev[j]
			if v := prev[j-1]; v < best {
				best = v
			}
			if v := curr[j-1]; v < best {
				best = v
			}
			d := qi - c[j-1]
			acc := best + d*d
			curr[j] = acc
			if acc < rowMin {
				rowMin = acc
			}
		}
		if rowMin > cutoffSq {
			return inf
		}
		prev, curr = curr, prev
	}
	w.prev, w.curr = prev[:cap(prev)], curr[:cap(curr)]
	return math.Sqrt(prev[m])
}

// kernelPair is one pre-generated workload item: two sequences and the
// cutoff each regime hands the kernels.
type kernelPair struct {
	q, c        []float64
	tightCutoff float64
}

// RunKernelSweep times the fused DTW kernel against the verbatim
// pre-optimization kernel on one goroutine — sequence lengths 64..1024,
// infinite and tight cutoffs, best of Config.Repeats — and verifies every
// result pair is bit-identical. The human-readable table goes to the
// returned slice; the report is ready for JSON.
func RunKernelSweep(cfg Config) (*KernelReport, []Table, error) {
	cfg.fillDefaults()
	pairs := int(16 * cfg.Scale)
	if pairs < 4 {
		pairs = 4
	}
	lengths := []int{64, 128, 256, 512, 1024}

	rep := &KernelReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Pairs:       pairs,
		Repeats:     cfg.Repeats,
		Seed:        cfg.Seed,
		Equivalent:  true,
		MinSpeedup:  math.Inf(1),
	}

	var ref refWorkspace
	var fused dist.Workspace
	r := rand.New(rand.NewSource(cfg.Seed*86243 + 11))
	for _, length := range lengths {
		// The workload: random-walk pairs (continuous values, realistic
		// warping structure). Tight cutoffs straddle each pair's true
		// distance so the regime exercises both abandoning and full runs.
		work := make([]kernelPair, pairs)
		for i := range work {
			p := kernelPair{q: randomWalkSeq(r, length), c: randomWalkSeq(r, length)}
			exact := ref.referenceDTW(p.q, p.c, dist.Unconstrained, math.Inf(1))
			p.tightCutoff = exact * (0.6 + 0.8*float64(i)/float64(pairs))
			work[i] = p
		}

		for _, regime := range []string{"inf", "tight"} {
			cutoffOf := func(p kernelPair) float64 {
				if regime == "tight" {
					return p.tightCutoff
				}
				return math.Inf(1)
			}

			// Bitwise equivalence before any timing.
			for i, p := range work {
				co := cutoffOf(p)
				a := ref.referenceDTW(p.q, p.c, dist.Unconstrained, co)
				b := fused.DTWEarlyAbandon(p.q, p.c, dist.Unconstrained, co)
				if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
					rep.Equivalent = false
					return nil, nil, fmt.Errorf("bench: kernel results diverged at length %d %s pair %d: reference %v, fused %v",
						length, regime, i, a, b)
				}
			}

			refSecs, fusedSecs := math.Inf(1), math.Inf(1)
			var sink float64
			for rr := 0; rr < cfg.Repeats; rr++ {
				start := time.Now()
				for _, p := range work {
					sink += ref.referenceDTW(p.q, p.c, dist.Unconstrained, cutoffOf(p))
				}
				if s := time.Since(start).Seconds(); s < refSecs {
					refSecs = s
				}
				start = time.Now()
				for _, p := range work {
					sink += fused.DTWEarlyAbandon(p.q, p.c, dist.Unconstrained, cutoffOf(p))
				}
				if s := time.Since(start).Seconds(); s < fusedSecs {
					fusedSecs = s
				}
			}
			_ = sink

			cells := float64(pairs) * float64(length) * float64(length)
			pt := KernelPoint{
				Length:           length,
				Cutoff:           regime,
				RefNanos:         refSecs * 1e9 / float64(pairs),
				FusedNanos:       fusedSecs * 1e9 / float64(pairs),
				RefCellsPerSec:   cells / refSecs,
				FusedCellsPerSec: cells / fusedSecs,
				Speedup:          refSecs / fusedSecs,
			}
			rep.Points = append(rep.Points, pt)
			cfg.progressf("kernel: length %d cutoff %s ref %.0fns fused %.0fns speedup %.2fx",
				length, regime, pt.RefNanos, pt.FusedNanos, pt.Speedup)
		}
	}

	logSum := 0.0
	for _, pt := range rep.Points {
		if pt.Speedup < rep.MinSpeedup {
			rep.MinSpeedup = pt.Speedup
		}
		logSum += math.Log(pt.Speedup)
	}
	rep.GeoMeanSpeedup = math.Exp(logSum / float64(len(rep.Points)))

	table := Table{
		Title: fmt.Sprintf("DTW kernel microbench (1 goroutine, %d pairs, best of %d)",
			pairs, cfg.Repeats),
		Header: []string{"length", "cutoff", "ref ns/call", "fused ns/call", "fused Mcells/s", "speedup"},
	}
	for _, pt := range rep.Points {
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(pt.Length),
			pt.Cutoff,
			fmt.Sprintf("%.0f", pt.RefNanos),
			fmt.Sprintf("%.0f", pt.FusedNanos),
			fmt.Sprintf("%.1f", pt.FusedCellsPerSec/1e6),
			fmt.Sprintf("%.2fx", pt.Speedup),
		})
	}
	return rep, []Table{table}, nil
}

// randomWalkSeq draws one normalized random-walk sequence.
func randomWalkSeq(r *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	x := r.Float64()
	for i := range v {
		x += r.NormFloat64() * 0.05
		v[i] = x
	}
	return v
}

// WriteKernelReport serializes the report as indented JSON.
func WriteKernelReport(rep *KernelReport, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
