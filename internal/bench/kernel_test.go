package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestRunKernelSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel sweep in -short mode")
	}
	rep, tables, err := RunKernelSweep(Config{ST: 0.2, Seed: 1, Scale: 0.25, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Fatal("sweep reported non-bit-identical kernels")
	}
	// 5 lengths × 2 cutoff regimes.
	if len(rep.Points) != 10 {
		t.Fatalf("sweep produced %d points, want 10", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.RefNanos <= 0 || pt.FusedNanos <= 0 || pt.Speedup <= 0 {
			t.Errorf("length %d %s: non-positive timings %+v", pt.Length, pt.Cutoff, pt)
		}
		if pt.Cutoff != "inf" && pt.Cutoff != "tight" {
			t.Errorf("length %d: unknown cutoff regime %q", pt.Length, pt.Cutoff)
		}
	}
	if rep.MinSpeedup <= 0 || math.IsInf(rep.MinSpeedup, 1) ||
		rep.GeoMeanSpeedup < rep.MinSpeedup {
		t.Errorf("summary speedups min=%v geomean=%v", rep.MinSpeedup, rep.GeoMeanSpeedup)
	}
	if len(tables) != 1 || len(tables[0].Rows) != len(rep.Points) {
		t.Error("table shape does not match the report")
	}
	var buf bytes.Buffer
	if err := WriteKernelReport(rep, &buf); err != nil {
		t.Fatal(err)
	}
	var round KernelReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !round.Equivalent || round.GeoMeanSpeedup != rep.GeoMeanSpeedup {
		t.Error("report did not round-trip")
	}
}
