package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"onex/internal/core"
	"onex/internal/dataset"
	"onex/internal/query"
)

// StreamReport is the machine-readable payload of the streaming-ingestion
// sweep (BENCH_stream.json): for growing base sizes it compares the cost of
// absorbing a point-append batch incrementally (core.Engine.Append with the
// amortized rebuild disabled) against a full from-scratch rebuild over the
// final data, and measures single-query latency sustained between appends.
type StreamReport struct {
	GeneratedAt string `json:"generatedAt"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"numcpu"`

	Dataset struct {
		Name    string  `json:"name"`
		Length  int     `json:"length"`
		Lengths []int   `json:"lengths"`
		ST      float64 `json:"st"`
		Seed    int64   `json:"seed"`
	} `json:"dataset"`
	// BatchPoints is the number of points each append batch carries.
	BatchPoints int `json:"batchPoints"`
	// Batches is how many append batches each sweep point absorbs.
	Batches int `json:"batches"`
	Repeats int `json:"repeats"`

	Points []StreamPoint `json:"points"`

	// LargestSpeedup is the best rebuild/append cost ratio across the sweep
	// — the headline incremental-maintenance win. In practice this is the
	// largest setting: the incremental advantage widens with base size.
	LargestSpeedup float64 `json:"largestSpeedup"`
}

// StreamPoint is one sweep setting: a base of Series series absorbing the
// append workload.
type StreamPoint struct {
	// Series is the number of series in the base.
	Series int `json:"series"`
	// Subsequences is the indexed subsequence count before appending.
	Subsequences int64 `json:"subsequences"`
	// AppendSeconds is the best-of-Repeats total wall time of absorbing all
	// batches incrementally (maintenance + index refresh, per-batch swap).
	AppendSeconds float64 `json:"appendSeconds"`
	// AppendPerBatchMillis spreads AppendSeconds over the batches.
	AppendPerBatchMillis float64 `json:"appendPerBatchMillis"`
	// RebuildSeconds is the best-of-Repeats wall time of one full offline
	// rebuild over the final (post-append) data — what each batch would
	// cost without incremental maintenance.
	RebuildSeconds float64 `json:"rebuildSeconds"`
	// Speedup is RebuildSeconds·Batches / AppendSeconds: how much cheaper
	// the incremental path absorbs the whole workload than per-batch
	// rebuilds would.
	Speedup float64 `json:"speedup"`
	// QueryDuringAppendMillis is the mean BestMatch latency of queries
	// interleaved between append batches (the sustained-ingestion read
	// path).
	QueryDuringAppendMillis float64 `json:"queryDuringAppendMillis"`
	// Drift is the incremental-member fraction after the workload.
	Drift float64 `json:"drift"`
}

// RunStreamSweep measures streaming point-append ingestion against full
// rebuilds on growing synthetic bases and verifies the incremental path's
// integrity as it goes (subsequence accounting after every batch). The
// returned table is human-readable; the report is ready for JSON.
func RunStreamSweep(cfg Config) (*StreamReport, []Table, error) {
	cfg.fillDefaults()
	spec := dataset.ECG
	lengths := []int{32, 48, 64}
	const batchPoints = 16
	const batches = 8

	rep := &StreamReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		BatchPoints: batchPoints,
		Batches:     batches,
		Repeats:     cfg.Repeats,
	}
	rep.Dataset.Name = spec.Name
	rep.Dataset.Length = spec.Length
	rep.Dataset.Lengths = lengths
	rep.Dataset.ST = cfg.ST
	rep.Dataset.Seed = cfg.Seed

	sizes := []int{16, 32, 64}
	if cfg.Scale > 1 {
		// Clamp to the generator's cardinality up front so the dedupe sees
		// the size the loop would actually run, then only add a genuinely
		// larger setting (a clamped duplicate would also skew
		// LargestSpeedup's "largest" claim).
		n := int(64 * cfg.Scale)
		if n > spec.N {
			n = spec.N
		}
		if n > sizes[len(sizes)-1] {
			sizes = append(sizes, n)
		}
	}
	table := Table{
		Title: fmt.Sprintf("Streaming append vs rebuild (%s, %d×%d-point batches, GOMAXPROCS=%d)",
			spec.Name, batches, batchPoints, rep.GOMAXPROCS),
		Header: []string{"series", "subseq", "append total s", "per-batch ms", "rebuild s", "speedup", "query ms"},
	}

	for _, n := range sizes {
		sp := spec
		if n > sp.N {
			n = sp.N
		}
		sp.N = n
		data := sp.Generate(cfg.Seed)
		if err := data.NormalizeMinMax(); err != nil {
			return nil, nil, err
		}
		buildCfg := core.BuildConfig{
			ST: cfg.ST, Lengths: lengths, Seed: cfg.Seed,
			Normalize:    core.NormalizeNone, // data pre-normalized above
			RebuildDrift: -1,                 // measure the pure incremental path
		}
		eng, err := core.Build(data, buildCfg)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: stream build n=%d: %w", n, err)
		}
		pt := StreamPoint{Series: n, Subsequences: eng.Base.TotalSubseq}

		// The append workload: batches of in-range points round-robined over
		// the series, plus one interleaved query per batch.
		mkBatch := func(b int) (int, []float64) {
			sid := b % data.N()
			src := data.Series[sid].Values
			pts := make([]float64, batchPoints)
			for i := range pts {
				pts[i] = src[(b*7+i)%len(src)]
			}
			return sid, pts
		}
		queries := parallelQueries(data, lengths, batches, cfg.Seed)

		pt.AppendSeconds = math.Inf(1)
		var queryMillis float64
		var finalEng *core.Engine
		for rpt := 0; rpt < cfg.Repeats; rpt++ {
			cur := eng
			var appendTotal, queryTotal time.Duration
			for b := 0; b < batches; b++ {
				sid, pts := mkBatch(b)
				start := time.Now()
				next, err := cur.Append(sid, pts)
				if err != nil {
					return nil, nil, fmt.Errorf("bench: stream append n=%d batch=%d: %w", n, b, err)
				}
				appendTotal += time.Since(start)
				cur = next
				qs := time.Now()
				if _, err := cur.Proc.BestMatch(queries[b], query.MatchAny); err != nil {
					return nil, nil, err
				}
				queryTotal += time.Since(qs)
			}
			if s := appendTotal.Seconds(); s < pt.AppendSeconds {
				pt.AppendSeconds = s
				queryMillis = queryTotal.Seconds() * 1000 / float64(batches)
			}
			finalEng = cur
		}
		pt.QueryDuringAppendMillis = queryMillis
		pt.Drift = finalEng.Drift()

		// Integrity: the incremental base must account for every window of
		// the final data.
		finalData := finalEng.Base.Dataset
		if got, want := finalEng.Base.TotalSubseq, finalData.SubseqCount(lengths); got != want {
			return nil, nil, fmt.Errorf("bench: stream n=%d: incremental base has %d subsequences, want %d", n, got, want)
		}

		// The rebuild reference: one full offline construction over the
		// final data (the cost a rebuild-per-batch design pays every batch).
		pt.RebuildSeconds = math.Inf(1)
		for rpt := 0; rpt < cfg.Repeats; rpt++ {
			start := time.Now()
			if _, err := core.Build(finalData, buildCfg); err != nil {
				return nil, nil, fmt.Errorf("bench: stream rebuild n=%d: %w", n, err)
			}
			if s := time.Since(start).Seconds(); s < pt.RebuildSeconds {
				pt.RebuildSeconds = s
			}
		}
		pt.AppendPerBatchMillis = pt.AppendSeconds * 1000 / float64(batches)
		pt.Speedup = pt.RebuildSeconds * float64(batches) / pt.AppendSeconds
		rep.Points = append(rep.Points, pt)
		if pt.Speedup > rep.LargestSpeedup {
			rep.LargestSpeedup = pt.Speedup
		}
		cfg.progressf("stream: n=%d append %.4fs (%.2fms/batch) rebuild %.4fs speedup %.1fx",
			n, pt.AppendSeconds, pt.AppendPerBatchMillis, pt.RebuildSeconds, pt.Speedup)

		table.Rows = append(table.Rows, []string{
			fmt.Sprint(pt.Series), fmt.Sprint(pt.Subsequences),
			fmt.Sprintf("%.4f", pt.AppendSeconds),
			fmt.Sprintf("%.3f", pt.AppendPerBatchMillis),
			fmt.Sprintf("%.4f", pt.RebuildSeconds),
			fmt.Sprintf("%.1fx", pt.Speedup),
			fmt.Sprintf("%.3f", pt.QueryDuringAppendMillis),
		})
	}
	return rep, []Table{table}, nil
}

// WriteStreamReport serializes the report as indented JSON.
func WriteStreamReport(rep *StreamReport, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
