package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"runtime"
	"time"

	"onex/internal/core"
	"onex/internal/dataset"
	"onex/internal/query"
	"onex/internal/shard"
	"onex/internal/shardrpc"
)

// DistReport is the machine-readable payload of the distributed transport
// sweep (BENCH_dist.json): the same dataset served by the in-process
// (`local`) and worker-backed (`remote`) shard transports at each shard
// count, timing the offline build+ship and the single/batch/k-NN query
// paths. The workers are real shardrpc HTTP servers on loopback listeners
// — the measured overhead is the full wire cost (JSON round trips, bound
// hints, merge) minus only true network distance. Equivalent records that
// every remote answer was bit-identical to its local counterpart (the
// transport contract; exact equality, not a tolerance).
type DistReport struct {
	GeneratedAt string `json:"generatedAt"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"numcpu"`

	Series  int     `json:"series"`
	Lengths []int   `json:"lengths"`
	ST      float64 `json:"st"`
	Seed    int64   `json:"seed"`
	Queries int     `json:"queries"`
	Repeats int     `json:"repeats"`
	Workers int     `json:"workers"`

	Points []DistPoint `json:"points"`

	// Equivalent records that every remote answer (BestMatch, batch, k-NN)
	// at every shard count was bit-identical to the local transport's.
	Equivalent bool `json:"equivalent"`

	// WorstQueryOverhead is the largest remote/local single-query latency
	// ratio across the sweep — the wire tax at its worst.
	WorstQueryOverhead float64 `json:"worstQueryOverhead"`
}

// DistPoint is one sweep setting: one transport at one shard count.
type DistPoint struct {
	// Transport is "local" (in-process LocalShard) or "remote" (shardrpc
	// clients against loopback workers).
	Transport string `json:"transport"`
	// Shards is the layout.
	Shards int `json:"shards"`
	// BuildSeconds is the best-of-Repeats time to build the engine — for
	// the remote transport this includes shipping every shard's spec to
	// its worker and the worker-side index builds.
	BuildSeconds float64 `json:"buildSeconds"`
	// QueryMillis / BatchMillis / KNNMillis mirror the shard sweep: mean
	// per-query latencies of BestMatch, BestMatchBatch and BestKMatches(5).
	QueryMillis float64 `json:"queryMillis"`
	BatchMillis float64 `json:"batchMillis"`
	KNNMillis   float64 `json:"knnMillis"`
	// QueryOverhead / BatchOverhead / KNNOverhead are this point's
	// latencies divided by the local transport's at the same shard count
	// (1.0 for the local points themselves).
	QueryOverhead float64 `json:"queryOverhead"`
	BatchOverhead float64 `json:"batchOverhead"`
	KNNOverhead   float64 `json:"knnOverhead"`
	// RPCAttempts / RPCRetries count the shardrpc HTTP attempts (and the
	// retries among them) issued during this point's query measurements —
	// fleet-registry deltas, zero for local points. MeanWireMillis and
	// MeanWorkerMillis split the mean per-call wall time into time on the
	// wire (serialization + HTTP + merge-side decode) and time inside the
	// worker's handler, using the worker wall clock every response carries.
	RPCAttempts      uint64  `json:"rpcAttempts,omitempty"`
	RPCRetries       uint64  `json:"rpcRetries,omitempty"`
	MeanWireMillis   float64 `json:"meanWireMillis,omitempty"`
	MeanWorkerMillis float64 `json:"meanWorkerMillis,omitempty"`
}

// distWorkers boots n shardrpc workers on loopback listeners and returns
// their base URLs plus a shutdown func.
func distWorkers(n int) ([]string, func(), error) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	urls := make([]string, 0, n)
	servers := make([]*http.Server, 0, n)
	stop := func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, fmt.Errorf("bench: listen for dist worker: %w", err)
		}
		srv := &http.Server{Handler: shardrpc.NewWorker(logger).Handler()}
		go func() { _ = srv.Serve(ln) }()
		servers = append(servers, srv)
		urls = append(urls, "http://"+ln.Addr().String())
	}
	return urls, stop, nil
}

// RunDistSweep serves one population through the local and remote shard
// transports at shard counts 2 and 4 (plus the unsharded baseline) and
// times build/ship and the query paths at each, verifying along the way
// that every remote answer is bit-identical to the local one.
func RunDistSweep(cfg Config) (*DistReport, []Table, error) {
	cfg.fillDefaults()
	n := int(float64(48) * cfg.Scale)
	if n < 32 {
		n = 32
	}
	lengths := []int{32, 48}
	const workers = 2

	rep := &DistReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Series:      n,
		Lengths:     lengths,
		ST:          cfg.ST,
		Seed:        cfg.Seed,
		Queries:     cfg.Queries,
		Repeats:     cfg.Repeats,
		Workers:     workers,
		Equivalent:  true,
	}

	spec := dataset.ECG
	if n < spec.N {
		spec.N = n
	}
	data := spec.Generate(cfg.Seed)
	if err := data.NormalizeMinMax(); err != nil {
		return nil, nil, err
	}
	buildCfg := core.BuildConfig{
		ST: cfg.ST, Lengths: lengths, Seed: cfg.Seed,
		Normalize: core.NormalizeNone, // pre-normalized above
	}
	queries := parallelQueries(data, lengths, cfg.Queries, cfg.Seed)

	urls, stopWorkers, err := distWorkers(workers)
	if err != nil {
		return nil, nil, err
	}
	defer stopWorkers()

	type answer struct {
		sid, start, length int
		dist               float64
	}
	// The remote transport must reproduce the local engine's answers bit
	// for bit — exact equality, no tolerance.
	check := func(stage string, shards int, ref, got []answer) error {
		if len(ref) != len(got) {
			rep.Equivalent = false
			return fmt.Errorf("bench: dist %s shards=%d: %d answers, want %d", stage, shards, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				rep.Equivalent = false
				return fmt.Errorf("bench: dist %s shards=%d: answer %d diverged from local (%+v vs %+v)",
					stage, shards, i, got[i], ref[i])
			}
		}
		return nil
	}

	measure := func(eng *shard.Engine) (q, b, k float64, single, batch, knn []answer, err error) {
		secs := math.Inf(1)
		for r := 0; r < cfg.Repeats; r++ {
			single = single[:0]
			start := time.Now()
			for _, qv := range queries {
				m, err := eng.BestMatch(context.Background(), qv, query.MatchAny)
				if err != nil {
					return 0, 0, 0, nil, nil, nil, fmt.Errorf("bench: dist query: %w", err)
				}
				single = append(single, answer{m.SeriesID, m.Start, m.Length, m.Dist})
			}
			if s := time.Since(start).Seconds(); s < secs {
				secs = s
			}
		}
		q = secs * 1000 / float64(len(queries))

		secs = math.Inf(1)
		for r := 0; r < cfg.Repeats; r++ {
			batch = batch[:0]
			start := time.Now()
			for _, br := range eng.BestMatchBatch(context.Background(), queries, query.MatchAny) {
				if br.Err != nil {
					return 0, 0, 0, nil, nil, nil, br.Err
				}
				batch = append(batch, answer{br.Match.SeriesID, br.Match.Start, br.Match.Length, br.Match.Dist})
			}
			if s := time.Since(start).Seconds(); s < secs {
				secs = s
			}
		}
		b = secs * 1000 / float64(len(queries))

		secs = math.Inf(1)
		for r := 0; r < cfg.Repeats; r++ {
			knn = knn[:0]
			start := time.Now()
			for _, qv := range queries {
				ms, err := eng.BestKMatches(context.Background(), qv, query.MatchAny, 5)
				if err != nil {
					return 0, 0, 0, nil, nil, nil, fmt.Errorf("bench: dist knn: %w", err)
				}
				for _, m := range ms {
					knn = append(knn, answer{m.SeriesID, m.Start, m.Length, m.Dist})
				}
			}
			if s := time.Since(start).Seconds(); s < secs {
				secs = s
			}
		}
		k = secs * 1000 / float64(len(queries))
		return q, b, k, single, batch, knn, nil
	}

	for _, shards := range []int{1, 2, 4} {
		if shards > data.N() {
			break
		}
		var localPt DistPoint
		var refSingle, refBatch, refKNN []answer
		for _, transport := range []string{"local", "remote"} {
			var workerURLs []string
			if transport == "remote" {
				workerURLs = urls
			}
			pt := DistPoint{Transport: transport, Shards: shards}

			var eng *shard.Engine
			pt.BuildSeconds = math.Inf(1)
			for r := 0; r < cfg.Repeats; r++ {
				if eng != nil {
					eng.Close()
				}
				start := time.Now()
				e, err := shard.Build(data, buildCfg, shards, workerURLs)
				if err != nil {
					return nil, nil, fmt.Errorf("bench: dist build %s shards=%d: %w", transport, shards, err)
				}
				if s := time.Since(start).Seconds(); s < pt.BuildSeconds {
					pt.BuildSeconds = s
				}
				eng = e
			}

			before := shardrpc.Fleet().Totals()
			q, b, k, single, batch, knn, err := measure(eng)
			eng.Close()
			if err != nil {
				return nil, nil, err
			}
			pt.QueryMillis, pt.BatchMillis, pt.KNNMillis = q, b, k
			if transport == "remote" {
				// Fleet-registry deltas around the measurements: how many HTTP
				// attempts the queries cost and how the per-call wall time
				// splits between wire and worker (the worker wall clock rides
				// on every response, traced or not).
				after := shardrpc.Fleet().Totals()
				pt.RPCAttempts = after.Attempts - before.Attempts
				pt.RPCRetries = after.Retries - before.Retries
				if calls := after.QueryCalls - before.QueryCalls; calls > 0 {
					wall := after.CallWallMicros - before.CallWallMicros
					worker := after.WorkerMicros - before.WorkerMicros
					pt.MeanWorkerMillis = float64(worker) / float64(calls) / 1e3
					if wall > worker {
						pt.MeanWireMillis = float64(wall-worker) / float64(calls) / 1e3
					}
				}
			}

			if transport == "local" {
				localPt = pt
				refSingle = append([]answer(nil), single...)
				refBatch = append([]answer(nil), batch...)
				refKNN = append([]answer(nil), knn...)
				pt.QueryOverhead, pt.BatchOverhead, pt.KNNOverhead = 1, 1, 1
			} else {
				if err := check("query", shards, refSingle, single); err != nil {
					return nil, nil, err
				}
				if err := check("batch", shards, refBatch, batch); err != nil {
					return nil, nil, err
				}
				if err := check("knn", shards, refKNN, knn); err != nil {
					return nil, nil, err
				}
				pt.QueryOverhead = pt.QueryMillis / localPt.QueryMillis
				pt.BatchOverhead = pt.BatchMillis / localPt.BatchMillis
				pt.KNNOverhead = pt.KNNMillis / localPt.KNNMillis
				if pt.QueryOverhead > rep.WorstQueryOverhead {
					rep.WorstQueryOverhead = pt.QueryOverhead
				}
			}
			rep.Points = append(rep.Points, pt)
			cfg.progressf("dist: %s shards=%d build %.3fs query %.3fms batch %.3fms knn %.3fms",
				transport, shards, pt.BuildSeconds, pt.QueryMillis, pt.BatchMillis, pt.KNNMillis)
		}
	}

	table := Table{
		Title: fmt.Sprintf("Shard transport sweep (%d series, %d workers, GOMAXPROCS=%d)",
			n, workers, rep.GOMAXPROCS),
		Header: []string{"transport", "shards", "build s", "query ms", "batch ms", "knn ms", "query overhead"},
	}
	for _, pt := range rep.Points {
		overhead := "—"
		if pt.Transport == "remote" {
			overhead = fmt.Sprintf("%.2fx", pt.QueryOverhead)
		}
		table.Rows = append(table.Rows, []string{
			pt.Transport,
			fmt.Sprint(pt.Shards),
			fmt.Sprintf("%.4f", pt.BuildSeconds),
			fmt.Sprintf("%.3f", pt.QueryMillis),
			fmt.Sprintf("%.3f", pt.BatchMillis),
			fmt.Sprintf("%.3f", pt.KNNMillis),
			overhead,
		})
	}
	return rep, []Table{table}, nil
}

// WriteDistReport serializes the report as indented JSON.
func WriteDistReport(rep *DistReport, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
