// Package bench regenerates every table and figure of the paper's
// evaluation (Sec. 6). Each experiment is registered under the paper's
// label (fig2 … fig8, table1 … table4) and prints the same rows/series the
// paper reports, measured on this implementation.
//
// Scale: the paper runs on full UCR datasets (Symbols alone has 78.6M
// subsequences). Default configs shrink each dataset to a per-dataset bench
// cardinality (series count only — series length and therefore per-length
// structure are preserved) and index an evenly spaced subset of lengths so
// the whole suite completes in minutes; Config.Full restores paper scale.
// All systems always share the same data and candidate length set, so the
// paper's relative claims (who wins, by what factor) are preserved —
// EXPERIMENTS.md records paper-vs-measured for every experiment.
package bench

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// Config controls experiment scale and reproducibility.
type Config struct {
	// ST is the build threshold for the main experiments (the paper's
	// per-dataset sweet spot ≈ 0.2, Sec. 6.3).
	ST float64
	// Seed drives dataset generation, workload choice and grouping.
	Seed int64
	// Scale multiplies the per-dataset default bench cardinalities
	// (1.0 = defaults; ignored when Full is set).
	Scale float64
	// Full runs paper-scale datasets and all lengths 2..n. Hours, not
	// minutes.
	Full bool
	// LengthCount is how many evenly spaced subsequence lengths are
	// indexed (0 = 16; ignored when Full — all lengths are used).
	LengthCount int
	// Queries is the number of similarity queries per dataset; half are
	// in-dataset, half out-of-dataset (0 = 20, the paper's count).
	Queries int
	// Repeats is how many times each query is re-run when timing
	// (0 = 3; the paper uses 5).
	Repeats int
	// Datasets restricts which of the six paper datasets run (nil = all).
	Datasets []string
	// Progress, when non-nil, receives human-readable progress lines.
	Progress io.Writer
}

// DefaultConfig returns the settings the committed EXPERIMENTS.md numbers
// were produced with.
func DefaultConfig() Config {
	return Config{ST: 0.2, Seed: 1, Scale: 1}
}

func (c *Config) fillDefaults() {
	if c.ST == 0 {
		c.ST = 0.2
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.LengthCount == 0 {
		c.LengthCount = 16
	}
	if c.Queries == 0 {
		c.Queries = 20
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
}

func (c Config) progressf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// Session caches shared computation (workloads, system results) across
// experiments run in one process, mirroring how the paper reuses one query
// workload for Fig. 2 and Tables 1–3.
type Session struct {
	cfg      Config
	simCache map[string]*SimilarityResult
}

// NewSession validates the config and prepares a cache.
func NewSession(cfg Config) (*Session, error) {
	cfg.fillDefaults()
	if cfg.ST <= 0 {
		return nil, fmt.Errorf("bench: invalid ST %v", cfg.ST)
	}
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("bench: invalid scale %v", cfg.Scale)
	}
	if cfg.Queries < 2 {
		return nil, fmt.Errorf("bench: need at least 2 queries, got %d", cfg.Queries)
	}
	return &Session{cfg: cfg, simCache: make(map[string]*SimilarityResult)}, nil
}

// Config returns the session's effective configuration.
func (s *Session) Config() Config { return s.cfg }

// Table is one printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Format renders the table with aligned columns.
func (t Table) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("-", len(t.Title))); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Experiment regenerates one paper table or figure.
type Experiment struct {
	// ID is the paper label: "fig2" … "fig8", "table1" … "table4".
	ID string
	// Title describes what the paper shows there.
	Title string
	// Run executes the experiment and returns its tables.
	Run func(s *Session) ([]Table, error)
}

// Experiments lists every reproducible table and figure in paper order.
var Experiments = []Experiment{
	{"fig2", "Time response for similarity queries (4 systems × 6 datasets)", runFig2},
	{"fig3", "Time response varying the number of time series (StarLightCurves)", runFig3},
	{"fig4", "Time response for seasonal similarity queries", runFig4},
	{"fig5", "Offline construction time varying ST", runFig5},
	{"fig6", "Number of representatives varying ST", runFig6},
	{"fig7", "Accuracy vs time trade-off varying ST (ItalyPower, ECG)", runFig7},
	{"fig8", "Accuracy vs time trade-off varying ST (Face, Wafer)", runFig8},
	{"table1", "Time response, similarity solution same length as query", runTable1},
	{"table2", "Accuracy, similarity solution same length as query", runTable2},
	{"table3", "Accuracy, similarity solution of any length", runTable3},
	{"table4", "Representatives, subsequences and index size per dataset", runTable4},
	{"datasets", "Dataset statistics (tech-report table)", runDatasets},
}

// ByID finds an experiment by its paper label.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment labels in registry order.
func IDs() []string {
	out := make([]string, len(Experiments))
	for i, e := range Experiments {
		out[i] = e.ID
	}
	return out
}

// RunAll executes every experiment, writing each table to w.
func RunAll(s *Session, w io.Writer) error {
	for _, e := range Experiments {
		s.cfg.progressf("== %s: %s", e.ID, e.Title)
		tables, err := e.Run(s)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			if err := t.Format(w); err != nil {
				return err
			}
		}
	}
	return nil
}

var errUnknownDataset = errors.New("bench: unknown dataset name")

// selectedDatasets resolves cfg.Datasets against the paper list.
func (s *Session) selectedDatasets() ([]string, error) {
	all := []string{"ItalyPower", "ECG", "Face", "Wafer", "Symbols", "TwoPattern"}
	if s.cfg.Datasets == nil {
		return all, nil
	}
	allowed := make(map[string]bool, len(all))
	for _, n := range all {
		allowed[n] = true
	}
	var out []string
	seen := map[string]bool{}
	for _, n := range s.cfg.Datasets {
		if !allowed[n] {
			return nil, fmt.Errorf("%w: %q", errUnknownDataset, n)
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return indexOf(all, out[i]) < indexOf(all, out[j])
	})
	return out, nil
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return len(xs)
}
