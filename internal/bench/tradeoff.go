package bench

import (
	"fmt"

	"onex/internal/core"
	"onex/internal/dataset"
	"onex/internal/query"
	"onex/internal/stats"
)

// tradeoffSweep is the ST range of Figs. 7–8.
var tradeoffSweep = []float64{0.1, 0.2, 0.3, 0.4}

// runFig7 regenerates Fig. 7: the accuracy-vs-time trade-off while varying
// ST on ItalyPower (7a) and ECG (7b).
func runFig7(s *Session) ([]Table, error) {
	return s.tradeoffTables("Fig 7", []string{"ItalyPower", "ECG"})
}

// runFig8 regenerates Fig. 8: the same trade-off on Face (8a) and Wafer (8b).
func runFig8(s *Session) ([]Table, error) {
	return s.tradeoffTables("Fig 8", []string{"Face", "Wafer"})
}

func (s *Session) tradeoffTables(figure string, names []string) ([]Table, error) {
	var out []Table
	sub := 'a'
	for _, name := range names {
		t, err := s.tradeoffOne(fmt.Sprintf("%s%c: accuracy vs running time varying ST (%s)", figure, sub, name), name)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		sub++
	}
	return out, nil
}

// tradeoffOne rebuilds the base per ST and measures accuracy and mean query
// time with the same workload and ground truth every time (the exact
// distances depend only on the data, not on ST).
func (s *Session) tradeoffOne(title, name string) (Table, error) {
	sp, ok := dataset.ByName(name)
	if !ok {
		return Table{}, fmt.Errorf("%w: %q", errUnknownDataset, name)
	}
	w, err := buildWorkload(sp, s.cfg)
	if err != nil {
		return Table{}, err
	}
	// Ground truth once (cached from the similarity suite if already run).
	sim, err := s.similarity(name)
	if err != nil {
		return Table{}, err
	}
	exact := sim.ExactAny

	t := Table{
		Title:  title,
		Header: []string{"ST", "Accuracy (%)", "Query time (s)", "Build time (s)"},
	}
	for _, st := range tradeoffSweep {
		s.cfg.progressf("  %s ST=%.1f tradeoff…", name, st)
		eng, err := core.Build(w.Data, core.BuildConfig{
			ST:        st,
			Lengths:   w.Lengths,
			Seed:      s.cfg.Seed,
			Normalize: core.NormalizeNone,
		})
		if err != nil {
			return Table{}, err
		}
		var dists []float64
		var total float64
		for qi, q := range w.Queries {
			var m query.Match
			sec, err := timeIt(s.cfg.Repeats, func() error {
				var e error
				m, e = eng.Proc.BestMatch(q.Values, query.MatchAny)
				return e
			})
			if err != nil {
				return Table{}, fmt.Errorf("%s ST=%v query %d: %w", name, st, qi, err)
			}
			total += sec
			dists = append(dists, solutionDist(w, q.Values, m.SeriesID, m.Start, m.Length))
		}
		acc, err := stats.Accuracy(dists, exact)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", st),
			pct(acc),
			secs(total / float64(len(w.Queries))),
			secs(eng.BuildTime.Seconds()),
		})
	}
	return t, nil
}
