package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunShardSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("shard sweep in -short mode")
	}
	rep, tables, err := RunShardSweep(Config{ST: 0.2, Seed: 1, Scale: 0.3, Repeats: 1, Queries: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Fatal("sweep reported non-equivalent answers")
	}
	if len(rep.Points) == 0 {
		t.Fatal("sweep produced no points")
	}
	populations := map[string]bool{}
	for _, pt := range rep.Points {
		populations[pt.Population] = true
		if pt.BuildSeconds <= 0 || pt.QueryMillis <= 0 || pt.BatchMillis <= 0 || pt.KNNMillis <= 0 {
			t.Errorf("%s shards=%d: non-positive timings %+v", pt.Population, pt.Shards, pt)
		}
		if len(pt.ShardSeries) != pt.Shards {
			t.Errorf("%s shards=%d: %d shard-series entries", pt.Population, pt.Shards, len(pt.ShardSeries))
		}
		if pt.MaxShardGroups > pt.GlobalGroups || pt.SumShardGroups < pt.GlobalGroups {
			t.Errorf("%s shards=%d: group accounting %d/%d/%d",
				pt.Population, pt.Shards, pt.MaxShardGroups, pt.SumShardGroups, pt.GlobalGroups)
		}
		if pt.Shards == 1 && (pt.BuildSpeedup != 1 || pt.QuerySpeedup != 1) {
			t.Errorf("%s baseline speedups %v/%v, want 1", pt.Population, pt.BuildSpeedup, pt.QuerySpeedup)
		}
	}
	if len(populations) != 2 {
		t.Errorf("sweep covered populations %v, want 2", populations)
	}
	if len(tables) != 1 || len(tables[0].Rows) != len(rep.Points) {
		t.Error("table shape does not match the report")
	}
	var buf bytes.Buffer
	if err := WriteShardReport(rep, &buf); err != nil {
		t.Fatal(err)
	}
	var round ShardReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if round.BestQuerySpeedup != rep.BestQuerySpeedup || !round.Equivalent {
		t.Error("report did not round-trip")
	}
}
