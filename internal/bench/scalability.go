package bench

import (
	"strconv"

	"onex/internal/dataset"
)

// runFig3 regenerates Fig. 3: similarity-query time as the number of
// StarLightCurves series grows, for all four systems (3a) and the
// ONEX-vs-Trillion zoom (3b). The paper subsets length-100 series and varies
// N from 1000 to 4000/5000; bench scale uses 100..500 so the brute-force
// series stays tractable (Full restores the paper range).
func runFig3(s *Session) ([]Table, error) {
	sizes := []int{100, 200, 300, 400, 500}
	if s.cfg.Full {
		sizes = []int{1000, 2000, 3000, 4000, 5000}
	}
	const seriesLen = 100
	nQueries := s.cfg.Queries / 2 // scalability uses a lighter workload
	if nQueries < 2 {
		nQueries = 2
	}

	a := Table{
		Title:  "Fig 3a: similarity query time (s) varying number of time series (StarLightCurves, len 100)",
		Header: []string{"N", "ONEX", "TRILLION", "PAA", "STANDARD-DTW"},
	}
	b := Table{
		Title:  "Fig 3b: zoom, ONEX vs TRILLION",
		Header: []string{"N", "ONEX", "TRILLION", "Trillion/ONEX"},
	}
	for _, n := range sizes {
		s.cfg.progressf("  StarLight N=%d…", n)
		// The workload removes the out-of-dataset query sources, so
		// generate enough extra series to keep N searched series.
		sp := dataset.StarLight(n+nQueries/2, seriesLen)
		cfg := s.cfg
		cfg.Full = true // the spec already carries the exact N; don't rescale
		cfg.Queries = nQueries
		w, err := buildWorkload(sp, cfg)
		if err != nil {
			return nil, err
		}
		r, err := runSimilaritySuite(w, cfg)
		if err != nil {
			return nil, err
		}
		nStr := strconv.Itoa(n)
		a.Rows = append(a.Rows, []string{nStr, secs(r.TimeONEX), secs(r.TimeTrillion), secs(r.TimePAA), secs(r.TimeStd)})
		b.Rows = append(b.Rows, []string{nStr, secs(r.TimeONEX), secs(r.TimeTrillion), ratio(r.TimeTrillion, r.TimeONEX)})
	}
	return []Table{a, b}, nil
}
