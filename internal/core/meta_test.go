package core

import (
	"bytes"
	"testing"
)

func TestMetaRoundTrip(t *testing.T) {
	eng := buildPersistFixture(t)
	m := eng.Meta()
	if m.Name != eng.Base.Dataset.Name || m.Series != eng.Base.Dataset.N() {
		t.Errorf("Meta identity = %+v", m)
	}
	if !m.SavedAt.IsZero() {
		t.Errorf("fresh engine SavedAt = %v, want zero", m.SavedAt)
	}
	if m.ST != 0.2 || len(m.Lengths) != 2 {
		t.Errorf("Meta config = %+v", m)
	}

	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lm := loaded.Meta()
	if lm.SavedAt.IsZero() {
		t.Error("loaded engine SavedAt is zero, want the Save timestamp")
	}
	if lm.BuildTime != m.BuildTime {
		t.Errorf("loaded BuildTime = %v, want original %v", lm.BuildTime, m.BuildTime)
	}
	if len(loaded.cfg.Lengths) != 2 {
		t.Errorf("loaded cfg.Lengths = %v, want the configured restriction", loaded.cfg.Lengths)
	}
	if lm.Name != m.Name || lm.Series != m.Series || lm.ST != m.ST {
		t.Errorf("loaded Meta = %+v, want %+v", lm, m)
	}
}

func TestBuildProgressThreaded(t *testing.T) {
	d := fixture(t)
	calls := 0
	_, err := Build(d, BuildConfig{
		ST: 0.2, Lengths: []int{6, 12}, Seed: 1,
		Progress: func(done, total int) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("Progress called %d times, want 2", calls)
	}
}
