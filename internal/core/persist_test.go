package core

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"onex/internal/query"
)

func buildPersistFixture(t *testing.T) *Engine {
	t.Helper()
	d := fixture(t)
	eng, err := Build(d, BuildConfig{
		ST: 0.2, Lengths: []int{6, 12}, Seed: 3,
		Query: query.Options{CandidateLimit: 7, Patience: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestSaveLoadRoundTrip(t *testing.T) {
	eng := buildPersistFixture(t)
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Structure identical.
	if loaded.Base.ST != eng.Base.ST {
		t.Errorf("ST %v != %v", loaded.Base.ST, eng.Base.ST)
	}
	if loaded.Base.TotalGroups() != eng.Base.TotalGroups() {
		t.Errorf("groups %d != %d", loaded.Base.TotalGroups(), eng.Base.TotalGroups())
	}
	if loaded.Base.TotalSubseq != eng.Base.TotalSubseq {
		t.Errorf("subseq %d != %d", loaded.Base.TotalSubseq, eng.Base.TotalSubseq)
	}
	if loaded.Base.GlobalSTHalf != eng.Base.GlobalSTHalf ||
		loaded.Base.GlobalSTFinal != eng.Base.GlobalSTFinal {
		t.Error("SP-Space thresholds differ after round trip")
	}
	// Queries agree bit-for-bit.
	q := append([]float64(nil), eng.Base.Dataset.Series[1].Values[3:15]...)
	m1, err := eng.Proc.BestMatch(q, query.MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := loaded.Proc.BestMatch(q, query.MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Errorf("query answers differ after round trip: %+v vs %+v", m1, m2)
	}
	// Loaded engines remain extendable (grouped state survived).
	if _, err := loaded.Extend(fixture(t).Series[:1]); err != nil {
		t.Errorf("loaded engine not extendable: %v", err)
	}
}

func TestSaveAdaptedEngineRefused(t *testing.T) {
	eng := buildPersistFixture(t)
	adapted, err := eng.WithThreshold(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if err := adapted.Save(io.Discard); err == nil {
		t.Error("saving adapted engine should fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"wrong magic", []byte("NOTANONEXBASE___________")},
		{"truncated magic", []byte("ONEX")},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Load(bytes.NewReader(c.data)); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	eng := buildPersistFixture(t)
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(persistMagic)] = 99 // bump version byte
	_, err := Load(bytes.NewReader(data))
	if !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	eng := buildPersistFixture(t)
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte in the middle of the payload.
	data[len(data)/2] ^= 0xFF
	_, err := Load(bytes.NewReader(data))
	if err == nil {
		t.Fatal("corrupted stream loaded without error")
	}
	// Either the checksum catches it or a range check does; both are fine,
	// but silent success is not.
}

func TestLoadDetectsTruncation(t *testing.T) {
	eng := buildPersistFixture(t)
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(data) / 4, len(data) / 2, len(data) - 2} {
		if _, err := Load(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d loaded without error", cut)
		}
	}
}
