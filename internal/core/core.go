// Package core composes the ONEX subsystems — grouping (Algorithm 1),
// rspace (the GTI/LSI/SP-Space indexes) and query (Algorithm 2) — into one
// engine with a single build entry point. The public onex package wraps this
// engine with the stable exported API; the benchmark harness drives it
// directly.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"onex/internal/grouping"
	"onex/internal/query"
	"onex/internal/rspace"
	"onex/internal/ts"
)

// NormalizeMode selects how the dataset is normalized before indexing.
type NormalizeMode int

const (
	// NormalizeDataset applies the paper's scheme: min-max over the whole
	// dataset (Sec. 6.1). This is the default.
	NormalizeDataset NormalizeMode = iota
	// NormalizePerSeries min-max scales each series independently.
	NormalizePerSeries
	// NormalizeNone indexes the raw values (the caller already normalized).
	NormalizeNone
)

// BuildConfig aggregates every knob of a build.
type BuildConfig struct {
	// ST is the similarity threshold (normalized-ED units). The paper's
	// experiments use the per-dataset sweet spot ≈ 0.2 (Sec. 6.3).
	ST float64
	// Lengths restricts the indexed subsequence lengths; nil indexes all
	// lengths 2..max as in the paper.
	Lengths []int
	// Seed makes builds reproducible.
	Seed int64
	// Workers bounds build parallelism (0 = GOMAXPROCS).
	Workers int
	// Normalize selects the input normalization.
	Normalize NormalizeMode
	// Query carries the online-processor options.
	Query query.Options
	// Progress, when non-nil, is invoked after each indexed length finishes
	// grouping with (completed, total) counts. Calls are serialized.
	Progress func(done, total int)
	// Cancel, when non-nil, aborts the offline construction between lengths
	// once closed; Build then returns ErrCanceled.
	Cancel <-chan struct{}
}

// ErrCanceled is returned by Build when BuildConfig.Cancel fires before the
// construction completes.
var ErrCanceled = grouping.ErrCanceled

// Engine is a built ONEX base plus its query processor.
type Engine struct {
	// Base is the immutable R-Space with its indexes.
	Base *rspace.Base
	// Proc answers online queries.
	Proc *query.Processor
	// BuildTime records the offline construction cost (Fig. 5).
	BuildTime time.Duration

	cfg BuildConfig
	// normMin/normMax record the dataset-level scaling applied at build so
	// incrementally added series land in the same value space.
	normMin, normMax float64
	grouped          *grouping.Result
	// savedAt is the Save timestamp restored by Load (zero for engines that
	// were built in-process or loaded from a version-1 stream).
	savedAt time.Time
}

// Meta summarizes an engine for catalogs and snapshot inspection.
type Meta struct {
	// Name is the dataset name.
	Name string
	// Series is the number of indexed series.
	Series int
	// Lengths lists the indexed subsequence lengths, increasing.
	Lengths []int
	// ST is the similarity threshold the base was built with.
	ST float64
	// BuildTime is the offline construction cost (restored across a
	// Save/Load round trip on version ≥ 2 streams).
	BuildTime time.Duration
	// SavedAt is when the engine was serialized; zero if never saved or
	// loaded from a version-1 stream.
	SavedAt time.Time
}

// Meta reports the engine's identifying metadata.
func (e *Engine) Meta() Meta {
	return Meta{
		Name:      e.Base.Dataset.Name,
		Series:    e.Base.Dataset.N(),
		Lengths:   append([]int(nil), e.Base.Lengths...),
		ST:        e.Base.ST,
		BuildTime: e.BuildTime,
		SavedAt:   e.savedAt,
	}
}

// Build normalizes (a copy of) the dataset per cfg, constructs the
// similarity groups, wraps them in the R-Space indexes and returns a ready
// engine. The input dataset is never modified.
func Build(d *ts.Dataset, cfg BuildConfig) (*Engine, error) {
	if d == nil {
		return nil, errors.New("core: nil dataset")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	work := d
	var normMin, normMax float64
	switch cfg.Normalize {
	case NormalizeDataset:
		normMin, normMax = d.MinMax()
		work = d.Clone()
		if err := work.NormalizeMinMax(); err != nil {
			return nil, err
		}
	case NormalizePerSeries:
		work = d.Clone()
		if err := work.NormalizeMinMaxPerSeries(); err != nil {
			return nil, err
		}
	case NormalizeNone:
		// Index raw values as provided.
	default:
		return nil, fmt.Errorf("core: unknown normalize mode %d", cfg.Normalize)
	}

	start := time.Now()
	gr, err := grouping.Build(work, grouping.Config{
		ST:       cfg.ST,
		Lengths:  cfg.Lengths,
		Seed:     cfg.Seed,
		Workers:  cfg.Workers,
		Progress: cfg.Progress,
		Cancel:   cfg.Cancel,
	})
	if err != nil {
		return nil, err
	}
	base, err := rspace.New(work, gr, rspace.Options{})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	proc, err := query.New(base, cfg.Query)
	if err != nil {
		return nil, err
	}
	return &Engine{
		Base: base, Proc: proc, BuildTime: elapsed,
		cfg: cfg, normMin: normMin, normMax: normMax, grouped: gr,
	}, nil
}

// Extend performs incremental base maintenance: the new series join the
// existing similarity groups via the Algorithm 1 assignment rule (only the
// new subsequences are clustered — no rebuild of existing groups), then the
// GTI/LSI/SP-Space indexes are re-derived. The receiver stays valid and
// unchanged; a new engine over the extended base is returned.
//
// Normalization: with NormalizeDataset the new series are scaled with the
// *original* dataset's min/max so all values stay commensurate (values
// outside the original range map outside [0,1], which is harmless);
// NormalizePerSeries scales each new series by itself; NormalizeNone
// appends raw values.
func (e *Engine) Extend(newSeries []*ts.Series) (*Engine, error) {
	if len(newSeries) == 0 {
		return nil, errors.New("core: no series to add")
	}
	if e.grouped == nil {
		return nil, errors.New("core: threshold-adapted engines cannot be extended; extend the original base first")
	}
	work := e.Base.Dataset.Clone()
	from := work.N()
	for _, s := range newSeries {
		if s == nil || s.Len() == 0 {
			return nil, errors.New("core: empty new series")
		}
		values := append([]float64(nil), s.Values...)
		switch e.cfg.Normalize {
		case NormalizeDataset:
			scale := 1 / (e.normMax - e.normMin)
			for i, v := range values {
				values[i] = (v - e.normMin) * scale
			}
		case NormalizePerSeries:
			min, max := math.Inf(1), math.Inf(-1)
			for _, v := range values {
				min = math.Min(min, v)
				max = math.Max(max, v)
			}
			if max == min {
				return nil, ts.ErrConstantData
			}
			scale := 1 / (max - min)
			for i, v := range values {
				values[i] = (v - min) * scale
			}
		}
		work.Append(s.Label, values)
	}

	start := time.Now()
	gr, err := grouping.Extend(work, e.grouped, from, grouping.Config{
		ST:      e.cfg.ST,
		Seed:    e.cfg.Seed,
		Workers: e.cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	base, err := rspace.New(work, gr, rspace.Options{})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	proc, err := query.New(base, e.cfg.Query)
	if err != nil {
		return nil, err
	}
	return &Engine{
		Base: base, Proc: proc, BuildTime: elapsed,
		cfg: e.cfg, normMin: e.normMin, normMax: e.normMax, grouped: gr,
	}, nil
}

// WithThreshold adapts the engine to a new similarity threshold via the
// Sec. 5.2 split/merge rules, returning a new engine over the adapted view.
// The receiver is unchanged. Adapted engines answer every query class but
// cannot be Extended (extend the original base, then re-adapt).
func (e *Engine) WithThreshold(stPrime float64) (*Engine, error) {
	start := time.Now()
	proc, err := e.Proc.AdaptThreshold(stPrime)
	if err != nil {
		return nil, err
	}
	return &Engine{
		Base: proc.Base(), Proc: proc, BuildTime: time.Since(start),
		cfg: e.cfg, normMin: e.normMin, normMax: e.normMax,
	}, nil
}
