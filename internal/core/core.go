// Package core composes the ONEX subsystems — grouping (Algorithm 1),
// rspace (the GTI/LSI/SP-Space indexes) and query (Algorithm 2) — into one
// engine with a single build entry point. The public onex package wraps this
// engine with the stable exported API; the benchmark harness drives it
// directly.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"onex/internal/grouping"
	"onex/internal/query"
	"onex/internal/rspace"
	"onex/internal/ts"
)

// NormalizeMode selects how the dataset is normalized before indexing.
type NormalizeMode int

const (
	// NormalizeDataset applies the paper's scheme: min-max over the whole
	// dataset (Sec. 6.1). This is the default.
	NormalizeDataset NormalizeMode = iota
	// NormalizePerSeries min-max scales each series independently.
	NormalizePerSeries
	// NormalizeNone indexes the raw values (the caller already normalized).
	NormalizeNone
)

// BuildConfig aggregates every knob of a build.
type BuildConfig struct {
	// ST is the similarity threshold (normalized-ED units). The paper's
	// experiments use the per-dataset sweet spot ≈ 0.2 (Sec. 6.3).
	ST float64
	// Lengths restricts the indexed subsequence lengths; nil indexes all
	// lengths 2..max as in the paper.
	Lengths []int
	// Seed makes builds reproducible.
	Seed int64
	// Workers bounds build parallelism (0 = GOMAXPROCS).
	Workers int
	// RebuildDrift is the amortized-rebuild threshold of the streaming
	// Append path: when the fraction of members assigned incrementally
	// (since the last full Algorithm 1 run) would exceed this value after an
	// append, the engine re-runs the full build over the final data instead
	// of incrementally assigning — bounding how far the grouping can drift
	// from what a from-scratch build would produce. 0 selects
	// DefaultRebuildDrift; negative disables amortized rebuilds.
	RebuildDrift float64
	// Normalize selects the input normalization.
	Normalize NormalizeMode
	// DcTopK bounds how many nearest-neighbor Dc entries each representative
	// retains per length (rspace.Options.TopK): 0 selects
	// rspace.DefaultTopK, negative retains every entry (the dense-equivalent
	// layout). Purely a memory knob — answers are bit-identical at every
	// setting (see the rspace package doc).
	DcTopK int
	// Query carries the online-processor options.
	Query query.Options
	// Progress, when non-nil, is invoked after each indexed length finishes
	// grouping with (completed, total) counts. Calls are serialized.
	Progress func(done, total int)
	// Cancel, when non-nil, aborts the offline construction between lengths
	// once closed; Build then returns ErrCanceled.
	Cancel <-chan struct{}
}

// ErrCanceled is returned by Build when BuildConfig.Cancel fires before the
// construction completes.
var ErrCanceled = grouping.ErrCanceled

// Engine is a built ONEX base plus its query processor.
type Engine struct {
	// Base is the immutable R-Space with its indexes.
	Base *rspace.Base
	// Proc answers online queries.
	Proc *query.Processor
	// BuildTime records the offline construction cost (Fig. 5).
	BuildTime time.Duration

	cfg BuildConfig
	// normMin/normMax record the dataset-level scaling applied at build so
	// incrementally added series land in the same value space.
	normMin, normMax float64
	grouped          *grouping.Result
	// savedAt is the Save timestamp restored by Load (zero for engines that
	// were built in-process or loaded from a version-1 stream).
	savedAt time.Time
	// rebuilds counts drift-triggered full rebuilds along this engine's
	// maintenance lineage and lastRebuild records the most recent one's
	// wall-clock cost — the observability counters of the amortized rebuild
	// policy. Process-local: snapshots do not persist them.
	rebuilds    int64
	lastRebuild time.Duration
}

// Rebuilds returns how many drift-triggered full rebuilds this engine's
// maintenance lineage (Append/Extend chains) has absorbed.
func (e *Engine) Rebuilds() int64 { return e.rebuilds }

// LastRebuild returns the wall-clock cost of the most recent drift-triggered
// rebuild (zero if none happened).
func (e *Engine) LastRebuild() time.Duration { return e.lastRebuild }

// Meta summarizes an engine for catalogs and snapshot inspection.
type Meta struct {
	// Name is the dataset name.
	Name string
	// Series is the number of indexed series.
	Series int
	// Lengths lists the indexed subsequence lengths, increasing.
	Lengths []int
	// ST is the similarity threshold the base was built with.
	ST float64
	// BuildTime is the offline construction cost (restored across a
	// Save/Load round trip on version ≥ 2 streams).
	BuildTime time.Duration
	// SavedAt is when the engine was serialized; zero if never saved or
	// loaded from a version-1 stream.
	SavedAt time.Time
}

// Meta reports the engine's identifying metadata.
func (e *Engine) Meta() Meta {
	return Meta{
		Name:      e.Base.Dataset.Name,
		Series:    e.Base.Dataset.N(),
		Lengths:   append([]int(nil), e.Base.Lengths...),
		ST:        e.Base.ST,
		BuildTime: e.BuildTime,
		SavedAt:   e.savedAt,
	}
}

// PrepareDataset validates the input and applies the configured input
// normalization, returning the working dataset (a copy unless mode is
// NormalizeNone) plus the dataset-wide min/max recorded for later
// incremental scaling (zero unless mode is NormalizeDataset). It is the
// shared front half of Build, factored out so the sharded engine
// (internal/shard) prepares its data identically — bit-identical inputs to
// grouping are what make Shards=1 and Shards=N answer alike.
func PrepareDataset(d *ts.Dataset, mode NormalizeMode) (work *ts.Dataset, normMin, normMax float64, err error) {
	if d == nil {
		return nil, 0, 0, errors.New("core: nil dataset")
	}
	if err := d.Validate(); err != nil {
		return nil, 0, 0, err
	}
	work = d
	switch mode {
	case NormalizeDataset:
		normMin, normMax = d.MinMax()
		work = d.Clone()
		if err := work.NormalizeMinMax(); err != nil {
			return nil, 0, 0, err
		}
	case NormalizePerSeries:
		work = d.Clone()
		if err := work.NormalizeMinMaxPerSeries(); err != nil {
			return nil, 0, 0, err
		}
	case NormalizeNone:
		// Index raw values as provided.
	default:
		return nil, 0, 0, fmt.Errorf("core: unknown normalize mode %d", mode)
	}
	return work, normMin, normMax, nil
}

// Build normalizes (a copy of) the dataset per cfg, constructs the
// similarity groups, wraps them in the R-Space indexes and returns a ready
// engine. The input dataset is never modified.
func Build(d *ts.Dataset, cfg BuildConfig) (*Engine, error) {
	work, normMin, normMax, err := PrepareDataset(d, cfg.Normalize)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	gr, err := grouping.Build(work, grouping.Config{
		ST:       cfg.ST,
		Lengths:  cfg.Lengths,
		Seed:     cfg.Seed,
		Workers:  cfg.Workers,
		Progress: cfg.Progress,
		Cancel:   cfg.Cancel,
	})
	if err != nil {
		return nil, err
	}
	base, err := rspace.New(work, gr, rspace.Options{TopK: cfg.DcTopK})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	proc, err := query.New(base, cfg.Query)
	if err != nil {
		return nil, err
	}
	return &Engine{
		Base: base, Proc: proc, BuildTime: elapsed,
		cfg: cfg, normMin: normMin, normMax: normMax, grouped: gr,
	}, nil
}

// Extend performs incremental base maintenance: the new series join the
// existing similarity groups via the Algorithm 1 assignment rule (only the
// new subsequences are clustered), then the GTI/LSI/SP-Space indexes are
// re-derived incrementally. Like Append, Extend participates in the
// amortized rebuild policy: when the extension would push the incremental-
// member fraction past BuildConfig.RebuildDrift, the full offline build
// re-runs over the final data instead. The receiver stays valid and
// unchanged; a new engine over the extended base is returned.
//
// Normalization: with NormalizeDataset the new series are scaled with the
// *original* dataset's min/max so all values stay commensurate (values
// outside the original range map outside [0,1], which is harmless);
// NormalizePerSeries scales each new series by itself; NormalizeNone
// appends raw values.
func (e *Engine) Extend(newSeries []*ts.Series) (*Engine, error) {
	if len(newSeries) == 0 {
		return nil, errors.New("core: no series to add")
	}
	if e.grouped == nil {
		return nil, errors.New("core: threshold-adapted engines cannot be extended; extend the original base first")
	}
	// Copy-on-write: existing series are immutable and shared; only the new
	// series allocate (see Append).
	work := e.Base.Dataset.CloneShared()
	from := work.N()
	for _, s := range newSeries {
		if s == nil || s.Len() == 0 {
			return nil, errors.New("core: empty new series")
		}
		// Reject non-finite values at the boundary, as Build (Validate) and
		// Append (Dataset.AppendPoints) do — a NaN window would found a
		// group with a NaN representative and poison every later query.
		if i := ts.CheckFinite(s.Values); i >= 0 {
			return nil, fmt.Errorf("core: new series has non-finite value %v at index %d", s.Values[i], i)
		}
		values, err := ScaleNewSeries(e.cfg.Normalize, e.normMin, e.normMax, s.Values)
		if err != nil {
			return nil, err
		}
		work.Append(s.Label, values)
	}

	var newCount int64
	for _, s := range work.Series[from:] {
		for _, l := range e.grouped.Lengths {
			if n := s.Len() - l + 1; n > 0 {
				newCount += int64(n)
			}
		}
	}
	return e.maintainOrRebuild(work, newCount, func() (*grouping.Result, *grouping.Delta, error) {
		return grouping.Extend(work, e.grouped, from, e.maintenanceConfig())
	})
}

// DefaultRebuildDrift is the incremental-member fraction at which Append
// amortizes a full rebuild when BuildConfig.RebuildDrift is 0.
const DefaultRebuildDrift = 0.25

// Drift reports the fraction of indexed subsequences that joined the base
// incrementally (Extend/Append) since the last full Algorithm 1 run — the
// staleness signal of the amortized rebuild policy. Threshold-adapted
// engines report 0.
func (e *Engine) Drift() float64 {
	if e.grouped == nil {
		return 0
	}
	return e.grouped.Drift()
}

// Append grows one existing series in time: the points are appended to the
// series and only the suffix subsequences — windows overlapping the new
// points — are pushed through the Algorithm 1 assignment rule
// (grouping.AppendPoints), after which the index layers refresh
// incrementally (rspace.Refresh). Maintenance therefore costs
// O(new-subsequences × g × L) distance work instead of a rebuild. When the
// accumulated drift (fraction of incrementally assigned members) would
// cross BuildConfig.RebuildDrift, the engine instead re-runs the full
// offline build over the final data — identical to what a from-scratch
// Build over the same (normalized) dataset produces for the base's indexed
// length set, which stays pinned — resetting drift to zero.
//
// The receiver stays valid and unchanged; a new engine is returned.
// Normalization: with NormalizeDataset the points are scaled with the
// original dataset's min/max (values outside the original range map outside
// [0,1], which is harmless); NormalizeNone appends raw values;
// NormalizePerSeries bases cannot Append (the original per-series scale is
// not retained) and return an error.
func (e *Engine) Append(seriesID int, points []float64) (*Engine, error) {
	if len(points) == 0 {
		return nil, errors.New("core: no points to append")
	}
	if e.grouped == nil {
		return nil, errors.New("core: threshold-adapted engines cannot be appended to; append to the original base first")
	}
	scaled, err := ScaleAppendPoints(e.cfg.Normalize, e.normMin, e.normMax, points)
	if err != nil {
		return nil, err
	}

	// Copy-on-write clone: indexed observations are immutable, so the grown
	// base shares every series' backing array; Dataset.AppendPoints moves
	// the grown series onto a freshly-owned array (never writing through a
	// shared one) and rejects non-finite values — NaN and ±Inf survive the
	// affine scaling, so validating scaled covers raw. An append therefore
	// costs O(series + grown-series length) in copying, not O(total points).
	work := e.Base.Dataset.CloneShared()
	oldLens := make([]int, work.N())
	for i, s := range work.Series {
		oldLens[i] = s.Len()
	}
	if err := work.AppendPoints(seriesID, scaled); err != nil {
		return nil, err
	}

	// Count the windows this append creates to decide incrementally-vs-
	// rebuild before paying for either.
	var newCount int64
	for _, l := range e.grouped.Lengths {
		lo, hi := work.Series[seriesID].NewWindowStarts(oldLens[seriesID], l)
		newCount += int64(hi - lo)
	}
	return e.maintainOrRebuild(work, newCount, func() (*grouping.Result, *grouping.Delta, error) {
		return grouping.AppendPoints(work, e.grouped, oldLens, e.maintenanceConfig())
	})
}

// scaleToDataset maps raw values into the engine's indexed value space under
// the dataset-wide min-max scaling recorded at build time.
func (e *Engine) scaleToDataset(values []float64) []float64 {
	return scaleToRange(e.normMin, e.normMax, values)
}

func scaleToRange(normMin, normMax float64, values []float64) []float64 {
	scale := 1 / (normMax - normMin)
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = (v - normMin) * scale
	}
	return out
}

// ScaleAppendPoints maps a streamed point batch into the value space an
// engine built with the given normalization indexes — the exact scaling
// Engine.Append applies, exported so the sharded engine routes appends
// through identical arithmetic. NormalizePerSeries bases cannot grow series
// in time (the original per-series scale is not retained) and error.
func ScaleAppendPoints(mode NormalizeMode, normMin, normMax float64, points []float64) ([]float64, error) {
	switch mode {
	case NormalizeDataset:
		return scaleToRange(normMin, normMax, points), nil
	case NormalizePerSeries:
		return nil, errors.New("core: per-series normalized bases cannot grow series in time (the original per-series scale is not retained); rebuild instead")
	default:
		return append([]float64(nil), points...), nil
	}
}

// ScaleNewSeries maps a whole new series into an engine's indexed value
// space — the Extend scaling: dataset-wide min-max uses the min/max recorded
// at build, per-series normalization scales the series by itself (constant
// series error with ts.ErrConstantData), and NormalizeNone copies the raw
// values.
func ScaleNewSeries(mode NormalizeMode, normMin, normMax float64, values []float64) ([]float64, error) {
	switch mode {
	case NormalizeDataset:
		return scaleToRange(normMin, normMax, values), nil
	case NormalizePerSeries:
		min, max := math.Inf(1), math.Inf(-1)
		for _, v := range values {
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		if max == min {
			return nil, ts.ErrConstantData
		}
		return scaleToRange(min, max, values), nil
	default:
		return append([]float64(nil), values...), nil
	}
}

// maintenanceConfig is the grouping configuration incremental maintenance
// steps run with.
func (e *Engine) maintenanceConfig() grouping.Config {
	return grouping.Config{
		ST:      e.cfg.ST,
		Seed:    e.cfg.Seed,
		Workers: e.cfg.Workers,
	}
}

// maintainOrRebuild finishes an Extend/Append over the grown dataset work:
// when absorbing newCount more incremental members would push drift past
// BuildConfig.RebuildDrift, the full Algorithm 1 build re-runs over the
// final data; otherwise the incremental step runs and the index layers
// refresh from the returned delta. The rebuild's length set is pinned to
// the base's currently-indexed lengths — never re-resolved from the grown
// data — so crossing the drift threshold can never change which query
// lengths the base answers; within that set the result is exactly what a
// from-scratch Build over this dataset would produce. Progress/Cancel flow
// like the original build's, so a serving layer can abort a maintenance-
// triggered rebuild on shutdown.
func (e *Engine) maintainOrRebuild(work *ts.Dataset, newCount int64,
	incremental func() (*grouping.Result, *grouping.Delta, error)) (*Engine, error) {

	rebuild := RebuildDue(e.cfg.RebuildDrift, e.grouped.TotalSubseq, e.grouped.IncrementalMembers, newCount)

	start := time.Now()
	var (
		gr   *grouping.Result
		base *rspace.Base
		err  error
	)
	if rebuild {
		gr, err = grouping.Build(work, grouping.Config{
			ST:       e.cfg.ST,
			Lengths:  e.grouped.Lengths,
			Seed:     e.cfg.Seed,
			Workers:  e.cfg.Workers,
			Progress: e.cfg.Progress,
			Cancel:   e.cfg.Cancel,
		})
		if err != nil {
			return nil, err
		}
		base, err = rspace.New(work, gr, rspace.Options{TopK: e.cfg.DcTopK})
	} else {
		var delta *grouping.Delta
		gr, delta, err = incremental()
		if err != nil {
			return nil, err
		}
		base, err = rspace.Refresh(work, gr, rspace.Options{TopK: e.cfg.DcTopK}, e.Base, delta)
	}
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	proc, err := query.New(base, e.cfg.Query)
	if err != nil {
		return nil, err
	}
	next := &Engine{
		Base: base, Proc: proc, BuildTime: elapsed,
		cfg: e.cfg, normMin: e.normMin, normMax: e.normMax, grouped: gr,
		rebuilds: e.rebuilds, lastRebuild: e.lastRebuild,
	}
	if rebuild {
		next.rebuilds++
		next.lastRebuild = elapsed
	}
	return next, nil
}

// RebuildDue applies the amortized-rebuild policy's decision rule: whether
// absorbing newCount more incremental members into a base of total members
// (incremental of them already assigned incrementally) would push the drift
// fraction past the configured threshold (0 selects DefaultRebuildDrift,
// negative disables). Exported so the sharded engine reaches the exact same
// rebuild decisions as the single-engine path.
func RebuildDue(threshold float64, total, incremental, newCount int64) bool {
	if threshold == 0 {
		threshold = DefaultRebuildDrift
	}
	grown := total + newCount
	return threshold > 0 && grown > 0 &&
		float64(incremental+newCount)/float64(grown) > threshold
}

// WithThreshold adapts the engine to a new similarity threshold via the
// Sec. 5.2 split/merge rules, returning a new engine over the adapted view.
// The receiver is unchanged. Adapted engines answer every query class but
// cannot be Extended (extend the original base, then re-adapt).
func (e *Engine) WithThreshold(stPrime float64) (*Engine, error) {
	start := time.Now()
	proc, err := e.Proc.AdaptThreshold(stPrime)
	if err != nil {
		return nil, err
	}
	return &Engine{
		Base: proc.Base(), Proc: proc, BuildTime: time.Since(start),
		cfg: e.cfg, normMin: e.normMin, normMax: e.normMax,
	}, nil
}
