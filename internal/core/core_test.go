package core

import (
	"math"
	"testing"

	"onex/internal/dataset"
	"onex/internal/ts"
)

func fixture(t *testing.T) *ts.Dataset {
	t.Helper()
	return dataset.ItalyPower.Scaled(0.3).Generate(1)
}

func TestBuildValidation(t *testing.T) {
	d := fixture(t)
	cases := []struct {
		name string
		d    *ts.Dataset
		cfg  BuildConfig
	}{
		{"nil dataset", nil, BuildConfig{ST: 0.2}},
		{"empty dataset", &ts.Dataset{}, BuildConfig{ST: 0.2}},
		{"zero ST", d, BuildConfig{ST: 0}},
		{"bad normalize", d, BuildConfig{ST: 0.2, Normalize: NormalizeMode(9)}},
		{"NaN data", ts.NewDataset("t", [][]float64{{math.NaN()}}), BuildConfig{ST: 0.2}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Build(c.d, c.cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestBuildLeavesInputUntouched(t *testing.T) {
	d := fixture(t)
	orig := append([]float64(nil), d.Series[0].Values...)
	if _, err := Build(d, BuildConfig{ST: 0.2, Lengths: []int{6}}); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if d.Series[0].Values[i] != orig[i] {
			t.Fatal("Build mutated the input dataset")
		}
	}
}

func TestBuildNormalizeNoneIndexesRaw(t *testing.T) {
	d := ts.NewDataset("t", [][]float64{{0, 100, 0, 100, 0, 100}})
	eng, err := Build(d, BuildConfig{ST: 0.2, Lengths: []int{3}, Normalize: NormalizeNone})
	if err != nil {
		t.Fatal(err)
	}
	// Raw values survive: some representative has amplitude ~100.
	maxVal := 0.0
	for _, g := range eng.Base.Entry(3).Groups {
		for _, v := range g.Rep {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal < 50 {
		t.Errorf("raw-space reps look normalized (max %v)", maxVal)
	}
}

func TestBuildAndQueryRoundTrip(t *testing.T) {
	d := fixture(t)
	eng, err := Build(d, BuildConfig{ST: 0.2, Lengths: []int{6, 12}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if eng.BuildTime <= 0 {
		t.Error("BuildTime not recorded")
	}
	q := append([]float64(nil), eng.Base.Dataset.Series[0].Values[2:14]...)
	m, err := eng.Proc.BestMatch(q, 0 /* MatchExact */)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Found() || m.Length != 12 {
		t.Fatalf("match = %+v", m)
	}
}

func TestWithThreshold(t *testing.T) {
	d := fixture(t)
	eng, err := Build(d, BuildConfig{ST: 0.2, Lengths: []int{6}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	adapted, err := eng.WithThreshold(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if adapted.Base.ST != 0.4 {
		t.Errorf("adapted ST = %v", adapted.Base.ST)
	}
	if adapted.Base.TotalGroups() > eng.Base.TotalGroups() {
		t.Error("loosening gained groups")
	}
	if _, err := eng.WithThreshold(0); err == nil {
		t.Error("bad ST': want error")
	}
}
