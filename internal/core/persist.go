package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"onex/internal/grouping"
	"onex/internal/query"
	"onex/internal/rspace"
	"onex/internal/ts"
)

// The on-disk format is a little-endian stream:
//
//	magic "ONEXBASE" | version u32 | header | dataset | groups | crc32
//
// Groups store representatives and member lists verbatim (preserving the
// exact drift state of Algorithm 1's running averages); the derived index
// layers (Dc, envelopes, SP-Space, sum orders) are recomputed on load —
// they are pure functions of the groups and recomputing is cheaper than
// storing the O(g²) matrices for every length.
//
// Version 2 adds round-trip metadata between the header and the dataset:
// the Save wall-clock timestamp, the original offline build time, and the
// configured length restriction — so catalogs (internal/hub) can report a
// reloaded base exactly as the built one. Version 3 adds the incremental-
// member counter after TotalSubseq, so the streaming-append drift (and its
// amortized-rebuild policy) survives a snapshot round trip. Version-1/2
// streams still load, with zero metadata / zero drift.
const (
	persistMagic   = "ONEXBASE"
	persistVersion = 3
)

var (
	// ErrBadFormat reports a stream that is not an ONEX base.
	ErrBadFormat = errors.New("core: not an ONEX base stream")
	// ErrBadVersion reports an unsupported format version.
	ErrBadVersion = errors.New("core: unsupported ONEX base version")
	// ErrCorrupt reports a checksum mismatch.
	ErrCorrupt = errors.New("core: ONEX base stream corrupted (checksum mismatch)")
)

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// Save serializes the engine's base (normalized dataset + similarity
// groups + build configuration) so it can be reloaded without re-running
// Algorithm 1. Threshold-adapted engines cannot be saved (persist the
// original base and re-adapt after load).
func (e *Engine) Save(w io.Writer) error {
	if e.grouped == nil {
		return errors.New("core: threshold-adapted engines cannot be saved; save the original base")
	}
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if _, err := io.WriteString(cw, persistMagic); err != nil {
		return err
	}
	le := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }
	if err := le(uint32(persistVersion)); err != nil {
		return err
	}
	// Header: build parameters needed to reconstruct behaviour.
	if err := errJoin(
		le(e.cfg.ST),
		le(int64(e.cfg.Seed)),
		le(uint8(e.cfg.Normalize)),
		le(e.normMin), le(e.normMax),
		le(uint8(boolByte(e.cfg.Query.DisableEarlyStop))),
		le(uint8(boolByte(e.cfg.Query.DisableLowerBounds))),
		le(int64(e.cfg.Query.CandidateLimit)),
		le(int64(e.cfg.Query.Patience)),
		le(e.cfg.RebuildDrift), // version ≥ 3
	); err != nil {
		return err
	}
	// Metadata (version ≥ 2): save timestamp, original build cost, and the
	// configured length restriction.
	if err := errJoin(
		le(time.Now().Unix()),
		le(int64(e.BuildTime)),
		le(uint32(len(e.cfg.Lengths))),
	); err != nil {
		return err
	}
	for _, l := range e.cfg.Lengths {
		if err := le(uint32(l)); err != nil {
			return err
		}
	}
	// Dataset.
	d := e.Base.Dataset
	if err := writeString(cw, d.Name); err != nil {
		return err
	}
	if err := le(uint32(d.N())); err != nil {
		return err
	}
	for _, s := range d.Series {
		if err := writeString(cw, s.Label); err != nil {
			return err
		}
		if err := le(uint32(s.Len())); err != nil {
			return err
		}
		if err := le(s.Values); err != nil {
			return err
		}
	}
	// Groups.
	gr := e.grouped
	if err := errJoin(le(gr.TotalSubseq), le(gr.IncrementalMembers)); err != nil {
		return err
	}
	if err := le(uint32(len(gr.Lengths))); err != nil {
		return err
	}
	for _, l := range gr.Lengths {
		lg := gr.ByLength[l]
		if err := errJoin(le(uint32(l)), le(uint32(len(lg.Groups)))); err != nil {
			return err
		}
		for _, g := range lg.Groups {
			if err := le(g.Rep); err != nil {
				return err
			}
			if err := le(uint32(g.Count())); err != nil {
				return err
			}
			for _, m := range g.Members {
				if err := errJoin(le(uint32(m.SeriesIdx)), le(uint32(m.Start)), le(m.EDToRep)); err != nil {
					return err
				}
			}
		}
	}
	// Trailing checksum (of everything before it).
	sum := cw.crc
	if err := binary.Write(bw, binary.LittleEndian, sum); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reconstructs an engine from a Save stream: the dataset and groups
// are decoded, and the GTI/LSI/SP-Space index layers are rebuilt.
func Load(r io.Reader) (*Engine, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != persistMagic {
		return nil, ErrBadFormat
	}
	le := func(v any) error { return binary.Read(cr, binary.LittleEndian, v) }
	var version uint32
	if err := le(&version); err != nil {
		return nil, err
	}
	if version < 1 || version > persistVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}

	var cfg BuildConfig
	var normMode, earlyStop, noLB uint8
	var seed, candLimit, patience int64
	var normMin, normMax float64
	if err := errJoin(
		le(&cfg.ST), le(&seed), le(&normMode), le(&normMin), le(&normMax),
		le(&earlyStop), le(&noLB), le(&candLimit), le(&patience),
	); err != nil {
		return nil, err
	}
	if version >= 3 {
		if err := le(&cfg.RebuildDrift); err != nil {
			return nil, err
		}
	}
	var savedAt time.Time
	var origBuild time.Duration
	if version >= 2 {
		var savedUnix, buildNanos int64
		var nCfgLengths uint32
		if err := errJoin(le(&savedUnix), le(&buildNanos), le(&nCfgLengths)); err != nil {
			return nil, err
		}
		if nCfgLengths > 1<<20 {
			return nil, fmt.Errorf("%w: implausible length-config count %d", ErrBadFormat, nCfgLengths)
		}
		for i := uint32(0); i < nCfgLengths; i++ {
			var l uint32
			if err := le(&l); err != nil {
				return nil, err
			}
			cfg.Lengths = append(cfg.Lengths, int(l))
		}
		if savedUnix > 0 {
			savedAt = time.Unix(savedUnix, 0)
		}
		if buildNanos > 0 {
			origBuild = time.Duration(buildNanos)
		}
	}
	if cfg.ST <= 0 || math.IsNaN(cfg.ST) {
		return nil, fmt.Errorf("%w: invalid ST %v", ErrBadFormat, cfg.ST)
	}
	cfg.Seed = seed
	cfg.Normalize = NormalizeMode(normMode)
	cfg.Query = query.Options{
		DisableEarlyStop:   earlyStop != 0,
		DisableLowerBounds: noLB != 0,
		CandidateLimit:     int(candLimit),
		Patience:           int(patience),
	}

	// Dataset.
	name, err := readString(cr)
	if err != nil {
		return nil, err
	}
	var n uint32
	if err := le(&n); err != nil {
		return nil, err
	}
	if n == 0 || n > 1<<28 {
		return nil, fmt.Errorf("%w: implausible series count %d", ErrBadFormat, n)
	}
	d := &ts.Dataset{Name: name}
	for i := uint32(0); i < n; i++ {
		label, err := readString(cr)
		if err != nil {
			return nil, err
		}
		var sl uint32
		if err := le(&sl); err != nil {
			return nil, err
		}
		if sl == 0 || sl > 1<<28 {
			return nil, fmt.Errorf("%w: implausible series length %d", ErrBadFormat, sl)
		}
		values := make([]float64, sl)
		if err := le(values); err != nil {
			return nil, err
		}
		d.Append(label, values)
	}

	// Groups.
	gr := &grouping.Result{ST: cfg.ST, ByLength: map[int]*grouping.LengthGroups{}}
	if err := le(&gr.TotalSubseq); err != nil {
		return nil, err
	}
	if version >= 3 {
		if err := le(&gr.IncrementalMembers); err != nil {
			return nil, err
		}
	}
	var nLengths uint32
	if err := le(&nLengths); err != nil {
		return nil, err
	}
	maxLen := d.MaxLen()
	for li := uint32(0); li < nLengths; li++ {
		var l, nGroups uint32
		if err := errJoin(le(&l), le(&nGroups)); err != nil {
			return nil, err
		}
		if l < 1 || int(l) > maxLen {
			return nil, fmt.Errorf("%w: group length %d outside dataset", ErrBadFormat, l)
		}
		lg := &grouping.LengthGroups{Length: int(l)}
		for gi := uint32(0); gi < nGroups; gi++ {
			rep := make([]float64, l)
			if err := le(rep); err != nil {
				return nil, err
			}
			var nMembers uint32
			if err := le(&nMembers); err != nil {
				return nil, err
			}
			if nMembers == 0 {
				return nil, fmt.Errorf("%w: empty group", ErrBadFormat)
			}
			g := &grouping.Group{Length: int(l), ID: int(gi), Rep: rep,
				Members: make([]grouping.Member, nMembers)}
			for mi := range g.Members {
				var sIdx, start uint32
				var ed float64
				if err := errJoin(le(&sIdx), le(&start), le(&ed)); err != nil {
					return nil, err
				}
				if int(sIdx) >= d.N() || !d.Series[sIdx].CheckRange(int(start), int(l)) {
					return nil, fmt.Errorf("%w: member (%d,%d) out of range", ErrBadFormat, sIdx, start)
				}
				g.Members[mi] = grouping.Member{SeriesIdx: int(sIdx), Start: int(start), EDToRep: ed}
			}
			lg.Groups = append(lg.Groups, g)
		}
		gr.Lengths = append(gr.Lengths, int(l))
		gr.ByLength[int(l)] = lg
	}

	// Verify the checksum before building anything on top.
	want := cr.crc
	var got uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrBadFormat, err)
	}
	if got != want {
		return nil, ErrCorrupt
	}

	start := time.Now()
	base, err := rspace.New(d, gr, rspace.Options{})
	if err != nil {
		return nil, err
	}
	proc, err := query.New(base, cfg.Query)
	if err != nil {
		return nil, err
	}
	buildTime := time.Since(start)
	if origBuild > 0 {
		// Report the original offline construction cost, not the (much
		// cheaper) index rebuild — the point of snapshots is skipping it.
		buildTime = origBuild
	}
	return &Engine{
		Base: base, Proc: proc, BuildTime: buildTime,
		cfg: cfg, normMin: normMin, normMax: normMax, grouped: gr,
		savedAt: savedAt,
	}, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("%w: implausible string length %d", ErrBadFormat, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func errJoin(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
