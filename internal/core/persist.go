package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"onex/internal/grouping"
	"onex/internal/query"
	"onex/internal/rspace"
	"onex/internal/ts"
)

// The on-disk format is a little-endian stream:
//
//	magic "ONEXBASE" | version u32 | header | dataset | groups | crc32
//
// Groups store representatives and member lists verbatim (preserving the
// exact drift state of Algorithm 1's running averages); the derived index
// layers (sparse Dc neighbor lists, envelopes, SP-Space, sum orders) are
// recomputed on load — they are pure functions of the groups and the
// retention knob, and recomputing is cheaper than storing them for every
// length.
//
// Version 2 adds round-trip metadata between the header and the dataset:
// the Save wall-clock timestamp, the original offline build time, and the
// configured length restriction — so catalogs (internal/hub) can report a
// reloaded base exactly as the built one. Version 3 adds the incremental-
// member counter after TotalSubseq, so the streaming-append drift (and its
// amortized-rebuild policy) survives a snapshot round trip. Version 4 adds
// the shard count to the header: the intra-dataset sharded engine
// (internal/shard) persists the same global dataset+groups payload — the
// per-shard restrictions and index layers are derived state, recomputed on
// load exactly like the Dc layers — plus the layout needed to re-shard it.
// Version 5 adds the DcTopK retention knob after the shard count: the sparse
// top-k Dc layout is derived state too, but the knob is configuration and
// must survive a round trip so maintenance after reload retains the same
// widths. Version-1/2/3/4 streams still load, with zero metadata / zero
// drift / one shard / the default retention (harmless: query answers are
// retention-invariant, see the rspace package doc).
const (
	persistMagic   = "ONEXBASE"
	persistVersion = 5
)

var (
	// ErrBadFormat reports a stream that is not an ONEX base.
	ErrBadFormat = errors.New("core: not an ONEX base stream")
	// ErrBadVersion reports an unsupported format version.
	ErrBadVersion = errors.New("core: unsupported ONEX base version")
	// ErrCorrupt reports a checksum mismatch.
	ErrCorrupt = errors.New("core: ONEX base stream corrupted (checksum mismatch)")
)

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// Snapshot is the decoded persistent state of an engine: everything a
// Save stream carries. The sharded engine persists the same payload plus a
// Shards count > 1; the per-shard restrictions, like every index layer, are
// derived state recomputed on load.
type Snapshot struct {
	// Shards is the serving layout: 1 for a monolithic engine, else the
	// shard count of an internal/shard engine.
	Shards int
	// Cfg is the build configuration (ST, seed, lengths, query options…).
	Cfg BuildConfig
	// NormMin/NormMax record the dataset-wide scaling applied at build.
	NormMin, NormMax float64
	// SavedAt is the Save wall-clock timestamp (zero for version-1 streams;
	// ignored by EncodeSnapshot, which stamps the current time).
	SavedAt time.Time
	// BuildTime is the original offline construction cost.
	BuildTime time.Duration
	// Dataset is the normalized dataset the base indexes.
	Dataset *ts.Dataset
	// Grouped is the (global) grouping result, drift counters included.
	Grouped *grouping.Result
}

// Save serializes the engine's base (normalized dataset + similarity
// groups + build configuration) so it can be reloaded without re-running
// Algorithm 1. Threshold-adapted engines cannot be saved (persist the
// original base and re-adapt after load).
func (e *Engine) Save(w io.Writer) error {
	if e.grouped == nil {
		return errors.New("core: threshold-adapted engines cannot be saved; save the original base")
	}
	return EncodeSnapshot(w, &Snapshot{
		Shards:    1,
		Cfg:       e.cfg,
		NormMin:   e.normMin,
		NormMax:   e.normMax,
		BuildTime: e.BuildTime,
		Dataset:   e.Base.Dataset,
		Grouped:   e.grouped,
	})
}

// EncodeSnapshot writes one snapshot as a version-5 ONEX base stream.
func EncodeSnapshot(w io.Writer, snap *Snapshot) error {
	if snap == nil || snap.Dataset == nil || snap.Grouped == nil {
		return errors.New("core: incomplete snapshot")
	}
	shards := snap.Shards
	if shards < 1 {
		shards = 1
	}
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if _, err := io.WriteString(cw, persistMagic); err != nil {
		return err
	}
	le := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }
	if err := le(uint32(persistVersion)); err != nil {
		return err
	}
	// Header: build parameters needed to reconstruct behaviour.
	if err := errJoin(
		le(snap.Cfg.ST),
		le(int64(snap.Cfg.Seed)),
		le(uint8(snap.Cfg.Normalize)),
		le(snap.NormMin), le(snap.NormMax),
		le(uint8(boolByte(snap.Cfg.Query.DisableEarlyStop))),
		le(uint8(boolByte(snap.Cfg.Query.DisableLowerBounds))),
		le(int64(snap.Cfg.Query.CandidateLimit)),
		le(int64(snap.Cfg.Query.Patience)),
		le(snap.Cfg.RebuildDrift),  // version ≥ 3
		le(uint32(shards)),         // version ≥ 4
		le(int64(snap.Cfg.DcTopK)), // version ≥ 5
	); err != nil {
		return err
	}
	// Metadata (version ≥ 2): save timestamp, original build cost, and the
	// configured length restriction.
	if err := errJoin(
		le(time.Now().Unix()),
		le(int64(snap.BuildTime)),
		le(uint32(len(snap.Cfg.Lengths))),
	); err != nil {
		return err
	}
	for _, l := range snap.Cfg.Lengths {
		if err := le(uint32(l)); err != nil {
			return err
		}
	}
	// Dataset.
	d := snap.Dataset
	if err := writeString(cw, d.Name); err != nil {
		return err
	}
	if err := le(uint32(d.N())); err != nil {
		return err
	}
	for _, s := range d.Series {
		if err := writeString(cw, s.Label); err != nil {
			return err
		}
		if err := le(uint32(s.Len())); err != nil {
			return err
		}
		if err := le(s.Values); err != nil {
			return err
		}
	}
	// Groups.
	gr := snap.Grouped
	if err := errJoin(le(gr.TotalSubseq), le(gr.IncrementalMembers)); err != nil {
		return err
	}
	if err := le(uint32(len(gr.Lengths))); err != nil {
		return err
	}
	for _, l := range gr.Lengths {
		lg := gr.ByLength[l]
		if err := errJoin(le(uint32(l)), le(uint32(len(lg.Groups)))); err != nil {
			return err
		}
		for _, g := range lg.Groups {
			if err := le(g.Rep); err != nil {
				return err
			}
			if err := le(uint32(g.Count())); err != nil {
				return err
			}
			for _, m := range g.Members {
				if err := errJoin(le(uint32(m.SeriesIdx)), le(uint32(m.Start)), le(m.EDToRep)); err != nil {
					return err
				}
			}
		}
	}
	// Trailing checksum (of everything before it).
	sum := cw.crc
	if err := binary.Write(bw, binary.LittleEndian, sum); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reconstructs a monolithic engine from a Save stream: the dataset and
// groups are decoded, and the GTI/LSI/SP-Space index layers are rebuilt.
// Streams written by the sharded engine (shard count > 1) are refused here —
// load them through the onex package (or internal/shard), which re-derives
// the shard layout.
func Load(r io.Reader) (*Engine, error) {
	snap, err := DecodeSnapshot(r)
	if err != nil {
		return nil, err
	}
	if snap.Shards > 1 {
		return nil, fmt.Errorf("core: stream is a %d-shard base; load it through the onex package", snap.Shards)
	}
	return FromSnapshot(snap)
}

// DecodeSnapshot reads and checksums one ONEX base stream without building
// any index state on top.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != persistMagic {
		return nil, ErrBadFormat
	}
	le := func(v any) error { return binary.Read(cr, binary.LittleEndian, v) }
	var version uint32
	if err := le(&version); err != nil {
		return nil, err
	}
	if version < 1 || version > persistVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}

	var cfg BuildConfig
	var normMode, earlyStop, noLB uint8
	var seed, candLimit, patience int64
	var normMin, normMax float64
	if err := errJoin(
		le(&cfg.ST), le(&seed), le(&normMode), le(&normMin), le(&normMax),
		le(&earlyStop), le(&noLB), le(&candLimit), le(&patience),
	); err != nil {
		return nil, err
	}
	if version >= 3 {
		if err := le(&cfg.RebuildDrift); err != nil {
			return nil, err
		}
	}
	shards := uint32(1)
	if version >= 4 {
		if err := le(&shards); err != nil {
			return nil, err
		}
		if shards < 1 || shards > 1<<20 {
			return nil, fmt.Errorf("%w: implausible shard count %d", ErrBadFormat, shards)
		}
	}
	if version >= 5 {
		var dcTopK int64
		if err := le(&dcTopK); err != nil {
			return nil, err
		}
		cfg.DcTopK = int(dcTopK)
	}
	var savedAt time.Time
	var origBuild time.Duration
	if version >= 2 {
		var savedUnix, buildNanos int64
		var nCfgLengths uint32
		if err := errJoin(le(&savedUnix), le(&buildNanos), le(&nCfgLengths)); err != nil {
			return nil, err
		}
		if nCfgLengths > 1<<20 {
			return nil, fmt.Errorf("%w: implausible length-config count %d", ErrBadFormat, nCfgLengths)
		}
		for i := uint32(0); i < nCfgLengths; i++ {
			var l uint32
			if err := le(&l); err != nil {
				return nil, err
			}
			cfg.Lengths = append(cfg.Lengths, int(l))
		}
		if savedUnix > 0 {
			savedAt = time.Unix(savedUnix, 0)
		}
		if buildNanos > 0 {
			origBuild = time.Duration(buildNanos)
		}
	}
	if cfg.ST <= 0 || math.IsNaN(cfg.ST) {
		return nil, fmt.Errorf("%w: invalid ST %v", ErrBadFormat, cfg.ST)
	}
	cfg.Seed = seed
	cfg.Normalize = NormalizeMode(normMode)
	cfg.Query = query.Options{
		DisableEarlyStop:   earlyStop != 0,
		DisableLowerBounds: noLB != 0,
		CandidateLimit:     int(candLimit),
		Patience:           int(patience),
	}

	// Dataset.
	name, err := readString(cr)
	if err != nil {
		return nil, err
	}
	var n uint32
	if err := le(&n); err != nil {
		return nil, err
	}
	if n == 0 || n > 1<<28 {
		return nil, fmt.Errorf("%w: implausible series count %d", ErrBadFormat, n)
	}
	d := &ts.Dataset{Name: name}
	for i := uint32(0); i < n; i++ {
		label, err := readString(cr)
		if err != nil {
			return nil, err
		}
		var sl uint32
		if err := le(&sl); err != nil {
			return nil, err
		}
		if sl == 0 || sl > 1<<28 {
			return nil, fmt.Errorf("%w: implausible series length %d", ErrBadFormat, sl)
		}
		values := make([]float64, sl)
		if err := le(values); err != nil {
			return nil, err
		}
		d.Append(label, values)
	}

	// Groups.
	gr := &grouping.Result{ST: cfg.ST, ByLength: map[int]*grouping.LengthGroups{}}
	if err := le(&gr.TotalSubseq); err != nil {
		return nil, err
	}
	if version >= 3 {
		if err := le(&gr.IncrementalMembers); err != nil {
			return nil, err
		}
	}
	var nLengths uint32
	if err := le(&nLengths); err != nil {
		return nil, err
	}
	maxLen := d.MaxLen()
	for li := uint32(0); li < nLengths; li++ {
		var l, nGroups uint32
		if err := errJoin(le(&l), le(&nGroups)); err != nil {
			return nil, err
		}
		if l < 1 || int(l) > maxLen {
			return nil, fmt.Errorf("%w: group length %d outside dataset", ErrBadFormat, l)
		}
		lg := &grouping.LengthGroups{Length: int(l)}
		for gi := uint32(0); gi < nGroups; gi++ {
			rep := make([]float64, l)
			if err := le(rep); err != nil {
				return nil, err
			}
			var nMembers uint32
			if err := le(&nMembers); err != nil {
				return nil, err
			}
			if nMembers == 0 {
				return nil, fmt.Errorf("%w: empty group", ErrBadFormat)
			}
			g := &grouping.Group{Length: int(l), ID: int(gi), Rep: rep,
				Members: make([]grouping.Member, nMembers)}
			for mi := range g.Members {
				var sIdx, start uint32
				var ed float64
				if err := errJoin(le(&sIdx), le(&start), le(&ed)); err != nil {
					return nil, err
				}
				if int(sIdx) >= d.N() || !d.Series[sIdx].CheckRange(int(start), int(l)) {
					return nil, fmt.Errorf("%w: member (%d,%d) out of range", ErrBadFormat, sIdx, start)
				}
				g.Members[mi] = grouping.Member{SeriesIdx: int(sIdx), Start: int(start), EDToRep: ed}
			}
			lg.Groups = append(lg.Groups, g)
		}
		gr.Lengths = append(gr.Lengths, int(l))
		gr.ByLength[int(l)] = lg
	}

	// Verify the checksum before building anything on top.
	want := cr.crc
	var got uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrBadFormat, err)
	}
	if got != want {
		return nil, ErrCorrupt
	}

	return &Snapshot{
		Shards:    int(shards),
		Cfg:       cfg,
		NormMin:   normMin,
		NormMax:   normMax,
		SavedAt:   savedAt,
		BuildTime: origBuild,
		Dataset:   d,
		Grouped:   gr,
	}, nil
}

// FromSnapshot materializes a monolithic engine from a decoded snapshot:
// the GTI/LSI/SP-Space index layers are rebuilt over the stored dataset and
// groups. The snapshot's Shards field is ignored here — internal/shard uses
// it to re-derive a sharded layout from the same payload.
func FromSnapshot(snap *Snapshot) (*Engine, error) {
	start := time.Now()
	base, err := rspace.New(snap.Dataset, snap.Grouped, rspace.Options{TopK: snap.Cfg.DcTopK})
	if err != nil {
		return nil, err
	}
	proc, err := query.New(base, snap.Cfg.Query)
	if err != nil {
		return nil, err
	}
	buildTime := time.Since(start)
	if snap.BuildTime > 0 {
		// Report the original offline construction cost, not the (much
		// cheaper) index rebuild — the point of snapshots is skipping it.
		buildTime = snap.BuildTime
	}
	return &Engine{
		Base: base, Proc: proc, BuildTime: buildTime,
		cfg: snap.Cfg, normMin: snap.NormMin, normMax: snap.NormMax, grouped: snap.Grouped,
		savedAt: snap.SavedAt,
	}, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("%w: implausible string length %d", ErrBadFormat, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func errJoin(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
