package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"onex/internal/dataset"
	"onex/internal/ts"
)

func appendEngine(t *testing.T, cfg BuildConfig) (*ts.Dataset, *Engine) {
	t.Helper()
	d := dataset.ItalyPower.Scaled(0.4).Generate(29)
	eng, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, eng
}

func TestEngineAppendValidation(t *testing.T) {
	_, eng := appendEngine(t, BuildConfig{ST: 0.2, Lengths: []int{6}, Seed: 2})
	if _, err := eng.Append(0, nil); err == nil {
		t.Error("empty points: want error")
	}
	if _, err := eng.Append(-1, []float64{1}); err == nil {
		t.Error("negative series: want error")
	}
	if _, err := eng.Append(eng.Base.Dataset.N(), []float64{1}); err == nil {
		t.Error("out-of-range series: want error")
	}
	if _, err := eng.Append(0, []float64{math.NaN()}); err == nil {
		t.Error("NaN point: want error")
	}
	if _, err := eng.Append(0, []float64{math.Inf(1)}); err == nil {
		t.Error("Inf point: want error")
	}
	adapted, err := eng.WithThreshold(0.35)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adapted.Append(0, []float64{1}); err == nil {
		t.Error("append to adapted engine: want error")
	}
	_, perSeries := appendEngine(t, BuildConfig{ST: 0.2, Lengths: []int{6}, Seed: 2, Normalize: NormalizePerSeries})
	if _, err := perSeries.Append(0, []float64{1}); err == nil {
		t.Error("append to per-series normalized engine: want error")
	}
	// Extend holds the same finite-input boundary as Append and Build: a
	// NaN/Inf window would found a NaN-representative group and poison
	// every later query.
	if _, err := eng.Extend([]*ts.Series{{Values: []float64{1, math.NaN(), 2}}}); err == nil {
		t.Error("extend with NaN values: want error")
	}
	if _, err := eng.Extend([]*ts.Series{{Values: []float64{1, math.Inf(-1), 2}}}); err == nil {
		t.Error("extend with Inf values: want error")
	}
}

func TestEngineAppendImmutableReceiver(t *testing.T) {
	_, eng := appendEngine(t, BuildConfig{ST: 0.2, Lengths: []int{6, 10}, Seed: 2, RebuildDrift: -1})
	beforeLen := eng.Base.Dataset.Series[0].Len()
	beforeTotal := eng.Base.TotalSubseq
	next, err := eng.Append(0, []float64{0.4, 0.5, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Base.Dataset.Series[0].Len() != beforeLen {
		t.Error("Append mutated the receiver's dataset")
	}
	if eng.Base.TotalSubseq != beforeTotal {
		t.Error("Append mutated the receiver's subsequence count")
	}
	if next.Base.Dataset.Series[0].Len() != beforeLen+3 {
		t.Errorf("grown series has %d points, want %d", next.Base.Dataset.Series[0].Len(), beforeLen+3)
	}
	if next.Base.TotalSubseq <= beforeTotal {
		t.Error("grown base did not gain subsequences")
	}
	if next.Drift() <= 0 {
		t.Error("grown base reports zero drift")
	}
}

func TestEngineAppendNormalizesIntoBaseSpace(t *testing.T) {
	// NormalizeDataset scales appended raw points with the original min/max;
	// appending a copy of an existing window must land byte-identical values.
	d := dataset.ItalyPower.Scaled(0.4).Generate(31)
	eng, err := Build(d, BuildConfig{ST: 0.2, Lengths: []int{6}, Seed: 2, RebuildDrift: -1})
	if err != nil {
		t.Fatal(err)
	}
	raw := append([]float64(nil), d.Series[1].Values[:4]...) // raw because Build clones before normalizing
	next, err := eng.Append(0, raw)
	if err != nil {
		t.Fatal(err)
	}
	s0 := next.Base.Dataset.Series[0].Values
	got := s0[len(s0)-4:]
	want := next.Base.Dataset.Series[1].Values[:4]
	if !reflect.DeepEqual(got, want) {
		t.Errorf("appended points normalized to %v, want %v", got, want)
	}
}

func TestEngineAppendDriftRebuildMatchesFromScratch(t *testing.T) {
	// With a tiny drift threshold every Append re-runs the full build, which
	// must produce exactly the engine a from-scratch Build over the final
	// data yields (same seed, same normalized values).
	d := dataset.ItalyPower.Scaled(0.4).Generate(37)
	cfg := BuildConfig{ST: 0.2, Lengths: []int{6, 10}, Seed: 4, RebuildDrift: 1e-9}
	eng, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stay inside the original min/max so dataset-wide scaling is identical.
	points := append([]float64(nil), d.Series[2].Values[:5]...)
	grown, err := eng.Append(1, points)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Drift() != 0 {
		t.Errorf("rebuild did not reset drift: %v", grown.Drift())
	}

	final := d.Clone()
	final.Series[1].AppendPoints(points...)
	fresh, err := Build(final, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{6, 10} {
		ge, fe := grown.Base.Entry(l), fresh.Base.Entry(l)
		if len(ge.Groups) != len(fe.Groups) {
			t.Fatalf("length %d: %d groups vs fresh %d", l, len(ge.Groups), len(fe.Groups))
		}
		for k := range ge.Groups {
			if !reflect.DeepEqual(ge.Groups[k].Rep, fe.Groups[k].Rep) {
				t.Fatalf("length %d group %d: representative differs from from-scratch build", l, k)
			}
			if !reflect.DeepEqual(ge.Groups[k].Members, fe.Groups[k].Members) {
				t.Fatalf("length %d group %d: members differ from from-scratch build", l, k)
			}
		}
	}
	q := append([]float64(nil), fresh.Base.Dataset.Series[0].Values[2:12]...)
	mg, err := grown.Proc.BestMatch(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := fresh.Proc.BestMatch(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mg != mf {
		t.Errorf("rebuild-path match %+v differs from from-scratch %+v", mg, mf)
	}
}

func TestEngineAppendRebuildKeepsLengthSet(t *testing.T) {
	// Explicit Lengths {6, 60} over 48-point series resolve to {6} at build
	// time; a drift-triggered rebuild after the series grow past 60 must
	// keep indexing exactly {6} — the query surface never changes shape
	// because ingestion crossed a threshold.
	d := dataset.ItalyPower.Scaled(0.4).Generate(41) // 24-point series
	eng, err := Build(d, BuildConfig{ST: 0.2, Lengths: []int{6, 60}, Seed: 2, RebuildDrift: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Base.Lengths; len(got) != 1 || got[0] != 6 {
		t.Fatalf("build resolved lengths %v, want [6]", got)
	}
	pts := make([]float64, 50) // grows series 0 well past 60
	for i := range pts {
		pts[i] = d.Series[1].Values[i%d.Series[1].Len()]
	}
	grown, err := eng.Append(0, pts)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Drift() != 0 {
		t.Fatal("append did not take the rebuild branch")
	}
	if got := grown.Base.Lengths; len(got) != 1 || got[0] != 6 {
		t.Errorf("rebuild re-resolved lengths to %v, want the pinned [6]", got)
	}
}

func TestEngineAppendNeverWritesSharedArrays(t *testing.T) {
	// The copy-on-write clone shares untouched series' backing arrays;
	// chained appends must never write into the receiver's (or any
	// ancestor's) values.
	_, eng := appendEngine(t, BuildConfig{ST: 0.2, Lengths: []int{6}, Seed: 2, RebuildDrift: -1})
	snapshots := make([][][]float64, 0, 4)
	record := func(e *Engine) {
		cp := make([][]float64, e.Base.Dataset.N())
		for i, s := range e.Base.Dataset.Series {
			cp[i] = append([]float64(nil), s.Values...)
		}
		snapshots = append(snapshots, cp)
	}
	engines := []*Engine{eng}
	record(eng)
	cur := eng
	for i := 0; i < 3; i++ {
		next, err := cur.Append(0, []float64{0.4, 0.5})
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, next)
		record(next)
		cur = next
	}
	for gi, e := range engines {
		for si, s := range e.Base.Dataset.Series {
			if !reflect.DeepEqual(s.Values, snapshots[gi][si]) {
				t.Fatalf("generation %d series %d mutated by a later append", gi, si)
			}
		}
	}
}

func TestEngineExtendParticipatesInRebuildPolicy(t *testing.T) {
	// Extend feeds the same drift counter as Append and must honor the same
	// bound: with a tiny threshold an extension takes the rebuild branch
	// (drift resets); with the policy disabled it stays incremental.
	v := make([]float64, 24)
	for i := range v {
		v[i] = math.Sin(float64(i) / 3)
	}
	_, strict := appendEngine(t, BuildConfig{ST: 0.2, Lengths: []int{6}, Seed: 2, RebuildDrift: 1e-9})
	ext, err := strict.Extend([]*ts.Series{{Values: v}})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Drift() != 0 {
		t.Errorf("extend did not take the rebuild branch (drift %v)", ext.Drift())
	}
	_, loose := appendEngine(t, BuildConfig{ST: 0.2, Lengths: []int{6}, Seed: 2, RebuildDrift: -1})
	ext, err = loose.Extend([]*ts.Series{{Values: v}})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Drift() <= 0 {
		t.Error("policy-disabled extend reports zero drift")
	}
}

func TestAppendPersistRoundTripKeepsDrift(t *testing.T) {
	_, eng := appendEngine(t, BuildConfig{ST: 0.2, Lengths: []int{6}, Seed: 2, RebuildDrift: -1})
	grown, err := eng.Append(0, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := grown.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Drift() != grown.Drift() {
		t.Errorf("drift %v after round trip, want %v", loaded.Drift(), grown.Drift())
	}
	if loaded.cfg.RebuildDrift != -1 {
		t.Errorf("RebuildDrift %v after round trip, want -1", loaded.cfg.RebuildDrift)
	}
	// A further append on the loaded engine keeps working.
	if _, err := loaded.Append(0, []float64{0.5}); err != nil {
		t.Fatal(err)
	}
}
