package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"onex/internal/ts"
)

// failWriter fails after limit bytes, exercising every write error path in
// the persistence encoder.
type failWriter struct {
	limit   int
	written int
}

var errDiskFull = errors.New("disk full")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.limit {
		n := f.limit - f.written
		if n < 0 {
			n = 0
		}
		f.written = f.limit
		return n, errDiskFull
	}
	f.written += len(p)
	return len(p), nil
}

func TestSaveFailsCleanlyOnWriteErrors(t *testing.T) {
	eng := buildPersistFixture(t)
	var full bytes.Buffer
	if err := eng.Save(&full); err != nil {
		t.Fatal(err)
	}
	size := full.Len()
	// Fail at several byte offsets spanning header, dataset and groups.
	for _, limit := range []int{0, 4, 64, size / 4, size / 2, size - 8} {
		fw := &failWriter{limit: limit}
		if err := eng.Save(fw); err == nil {
			t.Errorf("Save with %d-byte budget succeeded (full size %d)", limit, size)
		}
	}
}

func TestExtendNormalizationPaths(t *testing.T) {
	raw := ts.NewDataset("t", [][]float64{
		{0, 10, 0, 10, 0, 10, 0, 10},
		{5, 15, 5, 15, 5, 15, 5, 15},
	})
	// Dataset-level min-max: new series scaled with the ORIGINAL min/max.
	eng, err := Build(raw, BuildConfig{ST: 0.3, Lengths: []int{4}, Normalize: NormalizeDataset})
	if err != nil {
		t.Fatal(err)
	}
	ext, err := eng.Extend([]*ts.Series{{Label: "new", Values: []float64{0, 30, 0, 30, 0, 30, 0, 30}}})
	if err != nil {
		t.Fatal(err)
	}
	got := ext.Base.Dataset.Series[2].Values
	// Original min=0 max=15 → 30 maps to 2.0 (outside [0,1], by design).
	if got[1] != 2 {
		t.Errorf("dataset-mode extend scaled 30 to %v, want 2", got[1])
	}

	// Per-series: each new series on its own scale.
	engPS, err := Build(raw, BuildConfig{ST: 0.3, Lengths: []int{4}, Normalize: NormalizePerSeries})
	if err != nil {
		t.Fatal(err)
	}
	extPS, err := engPS.Extend([]*ts.Series{{Values: []float64{100, 300, 100, 300, 100, 300, 100, 300}}})
	if err != nil {
		t.Fatal(err)
	}
	got = extPS.Base.Dataset.Series[2].Values
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("per-series extend = %v, want [0 1 …]", got[:2])
	}
	// Constant new series cannot be per-series normalized.
	if _, err := engPS.Extend([]*ts.Series{{Values: []float64{7, 7, 7, 7}}}); err == nil {
		t.Error("constant series under per-series normalization: want error")
	}

	// NormalizeNone: raw append.
	engNone, err := Build(raw, BuildConfig{ST: 9, Lengths: []int{4}, Normalize: NormalizeNone})
	if err != nil {
		t.Fatal(err)
	}
	extNone, err := engNone.Extend([]*ts.Series{{Values: []float64{42, 42, 42, 43}}})
	if err != nil {
		t.Fatal(err)
	}
	if extNone.Base.Dataset.Series[2].Values[0] != 42 {
		t.Error("none-mode extend altered raw values")
	}
}

func TestExtendErrorPaths(t *testing.T) {
	d := fixture(t)
	eng, err := Build(d, BuildConfig{ST: 0.2, Lengths: []int{6}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Extend(nil); err == nil {
		t.Error("nil series: want error")
	}
	if _, err := eng.Extend([]*ts.Series{nil}); err == nil {
		t.Error("nil series pointer: want error")
	}
	if _, err := eng.Extend([]*ts.Series{{Values: nil}}); err == nil {
		t.Error("empty series: want error")
	}
}

func TestBuildTimeFormatsInErrors(t *testing.T) {
	// Guard the error-message contract: invalid configs mention the value.
	_, err := Build(fixture(t), BuildConfig{ST: -3})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("-3")) {
		t.Errorf("error does not mention the offending ST: %v", err)
	}
	_, err = Build(fixture(t), BuildConfig{ST: 0.2, Normalize: NormalizeMode(7)})
	if err == nil {
		t.Error("bad mode: want error")
	}
	var _ = fmt.Sprintf // keep fmt imported for future assertions
}
