package grouping

import (
	"errors"
	"math"
	"sort"

	"onex/internal/dist"
	"onex/internal/ts"
)

// DBA computes a DTW Barycenter Average of the sequences: starting from
// init, each iteration aligns every sequence to the current center with an
// optimal warping path and replaces each center coordinate by the mean of
// all data points warped onto it (Petitjean et al., the method the paper
// contrasts ONEX's point-wise averages against in Sec. 7). All sequences
// and init must share one length; iterations ≤ 0 defaults to 10. The result
// has the same length as init.
func DBA(seqs [][]float64, init []float64, iterations int) []float64 {
	if iterations <= 0 {
		iterations = 10
	}
	center := append([]float64(nil), init...)
	if len(center) == 0 || len(seqs) == 0 {
		return center
	}
	sums := make([]float64, len(center))
	counts := make([]int, len(center))
	for it := 0; it < iterations; it++ {
		for i := range sums {
			sums[i] = 0
			counts[i] = 0
		}
		for _, s := range seqs {
			path, _ := dist.DTWPath(center, s)
			for _, p := range path {
				sums[p.I] += s[p.J]
				counts[p.I]++
			}
		}
		changed := false
		for i := range center {
			if counts[i] == 0 {
				continue // unreachable center point keeps its value
			}
			next := sums[i] / float64(counts[i])
			if math.Abs(next-center[i]) > 1e-12 {
				changed = true
			}
			center[i] = next
		}
		if !changed {
			break
		}
	}
	return center
}

// MeanDTWToCenter returns the average DTW from the center to each sequence
// — the quantity DBA descends; exported for the representative-quality
// ablation.
func MeanDTWToCenter(center []float64, seqs [][]float64) float64 {
	if len(seqs) == 0 {
		return 0
	}
	var w dist.Workspace
	var sum float64
	for _, s := range seqs {
		sum += w.DTW(center, s)
	}
	return sum / float64(len(seqs))
}

// RefineRepresentativesDBA returns a copy of the grouping result whose
// representatives were re-estimated with DBA (seeded from the point-wise
// average) and whose member LSI orders were recomputed against the new
// representatives. Group membership is unchanged — this isolates the
// representative strategy, the exact design choice the paper debates
// against [21]. The input result is not modified.
func RefineRepresentativesDBA(d *ts.Dataset, prev *Result, iterations int) (*Result, error) {
	if d == nil || prev == nil {
		return nil, errors.New("grouping: nil dataset or result")
	}
	next := &Result{
		ST:          prev.ST,
		Lengths:     append([]int(nil), prev.Lengths...),
		ByLength:    make(map[int]*LengthGroups, len(prev.Lengths)),
		TotalSubseq: prev.TotalSubseq,
	}
	for _, l := range prev.Lengths {
		src := prev.ByLength[l]
		lg := &LengthGroups{Length: l, Groups: make([]*Group, len(src.Groups))}
		invSqrtL := 1 / math.Sqrt(float64(l))
		for gi, g := range src.Groups {
			seqs := make([][]float64, g.Count())
			for mi, m := range g.Members {
				seqs[mi] = d.Series[m.SeriesIdx].Values[m.Start : m.Start+l]
			}
			rep := DBA(seqs, g.Rep, iterations)
			ng := &Group{
				Length:  l,
				ID:      gi,
				Rep:     rep,
				Members: append([]Member(nil), g.Members...),
			}
			for mi := range ng.Members {
				m := &ng.Members[mi]
				v := d.Series[m.SeriesIdx].Values[m.Start : m.Start+l]
				m.EDToRep = dist.ED(v, rep) * invSqrtL
			}
			sort.Slice(ng.Members, func(a, b int) bool {
				return ng.Members[a].EDToRep < ng.Members[b].EDToRep
			})
			lg.Groups[gi] = ng
		}
		next.ByLength[l] = lg
	}
	return next, nil
}
