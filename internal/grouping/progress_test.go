package grouping

import (
	"errors"
	"math/rand"
	"testing"

	"onex/internal/ts"
)

func progressFixture() *ts.Dataset {
	r := rand.New(rand.NewSource(7))
	d := &ts.Dataset{Name: "progress"}
	for i := 0; i < 6; i++ {
		row := make([]float64, 32)
		for j := range row {
			row[j] = r.Float64()
		}
		d.Append("", row)
	}
	return d
}

func TestBuildProgressCallback(t *testing.T) {
	d := progressFixture()
	lengths := []int{4, 8, 12, 16}
	var dones []int
	total := -1
	_, err := Build(d, Config{
		ST:      0.3,
		Lengths: lengths,
		Workers: 2,
		Progress: func(done, tot int) {
			dones = append(dones, done)
			total = tot
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != len(lengths) {
		t.Errorf("progress total = %d, want %d", total, len(lengths))
	}
	if len(dones) != len(lengths) {
		t.Fatalf("progress called %d times, want %d", len(dones), len(lengths))
	}
	for i, done := range dones {
		if done != i+1 {
			t.Errorf("progress done[%d] = %d, want %d (strictly increasing)", i, done, i+1)
		}
	}
}

func TestBuildCancel(t *testing.T) {
	d := progressFixture()
	cancel := make(chan struct{})
	close(cancel) // canceled before the build starts
	_, err := Build(d, Config{ST: 0.3, Lengths: []int{4, 8}, Cancel: cancel})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Build with closed Cancel: err = %v, want ErrCanceled", err)
	}

	// A nil / open channel must not cancel.
	open := make(chan struct{})
	if _, err := Build(d, Config{ST: 0.3, Lengths: []int{4}, Cancel: open}); err != nil {
		t.Fatalf("Build with open Cancel: %v", err)
	}
}
