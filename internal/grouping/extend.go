package grouping

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"onex/internal/dist"
	"onex/internal/parallel"
	"onex/internal/ts"
)

// Extend implements incremental ONEX-base maintenance (the paper defers the
// discussion to its tech report; the natural rule follows directly from
// Algorithm 1): subsequences of newly arrived series are pushed through the
// same nearest-representative assignment against the existing groups — they
// join a group when within ST/2 of its representative (updating the running
// average) and found new groups otherwise. Only the new subsequences are
// processed, so maintenance costs O(new-subsequences × g × L) instead of a
// full rebuild.
//
// d must be the dataset already containing the new series appended after
// index fromSeries; prev must have been built over d.Series[:fromSeries]
// with the same ST. prev is not modified: groups are deep-copied, extended,
// and returned as a fresh Result (existing bases stay valid).
func Extend(d *ts.Dataset, prev *Result, fromSeries int, cfg Config) (*Result, error) {
	if d == nil || prev == nil {
		return nil, errors.New("grouping: nil dataset or previous result")
	}
	if cfg.ST != prev.ST {
		return nil, fmt.Errorf("grouping: extension threshold %v differs from base %v", cfg.ST, prev.ST)
	}
	if fromSeries < 0 || fromSeries > d.N() {
		return nil, fmt.Errorf("grouping: fromSeries %d out of range [0,%d]", fromSeries, d.N())
	}
	newSeries := d.Series[fromSeries:]
	for _, s := range newSeries {
		if s.Len() == 0 {
			return nil, fmt.Errorf("grouping: new series %d is empty", s.ID)
		}
	}

	next := &Result{
		ST:       prev.ST,
		Lengths:  append([]int(nil), prev.Lengths...),
		ByLength: make(map[int]*LengthGroups, len(prev.Lengths)),
	}

	results := make([]*LengthGroups, len(prev.Lengths))
	counts := make([]int64, len(prev.Lengths))
	parallel.ForEach(cfg.Workers, len(prev.Lengths), func(idx int) {
		l := prev.Lengths[idx]
		results[idx], counts[idx] = extendLength(d, prev.ByLength[l], newSeries, prev.ST, cfg.Seed+int64(l)*1_000_003)
	})

	next.TotalSubseq = prev.TotalSubseq
	for i, lg := range results {
		next.ByLength[lg.Length] = lg
		next.TotalSubseq += counts[i]
	}
	return next, nil
}

// extendLength deep-copies one length's groups and streams the new series'
// subsequences through the Algorithm 1 assignment rule.
func extendLength(d *ts.Dataset, prevLG *LengthGroups, newSeries []*ts.Series, st float64, seed int64) (*LengthGroups, int64) {
	length := prevLG.Length
	lg := &LengthGroups{Length: length, Groups: make([]*Group, len(prevLG.Groups))}
	touched := make([]bool, len(prevLG.Groups))
	for i, g := range prevLG.Groups {
		sum := make([]float64, length)
		for j, v := range g.Rep {
			sum[j] = v * float64(g.Count())
		}
		lg.Groups[i] = &Group{
			Length:  length,
			ID:      i,
			Rep:     append([]float64(nil), g.Rep...),
			Members: append([]Member(nil), g.Members...),
			sum:     sum,
		}
	}

	var positions []position
	for _, s := range newSeries {
		for j := 0; j+length <= s.Len(); j++ {
			positions = append(positions, position{seriesIdx: s.ID, start: j})
		}
	}
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(positions), func(i, j int) {
		positions[i], positions[j] = positions[j], positions[i]
	})

	radiusSq := float64(length) * st * st / 4 // (√L·ST/2)² in raw-ED² units
	for _, pos := range positions {
		values := d.Series[pos.seriesIdx].Values[pos.start : pos.start+length]
		bestSq := math.Inf(1)
		bestIdx := -1
		for gi, g := range lg.Groups {
			cutoff := radiusSq
			if bestSq < cutoff {
				cutoff = bestSq
			}
			sq := dist.SquaredEDEarlyAbandon(values, g.Rep, cutoff)
			if sq < bestSq {
				bestSq = sq
				bestIdx = gi
			}
		}
		if bestIdx >= 0 && bestSq <= radiusSq {
			lg.Groups[bestIdx].add(pos.seriesIdx, pos.start, values)
			touched[bestIdx] = true
		} else {
			g := &Group{
				Length: length,
				ID:     len(lg.Groups),
				Rep:    append([]float64(nil), values...),
				sum:    append([]float64(nil), values...),
			}
			g.Members = append(g.Members, Member{SeriesIdx: pos.seriesIdx, Start: pos.start})
			lg.Groups = append(lg.Groups, g)
			touched = append(touched, false) // fresh single-member group needs no refinalize
		}
	}

	// Refinalize touched groups: their representative drifted, so member
	// distances and the LSI sort order must be recomputed. Untouched groups
	// keep their existing (already finalized) members. New single-member
	// groups get a trivial finalize.
	invSqrtL := 1 / math.Sqrt(float64(length))
	for gi, g := range lg.Groups {
		isNew := gi >= len(prevLG.Groups)
		if !isNew && !touched[gi] {
			g.sum = nil
			continue
		}
		for mi := range g.Members {
			m := &g.Members[mi]
			v := d.Series[m.SeriesIdx].Values[m.Start : m.Start+length]
			m.EDToRep = dist.ED(v, g.Rep) * invSqrtL
		}
		sort.Slice(g.Members, func(a, b int) bool {
			return g.Members[a].EDToRep < g.Members[b].EDToRep
		})
		g.sum = nil
	}
	return lg, int64(len(positions))
}
