package grouping

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"onex/internal/dist"
	"onex/internal/parallel"
	"onex/internal/ts"
)

// Delta describes which groups one incremental-maintenance step (Extend or
// AppendPoints) changed, so the index layers (rspace) can refresh only the
// touched state instead of recomputing every length from scratch.
type Delta struct {
	// PrevGroups[length] is the group count before the step; groups with
	// index ≥ PrevGroups[length] were founded by the step and are new.
	PrevGroups map[int]int
	// Touched[length] lists pre-existing group indices (< PrevGroups) whose
	// representative moved because new members joined. Untouched groups are
	// byte-identical to their previous incarnation.
	Touched map[int][]int
}

// Extend implements incremental ONEX-base maintenance (the paper defers the
// discussion to its tech report; the natural rule follows directly from
// Algorithm 1): subsequences of newly arrived series are pushed through the
// same nearest-representative assignment against the existing groups — they
// join a group when within ST/2 of its representative (updating the running
// average) and found new groups otherwise. Only the new subsequences are
// processed, so maintenance costs O(new-subsequences × g × L) instead of a
// full rebuild.
//
// d must be the dataset already containing the new series appended after
// index fromSeries; prev must have been built over d.Series[:fromSeries]
// with the same ST. prev is not modified: groups are deep-copied, extended,
// and returned as a fresh Result (existing bases stay valid). The returned
// Delta records the touched groups for incremental index refresh.
func Extend(d *ts.Dataset, prev *Result, fromSeries int, cfg Config) (*Result, *Delta, error) {
	if d == nil || prev == nil {
		return nil, nil, errors.New("grouping: nil dataset or previous result")
	}
	if cfg.ST != prev.ST {
		return nil, nil, fmt.Errorf("grouping: extension threshold %v differs from base %v", cfg.ST, prev.ST)
	}
	if fromSeries < 0 || fromSeries > d.N() {
		return nil, nil, fmt.Errorf("grouping: fromSeries %d out of range [0,%d]", fromSeries, d.N())
	}
	newSeries := d.Series[fromSeries:]
	for _, s := range newSeries {
		if s.Len() == 0 {
			return nil, nil, fmt.Errorf("grouping: new series %d is empty", s.ID)
		}
	}
	return maintain(d, prev, cfg, func(length int) []position {
		var positions []position
		for _, s := range newSeries {
			for j := 0; j+length <= s.Len(); j++ {
				positions = append(positions, position{seriesIdx: s.ID, start: j})
			}
		}
		return positions
	})
}

// AppendPoints implements streaming point-append maintenance: existing
// series of d have grown in time, and only the suffix subsequences — the
// windows overlapping the appended points — are pushed through the same
// nearest-representative assignment rule Extend uses. oldLens[i] is series
// i's length before the append (oldLens[i] == d.Series[i].Len() for series
// that did not grow). prev is not modified; the grown Result and the Delta
// of touched groups are returned.
func AppendPoints(d *ts.Dataset, prev *Result, oldLens []int, cfg Config) (*Result, *Delta, error) {
	if d == nil || prev == nil {
		return nil, nil, errors.New("grouping: nil dataset or previous result")
	}
	if cfg.ST != prev.ST {
		return nil, nil, fmt.Errorf("grouping: append threshold %v differs from base %v", cfg.ST, prev.ST)
	}
	if len(oldLens) != d.N() {
		return nil, nil, fmt.Errorf("grouping: oldLens has %d entries for %d series", len(oldLens), d.N())
	}
	grown := make([]int, 0, 1)
	for i, s := range d.Series {
		if oldLens[i] < 0 || oldLens[i] > s.Len() {
			return nil, nil, fmt.Errorf("grouping: series %d old length %d outside [0,%d]", i, oldLens[i], s.Len())
		}
		if oldLens[i] < s.Len() {
			grown = append(grown, i)
		}
	}
	if len(grown) == 0 {
		return nil, nil, errors.New("grouping: no series grew")
	}
	return maintain(d, prev, cfg, func(length int) []position {
		var positions []position
		for _, si := range grown {
			lo, hi := d.Series[si].NewWindowStarts(oldLens[si], length)
			for j := lo; j < hi; j++ {
				positions = append(positions, position{seriesIdx: si, start: j})
			}
		}
		return positions
	})
}

// maintain is the shared incremental-maintenance driver: for every indexed
// length it deep-copies the previous groups, streams the length's new
// positions (shuffled, as Algorithm 1 requires) through the
// nearest-representative assignment, and refinalizes the groups whose
// representative drifted. Lengths run in parallel on cfg.Workers; the result
// is deterministic for every worker count (each length is independent).
func maintain(d *ts.Dataset, prev *Result, cfg Config, newPositions func(length int) []position) (*Result, *Delta, error) {
	next := &Result{
		ST:                 prev.ST,
		Lengths:            append([]int(nil), prev.Lengths...),
		ByLength:           make(map[int]*LengthGroups, len(prev.Lengths)),
		IncrementalMembers: prev.IncrementalMembers,
	}
	delta := &Delta{
		PrevGroups: make(map[int]int, len(prev.Lengths)),
		Touched:    make(map[int][]int, len(prev.Lengths)),
	}

	results := make([]*LengthGroups, len(prev.Lengths))
	counts := make([]int64, len(prev.Lengths))
	touchedByLen := make([][]int, len(prev.Lengths))
	parallel.ForEach(cfg.Workers, len(prev.Lengths), func(idx int) {
		l := prev.Lengths[idx]
		seed := cfg.Seed + int64(l)*1_000_003
		positions := newPositions(l)
		results[idx], touchedByLen[idx] = assignIncremental(d, prev.ByLength[l], positions, prev.ST, seed)
		counts[idx] = int64(len(positions))
	})

	next.TotalSubseq = prev.TotalSubseq
	for i, lg := range results {
		next.ByLength[lg.Length] = lg
		next.TotalSubseq += counts[i]
		next.IncrementalMembers += counts[i]
		delta.PrevGroups[lg.Length] = len(prev.ByLength[lg.Length].Groups)
		delta.Touched[lg.Length] = touchedByLen[i]
	}
	return next, delta, nil
}

// assignIncremental deep-copies one length's groups and streams the given
// new positions through the Algorithm 1 assignment rule: shuffle, then each
// subsequence joins the nearest group whose representative is within ST/2
// (updating the running average) or founds a new group. It returns the
// refreshed groups and the sorted list of pre-existing group indices whose
// representative moved.
func assignIncremental(d *ts.Dataset, prevLG *LengthGroups, positions []position, st float64, seed int64) (*LengthGroups, []int) {
	length := prevLG.Length
	lg := &LengthGroups{Length: length, Groups: make([]*Group, len(prevLG.Groups))}
	touched := make([]bool, len(prevLG.Groups))
	for i, g := range prevLG.Groups {
		sum := make([]float64, length)
		for j, v := range g.Rep {
			sum[j] = v * float64(g.Count())
		}
		lg.Groups[i] = &Group{
			Length:  length,
			ID:      i,
			Rep:     append([]float64(nil), g.Rep...),
			Members: append([]Member(nil), g.Members...),
			sum:     sum,
		}
	}

	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(positions), func(i, j int) {
		positions[i], positions[j] = positions[j], positions[i]
	})

	radiusSq := float64(length) * st * st / 4 // (√L·ST/2)² in raw-ED² units
	for _, pos := range positions {
		values := d.Series[pos.seriesIdx].Values[pos.start : pos.start+length]
		bestSq := math.Inf(1)
		bestIdx := -1
		for gi, g := range lg.Groups {
			cutoff := radiusSq
			if bestSq < cutoff {
				cutoff = bestSq
			}
			sq := dist.SquaredEDEarlyAbandon(values, g.Rep, cutoff)
			if sq < bestSq {
				bestSq = sq
				bestIdx = gi
			}
		}
		if bestIdx >= 0 && bestSq <= radiusSq {
			lg.Groups[bestIdx].add(pos.seriesIdx, pos.start, values)
			if bestIdx < len(touched) {
				touched[bestIdx] = true
			}
		} else {
			g := &Group{
				Length: length,
				ID:     len(lg.Groups),
				Rep:    append([]float64(nil), values...),
				sum:    append([]float64(nil), values...),
			}
			g.Members = append(g.Members, Member{SeriesIdx: pos.seriesIdx, Start: pos.start})
			lg.Groups = append(lg.Groups, g)
		}
	}

	// Refinalize touched groups: their representative drifted, so member
	// distances and the LSI sort order must be recomputed. Untouched groups
	// keep their existing (already finalized) members. New groups (including
	// multi-member ones that accreted further positions) get a full finalize.
	invSqrtL := 1 / math.Sqrt(float64(length))
	touchedIdx := make([]int, 0, 8)
	for gi, g := range lg.Groups {
		isNew := gi >= len(prevLG.Groups)
		if !isNew && !touched[gi] {
			g.sum = nil
			continue
		}
		if !isNew {
			touchedIdx = append(touchedIdx, gi)
		}
		for mi := range g.Members {
			m := &g.Members[mi]
			v := d.Series[m.SeriesIdx].Values[m.Start : m.Start+length]
			m.EDToRep = dist.ED(v, g.Rep) * invSqrtL
		}
		sort.Slice(g.Members, func(a, b int) bool {
			return g.Members[a].EDToRep < g.Members[b].EDToRep
		})
		g.sum = nil
	}
	return lg, touchedIdx
}
