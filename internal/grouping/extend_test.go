package grouping

import (
	"math"
	"testing"

	"onex/internal/dataset"
	"onex/internal/ts"
)

// extendFixture builds a base over the first part of a dataset and returns
// the full dataset, the partial result, and the split point.
func extendFixture(t *testing.T, st float64, lengths []int) (*ts.Dataset, *Result, int) {
	t.Helper()
	full := dataset.ItalyPower.Scaled(0.5).Generate(11)
	if err := full.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	from := full.N() - 8
	partial := &ts.Dataset{Name: full.Name}
	for _, s := range full.Series[:from] {
		partial.Append(s.Label, s.Values)
	}
	res, err := Build(partial, Config{ST: st, Lengths: lengths, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return full, res, from
}

func TestExtendValidation(t *testing.T) {
	full, res, from := extendFixture(t, 0.2, []int{6})
	if _, _, err := Extend(nil, res, from, Config{ST: 0.2}); err == nil {
		t.Error("nil dataset: want error")
	}
	if _, _, err := Extend(full, nil, from, Config{ST: 0.2}); err == nil {
		t.Error("nil result: want error")
	}
	if _, _, err := Extend(full, res, from, Config{ST: 0.4}); err == nil {
		t.Error("mismatched ST: want error")
	}
	if _, _, err := Extend(full, res, -1, Config{ST: 0.2}); err == nil {
		t.Error("negative fromSeries: want error")
	}
	if _, _, err := Extend(full, res, full.N()+1, Config{ST: 0.2}); err == nil {
		t.Error("out-of-range fromSeries: want error")
	}
	bad := full.Clone()
	bad.Append("x", nil)
	if _, _, err := Extend(bad, res, from, Config{ST: 0.2}); err == nil {
		t.Error("empty new series: want error")
	}
}

func TestExtendCoversAllNewSubsequences(t *testing.T) {
	full, res, from := extendFixture(t, 0.2, []int{5, 9})
	ext, _, err := Extend(full, res, from, Config{ST: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if ext.TotalSubseq != full.SubseqCount([]int{5, 9}) {
		t.Errorf("TotalSubseq = %d, want %d", ext.TotalSubseq, full.SubseqCount([]int{5, 9}))
	}
	// Partition invariant over the full dataset.
	for _, l := range ext.Lengths {
		seen := map[position]int{}
		for _, g := range ext.ByLength[l].Groups {
			for _, m := range g.Members {
				seen[position{m.SeriesIdx, m.Start}]++
			}
		}
		want := 0
		for _, s := range full.Series {
			if n := s.Len() - l + 1; n > 0 {
				want += n
			}
		}
		if len(seen) != want {
			t.Fatalf("length %d: %d distinct members, want %d", l, len(seen), want)
		}
		for pos, c := range seen {
			if c != 1 {
				t.Fatalf("length %d: %+v appears %d times", l, pos, c)
			}
		}
	}
}

func TestExtendLeavesOriginalUntouched(t *testing.T) {
	full, res, from := extendFixture(t, 0.2, []int{6})
	beforeGroups := len(res.ByLength[6].Groups)
	beforeCounts := make([]int, beforeGroups)
	for i, g := range res.ByLength[6].Groups {
		beforeCounts[i] = g.Count()
	}
	if _, _, err := Extend(full, res, from, Config{ST: 0.2, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if len(res.ByLength[6].Groups) != beforeGroups {
		t.Error("Extend mutated the original group count")
	}
	for i, g := range res.ByLength[6].Groups {
		if g.Count() != beforeCounts[i] {
			t.Errorf("Extend mutated members of original group %d", i)
		}
	}
}

func TestExtendRepsStayAverages(t *testing.T) {
	full, res, from := extendFixture(t, 0.25, []int{7})
	ext, _, err := Extend(full, res, from, Config{ST: 0.25, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range ext.ByLength[7].Groups {
		avg := make([]float64, 7)
		for _, m := range g.Members {
			for i, v := range MemberValues(full, g, m) {
				avg[i] += v
			}
		}
		for i := range avg {
			avg[i] /= float64(g.Count())
			if math.Abs(avg[i]-g.Rep[i]) > 1e-9 {
				t.Fatalf("group %d rep[%d]=%v, want %v", g.ID, i, g.Rep[i], avg[i])
			}
		}
		for i := 1; i < g.Count(); i++ {
			if g.Members[i-1].EDToRep > g.Members[i].EDToRep {
				t.Fatalf("group %d members unsorted after extend", g.ID)
			}
		}
	}
}

func TestExtendMatchesScaleOfFullBuild(t *testing.T) {
	// Incremental maintenance is order-dependent (as is Algorithm 1), so
	// group sets differ from a from-scratch build — but the group count
	// must stay in the same ballpark.
	full, res, from := extendFixture(t, 0.2, []int{6})
	ext, _, err := Extend(full, res, from, Config{ST: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Build(full, Config{ST: 0.2, Lengths: []int{6}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	e, f := len(ext.ByLength[6].Groups), len(fresh.ByLength[6].Groups)
	if e < f/2 || e > f*2 {
		t.Errorf("extended build has %d groups vs fresh %d — structurally off", e, f)
	}
}
