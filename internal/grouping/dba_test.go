package grouping

import (
	"math"
	"testing"

	"onex/internal/dataset"
)

func TestDBAIdenticalSequences(t *testing.T) {
	s := []float64{1, 2, 3, 2, 1}
	seqs := [][]float64{s, s, s}
	got := DBA(seqs, s, 10)
	for i := range s {
		if math.Abs(got[i]-s[i]) > 1e-12 {
			t.Fatalf("DBA of identical sequences moved: %v", got)
		}
	}
}

func TestDBADegenerate(t *testing.T) {
	if got := DBA(nil, []float64{1, 2}, 5); got[0] != 1 || got[1] != 2 {
		t.Errorf("no sequences: %v", got)
	}
	if got := DBA([][]float64{{1}}, nil, 5); len(got) != 0 {
		t.Errorf("empty init: %v", got)
	}
}

func TestDBAReducesMeanDTW(t *testing.T) {
	// The point of DBA: its center is at least as DTW-central as the
	// point-wise average for warped sequences.
	shift := func(phase int) []float64 {
		v := make([]float64, 32)
		for i := range v {
			v[i] = math.Sin(2 * math.Pi * float64(i+phase) / 16)
		}
		return v
	}
	seqs := [][]float64{shift(0), shift(2), shift(4), shift(6)}
	avg := make([]float64, 32)
	for _, s := range seqs {
		for i, v := range s {
			avg[i] += v / float64(len(seqs))
		}
	}
	dba := DBA(seqs, avg, 15)
	before := MeanDTWToCenter(avg, seqs)
	after := MeanDTWToCenter(dba, seqs)
	if after > before+1e-9 {
		t.Errorf("DBA increased mean DTW: %v → %v", before, after)
	}
	if after >= before*0.95 {
		t.Logf("note: DBA improvement small (%v → %v)", before, after)
	}
}

func TestRefineRepresentativesDBA(t *testing.T) {
	d := dataset.ItalyPower.Scaled(0.3).Generate(8)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	res, err := Build(d, Config{ST: 0.25, Lengths: []int{8}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := RefineRepresentativesDBA(d, res, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Membership unchanged.
	if len(refined.ByLength[8].Groups) != len(res.ByLength[8].Groups) {
		t.Fatal("refinement changed the group count")
	}
	var dbaBetter, total int
	for gi, g := range res.ByLength[8].Groups {
		rg := refined.ByLength[8].Groups[gi]
		if rg.Count() != g.Count() {
			t.Fatalf("group %d membership changed: %d vs %d", gi, rg.Count(), g.Count())
		}
		// LSI order intact.
		for i := 1; i < rg.Count(); i++ {
			if rg.Members[i-1].EDToRep > rg.Members[i].EDToRep {
				t.Fatalf("group %d unsorted after refinement", gi)
			}
		}
		if g.Count() < 2 {
			continue
		}
		seqs := make([][]float64, g.Count())
		for mi, m := range g.Members {
			seqs[mi] = MemberValues(d, g, m)
		}
		total++
		if MeanDTWToCenter(rg.Rep, seqs) <= MeanDTWToCenter(g.Rep, seqs)+1e-9 {
			dbaBetter++
		}
	}
	if total > 0 && dbaBetter*2 < total {
		t.Errorf("DBA centers better on only %d of %d multi-member groups", dbaBetter, total)
	}
	// Original untouched.
	if _, err := RefineRepresentativesDBA(nil, res, 3); err == nil {
		t.Error("nil dataset: want error")
	}
}
