package grouping

import (
	"math"
	"testing"

	"onex/internal/dataset"
	"onex/internal/dist"
	"onex/internal/ts"
)

func buildSmall(t *testing.T, st float64, lengths []int) (*ts.Dataset, *Result) {
	t.Helper()
	d := dataset.ItalyPower.Scaled(0.5).Generate(1)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	res, err := Build(d, Config{ST: st, Lengths: lengths, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return d, res
}

func TestBuildValidation(t *testing.T) {
	d := ts.NewDataset("t", [][]float64{{1, 2, 3}})
	cases := []struct {
		name string
		d    *ts.Dataset
		cfg  Config
	}{
		{"nil dataset", nil, Config{ST: 0.2}},
		{"empty dataset", &ts.Dataset{}, Config{ST: 0.2}},
		{"zero ST", d, Config{ST: 0}},
		{"negative ST", d, Config{ST: -1}},
		{"NaN ST", d, Config{ST: math.NaN()}},
		{"bad length", d, Config{ST: 0.2, Lengths: []int{0}}},
		{"no usable lengths", d, Config{ST: 0.2, Lengths: []int{99}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Build(c.d, c.cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestBuildTooShortForDefaultLengths(t *testing.T) {
	d := ts.NewDataset("t", [][]float64{{1}})
	if _, err := Build(d, Config{ST: 0.2}); err == nil {
		t.Error("want error for length-1 series with default lengths")
	}
}

func TestPartitionInvariant(t *testing.T) {
	// Def. 8: every subsequence is in one and only one group of its length.
	d, res := buildSmall(t, 0.2, []int{4, 8, 12})
	for _, l := range res.Lengths {
		lg := res.ByLength[l]
		seen := make(map[position]int)
		for _, g := range lg.Groups {
			if g.Length != l {
				t.Fatalf("group of length %d filed under %d", g.Length, l)
			}
			for _, m := range g.Members {
				seen[position{m.SeriesIdx, m.Start}]++
			}
		}
		want := 0
		for _, s := range d.Series {
			if n := s.Len() - l + 1; n > 0 {
				want += n
			}
		}
		if len(seen) != want {
			t.Fatalf("length %d: %d distinct subsequences grouped, want %d", l, len(seen), want)
		}
		for pos, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("length %d: subsequence %+v appears %d times", l, pos, cnt)
			}
		}
	}
}

func TestGroupsNonEmptyAndRepLengths(t *testing.T) {
	_, res := buildSmall(t, 0.2, []int{6})
	lg := res.ByLength[6]
	if len(lg.Groups) == 0 {
		t.Fatal("no groups built")
	}
	for _, g := range lg.Groups {
		if g.Count() == 0 {
			t.Error("empty group")
		}
		if len(g.Rep) != 6 {
			t.Errorf("rep length %d, want 6", len(g.Rep))
		}
	}
}

func TestRepresentativeIsPointwiseAverage(t *testing.T) {
	// Def. 7: R = avg of members, point-wise.
	d, res := buildSmall(t, 0.2, []int{5})
	for _, g := range res.ByLength[5].Groups {
		avg := make([]float64, g.Length)
		for _, m := range g.Members {
			for i, v := range MemberValues(d, g, m) {
				avg[i] += v
			}
		}
		for i := range avg {
			avg[i] /= float64(g.Count())
			if math.Abs(avg[i]-g.Rep[i]) > 1e-9 {
				t.Fatalf("group %d rep[%d] = %v, want average %v", g.ID, i, g.Rep[i], avg[i])
			}
		}
	}
}

func TestLemma1PairwiseBound(t *testing.T) {
	// Lemma 1 as an exact conditional property: whenever two members are
	// both within ST/2 of the (final) representative, their pairwise
	// normalized ED is within ST. (Representative drift can push a member
	// beyond ST/2 of the final rep — the paper has the same behaviour — so
	// the premise is checked explicitly.)
	const st = 0.3
	d, res := buildSmall(t, st, []int{6, 10})
	checked := 0
	for _, l := range res.Lengths {
		for _, g := range res.ByLength[l].Groups {
			for a := 0; a < g.Count(); a++ {
				if g.Members[a].EDToRep > st/2 {
					continue
				}
				va := MemberValues(d, g, g.Members[a])
				for b := a + 1; b < g.Count(); b++ {
					if g.Members[b].EDToRep > st/2 {
						continue
					}
					vb := MemberValues(d, g, g.Members[b])
					if got := dist.NormalizedED(va, vb); got > st+1e-9 {
						t.Fatalf("Lemma 1 violated: members %d,%d of group %d/%d at normalized ED %v > ST %v",
							a, b, l, g.ID, got, st)
					}
					checked++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no member pairs satisfied the premise; test is vacuous")
	}
}

func TestMostMembersWithinRadius(t *testing.T) {
	// Drift is bounded in practice: the overwhelming majority of members
	// must still be within ST/2 of the final representative.
	const st = 0.3
	_, res := buildSmall(t, st, []int{8})
	within, total := 0, 0
	for _, g := range res.ByLength[8].Groups {
		for _, m := range g.Members {
			total++
			if m.EDToRep <= st/2+1e-9 {
				within++
			}
		}
	}
	if total == 0 {
		t.Fatal("no members")
	}
	if frac := float64(within) / float64(total); frac < 0.95 {
		t.Errorf("only %.1f%% of members within ST/2 of final rep", 100*frac)
	}
}

func TestMembersSortedByEDToRep(t *testing.T) {
	_, res := buildSmall(t, 0.2, []int{7})
	for _, g := range res.ByLength[7].Groups {
		for i := 1; i < g.Count(); i++ {
			if g.Members[i-1].EDToRep > g.Members[i].EDToRep {
				t.Fatalf("group %d members not sorted at %d", g.ID, i)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	d := dataset.ItalyPower.Scaled(0.3).Generate(5)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	cfg := Config{ST: 0.25, Lengths: []int{4, 9}, Seed: 77}
	a, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalGroups() != b.TotalGroups() || a.TotalSubseq != b.TotalSubseq {
		t.Fatalf("parallel vs serial build differ: %d/%d groups, %d/%d subseq",
			a.TotalGroups(), b.TotalGroups(), a.TotalSubseq, b.TotalSubseq)
	}
	for _, l := range a.Lengths {
		ga, gb := a.ByLength[l], b.ByLength[l]
		if len(ga.Groups) != len(gb.Groups) {
			t.Fatalf("length %d: %d vs %d groups", l, len(ga.Groups), len(gb.Groups))
		}
		for i := range ga.Groups {
			if ga.Groups[i].Count() != gb.Groups[i].Count() {
				t.Fatalf("length %d group %d: %d vs %d members", l, i,
					ga.Groups[i].Count(), gb.Groups[i].Count())
			}
			for j := range ga.Groups[i].Rep {
				if ga.Groups[i].Rep[j] != gb.Groups[i].Rep[j] {
					t.Fatalf("length %d group %d rep differs", l, i)
				}
			}
		}
	}
}

func TestLargerSTGivesFewerGroups(t *testing.T) {
	// Fig. 6's monotone trend: higher threshold → fewer representatives.
	d := dataset.ECG.Scaled(0.1).Generate(3)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	lengths := []int{16, 32}
	var prev int
	for i, st := range []float64{0.05, 0.2, 0.8} {
		res, err := Build(d, Config{ST: st, Lengths: lengths, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		g := res.TotalGroups()
		if i > 0 && g > prev {
			t.Errorf("ST=%v produced %d groups, more than %d at the smaller ST", st, g, prev)
		}
		prev = g
	}
}

func TestTinyThresholdIsolatesDistinctSubsequences(t *testing.T) {
	// With a near-zero ST every distinct subsequence becomes its own group.
	d := ts.NewDataset("t", [][]float64{{0, 1, 0, 1}, {10, 20, 10, 20}})
	res, err := Build(d, Config{ST: 1e-9, Lengths: []int{2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Subsequences of length 2: (0,1),(1,0),(0,1) and (10,20),(20,10),(10,20):
	// 4 distinct values → 4 groups.
	if got := len(res.ByLength[2].Groups); got != 4 {
		t.Errorf("groups = %d, want 4", got)
	}
}

func TestHugeThresholdGivesOneGroupPerLength(t *testing.T) {
	d, res := buildSmall(t, 100, []int{5})
	_ = d
	if got := len(res.ByLength[5].Groups); got != 1 {
		t.Errorf("groups = %d, want 1 with huge ST", got)
	}
}

func TestResolveLengthsDedupAndSort(t *testing.T) {
	d := ts.NewDataset("t", [][]float64{make([]float64, 10)})
	got, err := resolveLengths(d, []int{9, 3, 3, 11, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("lengths = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lengths = %v, want %v", got, want)
		}
	}
}

func TestTotalSubseqMatchesFormula(t *testing.T) {
	d := dataset.ItalyPower.Scaled(0.2).Generate(2)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	res, err := Build(d, Config{ST: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSubseq != d.SubseqCount(nil) {
		t.Errorf("TotalSubseq = %d, want %d", res.TotalSubseq, d.SubseqCount(nil))
	}
}

func TestMixedLengthSeries(t *testing.T) {
	// Series shorter than a requested length simply contribute nothing.
	d := ts.NewDataset("t", [][]float64{
		{1, 2, 3, 4, 5, 6},
		{1, 2, 3},
	})
	res, err := Build(d, Config{ST: 0.5, Lengths: []int{5}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range res.ByLength[5].Groups {
		total += g.Count()
	}
	if total != 2 { // only the length-6 series has length-5 subsequences (2 of them)
		t.Errorf("members = %d, want 2", total)
	}
}
