package grouping

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"onex/internal/dist"
	"onex/internal/ts"
)

// randomDataset builds a small random dataset from a quick-generated seed.
func randomDataset(seed int64, n, length int) *ts.Dataset {
	r := rand.New(rand.NewSource(seed))
	d := &ts.Dataset{Name: "prop"}
	for i := 0; i < n; i++ {
		v := make([]float64, length)
		for j := range v {
			v[j] = r.NormFloat64()
		}
		d.Append("", v)
	}
	return d
}

// TestPropertyPartitionAndRadius drives Algorithm 1 with random data,
// thresholds and lengths, asserting the Def. 8 structural invariants.
func TestPropertyPartitionAndRadius(t *testing.T) {
	f := func(seed int64, stRaw, lenRaw uint8) bool {
		st := 0.05 + float64(stRaw%40)/40 // (0.05, 1.05)
		length := 2 + int(lenRaw%8)       // 2..9
		d := randomDataset(seed, 6, 16)
		res, err := Build(d, Config{ST: st, Lengths: []int{length}, Seed: seed})
		if err != nil {
			return false
		}
		lg := res.ByLength[length]
		seen := map[position]bool{}
		for _, g := range lg.Groups {
			if g.Count() == 0 || g.Length != length {
				return false
			}
			for _, m := range g.Members {
				p := position{m.SeriesIdx, m.Start}
				if seen[p] {
					return false // duplicate assignment
				}
				seen[p] = true
				// Stored ED matches a recomputation against the final rep.
				v := d.Series[m.SeriesIdx].Values[m.Start : m.Start+length]
				if math.Abs(dist.NormalizedED(v, g.Rep)-m.EDToRep) > 1e-9 {
					return false
				}
			}
			// LSI sorted.
			for i := 1; i < g.Count(); i++ {
				if g.Members[i-1].EDToRep > g.Members[i].EDToRep {
					return false
				}
			}
		}
		return len(seen) == 6*(16-length+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertySingletonGroupsHaveZeroED: a new group's founder is its own
// representative, so single-member groups must sit at distance zero.
func TestPropertySingletonGroupsHaveZeroED(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDataset(seed, 4, 12)
		res, err := Build(d, Config{ST: 0.1, Lengths: []int{5}, Seed: seed})
		if err != nil {
			return false
		}
		for _, g := range res.ByLength[5].Groups {
			if g.Count() == 1 && g.Members[0].EDToRep > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLemma2EndToEnd verifies the retrieval guarantee the whole
// system rests on: whenever normalized DTW(query, rep) ≤ ST/2, every member
// with ED̄(member, rep) ≤ ST/2 satisfies normalized DTW(query, member) ≤ ST.
func TestPropertyLemma2EndToEnd(t *testing.T) {
	f := func(seed int64) bool {
		const st = 0.4
		d := randomDataset(seed, 5, 14)
		if err := d.NormalizeMinMax(); err != nil {
			return true // constant random data: skip
		}
		res, err := Build(d, Config{ST: st, Lengths: []int{6}, Seed: seed})
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed ^ 0x5ee5))
		// Random same-length query in data range.
		q := make([]float64, 6)
		for i := range q {
			q[i] = r.Float64()
		}
		var w dist.Workspace
		div := dist.NormalizedDTWDivisor(6, 6)
		for _, g := range res.ByLength[6].Groups {
			repDTW := w.DTW(q, g.Rep) / div
			if repDTW > st/2 {
				continue
			}
			for _, m := range g.Members {
				if m.EDToRep > st/2 {
					continue // Lemma premise not met (rep drift)
				}
				v := d.Series[m.SeriesIdx].Values[m.Start : m.Start+6]
				if w.DTW(q, v)/div > st+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyExtendEquivalentToMembership: after Extend, the new
// subsequences obey the same radius rule as originals (within ST/2 of their
// rep at insertion; allow the drift tolerance used elsewhere).
func TestPropertyExtendKeepsInvariants(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDataset(seed, 6, 12)
		partial := &ts.Dataset{Name: d.Name}
		for _, s := range d.Series[:4] {
			partial.Append(s.Label, s.Values)
		}
		res, err := Build(partial, Config{ST: 0.3, Lengths: []int{4}, Seed: seed})
		if err != nil {
			return false
		}
		ext, _, err := Extend(d, res, 4, Config{ST: 0.3, Seed: seed})
		if err != nil {
			return false
		}
		seen := map[position]bool{}
		for _, g := range ext.ByLength[4].Groups {
			for i := 1; i < g.Count(); i++ {
				if g.Members[i-1].EDToRep > g.Members[i].EDToRep {
					return false
				}
			}
			for _, m := range g.Members {
				p := position{m.SeriesIdx, m.Start}
				if seen[p] {
					return false
				}
				seen[p] = true
			}
		}
		return len(seen) == 6*(12-4+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
