package grouping

import (
	"math"
	"reflect"
	"testing"

	"onex/internal/dataset"
	"onex/internal/ts"
)

// appendFixture builds a result over a dataset, then grows some series and
// returns (grown dataset, pre-append result, old lengths).
func appendFixture(t *testing.T, st float64, lengths []int) (*ts.Dataset, *Result, []int) {
	t.Helper()
	d := dataset.ItalyPower.Scaled(0.4).Generate(17)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	res, err := Build(d, Config{ST: st, Lengths: lengths, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	oldLens := make([]int, d.N())
	for i, s := range d.Series {
		oldLens[i] = s.Len()
	}
	// Grow two series by different amounts with in-range values.
	for i, n := range []int{7, 3} {
		src := d.Series[i].Values
		for j := 0; j < n; j++ {
			d.Series[i].AppendPoints(src[j%len(src)] * 0.9)
		}
	}
	return d, res, oldLens
}

func TestAppendPointsValidation(t *testing.T) {
	d, res, oldLens := appendFixture(t, 0.2, []int{6})
	if _, _, err := AppendPoints(nil, res, oldLens, Config{ST: 0.2}); err == nil {
		t.Error("nil dataset: want error")
	}
	if _, _, err := AppendPoints(d, nil, oldLens, Config{ST: 0.2}); err == nil {
		t.Error("nil result: want error")
	}
	if _, _, err := AppendPoints(d, res, oldLens, Config{ST: 0.4}); err == nil {
		t.Error("mismatched ST: want error")
	}
	if _, _, err := AppendPoints(d, res, oldLens[:2], Config{ST: 0.2}); err == nil {
		t.Error("short oldLens: want error")
	}
	bad := append([]int(nil), oldLens...)
	bad[0] = -1
	if _, _, err := AppendPoints(d, res, bad, Config{ST: 0.2}); err == nil {
		t.Error("negative old length: want error")
	}
	bad[0] = d.Series[0].Len() + 1
	if _, _, err := AppendPoints(d, res, bad, Config{ST: 0.2}); err == nil {
		t.Error("old length beyond current: want error")
	}
	same := make([]int, d.N())
	for i, s := range d.Series {
		same[i] = s.Len()
	}
	if _, _, err := AppendPoints(d, res, same, Config{ST: 0.2}); err == nil {
		t.Error("no growth: want error")
	}
}

func TestAppendPointsCoversExactlyTheNewWindows(t *testing.T) {
	lengths := []int{5, 9}
	d, res, oldLens := appendFixture(t, 0.2, lengths)
	grown, delta, err := AppendPoints(d, res, oldLens, Config{ST: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if grown.TotalSubseq != d.SubseqCount(lengths) {
		t.Errorf("TotalSubseq = %d, want %d", grown.TotalSubseq, d.SubseqCount(lengths))
	}
	// Partition invariant: every window of the grown dataset appears in
	// exactly one group, exactly once.
	for _, l := range grown.Lengths {
		seen := map[position]int{}
		for _, g := range grown.ByLength[l].Groups {
			for _, m := range g.Members {
				seen[position{m.SeriesIdx, m.Start}]++
			}
		}
		want := 0
		for _, s := range d.Series {
			if n := s.Len() - l + 1; n > 0 {
				want += n
			}
		}
		if len(seen) != want {
			t.Fatalf("length %d: %d distinct members, want %d", l, len(seen), want)
		}
		for pos, c := range seen {
			if c != 1 {
				t.Fatalf("length %d: %+v appears %d times", l, pos, c)
			}
		}
	}
	// Drift accounting: exactly the new windows were assigned incrementally.
	var newWindows int64
	for _, l := range lengths {
		for i, s := range d.Series {
			lo, hi := s.NewWindowStarts(oldLens[i], l)
			newWindows += int64(hi - lo)
		}
	}
	if grown.IncrementalMembers != newWindows {
		t.Errorf("IncrementalMembers = %d, want %d", grown.IncrementalMembers, newWindows)
	}
	if got, want := grown.Drift(), float64(newWindows)/float64(grown.TotalSubseq); math.Abs(got-want) > 1e-15 {
		t.Errorf("Drift = %v, want %v", got, want)
	}
	// Delta sanity: every touched index is a pre-existing group.
	for _, l := range lengths {
		if delta.PrevGroups[l] != len(res.ByLength[l].Groups) {
			t.Errorf("length %d: PrevGroups = %d, want %d", l, delta.PrevGroups[l], len(res.ByLength[l].Groups))
		}
		for _, k := range delta.Touched[l] {
			if k < 0 || k >= delta.PrevGroups[l] {
				t.Errorf("length %d: touched index %d outside pre-existing groups", l, k)
			}
		}
	}
}

func TestAppendPointsUntouchedGroupsUnchanged(t *testing.T) {
	d, res, oldLens := appendFixture(t, 0.2, []int{6})
	grown, delta, err := AppendPoints(d, res, oldLens, Config{ST: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	touched := map[int]bool{}
	for _, k := range delta.Touched[6] {
		touched[k] = true
	}
	for k, g := range res.ByLength[6].Groups {
		if touched[k] {
			continue
		}
		ng := grown.ByLength[6].Groups[k]
		if !reflect.DeepEqual(g.Rep, ng.Rep) || !reflect.DeepEqual(g.Members, ng.Members) {
			t.Fatalf("untouched group %d changed across AppendPoints", k)
		}
	}
	// The original result is never mutated.
	for k, g := range res.ByLength[6].Groups {
		if g.ID != k {
			t.Fatalf("original group %d has ID %d after AppendPoints", k, g.ID)
		}
	}
}

func TestAppendPointsDeterministicAcrossWorkers(t *testing.T) {
	d, res, oldLens := appendFixture(t, 0.2, []int{5, 7, 9})
	var ref *Result
	for _, workers := range []int{1, 4, 8} {
		grown, _, err := AppendPoints(d, res, oldLens, Config{ST: 0.2, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = grown
			continue
		}
		if !reflect.DeepEqual(ref, grown) {
			t.Fatalf("AppendPoints differs at Workers=%d", workers)
		}
	}
}

func TestAppendPointsRepsStayAverages(t *testing.T) {
	d, res, oldLens := appendFixture(t, 0.25, []int{7})
	grown, _, err := AppendPoints(d, res, oldLens, Config{ST: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range grown.ByLength[7].Groups {
		avg := make([]float64, 7)
		for _, m := range g.Members {
			for i, v := range MemberValues(d, g, m) {
				avg[i] += v
			}
		}
		for i := range avg {
			avg[i] /= float64(g.Count())
			if math.Abs(avg[i]-g.Rep[i]) > 1e-9 {
				t.Fatalf("group %d rep[%d]=%v, want %v", g.ID, i, g.Rep[i], avg[i])
			}
		}
		for i := 1; i < g.Count(); i++ {
			if g.Members[i-1].EDToRep > g.Members[i].EDToRep {
				t.Fatalf("group %d members unsorted after append", g.ID)
			}
		}
	}
}

func TestExtendAccumulatesDrift(t *testing.T) {
	full, res, from := extendFixture(t, 0.2, []int{6})
	ext, _, err := Extend(full, res, from, Config{ST: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if ext.IncrementalMembers != ext.TotalSubseq-res.TotalSubseq {
		t.Errorf("IncrementalMembers = %d, want %d", ext.IncrementalMembers, ext.TotalSubseq-res.TotalSubseq)
	}
	if res.IncrementalMembers != 0 || res.Drift() != 0 {
		t.Errorf("full build reports drift %v (%d members)", res.Drift(), res.IncrementalMembers)
	}
	if ext.Drift() <= 0 {
		t.Errorf("extended result reports zero drift")
	}
}
