package grouping

import (
	"math/rand"
	"reflect"
	"testing"

	"onex/internal/ts"
)

// chunkedDataset is large enough that at least one length crosses the
// minChunkPositions threshold, forcing the sharded build + merge path.
func chunkedDataset(seed int64) *ts.Dataset {
	r := rand.New(rand.NewSource(seed))
	d := &ts.Dataset{Name: "chunked"}
	for i := 0; i < 48; i++ {
		v := make([]float64, 120)
		phase := r.Float64() * 6
		for j := range v {
			v[j] = 0.5 + 0.3*float64(j%17)/17 + 0.1*r.NormFloat64() + 0.2*phase
		}
		d.Append("", v)
	}
	if err := d.NormalizeMinMax(); err != nil {
		panic(err)
	}
	return d
}

func TestChunkCount(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1},
		{1, 1},
		{minChunkPositions, 1},
		{2*minChunkPositions - 1, 1},
		{2 * minChunkPositions, 2},
		{5 * minChunkPositions, 5},
		{1000 * minChunkPositions, maxChunks},
	}
	for _, c := range cases {
		if got := chunkCount(c.n); got != c.want {
			t.Errorf("chunkCount(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestBuildIdenticalAcrossWorkerCounts is the core determinism guarantee of
// the sharded build: for a fixed seed the Result must be identical — same
// groups, same member order, same representatives bit for bit — no matter
// how many workers constructed it. The dataset is sized so the within-length
// chunk path is genuinely exercised (48 series × 120 points ⇒ ~5k positions
// per length > 2·minChunkPositions).
func TestBuildIdenticalAcrossWorkerCounts(t *testing.T) {
	d := chunkedDataset(7)
	lengths := []int{8, 16}
	cfg := Config{ST: 0.25, Lengths: lengths, Seed: 42, Workers: 1}
	want, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the chunk path must actually be in play.
	if n := 48 * (120 - 8 + 1); chunkCount(n) < 2 {
		t.Fatalf("test dataset too small to chunk (%d positions)", n)
	}
	for _, workers := range []int{2, 3, 5, 8, 0} {
		cfg.Workers = workers
		got, err := Build(d, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: Result differs from workers=1 build", workers)
		}
	}
}

// TestBuildIdenticalAcrossWorkerCountsSmall covers the unchunked path too:
// small datasets must also be invariant (they run the identical sequential
// loop regardless of workers).
func TestBuildIdenticalAcrossWorkerCountsSmall(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	d := &ts.Dataset{Name: "small"}
	for i := 0; i < 6; i++ {
		v := make([]float64, 20)
		for j := range v {
			v[j] = r.NormFloat64()
		}
		d.Append("", v)
	}
	cfg := Config{ST: 0.4, Lengths: []int{4, 7}, Seed: 11, Workers: 1}
	want, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		got, err := Build(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: Result differs", workers)
		}
	}
}

// TestChunkedBuildKeepsInvariants re-asserts the Def. 7/8 structural
// invariants on a build that went through the chunk merge: partition (every
// subsequence in exactly one group), representative = point-wise member
// average, LSI sorted.
func TestChunkedBuildKeepsInvariants(t *testing.T) {
	d := chunkedDataset(9)
	res, err := Build(d, Config{ST: 0.3, Lengths: []int{10}, Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	lg := res.ByLength[10]
	if len(lg.Groups) == 0 {
		t.Fatal("no groups")
	}
	seen := make(map[position]int)
	for _, g := range lg.Groups {
		if g.Count() == 0 {
			t.Fatal("empty group after merge")
		}
		avg := make([]float64, g.Length)
		for _, m := range g.Members {
			seen[position{m.SeriesIdx, m.Start}]++
			for i, v := range MemberValues(d, g, m) {
				avg[i] += v
			}
		}
		for i := range avg {
			avg[i] /= float64(g.Count())
			if diff := avg[i] - g.Rep[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("group %d rep[%d]=%v, want member average %v", g.ID, i, g.Rep[i], avg[i])
			}
		}
		for i := 1; i < g.Count(); i++ {
			if g.Members[i-1].EDToRep > g.Members[i].EDToRep {
				t.Fatalf("group %d LSI not sorted", g.ID)
			}
		}
	}
	want := 48 * (120 - 10 + 1)
	if len(seen) != want {
		t.Fatalf("%d distinct subsequences grouped, want %d", len(seen), want)
	}
	for pos, n := range seen {
		if n != 1 {
			t.Fatalf("subsequence %+v grouped %d times", pos, n)
		}
	}
	if res.TotalSubseq != int64(want) {
		t.Fatalf("TotalSubseq = %d, want %d", res.TotalSubseq, want)
	}
}
