// Package grouping implements Algorithm 1 of the paper: the one-pass
// construction of ONEX similarity groups. Subsequences of each length are
// visited in randomized order; each joins the group whose representative is
// nearest in (normalized) Euclidean distance provided that distance is
// within ST/2, and otherwise founds a new group with itself as the first
// representative. Representatives are maintained as running point-wise
// averages (Def. 7).
//
// The three Def. 8 properties hold by construction for the radius test; note
// that, exactly as in the paper, representatives drift as members join, so
// property (2) is enforced against the representative at insertion time.
// Lemma 1's pairwise bound is validated statistically in the tests.
package grouping

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"onex/internal/dist"
	"onex/internal/ts"
)

// Config controls a build.
type Config struct {
	// ST is the similarity threshold in normalized-ED units (Def. 5); the
	// grouping radius is ST/2. Must be > 0.
	ST float64
	// Lengths lists the subsequence lengths to decompose into. nil means
	// every length from 2 to the longest series, the paper's default.
	Lengths []int
	// Seed drives RANDOMIZE-IN-PLACE and all tie-breaking; builds are
	// deterministic given (dataset, Config).
	Seed int64
	// Workers bounds construction parallelism across lengths.
	// 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is called after each length finishes grouping
	// with the number of completed lengths and the total. Calls are
	// serialized; done is strictly increasing from 1 to total.
	Progress func(done, total int)
	// Cancel, when non-nil, aborts the build between lengths once closed:
	// Build returns ErrCanceled instead of a Result. Work already done is
	// discarded; the input dataset is never modified either way.
	Cancel <-chan struct{}
}

// ErrCanceled is returned by Build when Config.Cancel is closed before the
// construction finishes.
var ErrCanceled = errors.New("grouping: build canceled")

// Member identifies one subsequence (Xp)^i_j inside a group and caches its
// normalized ED to the group's final representative (the LSI sort key,
// Sec. 4.3).
type Member struct {
	// SeriesIdx indexes the dataset's Series slice (the paper's p).
	SeriesIdx int
	// Start is the subsequence's starting position (the paper's j).
	Start int
	// EDToRep is the normalized ED to the final representative.
	EDToRep float64
}

// Group is one ONEX similarity group G^i_k: same-length subsequences within
// ST/2 of their point-wise-average representative.
type Group struct {
	// Length is the subsequence length i shared by every member.
	Length int
	// ID is the group's index within its length (the paper's k).
	ID int
	// Rep is the representative R^i_k: the point-wise average of members.
	Rep []float64
	// Members lists the subsequences, sorted ascending by EDToRep after
	// Finalize (the LSI order used by the Sec. 5.3 pivot search).
	Members []Member

	sum []float64 // running point-wise sum backing Rep
}

// Count returns the number of member subsequences.
func (g *Group) Count() int { return len(g.Members) }

// add inserts the subsequence and folds its values into the running average.
func (g *Group) add(seriesIdx, start int, values []float64) {
	g.Members = append(g.Members, Member{SeriesIdx: seriesIdx, Start: start})
	for i, v := range values {
		g.sum[i] += v
	}
	n := float64(len(g.Members))
	for i := range g.Rep {
		g.Rep[i] = g.sum[i] / n
	}
}

// LengthGroups holds every group of one subsequence length.
type LengthGroups struct {
	Length int
	Groups []*Group
}

// Result is the full panorama of groups for all requested lengths — the raw
// material of the ONEX base (rspace wraps it with the GTI/LSI indexes).
type Result struct {
	// ST echoes the build threshold.
	ST float64
	// Lengths lists the built lengths in increasing order.
	Lengths []int
	// ByLength maps a length to its groups.
	ByLength map[int]*LengthGroups
	// TotalSubseq counts every subsequence placed into a group.
	TotalSubseq int64
}

// TotalGroups returns the number of groups across all lengths (the paper's
// "number of representatives", Fig. 6 / Table 4).
func (r *Result) TotalGroups() int {
	total := 0
	for _, lg := range r.ByLength {
		total += len(lg.Groups)
	}
	return total
}

// Build runs Algorithm 1 over the dataset. Lengths are processed in
// parallel; the per-length group construction is sequential because the
// algorithm is order-dependent (each length gets its own seeded source, so
// results do not depend on scheduling).
func Build(d *ts.Dataset, cfg Config) (*Result, error) {
	if d == nil || d.N() == 0 {
		return nil, errors.New("grouping: empty dataset")
	}
	if cfg.ST <= 0 || math.IsNaN(cfg.ST) || math.IsInf(cfg.ST, 0) {
		return nil, fmt.Errorf("grouping: similarity threshold must be positive, got %v", cfg.ST)
	}
	lengths, err := resolveLengths(d, cfg.Lengths)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ST:       cfg.ST,
		Lengths:  lengths,
		ByLength: make(map[int]*LengthGroups, len(lengths)),
	}
	results := make([]*LengthGroups, len(lengths))
	counts := make([]int64, len(lengths))

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(lengths) {
		workers = len(lengths)
	}
	var (
		wg       sync.WaitGroup
		progMu   sync.Mutex
		progDone int
		canceled bool
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				if isClosed(cfg.Cancel) {
					progMu.Lock()
					canceled = true
					progMu.Unlock()
					continue
				}
				l := lengths[idx]
				lg, n := buildLength(d, l, cfg.ST, cfg.Seed+int64(l)*1_000_003)
				results[idx] = lg
				counts[idx] = n
				progMu.Lock()
				progDone++
				if cfg.Progress != nil {
					cfg.Progress(progDone, len(lengths))
				}
				progMu.Unlock()
			}
		}()
	}
	for idx := range lengths {
		next <- idx
	}
	close(next)
	wg.Wait()

	if canceled {
		return nil, ErrCanceled
	}
	for i, lg := range results {
		res.ByLength[lg.Length] = lg
		res.TotalSubseq += counts[i]
	}
	return res, nil
}

// isClosed polls a cancellation channel without blocking.
func isClosed(c <-chan struct{}) bool {
	if c == nil {
		return false
	}
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// resolveLengths validates and normalizes the requested length set.
func resolveLengths(d *ts.Dataset, requested []int) ([]int, error) {
	maxLen := d.MaxLen()
	if requested == nil {
		if maxLen < 2 {
			return nil, errors.New("grouping: dataset series too short to decompose (need length ≥ 2)")
		}
		all := make([]int, 0, maxLen-1)
		for l := 2; l <= maxLen; l++ {
			all = append(all, l)
		}
		return all, nil
	}
	seen := make(map[int]bool, len(requested))
	out := make([]int, 0, len(requested))
	for _, l := range requested {
		if l < 1 {
			return nil, fmt.Errorf("grouping: invalid subsequence length %d", l)
		}
		if l > maxLen {
			continue // no series long enough; harmless to skip
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		return nil, errors.New("grouping: no usable subsequence lengths")
	}
	sort.Ints(out)
	return out, nil
}

// position identifies a candidate subsequence during construction.
type position struct {
	seriesIdx int
	start     int
}

// buildLength runs the Algorithm 1 loop for a single length.
func buildLength(d *ts.Dataset, length int, st float64, seed int64) (*LengthGroups, int64) {
	positions := enumerate(d, length)
	r := rand.New(rand.NewSource(seed))
	// RANDOMIZE-IN-PLACE (Algorithm 1, line 3): Fisher–Yates.
	r.Shuffle(len(positions), func(i, j int) {
		positions[i], positions[j] = positions[j], positions[i]
	})

	lg := &LengthGroups{Length: length}
	radiusSq := float64(length) * st * st / 4 // (√L·ST/2)² in raw-ED² units
	for _, pos := range positions {
		values := d.Series[pos.seriesIdx].Values[pos.start : pos.start+length]
		bestSq := math.Inf(1)
		bestIdx := -1
		for gi, g := range lg.Groups {
			// Only representatives within the radius can win, and only a
			// distance below the current best matters: abandon above both.
			cutoff := radiusSq
			if bestSq < cutoff {
				cutoff = bestSq
			}
			sq := dist.SquaredEDEarlyAbandon(values, g.Rep, cutoff)
			if sq < bestSq {
				bestSq = sq
				bestIdx = gi
			}
		}
		if bestIdx >= 0 && bestSq <= radiusSq {
			lg.Groups[bestIdx].add(pos.seriesIdx, pos.start, values)
		} else {
			g := &Group{
				Length: length,
				ID:     len(lg.Groups),
				Rep:    append([]float64(nil), values...),
				sum:    append([]float64(nil), values...),
			}
			g.Members = append(g.Members, Member{SeriesIdx: pos.seriesIdx, Start: pos.start})
			lg.Groups = append(lg.Groups, g)
		}
	}
	finalize(d, lg)
	return lg, int64(len(positions))
}

// enumerate lists every subsequence position of the given length.
func enumerate(d *ts.Dataset, length int) []position {
	var total int
	for _, s := range d.Series {
		if n := s.Len() - length + 1; n > 0 {
			total += n
		}
	}
	positions := make([]position, 0, total)
	for si, s := range d.Series {
		for j := 0; j+length <= s.Len(); j++ {
			positions = append(positions, position{seriesIdx: si, start: j})
		}
	}
	return positions
}

// finalize freezes representatives, recomputes member distances against the
// final representative (the running average drifted during insertion), and
// sorts members into the LSI order.
func finalize(d *ts.Dataset, lg *LengthGroups) {
	invSqrtL := 1 / math.Sqrt(float64(lg.Length))
	for _, g := range lg.Groups {
		for mi := range g.Members {
			m := &g.Members[mi]
			v := d.Series[m.SeriesIdx].Values[m.Start : m.Start+lg.Length]
			m.EDToRep = dist.ED(v, g.Rep) * invSqrtL
		}
		sort.Slice(g.Members, func(a, b int) bool {
			return g.Members[a].EDToRep < g.Members[b].EDToRep
		})
		g.sum = nil // construction scratch; the rep is frozen now
	}
}

// MemberValues returns the raw window of a member subsequence.
func MemberValues(d *ts.Dataset, g *Group, m Member) []float64 {
	return d.Series[m.SeriesIdx].Values[m.Start : m.Start+g.Length]
}
