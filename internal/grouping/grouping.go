// Package grouping implements Algorithm 1 of the paper: the one-pass
// construction of ONEX similarity groups. Subsequences of each length are
// visited in randomized order; each joins the group whose representative is
// nearest in (normalized) Euclidean distance provided that distance is
// within ST/2, and otherwise founds a new group with itself as the first
// representative. Representatives are maintained as running point-wise
// averages (Def. 7).
//
// The three Def. 8 properties hold by construction for the radius test; note
// that, exactly as in the paper, representatives drift as members join, so
// property (2) is enforced against the representative at insertion time.
// Lemma 1's pairwise bound is validated statistically in the tests.
package grouping

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"onex/internal/dist"
	"onex/internal/parallel"
	"onex/internal/ts"
)

// Config controls a build.
type Config struct {
	// ST is the similarity threshold in normalized-ED units (Def. 5); the
	// grouping radius is ST/2. Must be > 0.
	ST float64
	// Lengths lists the subsequence lengths to decompose into. nil means
	// every length from 2 to the longest series, the paper's default.
	Lengths []int
	// Seed drives RANDOMIZE-IN-PLACE and all tie-breaking; builds are
	// deterministic given (dataset, Config).
	Seed int64
	// Workers bounds construction parallelism, both across lengths and
	// across the series-chunks within a length. ≤ 0 means GOMAXPROCS. The
	// built Result is identical for every worker count given the same
	// (dataset, ST, Lengths, Seed): the chunk layout depends only on the
	// data, chunk construction is a pure function of its positions, and the
	// cross-chunk merge is sequential in fixed chunk order.
	Workers int
	// Progress, when non-nil, is called after each length finishes grouping
	// with the number of completed lengths and the total. Calls are
	// serialized; done is strictly increasing from 1 to total.
	Progress func(done, total int)
	// Cancel, when non-nil, aborts the build between lengths once closed:
	// Build returns ErrCanceled instead of a Result. Work already done is
	// discarded; the input dataset is never modified either way.
	Cancel <-chan struct{}
}

// ErrCanceled is returned by Build when Config.Cancel is closed before the
// construction finishes.
var ErrCanceled = errors.New("grouping: build canceled")

// Member identifies one subsequence (Xp)^i_j inside a group and caches its
// normalized ED to the group's final representative (the LSI sort key,
// Sec. 4.3).
type Member struct {
	// SeriesIdx indexes the dataset's Series slice (the paper's p).
	SeriesIdx int
	// Start is the subsequence's starting position (the paper's j).
	Start int
	// EDToRep is the normalized ED to the final representative.
	EDToRep float64
}

// Group is one ONEX similarity group G^i_k: same-length subsequences within
// ST/2 of their point-wise-average representative.
type Group struct {
	// Length is the subsequence length i shared by every member.
	Length int
	// ID is the group's index within its length (the paper's k).
	ID int
	// Rep is the representative R^i_k: the point-wise average of members.
	Rep []float64
	// Members lists the subsequences, sorted ascending by EDToRep after
	// Finalize (the LSI order used by the Sec. 5.3 pivot search).
	Members []Member

	sum []float64 // running point-wise sum backing Rep
}

// Count returns the number of member subsequences.
func (g *Group) Count() int { return len(g.Members) }

// add inserts the subsequence and folds its values into the running average.
func (g *Group) add(seriesIdx, start int, values []float64) {
	g.Members = append(g.Members, Member{SeriesIdx: seriesIdx, Start: start})
	for i, v := range values {
		g.sum[i] += v
	}
	n := float64(len(g.Members))
	for i := range g.Rep {
		g.Rep[i] = g.sum[i] / n
	}
}

// LengthGroups holds every group of one subsequence length.
type LengthGroups struct {
	Length int
	Groups []*Group
}

// Result is the full panorama of groups for all requested lengths — the raw
// material of the ONEX base (rspace wraps it with the GTI/LSI indexes).
type Result struct {
	// ST echoes the build threshold.
	ST float64
	// Lengths lists the built lengths in increasing order.
	Lengths []int
	// ByLength maps a length to its groups.
	ByLength map[int]*LengthGroups
	// TotalSubseq counts every subsequence placed into a group.
	TotalSubseq int64
	// IncrementalMembers counts the subsequences assigned by incremental
	// maintenance (Extend / AppendPoints) since the last full Build — the
	// numerator of the drift fraction the amortized rebuild policy watches.
	// A full Build resets it to zero.
	IncrementalMembers int64
}

// Drift returns the fraction of members that joined incrementally since the
// last full Build (0 for a freshly built result). It is the staleness signal
// of the amortized rebuild policy: incrementally assigned members never
// trigger group splits or re-shuffles, so as drift grows the grouping slowly
// diverges from what Algorithm 1 would build from scratch.
func (r *Result) Drift() float64 {
	if r.TotalSubseq == 0 {
		return 0
	}
	return float64(r.IncrementalMembers) / float64(r.TotalSubseq)
}

// TotalGroups returns the number of groups across all lengths (the paper's
// "number of representatives", Fig. 6 / Table 4).
func (r *Result) TotalGroups() int {
	total := 0
	for _, lg := range r.ByLength {
		total += len(lg.Groups)
	}
	return total
}

// Build runs Algorithm 1 over the dataset. Work is sharded two ways: across
// lengths, and — for lengths with many subsequences — across series-chunks
// within a length, with a deterministic sequential merge (see buildLength).
// A fixed (dataset, Config.ST/Lengths/Seed) therefore yields an identical
// Result for every Workers value.
func Build(d *ts.Dataset, cfg Config) (*Result, error) {
	if d == nil || d.N() == 0 {
		return nil, errors.New("grouping: empty dataset")
	}
	if cfg.ST <= 0 || math.IsNaN(cfg.ST) || math.IsInf(cfg.ST, 0) {
		return nil, fmt.Errorf("grouping: similarity threshold must be positive, got %v", cfg.ST)
	}
	lengths, err := resolveLengths(d, cfg.Lengths)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ST:       cfg.ST,
		Lengths:  lengths,
		ByLength: make(map[int]*LengthGroups, len(lengths)),
	}
	results := make([]*LengthGroups, len(lengths))
	counts := make([]int64, len(lengths))

	workers := parallel.Resolve(cfg.Workers)
	// Split the worker budget between the two sharding axes: when there are
	// fewer lengths than workers, the spare budget parallelizes the chunks
	// inside each length. (Worker allocation only affects scheduling, never
	// the Result.)
	outer := workers
	if outer > len(lengths) {
		outer = len(lengths)
	}
	inner := workers / outer
	var (
		progMu   sync.Mutex
		progDone int
		canceled bool
	)
	parallel.ForEach(outer, len(lengths), func(idx int) {
		if isClosed(cfg.Cancel) {
			progMu.Lock()
			canceled = true
			progMu.Unlock()
			return
		}
		l := lengths[idx]
		lg, n := buildLength(d, l, cfg.ST, cfg.Seed+int64(l)*1_000_003, inner)
		results[idx] = lg
		counts[idx] = n
		progMu.Lock()
		progDone++
		if cfg.Progress != nil {
			cfg.Progress(progDone, len(lengths))
		}
		progMu.Unlock()
	})

	if canceled {
		return nil, ErrCanceled
	}
	for i, lg := range results {
		res.ByLength[lg.Length] = lg
		res.TotalSubseq += counts[i]
	}
	return res, nil
}

// isClosed polls a cancellation channel without blocking.
func isClosed(c <-chan struct{}) bool {
	if c == nil {
		return false
	}
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// resolveLengths validates and normalizes the requested length set.
func resolveLengths(d *ts.Dataset, requested []int) ([]int, error) {
	maxLen := d.MaxLen()
	if requested == nil {
		if maxLen < 2 {
			return nil, errors.New("grouping: dataset series too short to decompose (need length ≥ 2)")
		}
		all := make([]int, 0, maxLen-1)
		for l := 2; l <= maxLen; l++ {
			all = append(all, l)
		}
		return all, nil
	}
	seen := make(map[int]bool, len(requested))
	out := make([]int, 0, len(requested))
	for _, l := range requested {
		if l < 1 {
			return nil, fmt.Errorf("grouping: invalid subsequence length %d", l)
		}
		if l > maxLen {
			continue // no series long enough; harmless to skip
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		return nil, errors.New("grouping: no usable subsequence lengths")
	}
	sort.Ints(out)
	return out, nil
}

// position identifies a candidate subsequence during construction.
type position struct {
	seriesIdx int
	start     int
}

// Chunked construction constants. minChunkPositions is the smallest
// per-chunk workload worth a goroutine (below it the whole length is built
// in one sequential pass, which is also the exact historical algorithm);
// maxChunks caps the merge fan-in. Both are fixed constants — never derived
// from the worker count — so the chunk layout, and therefore the Result, is
// a function of the data alone.
const (
	minChunkPositions = 2048
	maxChunks         = 16
)

// chunkCount returns how many chunks n shuffled positions are split into.
func chunkCount(n int) int {
	c := n / minChunkPositions
	if c < 2 {
		return 1
	}
	if c > maxChunks {
		return maxChunks
	}
	return c
}

// buildLength runs the Algorithm 1 loop for a single length. Large lengths
// are sharded: the shuffled position list is cut into chunkCount contiguous
// chunks, each chunk is clustered independently (in parallel across up to
// workers goroutines), and the partial group sets are folded left-to-right
// by mergeChunks. Both the chunk layout and the merge order are independent
// of the worker count, so the output is deterministic given the seed.
func buildLength(d *ts.Dataset, length int, st float64, seed int64, workers int) (*LengthGroups, int64) {
	positions := enumerate(d, length)
	r := rand.New(rand.NewSource(seed))
	// RANDOMIZE-IN-PLACE (Algorithm 1, line 3): Fisher–Yates.
	r.Shuffle(len(positions), func(i, j int) {
		positions[i], positions[j] = positions[j], positions[i]
	})

	nc := chunkCount(len(positions))
	if nc == 1 {
		lg := buildChunk(d, length, st, positions)
		finalize(d, lg)
		return lg, int64(len(positions))
	}
	parts := make([]*LengthGroups, nc)
	parallel.ForEach(workers, nc, func(ci int) {
		lo, hi := ci*len(positions)/nc, (ci+1)*len(positions)/nc
		parts[ci] = buildChunk(d, length, st, positions[lo:hi])
	})
	lg := mergeChunks(length, st, parts)
	finalize(d, lg)
	return lg, int64(len(positions))
}

// buildChunk is the sequential Algorithm 1 loop over one slice of shuffled
// positions: each subsequence joins the nearest group whose representative
// is within ST/2 or founds a new one. Groups keep their running sums so a
// later merge can recombine them exactly.
func buildChunk(d *ts.Dataset, length int, st float64, positions []position) *LengthGroups {
	lg := &LengthGroups{Length: length}
	radiusSq := float64(length) * st * st / 4 // (√L·ST/2)² in raw-ED² units
	for _, pos := range positions {
		values := d.Series[pos.seriesIdx].Values[pos.start : pos.start+length]
		bestSq := math.Inf(1)
		bestIdx := -1
		for gi, g := range lg.Groups {
			// Only representatives within the radius can win, and only a
			// distance below the current best matters: abandon above both.
			cutoff := radiusSq
			if bestSq < cutoff {
				cutoff = bestSq
			}
			sq := dist.SquaredEDEarlyAbandon(values, g.Rep, cutoff)
			if sq < bestSq {
				bestSq = sq
				bestIdx = gi
			}
		}
		if bestIdx >= 0 && bestSq <= radiusSq {
			lg.Groups[bestIdx].add(pos.seriesIdx, pos.start, values)
		} else {
			g := &Group{
				Length: length,
				ID:     len(lg.Groups),
				Rep:    append([]float64(nil), values...),
				sum:    append([]float64(nil), values...),
			}
			g.Members = append(g.Members, Member{SeriesIdx: pos.seriesIdx, Start: pos.start})
			lg.Groups = append(lg.Groups, g)
		}
	}
	return lg
}

// mergeChunks folds the per-chunk group sets into one, applying the same
// nearest-representative-within-ST/2 rule at group granularity: a chunk
// group whose representative lies within ST/2 of an accumulated group's
// representative is absorbed (sums and members combined, so the merged
// representative remains the exact point-wise member average); otherwise it
// is appended as a new group. The fold runs left-to-right over chunks in
// index order — sequential and worker-count independent.
func mergeChunks(length int, st float64, parts []*LengthGroups) *LengthGroups {
	out := parts[0]
	radiusSq := float64(length) * st * st / 4
	for _, part := range parts[1:] {
		for _, g := range part.Groups {
			bestSq := math.Inf(1)
			bestIdx := -1
			for oi, og := range out.Groups {
				cutoff := radiusSq
				if bestSq < cutoff {
					cutoff = bestSq
				}
				sq := dist.SquaredEDEarlyAbandon(g.Rep, og.Rep, cutoff)
				if sq < bestSq {
					bestSq = sq
					bestIdx = oi
				}
			}
			if bestIdx >= 0 && bestSq <= radiusSq {
				out.Groups[bestIdx].absorb(g)
			} else {
				out.Groups = append(out.Groups, g)
			}
		}
	}
	for i, g := range out.Groups {
		g.ID = i
	}
	return out
}

// absorb merges another group of the same length into g, keeping Rep the
// exact point-wise average of the combined membership.
func (g *Group) absorb(o *Group) {
	g.Members = append(g.Members, o.Members...)
	for i, v := range o.sum {
		g.sum[i] += v
	}
	n := float64(len(g.Members))
	for i := range g.Rep {
		g.Rep[i] = g.sum[i] / n
	}
}

// enumerate lists every subsequence position of the given length.
func enumerate(d *ts.Dataset, length int) []position {
	var total int
	for _, s := range d.Series {
		if n := s.Len() - length + 1; n > 0 {
			total += n
		}
	}
	positions := make([]position, 0, total)
	for si, s := range d.Series {
		for j := 0; j+length <= s.Len(); j++ {
			positions = append(positions, position{seriesIdx: si, start: j})
		}
	}
	return positions
}

// finalize freezes representatives, recomputes member distances against the
// final representative (the running average drifted during insertion), and
// sorts members into the LSI order.
func finalize(d *ts.Dataset, lg *LengthGroups) {
	invSqrtL := 1 / math.Sqrt(float64(lg.Length))
	for _, g := range lg.Groups {
		for mi := range g.Members {
			m := &g.Members[mi]
			v := d.Series[m.SeriesIdx].Values[m.Start : m.Start+lg.Length]
			m.EDToRep = dist.ED(v, g.Rep) * invSqrtL
		}
		sort.Slice(g.Members, func(a, b int) bool {
			return g.Members[a].EDToRep < g.Members[b].EDToRep
		})
		g.sum = nil // construction scratch; the rep is frozen now
	}
}

// MemberValues returns the raw window of a member subsequence.
func MemberValues(d *ts.Dataset, g *Group, m Member) []float64 {
	return d.Series[m.SeriesIdx].Values[m.Start : m.Start+g.Length]
}
