// Package shardrpc is the remote ShardTransport of the scatter-gather
// engine: a Worker serves one or more shards' indexes over the REST idiom
// of cmd/onex-server (`-role worker`), and a Client drives one shard on
// such a worker from the coordinator, implementing query.ShardTransport.
//
// # Protocol
//
// Shard state is keyed by (dataset, generation, shard) — the idempotency
// key. The generation is a random nonce the coordinator mints per shipped
// incarnation of a shard's state, so re-shipping the same generation is a
// no-op (the worker answers with the cached stats) and two coordinators,
// or one coordinator before and after a maintenance step, can never alias
// each other's state. Workers retain the two newest generations per
// (dataset, shard), so queries racing a maintenance swap still answer.
//
//	GET  /worker/v1/healthz
//	PUT  /worker/v1/shards/{dataset}/{gen}/{shard}            ship a ShardSpec
//	POST /worker/v1/shards/{dataset}/{gen}/{shard}/scan       ScanBestRequest
//	POST /worker/v1/shards/{dataset}/{gen}/{shard}/scanfixed  ScanFixedRequest
//	POST /worker/v1/shards/{dataset}/{gen}/{shard}/members    EvalMembersRequest
//	POST /worker/v1/shards/{dataset}/{gen}/{shard}/range      RangeRequest
//
// Query calls against an unknown key answer 404 with code
// "unknown_generation" — the signal that the worker restarted (or expired
// the generation) and the client must re-ship the spec and retry. Bound
// hints, cutoffs and distances that can be ±Inf travel as math.Float64bits
// (see query.ShardTransport for the bit-exactness contract).
//
// The X-Request-Id header propagates from the coordinator and tags every
// worker-side log line, so a distributed query is greppable end to end.
package shardrpc

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"onex/internal/obs"
	"onex/internal/query"
)

// maxSpecBytes bounds a shipped shard spec (1 GiB — specs carry the shard's
// series values and grouping restriction).
const maxSpecBytes = 1 << 30

// maxRequestBytes bounds a query request body (64 MiB).
const maxRequestBytes = 64 << 20

// gensRetained is how many generations a worker keeps per (dataset, shard).
// Two covers the swap window of one maintenance step: the coordinator ships
// the new generation, then stops querying the old one.
const gensRetained = 2

// shardKey is the idempotency key of one shipped shard incarnation.
type shardKey struct {
	dataset string
	gen     string
	shard   int
}

// datasetShard identifies a shard slot across generations (retention).
type datasetShard struct {
	dataset string
	shard   int
}

// entry is one resident (or building) shard index. ready closes when the
// build finishes; ls/err are valid only after that.
type entry struct {
	ready chan struct{}
	ls    *query.LocalShard
	stats query.ShardStats
	err   error
}

// Worker serves shard indexes shipped by coordinators. Safe for concurrent
// use; shard builds are single-flighted per key (a re-shipped PUT of a
// building generation waits for the in-flight build instead of repeating
// it), and a failed build is forgotten so a retry rebuilds.
type Worker struct {
	logger *slog.Logger

	mu     sync.Mutex
	shards map[shardKey]*entry
	// gens tracks the build order of generations per shard slot, oldest
	// first, for retention.
	gens map[datasetShard][]string
}

// NewWorker returns a worker with no resident shards. logger may be nil
// (discards are replaced by slog.Default()).
func NewWorker(logger *slog.Logger) *Worker {
	if logger == nil {
		logger = slog.Default()
	}
	return &Worker{
		logger: logger,
		shards: make(map[shardKey]*entry),
		gens:   make(map[datasetShard][]string),
	}
}

// Handler returns the worker's HTTP surface.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /worker/v1/healthz", w.handleHealthz)
	mux.HandleFunc("PUT /worker/v1/shards/{dataset}/{gen}/{shard}", w.timed("put_shard", w.handleShip))
	mux.HandleFunc("POST /worker/v1/shards/{dataset}/{gen}/{shard}/scan", w.timed("scan", w.handleScan))
	mux.HandleFunc("POST /worker/v1/shards/{dataset}/{gen}/{shard}/scanfixed", w.timed("scanfixed", w.handleScanFixed))
	mux.HandleFunc("POST /worker/v1/shards/{dataset}/{gen}/{shard}/members", w.timed("members", w.handleMembers))
	mux.HandleFunc("POST /worker/v1/shards/{dataset}/{gen}/{shard}/range", w.timed("range", w.handleRange))
	return mux
}

// ShardCount reports the resident shard incarnations (observability/tests).
func (w *Worker) ShardCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.shards)
}

// timed wraps a worker route with the request-id plumbing and one
// structured log line per request — the worker-side half of the
// coordinator's request tracing (satellite of the X-Request-Id contract).
func (w *Worker) timed(op string, h http.HandlerFunc) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := obs.SanitizeRequestID(r.Header.Get("X-Request-Id"))
		if reqID != "" {
			rw.Header().Set("X-Request-Id", reqID)
			r = r.WithContext(obs.ContextWithRequestID(r.Context(), reqID))
		}
		rec := &statusWriter{ResponseWriter: rw}
		h(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		w.logger.Info("worker request",
			"requestId", reqID,
			"op", op,
			"dataset", r.PathValue("dataset"),
			"gen", r.PathValue("gen"),
			"shard", r.PathValue("shard"),
			"status", status,
			"durMs", float64(time.Since(start).Microseconds())/1e3,
		)
	}
}

// statusWriter captures the response status for the request log line.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (s *statusWriter) WriteHeader(code int) {
	if s.status == 0 {
		s.status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusWriter) Write(b []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	return s.ResponseWriter.Write(b)
}

// wireError is the JSON error shape of the worker surface (mirrors the
// coordinator API's {"error", "code"}).
type wireError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, wireError{Error: msg, Code: code})
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, _ *http.Request) {
	w.mu.Lock()
	n := len(w.shards)
	w.mu.Unlock()
	writeJSON(rw, http.StatusOK, map[string]any{"status": "ok", "shards": n})
}

// pathKey parses the shard key from the route.
func pathKey(r *http.Request) (shardKey, error) {
	shard, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || shard < 0 {
		return shardKey{}, fmt.Errorf("shardrpc: bad shard index %q", r.PathValue("shard"))
	}
	k := shardKey{dataset: r.PathValue("dataset"), gen: r.PathValue("gen"), shard: shard}
	if k.dataset == "" || k.gen == "" {
		return shardKey{}, fmt.Errorf("shardrpc: empty dataset or generation")
	}
	return k, nil
}

// handleShip builds (or returns the already-built) shard index for the
// shipped spec. Idempotent per (dataset, gen, shard): a concurrent or
// repeated PUT of the same key waits on the single in-flight build and
// answers with its stats; a failed build is forgotten so retrying re-ships.
func (w *Worker) handleShip(rw http.ResponseWriter, r *http.Request) {
	key, err := pathKey(r)
	if err != nil {
		writeErr(rw, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeErr(rw, http.StatusBadRequest, "bad_request", "read spec: "+err.Error())
		return
	}
	if len(body) > maxSpecBytes {
		writeErr(rw, http.StatusRequestEntityTooLarge, "too_large", "shard spec exceeds size limit")
		return
	}

	// Protocol errors (malformed JSON, spec key disagreeing with the route)
	// are 400s and never create an entry — only a well-keyed spec reaches
	// the singleflighted build, whose failures are 422 and retryable.
	var spec query.ShardSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		writeErr(rw, http.StatusBadRequest, "bad_request", "shardrpc: decode spec: "+err.Error())
		return
	}
	if spec.Dataset != key.dataset || spec.Generation != key.gen || spec.Shard != key.shard {
		writeErr(rw, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("shardrpc: spec key %s/%s/%d does not match route %s/%s/%d",
				spec.Dataset, spec.Generation, spec.Shard, key.dataset, key.gen, key.shard))
		return
	}

	w.mu.Lock()
	if e, ok := w.shards[key]; ok {
		w.mu.Unlock()
		w.respondReady(rw, r, e)
		return
	}
	e := &entry{ready: make(chan struct{})}
	w.shards[key] = e
	w.mu.Unlock()

	e.ls, e.err = query.BuildLocalShard(spec)
	if e.err == nil {
		e.stats = e.ls.Stats()
	}
	close(e.ready)

	w.mu.Lock()
	if e.err != nil {
		// Forget failed builds: the key must stay retryable.
		delete(w.shards, key)
	} else {
		w.retain(key)
	}
	w.mu.Unlock()

	if e.err != nil {
		w.logger.Error("shard build failed", "dataset", key.dataset, "gen", key.gen,
			"shard", key.shard, "error", e.err)
		writeErr(rw, http.StatusUnprocessableEntity, "build_failed", e.err.Error())
		return
	}
	w.logger.Info("shard resident", "dataset", key.dataset, "gen", key.gen,
		"shard", key.shard, "series", e.stats.Series, "groups", e.stats.Groups,
		"subsequences", e.stats.Subsequences)
	writeJSON(rw, http.StatusOK, map[string]any{"stats": e.stats})
}

// retain records key's generation and evicts generations beyond the
// retention window for its shard slot. Caller holds w.mu.
func (w *Worker) retain(key shardKey) {
	slot := datasetShard{dataset: key.dataset, shard: key.shard}
	gens := w.gens[slot]
	for _, g := range gens {
		if g == key.gen {
			return // re-ship of a retained generation
		}
	}
	gens = append(gens, key.gen)
	for len(gens) > gensRetained {
		delete(w.shards, shardKey{dataset: key.dataset, gen: gens[0], shard: key.shard})
		gens = gens[1:]
	}
	w.gens[slot] = append([]string(nil), gens...)
}

// respondReady waits for an in-flight build of e and answers like the
// original PUT would.
func (w *Worker) respondReady(rw http.ResponseWriter, r *http.Request, e *entry) {
	select {
	case <-e.ready:
	case <-r.Context().Done():
		writeErr(rw, http.StatusServiceUnavailable, "canceled", r.Context().Err().Error())
		return
	}
	if e.err != nil {
		writeErr(rw, http.StatusUnprocessableEntity, "build_failed", e.err.Error())
		return
	}
	writeJSON(rw, http.StatusOK, map[string]any{"stats": e.stats})
}

// lookup resolves the route's shard, waiting out an in-flight build.
// A missing key answers 404/unknown_generation — the re-ship signal.
func (w *Worker) lookup(rw http.ResponseWriter, r *http.Request) *query.LocalShard {
	key, err := pathKey(r)
	if err != nil {
		writeErr(rw, http.StatusBadRequest, "bad_request", err.Error())
		return nil
	}
	w.mu.Lock()
	e := w.shards[key]
	w.mu.Unlock()
	if e == nil {
		writeErr(rw, http.StatusNotFound, "unknown_generation",
			fmt.Sprintf("shardrpc: no resident state for %s/%s/%d", key.dataset, key.gen, key.shard))
		return nil
	}
	select {
	case <-e.ready:
	case <-r.Context().Done():
		writeErr(rw, http.StatusServiceUnavailable, "canceled", r.Context().Err().Error())
		return nil
	}
	if e.err != nil {
		writeErr(rw, http.StatusNotFound, "unknown_generation", "shardrpc: shard build failed; re-ship")
		return nil
	}
	return e.ls
}

// decodeReq decodes a bounded JSON request body.
func decodeReq(rw http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
	if err != nil {
		writeErr(rw, http.StatusBadRequest, "bad_request", "read request: "+err.Error())
		return false
	}
	if len(body) > maxRequestBytes {
		writeErr(rw, http.StatusRequestEntityTooLarge, "too_large", "request exceeds size limit")
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeErr(rw, http.StatusBadRequest, "bad_request", "decode request: "+err.Error())
		return false
	}
	return true
}

// answer writes a transport response, mapping query-layer validation
// errors to 400 (the coordinator validated already, so these indicate a
// protocol bug, not a flaky worker) and cancellations to 503.
func answer(rw http.ResponseWriter, r *http.Request, v any, err error) {
	switch {
	case err == nil:
		writeJSON(rw, http.StatusOK, v)
	case r.Context().Err() != nil:
		writeErr(rw, http.StatusServiceUnavailable, "canceled", r.Context().Err().Error())
	default:
		writeErr(rw, http.StatusBadRequest, "bad_request", err.Error())
	}
}

func (w *Worker) handleScan(rw http.ResponseWriter, r *http.Request) {
	ls := w.lookup(rw, r)
	if ls == nil {
		return
	}
	var req query.ScanBestRequest
	if !decodeReq(rw, r, &req) {
		return
	}
	resp, err := ls.ScanBest(r.Context(), req)
	answer(rw, r, resp, err)
}

func (w *Worker) handleScanFixed(rw http.ResponseWriter, r *http.Request) {
	ls := w.lookup(rw, r)
	if ls == nil {
		return
	}
	var req query.ScanFixedRequest
	if !decodeReq(rw, r, &req) {
		return
	}
	resp, err := ls.ScanFixed(r.Context(), req)
	answer(rw, r, resp, err)
}

func (w *Worker) handleMembers(rw http.ResponseWriter, r *http.Request) {
	ls := w.lookup(rw, r)
	if ls == nil {
		return
	}
	var req query.EvalMembersRequest
	if !decodeReq(rw, r, &req) {
		return
	}
	resp, err := ls.EvalMembers(r.Context(), req)
	answer(rw, r, resp, err)
}

func (w *Worker) handleRange(rw http.ResponseWriter, r *http.Request) {
	ls := w.lookup(rw, r)
	if ls == nil {
		return
	}
	var req query.RangeRequest
	if !decodeReq(rw, r, &req) {
		return
	}
	resp, err := ls.Range(r.Context(), req)
	answer(rw, r, resp, err)
}
