// Package shardrpc is the remote ShardTransport of the scatter-gather
// engine: a Worker serves one or more shards' indexes over the REST idiom
// of cmd/onex-server (`-role worker`), and a Client drives one shard on
// such a worker from the coordinator, implementing query.ShardTransport.
//
// # Protocol
//
// Shard state is keyed by (dataset, generation, shard) — the idempotency
// key. The generation is a random nonce the coordinator mints per shipped
// incarnation of a shard's state, so re-shipping the same generation is a
// no-op (the worker answers with the cached stats) and two coordinators,
// or one coordinator before and after a maintenance step, can never alias
// each other's state. Workers retain the two newest generations per
// (dataset, shard), so queries racing a maintenance swap still answer.
//
//	GET  /worker/v1/healthz
//	GET  /worker/v1/metrics                                   Prometheus text 0.0.4
//	PUT  /worker/v1/shards/{dataset}/{gen}/{shard}            ship a ShardSpec
//	POST /worker/v1/shards/{dataset}/{gen}/{shard}/scan       ScanBestRequest
//	POST /worker/v1/shards/{dataset}/{gen}/{shard}/scanfixed  ScanFixedRequest
//	POST /worker/v1/shards/{dataset}/{gen}/{shard}/members    EvalMembersRequest
//	POST /worker/v1/shards/{dataset}/{gen}/{shard}/range      RangeRequest
//
// Query calls against an unknown key answer 404 with code
// "unknown_generation" — the signal that the worker restarted (or expired
// the generation) and the client must re-ship the spec and retry. Bound
// hints, cutoffs and distances that can be ±Inf travel as math.Float64bits
// (see query.ShardTransport for the bit-exactness contract).
//
// The X-Request-Id header propagates from the coordinator and tags every
// worker-side log line, so a distributed query is greppable end to end.
package shardrpc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"onex/internal/metrics"
	"onex/internal/obs"
	"onex/internal/query"
)

// maxSpecBytes bounds a shipped shard spec (1 GiB — specs carry the shard's
// series values and grouping restriction).
const maxSpecBytes = 1 << 30

// maxRequestBytes bounds a query request body (64 MiB).
const maxRequestBytes = 64 << 20

// gensRetained is how many generations a worker keeps per (dataset, shard).
// Two covers the swap window of one maintenance step: the coordinator ships
// the new generation, then stops querying the old one.
const gensRetained = 2

// shardKey is the idempotency key of one shipped shard incarnation.
type shardKey struct {
	dataset string
	gen     string
	shard   int
}

// datasetShard identifies a shard slot across generations (retention).
type datasetShard struct {
	dataset string
	shard   int
}

// entry is one resident (or building) shard index. ready closes when the
// build finishes; ls/err are valid only after that.
type entry struct {
	ready chan struct{}
	ls    *query.LocalShard
	stats query.ShardStats
	err   error
}

// Worker serves shard indexes shipped by coordinators. Safe for concurrent
// use; shard builds are single-flighted per key (a re-shipped PUT of a
// building generation waits for the in-flight build instead of repeating
// it), and a failed build is forgotten so a retry rebuilds.
type Worker struct {
	logger  *slog.Logger
	started time.Time

	// Exposition state for GET /worker/v1/metrics.
	ops      metrics.Registry             // per-op latency histograms
	opCounts metrics.CounterMap[opStatus] // op × HTTP status counters
	ships    metrics.CounterMap[string]   // ship outcomes: built/cached/failed

	mu     sync.Mutex
	shards map[shardKey]*entry
	// gens tracks the build order of generations per shard slot, oldest
	// first, for retention.
	gens map[datasetShard][]string
}

// opStatus keys the op×status request counters.
type opStatus struct {
	op     string
	status int
}

// NewWorker returns a worker with no resident shards. logger may be nil
// (discards are replaced by slog.Default()).
func NewWorker(logger *slog.Logger) *Worker {
	if logger == nil {
		logger = slog.Default()
	}
	return &Worker{
		logger:  logger,
		started: time.Now(),
		shards:  make(map[shardKey]*entry),
		gens:    make(map[datasetShard][]string),
	}
}

// Handler returns the worker's HTTP surface.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /worker/v1/healthz", w.timed("healthz", w.handleHealthz))
	mux.HandleFunc("GET /worker/v1/metrics", w.timed("metrics", w.handleMetrics))
	mux.HandleFunc("PUT /worker/v1/shards/{dataset}/{gen}/{shard}", w.timed("put_shard", w.handleShip))
	mux.HandleFunc("POST /worker/v1/shards/{dataset}/{gen}/{shard}/scan", w.timed("scan", w.handleScan))
	mux.HandleFunc("POST /worker/v1/shards/{dataset}/{gen}/{shard}/scanfixed", w.timed("scanfixed", w.handleScanFixed))
	mux.HandleFunc("POST /worker/v1/shards/{dataset}/{gen}/{shard}/members", w.timed("members", w.handleMembers))
	mux.HandleFunc("POST /worker/v1/shards/{dataset}/{gen}/{shard}/range", w.timed("range", w.handleRange))
	return mux
}

// ShardCount reports the resident shard incarnations (observability/tests).
func (w *Worker) ShardCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.shards)
}

// timed wraps a worker route with the request-id plumbing, panic
// recovery, per-op metrics, and one structured log line per request — the
// worker-side half of the coordinator's request tracing (satellite of the
// X-Request-Id contract). A panicking op answers 500 with the standard
// {"error","code":"internal"} envelope (when nothing was written yet) and
// leaves an error log line with the request id instead of tearing down the
// connection silently.
func (w *Worker) timed(op string, h http.HandlerFunc) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := obs.SanitizeRequestID(r.Header.Get("X-Request-Id"))
		if reqID != "" {
			rw.Header().Set("X-Request-Id", reqID)
			r = r.WithContext(obs.ContextWithRequestID(r.Context(), reqID))
		}
		rec := &statusWriter{ResponseWriter: rw}
		func() {
			defer func() {
				p := recover()
				if p == nil {
					return
				}
				w.logger.Error("worker panic",
					"requestId", reqID,
					"op", op,
					"panic", fmt.Sprint(p),
					"stack", string(debug.Stack()),
				)
				if rec.status == 0 {
					writeErr(rec, http.StatusInternalServerError, "internal", "internal worker error")
				}
			}()
			h(rec, r)
		}()
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		dur := time.Since(start)
		w.ops.Observe(op, dur)
		w.opCounts.Add(opStatus{op: op, status: status})
		// Probe/scrape chatter (healthz every second per coordinator) logs
		// at debug so shard traffic stays greppable; failures still surface.
		logf := w.logger.Info
		if (op == "healthz" || op == "metrics") && status < 400 {
			logf = w.logger.Debug
		}
		logf("worker request",
			"requestId", reqID,
			"op", op,
			"dataset", r.PathValue("dataset"),
			"gen", r.PathValue("gen"),
			"shard", r.PathValue("shard"),
			"status", status,
			"durMs", float64(dur.Microseconds())/1e3,
		)
	}
}

// statusWriter captures the response status for the request log line.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (s *statusWriter) WriteHeader(code int) {
	if s.status == 0 {
		s.status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusWriter) Write(b []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	return s.ResponseWriter.Write(b)
}

// wireError is the JSON error shape of the worker surface (mirrors the
// coordinator API's {"error", "code"}).
type wireError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, wireError{Error: msg, Code: code})
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, _ *http.Request) {
	w.mu.Lock()
	n := len(w.shards)
	w.mu.Unlock()
	writeJSON(rw, http.StatusOK, map[string]any{"status": "ok", "shards": n})
}

// handleMetrics serves the worker's Prometheus text 0.0.4 exposition:
// per-op latency histograms, op×status and ship-outcome counters, and
// resident-state gauges. Gauges are computed at scrape time under w.mu.
func (w *Worker) handleMetrics(rw http.ResponseWriter, _ *http.Request) {
	w.mu.Lock()
	resident := len(w.shards)
	var residentBytes int64
	retained := 0
	for _, e := range w.shards {
		select {
		case <-e.ready:
			if e.err == nil {
				residentBytes += e.stats.IndexBytes
			}
		default: // build in flight; counts as resident, no size yet
		}
	}
	for _, gens := range w.gens {
		retained += len(gens)
	}
	w.mu.Unlock()

	var buf bytes.Buffer
	pw := metrics.NewPromWriter(&buf)

	pw.Header("onex_worker_op_duration_seconds", "Worker request latency by op.", "histogram")
	w.ops.Each(func(name string, h *metrics.Histogram) {
		pw.Hist("onex_worker_op_duration_seconds", []metrics.Label{{Name: "op", Value: name}}, h)
	})

	pw.Header("onex_worker_ops_total", "Worker requests by op and HTTP status.", "counter")
	ops := w.opCounts.Snapshot()
	opKeys := make([]opStatus, 0, len(ops))
	for k := range ops {
		opKeys = append(opKeys, k)
	}
	sort.Slice(opKeys, func(i, j int) bool {
		if opKeys[i].op != opKeys[j].op {
			return opKeys[i].op < opKeys[j].op
		}
		return opKeys[i].status < opKeys[j].status
	})
	for _, k := range opKeys {
		pw.Sample("onex_worker_ops_total", []metrics.Label{
			{Name: "op", Value: k.op},
			{Name: "status", Value: strconv.Itoa(k.status)},
		}, float64(ops[k]))
	}

	pw.Header("onex_worker_ships_total", "Shard ship requests by outcome (built, cached, failed).", "counter")
	ships := w.ships.Snapshot()
	outcomes := make([]string, 0, len(ships))
	for k := range ships {
		outcomes = append(outcomes, k)
	}
	sort.Strings(outcomes)
	for _, k := range outcomes {
		pw.Sample("onex_worker_ships_total", []metrics.Label{{Name: "outcome", Value: k}}, float64(ships[k]))
	}

	pw.Header("onex_worker_resident_shards", "Resident shard incarnations (including builds in flight).", "gauge")
	pw.Sample("onex_worker_resident_shards", nil, float64(resident))
	pw.Header("onex_worker_resident_bytes", "Estimated bytes of resident shard indexes.", "gauge")
	pw.Sample("onex_worker_resident_bytes", nil, float64(residentBytes))
	pw.Header("onex_worker_retained_generations", "Built generations retained across shard slots.", "gauge")
	pw.Sample("onex_worker_retained_generations", nil, float64(retained))
	pw.Header("onex_worker_uptime_seconds", "Seconds since the worker started.", "gauge")
	pw.Sample("onex_worker_uptime_seconds", nil, time.Since(w.started).Seconds())
	pw.Header("onex_worker_goroutines", "Current goroutine count.", "gauge")
	pw.Sample("onex_worker_goroutines", nil, float64(runtime.NumGoroutine()))

	if err := pw.Err(); err != nil {
		writeErr(rw, http.StatusInternalServerError, "internal", "render metrics: "+err.Error())
		return
	}
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rw.WriteHeader(http.StatusOK)
	_, _ = rw.Write(buf.Bytes())
}

// pathKey parses the shard key from the route.
func pathKey(r *http.Request) (shardKey, error) {
	shard, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || shard < 0 {
		return shardKey{}, fmt.Errorf("shardrpc: bad shard index %q", r.PathValue("shard"))
	}
	k := shardKey{dataset: r.PathValue("dataset"), gen: r.PathValue("gen"), shard: shard}
	if k.dataset == "" || k.gen == "" {
		return shardKey{}, fmt.Errorf("shardrpc: empty dataset or generation")
	}
	return k, nil
}

// handleShip builds (or returns the already-built) shard index for the
// shipped spec. Idempotent per (dataset, gen, shard): a concurrent or
// repeated PUT of the same key waits on the single in-flight build and
// answers with its stats; a failed build is forgotten so retrying re-ships.
func (w *Worker) handleShip(rw http.ResponseWriter, r *http.Request) {
	key, err := pathKey(r)
	if err != nil {
		writeErr(rw, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeErr(rw, http.StatusBadRequest, "bad_request", "read spec: "+err.Error())
		return
	}
	if len(body) > maxSpecBytes {
		writeErr(rw, http.StatusRequestEntityTooLarge, "too_large", "shard spec exceeds size limit")
		return
	}

	// Protocol errors (malformed JSON, spec key disagreeing with the route)
	// are 400s and never create an entry — only a well-keyed spec reaches
	// the singleflighted build, whose failures are 422 and retryable.
	var spec query.ShardSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		writeErr(rw, http.StatusBadRequest, "bad_request", "shardrpc: decode spec: "+err.Error())
		return
	}
	if spec.Dataset != key.dataset || spec.Generation != key.gen || spec.Shard != key.shard {
		writeErr(rw, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("shardrpc: spec key %s/%s/%d does not match route %s/%s/%d",
				spec.Dataset, spec.Generation, spec.Shard, key.dataset, key.gen, key.shard))
		return
	}

	w.mu.Lock()
	if e, ok := w.shards[key]; ok {
		w.mu.Unlock()
		w.ships.Add("cached")
		w.respondReady(rw, r, e)
		return
	}
	e := &entry{ready: make(chan struct{})}
	w.shards[key] = e
	w.mu.Unlock()

	e.ls, e.err = query.BuildLocalShard(spec)
	if e.err == nil {
		e.stats = e.ls.Stats()
	}
	close(e.ready)

	w.mu.Lock()
	if e.err != nil {
		// Forget failed builds: the key must stay retryable.
		delete(w.shards, key)
	} else {
		w.retain(key)
	}
	w.mu.Unlock()

	if e.err != nil {
		w.ships.Add("failed")
		w.logger.Error("shard build failed", "dataset", key.dataset, "gen", key.gen,
			"shard", key.shard, "error", e.err)
		writeErr(rw, http.StatusUnprocessableEntity, "build_failed", e.err.Error())
		return
	}
	w.ships.Add("built")
	w.logger.Info("shard resident", "dataset", key.dataset, "gen", key.gen,
		"shard", key.shard, "series", e.stats.Series, "groups", e.stats.Groups,
		"subsequences", e.stats.Subsequences)
	writeJSON(rw, http.StatusOK, map[string]any{"stats": e.stats})
}

// retain records key's generation and evicts generations beyond the
// retention window for its shard slot. Caller holds w.mu.
func (w *Worker) retain(key shardKey) {
	slot := datasetShard{dataset: key.dataset, shard: key.shard}
	gens := w.gens[slot]
	for _, g := range gens {
		if g == key.gen {
			return // re-ship of a retained generation
		}
	}
	gens = append(gens, key.gen)
	for len(gens) > gensRetained {
		delete(w.shards, shardKey{dataset: key.dataset, gen: gens[0], shard: key.shard})
		gens = gens[1:]
	}
	w.gens[slot] = append([]string(nil), gens...)
}

// respondReady waits for an in-flight build of e and answers like the
// original PUT would.
func (w *Worker) respondReady(rw http.ResponseWriter, r *http.Request, e *entry) {
	select {
	case <-e.ready:
	case <-r.Context().Done():
		writeErr(rw, http.StatusServiceUnavailable, "canceled", r.Context().Err().Error())
		return
	}
	if e.err != nil {
		writeErr(rw, http.StatusUnprocessableEntity, "build_failed", e.err.Error())
		return
	}
	writeJSON(rw, http.StatusOK, map[string]any{"stats": e.stats})
}

// lookup resolves the route's shard, waiting out an in-flight build.
// A missing key answers 404/unknown_generation — the re-ship signal.
func (w *Worker) lookup(rw http.ResponseWriter, r *http.Request) *query.LocalShard {
	key, err := pathKey(r)
	if err != nil {
		writeErr(rw, http.StatusBadRequest, "bad_request", err.Error())
		return nil
	}
	w.mu.Lock()
	e := w.shards[key]
	w.mu.Unlock()
	if e == nil {
		writeErr(rw, http.StatusNotFound, "unknown_generation",
			fmt.Sprintf("shardrpc: no resident state for %s/%s/%d", key.dataset, key.gen, key.shard))
		return nil
	}
	select {
	case <-e.ready:
	case <-r.Context().Done():
		writeErr(rw, http.StatusServiceUnavailable, "canceled", r.Context().Err().Error())
		return nil
	}
	if e.err != nil {
		writeErr(rw, http.StatusNotFound, "unknown_generation", "shardrpc: shard build failed; re-ship")
		return nil
	}
	return e.ls
}

// decodeReq decodes a bounded JSON request body.
func decodeReq(rw http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
	if err != nil {
		writeErr(rw, http.StatusBadRequest, "bad_request", "read request: "+err.Error())
		return false
	}
	if len(body) > maxRequestBytes {
		writeErr(rw, http.StatusRequestEntityTooLarge, "too_large", "request exceeds size limit")
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeErr(rw, http.StatusBadRequest, "bad_request", "decode request: "+err.Error())
		return false
	}
	return true
}

// answer writes a transport response, mapping query-layer validation
// errors to 400 (the coordinator validated already, so these indicate a
// protocol bug, not a flaky worker) and cancellations to 503.
func answer(rw http.ResponseWriter, r *http.Request, v any, err error) {
	switch {
	case err == nil:
		writeJSON(rw, http.StatusOK, v)
	case r.Context().Err() != nil:
		writeErr(rw, http.StatusServiceUnavailable, "canceled", r.Context().Err().Error())
	default:
		writeErr(rw, http.StatusBadRequest, "bad_request", err.Error())
	}
}

// workerObs builds a query response's observability payload. The wall time
// (handler entry → answer, i.e. lookup + decode + op) is always returned —
// one integer, and it is what lets the coordinator split call wall into
// worker compute vs wire overhead even untraced. A span (offsets in this
// handler's timebase) is attached only when the coordinator opted in via
// the X-Onex-Trace header; attrs is evaluated lazily so untraced requests
// never build the attribute slice.
func workerObs(r *http.Request, start time.Time, op string, attrs func() []obs.Attr) *query.WorkerObs {
	wall := time.Since(start).Microseconds()
	wo := &query.WorkerObs{WallMicros: wall}
	if r.Header.Get(traceHeader) != "" {
		wo.Spans = []obs.Span{{Name: "worker-" + op, DurMicros: wall, Attrs: attrs()}}
	}
	return wo
}

func (w *Worker) handleScan(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ls := w.lookup(rw, r)
	if ls == nil {
		return
	}
	var req query.ScanBestRequest
	if !decodeReq(rw, r, &req) {
		return
	}
	resp, err := ls.ScanBest(r.Context(), req)
	if err == nil {
		resp.Obs = workerObs(r, start, "scan", func() []obs.Attr {
			return append(query.WorkAttrs(resp.Trace),
				obs.Attr{Key: "length", Value: int64(req.Length)})
		})
	}
	answer(rw, r, resp, err)
}

func (w *Worker) handleScanFixed(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ls := w.lookup(rw, r)
	if ls == nil {
		return
	}
	var req query.ScanFixedRequest
	if !decodeReq(rw, r, &req) {
		return
	}
	resp, err := ls.ScanFixed(r.Context(), req)
	if err == nil {
		resp.Obs = workerObs(r, start, "scanfixed", func() []obs.Attr {
			return append(query.WorkAttrs(resp.Trace),
				obs.Attr{Key: "length", Value: int64(req.Length)},
				obs.Attr{Key: "hits", Value: int64(len(resp.Hits))})
		})
	}
	answer(rw, r, resp, err)
}

func (w *Worker) handleMembers(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ls := w.lookup(rw, r)
	if ls == nil {
		return
	}
	var req query.EvalMembersRequest
	if !decodeReq(rw, r, &req) {
		return
	}
	resp, err := ls.EvalMembers(r.Context(), req)
	if err == nil {
		resp.Obs = workerObs(r, start, "members", func() []obs.Attr {
			return []obs.Attr{
				{Key: "length", Value: int64(req.Length)},
				// The worker evaluates the full shipped batch; the coordinator's
				// membersTested counter can stop short of it at the patience
				// cutoff during its sequential replay, so this is a distinct
				// (≥) quantity under a distinct name.
				{Key: "membersEvaluated", Value: int64(len(req.Items))},
				{Key: "dtwComputed", Value: int64(resp.DTWComputed)},
			}
		})
	}
	answer(rw, r, resp, err)
}

func (w *Worker) handleRange(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ls := w.lookup(rw, r)
	if ls == nil {
		return
	}
	var req query.RangeRequest
	if !decodeReq(rw, r, &req) {
		return
	}
	resp, err := ls.Range(r.Context(), req)
	if err == nil {
		resp.Obs = workerObs(r, start, "range", func() []obs.Attr {
			return append(query.WorkAttrs(resp.Trace),
				obs.Attr{Key: "length", Value: int64(req.Length)},
				obs.Attr{Key: "results", Value: int64(len(resp.Results))})
		})
	}
	answer(rw, r, resp, err)
}
