package shardrpc

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"onex/internal/obs"
	"onex/internal/query"
)

func scanReq() query.ScanBestRequest {
	return query.ScanBestRequest{
		Length: 4, Query: []float64{1, 2, 3, 4}, HintBits: math.Float64bits(math.Inf(1)),
	}
}

// TestWorkerMetricsEndpoint: /worker/v1/metrics serves the Prometheus text
// families after real traffic, with monotone cumulative histogram buckets.
func TestWorkerMetricsEndpoint(t *testing.T) {
	w := NewWorker(testLogger())
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	if resp, raw := doJSON(t, http.MethodPut, shipURL(srv.URL, "d", "g1"), testSpec("d", "g1")); resp.StatusCode != http.StatusOK {
		t.Fatalf("ship = %d %s", resp.StatusCode, raw)
	}
	// Duplicate ship exercises the "cached" outcome counter.
	doJSON(t, http.MethodPut, shipURL(srv.URL, "d", "g1"), testSpec("d", "g1"))
	if resp, raw := doJSON(t, http.MethodPost, shipURL(srv.URL, "d", "g1")+"/scan", scanReq()); resp.StatusCode != http.StatusOK {
		t.Fatalf("scan = %d %s", resp.StatusCode, raw)
	}

	resp, err := http.Get(srv.URL + "/worker/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, family := range []string{
		"onex_worker_op_duration_seconds",
		"onex_worker_ops_total",
		"onex_worker_ships_total",
		"onex_worker_resident_shards",
		"onex_worker_resident_bytes",
		"onex_worker_retained_generations",
		"onex_worker_uptime_seconds",
		"onex_worker_goroutines",
	} {
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("missing family %s", family)
		}
	}
	for _, sample := range []string{
		`onex_worker_ops_total{op="scan",status="200"} 1`,
		`onex_worker_ships_total{outcome="built"} 1`,
		`onex_worker_ships_total{outcome="cached"} 1`,
		`onex_worker_resident_shards 1`,
		`onex_worker_retained_generations 1`,
	} {
		if !strings.Contains(body, sample) {
			t.Errorf("missing sample %q in:\n%s", sample, body)
		}
	}

	// Cumulative buckets for op="scan" must be non-decreasing and end at +Inf
	// equal to the count.
	var last, inf, count float64
	var buckets int
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, `onex_worker_op_duration_seconds_bucket{op="scan",`):
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < last {
				t.Fatalf("bucket decreased: %q after %v", line, last)
			}
			last = v
			buckets++
			if strings.Contains(line, `le="+Inf"`) {
				inf = v
			}
		case strings.HasPrefix(line, `onex_worker_op_duration_seconds_count{op="scan"}`):
			count, _ = strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		}
	}
	if buckets == 0 {
		t.Fatal("no scan histogram buckets")
	}
	if inf != count || count != 1 {
		t.Fatalf("+Inf bucket %v != count %v (want 1)", inf, count)
	}
}

// TestWorkerPanicRecovery: a panicking handler answers the uniform 500
// envelope instead of killing the connection, and the op counter records it.
func TestWorkerPanicRecovery(t *testing.T) {
	w := NewWorker(testLogger())
	mux := http.NewServeMux()
	mux.HandleFunc("GET /boom", w.timed("boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/boom")
	if err != nil {
		t.Fatalf("panic killed the response: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d %s", resp.StatusCode, raw)
	}
	if code := errCode(t, raw); code != "internal" {
		t.Fatalf("panic envelope code = %q", code)
	}
	if got := w.opCounts.Snapshot()[opStatus{"boom", 500}]; got != 1 {
		t.Fatalf("op counter after panic = %d, want 1", got)
	}
}

// TestClientTraceSpans: a traced call records an rpc-<op> span with the
// attempt/byte decomposition and folds the worker's own span into the trace
// nested inside it; untraced calls send no trace header at all.
func TestClientTraceSpans(t *testing.T) {
	var traceHeaders, calls atomic.Int64
	worker := NewWorker(testLogger()).Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/scan") {
			calls.Add(1)
			if r.Header.Get(traceHeader) != "" {
				traceHeaders.Add(1)
			}
		}
		worker.ServeHTTP(rw, r)
	}))
	defer srv.Close()

	c, err := NewClient(srv.URL, testSpec("d", "g1"), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Untraced: no header on the wire, nothing recorded.
	if _, err := c.ScanBest(t.Context(), scanReq()); err != nil {
		t.Fatal(err)
	}
	if traceHeaders.Load() != 0 {
		t.Fatal("untraced call sent the trace header")
	}

	tr := obs.NewTrace("r1")
	ctx := obs.ContextWithTrace(t.Context(), tr)
	if _, err := c.ScanBest(ctx, scanReq()); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 || traceHeaders.Load() != 1 {
		t.Fatalf("calls=%d traced=%d", calls.Load(), traceHeaders.Load())
	}

	v := tr.Snapshot()
	var rpc, workerSpan *obs.Span
	for i := range v.Spans {
		switch v.Spans[i].Name {
		case "rpc-scan":
			rpc = &v.Spans[i]
		case "worker-scan":
			workerSpan = &v.Spans[i]
		}
	}
	if rpc == nil || workerSpan == nil {
		t.Fatalf("spans = %+v", v.Spans)
	}
	attrs := map[string]int64{}
	for _, a := range rpc.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["attempts"] != 1 || attrs["retries"] != 0 || attrs["reships"] != 0 {
		t.Fatalf("rpc attrs = %+v", attrs)
	}
	if attrs["reqBytes"] <= 0 || attrs["respBytes"] <= 0 {
		t.Fatalf("byte attrs missing: %+v", attrs)
	}
	if attrs["workerMicros"] != workerSpan.DurMicros {
		t.Fatalf("workerMicros attr %d != worker span dur %d", attrs["workerMicros"], workerSpan.DurMicros)
	}
	// Time containment: the folded worker span sits inside the rpc span.
	if workerSpan.StartMicros < rpc.StartMicros ||
		workerSpan.StartMicros+workerSpan.DurMicros > rpc.StartMicros+rpc.DurMicros+1 {
		t.Fatalf("worker span [%d,+%d] not inside rpc span [%d,+%d]",
			workerSpan.StartMicros, workerSpan.DurMicros, rpc.StartMicros, rpc.DurMicros)
	}
}

// TestClientRetryFeedsFleet: transient 503s retry and the fleet registry's
// lifetime counters pick up the attempts, errors and retries.
func TestClientRetryFeedsFleet(t *testing.T) {
	var mu sync.Mutex
	failures := 2
	worker := NewWorker(testLogger()).Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/scan") {
			mu.Lock()
			fail := failures > 0
			if fail {
				failures--
			}
			mu.Unlock()
			if fail {
				rw.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprint(rw, `{"error":"flaky","code":"unavailable"}`)
				return
			}
		}
		worker.ServeHTTP(rw, r)
	}))
	defer srv.Close()

	c, err := NewClient(srv.URL, testSpec("d", "g1"), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	before := Fleet().Totals()
	tr := obs.NewTrace("r")
	if _, err := c.ScanBest(obs.ContextWithTrace(t.Context(), tr), scanReq()); err != nil {
		t.Fatal(err)
	}
	d := Fleet().Totals()
	d.Attempts -= before.Attempts
	d.Errors -= before.Errors
	d.Retries -= before.Retries
	d.QueryCalls -= before.QueryCalls
	if d.Attempts != 3 || d.Errors != 2 || d.Retries != 2 || d.QueryCalls != 1 {
		t.Fatalf("fleet deltas = %+v", d)
	}

	var found bool
	for _, sp := range tr.Snapshot().Spans {
		if sp.Name != "rpc-scan" {
			continue
		}
		found = true
		attrs := map[string]int64{}
		for _, a := range sp.Attrs {
			attrs[a.Key] = a.Value
		}
		if attrs["attempts"] != 3 || attrs["retries"] != 2 || attrs["backoffMs"] < 100 {
			t.Fatalf("retried rpc span attrs = %+v", attrs)
		}
	}
	if !found {
		t.Fatal("no rpc-scan span recorded")
	}
}

// TestFleetTransitions: the up/down rule — down after downAfter consecutive
// failures, up again on the first success — and the status roll-up.
func TestFleetTransitions(t *testing.T) {
	f := &FleetHealth{workers: make(map[string]*workerHealth)}
	const u = "http://w1"
	f.observeAttempt(u, time.Millisecond, false, false)
	if st := f.Snapshot()[0]; !st.Up || st.Attempts != 1 {
		t.Fatalf("after success: %+v", st)
	}
	for i := 0; i < downAfter-1; i++ {
		f.observeAttempt(u, time.Millisecond, true, false)
		if st := f.Snapshot()[0]; !st.Up {
			t.Fatalf("down after only %d failures", i+1)
		}
	}
	f.observeAttempt(u, time.Millisecond, true, true)
	st := f.Snapshot()[0]
	if st.Up || st.ConsecutiveFailures != downAfter || st.Timeouts != 1 {
		t.Fatalf("after %d failures: %+v", downAfter, st)
	}
	if st.Errors != downAfter || st.Attempts != downAfter+1 {
		t.Fatalf("counters: %+v", st)
	}
	if want := float64(downAfter) / float64(downAfter+1); math.Abs(st.RollingErrorRate-want) > 1e-9 {
		t.Fatalf("rolling error rate = %v, want %v", st.RollingErrorRate, want)
	}
	if st.LastSuccess == "" {
		t.Fatal("lastSuccess empty after a success")
	}

	f.observeProbe(u, true)
	if st := f.Snapshot()[0]; !st.Up || st.ConsecutiveFailures != 0 {
		t.Fatalf("probe success did not restore up: %+v", st)
	}
	// Probes feed the window and transitions but not the attempt counters.
	if st := f.Snapshot()[0]; st.Attempts != downAfter+1 {
		t.Fatalf("probe bumped attempts: %+v", st)
	}
}

// TestFleetProbeLoop: the background loop probes known workers and flips
// them down when healthz starts failing, and back up when it recovers.
func TestFleetProbeLoop(t *testing.T) {
	var failing atomic.Bool
	worker := NewWorker(testLogger()).Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			rw.WriteHeader(http.StatusInternalServerError)
			return
		}
		worker.ServeHTTP(rw, r)
	}))
	defer srv.Close()

	f := &FleetHealth{
		workers:   make(map[string]*workerHealth),
		probeHTTP: srv.Client(),
	}
	// Register the worker the way real traffic would.
	f.observeAttempt(srv.URL, time.Millisecond, false, false)

	stop := f.StartProbes(5 * time.Millisecond)
	defer stop()

	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if st := f.Snapshot(); len(st) == 1 && st[0].Up == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("worker never became %s: %+v", what, f.Snapshot())
	}

	failing.Store(true)
	waitFor(false, "down")
	failing.Store(false)
	waitFor(true, "up")

	// Stop is idempotent and releases the loop.
	stop()
	stop()
}
