package shardrpc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"onex/internal/obs"
	"onex/internal/query"
)

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// testSpec handcrafts a minimal valid shard spec: one series, one indexed
// length, one owned group whose members are the series' windows.
func testSpec(dataset, gen string) query.ShardSpec {
	values := []float64{0.1, 0.3, 0.2, 0.5, 0.4, 0.6, 0.5, 0.8, 0.7, 0.9}
	const length = 4
	rep := append([]float64(nil), values[:length]...)
	var members []query.SpecMember
	for start := 0; start+length <= len(values); start++ {
		members = append(members, query.SpecMember{
			Series: 0, Start: start, EDToRep: float64(start) * 0.01,
		})
	}
	return query.ShardSpec{
		Dataset:    dataset,
		Generation: gen,
		Shard:      0,
		Shards:     1,
		ST:         0.3,
		Series:     []query.SpecSeries{{ID: 0, Label: "a", Values: values}},
		Lengths: []query.SpecLength{{
			Length: length,
			Groups: []query.SpecGroup{{GlobalID: 0, Owned: true, Rep: rep, Members: members}},
		}},
	}
}

func shipURL(base, dataset, gen string) string {
	return fmt.Sprintf("%s/worker/v1/shards/%s/%s/0", base, dataset, gen)
}

func doJSON(t *testing.T, method, url string, in any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func errCode(t *testing.T, raw []byte) string {
	t.Helper()
	var we struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(raw, &we); err != nil {
		t.Fatalf("error body is not the uniform envelope: %s", raw)
	}
	return we.Code
}

func TestWorkerHealthz(t *testing.T) {
	srv := httptest.NewServer(NewWorker(testLogger()).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/worker/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

// TestWorkerShipIdempotent: re-PUTting the same (dataset, generation,
// shard) is a cheap cache hit answering the same stats — the property that
// makes ship retries and the re-ship race safe.
func TestWorkerShipIdempotent(t *testing.T) {
	w := NewWorker(testLogger())
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	spec := testSpec("d", "g1")
	url := shipURL(srv.URL, "d", "g1")

	var stats [2]query.ShardStats
	for i := range stats {
		resp, raw := doJSON(t, http.MethodPut, url, spec)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ship %d = %d: %s", i, resp.StatusCode, raw)
		}
		var out struct {
			Stats query.ShardStats `json:"stats"`
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		stats[i] = out.Stats
	}
	if stats[0] != stats[1] {
		t.Fatalf("idempotent ship changed stats: %+v vs %+v", stats[0], stats[1])
	}
	if got := w.ShardCount(); got != 1 {
		t.Fatalf("ShardCount = %d after duplicate ship, want 1", got)
	}
}

// TestWorkerUnknownGeneration: queries against state the worker does not
// hold answer 404/unknown_generation — the client's re-ship signal.
func TestWorkerUnknownGeneration(t *testing.T) {
	srv := httptest.NewServer(NewWorker(testLogger()).Handler())
	defer srv.Close()
	resp, raw := doJSON(t, http.MethodPost, shipURL(srv.URL, "d", "nope")+"/scan",
		query.ScanBestRequest{Length: 4, Query: []float64{1, 2, 3, 4}, HintBits: math.Float64bits(math.Inf(1))})
	if resp.StatusCode != http.StatusNotFound || errCode(t, raw) != "unknown_generation" {
		t.Fatalf("scan of unshipped generation = %d %s", resp.StatusCode, raw)
	}
}

// TestWorkerBadSpec: a spec whose key disagrees with the route is rejected
// outright; a spec that fails to build answers 422 and is forgotten, so the
// same key stays retryable with a good spec.
func TestWorkerBadSpec(t *testing.T) {
	w := NewWorker(testLogger())
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	mismatched := testSpec("other", "g1")
	resp, raw := doJSON(t, http.MethodPut, shipURL(srv.URL, "d", "g1"), mismatched)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched spec key = %d %s", resp.StatusCode, raw)
	}

	invalid := testSpec("d", "g1")
	invalid.Series = nil // BuildLocalShard rejects empty shards
	resp, raw = doJSON(t, http.MethodPut, shipURL(srv.URL, "d", "g1"), invalid)
	if resp.StatusCode != http.StatusUnprocessableEntity || errCode(t, raw) != "build_failed" {
		t.Fatalf("invalid spec = %d %s", resp.StatusCode, raw)
	}
	if got := w.ShardCount(); got != 0 {
		t.Fatalf("failed build left %d resident shards", got)
	}

	resp, raw = doJSON(t, http.MethodPut, shipURL(srv.URL, "d", "g1"), testSpec("d", "g1"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after failed build = %d %s", resp.StatusCode, raw)
	}
}

// TestWorkerGenerationRetention: the worker retains only the newest
// generations per (dataset, shard) slot; evicted generations answer
// unknown_generation so clients re-ship.
func TestWorkerGenerationRetention(t *testing.T) {
	w := NewWorker(testLogger())
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	for _, gen := range []string{"g1", "g2", "g3"} {
		resp, raw := doJSON(t, http.MethodPut, shipURL(srv.URL, "d", gen), testSpec("d", gen))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ship %s = %d %s", gen, resp.StatusCode, raw)
		}
	}
	scanReq := query.ScanBestRequest{Length: 4, Query: []float64{1, 2, 3, 4}, HintBits: math.Float64bits(math.Inf(1))}
	resp, raw := doJSON(t, http.MethodPost, shipURL(srv.URL, "d", "g1")+"/scan", scanReq)
	if resp.StatusCode != http.StatusNotFound || errCode(t, raw) != "unknown_generation" {
		t.Fatalf("evicted generation g1 = %d %s", resp.StatusCode, raw)
	}
	for _, gen := range []string{"g2", "g3"} {
		resp, _ := doJSON(t, http.MethodPost, shipURL(srv.URL, "d", gen)+"/scan", scanReq)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("retained generation %s = %d", gen, resp.StatusCode)
		}
	}
	if got := w.ShardCount(); got != 2 {
		t.Fatalf("ShardCount = %d after retention eviction, want 2", got)
	}
}

// TestWorkerConcurrentShip: concurrent PUTs of the same key build once and
// everyone gets the same answer (singleflight). Meaningful under -race.
func TestWorkerConcurrentShip(t *testing.T) {
	w := NewWorker(testLogger())
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, raw := doJSON(t, http.MethodPut, shipURL(srv.URL, "d", "g1"), testSpec("d", "g1"))
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("concurrent ship = %d %s", resp.StatusCode, raw)
				return
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := w.ShardCount(); got != 1 {
		t.Fatalf("ShardCount = %d after concurrent ships, want 1", got)
	}
}

// TestClientRequestIDPropagation: the client stamps outbound calls with the
// context's request id and the worker echoes it back.
func TestClientRequestIDPropagation(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	worker := NewWorker(testLogger()).Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen[r.Header.Get("X-Request-Id")]++
		mu.Unlock()
		worker.ServeHTTP(rw, r)
	}))
	defer srv.Close()

	c, err := NewClient(srv.URL, testSpec("d", "g1"), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := obs.ContextWithRequestID(t.Context(), "req-test-42")
	if _, err := c.ScanBest(ctx, query.ScanBestRequest{
		Length: 4, Query: []float64{1, 2, 3, 4}, HintBits: math.Float64bits(math.Inf(1)),
	}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if seen["req-test-42"] == 0 {
		t.Fatalf("worker never saw the request id: %v", seen)
	}
	if c.Generation() != "g1" {
		t.Fatalf("Generation = %q", c.Generation())
	}
	if st := c.Stats(); st.Series != 1 || st.Subsequences == 0 {
		t.Fatalf("cached stats look wrong: %+v", st)
	}
	info := c.Info()
	if info.Shard != 0 || len(info.Series) != 1 || len(info.Owned[4]) != 1 {
		t.Fatalf("client info diverged from spec: %+v", info)
	}
}
