package shardrpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"onex/internal/obs"
	"onex/internal/query"
)

// ErrUnavailable marks a worker call that exhausted its retries: the worker
// is down, unreachable, or persistently failing. The API layer maps it to
// 503/unavailable.
var ErrUnavailable = errors.New("shardrpc: worker unavailable")

// DefaultTimeout bounds one worker call attempt.
const DefaultTimeout = 30 * time.Second

// DefaultRetries is how many times a failed attempt is retried (so a call
// makes at most 1+DefaultRetries attempts).
const DefaultRetries = 3

// retryBackoff is the base backoff before retry n (doubles each retry).
const retryBackoff = 50 * time.Millisecond

// traceHeader is the coordinator's opt-in for worker-side span recording:
// when a live obs.Trace rides the call context, the client sets it and the
// worker returns its spans in the response's obs payload. Keeping the
// opt-in out of the request structs leaves the wire shapes unchanged for
// untraced queries.
const traceHeader = "X-Onex-Trace"

// ClientOptions tune a worker client; zero values select the defaults.
type ClientOptions struct {
	// Timeout bounds each call attempt (default DefaultTimeout).
	Timeout time.Duration
	// Retries caps retry attempts after the first (default DefaultRetries;
	// negative disables retries).
	Retries int
	// HTTPClient overrides the transport (tests); default http.Client.
	HTTPClient *http.Client
}

// Client drives one shard resident on a remote worker, implementing
// query.ShardTransport over the worker REST protocol. It retains the
// shipped ShardSpec so it can re-ship after a worker restart: a query call
// that answers 404/unknown_generation re-PUTs the spec (idempotent — the
// key is the spec's (dataset, generation, shard)) and retries, which is
// what makes mid-query worker restarts invisible to the coordinator.
//
// Safe for concurrent use; re-shipping is serialized so a burst of
// unknown_generation answers after a restart ships the state once.
type Client struct {
	base    string
	http    *http.Client
	timeout time.Duration
	retries int

	spec  query.ShardSpec
	info  query.ShardInfo
	paths struct {
		ship, scan, scanFixed, members, rng string
	}

	shipMu sync.Mutex // serializes re-ship after a worker restart

	mu    sync.Mutex // guards stats
	stats query.ShardStats
}

// NewClient ships spec to the worker at baseURL (e.g. "http://host:port")
// and returns a transport over it. Construction fails fast if the worker is
// unreachable after the configured retries or rejects the spec.
func NewClient(baseURL string, spec query.ShardSpec, opts ClientOptions) (*Client, error) {
	base := strings.TrimRight(baseURL, "/")
	if base == "" {
		return nil, fmt.Errorf("shardrpc: empty worker URL")
	}
	if spec.Dataset == "" || spec.Generation == "" {
		return nil, fmt.Errorf("shardrpc: shard spec needs a dataset name and generation")
	}
	c := &Client{
		base:    base,
		http:    opts.HTTPClient,
		timeout: opts.Timeout,
		retries: opts.Retries,
		spec:    spec,
		info:    specInfo(spec),
	}
	if c.http == nil {
		c.http = &http.Client{}
	}
	if c.timeout <= 0 {
		c.timeout = DefaultTimeout
	}
	if c.retries == 0 {
		c.retries = DefaultRetries
	} else if c.retries < 0 {
		c.retries = 0
	}
	root := fmt.Sprintf("%s/worker/v1/shards/%s/%s/%d", base,
		url.PathEscape(spec.Dataset), url.PathEscape(spec.Generation), spec.Shard)
	c.paths.ship = root
	c.paths.scan = root + "/scan"
	c.paths.scanFixed = root + "/scanfixed"
	c.paths.members = root + "/members"
	c.paths.rng = root + "/range"

	if err := c.shipWithRetry(context.Background()); err != nil {
		return nil, err
	}
	return c, nil
}

// specInfo derives the shard's layout slice from its spec (series are
// shipped ascending; owned global ids per length are collected ascending).
func specInfo(spec query.ShardSpec) query.ShardInfo {
	info := query.ShardInfo{
		Shard:  spec.Shard,
		Series: make([]int, 0, len(spec.Series)),
		Owned:  make(map[int][]int, len(spec.Lengths)),
	}
	for _, s := range spec.Series {
		info.Series = append(info.Series, s.ID)
	}
	for _, sl := range spec.Lengths {
		gids := make([]int, 0, len(sl.Groups))
		for _, g := range sl.Groups {
			if g.Owned {
				gids = append(gids, g.GlobalID)
			}
		}
		sort.Ints(gids)
		info.Owned[sl.Length] = gids
	}
	return info
}

// Info implements query.ShardTransport.
func (c *Client) Info() query.ShardInfo { return c.info }

// Stats implements query.ShardTransport (the stats the worker reported at
// the last successful ship).
func (c *Client) Stats() query.ShardStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close implements query.ShardTransport.
func (c *Client) Close() error {
	c.http.CloseIdleConnections()
	return nil
}

// Generation exposes the shipped state's generation nonce (tests,
// observability).
func (c *Client) Generation() string { return c.spec.Generation }

// httpError is a non-2xx worker answer.
type httpError struct {
	status int
	code   string
	msg    string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("shardrpc: worker answered %d (%s): %s", e.status, e.code, e.msg)
}

// unknownGeneration reports whether err is the worker's re-ship signal.
func unknownGeneration(err error) bool {
	var he *httpError
	return errors.As(err, &he) && he.code == "unknown_generation"
}

// callStats accumulates one call's attempt roll-up for the rpc span and
// the fleet-health counters.
type callStats struct {
	attempts  int
	reships   int
	backoff   time.Duration
	reqBytes  int64
	respBytes int64
}

// once runs one bounded HTTP attempt, propagating the request id and
// feeding the attempt's outcome into the fleet-health registry. cs (may be
// nil) accumulates the bytes moved.
func (c *Client) once(ctx context.Context, method, path string, in, out any, cs *callStats) error {
	actx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("shardrpc: encode request: %w", err)
	}
	if cs != nil {
		cs.reqBytes += int64(len(body))
	}
	req, err := http.NewRequestWithContext(actx, method, path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("shardrpc: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id := obs.RequestIDFromContext(ctx); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	if obs.TraceFromContext(ctx) != nil {
		req.Header.Set(traceHeader, "1")
	}
	// From here the attempt counts against the worker's health: the timeout
	// marker distinguishes our per-attempt deadline firing from the parent
	// context being canceled.
	start := time.Now()
	timedOut := func() bool {
		return errors.Is(actx.Err(), context.DeadlineExceeded) && ctx.Err() == nil
	}
	resp, err := c.http.Do(req)
	if err != nil {
		Fleet().observeAttempt(c.base, time.Since(start), true, timedOut())
		return fmt.Errorf("shardrpc: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBytes))
	if err != nil {
		Fleet().observeAttempt(c.base, time.Since(start), true, timedOut())
		return fmt.Errorf("shardrpc: read response: %w", err)
	}
	if cs != nil {
		cs.respBytes += int64(len(raw))
	}
	// Any complete HTTP answer below 5xx means the worker is alive and
	// serving — unknown_generation (404) is protocol-normal after a restart.
	Fleet().observeAttempt(c.base, time.Since(start), resp.StatusCode >= 500, false)
	if resp.StatusCode != http.StatusOK {
		var we wireError
		_ = json.Unmarshal(raw, &we)
		if we.Code == "" {
			we.Code = "http_" + fmt.Sprint(resp.StatusCode)
			we.Error = strings.TrimSpace(string(raw))
		}
		return &httpError{status: resp.StatusCode, code: we.Code, msg: we.Error}
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("shardrpc: decode response: %w", err)
		}
	}
	return nil
}

// shipOnce PUTs the retained spec and refreshes the cached stats.
func (c *Client) shipOnce(ctx context.Context) error {
	var resp struct {
		Stats query.ShardStats `json:"stats"`
	}
	if err := c.once(ctx, http.MethodPut, c.paths.ship, c.spec, &resp, nil); err != nil {
		return err
	}
	c.mu.Lock()
	c.stats = resp.Stats
	c.mu.Unlock()
	return nil
}

// shipWithRetry ships the spec with the standard retry/backoff loop.
func (c *Client) shipWithRetry(ctx context.Context) error {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			if err := sleep(ctx, retryBackoff<<(attempt-1)); err != nil {
				return err
			}
		}
		err := c.shipOnce(ctx)
		if err == nil {
			return nil
		}
		lastErr = err
		var he *httpError
		if errors.As(err, &he) && he.status >= 400 && he.status < 500 && he.status != http.StatusRequestTimeout {
			// The worker rejected the spec itself; retrying won't help.
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return fmt.Errorf("%w: ship %s: %v", ErrUnavailable, c.paths.ship, lastErr)
}

// reship re-PUTs the spec after an unknown_generation answer (worker
// restart or retention eviction), serialized so concurrent queries ship
// once. The PUT is idempotent on (dataset, generation, shard), so losing
// the serialization race costs one cheap cache-hit round trip.
func (c *Client) reship(ctx context.Context) error {
	c.shipMu.Lock()
	defer c.shipMu.Unlock()
	return c.shipOnce(ctx)
}

// sleep waits d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// obsCarrier extracts the worker observability payload from any transport
// response.
type obsCarrier interface{ ObsPayload() *query.WorkerObs }

// call POSTs one transport request with bounded retry/backoff. Transient
// failures (network errors, 5xx) back off and retry; unknown_generation
// re-ships the shard state and retries immediately — together these make a
// worker restart mid-query invisible, because every worker request is
// idempotent: scans and member evaluations are pure functions of
// (generation state, request), so a duplicate attempt after an ambiguous
// failure returns the same bits. Non-retryable answers (4xx protocol
// errors) and context cancellation surface immediately; exhausted retries
// wrap ErrUnavailable.
//
// When the context carries a live obs.Trace, the whole call runs under an
// "rpc-<op>" span whose attrs decompose it (attempts, retries, re-ships,
// backoff slept, bytes moved, worker compute vs wire time), and the
// worker's own spans from the response payload are folded into the trace
// rebased so they nest inside the rpc span by time containment. Tracing is
// strictly observational — the untraced path allocates nothing extra and
// the bytes on the wire differ only by a request header.
func (c *Client) call(ctx context.Context, op, path string, in, out any) error {
	rec := obs.TraceFromContext(ctx)
	var sc obs.SpanScope
	if rec != nil {
		sc = rec.StartSpan("rpc-" + op)
	}
	start := time.Now()
	var cs callStats
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			d := retryBackoff << (attempt - 1)
			if err := sleep(ctx, d); err != nil {
				c.abortCall(sc, &cs)
				return err
			}
			cs.backoff += d
		}
		cs.attempts++
		err := c.once(ctx, http.MethodPost, path, in, out, &cs)
		if err == nil {
			c.finishCall(rec, sc, start, &cs, out)
			return nil
		}
		if ctx.Err() != nil {
			c.abortCall(sc, &cs)
			return ctx.Err()
		}
		if unknownGeneration(err) {
			// Worker lost our state (restart/eviction): re-ship and burn
			// no backoff — the next attempt hits a freshly built shard.
			cs.reships++
			if serr := c.reship(ctx); serr != nil {
				lastErr = serr
				continue
			}
			lastErr = err
			continue
		}
		var he *httpError
		if errors.As(err, &he) && he.status >= 400 && he.status < 500 && he.status != http.StatusRequestTimeout {
			c.abortCall(sc, &cs)
			return err
		}
		lastErr = err
	}
	c.abortCall(sc, &cs)
	return fmt.Errorf("%w: %s: %v", ErrUnavailable, path, lastErr)
}

// finishCall closes out a successful call: the fleet model gets the
// retry/re-ship counters and the wall-vs-worker time split, and — when
// traced — the rpc span gets its attrs and the worker's spans are folded
// into the trace. Worker span offsets are in the worker handler's
// timebase; anchoring them so they END at the fold point (the handler wall
// equals the payload's WallMicros) places them inside the rpc span with
// the wire overhead ahead of them.
func (c *Client) finishCall(rec *obs.Trace, sc obs.SpanScope, start time.Time, cs *callStats, out any) {
	var wo *query.WorkerObs
	if oc, ok := out.(obsCarrier); ok {
		wo = oc.ObsPayload()
	}
	var workerMicros int64
	if wo != nil {
		workerMicros = wo.WallMicros
	}
	wall := time.Since(start)
	Fleet().observeCall(c.base, wall, workerMicros, cs.attempts-1, cs.reships)
	if rec == nil {
		return
	}
	if wo != nil && len(wo.Spans) > 0 {
		anchor := rec.ElapsedMicros() - workerMicros
		if anchor < 0 {
			anchor = 0
		}
		for _, ws := range wo.Spans {
			ws.StartMicros += anchor
			rec.AddSpan(ws)
		}
	}
	wire := wall.Microseconds() - workerMicros
	if wire < 0 {
		wire = 0
	}
	sc.Attr("shard", int64(c.spec.Shard)).
		Attr("attempts", int64(cs.attempts)).
		Attr("retries", int64(cs.attempts-1)).
		Attr("reships", int64(cs.reships)).
		Attr("backoffMs", cs.backoff.Milliseconds()).
		Attr("reqBytes", cs.reqBytes).
		Attr("respBytes", cs.respBytes).
		Attr("workerMicros", workerMicros).
		Attr("wireMicros", wire).
		End()
}

// abortCall closes the rpc span on a failed call and folds its retry and
// re-ship counters into the fleet model (the attempts themselves were
// recorded individually by once).
func (c *Client) abortCall(sc obs.SpanScope, cs *callStats) {
	retries := cs.attempts - 1
	if retries < 0 {
		retries = 0
	}
	Fleet().observeCallFailed(c.base, retries, cs.reships)
	sc.Attr("shard", int64(c.spec.Shard)).
		Attr("attempts", int64(cs.attempts)).
		Attr("reships", int64(cs.reships)).
		Attr("backoffMs", cs.backoff.Milliseconds()).
		Attr("error", 1).
		End()
}

// ScanBest implements query.ShardTransport.
func (c *Client) ScanBest(ctx context.Context, req query.ScanBestRequest) (query.ScanBestResponse, error) {
	var resp query.ScanBestResponse
	err := c.call(ctx, "scan", c.paths.scan, req, &resp)
	return resp, err
}

// ScanFixed implements query.ShardTransport.
func (c *Client) ScanFixed(ctx context.Context, req query.ScanFixedRequest) (query.ScanFixedResponse, error) {
	var resp query.ScanFixedResponse
	err := c.call(ctx, "scanfixed", c.paths.scanFixed, req, &resp)
	return resp, err
}

// EvalMembers implements query.ShardTransport.
func (c *Client) EvalMembers(ctx context.Context, req query.EvalMembersRequest) (query.EvalMembersResponse, error) {
	var resp query.EvalMembersResponse
	err := c.call(ctx, "members", c.paths.members, req, &resp)
	return resp, err
}

// Range implements query.ShardTransport.
func (c *Client) Range(ctx context.Context, req query.RangeRequest) (query.RangeResponse, error) {
	var resp query.RangeResponse
	err := c.call(ctx, "range", c.paths.rng, req, &resp)
	return resp, err
}
